package dnscentral_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// slowAppend copies src into dst in small chunks with short pauses,
// simulating a capture process writing a live pcap. Chunk sizes are
// deliberately not record-aligned, so the tail of dst is torn most of
// the time — exactly what a follower snapshooting a live file sees.
// The returned channel closes when the whole file has been written.
func slowAppend(t *testing.T, dst, src string, chunk int, pause time.Duration) <-chan struct{} {
	t.Helper()
	blob, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(dst, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer f.Close()
		for off := 0; off < len(blob); off += chunk {
			end := off + chunk
			if end > len(blob) {
				end = len(blob)
			}
			if _, err := f.Write(blob[off:end]); err != nil {
				t.Errorf("appending live pcap: %v", err)
				return
			}
			time.Sleep(pause)
		}
	}()
	return done
}

// waitFor polls until cond returns true or the deadline passes.
func waitFor(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCLIFollowKillResume is the tentpole acceptance test end to end:
// dnstracegen writes a capture slowly while `entrada -follow -checkpoint`
// ingests it; the follower is SIGKILLed mid-capture, restarted with
// -resume once the writer finished, and its final report must be
// byte-identical to a batch run over the completed capture. The window
// telemetry (entrada_window_*) must be live on /metrics while following.
func TestCLIFollowKillResume(t *testing.T) {
	bins := buildTools(t, "dnstracegen", "entrada")
	dir := t.TempDir()
	full := filepath.Join(dir, "full.pcap")
	runTool(t, bins["dnstracegen"], "-vantage", "nl", "-week", "w2020",
		"-queries", "6000", "-scale", "0.002", "-seed", "9", "-out", full)

	// Batch reference over the finished capture.
	batchJSON := filepath.Join(dir, "batch.json")
	runTool(t, bins["entrada"], "-workers", "1", "-in", full, "-out", batchJSON)
	want, err := os.ReadFile(batchJSON)
	if err != nil {
		t.Fatal(err)
	}

	// The capture process: ~64 KiB every 10 ms, never record-aligned.
	live := filepath.Join(dir, "live.pcap")
	ckDir := filepath.Join(dir, "state")
	writerDone := slowAppend(t, live, full, 64<<10, 10*time.Millisecond)

	// Follower #1: no idle-exit (a service follows forever), window width
	// in capture time sized so a synthetic week closes a few dozen
	// windows and checkpoints several times while the file grows.
	follow1 := exec.Command(bins["entrada"], "-follow", "-in", live,
		"-window", "6h", "-checkpoint", ckDir,
		"-metrics-addr", "127.0.0.1:0", "-out", filepath.Join(dir, "ignored.json"))
	out1 := &syncBuilder{}
	follow1.Stdout, follow1.Stderr = out1, out1
	if err := follow1.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = follow1.Process.Kill()
		_, _ = follow1.Process.Wait()
	}()

	// The window series must move on /metrics while following.
	maddr := waitMetricsAddr(t, out1)
	waitFor(t, "entrada_window_* metrics to move", 15*time.Second, func() bool {
		resp := httpGet(t, "http://"+maddr+"/metrics")
		return metricPositive(resp, "entrada_windows_closed_total") &&
			metricPositive(resp, "entrada_window_queries") &&
			strings.Contains(resp, "entrada_window_hhi") &&
			strings.Contains(resp, `entrada_window_provider_share{provider=`)
	})
	waitFor(t, "a checkpoint on disk", 15*time.Second, func() bool {
		_, err := os.Stat(filepath.Join(ckDir, "entrada.ckpt"))
		return err == nil
	})

	// kill -9: no shutdown handler runs, only the checkpoint survives.
	if err := follow1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = follow1.Process.Wait()

	<-writerDone

	// Follower #2 resumes from the checkpoint, drains the now-complete
	// capture and idle-exits.
	followJSON := filepath.Join(dir, "follow.json")
	out2 := runTool(t, bins["entrada"], "-follow", "-in", live,
		"-window", "6h", "-checkpoint", ckDir, "-resume",
		"-idle-exit", "1s", "-out", followJSON)
	if !strings.Contains(out2, "resumed from checkpoint") {
		t.Fatalf("follower #2 did not resume:\n%s", out2)
	}
	if !strings.Contains(out2, "Window series") {
		t.Fatalf("follower #2 printed no window series:\n%s", out2)
	}

	got, err := os.ReadFile(followJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("kill -9 + -resume report differs from batch report\nbatch:  %d bytes\nfollow: %d bytes", len(want), len(got))
	}
}

// TestCLIFollowSigtermFlush checks graceful shutdown: SIGTERM must flush
// the final partial window, print the window series and write the full
// report, exiting zero.
func TestCLIFollowSigtermFlush(t *testing.T) {
	bins := buildTools(t, "dnstracegen", "entrada")
	dir := t.TempDir()
	pcap := filepath.Join(dir, "trace.pcap")
	runTool(t, bins["dnstracegen"], "-vantage", "nz", "-week", "w2019",
		"-queries", "3000", "-scale", "0.002", "-seed", "4", "-out", pcap)

	report := filepath.Join(dir, "follow.json")
	cmd := exec.Command(bins["entrada"], "-follow", "-in", pcap,
		"-window", "12h", "-out", report)
	out := &syncBuilder{}
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	// Wait until the follower has closed at least one window, then ask
	// it to stop. The capture is complete, so by then it has typically
	// drained the whole file and is idling on the tail.
	waitFor(t, "a closed window line", 15*time.Second, func() bool {
		return strings.Contains(out.String(), "entrada: window ")
	})
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("entrada -follow did not exit cleanly on SIGTERM: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "Window series") {
		t.Fatalf("no window series on shutdown:\n%s", s)
	}
	if fi, err := os.Stat(report); err != nil || fi.Size() == 0 {
		t.Fatalf("no report written on SIGTERM: %v", err)
	}
}
