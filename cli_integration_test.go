package dnscentral_test

import (
	"encoding/json"
	"errors"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dnscentral/internal/pcapio"
)

// buildTools compiles the cmd/ binaries once per test run.
func buildTools(t *testing.T, names ...string) map[string]string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	out := make(map[string]string, len(names))
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Dir = "."
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
		out[name] = bin
	}
	return out
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	b, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, b)
	}
	return string(b)
}

// TestCLIPipeline drives dnstracegen → entrada → cloudreport end to end
// through the real binaries and on-disk files.
func TestCLIPipeline(t *testing.T) {
	bins := buildTools(t, "dnstracegen", "entrada", "cloudreport")
	dir := t.TempDir()
	pcap := filepath.Join(dir, "nl.pcap")
	report := filepath.Join(dir, "nl.json")

	out := runTool(t, bins["dnstracegen"],
		"-vantage", "nl", "-week", "w2020",
		"-queries", "8000", "-scale", "0.002", "-seed", "5", "-out", pcap)
	if !strings.Contains(out, "Google") {
		t.Fatalf("dnstracegen output:\n%s", out)
	}
	if fi, err := os.Stat(pcap); err != nil || fi.Size() < 10_000 {
		t.Fatalf("pcap not written: %v", err)
	}

	runTool(t, bins["entrada"], "-in", pcap, "-out", report)
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TotalQueries uint64             `json:"total_queries"`
		CloudShare   float64            `json:"cloud_share"`
		Providers    map[string]any     `json:"providers"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if parsed.TotalQueries < 8000 || parsed.CloudShare < 0.2 {
		t.Fatalf("report: %+v", parsed)
	}

	summary := runTool(t, bins["cloudreport"], "-report", report)
	for _, want := range []string{"Google", "Facebook", "Record types", "EDNS(0)"} {
		if !strings.Contains(summary, want) {
			t.Errorf("cloudreport missing %q:\n%s", want, summary)
		}
	}
}

// TestCLIShardedAnalysis verifies the multi- -in merge path.
func TestCLIShardedAnalysis(t *testing.T) {
	bins := buildTools(t, "dnstracegen", "entrada")
	dir := t.TempDir()
	a := filepath.Join(dir, "a.pcap")
	b := filepath.Join(dir, "b.pcap")
	runTool(t, bins["dnstracegen"], "-vantage", "nz", "-week", "w2019",
		"-queries", "3000", "-scale", "0.002", "-seed", "6", "-out", a)
	runTool(t, bins["dnstracegen"], "-vantage", "nz", "-week", "w2019",
		"-queries", "3000", "-scale", "0.002", "-seed", "7", "-out", b)
	report := filepath.Join(dir, "merged.json")
	runTool(t, bins["entrada"], "-in", a, "-in", b, "-out", report)
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TotalQueries uint64 `json:"total_queries"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.TotalQueries < 6000 {
		t.Fatalf("merged total = %d", parsed.TotalQueries)
	}
}

// TestCLIWorkersParity checks the -workers flag end to end: parallel and
// sequential ingestion of the same capture write identical report JSON.
func TestCLIWorkersParity(t *testing.T) {
	bins := buildTools(t, "dnstracegen", "entrada")
	dir := t.TempDir()
	pcap := filepath.Join(dir, "nl.pcap")
	runTool(t, bins["dnstracegen"], "-vantage", "nl", "-week", "w2020",
		"-queries", "6000", "-scale", "0.002", "-seed", "9", "-out", pcap)

	seq := filepath.Join(dir, "seq.json")
	par := filepath.Join(dir, "par.json")
	runTool(t, bins["entrada"], "-in", pcap, "-zone", "nl", "-workers", "1", "-out", seq)
	runTool(t, bins["entrada"], "-in", pcap, "-zone", "nl", "-workers", "4", "-out", par)

	a, err := os.ReadFile(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(par)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("-workers 4 report differs from -workers 1 report")
	}
}

// TestCLIAllMalformedExit feeds entrada a capture of pure garbage frames:
// it must warn and exit non-zero (satellite: wrong-file detection).
func TestCLIAllMalformedExit(t *testing.T) {
	bins := buildTools(t, "entrada")
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk.pcap")
	f, err := os.Create(junk)
	if err != nil {
		t.Fatal(err)
	}
	w := pcapio.NewWriter(f)
	for i := 0; i < 40; i++ {
		if err := w.WritePacket(time.Unix(int64(i), 0), make([]byte, 60)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bins["entrada"], "-in", junk)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("entrada exited zero on an all-malformed capture:\n%s", out)
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Fatalf("err = %v, want exit code 1\n%s", err, out)
	}
	if !strings.Contains(string(out), "all 40 packets malformed") {
		t.Fatalf("missing wrong-file warning:\n%s", out)
	}
}

// TestCLILiveServerAndResolver starts the real authserver binary and
// points resolversim at it over loopback sockets.
func TestCLILiveServerAndResolver(t *testing.T) {
	bins := buildTools(t, "authserver", "resolversim")

	// Pick a free port by binding and releasing it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	srv := exec.Command(bins["authserver"], "-zone", "nl", "-domains", "1000", "-listen", addr)
	srvOut := &strings.Builder{}
	srv.Stdout, srv.Stderr = srvOut, srvOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = srv.Process.Kill()
		_, _ = srv.Process.Wait()
	}()

	// Wait for the server to come up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not come up: %s", srvOut)
		}
		time.Sleep(50 * time.Millisecond)
	}

	out := runTool(t, bins["resolversim"],
		"-server", addr, "-zone", "nl", "-qmin", "-validate", "-n", "100")
	if !strings.Contains(out, "query mix") || !strings.Contains(out, "NS") {
		t.Fatalf("resolversim output:\n%s", out)
	}
	if !strings.Contains(out, "resolved 100 names (0 failures)") {
		t.Fatalf("resolution failures:\n%s", out)
	}
}

// TestCLIRepro runs the full experiment harness at a tiny scale.
func TestCLIRepro(t *testing.T) {
	bins := buildTools(t, "repro")
	dir := t.TempDir()
	out := filepath.Join(dir, "EXPERIMENTS.md")
	runTool(t, bins["repro"], "-queries", "4000", "-scale", "0.002", "-seed", "8", "-out", out)
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)
	for _, want := range []string{"## Table 3", "## Figure 6", "Shape verdicts", "shape checks passed"} {
		if !strings.Contains(doc, want) {
			t.Errorf("EXPERIMENTS.md missing %q", want)
		}
	}
}
