module dnscentral

go 1.22
