// fbrtt reproduces §4.3's Facebook finding: dual-stack resolvers tend to
// prefer the IP family with the lower RTT to the authoritative server.
// It builds an in-process simulation of three Facebook-like sites with
// different IPv4/IPv6 latencies, lets RTT-aware dual-stack resolvers pick
// families organically, captures the traffic the server sees, and runs the
// paper's analysis: per-site family split joined with PTR-derived site
// identity and TCP-handshake RTT medians (Figures 5a/5b).
//
// Run with:
//
//	go run ./examples/fbrtt
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/entrada"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/rdns"
	"dnscentral/internal/resolver"
	"dnscentral/internal/sim"
	"dnscentral/internal/stats"
	"dnscentral/internal/zonedb"
)

// site describes one experiment site.
type site struct {
	code string
	rtt4 time.Duration
	rtt6 time.Duration
}

func main() {
	sites := []site{
		{"ams", 40 * time.Millisecond, 8 * time.Millisecond},   // v6 far faster
		{"fra", 20 * time.Millisecond, 21 * time.Millisecond},  // even
		{"gru", 60 * time.Millisecond, 190 * time.Millisecond}, // v6 far slower
	}

	zone, err := zonedb.NewCcTLD("nl", 20_000, 0, 0.55, []string{"ns1.dns.nl"})
	if err != nil {
		log.Fatal(err)
	}
	var capture bytes.Buffer
	w := pcapio.NewWriter(&capture)
	s, err := sim.New(sim.Config{Zone: zone, Sink: sinkFunc(w.WritePacket)})
	if err != nil {
		log.Fatal(err)
	}

	// One dual-stack resolver per site, with Facebook-style PTR records.
	reg := astrie.NewRegistry(8)
	ptr := rdns.NewDB()
	fbASN := astrie.ProviderASNs[astrie.ProviderFacebook][0]
	for i, st := range sites {
		a4, _ := reg.ResolverAddr(fbASN, false, false, uint32(i))
		a6, _ := reg.ResolverAddr(fbASN, true, false, uint32(i))
		name := rdns.FacebookPTRName(st.code, a4, i)
		ptr.Add(a4, name)
		ptr.Add(a6, name)
		r, err := s.AddResolver(sim.ResolverSpec{
			Addr4: a4, Addr6: a6,
			RTT4: st.rtt4, RTT6: st.rtt6,
			Config: resolver.Config{Validate: true, EDNSSize: 512, Seed: int64(i)},
		})
		if err != nil {
			log.Fatal(err)
		}
		// 500 cache-missing lookups per site; the 512-byte EDNS triggers
		// TCP retries whose handshakes carry the RTT signal.
		for q := 0; q < 500; q++ {
			if _, err := r.Resolve(fmt.Sprintf("www.d%d.nl.", q+i*500), dnswire.TypeA); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	// Analyze the capture exactly like the paper: classify sources, split
	// per family, join PTR-derived sites, estimate RTT from handshakes.
	rd, err := pcapio.NewReader(&capture)
	if err != nil {
		log.Fatal(err)
	}
	an := entrada.NewAnalyzer(reg)
	if err := an.AnalyzeReader(rd); err != nil {
		log.Fatal(err)
	}
	ag := an.Finish()

	type agg struct {
		v4, v6 uint64
		rtts4  stats.DurationReservoir
		rtts6  stats.DurationReservoir
	}
	bySite := map[string]*agg{}
	for k, fc := range ag.FocusQueries {
		name, ok := ptr.Lookup(k.Client)
		if !ok {
			continue
		}
		code, _, _, _ := rdns.ParseFacebookPTR(name)
		a := bySite[code]
		if a == nil {
			a = &agg{}
			bySite[code] = a
		}
		a.v4 += fc.V4
		a.v6 += fc.V6
	}
	for k, samples := range ag.RTTs {
		name, ok := ptr.Lookup(k.Client)
		if !ok {
			continue
		}
		code, _, _, _ := rdns.ParseFacebookPTR(name)
		a := bySite[code]
		if a == nil {
			continue
		}
		if k.Client.Is4() {
			a.rtts4.Merge(samples)
		} else {
			a.rtts6.Merge(samples)
		}
	}

	fmt.Println("Per-site family preference vs measured TCP-handshake RTT (Figure 5b):")
	fmt.Printf("%6s %10s %10s %10s %12s %12s\n", "site", "v4 q", "v6 q", "v6 ratio", "medRTT v4", "medRTT v6")
	for _, st := range sites {
		a := bySite[st.code]
		if a == nil {
			continue
		}
		total := a.v4 + a.v6
		fmt.Printf("%6s %10d %10d %9.1f%% %12v %12v\n",
			st.code, a.v4, a.v6, 100*float64(a.v6)/float64(total),
			a.rtts4.Median().Round(time.Millisecond),
			a.rtts6.Median().Round(time.Millisecond))
	}
	fmt.Println("\nSites whose IPv6 RTT is much larger prefer IPv4 and vice versa —")
	fmt.Println("the correlation the paper confirms for Facebook's locations 8–10.")
}

// sinkFunc adapts a function to the packet sink interface.
type sinkFunc func(time.Time, []byte) error

func (f sinkFunc) WritePacket(ts time.Time, data []byte) error { return f(ts, data) }
