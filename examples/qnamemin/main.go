// qnamemin demonstrates §4.2.1 of the paper from first principles: it
// starts a real authoritative DNS server for a synthetic .nl zone on
// loopback (UDP+TCP), drives two identical caching resolvers at it — one
// with QNAME minimization, one without — and shows how Q-min turns the
// record-type mix seen by the TLD into NS queries, exactly the signature
// by which the paper dates Google's December-2019 deployment.
//
// Run with:
//
//	go run ./examples/qnamemin
package main

import (
	"fmt"
	"log"

	"dnscentral/internal/authserver"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/resolver"
	"dnscentral/internal/zonedb"
)

func main() {
	zone, err := zonedb.NewCcTLD("nl", 10_000, 0, 0.55, []string{"ns1.dns.nl", "ns2.dns.nl"})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := authserver.Listen("127.0.0.1:0", authserver.NewEngine(zone))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("authoritative server for %s with %d delegations on %s\n\n",
		zone.Origin, zone.Size(), srv.Addr())

	for _, qmin := range []bool{false, true} {
		r := resolver.New("nl.", resolver.Config{
			Qmin:     qmin,
			Validate: true,
			EDNSSize: 1232,
		})
		r.AddUpstream(resolver.FamilyV4, &resolver.NetTransport{Server: srv.Addr()})

		// Resolve 300 distinct user names (all cache misses at the TLD).
		for i := 0; i < 300; i++ {
			name := fmt.Sprintf("www.d%d.nl.", i*7)
			if _, err := r.Resolve(name, dnswire.TypeA); err != nil {
				log.Fatal(err)
			}
		}
		st := r.Stats()
		label := "classic resolver (full qname)"
		if qmin {
			label = "QNAME-minimizing resolver   "
		}
		fmt.Printf("%s sent %4d queries:", label, st.Sent)
		for _, t := range []dnswire.Type{dnswire.TypeA, dnswire.TypeNS, dnswire.TypeDS, dnswire.TypeDNSKEY} {
			fmt.Printf("  %s %4.1f%%", t, 100*float64(st.ByType[t])/float64(st.Sent))
		}
		fmt.Println()
	}

	fmt.Println("\nThe NS-share jump is what Figure 3 shows for Google in Dec 2019:")
	fmt.Println("once the provider deploys Q-min, the TLD stops seeing full query")
	fmt.Println("names and types — a privacy gain rolled out to all its users at once.")
}
