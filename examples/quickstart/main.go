// Quickstart: generate a small synthetic .nl trace for the paper's w2020
// snapshot, analyze it with the ENTRADA-style pipeline, and print the
// headline result — how much of the traffic the five cloud providers send.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"dnscentral"
)

func main() {
	// 1. Generate a scaled-down week of .nl authoritative traffic.
	var trace bytes.Buffer
	truth, err := dnscentral.GenerateTrace(dnscentral.TraceConfig{
		Vantage:       dnscentral.VantageNL,
		Week:          dnscentral.W2020,
		TotalQueries:  50_000,
		ResolverScale: 0.005,
		Seed:          42,
	}, &trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d queries from %d resolvers (%d KiB of pcap)\n\n",
		truth.Queries, len(truth.ResolverSet), trace.Len()/1024)

	// 2. Analyze the pcap as if it were a real capture.
	report, err := dnscentral.AnalyzeTrace(&trace)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The paper's headline: >30% of ccTLD queries come from 5 clouds.
	fmt.Printf("cloud share of all queries: %.1f%% (paper: ≈33%% for .nl)\n\n", 100*report.CloudShare)
	for _, name := range []string{"Google", "Amazon", "Microsoft", "Facebook", "Cloudflare"} {
		p := report.Providers[name]
		fmt.Printf("  %-10s share %5.1f%%  IPv6 %5.1f%%  TCP %5.1f%%  junk %5.1f%%  resolvers %d\n",
			name, 100*p.Share, 100*p.V6Share, 100*p.TCPShare, 100*p.JunkShare, p.Resolvers.Total)
	}
	fmt.Printf("\nreproduced from: %s\n", dnscentral.PaperCitation)
}
