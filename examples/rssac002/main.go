// rssac002 generates a DITL-style B-Root day (the paper's §2.2/§3 root
// vantage), analyzes it, and emits the aggregate statistics in the
// RSSAC002 advisory format the paper uses to contextualize B-Root's junk
// levels against the other root letters — plus the hourly diurnal series
// the week-long ccTLD captures average over.
//
// Run with:
//
//	go run ./examples/rssac002
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"

	"dnscentral/internal/astrie"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/entrada"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/workload"
)

func main() {
	gen, err := workload.NewGenerator(workload.Config{
		Vantage:          cloudmodel.VantageBRoot,
		Week:             cloudmodel.W2020,
		TotalQueries:     60_000,
		ResolverScale:    0.003,
		Seed:             2020,
		DiurnalAmplitude: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf)
	if _, err := gen.Run(w); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	r, err := pcapio.NewReader(&buf)
	if err != nil {
		log.Fatal(err)
	}
	an := entrada.NewAnalyzer(gen.Registry())
	if err := an.AnalyzeReader(r); err != nil {
		log.Fatal(err)
	}
	ag := an.Finish()

	rep := ag.RSSAC002Report("b-root-reproduction/2020-05-06")
	fmt.Println(rep)
	fmt.Printf("valid share from rcode-volume: %.1f%% (paper: 20%% for B-Root 2020)\n\n",
		100*rep.ValidShare())

	fmt.Println("hourly query volume (diurnal swing the weekly captures average over):")
	hours := make([]int64, 0, len(ag.Hourly))
	for h := range ag.Hourly {
		hours = append(hours, h)
	}
	sort.Slice(hours, func(i, j int) bool { return hours[i] < hours[j] })
	var peak uint64
	for _, h := range hours {
		if ag.Hourly[h] > peak {
			peak = ag.Hourly[h]
		}
	}
	for _, h := range hours {
		n := ag.Hourly[h]
		bar := int(40 * n / peak)
		fmt.Printf("%02d:00 %6d %s\n", h%24, n, bars(bar))
	}

	cloud := 0.0
	for _, p := range astrie.CloudProviders {
		cloud += 100 * float64(ag.Provider(p).Queries) / float64(ag.Total)
	}
	fmt.Printf("\ncloud share at B-Root: %.1f%% (paper: 8.7%% in 2020)\n", cloud)
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
