// ednssweep reproduces the §4.4 mechanism behind Figure 6: the advertised
// EDNS(0) UDP payload size determines whether DNSSEC-bearing answers from
// a signed TLD fit in UDP. Small advertisements (512 bytes — ~30% of
// Facebook's queries) get truncated answers and force TCP retries; large
// ones (1232+, Google-style) almost never do. The sweep runs against a
// real authoritative server over loopback sockets.
//
// Run with:
//
//	go run ./examples/ednssweep
package main

import (
	"fmt"
	"log"

	"dnscentral/internal/authserver"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/resolver"
	"dnscentral/internal/zonedb"
)

func main() {
	zone, err := zonedb.NewCcTLD("nl", 5_000, 0, 0.55, []string{"ns1.dns.nl", "ns2.dns.nl"})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := authserver.Listen("127.0.0.1:0", authserver.NewEngine(zone))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	fmt.Println("EDNS(0) advertised size vs truncation and TCP fallback")
	fmt.Println("(signed .nl-style zone, DNSSEC-validating resolver, 400 lookups each)")
	fmt.Printf("\n%8s %10s %12s %12s\n", "size", "queries", "truncated", "TCP share")
	for _, size := range []uint16{0, 512, 1232, 1452, 4096} {
		r := resolver.New("nl.", resolver.Config{
			Validate: size > 0, // DO requires EDNS
			EDNSSize: size,
		})
		r.AddUpstream(resolver.FamilyV4, &resolver.NetTransport{Server: srv.Addr()})
		for i := 0; i < 400; i++ {
			if _, err := r.Resolve(fmt.Sprintf("www.d%d.nl.", i), dnswire.TypeA); err != nil {
				log.Fatal(err)
			}
		}
		st := r.Stats()
		label := fmt.Sprintf("%d", size)
		if size == 0 {
			label = "none"
		}
		fmt.Printf("%8s %10d %11.1f%% %11.1f%%\n",
			label, st.Sent,
			100*float64(st.Truncated)/float64(st.Sent),
			100*float64(st.ByTCP[true])/float64(st.Sent))
	}
	fmt.Println("\nPaper anchor (w2020, .nl): Facebook 17.16% truncated UDP answers,")
	fmt.Println("Google 0.04%, Microsoft 0.01% — driven by exactly this mechanism.")
}
