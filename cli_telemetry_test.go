package dnscentral_test

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// genSmallPcap writes one small trace for reuse across subtests.
func genSmallPcap(t *testing.T, bin, dir string, queries int) string {
	t.Helper()
	pcap := filepath.Join(dir, "trace.pcap")
	runTool(t, bin, "-vantage", "nl", "-week", "w2020",
		"-queries", fmt.Sprint(queries), "-scale", "0.002", "-seed", "3", "-out", pcap)
	return pcap
}

// TestCLIOutCloseErrorFailsRun regresses the -out error handling of
// entrada and repro: writing the report to /dev/full (every write fails
// with ENOSPC) must exit non-zero instead of reporting success over a
// truncated file.
func TestCLIOutCloseErrorFailsRun(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	bins := buildTools(t, "dnstracegen", "entrada", "repro")
	dir := t.TempDir()
	pcap := genSmallPcap(t, bins["dnstracegen"], dir, 2000)

	for _, tc := range []struct {
		name string
		args []string
	}{
		{"entrada", []string{"-in", pcap, "-out", "/dev/full"}},
		{"repro", []string{"-queries", "2000", "-scale", "0.002", "-seed", "8", "-out", "/dev/full"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bins[tc.name], tc.args...).CombinedOutput()
			if err == nil {
				t.Fatalf("%s exited 0 writing its report to /dev/full:\n%s", tc.name, out)
			}
			var exitErr *exec.ExitError
			if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
				t.Fatalf("err = %v, want exit code 1\n%s", err, out)
			}
		})
	}
}

// TestCLIEntradaManyInputsUnderFDLimit regresses the descriptor
// exhaustion bug: entrada used to open every -in upfront and defer all
// closes to exit, so enough shards tripped ulimit -n. With lazy
// open/close, 128 inputs must ingest fine under a 64-descriptor cap.
func TestCLIEntradaManyInputsUnderFDLimit(t *testing.T) {
	bins := buildTools(t, "dnstracegen", "entrada")
	dir := t.TempDir()
	pcap := genSmallPcap(t, bins["dnstracegen"], dir, 2000)

	var sh strings.Builder
	sh.WriteString("ulimit -n 64 && exec " + bins["entrada"] +
		" -workers 2 -out " + filepath.Join(dir, "merged.json"))
	const inputs = 128
	for i := 0; i < inputs; i++ {
		sh.WriteString(" -in " + pcap)
	}
	out, err := exec.Command("sh", "-c", sh.String()).CombinedOutput()
	if err != nil {
		t.Fatalf("entrada with %d inputs under ulimit -n 64: %v\n%s", inputs, err, out)
	}
	if !strings.Contains(string(out), fmt.Sprintf("%d workers", 2)) {
		t.Fatalf("unexpected entrada output:\n%s", out)
	}
}

// TestCLIResolversimGracefulShutdown checks the SIGINT handler: an
// interrupted resolversim run must still print its partial query mix
// and exit zero, like authserver does.
func TestCLIResolversimGracefulShutdown(t *testing.T) {
	bins := buildTools(t, "authserver", "resolversim")
	addr, _ := startAuthserver(t, bins["authserver"])

	sim := exec.Command(bins["resolversim"],
		"-server", addr, "-zone", "nl", "-qmin", "-validate", "-n", "500000")
	var simOut strings.Builder
	sim.Stdout, sim.Stderr = &simOut, &simOut
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	if err := sim.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := sim.Wait(); err != nil {
		t.Fatalf("resolversim did not exit cleanly on SIGINT: %v\n%s", err, simOut.String())
	}
	out := simOut.String()
	if !strings.Contains(out, "stopping after") {
		t.Fatalf("missing graceful-shutdown notice:\n%s", out)
	}
	if !strings.Contains(out, "query mix") {
		t.Fatalf("interrupted run dropped its report:\n%s", out)
	}
}

// syncBuilder is a Writer safe to read while an exec pipe goroutine is
// still appending to it.
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestCLIMetricsEndpointAuthserver boots authserver with -metrics-addr,
// drives real queries through it, and scrapes /metrics: the Prometheus
// page must carry live engine counters.
func TestCLIMetricsEndpointAuthserver(t *testing.T) {
	bins := buildTools(t, "authserver", "resolversim")
	addr, srvOut := startAuthserver(t, bins["authserver"], "-metrics-addr", "127.0.0.1:0")

	maddr := waitMetricsAddr(t, srvOut)
	runTool(t, bins["resolversim"], "-server", addr, "-zone", "nl", "-n", "50")

	body := httpGet(t, "http://"+maddr+"/metrics")
	if !strings.Contains(body, "# TYPE authserver_queries_total counter") {
		t.Fatalf("/metrics missing TYPE line:\n%s", body)
	}
	if !metricPositive(body, "authserver_queries_total") {
		t.Fatalf("authserver_queries_total not live after 50 resolutions:\n%s", body)
	}
	if !metricPositive(body, "authserver_datagrams_total") {
		t.Fatalf("authserver_datagrams_total not live:\n%s", body)
	}
	jsonBody := httpGet(t, "http://"+maddr+"/metrics.json")
	if !strings.Contains(jsonBody, `"authserver_queries_total"`) {
		t.Fatalf("/metrics.json missing counter:\n%s", jsonBody)
	}
}

// TestCLIMetricsEndpointEntrada scrapes /metrics from an entrada run
// large enough to still be ingesting when the scrape lands; the
// pipeline counters must be live mid-run.
func TestCLIMetricsEndpointEntrada(t *testing.T) {
	bins := buildTools(t, "dnstracegen", "entrada")
	dir := t.TempDir()
	pcap := genSmallPcap(t, bins["dnstracegen"], dir, 8000)

	args := []string{"-workers", "1", "-metrics-addr", "127.0.0.1:0",
		"-out", filepath.Join(dir, "rep.json")}
	for i := 0; i < 200; i++ {
		args = append(args, "-in", pcap)
	}
	cmd := exec.Command(bins["entrada"], args...)
	out := &syncBuilder{}
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	maddr := waitMetricsAddr(t, out)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + maddr + "/metrics")
		if err == nil {
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && metricPositive(string(b), "pipeline_packets_total") {
				return // live counters observed mid-run
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no live pipeline_packets_total before the run ended:\n%s", out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitMetricsAddr extracts the ephemeral endpoint address from the
// "telemetry: serving /metrics on ADDR" stderr line.
func waitMetricsAddr(t *testing.T, out *syncBuilder) string {
	t.Helper()
	const marker = "telemetry: serving /metrics on "
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := out.String()
		if i := strings.Index(s, marker); i >= 0 {
			rest := s[i+len(marker):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				return strings.TrimSpace(rest[:j])
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no metrics endpoint line:\n%s", s)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s\n%s", url, resp.Status, b)
	}
	return string(b)
}

// metricPositive reports whether the Prometheus page has a sample of
// the named family with a value > 0.
func metricPositive(body, name string) bool {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+" ") && !strings.HasPrefix(line, name+"{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] != "0" {
			return true
		}
	}
	return false
}

// TestCLIProgressInterval checks the -progress-interval snapshot line:
// even a short dnstracegen run must print its final telemetry totals.
func TestCLIProgressInterval(t *testing.T) {
	bins := buildTools(t, "dnstracegen")
	dir := t.TempDir()
	out := runTool(t, bins["dnstracegen"], "-vantage", "nl", "-week", "w2020",
		"-queries", "2000", "-scale", "0.002", "-seed", "3",
		"-progress-interval", "50ms", "-out", filepath.Join(dir, "t.pcap"))
	if !strings.Contains(out, "dnstracegen: 2000/2000 events") {
		t.Fatalf("missing final telemetry snapshot:\n%s", out)
	}
}
