package dnscentral_test

import (
	"net"
	"net/netip"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"dnscentral/internal/faults"
)

// cliChaosSeed mirrors the chaos-matrix convention: CI sweeps CHAOS_SEED
// over several fixed values; locally the seed defaults to 1.
func cliChaosSeed(t *testing.T) int64 {
	t.Helper()
	v := os.Getenv("CHAOS_SEED")
	if v == "" {
		return 1
	}
	seed, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("bad CHAOS_SEED %q: %v", v, err)
	}
	return seed
}

// packName encodes a dotted FQDN into DNS wire labels.
func packName(name string) []byte {
	var out []byte
	for _, label := range strings.Split(strings.TrimSuffix(name, "."), ".") {
		out = append(out, byte(len(label)))
		out = append(out, label...)
	}
	return append(out, 0)
}

// udpAsk sends one plain A query and returns the response RCODE, or
// ok=false if the server stayed silent past the deadline.
func udpAsk(t *testing.T, server string, id uint16, name string) (int, bool) {
	t.Helper()
	conn, err := net.Dial("udp", server)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := []byte{byte(id >> 8), byte(id), 0, 0, 0, 1, 0, 0, 0, 0, 0, 0}
	q = append(q, packName(name)...)
	q = append(q, 0, 1, 0, 1) // TYPE=A CLASS=IN
	if _, err := conn.Write(q); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	n, err := conn.Read(buf)
	if err != nil || n < 12 {
		return 0, false
	}
	return int(buf[3] & 0xF), true
}

// proxyOn binds an impairment proxy to a specific local address,
// retrying briefly while a just-closed predecessor releases the port.
func proxyOn(t *testing.T, addr string, upstream netip.AddrPort, cfg faults.Config) *faults.Proxy {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		p, err := faults.NewProxy(addr, upstream, cfg)
		if err == nil {
			return p
		}
		if time.Now().After(deadline) {
			t.Fatalf("proxy on %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestCLIBrownoutServeStale is the provider-outage acceptance run: a
// recursor with one upstream reached through a faults proxy. The cache
// is warmed through a clean proxy, which is then replaced — same
// address — by a fully-browned one pointing into the void. Every
// warm-cache query during the brownout must still be answered (stale,
// RFC 8767) while the circuit breaker keeps retries to a probe
// trickle; once the clean path returns, cold misses resolve again.
func TestCLIBrownoutServeStale(t *testing.T) {
	seed := cliChaosSeed(t)
	bins := buildTools(t, "authserver", "recursor")
	authAddr, _ := startAuthserver(t, bins["authserver"])
	authAP, err := netip.ParseAddrPort(authAddr)
	if err != nil {
		t.Fatal(err)
	}

	// The proxy's address is the recursor's configured upstream, so the
	// brownout swap must reuse it exactly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	proxyAddr := ln.Addr().String()
	ln.Close()
	clean := proxyOn(t, proxyAddr, authAP, faults.Config{Seed: seed})

	raddr, rout, _ := startRecursor(t, bins["recursor"], "soleCloud="+proxyAddr,
		"-metrics-addr", "127.0.0.1:0", "-timeout", "250ms",
		"-max-ttl", "1s", "-max-stale", "1h", "-stale-ttl", "30s",
		"-fail-ttl", "300ms", "-breaker-failures", "2", "-breaker-open", "400ms")
	maddr := waitMetricsAddr(t, rout)

	// Warm the cache through the clean path.
	if rc, ok := udpAsk(t, raddr, 1, "www.d5.nl."); !ok || rc != 0 {
		t.Fatalf("warm query rcode=%d ok=%v", rc, ok)
	}

	// Brownout: the clean proxy dies; its address is taken over by a
	// proxy that browns out every exchange and forwards the rest into
	// an unbound port. The sole upstream is now fully dark.
	clean.Close()
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAP := netip.MustParseAddrPort(dead.Addr().String())
	dead.Close()
	brown := proxyOn(t, proxyAddr, deadAP, faults.Config{
		Seed:     seed,
		Brownout: faults.Brownout{Every: 1, Len: 1 << 20, Mode: faults.BrownoutDrop},
	})
	defer brown.Close()

	time.Sleep(1200 * time.Millisecond) // let the 1s-capped TTL expire

	// Every repeat ask must still get an answer from the stale entry.
	const asks = 30
	for i := 0; i < asks; i++ {
		rc, ok := udpAsk(t, raddr, uint16(100+i), "www.d5.nl.")
		if !ok {
			t.Fatalf("brownout ask %d got no answer", i)
		}
		if rc != 0 {
			t.Fatalf("brownout ask %d rcode=%d, want stale NOERROR", i, rc)
		}
		time.Sleep(100 * time.Millisecond)
	}

	body := httpGet(t, "http://"+maddr+"/metrics")
	for _, want := range []string{
		"recursor_stale_served_total",
		"recursor_fail_cache_hits_total",
		"recursor_breaker_opens_total",
	} {
		if !metricPositive(body, want) {
			t.Fatalf("%s not live after the brownout:\n%s", want, body)
		}
	}

	// Recovery: clean path back on the same address. Once the fail mark
	// drains and the half-open probe succeeds, cold misses resolve.
	brown.Close()
	clean2 := proxyOn(t, proxyAddr, authAP, faults.Config{Seed: seed})
	defer clean2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		if rc, ok := udpAsk(t, raddr, uint16(900+i), "www.d9.nl."); ok && rc == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cold miss never recovered after the brownout lifted")
		}
		time.Sleep(200 * time.Millisecond)
	}
}
