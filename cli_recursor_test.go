package dnscentral_test

import (
	"encoding/json"
	"net"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// startRecursor boots cmd/recursor against the given upstream spec and
// waits for its TCP side to accept.
func startRecursor(t *testing.T, bin, upstreams string, extra ...string) (string, *syncBuilder, *exec.Cmd) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	args := append([]string{"-zone", "nl", "-listen", addr, "-upstreams", upstreams}, extra...)
	cmd := exec.Command(bin, args...)
	out := &syncBuilder{}
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return addr, out, cmd
		}
		if time.Now().After(deadline) {
			t.Fatalf("recursor did not come up: %s", out.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestCLIRecursorCacheTier is the acceptance run: two authserver
// "providers" behind cmd/recursor, a Zipf stub load from resolversim
// -stub, >90% cache hit rate scraped from /metrics.json, and the
// centralization report on shutdown.
func TestCLIRecursorCacheTier(t *testing.T) {
	bins := buildTools(t, "authserver", "recursor", "resolversim")
	addrA, _ := startAuthserver(t, bins["authserver"])
	addrB, _ := startAuthserver(t, bins["authserver"])

	raddr, rout, rcmd := startRecursor(t, bins["recursor"],
		"cloudA="+addrA+",cloudB="+addrB,
		"-metrics-addr", "127.0.0.1:0", "-hedge-delay", "250ms")
	maddr := waitMetricsAddr(t, rout)

	// Zipf skew over 200 names: most of 5000 queries repeat the head, so
	// the cache must absorb well over 90% of them.
	simOut := runTool(t, bins["resolversim"], "-server", raddr, "-zone", "nl",
		"-stub", "-n", "5000", "-stub-names", "200", "-stub-workers", "4", "-seed", "11")
	if !strings.Contains(simOut, "stub load:") {
		t.Fatalf("stub mode output:\n%s", simOut)
	}
	if !strings.Contains(simOut, "5000 answered, 0 timeouts") {
		t.Fatalf("stub queries lost:\n%s", simOut)
	}

	var raw map[string]any
	if err := json.Unmarshal([]byte(httpGet(t, "http://"+maddr+"/metrics.json")), &raw); err != nil {
		t.Fatal(err)
	}
	metric := func(name string) float64 {
		v, ok := raw[name].(float64)
		if !ok {
			t.Fatalf("metric %q missing or non-numeric: %v", name, raw[name])
		}
		return v
	}
	hits, misses := metric("recursor_cache_hits_total"), metric("recursor_cache_misses_total")
	if hits+misses < 5000 {
		t.Fatalf("cache lookups = %v, want ≥ 5000", hits+misses)
	}
	rate := hits / (hits + misses)
	if rate < 0.9 {
		t.Fatalf("hit rate = %.3f, want > 0.9 on the Zipf workload", rate)
	}
	if metric("recursor_stub_queries_total") < 5000 {
		t.Fatalf("stub counter = %v", metric("recursor_stub_queries_total"))
	}
	// EWMA-P2C state must be visible per upstream.
	body := httpGet(t, "http://"+maddr+"/metrics")
	for _, want := range []string{
		`recursor_upstream_queries_total{upstream="cloudA"}`,
		`recursor_upstream_queries_total{upstream="cloudB"}`,
		`recursor_upstream_ewma_rtt_us{upstream="cloudA"}`,
		"recursor_hedges_total",
		"recursor_answer_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// SIGINT: the run must end with the centralization report comparing
	// upstream and stub vantage shares.
	if err := rcmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := rcmd.Wait(); err != nil {
		t.Fatalf("recursor did not exit cleanly on SIGINT: %v\n%s", err, rout.String())
	}
	report := rout.String()
	for _, want := range []string{
		"centralization report", "hit rate", "provider shares",
		"cloudA", "cloudB", "HHI",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("shutdown report missing %q:\n%s", want, report)
		}
	}
}

// TestCLIRecursorAggressiveNSEC drives junk names through -aggressive
// and checks RFC 8198 synthesis shows up in the metrics.
func TestCLIRecursorAggressiveNSEC(t *testing.T) {
	bins := buildTools(t, "authserver", "recursor")
	addrA, _ := startAuthserver(t, bins["authserver"])
	raddr, rout, _ := startRecursor(t, bins["recursor"], "cloudA="+addrA,
		"-aggressive", "-metrics-addr", "127.0.0.1:0")
	maddr := waitMetricsAddr(t, rout)

	// Raw DO-bit queries for junk names over UDP; after the first
	// NXDOMAIN the learned NSEC range must deny the rest locally.
	conn, err := net.Dial("udp", raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		// Hand-built query: junk<i>zz.nl. A IN with a DO-bit OPT.
		name := []byte{7, 'j', 'u', 'n', 'k', byte('0' + i), 'z', 'z', 2, 'n', 'l', 0}
		q := []byte{0, byte(i + 1), 0, 0, 0, 1, 0, 0, 0, 0, 0, 1}
		q = append(q, name...)
		q = append(q, 0, 1, 0, 1)                              // A IN
		q = append(q, 0, 0, 41, 4, 208, 0, 0, 128, 0, 0, 0)    // OPT: 1232, DO
		if _, err := conn.Write(q); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 65535)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		if rcode := buf[3] & 0xF; rcode != 3 {
			t.Fatalf("junk%dzz.nl. rcode = %d, want NXDOMAIN", i, rcode)
		}
		_ = n
	}
	body := httpGet(t, "http://"+maddr+"/metrics")
	if !metricPositive(body, "recursor_aggressive_hits_total") {
		t.Fatalf("no aggressive NSEC synthesis recorded:\n%s", body)
	}
}
