package dnscentral_test

import (
	"net"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// startAuthserver launches the real authserver binary on a free port and
// waits until it accepts connections. The returned builder accumulates
// the server's combined output and is safe to read while it runs.
func startAuthserver(t *testing.T, bin string, extra ...string) (string, *syncBuilder) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	args := append([]string{"-zone", "nl", "-domains", "1000", "-listen", addr}, extra...)
	srv := exec.Command(bin, args...)
	out := &syncBuilder{}
	srv.Stdout, srv.Stderr = out, out
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = srv.Process.Kill()
		_, _ = srv.Process.Wait()
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return addr, out
		}
		if time.Now().After(deadline) {
			t.Fatalf("authserver did not come up: %s", out.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// robustnessSection cuts the robustness report block out of resolversim
// output ("" when the run printed none).
func robustnessSection(out string) string {
	i := strings.Index(out, "robustness report:")
	if i < 0 {
		return ""
	}
	return out[i:]
}

// TestCLIChaosDeterministicReport: two resolversim runs with the same
// -chaos-seed and impairment flags must emit byte-identical robustness
// reports — the acceptance bar for the seeded fault layer at the CLI.
func TestCLIChaosDeterministicReport(t *testing.T) {
	bins := buildTools(t, "authserver", "resolversim")
	addr, _ := startAuthserver(t, bins["authserver"])

	args := []string{
		"-server", addr, "-zone", "nl", "-n", "120",
		"-loss", "0.2", "-dup", "0.05", "-corrupt", "0.05",
		"-retries", "8", "-chaos-seed", "5",
	}
	runA := runTool(t, bins["resolversim"], args...)
	runB := runTool(t, bins["resolversim"], args...)

	repA, repB := robustnessSection(runA), robustnessSection(runB)
	if repA == "" || repB == "" {
		t.Fatalf("chaos run printed no robustness report:\n%s", runA)
	}
	if repA != repB {
		t.Fatalf("same -chaos-seed produced different reports:\n--- A ---\n%s--- B ---\n%s", repA, repB)
	}
	for _, want := range []string{"amplification", "faults injected", "failure rate"} {
		if !strings.Contains(repA, want) {
			t.Errorf("report missing %q:\n%s", want, repA)
		}
	}
	// A different seed must inject a different fault pattern.
	argsC := append(append([]string(nil), args[:len(args)-1]...), "17")
	if repC := robustnessSection(runTool(t, bins["resolversim"], argsC...)); repC == repA {
		t.Error("different -chaos-seed produced an identical report")
	}
}

// TestCLIChaosOffBaseline: without impairment flags resolversim must
// print the pre-chaos baseline output — no robustness section, original
// summary lines intact, zero failures.
func TestCLIChaosOffBaseline(t *testing.T) {
	bins := buildTools(t, "authserver", "resolversim")
	addr, _ := startAuthserver(t, bins["authserver"])

	out := runTool(t, bins["resolversim"], "-server", addr, "-zone", "nl", "-n", "80")
	if robustnessSection(out) != "" {
		t.Fatalf("clean run printed a robustness report:\n%s", out)
	}
	if !strings.Contains(out, "resolved 80 names (0 failures)") {
		t.Fatalf("baseline summary line missing or lookups failed:\n%s", out)
	}
	if !strings.Contains(out, "query mix at the authoritative server:") {
		t.Fatalf("baseline query-mix section missing:\n%s", out)
	}
}

// TestCLIChaosProxyImpairment exercises the authserver-side impairment
// proxy: resolversim's hardened transport must ride out duplicated and
// truncated responses injected on the server's wire.
func TestCLIChaosProxyImpairment(t *testing.T) {
	bins := buildTools(t, "authserver", "resolversim")
	addr, _ := startAuthserver(t, bins["authserver"],
		"-chaos-dup", "1", "-chaos-truncate", "0.2", "-chaos-seed", "3")

	out := runTool(t, bins["resolversim"],
		"-server", addr, "-zone", "nl", "-n", "60", "-retries", "4", "-timeout", "1s")
	if !strings.Contains(out, "resolved 60 names (0 failures)") {
		t.Fatalf("lookups failed through the impairment proxy:\n%s", out)
	}
	// Forced TC=1 responses must have driven TCP fallbacks through the
	// proxy's TCP relay.
	if strings.Contains(out, "TCP 0 (0 TC retries)") {
		t.Fatalf("no TCP fallback despite forced truncation:\n%s", out)
	}
}
