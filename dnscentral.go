// Package dnscentral is a full reproduction of "Clouding up the Internet:
// how centralized is DNS traffic becoming?" (Moura, Castro, Hardaker,
// Wullink, Hesselman — ACM IMC 2020) as a reusable Go library.
//
// The paper measures how much of the DNS traffic arriving at two ccTLDs
// (.nl, .nz) and one root server (B-Root) originates from five large
// cloud/content providers, and characterizes those providers' resolver
// fleets. The original traces are proprietary, so this library ships the
// complete substrate needed to regenerate them synthetically and the full
// analysis pipeline that turns raw packets into the paper's tables and
// figures:
//
//   - a DNS wire-format codec, Ethernet/IP/UDP/TCP layers and pcap I/O;
//   - an authoritative-server engine with referrals, DNSSEC material,
//     EDNS(0)-driven truncation and response rate limiting, servable over
//     real sockets;
//   - a caching recursive resolver with QNAME minimization, DNSSEC
//     validation, TCP fallback and RTT-driven dual-stack preference;
//   - an AS/prefix registry with the paper's Table-1 provider ASes;
//   - a behavior-calibrated workload generator and a mechanism-driven
//     simulator, both emitting standard pcap;
//   - the ENTRADA-style analysis engine and the per-table/per-figure
//     experiment layer.
//
// This package is a thin facade over the internal packages; the three
// entry points below cover the common flows. See the examples/ directory
// and cmd/ tools for end-to-end usage, and DESIGN.md for the system map.
package dnscentral

import (
	"io"

	"dnscentral/internal/astrie"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/core"
	"dnscentral/internal/entrada"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/workload"
)

// Re-exported identifiers so downstream code can speak the paper's
// vocabulary without reaching into internal packages.
type (
	// Vantage is a measurement vantage point (.nl, .nz, B-Root).
	Vantage = cloudmodel.Vantage
	// Week is a yearly snapshot (w2018, w2019, w2020).
	Week = cloudmodel.Week
	// Provider is one of the five studied cloud providers, or Other.
	Provider = astrie.Provider
	// TraceConfig parameterizes synthetic trace generation.
	TraceConfig = workload.Config
	// GroundTruth is the generator's oracle of what a trace contains.
	GroundTruth = workload.GroundTruth
	// Report is the JSON-serializable analysis summary.
	Report = entrada.Report
	// ExperimentConfig scales a full experiment run.
	ExperimentConfig = core.RunConfig
)

// Vantage and week constants.
const (
	VantageNL    = cloudmodel.VantageNL
	VantageNZ    = cloudmodel.VantageNZ
	VantageBRoot = cloudmodel.VantageBRoot
	W2018        = cloudmodel.W2018
	W2019        = cloudmodel.W2019
	W2020        = cloudmodel.W2020
)

// Provider constants (Table 1 of the paper).
const (
	Google     = astrie.ProviderGoogle
	Amazon     = astrie.ProviderAmazon
	Microsoft  = astrie.ProviderMicrosoft
	Facebook   = astrie.ProviderFacebook
	Cloudflare = astrie.ProviderCloudflare
	Other      = astrie.ProviderOther
)

// GenerateTrace writes a calibrated synthetic pcap trace for one
// vantage/week to w and returns the generation ground truth.
func GenerateTrace(cfg TraceConfig, w io.Writer) (*GroundTruth, error) {
	gen, err := workload.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	pw := pcapio.NewWriter(w, pcapio.WithNanosecondResolution())
	gt, err := gen.Run(pw)
	if err != nil {
		return nil, err
	}
	if err := pw.Flush(); err != nil {
		return nil, err
	}
	return gt, nil
}

// AnalyzeTrace runs the ENTRADA-style pipeline over a capture stream
// (classic pcap or pcapng, auto-detected) and returns the aggregate
// report (provider shares, junk, transports, EDNS CDFs, resolver
// counts...).
func AnalyzeTrace(r io.Reader) (*Report, error) {
	pr, err := pcapio.Open(r)
	if err != nil {
		return nil, err
	}
	reg := astrie.NewRegistry(astrie.MaxASes - 20)
	an := entrada.NewAnalyzer(reg)
	if err := an.AnalyzeReader(pr); err != nil {
		return nil, err
	}
	return entrada.BuildReport(an.Finish(), reg), nil
}

// RunExperiments executes the complete reproduction — every table and
// figure of the paper's evaluation — and writes a markdown comparison of
// paper vs measured values to w.
func RunExperiments(w io.Writer, cfg ExperimentConfig) error {
	return core.WriteExperimentsReport(w, cfg)
}

// PaperCitation is the canonical reference of the reproduced study.
const PaperCitation = "Moura, Castro, Hardaker, Wullink, Hesselman. " +
	"Clouding up the Internet: how centralized is DNS traffic becoming? " +
	"ACM IMC 2020. https://doi.org/10.1145/3419394.3423625"

// Version of the reproduction library.
const Version = "1.0.0"
