// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each BenchmarkTableN/BenchmarkFigureN runs the full
// generate→analyze pipeline for the relevant vantage/week and reports the
// quantities the paper's artifact shows as custom benchmark metrics
// (ratios ×100, i.e. percent); run with -v to see the rendered rows.
//
//	go test -bench=. -benchmem .
package dnscentral_test

import (
	"bytes"
	"context"
	"fmt"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/authserver"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/core"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/entrada"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/pipeline"
	"dnscentral/internal/resolver"
	"dnscentral/internal/sim"
	"dnscentral/internal/stats"
	"dnscentral/internal/workload"
	"dnscentral/internal/zonedb"
)

// benchCfg is the per-cell scale used by the macro benchmarks.
var benchCfg = core.RunConfig{TotalQueries: 40_000, ResolverScale: 0.004, Seed: 11}

// runCell runs one vantage/week pipeline.
func runCell(b *testing.B, v cloudmodel.Vantage, w cloudmodel.Week) *core.VWResult {
	b.Helper()
	res, err := core.Run(v, w, benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable2Datasets builds the three vantage zones at paper scale
// and reports their delegation counts (Table 2's zone sizes).
func BenchmarkTable2Datasets(b *testing.B) {
	var nlSize, nzSize int
	for i := 0; i < b.N; i++ {
		nl, err := zonedb.NewCcTLD("nl", 5_900_000, 0, 0.55, []string{"ns1.dns.nl", "ns3.dns.nl"})
		if err != nil {
			b.Fatal(err)
		}
		nz, err := zonedb.NewCcTLD("nz", 140_500, 574_500, 0.30, []string{"ns1.dns.net.nz"})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := zonedb.NewRoot(zonedb.DefaultRootTLDs, []string{"b.root-servers.net"}); err != nil {
			b.Fatal(err)
		}
		nlSize, nzSize = nl.Size(), nz.Size()
	}
	b.ReportMetric(float64(nlSize), "nl-domains")
	b.ReportMetric(float64(nzSize), "nz-domains")
	b.Logf("Table 2: .nl %d delegations (paper 5.9M), .nz %d (paper 710K split %d/%d)",
		nlSize, nzSize, cloudmodel.NZSecondLevel, cloudmodel.NZThirdLevel)
}

// BenchmarkTable3Datasets regenerates the dataset summary for .nl w2020.
func BenchmarkTable3Datasets(b *testing.B) {
	var row core.Table3Row
	for i := 0; i < b.N; i++ {
		row = core.Table3(runCell(b, cloudmodel.VantageNL, cloudmodel.W2020))
	}
	b.ReportMetric(100*row.ValidShare, "valid-pct")
	b.ReportMetric(100*row.PaperValidShare, "paper-valid-pct")
	b.ReportMetric(float64(row.Resolvers), "resolvers")
	b.Logf("Table 3:\n%s", core.RenderTable3([]core.Table3Row{row}))
}

// BenchmarkFigure1CloudRatio regenerates the cloud query ratios for all
// three vantages (w2020).
func BenchmarkFigure1CloudRatio(b *testing.B) {
	shares := map[cloudmodel.Vantage]float64{}
	for i := 0; i < b.N; i++ {
		for _, v := range cloudmodel.Vantages {
			res := runCell(b, v, cloudmodel.W2020)
			rows, cloud := core.Figure1(res)
			shares[v] = cloud
			if i == 0 {
				b.Logf("%s", core.RenderFigure1(v, cloudmodel.W2020, rows, cloud))
			}
		}
	}
	b.ReportMetric(100*shares[cloudmodel.VantageNL], "nl-cloud-pct")
	b.ReportMetric(100*shares[cloudmodel.VantageNZ], "nz-cloud-pct")
	b.ReportMetric(100*shares[cloudmodel.VantageBRoot], "broot-cloud-pct")
}

// BenchmarkFigure2RRTypes regenerates the record-type mix (.nl, 2018 vs
// 2020 — the Q-min signature).
func BenchmarkFigure2RRTypes(b *testing.B) {
	var ns2018, ns2020 float64
	for i := 0; i < b.N; i++ {
		for _, w := range []cloudmodel.Week{cloudmodel.W2018, cloudmodel.W2020} {
			res := runCell(b, cloudmodel.VantageNL, w)
			rows := core.Figure2(res)
			for _, r := range rows {
				if r.Provider == astrie.ProviderGoogle {
					if w == cloudmodel.W2018 {
						ns2018 = r.Shares[dnswire.TypeNS]
					} else {
						ns2020 = r.Shares[dnswire.TypeNS]
					}
				}
			}
			if i == 0 {
				b.Logf("Figure 2 (.nl %s):\n%s", w, core.RenderFigure2(rows))
			}
		}
	}
	b.ReportMetric(100*ns2018, "google-ns-2018-pct")
	b.ReportMetric(100*ns2020, "google-ns-2020-pct")
}

// BenchmarkFigure3GoogleMonthly regenerates the 18-month Google series at
// .nl and dates the Q-min deployment.
func BenchmarkFigure3GoogleMonthly(b *testing.B) {
	var points []core.Figure3Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = core.Figure3(cloudmodel.VantageNL, 4000, 0.003, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	m, ok := core.QminAdoptionMonth(points, 0.5)
	if !ok {
		b.Fatal("no adoption month")
	}
	b.ReportMetric(float64(m.Year), "adoption-year")
	b.ReportMetric(float64(m.Month), "adoption-month")
	b.Logf("%s", core.RenderFigure3(cloudmodel.VantageNL, points))
}

// BenchmarkTable4GooglePublic regenerates Google's public-DNS split.
func BenchmarkTable4GooglePublic(b *testing.B) {
	var t4 core.Table4Result
	for i := 0; i < b.N; i++ {
		t4 = core.Table4(runCell(b, cloudmodel.VantageNL, cloudmodel.W2020))
	}
	b.ReportMetric(100*t4.QueryShare, "public-query-pct")
	b.ReportMetric(100*t4.ResolverShare, "public-resolver-pct")
	b.Logf("Table 4:\n%s", core.RenderTable4(t4, cloudmodel.PaperTable4[0]))
}

// BenchmarkFigure4JunkRatio regenerates the junk ratios at B-Root.
func BenchmarkFigure4JunkRatio(b *testing.B) {
	var overall, other float64
	var rows []core.Figure4Row
	for i := 0; i < b.N; i++ {
		rows, overall, other = core.Figure4(runCell(b, cloudmodel.VantageBRoot, cloudmodel.W2020))
	}
	b.ReportMetric(100*overall, "overall-junk-pct")
	b.ReportMetric(100*other, "longtail-junk-pct")
	b.Logf("Figure 4 (B-Root w2020):\n%s", core.RenderFigure4(rows, overall, other))
}

// BenchmarkTable5Transport regenerates the per-provider transport split.
func BenchmarkTable5Transport(b *testing.B) {
	var rows []core.Table5Row
	for i := 0; i < b.N; i++ {
		rows = core.Table5(runCell(b, cloudmodel.VantageNL, cloudmodel.W2020))
	}
	for _, r := range rows {
		if r.Provider == astrie.ProviderFacebook {
			b.ReportMetric(100*r.IPv6, "fb-v6-pct")
			b.ReportMetric(100*r.TCP, "fb-tcp-pct")
		}
	}
	b.Logf("Table 5 (.nl w2020):\n%s", core.RenderTable5(rows))
}

// BenchmarkTable6Resolvers regenerates the resolver family counts.
func BenchmarkTable6Resolvers(b *testing.B) {
	var rows []core.Table6Row
	for i := 0; i < b.N; i++ {
		rows = core.Table6(runCell(b, cloudmodel.VantageNL, cloudmodel.W2020))
	}
	for _, r := range rows {
		if r.Provider == astrie.ProviderAmazon {
			b.ReportMetric(100*r.V6Frac, "amazon-resolver-v6-pct")
		}
	}
	b.Logf("Table 6 (.nl w2020):\n%s", core.RenderTable6(cloudmodel.VantageNL, rows))
}

// BenchmarkFigure5FacebookRTT regenerates the per-site analysis for both
// .nl servers.
func BenchmarkFigure5FacebookRTT(b *testing.B) {
	var sitesA, sitesB []core.SiteStats
	for i := 0; i < b.N; i++ {
		res := runCell(b, cloudmodel.VantageNL, cloudmodel.W2020)
		var err error
		if sitesA, err = core.Figure5(res, 0); err != nil {
			b.Fatal(err)
		}
		if sitesB, err = core.Figure5(res, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(sitesA)), "sites")
	b.Logf("%s\n%s", core.RenderFigure5(0, sitesA), core.RenderFigure5(1, sitesB))
}

// BenchmarkFigure6EDNSCDF regenerates the EDNS size CDFs and truncation.
func BenchmarkFigure6EDNSCDF(b *testing.B) {
	var f6 core.Figure6Result
	for i := 0; i < b.N; i++ {
		f6 = core.Figure6(runCell(b, cloudmodel.VantageNL, cloudmodel.W2020))
	}
	b.ReportMetric(100*f6.FacebookAt512, "fb-cdf512-pct")
	b.ReportMetric(100*f6.Truncation[astrie.ProviderFacebook], "fb-trunc-pct")
	b.ReportMetric(100*f6.Truncation[astrie.ProviderGoogle], "google-trunc-pct")
	b.Logf("Figure 6:\n%s", core.RenderFigure6(f6))
}

// --- Ablations ----------------------------------------------------------

// BenchmarkAblationQnameMin compares the mechanism-driven simulator's NS
// share with and without Q-min: the Figure 3 jump from first principles.
func BenchmarkAblationQnameMin(b *testing.B) {
	var nsOn, nsOff float64
	for i := 0; i < b.N; i++ {
		for _, qmin := range []bool{false, true} {
			zone, err := zonedb.NewCcTLD("nl", 5000, 0, 0.55, []string{"ns1.dns.nl"})
			if err != nil {
				b.Fatal(err)
			}
			s, err := sim.New(sim.Config{Zone: zone})
			if err != nil {
				b.Fatal(err)
			}
			reg := astrie.NewRegistry(1)
			addr, _ := reg.ResolverAddr(15169, false, false, 1)
			r, err := s.AddResolver(sim.ResolverSpec{
				Addr4:  addr,
				Config: resolver.Config{Qmin: qmin, EDNSSize: 1232},
			})
			if err != nil {
				b.Fatal(err)
			}
			for q := 0; q < 1000; q++ {
				if _, err := r.Resolve(fmt.Sprintf("www.d%d.nl.", q), dnswire.TypeA); err != nil {
					b.Fatal(err)
				}
			}
			st := r.Stats()
			ns := float64(st.ByType[dnswire.TypeNS]) / float64(st.Sent)
			if qmin {
				nsOn = ns
			} else {
				nsOff = ns
			}
		}
	}
	b.ReportMetric(100*nsOn, "ns-share-qmin-pct")
	b.ReportMetric(100*nsOff, "ns-share-classic-pct")
}

// BenchmarkAblationEDNS sweeps advertised EDNS sizes against a live
// engine and reports the TCP fallback crossover.
func BenchmarkAblationEDNS(b *testing.B) {
	var tcp512, tcp1232 float64
	for i := 0; i < b.N; i++ {
		zone, err := zonedb.NewCcTLD("nl", 5000, 0, 0.55, []string{"ns1.dns.nl"})
		if err != nil {
			b.Fatal(err)
		}
		engine := authserver.NewEngine(zone)
		for _, size := range []uint16{512, 1232} {
			r := resolver.New("nl.", resolver.Config{Validate: true, EDNSSize: size})
			r.AddUpstream(resolver.FamilyV4, &resolver.EngineTransport{
				Engine: engine, Client: netip.MustParseAddr("100.0.0.7"),
			})
			for q := 0; q < 500; q++ {
				if _, err := r.Resolve(fmt.Sprintf("www.d%d.nl.", q+int(size)), dnswire.TypeA); err != nil {
					b.Fatal(err)
				}
			}
			st := r.Stats()
			share := float64(st.ByTCP[true]) / float64(st.Sent)
			if size == 512 {
				tcp512 = share
			} else {
				tcp1232 = share
			}
		}
	}
	b.ReportMetric(100*tcp512, "tcp-share-512-pct")
	b.ReportMetric(100*tcp1232, "tcp-share-1232-pct")
}

// BenchmarkAblationAggressiveNSEC measures §4.2.3's junk-suppression
// mechanism: how many junk queries reach the authoritative server with
// and without RFC 8198 aggressive negative caching.
func BenchmarkAblationAggressiveNSEC(b *testing.B) {
	var sentPlain, sentAggressive uint64
	for i := 0; i < b.N; i++ {
		zone, err := zonedb.NewCcTLD("nl", 5000, 0, 0.55, []string{"ns1.dns.nl"})
		if err != nil {
			b.Fatal(err)
		}
		engine := authserver.NewEngine(zone)
		for _, aggressive := range []bool{false, true} {
			r := resolver.New("nl.", resolver.Config{
				Validate:       true,
				AggressiveNSEC: aggressive,
				EDNSSize:       4096,
			})
			r.AddUpstream(resolver.FamilyV4, &resolver.EngineTransport{
				Engine: engine, Client: netip.MustParseAddr("100.0.0.8"),
			})
			for q := 0; q < 500; q++ {
				if _, err := r.Resolve(fmt.Sprintf("chromium%djunk.nl.", q), dnswire.TypeA); err != nil {
					b.Fatal(err)
				}
			}
			if aggressive {
				sentAggressive = r.Stats().Sent
			} else {
				sentPlain = r.Stats().Sent
			}
		}
	}
	b.ReportMetric(float64(sentPlain), "junk-queries-plain")
	b.ReportMetric(float64(sentAggressive), "junk-queries-rfc8198")
}

// BenchmarkAblationHierarchy walks the full root→TLD→leaf tree and
// reports each level's share of total queries: caching makes the root's
// share collapse — the mechanism behind Figure 1's 8.7% (B-Root) vs >30%
// (ccTLD) asymmetry.
func BenchmarkAblationHierarchy(b *testing.B) {
	var rootShare, tldShare float64
	for i := 0; i < b.N; i++ {
		nl, err := zonedb.NewCcTLD("nl", 5000, 0, 0.55, []string{"ns1.dns.nl"})
		if err != nil {
			b.Fatal(err)
		}
		h, err := sim.NewHierarchy(nl)
		if err != nil {
			b.Fatal(err)
		}
		now := time.Unix(1586000000, 0)
		c := h.NewIterClient(netip.MustParseAddr("100.0.0.9"), true,
			func() time.Time { return now })
		for q := 0; q < 1000; q++ {
			if _, err := c.Resolve(fmt.Sprintf("www.d%d.nl.", q), dnswire.TypeA); err != nil {
				b.Fatal(err)
			}
		}
		st := c.Stats()
		total := float64(st.Root + st.TLD + st.Leaf)
		rootShare = float64(st.Root) / total
		tldShare = float64(st.TLD) / total
	}
	b.ReportMetric(100*rootShare, "root-share-pct")
	b.ReportMetric(100*tldShare, "tld-share-pct")
}

// BenchmarkAblationCounting compares exact resolver-set counting with the
// HyperLogLog estimator ENTRADA-scale deployments would use.
func BenchmarkAblationCounting(b *testing.B) {
	const n = 200_000
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("resolver-%d", i%50_000)
	}
	b.Run("exact-set", func(b *testing.B) {
		b.ReportAllocs()
		var card int
		for i := 0; i < b.N; i++ {
			set := make(map[string]struct{}, 1024)
			for _, k := range keys {
				set[k] = struct{}{}
			}
			card = len(set)
		}
		b.ReportMetric(float64(card), "cardinality")
	})
	b.Run("hyperloglog", func(b *testing.B) {
		b.ReportAllocs()
		var est float64
		for i := 0; i < b.N; i++ {
			h := stats.NewHLL(12)
			for _, k := range keys {
				h.AddString(k)
			}
			est = h.Estimate()
		}
		b.ReportMetric(est, "cardinality")
	})
}

// BenchmarkPipelineThroughput measures end-to-end generate+analyze packets
// per second — the reproduction's answer to ENTRADA's throughput numbers.
func BenchmarkPipelineThroughput(b *testing.B) {
	b.ReportAllocs()
	var total uint64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(cloudmodel.VantageNL, cloudmodel.W2020, core.RunConfig{
			TotalQueries: 20_000, ResolverScale: 0.002, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		total = res.Agg.Total
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds()/float64(b.N), "queries/s")
}

// BenchmarkPipelineIngest compares flow-sharded pcap ingestion at one
// worker vs all cores over the same pre-generated capture — the tentpole
// speedup number. The capture is rendered once; each iteration re-reads it
// from memory through pipeline.Run.
func BenchmarkPipelineIngest(b *testing.B) {
	gen, err := workload.NewGenerator(workload.Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020,
		TotalQueries: 150_000, ResolverScale: 0.01, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf)
	if _, err := gen.Run(w); err != nil {
		b.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	blob := buf.Bytes()
	reg := gen.Registry()
	anOpts := []entrada.Option{entrada.WithZoneOrigin(gen.Zone().Origin)}

	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		b.SetBytes(int64(len(blob)))
		var pps float64
		for i := 0; i < b.N; i++ {
			r, err := pcapio.Open(bytes.NewReader(blob))
			if err != nil {
				b.Fatal(err)
			}
			_, st, err := pipeline.Run(context.Background(), []pcapio.PacketReader{r}, pipeline.Options{
				Workers: workers, Registry: reg, AnalyzerOpts: anOpts,
			})
			if err != nil {
				b.Fatal(err)
			}
			pps = st.PacketsPerSec
		}
		b.ReportMetric(pps, "pkt/s")
	}
	b.Run("workers=1", func(b *testing.B) { run(b, 1) })
	// On a single-core box the best contrast available is the sharded
	// path's overhead at 4 workers; with real cores this measures speedup.
	par := runtime.GOMAXPROCS(0)
	if par < 4 {
		par = 4
	}
	b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) { run(b, par) })
}

