package dnscentral_test

import (
	"bytes"
	"strings"
	"testing"

	"dnscentral"
)

func TestFacadeGenerateAndAnalyze(t *testing.T) {
	var trace bytes.Buffer
	truth, err := dnscentral.GenerateTrace(dnscentral.TraceConfig{
		Vantage:       dnscentral.VantageNL,
		Week:          dnscentral.W2020,
		TotalQueries:  10_000,
		ResolverScale: 0.002,
		Seed:          1,
	}, &trace)
	if err != nil {
		t.Fatal(err)
	}
	if truth.Queries < 10_000 {
		t.Fatalf("queries = %d", truth.Queries)
	}
	report, err := dnscentral.AnalyzeTrace(&trace)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalQueries != truth.Queries {
		t.Fatalf("report total %d != truth %d", report.TotalQueries, truth.Queries)
	}
	if report.CloudShare < 0.25 || report.CloudShare > 0.42 {
		t.Errorf("cloud share = %.3f", report.CloudShare)
	}
	for _, p := range []string{"Google", "Amazon", "Microsoft", "Facebook", "Cloudflare"} {
		if report.Providers[p].Queries == 0 {
			t.Errorf("%s missing from report", p)
		}
	}
}

func TestFacadeGenerateRejectsBadConfig(t *testing.T) {
	var buf bytes.Buffer
	if _, err := dnscentral.GenerateTrace(dnscentral.TraceConfig{}, &buf); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestFacadeAnalyzeRejectsGarbage(t *testing.T) {
	if _, err := dnscentral.AnalyzeTrace(strings.NewReader("not a pcap")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFacadeRunExperimentsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	var out bytes.Buffer
	err := dnscentral.RunExperiments(&out, dnscentral.ExperimentConfig{
		TotalQueries:  5_000,
		ResolverScale: 0.002,
		Seed:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := out.String()
	for _, want := range []string{
		"## Table 2", "## Table 3", "## Figure 1", "## Figures 2 and 7",
		"## Figure 3", "## Tables 4 and 7", "## Figure 4", "## Table 5",
		"## Table 6", "## Figures 5 and 8", "## Figure 6",
		"Detected Q-min adoption: 2019-12",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("experiments report missing %q", want)
		}
	}
}

func TestFacadeConstants(t *testing.T) {
	if !strings.Contains(dnscentral.PaperCitation, "IMC 2020") {
		t.Error("citation wrong")
	}
	if dnscentral.Google.String() != "Google" || !dnscentral.Cloudflare.IsCloud() {
		t.Error("provider aliases wrong")
	}
	if dnscentral.Version == "" {
		t.Error("version empty")
	}
}
