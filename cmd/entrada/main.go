// Command entrada analyzes an authoritative-side DNS pcap into the
// aggregate report the paper's tables and figures are computed from —
// the single-machine counterpart of the ENTRADA warehouse.
//
// Usage:
//
//	entrada -in nl-w2020.pcap -out nl-w2020.json   # accepts pcap and pcapng
//
// Pass -in multiple times to analyze shards of a split capture; the
// per-shard aggregates are merged before reporting. Ingestion is
// flow-sharded across -workers cores (default: all of them); -workers 1
// preserves the exact sequential behavior. -metrics-addr serves live
// ingestion counters over HTTP while the run is in flight.
//
// With -follow, entrada becomes a long-running service: it tails one
// growing capture (waiting through torn final records until the writer
// completes them), publishes a centralization time series in tumbling
// -window intervals of capture time, and — with -checkpoint DIR —
// persists analyzer state and read offset so a killed run restarted
// with -resume produces the exact report an uninterrupted run would
// have. SIGINT/SIGTERM flush the final partial window and write the
// report; -idle-exit ends the run once the capture stops growing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/core"
	"dnscentral/internal/entrada"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/pipeline"
	"dnscentral/internal/profiling"
	"dnscentral/internal/telemetry"
)

// prof is package-level so fatal can flush profiles before os.Exit.
var prof *profiling.Flags

// lazyPcap defers opening its file until the pipeline first reads from
// it and closes it the moment ingestion finishes (EOF or error). Open
// descriptors are therefore bounded by ingestion concurrency, not by
// the number of -in flags — a thousand shards no longer trip ulimit -n.
type lazyPcap struct {
	path string
	f    *os.File
	r    pcapio.PacketReader
	done bool
}

func (l *lazyPcap) ReadPacket() (pcapio.Packet, error) {
	if l.done {
		return pcapio.Packet{}, io.EOF
	}
	if l.r == nil {
		f, err := os.Open(l.path)
		if err != nil {
			l.done = true
			return pcapio.Packet{}, err
		}
		r, err := pcapio.Open(f)
		if err != nil {
			f.Close()
			l.done = true
			return pcapio.Packet{}, fmt.Errorf("%s: %w", l.path, err)
		}
		l.f, l.r = f, r
	}
	pkt, err := l.r.ReadPacket()
	if err != nil {
		l.done = true
		l.f.Close()
		l.f, l.r = nil, nil
	}
	return pkt, err
}

func main() {
	var inputs []string
	flag.Func("in", "input pcap path (repeatable for shards)", func(v string) error {
		inputs = append(inputs, v)
		return nil
	})
	out := flag.String("out", "", "output JSON report path (default stdout)")
	zone := flag.String("zone", "", "zone origin the capture's server is authoritative for (enables the Q-min heuristic), e.g. nl")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "flow-shard worker count (1 = sequential)")
	progress := flag.Duration("progress", 0, "print ingestion progress at this interval, e.g. 2s (0 disables)")
	follow := flag.Bool("follow", false, "tail a single growing capture continuously (one -in only)")
	window := flag.Duration("window", time.Minute, "tumbling window width in capture time for -follow")
	ckDir := flag.String("checkpoint", "", "directory for -follow checkpoints (state + read offset)")
	resume := flag.Bool("resume", false, "resume -follow from the checkpoint in -checkpoint")
	idleExit := flag.Duration("idle-exit", 0, "end -follow once the capture stops growing for this long (0 = until signalled)")
	tm := telemetry.RegisterFlags(flag.CommandLine)
	prof = profiling.Register(flag.CommandLine)
	flag.Parse()
	if len(inputs) == 0 {
		fmt.Fprintln(os.Stderr, "entrada: at least one -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer prof.Stop()

	reg := tm.Registry()
	stopTm, err := tm.Start(func(w io.Writer) {
		fmt.Fprintf(w, "entrada: %d packets (%d malformed, %d dropped segments)",
			reg.Counter(pipeline.MetricPackets).Value(),
			reg.Counter(pipeline.MetricMalformed).Value(),
			reg.Counter(pipeline.MetricDropped).Value())
	})
	if err != nil {
		fatal(err)
	}
	defer stopTm()

	// The synthetic prefix allocation is ordinal-stable, so the analyzer
	// can always use the maximal registry regardless of how many
	// long-tail ASes the generator used.
	asReg := astrie.NewRegistry(astrie.MaxASes - 20)
	var anOpts []entrada.Option
	if *zone != "" {
		anOpts = append(anOpts, entrada.WithZoneOrigin(*zone))
	}

	if *follow {
		if len(inputs) != 1 {
			fmt.Fprintln(os.Stderr, "entrada: -follow takes exactly one -in")
			os.Exit(2)
		}
		if err := runFollow(inputs[0], followConfig{
			registry: asReg, anOpts: anOpts, telemetry: reg,
			window: *window, checkpointDir: *ckDir, resume: *resume,
			idleExit: *idleExit, progress: *progress, out: *out,
		}); err != nil {
			fatal(err)
		}
		stopTm()
		return
	}

	readers := make([]pcapio.PacketReader, len(inputs))
	for i, path := range inputs {
		readers[i] = &lazyPcap{path: path}
	}

	opts := pipeline.Options{
		Workers:      *workers,
		Registry:     asReg,
		AnalyzerOpts: anOpts,
		Telemetry:    reg,
	}
	if *progress > 0 {
		opts.ProgressInterval = *progress
		opts.Progress = func(st pipeline.Stats) {
			fmt.Fprintf(os.Stderr, "%s (queues %v)\n", st, st.QueueDepths)
		}
	}
	ag, st, err := pipeline.Run(context.Background(), readers, opts)
	if err != nil {
		fatal(err)
	}

	// Per-file and total malformed accounting: a capture whose every
	// packet is malformed is almost certainly the wrong file.
	allBad := false
	for i, fs := range st.PerFile {
		if fs.Malformed > 0 {
			fmt.Fprintf(os.Stderr, "entrada: %s: skipped %d malformed packets\n", inputs[i], fs.Malformed)
		}
		if fs.Packets > 0 && fs.Malformed == fs.Packets {
			fmt.Fprintf(os.Stderr, "entrada: %s: all %d packets malformed — wrong file?\n", inputs[i], fs.Packets)
			allBad = true
		}
	}
	if len(inputs) > 1 && st.Malformed > 0 {
		fmt.Fprintf(os.Stderr, "entrada: %d malformed packets total across %d inputs\n", st.Malformed, len(inputs))
	}
	fmt.Fprintf(os.Stderr, "%s [%d packets, %d workers, %s, %.0f pkt/s]\n",
		ag, st.PacketsRead, st.Workers, st.Elapsed.Round(time.Millisecond), st.PacketsPerSec)

	rep := entrada.BuildReport(ag, asReg)
	if err := writeReport(rep, *out); err != nil {
		fatal(err)
	}
	stopTm()
	if allBad {
		prof.Stop()
		os.Exit(1)
	}
}

// followConfig carries the -follow flag set into runFollow.
type followConfig struct {
	registry      *astrie.Registry
	anOpts        []entrada.Option
	telemetry     *telemetry.Registry
	window        time.Duration
	checkpointDir string
	resume        bool
	idleExit      time.Duration
	progress      time.Duration
	out           string
}

// runFollow is the continuous-operation mode: tail one growing capture
// until idle-exit or SIGINT/SIGTERM, emitting one line per closed window
// and — on shutdown — the window series plus the same JSON report batch
// mode writes. A SIGKILL instead loses at most the packets since the
// last checkpoint; restarting with -resume replays them, so the final
// report is still byte-identical to an uninterrupted run.
func runFollow(input string, cfg followConfig) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sopts := pipeline.StreamOptions{
		Options: pipeline.Options{
			Registry:     cfg.registry,
			AnalyzerOpts: cfg.anOpts,
			Telemetry:    cfg.telemetry,
		},
		Window:        cfg.window,
		CheckpointDir: cfg.checkpointDir,
		Resume:        cfg.resume,
		IdleExit:      cfg.idleExit,
		OnWindow: func(w pipeline.Window) {
			fmt.Fprintf(os.Stderr, "entrada: window %s: %d queries, HHI %.3f, top share %.1f%%\n",
				w.Start.Format(time.RFC3339), w.Queries, w.HHI, 100*w.Top1)
		},
	}
	if cfg.progress > 0 {
		sopts.ProgressInterval = cfg.progress
		sopts.Progress = func(st pipeline.Stats) { fmt.Fprintln(os.Stderr, st.String()) }
	}

	ag, sres, err := pipeline.RunStream(ctx, input, sopts)
	stop()
	if err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	if sres.Resumed {
		fmt.Fprintf(os.Stderr, "entrada: resumed from checkpoint (%d windows closed before restart)\n",
			sres.WindowsClosed-uint64(len(sres.Windows)))
	}
	// A long follow can close thousands of windows; cap the shutdown
	// table at the most recent ones (the full series already went out
	// live, one line per window).
	series := sres.Windows
	const maxRows = 48
	if len(series) > maxRows {
		fmt.Fprintf(os.Stderr, "entrada: window series truncated to the last %d of %d windows\n", maxRows, len(series))
		series = series[len(series)-maxRows:]
	}
	fmt.Fprint(os.Stderr, core.RenderWindowSeries(series))
	fmt.Fprintf(os.Stderr, "%s [%d packets, offset %d, %d truncated tails, %d rotations]\n",
		ag, sres.Stats.PacketsRead, sres.Offset, sres.TruncatedTails, sres.Rotations)

	rep := entrada.BuildReport(ag, cfg.registry)
	return writeReport(rep, cfg.out)
}

// writeReport writes the JSON report to path (stdout when empty). The
// Close error is checked: on a full disk the kernel often accepts the
// buffered writes and only fails the final flush, so ignoring it would
// report success over a truncated file.
func writeReport(rep *entrada.Report, path string) error {
	if path == "" {
		return rep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("%s: close: %w", path, err)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "entrada:", err)
	prof.Stop()
	os.Exit(1)
}
