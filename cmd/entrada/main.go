// Command entrada analyzes an authoritative-side DNS pcap into the
// aggregate report the paper's tables and figures are computed from —
// the single-machine counterpart of the ENTRADA warehouse.
//
// Usage:
//
//	entrada -in nl-w2020.pcap -out nl-w2020.json   # accepts pcap and pcapng
//
// Pass -in multiple times to analyze shards of a split capture; the
// per-shard aggregates are merged before reporting.
package main

import (
	"flag"
	"fmt"
	"os"

	"dnscentral/internal/astrie"
	"dnscentral/internal/entrada"
	"dnscentral/internal/pcapio"
)

func main() {
	var inputs []string
	flag.Func("in", "input pcap path (repeatable for shards)", func(v string) error {
		inputs = append(inputs, v)
		return nil
	})
	out := flag.String("out", "", "output JSON report path (default stdout)")
	zone := flag.String("zone", "", "zone origin the capture's server is authoritative for (enables the Q-min heuristic), e.g. nl")
	flag.Parse()
	if len(inputs) == 0 {
		fmt.Fprintln(os.Stderr, "entrada: at least one -in is required")
		flag.Usage()
		os.Exit(2)
	}

	// The synthetic prefix allocation is ordinal-stable, so the analyzer
	// can always use the maximal registry regardless of how many
	// long-tail ASes the generator used.
	reg := astrie.NewRegistry(astrie.MaxASes - 20)
	var opts []entrada.Option
	if *zone != "" {
		opts = append(opts, entrada.WithZoneOrigin(*zone))
	}
	var ag *entrada.Aggregates
	for _, path := range inputs {
		shard, malformed, err := analyzeFile(reg, path, opts)
		if err != nil {
			fatal(err)
		}
		if malformed > 0 {
			fmt.Fprintf(os.Stderr, "entrada: %s: skipped %d malformed packets\n", path, malformed)
		}
		if ag == nil {
			ag = shard
		} else {
			ag.Merge(shard)
		}
	}
	fmt.Fprintln(os.Stderr, ag)

	rep := entrada.BuildReport(ag, reg)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fatal(err)
	}
}

func analyzeFile(reg *astrie.Registry, path string, opts []entrada.Option) (*entrada.Aggregates, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	r, err := pcapio.Open(f)
	if err != nil {
		return nil, 0, err
	}
	an := entrada.NewAnalyzer(reg, opts...)
	if err := an.AnalyzeReader(r); err != nil {
		return nil, 0, err
	}
	return an.Finish(), an.MalformedPackets, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "entrada:", err)
	os.Exit(1)
}
