// Command entrada analyzes an authoritative-side DNS pcap into the
// aggregate report the paper's tables and figures are computed from —
// the single-machine counterpart of the ENTRADA warehouse.
//
// Usage:
//
//	entrada -in nl-w2020.pcap -out nl-w2020.json   # accepts pcap and pcapng
//
// Pass -in multiple times to analyze shards of a split capture; the
// per-shard aggregates are merged before reporting. Ingestion is
// flow-sharded across -workers cores (default: all of them); -workers 1
// preserves the exact sequential behavior.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/entrada"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/pipeline"
	"dnscentral/internal/profiling"
)

// prof is package-level so fatal can flush profiles before os.Exit.
var prof *profiling.Flags

func main() {
	var inputs []string
	flag.Func("in", "input pcap path (repeatable for shards)", func(v string) error {
		inputs = append(inputs, v)
		return nil
	})
	out := flag.String("out", "", "output JSON report path (default stdout)")
	zone := flag.String("zone", "", "zone origin the capture's server is authoritative for (enables the Q-min heuristic), e.g. nl")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "flow-shard worker count (1 = sequential)")
	progress := flag.Duration("progress", 0, "print ingestion progress at this interval, e.g. 2s (0 disables)")
	prof = profiling.Register(flag.CommandLine)
	flag.Parse()
	if len(inputs) == 0 {
		fmt.Fprintln(os.Stderr, "entrada: at least one -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer prof.Stop()

	// The synthetic prefix allocation is ordinal-stable, so the analyzer
	// can always use the maximal registry regardless of how many
	// long-tail ASes the generator used.
	reg := astrie.NewRegistry(astrie.MaxASes - 20)
	var anOpts []entrada.Option
	if *zone != "" {
		anOpts = append(anOpts, entrada.WithZoneOrigin(*zone))
	}

	readers := make([]pcapio.PacketReader, len(inputs))
	for i, path := range inputs {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if readers[i], err = pcapio.Open(f); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}

	opts := pipeline.Options{
		Workers:      *workers,
		Registry:     reg,
		AnalyzerOpts: anOpts,
	}
	if *progress > 0 {
		opts.ProgressInterval = *progress
		opts.Progress = func(st pipeline.Stats) {
			fmt.Fprintf(os.Stderr, "%s (queues %v)\n", st, st.QueueDepths)
		}
	}
	ag, st, err := pipeline.Run(context.Background(), readers, opts)
	if err != nil {
		fatal(err)
	}

	// Per-file and total malformed accounting: a capture whose every
	// packet is malformed is almost certainly the wrong file.
	allBad := false
	for i, fs := range st.PerFile {
		if fs.Malformed > 0 {
			fmt.Fprintf(os.Stderr, "entrada: %s: skipped %d malformed packets\n", inputs[i], fs.Malformed)
		}
		if fs.Packets > 0 && fs.Malformed == fs.Packets {
			fmt.Fprintf(os.Stderr, "entrada: %s: all %d packets malformed — wrong file?\n", inputs[i], fs.Packets)
			allBad = true
		}
	}
	if len(inputs) > 1 && st.Malformed > 0 {
		fmt.Fprintf(os.Stderr, "entrada: %d malformed packets total across %d inputs\n", st.Malformed, len(inputs))
	}
	fmt.Fprintf(os.Stderr, "%s [%d packets, %d workers, %s, %.0f pkt/s]\n",
		ag, st.PacketsRead, st.Workers, st.Elapsed.Round(time.Millisecond), st.PacketsPerSec)

	rep := entrada.BuildReport(ag, reg)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fatal(err)
	}
	if allBad {
		prof.Stop()
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "entrada:", err)
	prof.Stop()
	os.Exit(1)
}
