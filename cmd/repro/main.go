// Command repro runs the complete reproduction — every table and figure of
// the paper's evaluation — and writes an EXPERIMENTS.md-style comparison
// of paper vs measured values.
//
// Usage:
//
//	repro -queries 200000 -out EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"dnscentral/internal/core"
	"dnscentral/internal/pipeline"
	"dnscentral/internal/profiling"
	"dnscentral/internal/telemetry"
)

// prof is package-level so fatal can flush profiles before os.Exit.
var prof *profiling.Flags

func main() {
	var (
		queries = flag.Int("queries", 200_000, "query events per vantage/week")
		scale   = flag.Float64("scale", 0.01, "resolver population scale")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "vantage/week cells and flow shards run under this worker budget (1 = sequential)")
		out     = flag.String("out", "", "output path (default stdout)")
	)
	tm := telemetry.RegisterFlags(flag.CommandLine)
	prof = profiling.Register(flag.CommandLine)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer prof.Stop()

	reg := tm.Registry()
	stopTm, err := tm.Start(func(w io.Writer) {
		fmt.Fprintf(w, "repro: %d events generated, %d packets analyzed",
			reg.Counter("workload_events_total").Value(),
			reg.Counter(pipeline.MetricPackets).Value())
	})
	if err != nil {
		fatal(err)
	}
	defer stopTm()

	start := time.Now()
	rc := core.RunConfig{
		TotalQueries:  *queries,
		ResolverScale: *scale,
		Seed:          *seed,
		Workers:       *workers,
		Telemetry:     reg,
	}
	if err := writeReport(rc, *out); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "repro: done in %v\n", time.Since(start).Round(time.Millisecond))
}

// writeReport writes the comparison report to path (stdout when empty),
// surfacing the Close error — on a full disk only the final flush may
// fail, and a truncated EXPERIMENTS.md must not exit 0.
func writeReport(rc core.RunConfig, path string) error {
	if path == "" {
		return core.WriteExperimentsReport(os.Stdout, rc)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := core.WriteExperimentsReport(f, rc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("%s: close: %w", path, err)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	prof.Stop()
	os.Exit(1)
}
