// Command repro runs the complete reproduction — every table and figure of
// the paper's evaluation — and writes an EXPERIMENTS.md-style comparison
// of paper vs measured values.
//
// Usage:
//
//	repro -queries 200000 -out EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dnscentral/internal/core"
	"dnscentral/internal/profiling"
)

// prof is package-level so fatal can flush profiles before os.Exit.
var prof *profiling.Flags

func main() {
	var (
		queries = flag.Int("queries", 200_000, "query events per vantage/week")
		scale   = flag.Float64("scale", 0.01, "resolver population scale")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "vantage/week cells and flow shards run under this worker budget (1 = sequential)")
		out     = flag.String("out", "", "output path (default stdout)")
	)
	prof = profiling.Register(flag.CommandLine)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer prof.Stop()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	start := time.Now()
	err := core.WriteExperimentsReport(w, core.RunConfig{
		TotalQueries:  *queries,
		ResolverScale: *scale,
		Seed:          *seed,
		Workers:       *workers,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "repro: done in %v\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	prof.Stop()
	os.Exit(1)
}
