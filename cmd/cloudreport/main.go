// Command cloudreport renders an entrada JSON report as the paper-style
// summary: provider shares (Figure 1), record-type mixes (Figure 2), junk
// ratios (Figure 4), transport splits (Table 5), resolver counts
// (Tables 4/6), EDNS anchors and truncation (Figure 6), and — when the
// trace contains Facebook TCP traffic — the per-resolver RTT rows behind
// Figure 5.
//
// Usage:
//
//	cloudreport -report nl-w2020.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dnscentral/internal/entrada"
)

var providerOrder = []string{"Google", "Amazon", "Microsoft", "Facebook", "Cloudflare", "Other"}

func main() {
	report := flag.String("report", "", "entrada JSON report (required)")
	focusRows := flag.Int("focus-rows", 10, "how many Figure-5 focus rows to print")
	flag.Parse()
	if *report == "" {
		fmt.Fprintln(os.Stderr, "cloudreport: -report is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*report)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rep, err := entrada.ReadReport(f)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("== Dataset (Table 3 analogue)\n")
	fmt.Printf("queries %d  valid %.1f%%  resolvers %d  ASes %d  cloud share %.1f%%\n\n",
		rep.TotalQueries, 100*rep.ValidShare, rep.Resolvers, rep.ASes, 100*rep.CloudShare)

	fmt.Printf("== Providers (Figures 1/2/4, Tables 4/5/6)\n")
	fmt.Printf("%-11s %7s %6s %6s %6s %6s %7s %6s %8s %9s\n",
		"provider", "share", "junk", "v6", "tcp", "trunc", "public", "qmin", "resolv", "resolv-v6")
	for _, name := range providerOrder {
		pr, ok := rep.Providers[name]
		if !ok {
			continue
		}
		fmt.Printf("%-11s %6.1f%% %5.1f%% %5.1f%% %5.1f%% %6.2f%% %6.1f%% %5.1f%% %8d %9d\n",
			name, 100*pr.Share, 100*pr.JunkShare, 100*pr.V6Share, 100*pr.TCPShare,
			100*pr.TruncatedShare, 100*pr.PublicShare, 100*pr.MinimizedShare,
			pr.Resolvers.Total, pr.Resolvers.V6)
	}

	fmt.Printf("\n== Record types (Figure 2)\n")
	types := []string{"A", "AAAA", "NS", "DS", "DNSKEY", "MX", "TXT", "SOA"}
	fmt.Printf("%-11s", "provider")
	for _, t := range types {
		fmt.Printf(" %6s", t)
	}
	fmt.Println()
	for _, name := range providerOrder {
		pr, ok := rep.Providers[name]
		if !ok {
			continue
		}
		fmt.Printf("%-11s", name)
		for _, t := range types {
			fmt.Printf(" %5.1f%%", 100*pr.TypeShares[t])
		}
		fmt.Println()
	}

	fmt.Printf("\n== EDNS(0) UDP size CDF anchors (Figure 6)\n")
	for _, name := range []string{"Facebook", "Google", "Microsoft"} {
		pr, ok := rep.Providers[name]
		if !ok || len(pr.EDNSCDF) == 0 {
			continue
		}
		at512, at1232 := 0.0, 0.0
		for _, p := range pr.EDNSCDF {
			if p.Value <= 512 {
				at512 = p.Fraction
			}
			if p.Value <= 1232 {
				at1232 = p.Fraction
			}
		}
		fmt.Printf("%-11s ≤512B %5.1f%%  ≤1232B %5.1f%%  truncated %.2f%%\n",
			name, 100*at512, 100*at1232, 100*pr.TruncatedShare)
	}

	if len(rep.Focus) > 0 {
		fmt.Printf("\n== Focus provider per-resolver rows (Figure 5 basis), top %d by volume\n", *focusRows)
		rows := append([]entrada.FocusRow(nil), rep.Focus...)
		sort.Slice(rows, func(i, j int) bool {
			return rows[i].V4Queries+rows[i].V6Queries > rows[j].V4Queries+rows[j].V6Queries
		})
		if len(rows) > *focusRows {
			rows = rows[:*focusRows]
		}
		fmt.Printf("%-40s %-18s %8s %8s %10s\n", "client", "server", "v4", "v6", "medRTT")
		for _, r := range rows {
			rtt := "-"
			if r.MedianRTTms > 0 {
				rtt = fmt.Sprintf("%.0fms", r.MedianRTTms)
			}
			fmt.Printf("%-40s %-18s %8d %8d %10s\n", r.Client, r.Server, r.V4Queries, r.V6Queries, rtt)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cloudreport:", err)
	os.Exit(1)
}
