// Command authserver runs a standalone authoritative DNS server for a
// synthetic ccTLD or root zone over real UDP and TCP sockets. Point any
// resolver (including cmd/resolversim or dig) at it.
//
// Usage:
//
//	authserver -zone nl -domains 100000 -listen 127.0.0.1:5300
//	dig @127.0.0.1 -p 5300 d42.nl NS
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"dnscentral/internal/authserver"
	"dnscentral/internal/zonedb"
)

func main() {
	var (
		zoneName = flag.String("zone", "nl", "zone origin: nl, nz, or root")
		domains  = flag.Int("domains", 100_000, "number of second-level delegations")
		third    = flag.Int("third", 0, "number of third-level delegations (nz-style)")
		signed   = flag.Float64("signed", 0.55, "fraction of delegations with DS records")
		listen   = flag.String("listen", "127.0.0.1:5300", "UDP+TCP listen address")
		rrl      = flag.Float64("rrl", 0, "responses/second/client rate limit (0 = off)")
		verbose  = flag.Bool("v", false, "log per-error diagnostics")
	)
	flag.Parse()

	var (
		zone *zonedb.Zone
		err  error
	)
	if *zoneName == "root" || *zoneName == "." {
		zone, err = zonedb.NewRoot(zonedb.DefaultRootTLDs, []string{"b.root-servers.net"})
	} else {
		zone, err = zonedb.NewCcTLD(*zoneName, *domains, *third, *signed,
			[]string{"ns1.dns." + *zoneName, "ns2.dns." + *zoneName})
	}
	if err != nil {
		fatal(err)
	}

	var opts []authserver.Option
	if *rrl > 0 {
		opts = append(opts, authserver.WithRRL(authserver.RRLConfig{
			RatePerSec: *rrl, Burst: *rrl * 2, SlipEvery: 1,
		}))
	}
	srv, err := authserver.Listen(*listen, authserver.NewEngine(zone, opts...))
	if err != nil {
		fatal(err)
	}
	if *verbose {
		srv.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "authserver: "+format+"\n", args...)
		}
	}
	fmt.Printf("authserver: serving %s (%d delegations) on %s (UDP+TCP)\n",
		zone.Origin, zone.Size(), srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := srv.Engine().Stats()
	fmt.Printf("\nauthserver: %d queries (%d referrals, %d NXDOMAIN, %d refused, %d RRL slips)\n",
		st.Queries, st.Referrals, st.NXDomain, st.Refused, st.RRLSlips)
	_ = srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "authserver:", err)
	os.Exit(1)
}
