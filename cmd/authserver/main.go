// Command authserver runs a standalone authoritative DNS server for a
// synthetic ccTLD or root zone over real UDP and TCP sockets. Point any
// resolver (including cmd/resolversim or dig) at it.
//
// Usage:
//
//	authserver -zone nl -domains 100000 -listen 127.0.0.1:5300
//	dig @127.0.0.1 -p 5300 d42.nl NS
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dnscentral/internal/authserver"
	"dnscentral/internal/faults"
	"dnscentral/internal/profiling"
	"dnscentral/internal/telemetry"
	"dnscentral/internal/zonedb"
)

func main() {
	var (
		zoneName = flag.String("zone", "nl", "zone origin: nl, nz, or root")
		domains  = flag.Int("domains", 100_000, "number of second-level delegations")
		third    = flag.Int("third", 0, "number of third-level delegations (nz-style)")
		signed   = flag.Float64("signed", 0.55, "fraction of delegations with DS records")
		listen   = flag.String("listen", "127.0.0.1:5300", "UDP+TCP listen address")
		rrl      = flag.Float64("rrl", 0, "responses/second/client rate limit (0 = off)")
		verbose  = flag.Bool("v", false, "log per-error diagnostics")

		idle   = flag.Duration("tcp-idle", 10*time.Second, "TCP idle timeout before the server hangs up")
		maxTCP = flag.Int("max-tcp", 128, "max concurrent TCP connections (<0 = unlimited)")

		udpBatch    = flag.Int("udp-batch", 32, "datagrams per recvmmsg/sendmmsg syscall on the batched UDP engine")
		udpSockets  = flag.Int("udp-sockets", 0, "SO_REUSEPORT UDP sockets / receive loops (0 = GOMAXPROCS, capped at 8)")
		udpPortable = flag.Bool("udp-portable", false, "force the one-datagram-per-syscall portable UDP loop (benchmark baseline)")
		udpGSO      = flag.Bool("udp-gso", true, "UDP segmentation offload: coalesce equal-destination response runs into UDP_SEGMENT super-datagrams and split GRO-coalesced receives (auto-fallback on unsupported kernels)")
		udpPin      = flag.Bool("udp-pin", false, "pin each UDP socket loop to a CPU core and steer reuseport delivery to the receiving core's socket")

		loss    = flag.Float64("chaos-loss", 0, "impairment proxy: per-direction UDP loss probability")
		dup     = flag.Float64("chaos-dup", 0, "impairment proxy: response duplication probability")
		corrupt = flag.Float64("chaos-corrupt", 0, "impairment proxy: response corruption probability")
		trunc   = flag.Float64("chaos-truncate", 0, "impairment proxy: forced TC=1 probability")
		tcpfail = flag.Float64("chaos-tcpfail", 0, "impairment proxy: TCP connection failure probability")
		latency = flag.Duration("chaos-latency", 0, "impairment proxy: extra one-way latency")
		jitter  = flag.Duration("chaos-jitter", 0, "impairment proxy: uniform extra latency bound")
		cseed   = flag.Int64("chaos-seed", 1, "impairment proxy: fault seed")
	)
	tm := telemetry.RegisterFlags(flag.CommandLine)
	prof := profiling.Register(flag.CommandLine)
	flag.Parse()

	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer prof.Stop()

	var (
		zone *zonedb.Zone
		err  error
	)
	if *zoneName == "root" || *zoneName == "." {
		zone, err = zonedb.NewRoot(zonedb.DefaultRootTLDs, []string{"b.root-servers.net"})
	} else {
		zone, err = zonedb.NewCcTLD(*zoneName, *domains, *third, *signed,
			[]string{"ns1.dns." + *zoneName, "ns2.dns." + *zoneName})
	}
	if err != nil {
		fatal(err)
	}

	reg := tm.Registry()
	var opts []authserver.Option
	if reg != nil {
		opts = append(opts, authserver.WithTelemetry(reg))
	}
	if *rrl > 0 {
		opts = append(opts, authserver.WithRRL(authserver.RRLConfig{
			RatePerSec: *rrl, Burst: *rrl * 2, SlipEvery: 1,
		}))
	}
	chaos := faults.Config{
		Loss: *loss, Duplicate: *dup, Corrupt: *corrupt, Truncate: *trunc,
		TCPFail: *tcpfail, Latency: *latency, Jitter: *jitter, Seed: *cseed,
		Telemetry: reg,
	}
	scfg := authserver.ServerConfig{
		TCPIdleTimeout: *idle,
		MaxTCPConns:    *maxTCP,
		UDPBatch:       *udpBatch,
		UDPSockets:     *udpSockets,
		UDPPortable:    *udpPortable,
		UDPGSO:         *udpGSO,
		UDPPin:         *udpPin,
		Telemetry:      reg,
	}

	// With impairment configured, the public address is the chaos proxy
	// and the real server hides behind it on an ephemeral loopback port.
	serverAddr := *listen
	if chaos.Enabled() {
		serverAddr = "127.0.0.1:0"
	}
	srv, err := authserver.ListenConfig(serverAddr, authserver.NewEngine(zone, opts...), scfg)
	if err != nil {
		fatal(err)
	}
	stopTm, err := tm.Start(func(w io.Writer) {
		st := srv.Engine().Stats()
		fmt.Fprintf(w, "authserver: %d queries (%d referrals, %d NXDOMAIN, %d RRL drops)",
			st.Queries, st.Referrals, st.NXDomain, st.RRLDrops)
	})
	if err != nil {
		fatal(err)
	}
	defer stopTm()
	if *verbose {
		srv.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "authserver: "+format+"\n", args...)
		}
	}
	var proxy *faults.Proxy
	if chaos.Enabled() {
		proxy, err = faults.NewProxy(*listen, srv.Addr(), chaos)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("authserver: impairment proxy on %s (loss %.2f dup %.2f corrupt %.2f truncate %.2f tcpfail %.2f seed %d)\n",
			proxy.Addr(), chaos.Loss, chaos.Duplicate, chaos.Corrupt, chaos.Truncate, chaos.TCPFail, chaos.Seed)
	}
	fmt.Printf("authserver: serving %s (%d delegations) on %s (UDP+TCP)\n",
		zone.Origin, zone.Size(), srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := srv.Engine().Stats()
	fmt.Printf("\nauthserver: %d queries (%d referrals, %d NXDOMAIN, %d refused, %d RRL slips)\n",
		st.Queries, st.Referrals, st.NXDomain, st.Refused, st.RRLSlips)
	if proxy != nil {
		fs := proxy.Stats()
		fmt.Printf("authserver: proxy injected %d faults over %d exchanges\n", fs.Total(), fs.Exchanges)
		_ = proxy.Close()
	}
	_ = srv.Close()
	prof.Stop()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "authserver:", err)
	os.Exit(1)
}
