// Command resolversim drives a simulated caching resolver against an
// authoritative server over real sockets (see cmd/authserver) and reports
// the query mix the server saw from it — a live demonstration of the
// paper's per-provider behavioral signatures.
//
// The -loss/-corrupt/-brownout-* family of flags inserts a
// deterministic, seed-driven impairment layer (internal/faults) between
// the resolver and the wire: the run then ends with a robustness report
// quantifying the retry amplification the paper attributes to
// retransmissions and broken resolvers (§5). The report contains only
// counters, so two runs with the same -chaos-seed and impairment config
// emit identical report bytes.
//
// The -stub flag switches to stub-load mode: instead of acting as a
// recursive resolver, it plays a population of simple stub clients
// firing Zipf-ranked queries at -server (typically cmd/recursor) — the
// workload that exercises a cache tier's hit rate.
//
// Usage:
//
//	authserver -zone nl -listen 127.0.0.1:5300 &
//	resolversim -server 127.0.0.1:5300 -zone nl -qmin -validate -n 500
//	resolversim -server 127.0.0.1:5300 -zone nl -n 500 -loss 0.2 -chaos-seed 7
//	resolversim -server 127.0.0.1:5353 -zone nl -stub -n 20000 -stub-names 1000
package main

import (
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"dnscentral/internal/dnswire"
	"dnscentral/internal/faults"
	"dnscentral/internal/profiling"
	"dnscentral/internal/resolver"
	"dnscentral/internal/telemetry"
	"dnscentral/internal/workload"
)

func main() {
	var (
		server   = flag.String("server", "127.0.0.1:5300", "authoritative server address")
		zone     = flag.String("zone", "nl", "zone origin the server is authoritative for")
		n        = flag.Int("n", 200, "number of resolutions to perform")
		qmin     = flag.Bool("qmin", false, "enable QNAME minimization")
		validate = flag.Bool("validate", false, "enable DNSSEC validation queries")
		edns     = flag.Uint("edns", 1232, "advertised EDNS(0) UDP size (0 = no EDNS)")
		seed     = flag.Int64("seed", 1, "random seed")

		retries  = flag.Int("retries", 1, "extra attempts per failed exchange")
		timeout  = flag.Duration("timeout", 5*time.Second, "socket timeout per exchange")
		attemptT = flag.Duration("attempt-timeout", 0, "base per-attempt timeout, escalated 2x per retry (0 = fixed -timeout)")
		backoff  = flag.Duration("backoff", 0, "base retry backoff, doubled per retry with jitter (0 = none)")

		loss      = flag.Float64("loss", 0, "per-direction UDP loss probability")
		dup       = flag.Float64("dup", 0, "UDP response duplication probability")
		reorder   = flag.Float64("reorder", 0, "UDP response reordering probability")
		corrupt   = flag.Float64("corrupt", 0, "UDP response corruption probability")
		truncate  = flag.Float64("truncate", 0, "forced-truncation (TC=1) probability")
		tcpfail   = flag.Float64("tcpfail", 0, "TCP connection failure probability")
		latency   = flag.Duration("latency", 0, "injected extra one-way latency")
		jitter    = flag.Duration("jitter", 0, "injected uniform extra latency bound")
		bEvery    = flag.Int("brownout-every", 0, "brownout window period in exchanges (0 = off)")
		bLen      = flag.Int("brownout-len", 0, "brownout window length in exchanges")
		bMode     = flag.String("brownout-mode", "drop", "brownout behavior: drop|servfail")
		chaosSeed = flag.Int64("chaos-seed", 1, "fault injection seed (same seed = same faults)")

		stub       = flag.Bool("stub", false, "stub-load mode: fire raw Zipf-ranked queries at -server (a recursor) instead of resolving")
		stubNames  = flag.Int("stub-names", 1000, "stub mode: popularity-ranked name universe size")
		stubSkew   = flag.Float64("stub-skew", 1.0, "stub mode: Zipf skew exponent")
		stubW      = flag.Int("stub-workers", 4, "stub mode: concurrent stub clients")
		stubAttack = flag.String("stub-attack", "", "stub mode attack pattern: watertorture (random-subdomain flood) or empty for benign")
		stubVictim = flag.Int("stub-victim", 0, "stub mode: attack victim — 0 floods the zone apex (NXDOMAIN storm), rank ≥ 1 floods under that delegated domain (referral storm)")
		stubBatch  = flag.Int("stub-batch", 1, "stub mode: queries per sendmmsg window (>1 engages the batched sender)")
		stubGSO    = flag.Bool("stub-gso", true, "stub mode: send each batch window as UDP_SEGMENT super-datagrams (needs -stub-batch > 1; auto-fallback on unsupported kernels)")
		stubRate   = flag.Float64("stub-rate", 0, "stub mode: aggregate target send rate in queries/sec (0 = closed-loop, as fast as answers return); the report shows achieved vs target")
	)
	tm := telemetry.RegisterFlags(flag.CommandLine)
	prof := profiling.Register(flag.CommandLine)
	flag.Parse()

	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer prof.Stop()

	addr, err := netip.ParseAddrPort(*server)
	if err != nil {
		fatal(err)
	}
	if *stub {
		st, err := workload.StubLoad(workload.StubLoadConfig{
			Target:       addr.String(),
			Zone:         *zone,
			Names:        *stubNames,
			Queries:      *n,
			Skew:         *stubSkew,
			Workers:      *stubW,
			EDNSSize:     uint16(*edns),
			Timeout:      *timeout,
			Seed:         *seed,
			Attack:       *stubAttack,
			AttackVictim: *stubVictim,
			Batch:        *stubBatch,
			GSO:          *stubGSO,
			TargetQPS:    *stubRate,
		})
		if err != nil {
			prof.Stop()
			fatal(err)
		}
		fmt.Println(st.Format())
		prof.Stop()
		return
	}
	mode, err := faults.ParseBrownoutMode(*bMode)
	if err != nil {
		fatal(err)
	}
	chaos := faults.Config{
		Loss:      *loss,
		Duplicate: *dup,
		Reorder:   *reorder,
		Corrupt:   *corrupt,
		Truncate:  *truncate,
		TCPFail:   *tcpfail,
		Latency:   *latency,
		Jitter:    *jitter,
		Brownout:  faults.Brownout{Every: *bEvery, Len: *bLen, Mode: mode},
		Seed:      *chaosSeed,
	}
	reg := tm.Registry()
	r := resolver.New(*zone, resolver.Config{
		Qmin:           *qmin,
		Validate:       *validate,
		EDNSSize:       uint16(*edns),
		Seed:           *seed,
		Retries:        *retries,
		RetryBackoff:   *backoff,
		AttemptTimeout: *attemptT,
		RetryServfail:  chaos.Enabled(),
		Telemetry:      reg,
	})
	stopTm, err := tm.Start(func(w io.Writer) {
		fmt.Fprintf(w, "resolversim: %d queries sent, %d retries, %d TCP fallbacks",
			reg.Counter("resolver_queries_sent_total").Value(),
			reg.Counter("resolver_retries_total").Value(),
			reg.Counter("resolver_tcp_fallbacks_total").Value())
	})
	if err != nil {
		fatal(err)
	}
	defer stopTm()
	fam := resolver.FamilyV4
	if addr.Addr().Is6() {
		fam = resolver.FamilyV6
	}
	var upstream resolver.Transport = &resolver.NetTransport{Server: addr, Timeout: *timeout}
	var inj *faults.Injector
	if chaos.Enabled() {
		// The Advance hook is nil: lost exchanges are charged to the
		// counters, not to wall-clock time, so chaos runs stay fast and
		// their reports deterministic.
		inj = faults.NewInjector(chaos)
		upstream = faults.WrapTransport(upstream, inj, nil)
	}
	r.AddUpstream(fam, upstream)

	// SIGINT/SIGTERM stop the resolution loop between names, so an
	// interrupted run still prints its mix and robustness report for the
	// resolutions it completed (mirroring cmd/authserver's shutdown).
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	var failures int
	completed := 0
loop:
	for i := 0; i < *n; i++ {
		select {
		case s := <-sig:
			fmt.Fprintf(os.Stderr, "resolversim: %v — stopping after %d of %d resolutions\n", s, i, *n)
			break loop
		default:
		}
		name := fmt.Sprintf("www.d%d.%s.", i, *zone)
		if _, err := r.Resolve(name, dnswire.TypeA); err != nil {
			failures++
			if failures <= 3 {
				fmt.Fprintln(os.Stderr, "resolversim:", err)
			}
		}
		completed++
	}

	st := r.Stats()
	fmt.Printf("resolved %d names (%d failures): sent %d queries, %d cache hits\n",
		completed, failures, st.Sent, st.CacheHits)
	fmt.Printf("transport: UDP %d, TCP %d (%d TC retries); RTT %v\n",
		st.ByTCP[false], st.ByTCP[true], st.TCPRetries, r.RTT(fam))
	var types []dnswire.Type
	for t := range st.ByType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return st.ByType[types[i]] > st.ByType[types[j]] })
	fmt.Printf("query mix at the authoritative server:\n")
	for _, t := range types {
		fmt.Printf("  %-8s %6d (%5.1f%%)\n", t, st.ByType[t], 100*float64(st.ByType[t])/float64(st.Sent))
	}
	if inj != nil {
		fmt.Print(faults.Robustness(st, uint64(completed), uint64(failures), inj.Stats()).Format())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "resolversim:", err)
	os.Exit(1)
}
