// Command resolversim drives a simulated caching resolver against an
// authoritative server over real sockets (see cmd/authserver) and reports
// the query mix the server saw from it — a live demonstration of the
// paper's per-provider behavioral signatures.
//
// Usage:
//
//	authserver -zone nl -listen 127.0.0.1:5300 &
//	resolversim -server 127.0.0.1:5300 -zone nl -qmin -validate -n 500
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"sort"

	"dnscentral/internal/dnswire"
	"dnscentral/internal/resolver"
)

func main() {
	var (
		server   = flag.String("server", "127.0.0.1:5300", "authoritative server address")
		zone     = flag.String("zone", "nl", "zone origin the server is authoritative for")
		n        = flag.Int("n", 200, "number of resolutions to perform")
		qmin     = flag.Bool("qmin", false, "enable QNAME minimization")
		validate = flag.Bool("validate", false, "enable DNSSEC validation queries")
		edns     = flag.Uint("edns", 1232, "advertised EDNS(0) UDP size (0 = no EDNS)")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	addr, err := netip.ParseAddrPort(*server)
	if err != nil {
		fatal(err)
	}
	r := resolver.New(*zone, resolver.Config{
		Qmin:     *qmin,
		Validate: *validate,
		EDNSSize: uint16(*edns),
		Seed:     *seed,
	})
	fam := resolver.FamilyV4
	if addr.Addr().Is6() {
		fam = resolver.FamilyV6
	}
	r.AddUpstream(fam, &resolver.NetTransport{Server: addr})

	var failures int
	for i := 0; i < *n; i++ {
		name := fmt.Sprintf("www.d%d.%s.", i, *zone)
		if _, err := r.Resolve(name, dnswire.TypeA); err != nil {
			failures++
			if failures <= 3 {
				fmt.Fprintln(os.Stderr, "resolversim:", err)
			}
		}
	}

	st := r.Stats()
	fmt.Printf("resolved %d names (%d failures): sent %d queries, %d cache hits\n",
		*n, failures, st.Sent, st.CacheHits)
	fmt.Printf("transport: UDP %d, TCP %d (%d TC retries); RTT %v\n",
		st.ByTCP[false], st.ByTCP[true], st.TCPRetries, r.RTT(fam))
	var types []dnswire.Type
	for t := range st.ByType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return st.ByType[types[i]] > st.ByType[types[j]] })
	fmt.Printf("query mix at the authoritative server:\n")
	for _, t := range types {
		fmt.Printf("  %-8s %6d (%5.1f%%)\n", t, st.ByType[t], 100*float64(st.ByType[t])/float64(st.Sent))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "resolversim:", err)
	os.Exit(1)
}
