// Command recursor runs the caching recursive-resolver tier over real
// UDP and TCP sockets: stub queries in, a sharded TTL cache in the
// middle, EWMA/P2C-selected authoritative upstreams behind it.
//
// The tier is built to survive its upstreams: RFC 8767 serve-stale
// (-max-stale, -stale-ttl), per-upstream circuit breakers
// (-breaker-failures, -breaker-open), an RFC 2308 failure cache
// (-fail-ttl), RFC 7873 upstream DNS cookies (-cookies), per-client
// response rate limiting (-rrl-rate) and a random-subdomain flood
// guard (-flood-nx-rate).
//
// On shutdown (SIGINT/SIGTERM) it prints the centralization-through-
// the-cache report — per-provider shares of the upstream traffic it
// emitted next to shares of the stub traffic it absorbed, the paper's
// authoritative vantage versus the client vantage — followed by the
// resilience report: availability, stale-serve share, amplification,
// and breaker/RRL/flood counters.
//
// Usage:
//
//	authserver -zone nl -listen 127.0.0.1:5300 &
//	authserver -zone nl -listen 127.0.0.1:5301 &
//	recursor -listen 127.0.0.1:5353 -zone nl \
//	    -upstreams cloudA=127.0.0.1:5300,cloudB=127.0.0.1:5301
//	dig @127.0.0.1 -p 5353 www.d42.nl A
package main

import (
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dnscentral/internal/profiling"
	"dnscentral/internal/recursor"
	"dnscentral/internal/resolver"
	"dnscentral/internal/telemetry"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:5353", "UDP+TCP listen address for stubs")
		upstreams = flag.String("upstreams", "local=127.0.0.1:5300", "comma-separated name=addr upstream list; shared names aggregate as one provider")
		zone      = flag.String("zone", "nl", "zone origin the upstreams are authoritative for")

		entries    = flag.Int("cache-entries", 1<<16, "answer cache bound (entries)")
		shards     = flag.Int("cache-shards", 16, "cache lock shards (rounded up to a power of two)")
		minTTL     = flag.Duration("min-ttl", time.Second, "floor on cached answer lifetimes")
		maxTTL     = flag.Duration("max-ttl", time.Hour, "cap on cached answer lifetimes")
		aggressive = flag.Bool("aggressive", false, "RFC 8198 aggressive NSEC negative caching")

		edns    = flag.Uint("edns", 1232, "EDNS(0) size advertised upstream (0 = no EDNS)")
		timeout = flag.Duration("timeout", 3*time.Second, "per-upstream exchange timeout")
		hedge   = flag.Duration("hedge-delay", 0, "race a second upstream after this delay (0 = off)")
		seed    = flag.Int64("seed", 1, "P2C tie-break seed")

		maxStale = flag.Duration("max-stale", time.Hour, "RFC 8767 serve-stale window past expiry (0 = off)")
		staleTTL = flag.Duration("stale-ttl", 30*time.Second, "TTL clamp on stale answers")
		failTTL  = flag.Duration("fail-ttl", 2*time.Second, "negative failure-cache window (0 = off)")

		brkFails = flag.Int("breaker-failures", 5, "consecutive upstream failures that open the circuit breaker (0 = off)")
		brkOpen  = flag.Duration("breaker-open", time.Second, "how long an open breaker rejects before a half-open probe")
		cookies  = flag.Bool("cookies", true, "round-trip RFC 7873 DNS cookies with upstreams")

		rrlRate  = flag.Float64("rrl-rate", 0, "per-client-IP UDP queries/sec budget (0 = off)")
		rrlBurst = flag.Float64("rrl-burst", 0, "RRL bucket depth (0 = 2×rate)")
		rrlSlip  = flag.Int("rrl-slip", 2, "answer every n-th over-limit query with TC=1 instead of dropping")

		floodNX    = flag.Int("flood-nx-rate", 0, "per-zone NXDOMAINs/sec that trip the water-torture guard (0 = off)")
		floodHold  = flag.Duration("flood-hold", 5*time.Second, "suppression hold once a zone trips")
		floodProbe = flag.Int("flood-probe", 1, "misses/sec still forwarded for a suppressed zone")

		workers     = flag.Int("udp-workers", 0, "deprecated alias for -udp-sockets")
		udpSockets  = flag.Int("udp-sockets", 0, "SO_REUSEPORT UDP sockets / receive loops, each with its own Scratch (0 = GOMAXPROCS, capped at 8)")
		udpBatch    = flag.Int("udp-batch", 32, "datagrams per recvmmsg/sendmmsg syscall on the batched UDP engine")
		udpPortable = flag.Bool("udp-portable", false, "force the one-datagram-per-syscall portable UDP loop (benchmark baseline)")
		udpGSO      = flag.Bool("udp-gso", true, "UDP segmentation offload: coalesce equal-destination response runs into UDP_SEGMENT super-datagrams and split GRO-coalesced receives (auto-fallback on unsupported kernels)")
		udpPin      = flag.Bool("udp-pin", false, "pin each UDP socket loop to a CPU core and steer reuseport delivery to the receiving core's socket")
		idle        = flag.Duration("tcp-idle", 10*time.Second, "stub TCP idle timeout")
		maxTCP      = flag.Int("max-tcp", 128, "max concurrent stub TCP connections (<0 = unlimited)")
		verbose     = flag.Bool("v", false, "log per-error diagnostics")
	)
	tm := telemetry.RegisterFlags(flag.CommandLine)
	prof := profiling.Register(flag.CommandLine)
	flag.Parse()

	pool, err := parseUpstreams(*upstreams, *timeout, *seed)
	if err != nil {
		fatal(err)
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer prof.Stop()

	reg := tm.Registry()
	origin := strings.TrimSuffix(*zone, ".") + "."
	rec := recursor.New(recursor.Config{
		Origin:          origin,
		CacheEntries:    *entries,
		CacheShards:     *shards,
		EDNSSize:        uint16(*edns),
		UpstreamTimeout: *timeout,
		HedgeDelay:      *hedge,
		MinTTL:          *minTTL,
		MaxTTL:          *maxTTL,
		AggressiveNSEC:  *aggressive,
		MaxStale:        *maxStale,
		StaleTTL:        *staleTTL,
		FailTTL:         *failTTL,
		Breaker: recursor.BreakerConfig{
			Failures: *brkFails,
			OpenFor:  *brkOpen,
		},
		UseCookies: *cookies,
		RRL: recursor.RRLConfig{
			RatePerSec: *rrlRate,
			Burst:      *rrlBurst,
			SlipEvery:  *rrlSlip,
		},
		Flood: recursor.FloodConfig{
			NXPerSec:  *floodNX,
			Hold:      *floodHold,
			ProbeRate: *floodProbe,
		},
		Seed:      *seed,
		Telemetry: reg,
	}, pool)

	sockets := *udpSockets
	if sockets <= 0 {
		sockets = *workers // honor the deprecated -udp-workers spelling
	}
	srv, err := recursor.Serve(*listen, rec, recursor.ServerConfig{
		UDPWorkers:     sockets,
		UDPBatch:       *udpBatch,
		UDPPortable:    *udpPortable,
		UDPGSO:         *udpGSO,
		UDPPin:         *udpPin,
		TCPIdleTimeout: *idle,
		MaxTCPConns:    *maxTCP,
		Telemetry:      reg,
	})
	if err != nil {
		fatal(err)
	}
	if *verbose {
		srv.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "recursor: "+format+"\n", args...)
		}
	}
	stopTm, err := tm.Start(func(w io.Writer) {
		rep := rec.Report()
		fmt.Fprintf(w, "recursor: %d stub queries, %.1f%% hit rate, %d hedges",
			rep.StubQueries, 100*rep.HitRate(), rep.Hedges)
	})
	if err != nil {
		fatal(err)
	}
	defer stopTm()
	fmt.Printf("recursor: serving %s stubs on %s (UDP+TCP), %d upstream(s), cache %d entries\n",
		origin, srv.Addr(), pool.Len(), *entries)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println()
	fmt.Print(rec.Report().Format())
	rec.WaitRefreshes()
	fmt.Print(rec.Resilience().Format())
	_ = srv.Close()
	prof.Stop()
}

// parseUpstreams turns "cloudA=127.0.0.1:5300,cloudB=..." into a pool.
// The name is the provider label the centralization report groups by; a
// bare "addr" uses the address itself as the label.
func parseUpstreams(spec string, timeout time.Duration, seed int64) (*recursor.Pool, error) {
	var ups []*recursor.Upstream
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr := part, part
		if i := strings.IndexByte(part, '='); i >= 0 {
			name, addr = part[:i], part[i+1:]
		}
		ap, err := netip.ParseAddrPort(addr)
		if err != nil {
			return nil, fmt.Errorf("upstream %q: %w", part, err)
		}
		ups = append(ups, &recursor.Upstream{
			Name:      name,
			Transport: &resolver.NetTransport{Server: ap, Timeout: timeout},
		})
	}
	if len(ups) == 0 {
		return nil, fmt.Errorf("no upstreams in %q", spec)
	}
	return recursor.NewPool(seed, ups...), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "recursor:", err)
	os.Exit(1)
}
