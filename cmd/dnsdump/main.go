// Command dnsdump prints the DNS messages in a capture (pcap or pcapng)
// in a tcpdump-like one-line format, with optional provider classification
// — handy for eyeballing generated traces and debugging the pipeline.
//
// Usage:
//
//	dnsdump -in nl.pcap -n 20
//	dnsdump -in nl.pcap -provider Facebook -tcp
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dnscentral/internal/astrie"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/layers"
	"dnscentral/internal/pcapio"
)

func main() {
	var (
		in       = flag.String("in", "", "input capture path (required)")
		n        = flag.Int("n", 0, "stop after printing n messages (0 = all)")
		provider = flag.String("provider", "", "only messages from/to this provider (Google, Amazon, ...)")
		tcpOnly  = flag.Bool("tcp", false, "only TCP segments")
		udpOnly  = flag.Bool("udp", false, "only UDP datagrams")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "dnsdump: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := pcapio.Open(f)
	if err != nil {
		fatal(err)
	}

	reg := astrie.NewRegistry(astrie.MaxASes - 20)
	parser := layers.NewParser()
	printed := 0
	err = pcapio.ForEachPacket(r, func(pkt pcapio.Packet) error {
		if *n > 0 && printed >= *n {
			return errDone
		}
		flow, err := parser.Decode(pkt.Data)
		if err != nil {
			return nil // non-IP or truncated frame
		}
		isTCP := flow.Proto == layers.IPProtoTCP
		if *tcpOnly && !isTCP || *udpOnly && isTCP {
			return nil
		}

		// Classify the non-server side of the flow.
		client := flow.Src
		if flow.SrcPort == 53 {
			client = flow.Dst
		}
		prov := reg.ProviderOf(client)
		if *provider != "" && !strings.EqualFold(prov.String(), *provider) {
			return nil
		}

		line := describe(parser, flow, isTCP)
		if line == "" {
			return nil
		}
		fmt.Printf("%s %-10s %s\n", pkt.Timestamp.Format("15:04:05.000000"), prov, line)
		printed++
		return nil
	})
	if err != nil && err != errDone {
		fatal(err)
	}
}

var errDone = fmt.Errorf("done")

// describe renders one packet as a single line.
func describe(p *layers.Parser, flow layers.Flow, isTCP bool) string {
	proto := "udp"
	payload := p.Payload
	if isTCP {
		proto = "tcp"
		if len(payload) == 0 {
			return fmt.Sprintf("%s %s", proto, tcpFlags(&p.TCP))
		}
		if len(payload) > 2 {
			payload = payload[2:] // strip the length prefix
		}
	}
	msg, err := dnswire.Unpack(payload)
	if err != nil {
		return fmt.Sprintf("%s %s [undecodable: %v]", proto, flow, err)
	}
	q := msg.Question()
	kind := "query"
	detail := ""
	if msg.Header.Response {
		kind = "response"
		detail = fmt.Sprintf(" %s an=%d ns=%d ar=%d", msg.Header.RCode,
			len(msg.Answers), len(msg.Authority), len(msg.Additional))
		if msg.Header.Truncated {
			detail += " TC"
		}
	} else if msg.Edns != nil {
		detail = fmt.Sprintf(" edns=%d", msg.Edns.UDPSize)
		if msg.Edns.DO {
			detail += " DO"
		}
	}
	return fmt.Sprintf("%s %s %s %s %s%s", proto, flow, kind, q.Name, q.Type, detail)
}

// tcpFlags names the set flags of a payload-less segment.
func tcpFlags(t *layers.TCP) string {
	var fs []string
	if t.SYN() {
		fs = append(fs, "SYN")
	}
	if t.ACK() {
		fs = append(fs, "ACK")
	}
	if t.FIN() {
		fs = append(fs, "FIN")
	}
	if t.RST() {
		fs = append(fs, "RST")
	}
	if len(fs) == 0 {
		return "(none)"
	}
	return strings.Join(fs, "|")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnsdump:", err)
	os.Exit(1)
}
