// Command dnstracegen generates a synthetic authoritative-side DNS trace
// (pcap) for one vantage point and measurement week, calibrated to the
// paper's behavioral model.
//
// Usage:
//
//	dnstracegen -vantage nl -week w2020 -queries 500000 -out nl-w2020.pcap
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"dnscentral/internal/astrie"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/telemetry"
	"dnscentral/internal/workload"
)

func main() {
	var (
		vantage = flag.String("vantage", "nl", "vantage point: nl, nz, b-root")
		week    = flag.String("week", "w2020", "measurement week: w2018, w2019, w2020")
		queries = flag.Int("queries", 200_000, "number of query events to generate")
		scale   = flag.Float64("scale", 0.01, "resolver population scale factor")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output capture path (required)")
		format  = flag.String("format", "pcap", "output format: pcap or pcapng")
		anomaly = flag.Bool("anomaly", false, "inject the Feb-2020 .nz cyclic-dependency event")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0),
			"generation goroutines (output is byte-identical for any value)")
	)
	tm := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "dnstracegen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	reg := tm.Registry()
	cfg := workload.Config{
		Vantage:       cloudmodel.Vantage(*vantage),
		Week:          cloudmodel.Week(*week),
		TotalQueries:  *queries,
		ResolverScale: *scale,
		Seed:          *seed,
		Anomaly:       *anomaly,
		Workers:       *workers,
		Telemetry:     reg,
	}
	gen, err := workload.NewGenerator(cfg)
	if err != nil {
		fatal(err)
	}
	stopTm, err := tm.Start(func(w io.Writer) {
		fmt.Fprintf(w, "dnstracegen: %d/%d events, %d packets",
			reg.Counter("workload_events_total").Value(), *queries,
			reg.Counter("workload_packets_total").Value())
	})
	if err != nil {
		fatal(err)
	}
	defer stopTm()
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	var sink interface {
		workload.PacketSink
		Flush() error
	}
	switch *format {
	case "pcap":
		sink = pcapio.NewWriter(f, pcapio.WithNanosecondResolution())
	case "pcapng":
		sink = pcapio.NewNGWriter(f)
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	gt, err := gen.Run(sink)
	if err != nil {
		fatal(err)
	}
	if err := sink.Flush(); err != nil {
		fatal(err)
	}
	// Close errors are the last chance to see a short write (full disk,
	// quota): swallowing them would report a corrupt capture as success.
	if err := f.Close(); err != nil {
		fatal(err)
	}

	fmt.Printf("wrote %s: %d queries, %d resolvers\n", *out, gt.Queries, len(gt.ResolverSet))
	for _, p := range astrie.CloudProviders {
		fmt.Printf("  %-10s %8d queries (%5.1f%%)  junk %5.1f%%  v6 %5.1f%%  tcp %5.1f%%\n",
			p, gt.ByProvider[p],
			100*ratio(gt.ByProvider[p], gt.Queries),
			100*ratio(gt.JunkQueries[p], gt.ByProvider[p]),
			100*ratio(gt.V6Queries[p], gt.ByProvider[p]),
			100*ratio(gt.TCPQueries[p], gt.ByProvider[p]))
	}
	fmt.Printf("  %-10s %8d queries (%5.1f%%)  junk %5.1f%%\n",
		"other", gt.OtherQueries,
		100*ratio(gt.OtherQueries, gt.Queries),
		100*ratio(gt.OtherJunk, gt.OtherQueries))
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnstracegen:", err)
	os.Exit(1)
}
