package entrada

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/stats"
)

// Report is the JSON-serializable summary of an analysis run; cmd/entrada
// writes it and cmd/cloudreport consumes it.
type Report struct {
	TotalQueries uint64  `json:"total_queries"`
	ValidShare   float64 `json:"valid_share"`
	Resolvers    int     `json:"resolvers"`
	ASes         int     `json:"ases"`
	CloudShare   float64 `json:"cloud_share"`
	// DroppedSegments reports TCP reassembly data loss (out-of-order
	// segments discarded because a stream buffer was full).
	DroppedSegments uint64 `json:"dropped_segments,omitempty"`

	Providers map[string]ProviderReport `json:"providers"`

	// Focus carries the Figure 5 data: per (client, server) query counts
	// and median RTTs for the focus provider's resolvers.
	Focus []FocusRow `json:"focus,omitempty"`
}

// ProviderReport is the per-provider summary.
type ProviderReport struct {
	Queries        uint64             `json:"queries"`
	Share          float64            `json:"share"`
	JunkShare      float64            `json:"junk_share"`
	V6Share        float64            `json:"v6_share"`
	TCPShare       float64            `json:"tcp_share"`
	TypeShares     map[string]float64 `json:"type_shares"`
	EDNSCDF        []stats.CDFPoint   `json:"edns_cdf,omitempty"`
	TruncatedShare float64            `json:"truncated_udp_share"`
	Resolvers      ResolverCounts     `json:"resolvers"`
	PublicShare    float64            `json:"public_dns_share"`
	MinimizedShare float64            `json:"minimized_share"`
}

// FocusRow is one (client, server) row of the Figure 5 dataset.
type FocusRow struct {
	Client      string  `json:"client"`
	Server      string  `json:"server"`
	V4Queries   uint64  `json:"v4_queries"`
	V6Queries   uint64  `json:"v6_queries"`
	MedianRTTms float64 `json:"median_rtt_ms,omitempty"`
}

// BuildReport converts aggregates into the serializable report using the
// registry for public-DNS classification.
func BuildReport(ag *Aggregates, reg *astrie.Registry) *Report {
	r := &Report{
		TotalQueries:    ag.Total,
		ValidShare:      stats.Ratio(ag.Valid, ag.Total),
		Resolvers:       len(ag.AllResolvers),
		ASes:            len(ag.ASes),
		CloudShare:      ag.CloudShare(),
		DroppedSegments: ag.DroppedSegments,
		Providers:       make(map[string]ProviderReport),
	}
	for p, pa := range ag.ByProvider {
		pr := ProviderReport{
			Queries:        pa.Queries,
			Share:          stats.Ratio(pa.Queries, ag.Total),
			JunkShare:      stats.Ratio(pa.Junk, pa.Queries),
			V6Share:        stats.Ratio(pa.V6, pa.Queries),
			TCPShare:       stats.Ratio(pa.TCP, pa.Queries),
			TypeShares:     make(map[string]float64),
			EDNSCDF:        pa.EDNSSizes.CDF(),
			TruncatedShare: stats.Ratio(pa.TruncatedUDP, pa.UDPResponses),
			Resolvers:      pa.ResolverCounts(reg.IsPublicDNSAddr),
			PublicShare:    stats.Ratio(pa.PublicDNSQueries, pa.Queries),
			MinimizedShare: stats.Ratio(pa.MinimizedQueries, pa.Queries),
		}
		for t, c := range pa.ByType {
			pr.TypeShares[t.String()] = stats.Ratio(c, pa.Queries)
		}
		r.Providers[p.String()] = pr
	}
	medians := ag.MedianRTTs()
	for k, fc := range ag.FocusQueries {
		row := FocusRow{
			Client:    k.Client.String(),
			Server:    k.Server.String(),
			V4Queries: fc.V4,
			V6Queries: fc.V6,
		}
		if m, ok := medians[k]; ok {
			row.MedianRTTms = float64(m) / float64(time.Millisecond)
		}
		r.Focus = append(r.Focus, row)
	}
	sort.Slice(r.Focus, func(i, j int) bool {
		if r.Focus[i].Client != r.Focus[j].Client {
			return r.Focus[i].Client < r.Focus[j].Client
		}
		return r.Focus[i].Server < r.Focus[j].Server
	})
	return r
}

// WriteJSON writes the report, indented, to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a JSON report.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}
