package entrada

import (
	"math"
	"sort"
	"strings"
	"testing"

	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/workload"
)

func TestRSSAC002Report(t *testing.T) {
	_, gt, ag := runPipeline(t, workload.Config{
		Vantage: cloudmodel.VantageBRoot, Week: cloudmodel.W2020,
		TotalQueries: 12000, Seed: 31, ResolverScale: 0.002,
	})
	rep := ag.RSSAC002Report("b-root-reproduction")

	if rep.UDPQueries+rep.TCPQueries != gt.Queries {
		t.Errorf("traffic volume %d+%d != %d", rep.UDPQueries, rep.TCPQueries, gt.Queries)
	}
	// RCODE volumes must cover every matched response and reproduce the
	// §3 validity computation: B-Root 2020 was ~20% valid.
	valid := rep.ValidShare()
	if math.Abs(valid-0.20) > 0.04 {
		t.Errorf("RSSAC002 valid share = %.3f, want ≈0.20", valid)
	}
	if rep.RCodeVolume[dnswire.RCodeNXDomain.String()] == 0 {
		t.Error("no NXDOMAIN volume at the root")
	}
	// Unique sources must match the resolver set split.
	var v4, v6 uint64
	for a := range ag.AllResolvers {
		if a.Is4() {
			v4++
		} else {
			v6++
		}
	}
	if rep.UniqueIPv4 != v4 || rep.UniqueIPv6 != v6 {
		t.Errorf("unique sources %d/%d, want %d/%d", rep.UniqueIPv4, rep.UniqueIPv6, v4, v6)
	}
	if rep.UniqueIPv6Agg == 0 || rep.UniqueIPv6Agg > rep.UniqueIPv6 {
		t.Errorf("v6 aggregate = %d (v6 = %d)", rep.UniqueIPv6Agg, rep.UniqueIPv6)
	}

	out := rep.String()
	for _, want := range []string{"traffic-volume:", "rcode-volume:", "unique-sources:", "NXDOMAIN"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
}

func TestHourlySeriesShowsDiurnalPattern(t *testing.T) {
	_, _, ag := runPipeline(t, workload.Config{
		Vantage: cloudmodel.VantageNZ, Week: cloudmodel.W2020,
		TotalQueries: 30000, Seed: 32, ResolverScale: 0.002,
		DiurnalAmplitude: 0.6,
	})
	if len(ag.Hourly) < 7*24-2 {
		t.Fatalf("hourly buckets = %d, want ≈168", len(ag.Hourly))
	}
	minN, maxN := interiorHourRange(ag.Hourly)
	if maxN < 2*minN {
		t.Errorf("peak/trough = %d/%d, want ≥2x diurnal swing", maxN, minN)
	}
}

// interiorHourRange finds the min/max hourly counts excluding the first
// and last (partially covered) capture hours.
func interiorHourRange(hourly map[int64]uint64) (minN, maxN uint64) {
	keys := make([]int64, 0, len(hourly))
	for h := range hourly {
		keys = append(keys, h)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	minN = math.MaxUint64
	for _, h := range keys[1 : len(keys)-1] {
		n := hourly[h]
		if n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
	}
	return minN, maxN
}

func TestFlatTraceHasNoDiurnalSwing(t *testing.T) {
	_, _, ag := runPipeline(t, workload.Config{
		Vantage: cloudmodel.VantageNZ, Week: cloudmodel.W2020,
		TotalQueries: 40000, Seed: 33, ResolverScale: 0.002,
		DiurnalAmplitude: -1, // clamped to 0: flat
	})
	minN, maxN := interiorHourRange(ag.Hourly)
	if float64(maxN) > 1.6*float64(minN) {
		t.Errorf("flat trace peak/trough = %d/%d", maxN, minN)
	}
}
