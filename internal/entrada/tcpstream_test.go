package entrada

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/layers"
)

func TestTCPStreamInOrder(t *testing.T) {
	var s tcpStream
	s.syncTo(100)
	if !s.push(100, []byte("ab")) || !s.push(102, []byte("cd")) {
		t.Fatal("in-order pushes reported no progress")
	}
	if string(s.buf) != "abcd" {
		t.Fatalf("buf = %q", s.buf)
	}
}

func TestTCPStreamOutOfOrder(t *testing.T) {
	var s tcpStream
	s.syncTo(10)
	if s.push(14, []byte("EF")) {
		t.Fatal("future segment reported progress")
	}
	if !s.push(10, []byte("ABCD")) {
		t.Fatal("filling segment reported no progress")
	}
	if string(s.buf) != "ABCDEF" {
		t.Fatalf("buf = %q", s.buf)
	}
}

func TestTCPStreamRetransmission(t *testing.T) {
	var s tcpStream
	s.syncTo(0)
	s.push(0, []byte("hello"))
	if s.push(0, []byte("hello")) { // exact dup
		t.Fatal("duplicate reported progress")
	}
	// Overlapping retransmission carrying new bytes.
	if !s.push(3, []byte("loWORLD")) {
		t.Fatal("overlap with new data reported no progress")
	}
	if string(s.buf) != "helloWORLD" {
		t.Fatalf("buf = %q", s.buf)
	}
}

func TestTCPStreamSequenceWraparound(t *testing.T) {
	var s tcpStream
	start := uint32(0xFFFFFFFE)
	s.syncTo(start)
	s.push(start, []byte("ab")) // crosses the 2^32 boundary
	if !s.push(0, []byte("cd")) {
		t.Fatal("post-wrap segment reported no progress")
	}
	if string(s.buf) != "abcd" {
		t.Fatalf("buf = %q", s.buf)
	}
}

func TestTCPStreamMidStreamAttach(t *testing.T) {
	var s tcpStream // no syncTo: capture started mid-connection
	if !s.push(5000, []byte("xyz")) {
		t.Fatal("mid-stream attach failed")
	}
	if string(s.buf) != "xyz" {
		t.Fatalf("buf = %q", s.buf)
	}
}

// TestPropertyTCPStreamAnyOrder: any permutation of contiguous segments
// reassembles to the same byte string.
func TestPropertyTCPStreamAnyOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Build a message of 3-10 segments.
		var full []byte
		type seg struct {
			seq  uint32
			data []byte
		}
		var segs []seg
		seq := r.Uint32()
		n := 3 + r.Intn(8)
		for i := 0; i < n; i++ {
			l := 1 + r.Intn(40)
			data := make([]byte, l)
			r.Read(data)
			segs = append(segs, seg{seq, data})
			full = append(full, data...)
			seq += uint32(l)
		}
		var s tcpStream
		s.syncTo(segs[0].seq)
		// Shuffle and push, with occasional duplicates.
		order := r.Perm(len(segs))
		for _, i := range order {
			s.push(segs[i].seq, segs[i].data)
			if r.Intn(3) == 0 {
				s.push(segs[i].seq, segs[i].data) // retransmit
			}
		}
		return bytes.Equal(s.buf, full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTCPStreamCountsPendingDrops fills the out-of-order buffer and checks
// the overflow is counted instead of silently discarded.
func TestTCPStreamCountsPendingDrops(t *testing.T) {
	var dropped uint64
	s := tcpStream{drops: &dropped}
	s.syncTo(0)
	// Non-contiguous future segments: seq 2, 4, 6, ... never fill the gap
	// at 0, so every one of them parks until the buffer is full.
	for i := 0; i < maxPendingSegments+6; i++ {
		s.push(uint32(2+2*i), []byte{byte(i)})
	}
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	// Retransmitting an already-parked segment must not count as a drop.
	s.push(2, []byte{0})
	if dropped != 6 {
		t.Fatalf("retransmit of parked segment counted as drop: %d", dropped)
	}
}

// TestAnalyzerCountsDroppedSegments drives the drop path end to end: the
// counter must land in Aggregates, survive Merge, and appear in the report.
func TestAnalyzerCountsDroppedSegments(t *testing.T) {
	reg := astrie.NewRegistry(2)
	client, _ := reg.ResolverAddr(15169, false, false, 1)
	src := netip.AddrPortFrom(client, 40001)
	dst := netip.MustParseAddrPort("198.51.10.1:53")

	an := NewAnalyzer(reg)
	ts := time.Unix(0, 0)
	send := func(seq uint32, payload []byte, flags uint8) {
		frame, err := layers.BuildTCP(src, dst, layers.TCPMeta{Seq: seq, Flags: flags}, payload)
		if err != nil {
			t.Fatal(err)
		}
		an.HandlePacket(ts, frame)
		ts = ts.Add(time.Millisecond)
	}
	const iss = 100
	send(iss, nil, layers.TCPFlagSYN)
	// Future segments with gaps; with the first post-SYN byte missing none
	// of them can drain, so the buffer fills and the rest are dropped.
	for i := 0; i < maxPendingSegments+4; i++ {
		send(iss+2+uint32(2*i), []byte{byte(i)}, layers.TCPFlagACK)
	}
	ag := an.Finish()
	if ag.DroppedSegments != 4 {
		t.Fatalf("DroppedSegments = %d, want 4", ag.DroppedSegments)
	}

	other := NewAnalyzer(reg).Finish()
	other.Merge(ag)
	if other.DroppedSegments != 4 {
		t.Fatalf("merged DroppedSegments = %d, want 4", other.DroppedSegments)
	}
	if rep := BuildReport(ag, reg); rep.DroppedSegments != 4 {
		t.Fatalf("report DroppedSegments = %d, want 4", rep.DroppedSegments)
	}
}

// TestAnalyzerHandlesOutOfOrderTCP rebuilds a TCP exchange with the data
// segments swapped and checks the query is still extracted.
func TestAnalyzerHandlesOutOfOrderTCP(t *testing.T) {
	reg := astrie.NewRegistry(2)
	client, _ := reg.ResolverAddr(15169, false, false, 1)
	src := netip.AddrPortFrom(client, 40000)
	dst := netip.MustParseAddrPort("198.51.10.1:53")

	q := dnswire.NewQuery(7, "d1.nl.", dnswire.TypeA)
	qwire, _ := q.Pack()
	framed := append([]byte{byte(len(qwire) >> 8), byte(len(qwire))}, qwire...)
	// Split the framed query into two segments and deliver them swapped.
	cut := len(framed) / 2
	seg1, seg2 := framed[:cut], framed[cut:]
	const iss = 5000

	an := NewAnalyzer(reg)
	ts := time.Unix(0, 0)
	send := func(seq uint32, payload []byte, flags uint8) {
		frame, err := layers.BuildTCP(src, dst, layers.TCPMeta{Seq: seq, Flags: flags}, payload)
		if err != nil {
			t.Fatal(err)
		}
		an.HandlePacket(ts, frame)
		ts = ts.Add(time.Millisecond)
	}
	send(iss, nil, layers.TCPFlagSYN)
	// Data arrives out of order.
	send(iss+1+uint32(cut), seg2, layers.TCPFlagACK|layers.TCPFlagPSH)
	send(iss+1, seg1, layers.TCPFlagACK|layers.TCPFlagPSH)

	ag := an.Finish()
	google := ag.Provider(astrie.ProviderGoogle)
	if google.Queries != 1 || google.TCP != 1 {
		t.Fatalf("out-of-order TCP query not reassembled: %+v", google)
	}
	if google.ByType[dnswire.TypeA] != 1 {
		t.Fatal("wrong query type extracted")
	}
}
