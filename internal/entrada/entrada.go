// Package entrada is the reproduction's analysis pipeline, playing the
// role ENTRADA (the streaming DNS warehouse of Wullink et al.) plays in
// the paper: it consumes raw pcap packets captured at an authoritative
// server, joins queries with their responses, classifies source addresses
// into providers via the AS registry, and aggregates everything the
// paper's tables and figures need — query and junk counts per provider,
// record-type mixes, IPv4/IPv6 and UDP/TCP splits, EDNS(0) size
// histograms, truncation ratios, resolver and AS sets, and TCP-handshake
// RTT samples per (resolver, server) pair.
package entrada

import (
	"fmt"
	"net/netip"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/layers"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/stats"
)

// ProviderAgg aggregates one traffic source class.
type ProviderAgg struct {
	// Queries is the number of queries (cache misses) seen.
	Queries uint64
	// Junk counts queries whose response RCode was not NOERROR.
	Junk uint64
	// V6 counts queries arriving over IPv6.
	V6 uint64
	// TCP counts queries arriving over TCP.
	TCP uint64
	// ByType counts queries per record type.
	ByType map[dnswire.Type]uint64
	// EDNSSizes histograms the advertised EDNS(0) UDP sizes of UDP
	// queries; no-EDNS queries are recorded as size 0.
	EDNSSizes *stats.Histogram
	// UDPResponses and TruncatedUDP track §4.4's truncation ratio.
	UDPResponses uint64
	TruncatedUDP uint64
	// Resolvers is the distinct source-address set, split by family.
	Resolvers map[netip.Addr]struct{}
	// PublicDNSQueries and PublicResolvers split Google-style public
	// ranges (Table 4).
	PublicDNSQueries uint64
	// MinimizedQueries counts queries that look QNAME-minimized: NS
	// queries for names at most one label deeper than the zone cut under
	// the configured origin (the paper verified Google's Dec-2019 rollout
	// by inspecting query names this way, §4.2.1).
	MinimizedQueries uint64
}

func newProviderAgg() *ProviderAgg {
	return &ProviderAgg{
		ByType:    make(map[dnswire.Type]uint64),
		EDNSSizes: stats.NewHistogram(),
		Resolvers: make(map[netip.Addr]struct{}),
	}
}

// ResolverCounts summarizes a resolver set.
type ResolverCounts struct {
	Total, V4, V6, Public int
}

// ResolverCounts derives Table-6-style counts; publicFn marks public-DNS
// addresses.
func (pa *ProviderAgg) ResolverCounts(publicFn func(netip.Addr) bool) ResolverCounts {
	var rc ResolverCounts
	for a := range pa.Resolvers {
		rc.Total++
		if a.Is4() || a.Is4In6() {
			rc.V4++
		} else {
			rc.V6++
		}
		if publicFn != nil && publicFn(a) {
			rc.Public++
		}
	}
	return rc
}

// rttKey identifies a (resolver, server) pair for RTT samples.
type rttKey struct {
	Client netip.Addr
	Server netip.Addr
}

// Aggregates is the full analysis result.
type Aggregates struct {
	Total      uint64
	Valid      uint64
	ByProvider map[astrie.Provider]*ProviderAgg
	// ASes is the set of source AS numbers seen.
	ASes map[uint32]struct{}
	// AllResolvers is the global distinct source set.
	AllResolvers map[netip.Addr]struct{}
	// FocusQueries counts per-(client,server,family) queries for clients
	// of the focus provider (Figure 5a).
	FocusQueries map[rttKey]*FamilyCount
	// RTTs sketches TCP-handshake RTT samples per (client, server) for
	// focus-provider clients (Figure 5b). A fixed-size deterministic
	// reservoir rather than a raw sample slice, so per-key memory is
	// bounded no matter how long the capture runs; medians stay within
	// ~0.5% and shard merges stay order-insensitive.
	RTTs map[rttKey]*stats.DurationReservoir
	// Hourly counts queries per capture hour (Unix time / 3600) — the
	// diurnal series the paper's week-long snapshots average over.
	Hourly map[int64]uint64
	// RCodes counts responses per RCODE (RSSAC002 rcode-volume).
	RCodes map[dnswire.RCode]uint64
	// UDPResponses / TCPResponses count matched responses per transport.
	UDPResponses uint64
	TCPResponses uint64
	// DroppedSegments counts out-of-order TCP segments discarded because a
	// stream's reassembly buffer was full — silent data loss otherwise.
	DroppedSegments uint64
}

// FamilyCount splits query counts by IP family.
type FamilyCount struct {
	V4, V6 uint64
}

// CloudShare returns the five providers' combined share of all queries.
func (ag *Aggregates) CloudShare() float64 {
	var cloud uint64
	for p, pa := range ag.ByProvider {
		if p.IsCloud() {
			cloud += pa.Queries
		}
	}
	return stats.Ratio(cloud, ag.Total)
}

// Provider returns (allocating) the aggregate for p.
func (ag *Aggregates) Provider(p astrie.Provider) *ProviderAgg {
	pa, ok := ag.ByProvider[p]
	if !ok {
		pa = newProviderAgg()
		ag.ByProvider[p] = pa
	}
	return pa
}

// pendingQuery remembers query attributes until its response arrives.
// Stored by value in the pending map so parking a query costs no heap
// allocation on the hot path.
type pendingQuery struct {
	provider  astrie.Provider
	qtype     dnswire.Type
	v6        bool
	tcp       bool
	edns      int // advertised size, 0 = none
	public    bool
	minimized bool
	client    netip.Addr
}

// msgMeta is everything the analyzer consumes from one DNS message. Both
// decode paths — the zero-allocation lazy View walk and the full Unpack
// parse — reduce a packet to this struct before any accounting happens,
// so the two paths cannot classify a message differently anywhere
// downstream (the parity tests check equality end to end).
type msgMeta struct {
	id        uint16
	response  bool
	truncated bool
	rcode     dnswire.RCode // extended RCODE bits folded in, like Unpack
	qtype     dnswire.Type  // first question's type, 0 if no question
	udpSize   int           // advertised EDNS(0) size, 0 = no OPT
	minimized bool          // §4.2.1 QNAME-minimization heuristic verdict
}

// decode reduces one raw DNS payload to msgMeta, reporting ok=false for
// anything dnswire.Unpack would reject.
func (a *Analyzer) decode(payload []byte) (msgMeta, bool) {
	if a.eager {
		return a.decodeEager(payload)
	}
	return a.decodeLazy(payload)
}

// decodeLazy is the hot path: a View walk that validates the message and
// reads the consumed fields without materializing sections. The qname is
// appended into the analyzer's scratch buffer and only promoted to a
// string — through the shard-local intern table — for the rare NS-query
// shapes the minimization heuristic inspects.
func (a *Analyzer) decodeLazy(payload []byte) (msgMeta, bool) {
	v := &a.view
	if err := v.Reset(payload); err != nil {
		return msgMeta{}, false
	}
	if err := v.Validate(); err != nil {
		return msgMeta{}, false
	}
	rcode, _ := v.FullRCode() // walk already clean, cannot fail
	m := msgMeta{
		id:        v.ID(),
		response:  v.Response(),
		truncated: v.Truncated(),
		rcode:     rcode,
	}
	qtype, _, err := v.QuestionType()
	if err == nil {
		m.qtype = qtype
		if a.origin != "" && qtype == dnswire.TypeNS {
			// Only this rare shape needs the qname materialized; it lands
			// in the reusable scratch buffer and is promoted to a string
			// through the shard-local intern table.
			name, _, _, qerr := v.Question(a.scratch[:0])
			if qerr == nil {
				a.scratch = name // keep the grown capacity for the next packet
				m.minimized = a.looksMinimized(dnswire.Question{
					Name: a.names.intern(name), Type: qtype,
				})
			}
		}
	} else if err != dnswire.ErrNoQuestion {
		return msgMeta{}, false
	}
	if info, ok, _ := v.EDNS(); ok {
		m.udpSize = int(info.UDPSize)
	}
	return m, true
}

// decodeEager is the reference path through the full parser, selectable
// with WithEagerDecoding; the parity tests run both paths over the same
// capture and require byte-identical aggregates.
func (a *Analyzer) decodeEager(payload []byte) (msgMeta, bool) {
	msg, err := dnswire.Unpack(payload)
	if err != nil {
		return msgMeta{}, false
	}
	m := msgMeta{
		id:        msg.Header.ID,
		response:  msg.Header.Response,
		truncated: msg.Header.Truncated,
		rcode:     msg.Header.RCode,
	}
	q := msg.Question()
	m.qtype = q.Type
	if a.origin != "" && q.Type == dnswire.TypeNS {
		m.minimized = a.looksMinimized(q)
	}
	if msg.Edns != nil {
		m.udpSize = int(msg.Edns.UDPSize)
	}
	return m, true
}

// internTable caches qname strings keyed by their byte form so the lazy
// path can look a scratch buffer up without allocating (the compiler
// elides the string conversion in map reads). Analyzers are shard-local,
// so no locks; the entry cap bounds memory against adversarial captures
// full of unique NS names — on overflow the string is still returned,
// just not cached.
type internTable struct {
	m map[string]string
}

// maxInternedNames bounds the table; 64k distinct minimization-candidate
// names is far beyond any zone's delegation churn within one capture.
const maxInternedNames = 1 << 16

func (t *internTable) intern(b []byte) string {
	if s, ok := t.m[string(b)]; ok {
		return s
	}
	s := string(b)
	if t.m == nil {
		t.m = make(map[string]string, 64)
	}
	if len(t.m) < maxInternedNames {
		t.m[s] = s
	}
	return s
}

// looksMinimized applies the §4.2.1 name-shape heuristic.
func (a *Analyzer) looksMinimized(q dnswire.Question) bool {
	if a.origin == "" {
		return false
	}
	return q.Type == dnswire.TypeNS &&
		dnswire.IsSubdomain(q.Name, a.origin) &&
		dnswire.CountLabels(q.Name) <= dnswire.CountLabels(a.origin)+2 &&
		dnswire.CanonicalName(q.Name) != a.origin
}

// tcpStream reassembles one direction of a TCP connection in sequence
// order, tolerating out-of-order delivery, retransmissions and overlaps
// (real captures have all three, even if the synthetic generator emits
// segments in order).
type tcpStream struct {
	expected uint32 // next absolute sequence number we want
	synced   bool
	buf      []byte            // contiguous reassembled payload
	pending  map[uint32][]byte // out-of-order segments by sequence
	// drops, when set, counts future segments discarded because pending
	// was full (Aggregates.DroppedSegments).
	drops *uint64
	// pool, when set, recycles the copies made for parked segments; a nil
	// pool (the zero value, as unit tests construct) falls back to plain
	// allocation.
	pool *segmentPool
}

// segmentPool is an analyzer-local free list for the byte copies TCP
// reassembly must make of out-of-order segments. Each Analyzer owns one
// and is single-goroutine, so unlike sync.Pool there is no locking and
// no GC-driven eviction. Oversized or surplus buffers are simply not
// retained.
type segmentPool struct {
	free [][]byte
}

const (
	// maxPooledBuffers caps the free list; with maxPendingSegments=64
	// per-direction parking, 128 retained buffers cover two full streams.
	maxPooledBuffers = 128
	// maxPooledBufCap keeps pathological jumbo buffers from pinning
	// memory in the pool.
	maxPooledBufCap = 64 << 10
)

// get returns an empty buffer with whatever capacity was recycled, or nil
// (letting append allocate) when the pool is empty or unset.
func (p *segmentPool) get() []byte {
	if p == nil || len(p.free) == 0 {
		return nil
	}
	b := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return b
}

// put recycles b's backing array. Zero-capacity, oversized, and surplus
// buffers are dropped.
func (p *segmentPool) put(b []byte) {
	if p == nil || cap(b) == 0 || cap(b) > maxPooledBufCap || len(p.free) >= maxPooledBuffers {
		return
	}
	p.free = append(p.free, b[:0])
}

// release returns the stream's buffers to the pool when its connection is
// torn down.
func (s *tcpStream) release() {
	if s.pool == nil {
		return
	}
	s.pool.put(s.buf)
	s.buf = nil
	for seq, b := range s.pending {
		s.pool.put(b)
		delete(s.pending, seq)
	}
}

// maxPendingSegments bounds each stream's out-of-order buffer; segments
// arriving while it is full are dropped and counted.
const maxPendingSegments = 64

// push ingests one data segment and returns true if new contiguous bytes
// became available in s.buf.
func (s *tcpStream) push(seq uint32, payload []byte) bool {
	if len(payload) == 0 {
		return false
	}
	if !s.synced {
		// Mid-stream attach: adopt the first segment's position.
		s.expected = seq
		s.synced = true
	}
	progressed := false
	// recycle holds a parked buffer whose bytes the switch below just
	// consumed into s.buf; parked segments can never re-enter the parking
	// branch (their sequence is at or before expected by construction), so
	// returning them to the pool after the switch is safe.
	var recycle []byte
	for {
		switch {
		case seq == s.expected:
			s.buf = append(s.buf, payload...)
			s.expected += uint32(len(payload))
			progressed = true
		case seqBefore(seq, s.expected):
			// Retransmission or overlap: keep only the unseen suffix.
			skip := s.expected - seq
			if uint32(len(payload)) > skip {
				s.buf = append(s.buf, payload[skip:]...)
				s.expected += uint32(len(payload)) - skip
				progressed = true
			}
		default:
			// Future segment: park a pooled copy (bounded).
			if s.pending == nil {
				s.pending = make(map[uint32][]byte)
			}
			if old, parked := s.pending[seq]; parked {
				s.pool.put(old)
				s.pending[seq] = append(s.pool.get(), payload...)
			} else if len(s.pending) < maxPendingSegments {
				s.pending[seq] = append(s.pool.get(), payload...)
			} else if s.drops != nil {
				*s.drops++
			}
		}
		if recycle != nil {
			s.pool.put(recycle)
			recycle = nil
		}
		// Try to drain parked segments that are now due.
		next, ok := s.pending[s.expected]
		if !ok {
			// Also handle parked overlaps that start before expected.
			found := false
			for ps, pp := range s.pending {
				if seqBefore(ps, s.expected) && seqBefore(s.expected, ps+uint32(len(pp))) {
					next, ok, found = pp, true, true
					seq, payload = ps, pp
					delete(s.pending, ps)
					break
				}
			}
			if !found {
				return progressed
			}
			recycle = next
			continue
		}
		seq, payload = s.expected, next
		recycle = next
		delete(s.pending, s.expected)
	}
}

// seqBefore compares sequence numbers with wraparound (RFC 793 style).
func seqBefore(a, b uint32) bool { return int32(a-b) < 0 }

// syncTo pins the stream start (from the handshake's ISN+1).
func (s *tcpStream) syncTo(seq uint32) {
	if !s.synced {
		s.expected = seq
		s.synced = true
	}
}

// tcpConn tracks one TCP connection's handshake and payload reassembly.
type tcpConn struct {
	synAckAt  time.Time
	rttStored bool
	c2s, s2c  tcpStream
}

// Analyzer streams packets into Aggregates. Not safe for concurrent use;
// run one Analyzer per trace (shard by file and Merge the results).
type Analyzer struct {
	reg    *astrie.Registry
	parser *layers.Parser
	agg    *Aggregates
	focus  astrie.Provider
	origin string // zone origin for the Q-min heuristic ("" disables)

	// Lazy-decode machinery: the reusable message view, the scratch
	// buffer qnames are appended into, the qname intern table, and the
	// eager escape hatch (WithEagerDecoding) for parity testing.
	view    dnswire.View
	scratch []byte
	names   internTable
	eager   bool
	// segPool recycles TCP reassembly copies across this analyzer's
	// connections.
	segPool segmentPool

	pending map[pendingKey]pendingQuery
	conns   map[connKey]*tcpConn
	curTS   time.Time

	// Errors tolerated silently (malformed packets are counted, like
	// ENTRADA's loader, not fatal).
	MalformedPackets uint64
	UnmatchedResp    uint64
}

// maxPendingQueries bounds the query→response join table; see noteQuery.
const (
	maxPendingQueries = 1 << 20
	pendingFlushBatch = 1 << 10
)

type pendingKey struct {
	client netip.AddrPort
	server netip.AddrPort
	id     uint16
	tcp    bool
}

type connKey struct {
	client netip.AddrPort
	server netip.AddrPort
}

// Option configures an Analyzer.
type Option func(*Analyzer)

// WithFocusProvider selects the provider whose per-(client,server) query
// counts and RTTs are collected (default Facebook, for Figures 5 and 8).
func WithFocusProvider(p astrie.Provider) Option {
	return func(a *Analyzer) { a.focus = p }
}

// WithZoneOrigin tells the analyzer which zone the capture's server is
// authoritative for, enabling the QNAME-minimization heuristic: an NS
// query whose name sits at most two labels below the origin (one for flat
// registries, two for .nz-style category registrations) is counted as
// minimized-looking.
func WithZoneOrigin(origin string) Option {
	return func(a *Analyzer) { a.origin = dnswire.CanonicalName(origin) }
}

// WithEagerDecoding makes the analyzer decode every message with the full
// dnswire.Unpack parser instead of the default zero-allocation lazy
// dnswire.View walk. Both paths produce byte-identical Aggregates — the
// parity tests enforce it — so this exists only as the reference side of
// those tests and as a debugging aid when lazy decoding is suspected.
func WithEagerDecoding() Option {
	return func(a *Analyzer) { a.eager = true }
}

// NewAnalyzer builds an analyzer classifying addresses with reg.
func NewAnalyzer(reg *astrie.Registry, opts ...Option) *Analyzer {
	a := &Analyzer{
		reg:    reg,
		parser: layers.NewParser(),
		agg: &Aggregates{
			ByProvider:   make(map[astrie.Provider]*ProviderAgg),
			ASes:         make(map[uint32]struct{}),
			AllResolvers: make(map[netip.Addr]struct{}),
			FocusQueries: make(map[rttKey]*FamilyCount),
			RTTs:         make(map[rttKey]*stats.DurationReservoir),
			Hourly:       make(map[int64]uint64),
			RCodes:       make(map[dnswire.RCode]uint64),
		},
		focus:   astrie.ProviderFacebook,
		pending: make(map[pendingKey]pendingQuery),
		conns:   make(map[connKey]*tcpConn),
	}
	for _, o := range opts {
		o(a)
	}
	return a
}

// AnalyzeReader drains a packet reader (classic pcap or pcapng — use
// pcapio.Open to sniff the format).
func (a *Analyzer) AnalyzeReader(r pcapio.PacketReader) error {
	return pcapio.ForEachPacket(r, func(pkt pcapio.Packet) error {
		a.HandlePacket(pkt.Timestamp, pkt.Data)
		return nil
	})
}

// HandlePacket processes one captured frame. Malformed frames are counted
// and skipped.
func (a *Analyzer) HandlePacket(ts time.Time, frame []byte) {
	a.curTS = ts
	flow, err := a.parser.Decode(frame)
	if err != nil {
		a.MalformedPackets++
		return
	}
	switch flow.Proto {
	case layers.IPProtoUDP:
		a.handleUDP(flow, a.parser.Payload)
	case layers.IPProtoTCP:
		a.handleTCP(ts, flow, &a.parser.TCP, a.parser.Payload)
	}
}

// handleUDP processes one UDP datagram (a whole DNS message).
func (a *Analyzer) handleUDP(flow layers.Flow, payload []byte) {
	if flow.DstPort == 53 {
		m, ok := a.decode(payload)
		if !ok || m.response {
			a.MalformedPackets++
			return
		}
		a.noteQuery(flow, m, false)
		return
	}
	if flow.SrcPort == 53 {
		m, ok := a.decode(payload)
		if !ok || !m.response {
			a.MalformedPackets++
			return
		}
		a.noteResponse(flow, m, false)
	}
}

// handleTCP processes one TCP segment: handshake timing and stream
// reassembly of framed DNS messages.
func (a *Analyzer) handleTCP(ts time.Time, flow layers.Flow, tcp *layers.TCP, payload []byte) {
	var key connKey
	toServer := flow.DstPort == 53
	if toServer {
		key = connKey{
			client: netip.AddrPortFrom(flow.Src, flow.SrcPort),
			server: netip.AddrPortFrom(flow.Dst, flow.DstPort),
		}
	} else if flow.SrcPort == 53 {
		key = connKey{
			client: netip.AddrPortFrom(flow.Dst, flow.DstPort),
			server: netip.AddrPortFrom(flow.Src, flow.SrcPort),
		}
	} else {
		return
	}
	conn, ok := a.conns[key]
	if !ok {
		conn = &tcpConn{}
		conn.c2s.drops = &a.agg.DroppedSegments
		conn.s2c.drops = &a.agg.DroppedSegments
		conn.c2s.pool = &a.segPool
		conn.s2c.pool = &a.segPool
		a.conns[key] = conn
	}

	switch {
	case tcp.SYN() && tcp.ACK():
		conn.synAckAt = ts
		conn.s2c.syncTo(tcp.Seq + 1)
	case tcp.SYN():
		conn.c2s.syncTo(tcp.Seq + 1)
	case tcp.ACK() && toServer && len(payload) == 0 && !conn.rttStored && !conn.synAckAt.IsZero():
		// First bare ACK from the client completes the handshake:
		// ts - t(SYN-ACK) estimates the client's RTT (§4.3).
		rtt := ts.Sub(conn.synAckAt)
		conn.rttStored = true
		client := key.client.Addr()
		if a.reg.ProviderOf(client) == a.focus {
			k := rttKey{Client: client, Server: key.server.Addr()}
			r := a.agg.RTTs[k]
			if r == nil {
				r = &stats.DurationReservoir{}
				a.agg.RTTs[k] = r
			}
			r.Observe(rtt)
		}
	}
	if len(payload) > 0 {
		if toServer {
			if conn.c2s.push(tcp.Seq, payload) {
				conn.c2s.buf = a.drainFrames(conn.c2s.buf, flow, false)
			}
		} else {
			if conn.s2c.push(tcp.Seq, payload) {
				conn.s2c.buf = a.drainFrames(conn.s2c.buf, flow, true)
			}
		}
	}
	if tcp.FIN() || tcp.RST() {
		if tcp.FIN() && !toServer {
			conn.c2s.release()
			conn.s2c.release()
			delete(a.conns, key)
		}
	}
}

// drainFrames parses complete length-prefixed DNS messages out of buf.
func (a *Analyzer) drainFrames(buf []byte, flow layers.Flow, response bool) []byte {
	for len(buf) >= 2 {
		n := int(buf[0])<<8 | int(buf[1])
		if len(buf) < 2+n {
			break
		}
		m, ok := a.decode(buf[2 : 2+n])
		if !ok {
			a.MalformedPackets++
		} else if response && m.response {
			a.noteResponse(flow, m, true)
		} else if !response && !m.response {
			a.noteQuery(flow, m, true)
		} else {
			a.MalformedPackets++
		}
		buf = buf[2+n:]
	}
	return buf
}

// noteQuery records a query and parks it awaiting its response.
func (a *Analyzer) noteQuery(flow layers.Flow, m msgMeta, tcp bool) {
	client := flow.Src
	provider := a.reg.ProviderOf(client)

	pq := pendingQuery{
		provider:  provider,
		qtype:     m.qtype,
		v6:        flow.IsIPv6(),
		tcp:       tcp,
		edns:      m.udpSize,
		public:    a.reg.IsPublicDNSAddr(client),
		client:    client,
		minimized: m.minimized,
	}
	key := pendingKey{
		client: netip.AddrPortFrom(flow.Src, flow.SrcPort),
		server: netip.AddrPortFrom(flow.Dst, flow.DstPort),
		id:     m.id,
		tcp:    tcp,
	}
	if old, dup := a.pending[key]; dup {
		// Retransmission: count the earlier instance as an unanswered
		// query now, keep the newer one pending.
		a.finalize(old, nil)
	}
	// Bound the join table: a capture with massive response loss must not
	// grow memory without limit — flush arbitrary oldest entries as
	// unanswered, like ENTRADA's bounded join windows.
	if len(a.pending) >= maxPendingQueries {
		for k, old := range a.pending {
			a.finalize(old, nil)
			delete(a.pending, k)
			if len(a.pending) < maxPendingQueries-pendingFlushBatch {
				break
			}
		}
	}
	a.pending[key] = pq
	if !a.curTS.IsZero() {
		a.agg.Hourly[a.curTS.Unix()/3600]++
	}

	// Per-server focus accounting happens at query time.
	if provider == a.focus {
		k := rttKey{Client: client, Server: flow.Dst}
		fc, ok := a.agg.FocusQueries[k]
		if !ok {
			fc = &FamilyCount{}
			a.agg.FocusQueries[k] = fc
		}
		if pq.v6 {
			fc.V6++
		} else {
			fc.V4++
		}
	}
}

// noteResponse joins a response to its query and finalizes counters.
func (a *Analyzer) noteResponse(flow layers.Flow, m msgMeta, tcp bool) {
	key := pendingKey{
		client: netip.AddrPortFrom(flow.Dst, flow.DstPort),
		server: netip.AddrPortFrom(flow.Src, flow.SrcPort),
		id:     m.id,
		tcp:    tcp,
	}
	pq, ok := a.pending[key]
	if !ok {
		a.UnmatchedResp++
		return
	}
	delete(a.pending, key)
	a.finalize(pq, &m)
}

// finalize folds one (query, response?) pair into the aggregates.
func (a *Analyzer) finalize(pq pendingQuery, resp *msgMeta) {
	ag := a.agg
	ag.Total++
	pa := ag.Provider(pq.provider)
	pa.Queries++
	pa.ByType[pq.qtype]++
	if pq.v6 {
		pa.V6++
	}
	if pq.tcp {
		pa.TCP++
	} else {
		pa.EDNSSizes.Add(pq.edns)
	}
	if pq.public {
		pa.PublicDNSQueries++
	}
	if pq.minimized {
		pa.MinimizedQueries++
	}
	pa.Resolvers[pq.client] = struct{}{}
	ag.AllResolvers[pq.client] = struct{}{}
	if asn, ok := a.reg.LookupAddr(pq.client); ok {
		ag.ASes[asn] = struct{}{}
	}
	if resp == nil {
		// Unanswered queries count as valid (the paper's junk definition
		// needs an RCODE; missing responses are rare in our traces).
		ag.Valid++
		return
	}
	if resp.rcode == dnswire.RCodeNoError {
		ag.Valid++
	} else {
		pa.Junk++
	}
	ag.RCodes[resp.rcode]++
	if pq.tcp {
		ag.TCPResponses++
	} else {
		ag.UDPResponses++
		pa.UDPResponses++
		if resp.truncated {
			pa.TruncatedUDP++
		}
	}
}

// DroppedSegments reports the TCP reassembly drops counted so far; unlike
// the MalformedPackets field it lives in the aggregates (it is part of the
// merged result), so concurrent ingestion engines read it through this
// accessor for progress reporting.
func (a *Analyzer) DroppedSegments() uint64 { return a.agg.DroppedSegments }

// Finish flushes queries still awaiting responses and returns the
// aggregates. Call exactly once after the last packet.
func (a *Analyzer) Finish() *Aggregates {
	for key, pq := range a.pending {
		a.finalize(pq, nil)
		delete(a.pending, key)
	}
	return a.agg
}

// MedianRTTs computes per-(client,server) median RTTs from the sketches.
func (ag *Aggregates) MedianRTTs() map[rttKey]time.Duration {
	out := make(map[rttKey]time.Duration, len(ag.RTTs))
	for k, r := range ag.RTTs {
		out[k] = r.Median()
	}
	return out
}

// RTTKey constructs the exported key type (for tests and reports).
func RTTKey(client, server netip.Addr) rttKey { return rttKey{Client: client, Server: server} }

// String summarizes the aggregates.
func (ag *Aggregates) String() string {
	s := fmt.Sprintf("entrada: %d queries (%.1f%% valid), %d resolvers, %d ASes, cloud share %.1f%%",
		ag.Total, 100*stats.Ratio(ag.Valid, ag.Total), len(ag.AllResolvers), len(ag.ASes), 100*ag.CloudShare())
	if ag.DroppedSegments > 0 {
		s += fmt.Sprintf(", %d dropped TCP segments", ag.DroppedSegments)
	}
	return s
}
