package entrada

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/layers"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/workload"
)

// TestLazyEagerParity is the contract behind the zero-allocation fast
// path: analyzing the same capture through the default lazy dnswire.View
// decoder and through the option-forced full-Unpack decoder must produce
// byte-identical Aggregates — same String() summary, same canonical
// report JSON, same malformed/unmatched side counters. Runs under -race
// in CI with the rest of this package.
func TestLazyEagerParity(t *testing.T) {
	for _, tc := range []struct {
		vantage cloudmodel.Vantage
		week    cloudmodel.Week
		seed    int64
	}{
		{cloudmodel.VantageNL, cloudmodel.W2020, 21},
		{cloudmodel.VantageNZ, cloudmodel.W2018, 4},
	} {
		g, err := workload.NewGenerator(workload.Config{
			Vantage: tc.vantage, Week: tc.week,
			TotalQueries: 6000, Seed: tc.seed, ResolverScale: 0.002,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		w := pcapio.NewWriter(&buf)
		if _, err := g.Run(w); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		blob := buf.Bytes()
		reg := g.Registry()
		origin := g.Zone().Origin

		run := func(opts ...Option) (*Analyzer, *Aggregates) {
			an := NewAnalyzer(reg, append([]Option{WithZoneOrigin(origin)}, opts...)...)
			r, err := pcapio.NewReader(bytes.NewReader(blob))
			if err != nil {
				t.Fatal(err)
			}
			if err := an.AnalyzeReader(r); err != nil {
				t.Fatal(err)
			}
			return an, an.Finish()
		}
		lazyAn, lazy := run()
		eagerAn, eager := run(WithEagerDecoding())

		if got, want := lazy.String(), eager.String(); got != want {
			t.Errorf("seed %d: Aggregates.String diverges:\nlazy:  %s\neager: %s", tc.seed, got, want)
		}
		if got, want := reportJSON(t, lazy, reg), reportJSON(t, eager, reg); !bytes.Equal(got, want) {
			t.Errorf("seed %d: report JSON diverges between lazy and eager paths", tc.seed)
		}
		if lazyAn.MalformedPackets != eagerAn.MalformedPackets ||
			lazyAn.UnmatchedResp != eagerAn.UnmatchedResp {
			t.Errorf("seed %d: side counters diverge: malformed %d/%d unmatched %d/%d",
				tc.seed, lazyAn.MalformedPackets, eagerAn.MalformedPackets,
				lazyAn.UnmatchedResp, eagerAn.UnmatchedResp)
		}
	}
}

// TestLazyEagerParityMalformed feeds both paths frames that exercise the
// reject half of the contract: garbage payloads, short headers, trailing
// bytes, and direction mismatches must be counted malformed identically.
func TestLazyEagerParityMalformed(t *testing.T) {
	client := netip.MustParseAddrPort("198.51.100.9:40000")
	server := netip.MustParseAddrPort("192.0.2.1:53")

	query, err := dnswire.NewQuery(7, "ok.example.nl.", dnswire.TypeA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.NewQuery(7, "ok.example.nl.", dnswire.TypeA).Reply().Pack()
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{
		query,
		resp,                                     // a response sent *to* port 53: direction mismatch
		{},                                       // empty
		{1, 2, 3},                                // short header
		append(append([]byte{}, query...), 0xFF), // trailing byte
		bytes.Repeat([]byte{0xFF}, 40),           // count-field garbage
	}

	reg := astrie.NewRegistry(2)
	run := func(opts ...Option) *Analyzer {
		an := NewAnalyzer(reg, opts...)
		ts := time.Unix(1_600_000_000, 0)
		for _, p := range payloads {
			frame, err := layers.BuildUDP(client, server, p)
			if err != nil {
				t.Fatal(err)
			}
			an.HandlePacket(ts, frame)
		}
		an.Finish()
		return an
	}
	lazy := run()
	eager := run(WithEagerDecoding())
	if lazy.MalformedPackets != eager.MalformedPackets {
		t.Fatalf("malformed counts diverge: lazy %d, eager %d",
			lazy.MalformedPackets, eager.MalformedPackets)
	}
	if lazy.MalformedPackets == 0 {
		t.Fatal("expected some malformed packets to be counted")
	}
}
