package entrada

import (
	"bytes"
	"math"
	"net/netip"
	"testing"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/layers"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/stats"
	"dnscentral/internal/workload"
)

// runPipeline generates a trace and analyzes it end to end through pcap.
func runPipeline(t *testing.T, cfg workload.Config) (*workload.Generator, *workload.GroundTruth, *Aggregates) {
	g, gt, ag, _ := runPipelineFull(t, cfg)
	_ = ag
	return g, gt, ag
}

func runPipelineFull(t *testing.T, cfg workload.Config) (*workload.Generator, *workload.GroundTruth, *Aggregates, *Analyzer) {
	t.Helper()
	g, err := workload.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf, pcapio.WithNanosecondResolution())
	gt, err := g.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := pcapio.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(g.Registry())
	if err := an.AnalyzeReader(r); err != nil {
		t.Fatal(err)
	}
	return g, gt, an.Finish(), an
}

func TestPipelineMatchesGroundTruth(t *testing.T) {
	_, gt, ag, an := runPipelineFull(t, workload.Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020,
		TotalQueries: 8000, Seed: 21, ResolverScale: 0.002,
	})
	if ag.Total != gt.Queries {
		t.Fatalf("analyzer total %d != ground truth %d", ag.Total, gt.Queries)
	}
	for _, p := range astrie.CloudProviders {
		pa := ag.Provider(p)
		if pa.Queries != gt.ByProvider[p] {
			t.Errorf("%s: analyzer %d != truth %d", p, pa.Queries, gt.ByProvider[p])
		}
		if pa.V6 != gt.V6Queries[p] {
			t.Errorf("%s v6: analyzer %d != truth %d", p, pa.V6, gt.V6Queries[p])
		}
		if pa.TCP != gt.TCPQueries[p] {
			t.Errorf("%s tcp: analyzer %d != truth %d", p, pa.TCP, gt.TCPQueries[p])
		}
		if pa.Junk != gt.JunkQueries[p] {
			t.Errorf("%s junk: analyzer %d != truth %d", p, pa.Junk, gt.JunkQueries[p])
		}
	}
	// Resolver sets must match exactly.
	if len(ag.AllResolvers) != len(gt.ResolverSet) {
		t.Errorf("resolvers: analyzer %d != truth %d", len(ag.AllResolvers), len(gt.ResolverSet))
	}
	for a := range gt.ResolverSet {
		if _, ok := ag.AllResolvers[a]; !ok {
			t.Errorf("resolver %s missed by analyzer", a)
		}
	}
	// Query type counts.
	for typ, c := range gt.ByType {
		var got uint64
		for _, pa := range ag.ByProvider {
			got += pa.ByType[typ]
		}
		if got != c {
			t.Errorf("type %s: analyzer %d != truth %d", typ, got, c)
		}
	}
	if an.MalformedPackets != 0 {
		t.Errorf("malformed packets: %d", an.MalformedPackets)
	}
}

func TestPipelineJunkShareMatchesModel(t *testing.T) {
	_, _, ag := runPipeline(t, workload.Config{
		Vantage: cloudmodel.VantageNZ, Week: cloudmodel.W2020,
		TotalQueries: 12000, Seed: 22, ResolverScale: 0.002,
	})
	vw, _ := cloudmodel.Get(cloudmodel.VantageNZ, cloudmodel.W2020)
	got := stats.Ratio(ag.Valid, ag.Total)
	if math.Abs(got-vw.ValidShare) > 0.03 {
		t.Errorf("valid share = %.3f, model %.3f", got, vw.ValidShare)
	}
}

func TestPipelineTruncationRatios(t *testing.T) {
	_, _, ag := runPipeline(t, workload.Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020,
		TotalQueries: 20000, Seed: 23, ResolverScale: 0.002,
	})
	fb := ag.Provider(astrie.ProviderFacebook)
	google := ag.Provider(astrie.ProviderGoogle)
	fbTrunc := stats.Ratio(fb.TruncatedUDP, fb.UDPResponses)
	gTrunc := stats.Ratio(google.TruncatedUDP, google.UDPResponses)
	if fbTrunc < 0.05 {
		t.Errorf("Facebook truncation = %.4f, want ≳0.1 (paper 0.1716)", fbTrunc)
	}
	if gTrunc > 0.005 {
		t.Errorf("Google truncation = %.4f, want ≈0.0004", gTrunc)
	}
}

func TestPipelineEDNSCDF(t *testing.T) {
	_, _, ag := runPipeline(t, workload.Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020,
		TotalQueries: 20000, Seed: 24, ResolverScale: 0.002,
	})
	fb := ag.Provider(astrie.ProviderFacebook)
	cdf := fb.EDNSSizes.CDF()
	at512 := stats.CDFAt(cdf, 512)
	if math.Abs(at512-0.30) > 0.06 {
		t.Errorf("Facebook EDNS CDF at 512 = %.3f, want ≈0.30 (Figure 6)", at512)
	}
	google := ag.Provider(astrie.ProviderGoogle)
	gAt1232 := stats.CDFAt(google.EDNSSizes.CDF(), 1232)
	if math.Abs(gAt1232-0.24) > 0.06 {
		t.Errorf("Google EDNS CDF at 1232 = %.3f, want ≈0.24 (Figure 6)", gAt1232)
	}
}

func TestPipelineRTTAndFocus(t *testing.T) {
	g, _, ag := runPipeline(t, workload.Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020,
		TotalQueries: 20000, Seed: 25, ResolverScale: 0.002,
	})
	if len(ag.FocusQueries) == 0 {
		t.Fatal("no focus (Facebook) per-client data")
	}
	if len(ag.RTTs) == 0 {
		t.Fatal("no TCP handshake RTTs measured")
	}
	// All focus clients must be Facebook's.
	reg := g.Registry()
	for k := range ag.FocusQueries {
		if reg.ProviderOf(k.Client) != astrie.ProviderFacebook {
			t.Fatalf("focus client %s not Facebook", k.Client)
		}
	}
	// Median RTTs must be in the site model's range (≈8–260ms ± factors).
	for k, m := range ag.MedianRTTs() {
		if m < time.Millisecond || m > 800*time.Millisecond {
			t.Errorf("median RTT %v for %v out of range", m, k)
		}
	}
}

func TestAnalyzerToleratesGarbage(t *testing.T) {
	reg := astrie.NewRegistry(10)
	an := NewAnalyzer(reg)
	an.HandlePacket(time.Now(), []byte{1, 2, 3})
	an.HandlePacket(time.Now(), nil)
	ag := an.Finish()
	if ag.Total != 0 || an.MalformedPackets != 2 {
		t.Errorf("total=%d malformed=%d", ag.Total, an.MalformedPackets)
	}
}

func TestUnansweredQueriesCountAsValid(t *testing.T) {
	reg := astrie.NewRegistry(10)
	an := NewAnalyzer(reg)
	// Build a lone UDP query frame by hand.
	asn := reg.ASNs()[0]
	client, _ := reg.ResolverAddr(asn, false, false, 1)
	q := dnswire.NewQuery(9, "x.nl.", dnswire.TypeA)
	wire, _ := q.Pack()
	frame := buildUDPFrame(t, client.String()+":5000", "198.51.10.1:53", wire)
	an.HandlePacket(time.Now(), frame)
	ag := an.Finish()
	if ag.Total != 1 || ag.Valid != 1 {
		t.Errorf("total=%d valid=%d", ag.Total, ag.Valid)
	}
}

func TestReportRoundTrip(t *testing.T) {
	g, _, ag := runPipeline(t, workload.Config{
		Vantage: cloudmodel.VantageNZ, Week: cloudmodel.W2019,
		TotalQueries: 4000, Seed: 26, ResolverScale: 0.002,
	})
	rep := BuildReport(ag, g.Registry())
	if rep.TotalQueries != ag.Total {
		t.Fatal("report total mismatch")
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalQueries != rep.TotalQueries || len(back.Providers) != len(rep.Providers) {
		t.Fatal("JSON round trip lost data")
	}
	if back.Providers["Google"].Queries == 0 {
		t.Fatal("Google missing from report")
	}
}

func TestGooglePublicSplit(t *testing.T) {
	g, _, ag := runPipeline(t, workload.Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020,
		TotalQueries: 20000, Seed: 27, ResolverScale: 0.002,
	})
	google := ag.Provider(astrie.ProviderGoogle)
	pubShare := stats.Ratio(google.PublicDNSQueries, google.Queries)
	if math.Abs(pubShare-0.865) > 0.05 {
		t.Errorf("Google public-DNS query share = %.3f, want ≈0.865 (Table 4)", pubShare)
	}
	rc := google.ResolverCounts(g.Registry().IsPublicDNSAddr)
	pubResolvers := float64(rc.Public) / float64(rc.Total)
	if math.Abs(pubResolvers-0.156) > 0.08 {
		t.Errorf("Google public resolver fraction = %.3f, want ≈0.156 (Table 4)", pubResolvers)
	}
}

func TestTable6ResolverFamilySplit(t *testing.T) {
	g, _, ag := runPipeline(t, workload.Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020,
		TotalQueries: 60000, Seed: 28, ResolverScale: 0.01,
	})
	_ = g
	amazon := ag.Provider(astrie.ProviderAmazon).ResolverCounts(nil)
	if amazon.Total < 100 {
		t.Fatalf("too few Amazon resolvers (%d) for a meaningful split", amazon.Total)
	}
	v6frac := float64(amazon.V6) / float64(amazon.Total)
	if v6frac > 0.06 {
		t.Errorf("Amazon IPv6 resolver fraction = %.3f, want ≈0.018 (Table 6)", v6frac)
	}
	ms := ag.Provider(astrie.ProviderMicrosoft).ResolverCounts(nil)
	if ms.V6 == 0 {
		t.Log("note: Microsoft v6 resolvers exist but send no queries (Table 6 vs Table 5)")
	}
}

// buildUDPFrame is a tiny helper around layers for hand-made packets.
func buildUDPFrame(t *testing.T, src, dst string, payload []byte) []byte {
	t.Helper()
	frame, err := layers.BuildUDP(netip.MustParseAddrPort(src), netip.MustParseAddrPort(dst), payload)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}
