package entrada

import (
	"net/netip"
	"testing"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/layers"
	"dnscentral/internal/stats"
)

// TestWithFocusProviderSwitchesFigure5Target verifies the focus option:
// with focus=Google, Google resolvers (not Facebook's) populate the
// per-(client,server) Figure 5 dataset.
func TestWithFocusProviderSwitchesFigure5Target(t *testing.T) {
	reg := astrie.NewRegistry(2)
	an := NewAnalyzer(reg, WithFocusProvider(astrie.ProviderGoogle))
	server := netip.MustParseAddrPort("198.51.10.1:53")

	send := func(asn uint32, idx uint32) {
		client, err := reg.ResolverAddr(asn, false, false, idx)
		if err != nil {
			t.Fatal(err)
		}
		q := dnswire.NewQuery(uint16(idx), "d1.nl.", dnswire.TypeA)
		wire, _ := q.Pack()
		frame, err := layers.BuildUDP(netip.AddrPortFrom(client, 5000), server, wire)
		if err != nil {
			t.Fatal(err)
		}
		an.HandlePacket(time.Unix(0, 0), frame)
	}
	send(15169, 1) // Google
	send(32934, 2) // Facebook
	ag := an.Finish()
	if len(ag.FocusQueries) != 1 {
		t.Fatalf("focus rows = %d, want 1", len(ag.FocusQueries))
	}
	for k := range ag.FocusQueries {
		if reg.ProviderOf(k.Client) != astrie.ProviderGoogle {
			t.Fatalf("focus client %s is not Google", k.Client)
		}
		// RTTKey round-trips the exported constructor.
		if RTTKey(k.Client, k.Server) != k {
			t.Fatal("RTTKey mismatch")
		}
	}
	if ag.String() == "" || stats.Ratio(ag.Valid, ag.Total) > 1 {
		t.Fatal("summary string broken")
	}
}
