package entrada

import (
	"bytes"
	"io"
	"testing"

	"dnscentral/internal/astrie"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/workload"
)

// TestShardedAnalysisMatchesSingle splits one pcap into two halves,
// analyzes them independently, merges, and compares against the
// single-analyzer result.
func TestShardedAnalysisMatchesSingle(t *testing.T) {
	g, err := workload.NewGenerator(workload.Config{
		Vantage: cloudmodel.VantageNZ, Week: cloudmodel.W2020,
		TotalQueries: 6000, Seed: 40, ResolverScale: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf)
	if _, err := g.Run(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	// Reference: single pass.
	single := NewAnalyzer(g.Registry())
	r, _ := pcapio.NewReader(bytes.NewReader(blob))
	if err := single.AnalyzeReader(r); err != nil {
		t.Fatal(err)
	}
	ref := single.Finish()

	// Sharded: split at a packet boundary near the middle.
	r, _ = pcapio.NewReader(bytes.NewReader(blob))
	var shardA, shardB bytes.Buffer
	wA := pcapio.NewWriter(&shardA)
	wB := pcapio.NewWriter(&shardB)
	i := 0
	err = r.ForEach(func(p pcapio.Packet) error {
		i++
		if i%2 == 0 { // interleave so query/response pairs mostly split
			return wB.WritePacket(p.Timestamp, p.Data)
		}
		return wA.WritePacket(p.Timestamp, p.Data)
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = wA.Flush()
	_ = wB.Flush()

	merged := analyzeShard(t, g.Registry(), &shardA)
	merged.Merge(analyzeShard(t, g.Registry(), &shardB))

	// Totals, resolver sets and type counts must match exactly; junk may
	// differ because interleaving separates queries from responses.
	if merged.Total != ref.Total {
		t.Errorf("merged total %d != %d", merged.Total, ref.Total)
	}
	if len(merged.AllResolvers) != len(ref.AllResolvers) {
		t.Errorf("merged resolvers %d != %d", len(merged.AllResolvers), len(ref.AllResolvers))
	}
	if len(merged.ASes) != len(ref.ASes) {
		t.Errorf("merged ASes %d != %d", len(merged.ASes), len(ref.ASes))
	}
	for _, p := range astrie.CloudProviders {
		if merged.Provider(p).Queries != ref.Provider(p).Queries {
			t.Errorf("%s: merged %d != %d", p, merged.Provider(p).Queries, ref.Provider(p).Queries)
		}
		for typ, n := range ref.Provider(p).ByType {
			if merged.Provider(p).ByType[typ] != n {
				t.Errorf("%s %s: merged %d != %d", p, typ, merged.Provider(p).ByType[typ], n)
			}
		}
	}
	// Hourly series must merge additively.
	var refHours, mergedHours uint64
	for _, n := range ref.Hourly {
		refHours += n
	}
	for _, n := range merged.Hourly {
		mergedHours += n
	}
	if refHours != mergedHours {
		t.Errorf("hourly totals %d != %d", mergedHours, refHours)
	}
}

func analyzeShard(t *testing.T, reg *astrie.Registry, r io.Reader) *Aggregates {
	t.Helper()
	pr, err := pcapio.NewReader(r)
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(reg)
	if err := an.AnalyzeReader(pr); err != nil {
		t.Fatal(err)
	}
	return an.Finish()
}

func TestMergeNilIsNoop(t *testing.T) {
	reg := astrie.NewRegistry(1)
	an := NewAnalyzer(reg)
	ag := an.Finish()
	ag.Merge(nil)
	if ag.Total != 0 {
		t.Error("nil merge changed state")
	}
}
