package entrada

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/workload"
)

// checkpointCapture builds the deterministic capture the checkpoint
// tests share.
func checkpointCapture(t *testing.T) ([]byte, *workload.Generator) {
	t.Helper()
	g, err := workload.NewGenerator(workload.Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020,
		TotalQueries: 4000, Seed: 42, ResolverScale: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf)
	if _, err := g.Run(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), g
}

// readAll decodes every packet of a capture.
func readAll(t *testing.T, blob []byte) []pcapio.Packet {
	t.Helper()
	r, err := pcapio.NewReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var pkts []pcapio.Packet
	err = r.ForEach(func(p pcapio.Packet) error {
		pkts = append(pkts, pcapio.Packet{
			Timestamp: p.Timestamp,
			Data:      append([]byte(nil), p.Data...),
			OrigLen:   p.OrigLen,
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkts
}

// TestCheckpointResumeExact is the tentpole invariant at unit level:
// serialize mid-run at an arbitrary packet boundary — pending joins and
// half-open TCP connections in flight — restore into a fresh analyzer,
// feed it the rest, and the final report must be byte-identical to an
// uninterrupted run.
func TestCheckpointResumeExact(t *testing.T) {
	blob, g := checkpointCapture(t)
	reg := g.Registry()
	origin := WithZoneOrigin(g.Zone().Origin)
	pkts := readAll(t, blob)

	oneShot := NewAnalyzer(reg, origin)
	for _, p := range pkts {
		oneShot.HandlePacket(p.Timestamp, p.Data)
	}
	want := reportJSON(t, oneShot.Finish(), reg)

	// Split points deliberately not aligned to query/response pairs.
	for _, cut := range []int{0, 1, len(pkts) / 3, len(pkts) / 2, len(pkts) - 1, len(pkts)} {
		first := NewAnalyzer(reg, origin)
		for _, p := range pkts[:cut] {
			first.HandlePacket(p.Timestamp, p.Data)
		}
		state, err := first.MarshalState()
		if err != nil {
			t.Fatalf("cut=%d: marshal: %v", cut, err)
		}
		restored, err := RestoreAnalyzer(reg, state)
		if err != nil {
			t.Fatalf("cut=%d: restore: %v", cut, err)
		}
		for _, p := range pkts[cut:] {
			restored.HandlePacket(p.Timestamp, p.Data)
		}
		got := reportJSON(t, restored.Finish(), reg)
		if !bytes.Equal(got, want) {
			t.Fatalf("cut=%d: resumed report differs from uninterrupted run", cut)
		}
	}
}

// TestCheckpointGolden pins the serialization format: the same state
// must always marshal to the same bytes (determinism is what makes the
// resume guarantee testable), a restore→re-marshal round trip must be
// the identity, and the SHA-256 of the encoding over a fixed workload is
// pinned so format drift is an explicit, reviewed change (bump
// CheckpointVersion when it is intentional).
func TestCheckpointGolden(t *testing.T) {
	blob, g := checkpointCapture(t)
	reg := g.Registry()
	pkts := readAll(t, blob)

	an := NewAnalyzer(reg, WithZoneOrigin(g.Zone().Origin))
	for _, p := range pkts[:len(pkts)/2] {
		an.HandlePacket(p.Timestamp, p.Data)
	}
	state, err := an.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	again, err := an.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(state, again) {
		t.Fatal("MarshalState is not deterministic: two calls on the same state differ")
	}

	restored, err := RestoreAnalyzer(reg, state)
	if err != nil {
		t.Fatal(err)
	}
	restate, err := restored.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restate, state) {
		t.Fatal("restore→marshal is not the identity")
	}

	sum := sha256.Sum256(state)
	const want = "73025e322384eb7eec34a4ecf11a0a4a08d8181f25ea6947f53aeeb68f326450"
	if got := hex.EncodeToString(sum[:]); got != want {
		t.Fatalf("checkpoint encoding SHA-256 = %s, want %s\n(format drift: if intentional, bump CheckpointVersion and re-pin)", got, want)
	}
}

// TestCheckpointVersionMismatch: a checkpoint from a different format
// version must be rejected, not misinterpreted.
func TestCheckpointVersionMismatch(t *testing.T) {
	if _, err := RestoreAnalyzer(nil, []byte(`{"version":99,"agg":{"total":0,"valid":0}}`)); err == nil {
		t.Fatal("future-version checkpoint accepted")
	}
	if _, err := RestoreAnalyzer(nil, []byte(`not json`)); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
}

// TestQueryCountsSnapshot: QueryCounts must be non-destructive and
// reflect cumulative finalized queries, so consecutive snapshots give
// valid window deltas.
func TestQueryCountsSnapshot(t *testing.T) {
	blob, g := checkpointCapture(t)
	reg := g.Registry()
	pkts := readAll(t, blob)

	an := NewAnalyzer(reg, WithZoneOrigin(g.Zone().Origin))
	var prev uint64
	for i, p := range pkts {
		an.HandlePacket(p.Timestamp, p.Data)
		if i%500 == 0 {
			qc := an.QueryCounts()
			if qc.Total < prev {
				t.Fatalf("packet %d: Total went backwards: %d -> %d", i, prev, qc.Total)
			}
			var byProv uint64
			for _, n := range qc.ByProvider {
				byProv += n
			}
			if byProv != qc.Total {
				t.Fatalf("packet %d: provider sum %d != total %d", i, byProv, qc.Total)
			}
			prev = qc.Total
		}
	}
	mid := an.QueryCounts()
	ag := an.Finish()
	if ag.Total < mid.Total {
		t.Fatalf("Finish() total %d below last snapshot %d", ag.Total, mid.Total)
	}
}
