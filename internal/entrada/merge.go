package entrada

// Merge folds other into ag, enabling sharded analysis: split a large
// capture by file, run one Analyzer per shard, and merge the results.
// Queries whose response landed in a different shard count as unanswered
// in their shard (valid), like the single-analyzer flush behavior.
func (ag *Aggregates) Merge(other *Aggregates) {
	if other == nil {
		return
	}
	ag.Total += other.Total
	ag.Valid += other.Valid
	ag.UDPResponses += other.UDPResponses
	ag.TCPResponses += other.TCPResponses
	ag.DroppedSegments += other.DroppedSegments
	for p, opa := range other.ByProvider {
		pa := ag.Provider(p)
		pa.Queries += opa.Queries
		pa.Junk += opa.Junk
		pa.V6 += opa.V6
		pa.TCP += opa.TCP
		pa.UDPResponses += opa.UDPResponses
		pa.TruncatedUDP += opa.TruncatedUDP
		pa.PublicDNSQueries += opa.PublicDNSQueries
		pa.MinimizedQueries += opa.MinimizedQueries
		for t, n := range opa.ByType {
			pa.ByType[t] += n
		}
		pa.EDNSSizes.Merge(opa.EDNSSizes)
		for a := range opa.Resolvers {
			pa.Resolvers[a] = struct{}{}
		}
	}
	for asn := range other.ASes {
		ag.ASes[asn] = struct{}{}
	}
	for a := range other.AllResolvers {
		ag.AllResolvers[a] = struct{}{}
	}
	for k, fc := range other.FocusQueries {
		mine, ok := ag.FocusQueries[k]
		if !ok {
			mine = &FamilyCount{}
			ag.FocusQueries[k] = mine
		}
		mine.V4 += fc.V4
		mine.V6 += fc.V6
	}
	for k, sketch := range other.RTTs {
		mine, ok := ag.RTTs[k]
		if !ok {
			mine = sketch.Clone()
			ag.RTTs[k] = mine
			continue
		}
		mine.Merge(sketch)
	}
	for h, n := range other.Hourly {
		ag.Hourly[h] += n
	}
	for rc, n := range other.RCodes {
		ag.RCodes[rc] += n
	}
}
