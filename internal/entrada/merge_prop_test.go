package entrada

import (
	"bytes"
	"math/rand"
	"testing"

	"dnscentral/internal/astrie"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/workload"
)

// reportJSON renders the canonical report bytes used to compare runs:
// BuildReport sorts everything order-sensitive, and encoding/json emits
// maps with sorted keys, so equal aggregates yield identical bytes.
func reportJSON(t *testing.T, ag *Aggregates, reg *astrie.Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := BuildReport(ag, reg).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPropertyMergeOrderInsensitive is the invariant the parallel pipeline
// rests on: splitting a capture into k flow-consistent shards, analyzing
// each independently, and merging the shard aggregates in ANY order must
// produce a report byte-identical to the single-analyzer run.
func TestPropertyMergeOrderInsensitive(t *testing.T) {
	g, err := workload.NewGenerator(workload.Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020,
		TotalQueries: 5000, Seed: 77, ResolverScale: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf)
	if _, err := g.Run(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	reg := g.Registry()
	// Enable the Q-min origin so MinimizedQueries is exercised — a field
	// only populated with an origin set, and once dropped by Merge.
	origin := WithZoneOrigin(g.Zone().Origin)

	// Reference: single analyzer over the whole capture.
	single := NewAnalyzer(reg, origin)
	r, err := pcapio.NewReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if err := single.AnalyzeReader(r); err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, single.Finish(), reg)

	for _, k := range []int{2, 3, 5} {
		// Shard by flow so query/response pairs and TCP connections stay
		// together — the same routing the pipeline's dispatcher uses.
		analyzers := make([]*Analyzer, k)
		for i := range analyzers {
			analyzers[i] = NewAnalyzer(reg, origin)
		}
		r, err := pcapio.NewReader(bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		err = r.ForEach(func(p pcapio.Packet) error {
			analyzers[FlowShard(p.Data, k)].HandlePacket(p.Timestamp, p.Data)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		shards := make([]*Aggregates, k)
		for i, an := range analyzers {
			shards[i] = an.Finish()
		}

		// Merge in several orders: identity, reversed, and random
		// permutations, each into a fresh empty base.
		rnd := rand.New(rand.NewSource(int64(k)))
		orders := [][]int{identityPerm(k), reversedPerm(k)}
		for i := 0; i < 4; i++ {
			orders = append(orders, rnd.Perm(k))
		}
		for _, order := range orders {
			merged := NewAnalyzer(reg).Finish() // empty, maps initialized
			for _, i := range order {
				merged.Merge(shards[i])
			}
			got := reportJSON(t, merged, reg)
			if !bytes.Equal(got, want) {
				t.Fatalf("k=%d order=%v: merged report differs from single-analyzer report", k, order)
			}
		}
	}
}

// TestPropertyMergeCommutative checks A+B == B+A directly on two disjoint
// halves of a capture (a stricter pairwise statement of the above).
func TestPropertyMergeCommutative(t *testing.T) {
	g, err := workload.NewGenerator(workload.Config{
		Vantage: cloudmodel.VantageNZ, Week: cloudmodel.W2019,
		TotalQueries: 3000, Seed: 9, ResolverScale: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf)
	if _, err := g.Run(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	reg := g.Registry()
	origin := WithZoneOrigin(g.Zone().Origin)

	analyzers := [2]*Analyzer{NewAnalyzer(reg, origin), NewAnalyzer(reg, origin)}
	r, err := pcapio.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	err = r.ForEach(func(p pcapio.Packet) error {
		analyzers[FlowShard(p.Data, 2)].HandlePacket(p.Timestamp, p.Data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := analyzers[0].Finish(), analyzers[1].Finish()

	ab := NewAnalyzer(reg).Finish()
	ab.Merge(a)
	ab.Merge(b)
	ba := NewAnalyzer(reg).Finish()
	ba.Merge(b)
	ba.Merge(a)
	if !bytes.Equal(reportJSON(t, ab, reg), reportJSON(t, ba, reg)) {
		t.Fatal("Merge is not commutative: A+B report != B+A report")
	}
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func reversedPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = n - 1 - i
	}
	return p
}
