package entrada

import (
	"testing"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/stats"
	"dnscentral/internal/workload"
)

// runPipelineWithOrigin is runPipeline with the Q-min heuristic enabled.
func runPipelineWithOrigin(t *testing.T, cfg workload.Config, origin string) *Aggregates {
	t.Helper()
	g, err := workload.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(g.Registry(), WithZoneOrigin(origin))
	if _, err := g.Run(sinkFor(an)); err != nil {
		t.Fatal(err)
	}
	return an.Finish()
}

type analyzerSink struct{ an *Analyzer }

func sinkFor(an *Analyzer) analyzerSink { return analyzerSink{an} }

func (s analyzerSink) WritePacket(ts time.Time, data []byte) error {
	s.an.HandlePacket(ts, data)
	return nil
}

func TestMinimizedShareTracksQminDeployment(t *testing.T) {
	before := runPipelineWithOrigin(t, workload.Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2018,
		TotalQueries: 10000, Seed: 61, ResolverScale: 0.002,
	}, "nl.")
	after := runPipelineWithOrigin(t, workload.Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020,
		TotalQueries: 10000, Seed: 61, ResolverScale: 0.002,
	}, "nl.")

	g18 := before.Provider(astrie.ProviderGoogle)
	g20 := after.Provider(astrie.ProviderGoogle)
	m18 := stats.Ratio(g18.MinimizedQueries, g18.Queries)
	m20 := stats.Ratio(g20.MinimizedQueries, g20.Queries)
	if m18 > 0.1 {
		t.Errorf("2018 Google minimized share = %.3f, want ≈0", m18)
	}
	if m20 < 0.7 {
		t.Errorf("2020 Google minimized share = %.3f, want ≫0.7", m20)
	}
	// Microsoft never minimizes; the small residue is the heuristic's
	// noise floor (classic resolvers legitimately ask NS for delegation
	// names now and then), just as in the real measurement.
	ms20 := after.Provider(astrie.ProviderMicrosoft)
	if share := stats.Ratio(ms20.MinimizedQueries, ms20.Queries); share > 0.05 {
		t.Errorf("Microsoft minimized share = %.3f, want ≲0.03", share)
	}
}

func TestMinimizedHeuristicDirect(t *testing.T) {
	reg := astrie.NewRegistry(2)
	an := NewAnalyzer(reg, WithZoneOrigin("nz."))
	cases := []struct {
		name string
		typ  dnswire.Type
		want bool
	}{
		{"d5.nz.", dnswire.TypeNS, true},         // second-level probe
		{"d5000.co.nz.", dnswire.TypeNS, true},   // third-level probe
		{"www.d5.co.nz.", dnswire.TypeNS, false}, // too deep
		{"d5.nz.", dnswire.TypeA, false},         // wrong type
		{"nz.", dnswire.TypeNS, false},           // apex
		{"example.com.", dnswire.TypeNS, false},  // out of zone
	}
	for _, c := range cases {
		got := an.looksMinimized(dnswire.Question{Name: c.name, Type: c.typ, Class: dnswire.ClassIN})
		if got != c.want {
			t.Errorf("looksMinimized(%s %s) = %v, want %v", c.name, c.typ, got, c.want)
		}
	}
	// Disabled without an origin.
	plain := NewAnalyzer(reg)
	if plain.looksMinimized(dnswire.Question{Name: "d5.nz.", Type: dnswire.TypeNS}) {
		t.Error("heuristic active without origin")
	}
}
