package entrada

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/layers"
)

// BenchmarkAnalyzerUDPPacket measures the full per-packet cost of the
// analyzer's UDP path — Ethernet/IP/UDP parse, DNS decode, query/response
// join, aggregation — one packet per op, alternating queries and their
// responses so the pending table stays in steady state. The "eager"
// sub-benchmark forces the pre-existing full-Unpack decoder and is the
// baseline the ISSUE's ≥2× throughput / ≤2 allocs-per-packet acceptance
// criteria compare against (numbers recorded in BENCH_PR3.json).
func BenchmarkAnalyzerUDPPacket(b *testing.B) {
	reg := astrie.NewRegistry(2)
	server := netip.MustParseAddrPort("192.0.2.1:53")

	type pair struct{ q, r []byte }
	pairs := make([]pair, 256)
	var total int
	for i := range pairs {
		client := netip.AddrPortFrom(
			netip.AddrFrom4([4]byte{198, 51, byte(i >> 4), byte(100 + i&0xF)}),
			uint16(40000+i))
		name := fmt.Sprintf("host-%03d.example.nl.", i)
		msg := dnswire.NewQuery(uint16(i+1), name, dnswire.TypeA).WithEdns(1232, true)
		qp, err := msg.Pack()
		if err != nil {
			b.Fatal(err)
		}
		rp, err := msg.Reply().Pack()
		if err != nil {
			b.Fatal(err)
		}
		qf, err := layers.BuildUDP(client, server, qp)
		if err != nil {
			b.Fatal(err)
		}
		rf, err := layers.BuildUDP(server, client, rp)
		if err != nil {
			b.Fatal(err)
		}
		pairs[i] = pair{q: qf, r: rf}
		total += len(qf) + len(rf)
	}
	ts := time.Unix(1_600_000_000, 0)

	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"lazy", nil},
		{"eager", []Option{WithEagerDecoding()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			an := NewAnalyzer(reg, mode.opts...)
			// Warm every map to steady state before measuring.
			for _, p := range pairs {
				an.HandlePacket(ts, p.q)
				an.HandlePacket(ts, p.r)
			}
			b.ReportAllocs()
			b.SetBytes(int64(total / (2 * len(pairs))))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := &pairs[(i/2)%len(pairs)]
				if i%2 == 0 {
					an.HandlePacket(ts, p.q)
				} else {
					an.HandlePacket(ts, p.r)
				}
			}
			b.StopTimer()
			if an.MalformedPackets != 0 {
				b.Fatalf("benchmark fed %d malformed packets", an.MalformedPackets)
			}
		})
	}
}
