package entrada

import "encoding/binary"

// Flow-key extraction for sharded ingestion: internal/pipeline hashes each
// captured frame's 5-tuple to pick the shard whose Analyzer will consume
// it. The hash is direction-insensitive — a query and its response (and
// every segment of a TCP connection, in both directions) map to the same
// shard — so query/response joining and TCP reassembly remain shard-local
// and the merged shard results equal a single-Analyzer run.
//
// The extractor reads only the fixed header fields it needs (no payload
// parsing, no allocation); frames it cannot parse fall back to shard 0,
// where the Analyzer's full decoder counts them as malformed exactly like
// the sequential path does.

// fnvOffset/fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset uint64 = 0xcbf29ce484222325
	fnvPrime  uint64 = 0x100000001b3
)

// FlowKey returns a 64-bit hash of the frame's (src, dst, sport, dport,
// proto) 5-tuple, identical for both directions of the flow. ok is false
// when the frame is not parseable Ethernet/IPv4-or-IPv6/UDP-or-TCP.
func FlowKey(frame []byte) (key uint64, ok bool) {
	const ethHeaderLen = 14
	if len(frame) < ethHeaderLen {
		return 0, false
	}
	etherType := binary.BigEndian.Uint16(frame[12:14])
	b := frame[ethHeaderLen:]

	var src, dst []byte
	var proto byte
	switch etherType {
	case 0x0800: // IPv4
		if len(b) < 20 || b[0]>>4 != 4 {
			return 0, false
		}
		ihl := int(b[0]&0x0F) * 4
		if ihl < 20 || len(b) < ihl+4 {
			return 0, false
		}
		proto = b[9]
		src, dst = b[12:16], b[16:20]
		b = b[ihl:]
	case 0x86DD: // IPv6
		if len(b) < 44 || b[0]>>4 != 6 { // fixed header + L4 ports
			return 0, false
		}
		proto = b[6]
		src, dst = b[8:24], b[24:40]
		b = b[40:]
	default:
		return 0, false
	}
	if proto != 6 && proto != 17 { // TCP, UDP: the only L4s with ports
		return 0, false
	}
	srcPort := binary.BigEndian.Uint16(b[0:2])
	dstPort := binary.BigEndian.Uint16(b[2:4])

	// Hash each endpoint independently, then combine the ordered pair so
	// both directions produce the same key (sorting avoids the collision
	// structure a plain XOR would introduce).
	ha := endpointHash(src, srcPort)
	hb := endpointHash(dst, dstPort)
	if hb < ha {
		ha, hb = hb, ha
	}
	h := fnvOffset
	h = fnvMix64(h, ha)
	h = fnvMix64(h, hb)
	h = (h ^ uint64(proto)) * fnvPrime
	return h, true
}

// FlowShard maps a frame to one of shards buckets via FlowKey; frames
// without a parseable flow go to shard 0.
func FlowShard(frame []byte, shards int) int {
	if shards <= 1 {
		return 0
	}
	key, ok := FlowKey(frame)
	if !ok {
		return 0
	}
	return int(key % uint64(shards))
}

// endpointHash hashes one (address, port) endpoint with FNV-1a.
func endpointHash(addr []byte, port uint16) uint64 {
	h := fnvOffset
	for _, c := range addr {
		h = (h ^ uint64(c)) * fnvPrime
	}
	h = (h ^ uint64(port>>8)) * fnvPrime
	h = (h ^ uint64(port&0xFF)) * fnvPrime
	return h
}

// fnvMix64 folds one 64-bit value into an FNV-1a state byte by byte.
func fnvMix64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xFF)) * fnvPrime
		v >>= 8
	}
	return h
}
