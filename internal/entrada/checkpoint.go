package entrada

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/stats"
)

// Checkpoint serialization: the complete analyzer state — aggregates,
// the query→response join table, and in-flight TCP reassembly — as
// versioned, deterministic JSON. Determinism matters twice over: the
// golden test pins the encoding with a SHA so accidental format drift is
// caught, and the resume-exactness guarantee (kill -9 + restore produces
// byte-identical final aggregates) needs every serialize of the same
// state to be the same bytes. Hence all maps are flattened to sorted
// slices and nothing is stored as a float.

// CheckpointVersion is the serialization format version; Restore rejects
// anything else.
const CheckpointVersion = 1

type analyzerState struct {
	Version   int    `json:"version"`
	Origin    string `json:"origin,omitempty"`
	Focus     uint8  `json:"focus"`
	Eager     bool   `json:"eager,omitempty"`
	Malformed uint64 `json:"malformed,omitempty"`
	Unmatched uint64 `json:"unmatched,omitempty"`
	// CurTS is the last packet timestamp as UnixNano; CurTSSet
	// distinguishes "never saw a packet" from an actual zero instant.
	CurTS    int64          `json:"cur_ts,omitempty"`
	CurTSSet bool           `json:"cur_ts_set,omitempty"`
	Agg      aggState       `json:"agg"`
	Pending  []pendingState `json:"pending,omitempty"`
	Conns    []connState    `json:"conns,omitempty"`
}

type aggState struct {
	Total           uint64          `json:"total"`
	Valid           uint64          `json:"valid"`
	Providers       []providerState `json:"providers,omitempty"`
	ASes            []uint32        `json:"ases,omitempty"`
	AllResolvers    []string        `json:"all_resolvers,omitempty"`
	Focus           []focusState    `json:"focus,omitempty"`
	RTTs            []rttState      `json:"rtts,omitempty"`
	Hourly          []int64Count    `json:"hourly,omitempty"`
	RCodes          []uint16Count   `json:"rcodes,omitempty"`
	UDPResponses    uint64          `json:"udp_responses,omitempty"`
	TCPResponses    uint64          `json:"tcp_responses,omitempty"`
	DroppedSegments uint64          `json:"dropped_segments,omitempty"`
}

type providerState struct {
	ID               uint8         `json:"id"`
	Queries          uint64        `json:"queries"`
	Junk             uint64        `json:"junk,omitempty"`
	V6               uint64        `json:"v6,omitempty"`
	TCP              uint64        `json:"tcp,omitempty"`
	ByType           []uint16Count `json:"by_type,omitempty"`
	EDNSSizes        []intCount    `json:"edns_sizes,omitempty"`
	UDPResponses     uint64        `json:"udp_responses,omitempty"`
	TruncatedUDP     uint64        `json:"truncated_udp,omitempty"`
	Resolvers        []string      `json:"resolvers,omitempty"`
	PublicDNSQueries uint64        `json:"public_dns_queries,omitempty"`
	MinimizedQueries uint64        `json:"minimized_queries,omitempty"`
}

type uint16Count struct {
	K uint16 `json:"k"`
	N uint64 `json:"n"`
}

type intCount struct {
	K int    `json:"k"`
	N uint64 `json:"n"`
}

type int64Count struct {
	K int64  `json:"k"`
	N uint64 `json:"n"`
}

type focusState struct {
	Client string `json:"client"`
	Server string `json:"server"`
	V4     uint64 `json:"v4,omitempty"`
	V6     uint64 `json:"v6,omitempty"`
}

type rttState struct {
	Client  string        `json:"client"`
	Server  string        `json:"server"`
	Buckets []bucketCount `json:"buckets"`
}

type bucketCount struct {
	I int32  `json:"i"`
	N uint64 `json:"n"`
}

type pendingState struct {
	Client    string `json:"client"` // AddrPort
	Server    string `json:"server"` // AddrPort
	ID        uint16 `json:"id"`
	TCP       bool   `json:"tcp,omitempty"`
	Provider  uint8  `json:"provider"`
	QType     uint16 `json:"qtype"`
	V6        bool   `json:"v6,omitempty"`
	QTCP      bool   `json:"qtcp,omitempty"`
	EDNS      int    `json:"edns,omitempty"`
	Public    bool   `json:"public,omitempty"`
	Minimized bool   `json:"minimized,omitempty"`
	Addr      string `json:"addr"` // query source address
}

type connState struct {
	Client    string      `json:"client"` // AddrPort
	Server    string      `json:"server"` // AddrPort
	SynAckAt  int64       `json:"syn_ack_at,omitempty"`
	SynAckSet bool        `json:"syn_ack_set,omitempty"`
	RTTStored bool        `json:"rtt_stored,omitempty"`
	C2S       streamState `json:"c2s"`
	S2C       streamState `json:"s2c"`
}

type streamState struct {
	Expected uint32     `json:"expected,omitempty"`
	Synced   bool       `json:"synced,omitempty"`
	Buf      []byte     `json:"buf,omitempty"` // base64 via encoding/json
	Pending  []segState `json:"pending,omitempty"`
}

type segState struct {
	Seq  uint32 `json:"seq"`
	Data []byte `json:"data"`
}

func sortedAddrs(set map[netip.Addr]struct{}) []string {
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a.String())
	}
	sort.Strings(out)
	return out
}

func histState(h *stats.Histogram) []intCount {
	vals := h.Values() // already sorted ascending
	out := make([]intCount, 0, len(vals))
	for _, v := range vals {
		out = append(out, intCount{K: v, N: h.Count(v)})
	}
	return out
}

func streamToState(s *tcpStream) streamState {
	st := streamState{Expected: s.expected, Synced: s.synced}
	if len(s.buf) > 0 {
		st.Buf = append([]byte(nil), s.buf...)
	}
	if len(s.pending) > 0 {
		st.Pending = make([]segState, 0, len(s.pending))
		for seq, b := range s.pending {
			st.Pending = append(st.Pending, segState{Seq: seq, Data: append([]byte(nil), b...)})
		}
		sort.Slice(st.Pending, func(i, j int) bool { return st.Pending[i].Seq < st.Pending[j].Seq })
	}
	return st
}

// MarshalState serializes the analyzer's complete in-flight state —
// aggregates, pending query joins, TCP reassembly — as deterministic
// versioned JSON. The analyzer remains usable; nothing is flushed or
// finalized. The same state always encodes to the same bytes.
func (a *Analyzer) MarshalState() ([]byte, error) {
	st := analyzerState{
		Version:   CheckpointVersion,
		Origin:    a.origin,
		Focus:     uint8(a.focus),
		Eager:     a.eager,
		Malformed: a.MalformedPackets,
		Unmatched: a.UnmatchedResp,
	}
	if !a.curTS.IsZero() {
		st.CurTS = a.curTS.UnixNano()
		st.CurTSSet = true
	}

	ag := a.agg
	st.Agg = aggState{
		Total:           ag.Total,
		Valid:           ag.Valid,
		AllResolvers:    sortedAddrs(ag.AllResolvers),
		UDPResponses:    ag.UDPResponses,
		TCPResponses:    ag.TCPResponses,
		DroppedSegments: ag.DroppedSegments,
	}
	for p, pa := range ag.ByProvider {
		ps := providerState{
			ID:               uint8(p),
			Queries:          pa.Queries,
			Junk:             pa.Junk,
			V6:               pa.V6,
			TCP:              pa.TCP,
			EDNSSizes:        histState(pa.EDNSSizes),
			UDPResponses:     pa.UDPResponses,
			TruncatedUDP:     pa.TruncatedUDP,
			Resolvers:        sortedAddrs(pa.Resolvers),
			PublicDNSQueries: pa.PublicDNSQueries,
			MinimizedQueries: pa.MinimizedQueries,
		}
		for t, n := range pa.ByType {
			ps.ByType = append(ps.ByType, uint16Count{K: uint16(t), N: n})
		}
		sort.Slice(ps.ByType, func(i, j int) bool { return ps.ByType[i].K < ps.ByType[j].K })
		st.Agg.Providers = append(st.Agg.Providers, ps)
	}
	sort.Slice(st.Agg.Providers, func(i, j int) bool { return st.Agg.Providers[i].ID < st.Agg.Providers[j].ID })

	for asn := range ag.ASes {
		st.Agg.ASes = append(st.Agg.ASes, asn)
	}
	sort.Slice(st.Agg.ASes, func(i, j int) bool { return st.Agg.ASes[i] < st.Agg.ASes[j] })

	for k, fc := range ag.FocusQueries {
		st.Agg.Focus = append(st.Agg.Focus, focusState{
			Client: k.Client.String(), Server: k.Server.String(), V4: fc.V4, V6: fc.V6,
		})
	}
	sort.Slice(st.Agg.Focus, func(i, j int) bool {
		a, b := st.Agg.Focus[i], st.Agg.Focus[j]
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		return a.Server < b.Server
	})

	for k, r := range ag.RTTs {
		rs := rttState{Client: k.Client.String(), Server: k.Server.String()}
		r.EachBucket(func(i int32, n uint64) {
			rs.Buckets = append(rs.Buckets, bucketCount{I: i, N: n})
		})
		st.Agg.RTTs = append(st.Agg.RTTs, rs)
	}
	sort.Slice(st.Agg.RTTs, func(i, j int) bool {
		a, b := st.Agg.RTTs[i], st.Agg.RTTs[j]
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		return a.Server < b.Server
	})

	for h, n := range ag.Hourly {
		st.Agg.Hourly = append(st.Agg.Hourly, int64Count{K: h, N: n})
	}
	sort.Slice(st.Agg.Hourly, func(i, j int) bool { return st.Agg.Hourly[i].K < st.Agg.Hourly[j].K })

	for rc, n := range ag.RCodes {
		st.Agg.RCodes = append(st.Agg.RCodes, uint16Count{K: uint16(rc), N: n})
	}
	sort.Slice(st.Agg.RCodes, func(i, j int) bool { return st.Agg.RCodes[i].K < st.Agg.RCodes[j].K })

	for k, pq := range a.pending {
		st.Pending = append(st.Pending, pendingState{
			Client:    k.client.String(),
			Server:    k.server.String(),
			ID:        k.id,
			TCP:       k.tcp,
			Provider:  uint8(pq.provider),
			QType:     uint16(pq.qtype),
			V6:        pq.v6,
			QTCP:      pq.tcp,
			EDNS:      pq.edns,
			Public:    pq.public,
			Minimized: pq.minimized,
			Addr:      pq.client.String(),
		})
	}
	sort.Slice(st.Pending, func(i, j int) bool {
		a, b := st.Pending[i], st.Pending[j]
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		if a.Server != b.Server {
			return a.Server < b.Server
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return !a.TCP && b.TCP
	})

	for k, c := range a.conns {
		cs := connState{
			Client:    k.client.String(),
			Server:    k.server.String(),
			RTTStored: c.rttStored,
			C2S:       streamToState(&c.c2s),
			S2C:       streamToState(&c.s2c),
		}
		if !c.synAckAt.IsZero() {
			cs.SynAckAt = c.synAckAt.UnixNano()
			cs.SynAckSet = true
		}
		st.Conns = append(st.Conns, cs)
	}
	sort.Slice(st.Conns, func(i, j int) bool {
		a, b := st.Conns[i], st.Conns[j]
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		return a.Server < b.Server
	})

	return json.Marshal(st)
}

func parseAddr(s string) (netip.Addr, error) {
	a, err := netip.ParseAddr(s)
	if err != nil {
		return netip.Addr{}, fmt.Errorf("entrada: checkpoint address %q: %w", s, err)
	}
	return a, nil
}

func parseAddrPort(s string) (netip.AddrPort, error) {
	ap, err := netip.ParseAddrPort(s)
	if err != nil {
		return netip.AddrPort{}, fmt.Errorf("entrada: checkpoint addrport %q: %w", s, err)
	}
	return ap, nil
}

func stateToStream(s *tcpStream, st streamState, drops *uint64, pool *segmentPool) {
	s.expected = st.Expected
	s.synced = st.Synced
	s.drops = drops
	s.pool = pool
	if len(st.Buf) > 0 {
		s.buf = append([]byte(nil), st.Buf...)
	}
	if len(st.Pending) > 0 {
		s.pending = make(map[uint32][]byte, len(st.Pending))
		for _, seg := range st.Pending {
			s.pending[seg.Seq] = append([]byte(nil), seg.Data...)
		}
	}
}

// RestoreAnalyzer rebuilds an analyzer from MarshalState output. The
// registry must be configured identically to the checkpointing run (it
// is not part of the state); feeding the restored analyzer the packets
// after the checkpoint yields aggregates byte-identical to an
// uninterrupted run.
func RestoreAnalyzer(reg *astrie.Registry, data []byte) (*Analyzer, error) {
	var st analyzerState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("entrada: decoding checkpoint: %w", err)
	}
	if st.Version != CheckpointVersion {
		return nil, fmt.Errorf("entrada: checkpoint version %d, want %d", st.Version, CheckpointVersion)
	}

	opts := []Option{WithFocusProvider(astrie.Provider(st.Focus))}
	if st.Origin != "" {
		opts = append(opts, WithZoneOrigin(st.Origin))
	}
	if st.Eager {
		opts = append(opts, WithEagerDecoding())
	}
	a := NewAnalyzer(reg, opts...)
	a.MalformedPackets = st.Malformed
	a.UnmatchedResp = st.Unmatched
	if st.CurTSSet {
		a.curTS = time.Unix(0, st.CurTS).UTC()
	}

	ag := a.agg
	ag.Total = st.Agg.Total
	ag.Valid = st.Agg.Valid
	ag.UDPResponses = st.Agg.UDPResponses
	ag.TCPResponses = st.Agg.TCPResponses
	ag.DroppedSegments = st.Agg.DroppedSegments
	for _, ps := range st.Agg.Providers {
		pa := ag.Provider(astrie.Provider(ps.ID))
		pa.Queries = ps.Queries
		pa.Junk = ps.Junk
		pa.V6 = ps.V6
		pa.TCP = ps.TCP
		pa.UDPResponses = ps.UDPResponses
		pa.TruncatedUDP = ps.TruncatedUDP
		pa.PublicDNSQueries = ps.PublicDNSQueries
		pa.MinimizedQueries = ps.MinimizedQueries
		for _, tc := range ps.ByType {
			pa.ByType[dnswire.Type(tc.K)] = tc.N
		}
		for _, ic := range ps.EDNSSizes {
			pa.EDNSSizes.AddN(ic.K, ic.N)
		}
		for _, s := range ps.Resolvers {
			addr, err := parseAddr(s)
			if err != nil {
				return nil, err
			}
			pa.Resolvers[addr] = struct{}{}
		}
	}
	for _, asn := range st.Agg.ASes {
		ag.ASes[asn] = struct{}{}
	}
	for _, s := range st.Agg.AllResolvers {
		addr, err := parseAddr(s)
		if err != nil {
			return nil, err
		}
		ag.AllResolvers[addr] = struct{}{}
	}
	for _, fs := range st.Agg.Focus {
		client, err := parseAddr(fs.Client)
		if err != nil {
			return nil, err
		}
		server, err := parseAddr(fs.Server)
		if err != nil {
			return nil, err
		}
		ag.FocusQueries[rttKey{Client: client, Server: server}] = &FamilyCount{V4: fs.V4, V6: fs.V6}
	}
	for _, rs := range st.Agg.RTTs {
		client, err := parseAddr(rs.Client)
		if err != nil {
			return nil, err
		}
		server, err := parseAddr(rs.Server)
		if err != nil {
			return nil, err
		}
		r := &stats.DurationReservoir{}
		for _, b := range rs.Buckets {
			r.ObserveBucketN(b.I, b.N)
		}
		ag.RTTs[rttKey{Client: client, Server: server}] = r
	}
	for _, hc := range st.Agg.Hourly {
		ag.Hourly[hc.K] = hc.N
	}
	for _, rc := range st.Agg.RCodes {
		ag.RCodes[dnswire.RCode(rc.K)] = rc.N
	}

	for _, ps := range st.Pending {
		client, err := parseAddrPort(ps.Client)
		if err != nil {
			return nil, err
		}
		server, err := parseAddrPort(ps.Server)
		if err != nil {
			return nil, err
		}
		addr, err := parseAddr(ps.Addr)
		if err != nil {
			return nil, err
		}
		a.pending[pendingKey{client: client, server: server, id: ps.ID, tcp: ps.TCP}] = pendingQuery{
			provider:  astrie.Provider(ps.Provider),
			qtype:     dnswire.Type(ps.QType),
			v6:        ps.V6,
			tcp:       ps.QTCP,
			edns:      ps.EDNS,
			public:    ps.Public,
			minimized: ps.Minimized,
			client:    addr,
		}
	}

	for _, cs := range st.Conns {
		client, err := parseAddrPort(cs.Client)
		if err != nil {
			return nil, err
		}
		server, err := parseAddrPort(cs.Server)
		if err != nil {
			return nil, err
		}
		conn := &tcpConn{rttStored: cs.RTTStored}
		if cs.SynAckSet {
			conn.synAckAt = time.Unix(0, cs.SynAckAt).UTC()
		}
		stateToStream(&conn.c2s, cs.C2S, &ag.DroppedSegments, &a.segPool)
		stateToStream(&conn.s2c, cs.S2C, &ag.DroppedSegments, &a.segPool)
		a.conns[connKey{client: client, server: server}] = conn
	}
	return a, nil
}

// QueryCounts is a cheap numeric snapshot of cumulative query totals,
// taken non-destructively mid-run; tumbling windows are the deltas of
// two snapshots at consecutive window boundaries.
type QueryCounts struct {
	// Total counts finalized queries (Aggregates.Total).
	Total uint64
	// ByProvider counts finalized queries per provider.
	ByProvider map[astrie.Provider]uint64
}

// QueryCounts snapshots the analyzer's cumulative counts without
// flushing or otherwise disturbing in-flight state.
func (a *Analyzer) QueryCounts() QueryCounts {
	qc := QueryCounts{
		Total:      a.agg.Total,
		ByProvider: make(map[astrie.Provider]uint64, len(a.agg.ByProvider)),
	}
	for p, pa := range a.agg.ByProvider {
		qc.ByProvider[p] = pa.Queries
	}
	return qc
}
