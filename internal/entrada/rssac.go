package entrada

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"dnscentral/internal/dnswire"
)

// RSSAC002 is the aggregate statistics format root-server operators
// publish (RSSAC002: "RSSAC Advisory on Measurements of the Root Server
// System"), which the paper uses in §3 to put B-Root's junk levels in
// context of the other root letters. The reproduction computes the three
// measurements relevant to the paper from the same Aggregates the rest of
// the analysis uses.
type RSSAC002 struct {
	Label string `json:"label"`

	// Traffic volume (RSSAC002 "traffic-volume").
	UDPQueries   uint64 `json:"dns-udp-queries"`
	TCPQueries   uint64 `json:"dns-tcp-queries"`
	UDPResponses uint64 `json:"dns-udp-responses"`
	TCPResponses uint64 `json:"dns-tcp-responses"`

	// RCode distribution (RSSAC002 "rcode-volume").
	RCodeVolume map[string]uint64 `json:"rcode-volume"`

	// Unique sources (RSSAC002 "unique-sources"): distinct IPv4
	// addresses, distinct IPv6 addresses, and distinct IPv6 /64s.
	UniqueIPv4    uint64 `json:"num-sources-ipv4"`
	UniqueIPv6    uint64 `json:"num-sources-ipv6"`
	UniqueIPv6Agg uint64 `json:"num-sources-ipv6-aggregate"`
}

// RSSAC002Report derives the advisory's measurements from the aggregates.
func (ag *Aggregates) RSSAC002Report(label string) *RSSAC002 {
	r := &RSSAC002{Label: label, RCodeVolume: make(map[string]uint64)}
	for rc, n := range ag.RCodes {
		r.RCodeVolume[rc.String()] = n
	}
	var tcp uint64
	for _, pa := range ag.ByProvider {
		tcp += pa.TCP
	}
	r.TCPQueries = tcp
	r.UDPQueries = ag.Total - tcp
	r.UDPResponses = ag.UDPResponses
	r.TCPResponses = ag.TCPResponses

	slash64 := make(map[netip.Prefix]struct{})
	for a := range ag.AllResolvers {
		if a.Is4() || a.Is4In6() {
			r.UniqueIPv4++
			continue
		}
		r.UniqueIPv6++
		p, err := a.Prefix(64)
		if err == nil {
			slash64[p] = struct{}{}
		}
	}
	r.UniqueIPv6Agg = uint64(len(slash64))
	return r
}

// ValidShare computes the NOERROR fraction from the rcode volumes (the
// paper's §3 method for the 11 root letters publishing RSSAC002 data).
func (r *RSSAC002) ValidShare() float64 {
	var total, valid uint64
	for name, n := range r.RCodeVolume {
		total += n
		if name == dnswire.RCodeNoError.String() {
			valid += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(valid) / float64(total)
}

// String renders the report in the advisory's YAML-ish key:value style.
func (r *RSSAC002) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "service: %s\n", r.Label)
	fmt.Fprintf(&sb, "traffic-volume:\n  dns-udp-queries: %d\n  dns-tcp-queries: %d\n  dns-udp-responses: %d\n  dns-tcp-responses: %d\n",
		r.UDPQueries, r.TCPQueries, r.UDPResponses, r.TCPResponses)
	sb.WriteString("rcode-volume:\n")
	names := make([]string, 0, len(r.RCodeVolume))
	for name := range r.RCodeVolume {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "  %s: %d\n", name, r.RCodeVolume[name])
	}
	fmt.Fprintf(&sb, "unique-sources:\n  num-sources-ipv4: %d\n  num-sources-ipv6: %d\n  num-sources-ipv6-aggregate: %d\n",
		r.UniqueIPv4, r.UniqueIPv6, r.UniqueIPv6Agg)
	return sb.String()
}
