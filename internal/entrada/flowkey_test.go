package entrada

import (
	"math/rand"
	"net/netip"
	"testing"

	"dnscentral/internal/layers"
)

// frames builds a (forward, reverse) UDP or TCP frame pair for one flow.
func flowFramePair(t *testing.T, src, dst netip.AddrPort, tcp bool) ([]byte, []byte) {
	t.Helper()
	build := func(a, b netip.AddrPort) []byte {
		var frame []byte
		var err error
		if tcp {
			frame, err = layers.BuildTCP(a, b, layers.TCPMeta{Seq: 1, Flags: layers.TCPFlagACK}, []byte{0, 1, 2})
		} else {
			frame, err = layers.BuildUDP(a, b, []byte{0, 1, 2})
		}
		if err != nil {
			t.Fatal(err)
		}
		return frame
	}
	return build(src, dst), build(dst, src)
}

func TestFlowKeySymmetric(t *testing.T) {
	cases := []struct {
		src, dst string
		tcp      bool
	}{
		{"100.0.0.7:40000", "198.51.10.1:53", false},
		{"100.0.0.7:40000", "198.51.10.1:53", true},
		{"[2001:db8::7]:40000", "[2001:db8:1::1]:53", false},
		{"[2001:db8::7]:40000", "[2001:db8:1::1]:53", true},
	}
	for _, tc := range cases {
		fwd, rev := flowFramePair(t, netip.MustParseAddrPort(tc.src), netip.MustParseAddrPort(tc.dst), tc.tcp)
		kf, ok := FlowKey(fwd)
		if !ok {
			t.Fatalf("%s: forward frame not parseable", tc.src)
		}
		kr, ok := FlowKey(rev)
		if !ok {
			t.Fatalf("%s: reverse frame not parseable", tc.src)
		}
		if kf != kr {
			t.Errorf("%s>%s tcp=%v: forward key %x != reverse key %x", tc.src, tc.dst, tc.tcp, kf, kr)
		}
	}
}

func TestFlowKeyDistinguishesFlowsAndProtocols(t *testing.T) {
	server := netip.MustParseAddrPort("198.51.10.1:53")
	a, _ := flowFramePair(t, netip.MustParseAddrPort("100.0.0.7:40000"), server, false)
	b, _ := flowFramePair(t, netip.MustParseAddrPort("100.0.0.7:40001"), server, false)
	c, _ := flowFramePair(t, netip.MustParseAddrPort("100.0.0.7:40000"), server, true)
	ka, _ := FlowKey(a)
	kb, _ := FlowKey(b)
	kc, _ := FlowKey(c)
	if ka == kb {
		t.Error("different ports produced the same key")
	}
	if ka == kc {
		t.Error("UDP and TCP of the same tuple produced the same key")
	}
}

func TestFlowKeyRejectsGarbage(t *testing.T) {
	for _, frame := range [][]byte{
		nil,
		make([]byte, 10),                     // short ethernet
		append(make([]byte, 12), 0x12, 0x34), // unknown ethertype
		func() []byte { // IPv4 ethertype but truncated IP header
			f := make([]byte, 14+10)
			f[12], f[13] = 0x08, 0x00
			return f
		}(),
	} {
		if _, ok := FlowKey(frame); ok {
			t.Errorf("FlowKey accepted garbage frame of %d bytes", len(frame))
		}
		if s := FlowShard(frame, 8); s != 0 {
			t.Errorf("garbage frame sharded to %d, want 0", s)
		}
	}
}

// TestFlowShardSpreads checks the shard function actually distributes
// distinct flows instead of clumping them.
func TestFlowShardSpreads(t *testing.T) {
	const shards = 8
	counts := make([]int, shards)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{100, byte(r.Intn(256)), byte(r.Intn(256)), byte(1 + r.Intn(250))}), uint16(1024+r.Intn(60000)))
		dst := netip.MustParseAddrPort("198.51.10.1:53")
		frame, err := layers.BuildUDP(src, dst, []byte{1})
		if err != nil {
			t.Fatal(err)
		}
		counts[FlowShard(frame, shards)]++
	}
	for s, n := range counts {
		if n < 2000/shards/4 {
			t.Errorf("shard %d starved: %d of 2000 flows (counts %v)", s, n, counts)
		}
	}
}
