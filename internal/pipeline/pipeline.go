// Package pipeline is the parallel pcap ingestion engine: the
// multi-core counterpart of a single entrada.Analyzer, playing the role
// ENTRADA's horizontally-scaled loaders play in the paper's warehouse.
//
// A reader goroutine pulls packets off each capture, hashes every frame's
// 5-tuple flow (direction-insensitively, so a query and its response — and
// all segments of a TCP connection — land on the same shard), and fans the
// frames out over bounded queues to per-shard entrada.Analyzer workers;
// the shard aggregates are merged at the end. Because joining and TCP
// reassembly are flow-local, the merged result is identical to a
// sequential single-Analyzer pass — entrada's merge property tests pin
// that invariant.
//
// Multiple captures ingest concurrently under one worker budget: with F
// files and W workers, min(F, W) files are in flight at once and the W
// shard workers are spread across them. Each file gets its own analyzers
// (exactly like the sequential per-file merge cmd/entrada always did), so
// cross-file interleaving cannot change the result.
package pipeline

import (
	"context"
	"errors"
	"io"
	"runtime"
	"sync"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/entrada"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/telemetry"
)

// Options configures a Run (or a streaming Engine).
type Options struct {
	// Workers is the total shard-worker budget across all inputs
	// (default runtime.GOMAXPROCS(0)). Workers == 1 runs the exact
	// sequential path: one analyzer per file, no goroutines, no copies.
	Workers int
	// Registry classifies source addresses; required.
	Registry *astrie.Registry
	// AnalyzerOpts are applied to every shard analyzer.
	AnalyzerOpts []entrada.Option
	// QueueDepth bounds each worker's queue, in batches (default 32).
	// Together with BatchBytes it caps buffered memory at roughly
	// Workers × QueueDepth × BatchBytes — no unbounded buffering no
	// matter how large the capture is.
	QueueDepth int
	// BatchSize is the maximum packets per batch (default 256).
	BatchSize int
	// BatchBytes is the maximum frame bytes per batch (default 64 KiB).
	BatchBytes int
	// Progress, when set, receives a Stats snapshot every
	// ProgressInterval (default 1s) while ingestion runs.
	Progress         func(Stats)
	ProgressInterval time.Duration
	// Telemetry, when set, publishes live ingestion metrics (total and
	// per-shard packet counters, malformed/unmatched/dropped counts,
	// queue-depth gauges) on the registry. Nil — the default — keeps the
	// hot path free of telemetry work.
	Telemetry *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 32
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.BatchBytes <= 0 {
		o.BatchBytes = 64 << 10
	}
	if o.ProgressInterval <= 0 {
		o.ProgressInterval = time.Second
	}
	return o
}

// Run ingests every reader (one pcap/pcapng capture each, as returned by
// pcapio.Open) through the flow-sharded worker pool and returns the merged
// aggregates plus the final ingestion stats. Stats.PerFile is indexed like
// readers. Run fails fast on the first read error or context cancellation.
func Run(ctx context.Context, readers []pcapio.PacketReader, opts Options) (*entrada.Aggregates, Stats, error) {
	opts = opts.withDefaults()
	if opts.Registry == nil {
		return nil, Stats{}, errors.New("pipeline: Options.Registry is required")
	}
	if len(readers) == 0 {
		return nil, Stats{}, errors.New("pipeline: no inputs")
	}
	cnt := newCounters(opts.Workers, opts.Telemetry)
	perFile := make([]fileCounter, len(readers))

	stopProgress := startProgress(cnt, opts, len(readers))
	defer stopProgress()

	var agg *entrada.Aggregates
	var err error
	if opts.Workers == 1 {
		agg, err = runSequential(ctx, readers, opts, cnt, perFile)
	} else {
		agg, err = runParallel(ctx, readers, opts, cnt, perFile)
	}
	stopProgress()

	st := cnt.snapshot(opts.Workers, len(readers))
	st.PerFile = make([]FileStats, len(readers))
	for i := range perFile {
		st.PerFile[i] = FileStats{
			Packets:        perFile[i].packets.Load(),
			Malformed:      perFile[i].malformed.Load(),
			TruncatedTails: perFile[i].truncated.Load(),
		}
	}
	if opts.Progress != nil {
		// One final snapshot — with PerFile populated — so the caller's
		// last observed tick is never stale relative to the returned Stats.
		opts.Progress(st)
	}
	return agg, st, err
}

// runSequential preserves the single-threaded behavior exactly: one
// analyzer per file, packets handled inline, per-file merge at the end.
//
// The periodic n%1024 cancellation check is only for finite batch files,
// whose reads never block; a follow-mode source carries its own context
// and returns from a blocked ReadPacket the moment it is cancelled.
func runSequential(ctx context.Context, readers []pcapio.PacketReader, opts Options, cnt *counters, perFile []fileCounter) (*entrada.Aggregates, error) {
	var agg *entrada.Aggregates
	for i, r := range readers {
		an := entrada.NewAnalyzer(opts.Registry, opts.AnalyzerOpts...)
		// account folds the analyzer's tallies into the per-file and
		// global counters. It must run on every exit path — the old code
		// only ran it after a clean EOF, so a mid-file read error lost the
		// failing file's malformed count from Stats.PerFile.
		account := func() {
			perFile[i].malformed.Store(an.MalformedPackets)
			cnt.malformed.Add(an.MalformedPackets)
			cnt.unmatched.Add(an.UnmatchedResp)
			cnt.dropped.Add(an.DroppedSegments())
			cnt.tmMalformed.Add(an.MalformedPackets)
			cnt.tmUnmatched.Add(an.UnmatchedResp)
			cnt.tmDropped.Add(an.DroppedSegments())
		}
		for {
			pkt, rerr := r.ReadPacket()
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				if errors.Is(rerr, pcapio.ErrTruncatedRecord) {
					// Torn final record: the normal tail of a snapshot of
					// a live capture. Count it as this file's malformed
					// tail and keep every complete record — aborting the
					// whole multi-file run here was the old bug.
					perFile[i].truncated.Add(1)
					cnt.truncated.Add(1)
					cnt.tmTruncated.Add(1)
					break
				}
				account()
				return agg, rerr
			}
			perFile[i].packets.Add(1)
			n := cnt.read.Add(1)
			an.HandlePacket(pkt.Timestamp, pkt.Data)
			cnt.dispatched.Add(1)
			cnt.tmPackets.Add(1)
			if n%1024 == 0 && ctx.Err() != nil {
				account()
				return agg, ctx.Err()
			}
		}
		shard := an.Finish()
		account()
		if agg == nil {
			agg = shard
		} else {
			agg.Merge(shard)
		}
	}
	return agg, ctx.Err()
}

// runParallel spreads the worker budget over min(F, W) concurrently
// ingesting files, each with its own flow-sharded engine.
func runParallel(parent context.Context, readers []pcapio.PacketReader, opts Options, cnt *counters, perFile []fileCounter) (*entrada.Aggregates, error) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	numFiles, workers := len(readers), opts.Workers
	pilots := numFiles
	if workers < pilots {
		pilots = workers
	}

	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for i := range readers {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	pilotAggs := make([]*entrada.Aggregates, pilots)
	pilotErrs := make([]error, pilots)
	var wg sync.WaitGroup
	slot := 0
	for j := 0; j < pilots; j++ {
		shards := workers / pilots
		if j < workers%pilots {
			shards++
		}
		offset := slot
		slot += shards
		wg.Add(1)
		go func(j, shards, offset int) {
			defer wg.Done()
			for idx := range jobs {
				eng := newEngine(ctx, shards, offset, cnt, opts)
				rerr := drainReader(readers[idx], eng, &perFile[idx], cnt)
				shardAgg, cerr := eng.Close()
				perFile[idx].malformed.Store(eng.Malformed())
				if shardAgg != nil {
					if pilotAggs[j] == nil {
						pilotAggs[j] = shardAgg
					} else {
						pilotAggs[j].Merge(shardAgg)
					}
				}
				if rerr == nil {
					rerr = cerr
				}
				if rerr != nil {
					pilotErrs[j] = rerr
					cancel() // fail fast: stop the other pilots too
					return
				}
			}
		}(j, shards, offset)
	}
	wg.Wait()

	var agg *entrada.Aggregates
	var err error
	for j := 0; j < pilots; j++ {
		if pilotAggs[j] != nil {
			if agg == nil {
				agg = pilotAggs[j]
			} else {
				agg.Merge(pilotAggs[j])
			}
		}
		if err == nil && pilotErrs[j] != nil {
			err = pilotErrs[j]
		}
	}
	if err == nil {
		// The internal cancel fires only alongside a recorded pilot error;
		// caller-initiated cancellation surfaces through the parent.
		err = parent.Err()
	}
	return agg, err
}

// drainReader feeds one capture into an engine, counting frames per file.
// A torn final record ends the file like a clean EOF, counted as a
// malformed tail.
func drainReader(r pcapio.PacketReader, eng *Engine, fc *fileCounter, cnt *counters) error {
	for {
		pkt, err := r.ReadPacket()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if errors.Is(err, pcapio.ErrTruncatedRecord) {
				fc.truncated.Add(1)
				cnt.truncated.Add(1)
				cnt.tmTruncated.Add(1)
				return nil
			}
			return err
		}
		fc.packets.Add(1)
		if err := eng.WritePacket(pkt.Timestamp, pkt.Data); err != nil {
			return err
		}
	}
}

// startProgress launches the snapshot ticker; the returned stop function
// is idempotent.
func startProgress(cnt *counters, opts Options, files int) func() {
	if opts.Progress == nil {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(opts.ProgressInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				opts.Progress(cnt.snapshot(opts.Workers, files))
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
