// Streaming mode: the continuous-operation counterpart of Run. Instead
// of one end-of-run merge over finite files, RunStream tails a single
// growing capture, snapshots the analyzer's cumulative query counts at
// tumbling window boundaries (windows are deltas of two snapshots — the
// analyzer itself is never flushed mid-run, which is what keeps the
// final aggregates identical to a batch pass), publishes every closed
// window through telemetry as the paper's centralization time series,
// and checkpoints full analyzer state + read offset so a killed run
// resumes with byte-identical final aggregates.
package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"dnscentral/internal/entrada"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/stats"
)

// Window telemetry families published per closed window.
const (
	// MetricWindowsClosed counts closed windows.
	MetricWindowsClosed = "entrada_windows_closed_total"
	// MetricWindowQueries gauges the last closed window's query count.
	MetricWindowQueries = "entrada_window_queries"
	// MetricWindowStart gauges the last closed window's start (Unix sec).
	MetricWindowStart = "entrada_window_start_seconds"
	// MetricWindowQPS gauges the last closed window's queries/second.
	MetricWindowQPS = "entrada_window_qps"
	// MetricWindowHHI gauges the window's provider-share HHI.
	MetricWindowHHI = "entrada_window_hhi"
	// MetricWindowTopShare gauges the window's largest provider share.
	MetricWindowTopShare = "entrada_window_top_share"
	// MetricWindowProviderShare is the per-provider share family; series
	// carry a {provider="Name"} label.
	MetricWindowProviderShare = "entrada_window_provider_share"
)

// Window is one closed tumbling window of the capture-time query series.
type Window struct {
	// Index is Start.UnixNano() / Duration — consecutive windows of one
	// run have consecutive indices unless the capture had a quiet gap.
	Index int64
	// Start is the window's inclusive start in capture time.
	Start time.Time
	// Duration is the configured window width.
	Duration time.Duration
	// Queries counts queries finalized during the window.
	Queries uint64
	// Providers holds per-provider finalized-query counts.
	Providers map[string]uint64
	// Shares, HHI and Top1 are the window's centralization measures
	// (computed from Providers, the paper's §5 metrics per window).
	Shares []stats.Share
	HHI    float64
	Top1   float64
}

// StreamOptions configures RunStream. The embedded Options supply the
// registry, analyzer options, telemetry and progress reporting; Workers,
// QueueDepth, BatchSize and BatchBytes are ignored — a followed capture
// is writer-rate-limited, so streaming runs one sequential analyzer
// (which is also what makes checkpoint state well-defined at every
// packet boundary).
type StreamOptions struct {
	Options

	// Window is the tumbling-window width in capture time (default 1m).
	Window time.Duration
	// OnWindow, when set, receives every closed window (including the
	// final partial one at shutdown).
	OnWindow func(Window)
	// CheckpointDir, when non-empty, enables checkpointing: state is
	// written atomically (temp file + rename) to CheckpointDir/entrada.ckpt
	// every CheckpointEvery closed windows and once at shutdown.
	CheckpointDir string
	// CheckpointEvery is the checkpoint cadence in windows (default 4).
	CheckpointEvery int
	// Resume loads CheckpointDir/entrada.ckpt if present and continues
	// from its offset; a missing checkpoint file starts fresh.
	Resume bool
	// Poll is the follow poll interval (default pcapio.DefaultFollowPoll).
	Poll time.Duration
	// IdleExit ends the stream once the capture stops growing for this
	// long (0 = follow until cancelled). Used by tests and CI for
	// deterministic termination.
	IdleExit time.Duration
}

// StreamResult summarizes a finished stream.
type StreamResult struct {
	// Windows holds every closed window in order, including the final
	// partial one.
	Windows []Window
	// WindowsClosed counts closed windows across the whole logical run —
	// it continues from the checkpoint on resume.
	WindowsClosed uint64
	// Offset is the final committed read offset in the followed file.
	Offset int64
	// TruncatedTails and Rotations mirror the follow reader's counts.
	TruncatedTails uint64
	Rotations      uint64
	// Resumed reports whether a checkpoint was loaded.
	Resumed bool
	// Stats is the final progress snapshot.
	Stats Stats
}

// checkpointName is the state file RunStream maintains in CheckpointDir.
const checkpointName = "entrada.ckpt"

// streamCheckpoint is the envelope around the analyzer state: enough to
// re-open the input at the right offset and keep window accounting
// continuous across restarts.
type streamCheckpoint struct {
	Version       int             `json:"version"`
	Input         string          `json:"input"`
	Offset        int64           `json:"offset"`
	WindowNanos   int64           `json:"window_nanos"`
	WindowsClosed uint64          `json:"windows_closed"`
	Analyzer      json.RawMessage `json:"analyzer"`
}

// writeCheckpoint persists atomically: a crash mid-write leaves the
// previous checkpoint intact, never a torn one.
func writeCheckpoint(dir string, ck streamCheckpoint) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("pipeline: encoding checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(dir, checkpointName+".tmp*")
	if err != nil {
		return fmt.Errorf("pipeline: checkpoint temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("pipeline: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("pipeline: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("pipeline: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, checkpointName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("pipeline: publishing checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint reads the checkpoint if one exists; ok=false means a
// fresh start.
func loadCheckpoint(dir string) (streamCheckpoint, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, checkpointName))
	if errors.Is(err, os.ErrNotExist) {
		return streamCheckpoint{}, false, nil
	}
	if err != nil {
		return streamCheckpoint{}, false, fmt.Errorf("pipeline: reading checkpoint: %w", err)
	}
	var ck streamCheckpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return streamCheckpoint{}, false, fmt.Errorf("pipeline: decoding checkpoint: %w", err)
	}
	if ck.Version != entrada.CheckpointVersion {
		return streamCheckpoint{}, false, fmt.Errorf("pipeline: checkpoint version %d, want %d", ck.Version, entrada.CheckpointVersion)
	}
	return ck, true, nil
}

// windowTracker turns cumulative analyzer counts into tumbling windows.
// Windows are keyed by capture time (pkt.Timestamp / width, the same
// bucketing Aggregates.Hourly uses at hour scale), so they are stable
// across restarts and replay speed. A timestamp regression stays in the
// current window — capture time at one server is near-monotonic, and
// never going backwards keeps window emission monotone.
type windowTracker struct {
	width    time.Duration
	an       *entrada.Analyzer
	baseline entrada.QueryCounts
	cur      int64
	open     bool
}

// observe notes a packet timestamp before it is handled, returning the
// windows (usually zero or one) that close because this packet starts a
// later one.
func (w *windowTracker) observe(ts time.Time) []Window {
	idx := ts.UnixNano() / int64(w.width)
	if !w.open {
		w.cur, w.open = idx, true
		return nil
	}
	if idx <= w.cur {
		return nil
	}
	win := w.close()
	w.cur = idx
	return []Window{win}
}

// close snapshots the delta since the last boundary as one Window and
// advances the baseline. Non-destructive: only numeric snapshots, the
// analyzer's join and reassembly state is untouched.
func (w *windowTracker) close() Window {
	now := w.an.QueryCounts()
	win := Window{
		Index:     w.cur,
		Start:     time.Unix(0, w.cur*int64(w.width)).UTC(),
		Duration:  w.width,
		Queries:   now.Total - w.baseline.Total,
		Providers: make(map[string]uint64),
	}
	for p, n := range now.ByProvider {
		if d := n - w.baseline.ByProvider[p]; d > 0 {
			win.Providers[p.String()] = d
		}
	}
	win.Shares = stats.Shares(win.Providers)
	win.HHI = stats.HHI(win.Shares)
	win.Top1 = stats.TopShare(win.Shares, 1)
	w.baseline = now
	return win
}

// RunStream follows one growing capture file through a single sequential
// analyzer, emitting tumbling windows and (optionally) checkpoints, and
// returns the final aggregates — byte-identical to what a batch Run over
// the same finished capture would produce, even across a kill+resume.
func RunStream(ctx context.Context, input string, opts StreamOptions) (*entrada.Aggregates, StreamResult, error) {
	opts.Options = opts.Options.withDefaults()
	if opts.Registry == nil {
		return nil, StreamResult{}, errors.New("pipeline: Options.Registry is required")
	}
	if opts.Window <= 0 {
		opts.Window = time.Minute
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 4
	}
	if opts.Poll <= 0 {
		opts.Poll = pcapio.DefaultFollowPoll
	}

	res := StreamResult{}
	var an *entrada.Analyzer
	var resumeOff int64
	if opts.Resume {
		if opts.CheckpointDir == "" {
			return nil, res, errors.New("pipeline: Resume requires CheckpointDir")
		}
		ck, ok, err := loadCheckpoint(opts.CheckpointDir)
		if err != nil {
			return nil, res, err
		}
		if ok {
			if ck.WindowNanos != int64(opts.Window) {
				return nil, res, fmt.Errorf("pipeline: checkpoint window %v != configured %v",
					time.Duration(ck.WindowNanos), opts.Window)
			}
			restored, err := entrada.RestoreAnalyzer(opts.Registry, ck.Analyzer)
			if err != nil {
				return nil, res, err
			}
			an = restored
			resumeOff = ck.Offset
			res.WindowsClosed = ck.WindowsClosed
			res.Resumed = true
		}
	}
	if an == nil {
		an = entrada.NewAnalyzer(opts.Registry, opts.AnalyzerOpts...)
	}
	if opts.CheckpointDir != "" {
		if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
			return nil, res, fmt.Errorf("pipeline: checkpoint dir: %w", err)
		}
	}

	fopts := []pcapio.FollowOption{pcapio.FollowPoll(opts.Poll)}
	if opts.IdleExit > 0 {
		fopts = append(fopts, pcapio.FollowIdleExit(opts.IdleExit))
	}
	if resumeOff > 0 {
		fopts = append(fopts, pcapio.FollowResumeAt(resumeOff))
	}
	fr := pcapio.NewFollowReader(ctx, input, fopts...)
	defer fr.Close()

	cnt := newCounters(1, opts.Telemetry)
	stopProgress := startProgress(cnt, opts.Options, 1)
	defer stopProgress()

	tmWindows := opts.Telemetry.Counter(MetricWindowsClosed)
	tmWinQueries := opts.Telemetry.Gauge(MetricWindowQueries)
	tmWinStart := opts.Telemetry.Gauge(MetricWindowStart)
	tmWinQPS := opts.Telemetry.FloatGauge(MetricWindowQPS)
	tmWinHHI := opts.Telemetry.FloatGauge(MetricWindowHHI)
	tmWinTop := opts.Telemetry.FloatGauge(MetricWindowTopShare)

	tracker := &windowTracker{width: opts.Window, an: an, baseline: an.QueryCounts()}
	// On resume the restored counts ARE the last boundary snapshot: the
	// checkpoint below is only ever written at a window boundary before
	// the boundary-crossing packet is handled.

	emit := func(win Window) {
		res.Windows = append(res.Windows, win)
		res.WindowsClosed++
		tmWindows.Inc()
		tmWinQueries.Set(int64(win.Queries))
		tmWinStart.Set(win.Start.Unix())
		tmWinQPS.Set(float64(win.Queries) / win.Duration.Seconds())
		tmWinHHI.Set(win.HHI)
		tmWinTop.Set(win.Top1)
		for name, n := range win.Providers {
			share := stats.Ratio(n, win.Queries)
			opts.Telemetry.FloatGauge(MetricWindowProviderShare + `{provider="` + name + `"}`).Set(share)
		}
		if opts.OnWindow != nil {
			opts.OnWindow(win)
		}
	}
	checkpoint := func(off int64) error {
		if opts.CheckpointDir == "" {
			return nil
		}
		state, err := an.MarshalState()
		if err != nil {
			return err
		}
		return writeCheckpoint(opts.CheckpointDir, streamCheckpoint{
			Version:       entrada.CheckpointVersion,
			Input:         input,
			Offset:        off,
			WindowNanos:   int64(opts.Window),
			WindowsClosed: res.WindowsClosed,
			Analyzer:      state,
		})
	}

	var runErr error
	prevOff := resumeOff // offset of the last handled (or skipped) record
	for {
		pkt, rerr := fr.ReadPacket()
		if rerr != nil {
			if rerr == io.EOF {
				break // idle-exit: the capture stopped growing
			}
			if ctx.Err() != nil {
				// Graceful shutdown (SIGINT/SIGTERM through ctx): flush
				// the final window below, keep what we have.
				break
			}
			runErr = rerr
			break
		}
		for _, win := range tracker.observe(pkt.Timestamp) {
			emit(win)
			if res.WindowsClosed%uint64(opts.CheckpointEvery) == 0 {
				// Checkpoint at the boundary, before the packet that
				// crossed it is handled: prevOff excludes that packet, so
				// a resume re-reads it and no packet is lost or doubled.
				if err := checkpoint(prevOff); err != nil {
					return nil, res, err
				}
			}
		}
		n := cnt.read.Add(1)
		an.HandlePacket(pkt.Timestamp, pkt.Data)
		cnt.dispatched.Add(1)
		cnt.tmPackets.Add(1)
		prevOff = fr.Offset()
		if n%1024 == 0 && ctx.Err() != nil {
			// The follow reader only notices cancellation when a read
			// blocks; during a backlog burst reads never block, so check
			// here too — otherwise a shutdown signal waits for the whole
			// backlog to drain.
			break
		}
	}

	// Shutdown sequence. Checkpoint FIRST — Finish() flushes pending
	// queries and must not contaminate the state a resume restores.
	if runErr == nil {
		if err := checkpoint(prevOff); err != nil {
			return nil, res, err
		}
	}
	// Flush the final (partial) window so the series covers every query
	// seen so far. Around a restart the same window index can be emitted
	// twice (the remainder after resume) — window emission is
	// at-least-once; the aggregates themselves are exact.
	if tracker.open {
		if win := tracker.close(); win.Queries > 0 || len(res.Windows) == 0 {
			emit(win)
		}
	}

	agg := an.Finish()
	cnt.malformed.Add(an.MalformedPackets)
	cnt.unmatched.Add(an.UnmatchedResp)
	cnt.dropped.Add(agg.DroppedSegments)
	cnt.truncated.Add(fr.TruncatedTails())
	cnt.tmMalformed.Add(an.MalformedPackets)
	cnt.tmUnmatched.Add(an.UnmatchedResp)
	cnt.tmDropped.Add(agg.DroppedSegments)
	cnt.tmTruncated.Add(fr.TruncatedTails())
	stopProgress()

	res.Offset = fr.Offset()
	res.TruncatedTails = fr.TruncatedTails()
	res.Rotations = fr.Rotations()
	res.Stats = cnt.snapshot(1, 1)
	res.Stats.PerFile = []FileStats{{
		Packets:        res.Stats.PacketsRead,
		Malformed:      an.MalformedPackets,
		TruncatedTails: fr.TruncatedTails(),
	}}
	if opts.Progress != nil {
		opts.Progress(res.Stats)
	}
	if runErr == nil && ctx.Err() != nil {
		runErr = ctx.Err()
	}
	return agg, res, runErr
}
