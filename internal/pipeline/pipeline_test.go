package pipeline

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/entrada"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/workload"
)

// genWeek renders one synthetic capture into memory and returns the pcap
// bytes, the registry it was generated against, and the zone origin (for
// WithZoneOrigin, so parity tests cover the Q-min counters too).
func genWeek(t testing.TB, v cloudmodel.Vantage, queries int, seed int64) ([]byte, *astrie.Registry, string) {
	t.Helper()
	g, err := workload.NewGenerator(workload.Config{
		Vantage: v, Week: cloudmodel.W2020,
		TotalQueries: queries, Seed: seed, ResolverScale: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf)
	if _, err := g.Run(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), g.Registry(), g.Zone().Origin
}

func openAll(t testing.TB, blobs ...[]byte) []pcapio.PacketReader {
	t.Helper()
	readers := make([]pcapio.PacketReader, len(blobs))
	for i, blob := range blobs {
		r, err := pcapio.Open(bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		readers[i] = r
	}
	return readers
}

func reportBytes(t testing.TB, ag *entrada.Aggregates, reg *astrie.Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := entrada.BuildReport(ag, reg).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelMatchesSequential is the acceptance invariant: ingesting a
// generated week with workers=4 must produce exactly the report the
// workers=1 sequential path produces. Run under -race in CI.
func TestParallelMatchesSequential(t *testing.T) {
	blob, reg, origin := genWeek(t, cloudmodel.VantageNL, 6000, 21)
	anOpts := []entrada.Option{entrada.WithZoneOrigin(origin)}

	seqAgg, seqStats, err := Run(context.Background(), openAll(t, blob), Options{Workers: 1, Registry: reg, AnalyzerOpts: anOpts})
	if err != nil {
		t.Fatal(err)
	}
	parAgg, parStats, err := Run(context.Background(), openAll(t, blob), Options{Workers: 4, Registry: reg, AnalyzerOpts: anOpts})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := reportBytes(t, parAgg, reg), reportBytes(t, seqAgg, reg); !bytes.Equal(got, want) {
		t.Fatal("workers=4 report differs from workers=1 report")
	}
	if parStats.PacketsRead != seqStats.PacketsRead {
		t.Errorf("packets read: parallel %d != sequential %d", parStats.PacketsRead, seqStats.PacketsRead)
	}
	if parStats.PacketsDispatched != parStats.PacketsRead {
		t.Errorf("dispatched %d != read %d", parStats.PacketsDispatched, parStats.PacketsRead)
	}
	if parStats.Malformed != seqStats.Malformed {
		t.Errorf("malformed: parallel %d != sequential %d", parStats.Malformed, seqStats.Malformed)
	}
	if parStats.Workers != 4 || seqStats.Workers != 1 {
		t.Errorf("stats workers = %d/%d, want 4/1", parStats.Workers, seqStats.Workers)
	}
}

// TestLazyEagerDecodingParity runs the same capture through the sharded
// engine twice — once on the default lazy dnswire.View path, once with
// WithEagerDecoding forcing the full-Unpack path — and requires
// byte-identical reports. This is the pipeline-level guarantee that the
// zero-allocation fast path is an optimization, not a behavior change,
// even with flow sharding and shard merges in play. Run under -race in CI.
func TestLazyEagerDecodingParity(t *testing.T) {
	blob, reg, origin := genWeek(t, cloudmodel.VantageNL, 6000, 29)
	anOpts := []entrada.Option{entrada.WithZoneOrigin(origin)}

	lazyAgg, lazyStats, err := Run(context.Background(), openAll(t, blob), Options{Workers: 4, Registry: reg, AnalyzerOpts: anOpts})
	if err != nil {
		t.Fatal(err)
	}
	eagerAgg, eagerStats, err := Run(context.Background(), openAll(t, blob), Options{
		Workers: 4, Registry: reg,
		AnalyzerOpts: append(anOpts, entrada.WithEagerDecoding()),
	})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := reportBytes(t, lazyAgg, reg), reportBytes(t, eagerAgg, reg); !bytes.Equal(got, want) {
		t.Fatal("lazy-decode report differs from eager-decode report")
	}
	if lazyStats.Malformed != eagerStats.Malformed {
		t.Errorf("malformed: lazy %d != eager %d", lazyStats.Malformed, eagerStats.Malformed)
	}
	if lazyStats.PacketsRead != eagerStats.PacketsRead {
		t.Errorf("packets read: lazy %d != eager %d", lazyStats.PacketsRead, eagerStats.PacketsRead)
	}
}

// TestMultiFileMatchesSequential checks cross-file parallelism: three
// captures ingested concurrently under a shared worker budget must merge
// to the same report as the sequential per-file loop.
func TestMultiFileMatchesSequential(t *testing.T) {
	a, reg, _ := genWeek(t, cloudmodel.VantageNZ, 3000, 1)
	// Same registry config across shards of one logical dataset: reuse reg
	// by regenerating with different seeds (the registry layout is
	// ordinal-stable, so one registry classifies all three).
	b, _, _ := genWeek(t, cloudmodel.VantageNZ, 3000, 2)
	c, _, _ := genWeek(t, cloudmodel.VantageNZ, 3000, 3)

	seqAgg, _, err := Run(context.Background(), openAll(t, a, b, c), Options{Workers: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		parAgg, st, err := Run(context.Background(), openAll(t, a, b, c), Options{Workers: workers, Registry: reg})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got, want := reportBytes(t, parAgg, reg), reportBytes(t, seqAgg, reg); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: multi-file report differs from sequential", workers)
		}
		if len(st.PerFile) != 3 {
			t.Fatalf("workers=%d: PerFile has %d entries, want 3", workers, len(st.PerFile))
		}
		var sum uint64
		for _, fs := range st.PerFile {
			if fs.Packets == 0 {
				t.Errorf("workers=%d: a file shows zero packets", workers)
			}
			sum += fs.Packets
		}
		if sum != st.PacketsRead {
			t.Errorf("workers=%d: per-file packets sum %d != read %d", workers, sum, st.PacketsRead)
		}
	}
}

// TestBackpressureTinyQueues forces constant queue-full conditions and
// checks nothing deadlocks or changes the result.
func TestBackpressureTinyQueues(t *testing.T) {
	blob, reg, _ := genWeek(t, cloudmodel.VantageNL, 2000, 5)
	want, _, err := Run(context.Background(), openAll(t, blob), Options{Workers: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Run(context.Background(), openAll(t, blob), Options{
		Workers: 3, Registry: reg,
		QueueDepth: 1, BatchSize: 4, BatchBytes: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportBytes(t, got, reg), reportBytes(t, want, reg)) {
		t.Fatal("tiny-queue run produced a different report")
	}
}

// TestAllMalformedPerFileStats feeds one valid capture and one capture of
// garbage frames; the garbage file must show packets == malformed.
func TestAllMalformedPerFileStats(t *testing.T) {
	valid, reg, _ := genWeek(t, cloudmodel.VantageNL, 1500, 8)

	var junk bytes.Buffer
	w := pcapio.NewWriter(&junk)
	for i := 0; i < 50; i++ {
		frame := bytes.Repeat([]byte{0xAB}, 60) // not Ethernet/IP at all
		if err := w.WritePacket(time.Unix(int64(i), 0), frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		_, st, err := Run(context.Background(), openAll(t, valid, junk.Bytes()), Options{Workers: workers, Registry: reg})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if st.PerFile[1].Packets != 50 || st.PerFile[1].Malformed != 50 {
			t.Errorf("workers=%d: junk file stats = %+v, want 50/50", workers, st.PerFile[1])
		}
		if st.PerFile[0].Malformed != 0 {
			t.Errorf("workers=%d: valid file reported %d malformed", workers, st.PerFile[0].Malformed)
		}
		if st.Malformed != 50 {
			t.Errorf("workers=%d: total malformed = %d, want 50", workers, st.Malformed)
		}
	}
}

// TestContextCancellation cancels mid-ingest; Run must return promptly
// with the context error instead of deadlocking on full queues.
func TestContextCancellation(t *testing.T) {
	blob, reg, _ := genWeek(t, cloudmodel.VantageNL, 4000, 13)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: every flush must fail fast
	_, _, err := Run(ctx, openAll(t, blob), Options{
		Workers: 4, Registry: reg, QueueDepth: 1, BatchSize: 1,
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestEngineAsStreamingSink drives the exported Engine the way core.Run
// does (generator → WritePacket → Close) and checks it matches the
// sequential analyzer.
func TestEngineAsStreamingSink(t *testing.T) {
	g, err := workload.NewGenerator(workload.Config{
		Vantage: cloudmodel.VantageNZ, Week: cloudmodel.W2020,
		TotalQueries: 4000, Seed: 31, ResolverScale: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(context.Background(), Options{Workers: 4, Registry: g.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(eng); err != nil {
		t.Fatal(err)
	}
	got, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Reference: same generator config through a single analyzer.
	g2, err := workload.NewGenerator(workload.Config{
		Vantage: cloudmodel.VantageNZ, Week: cloudmodel.W2020,
		TotalQueries: 4000, Seed: 31, ResolverScale: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	an := entrada.NewAnalyzer(g2.Registry())
	if _, err := g2.Run(sinkFunc(func(ts time.Time, data []byte) error {
		an.HandlePacket(ts, data)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	want := an.Finish()

	if !bytes.Equal(reportBytes(t, got, g.Registry()), reportBytes(t, want, g2.Registry())) {
		t.Fatal("streaming engine report differs from sequential analyzer")
	}
	if eng.Snapshot().PacketsRead == 0 {
		t.Error("snapshot shows zero packets read")
	}
}

type sinkFunc func(time.Time, []byte) error

func (f sinkFunc) WritePacket(ts time.Time, data []byte) error { return f(ts, data) }

// TestProgressCallback checks snapshots arrive while ingestion runs.
func TestProgressCallback(t *testing.T) {
	blob, reg, _ := genWeek(t, cloudmodel.VantageNL, 4000, 17)
	var mu sync.Mutex
	var snaps []Stats
	_, _, err := Run(context.Background(), openAll(t, blob), Options{
		Workers: 2, Registry: reg,
		Progress:         func(s Stats) { mu.Lock(); snaps = append(snaps, s); mu.Unlock() },
		ProgressInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) == 0 {
		t.Skip("ingest finished before the first progress tick") // timing-dependent on very fast machines
	}
	last := snaps[len(snaps)-1]
	if last.Workers != 2 || last.Files != 1 {
		t.Errorf("snapshot workers/files = %d/%d, want 2/1", last.Workers, last.Files)
	}
	if len(last.QueueDepths) != 2 {
		t.Errorf("snapshot has %d queue depth slots, want 2", len(last.QueueDepths))
	}
}

// TestWriteAfterCloseFails pins the Engine lifecycle contract.
func TestWriteAfterCloseFails(t *testing.T) {
	reg := astrie.NewRegistry(1)
	eng, err := NewEngine(context.Background(), Options{Workers: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.WritePacket(time.Unix(0, 0), []byte{1, 2, 3}); err != ErrClosed {
		t.Fatalf("write after close: err = %v, want ErrClosed", err)
	}
	if _, err := eng.Close(); err != ErrClosed {
		t.Fatalf("double close: err = %v, want ErrClosed", err)
	}
}

// TestOptionsValidation pins the required-field errors.
func TestOptionsValidation(t *testing.T) {
	if _, _, err := Run(context.Background(), nil, Options{Registry: astrie.NewRegistry(1)}); err == nil {
		t.Error("Run with no inputs did not fail")
	}
	blob, _, _ := genWeek(t, cloudmodel.VantageNL, 100, 3)
	if _, _, err := Run(context.Background(), openAll(t, blob), Options{}); err == nil {
		t.Error("Run without a registry did not fail")
	}
	if _, err := NewEngine(context.Background(), Options{}); err == nil {
		t.Error("NewEngine without a registry did not fail")
	}
}
