package pipeline

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"dnscentral/internal/telemetry"
)

// Telemetry metric names the pipeline publishes when Options.Telemetry
// is set (CLIs read them back for progress snapshots).
const (
	// MetricPackets counts frames handed to shard analyzers.
	MetricPackets = "pipeline_packets_total"
	// MetricMalformed counts undecodable frames.
	MetricMalformed = "pipeline_malformed_total"
	// MetricUnmatched counts responses with no pending query.
	MetricUnmatched = "pipeline_unmatched_responses_total"
	// MetricDropped counts TCP reassembly overflow drops.
	MetricDropped = "pipeline_dropped_segments_total"
	// MetricTruncatedTails counts inputs that ended in a torn final
	// record (normal when snapshotting a live capture).
	MetricTruncatedTails = "pipeline_truncated_tails_total"
	// MetricQueueDepth gauges the total queued batches across workers;
	// per-slot series carry a {shard="N"} label.
	MetricQueueDepth = "pipeline_queue_depth"
	// metricShardPackets is the per-worker-slot packet counter family.
	metricShardPackets = "pipeline_shard_packets_total"
)

// shardLabel renders `family{shard="i"}`.
func shardLabel(family string, i int) string {
	return family + `{shard="` + strconv.Itoa(i) + `"}`
}

// Stats is a snapshot of the ingestion engine's progress. Run returns the
// final snapshot; the Progress option delivers intermediate ones while the
// engine is running.
type Stats struct {
	// PacketsRead counts frames read from all inputs.
	PacketsRead uint64
	// PacketsDispatched counts frames handed to shard workers (sequential
	// mode dispatches inline, so the two counters track each other).
	PacketsDispatched uint64
	// Malformed counts frames the analyzers could not decode, summed
	// across all shards and files.
	Malformed uint64
	// UnmatchedResponses counts responses with no pending query.
	UnmatchedResponses uint64
	// DroppedSegments mirrors Aggregates.DroppedSegments (TCP reassembly
	// overflow drops).
	DroppedSegments uint64
	// TruncatedTails counts inputs whose final record was torn — counted
	// as a malformed tail, not a fatal error.
	TruncatedTails uint64
	// Workers is the shard-worker budget the run used.
	Workers int
	// Files is the number of inputs.
	Files int
	// QueueDepths is the per-worker-slot queue depth, in batches, at
	// snapshot time (all zeros in a final snapshot).
	QueueDepths []int
	// Elapsed is the wall time since ingestion started.
	Elapsed time.Duration
	// PacketsPerSec is PacketsDispatched / Elapsed.
	PacketsPerSec float64
	// PerFile holds per-input totals, indexed like the readers passed to
	// Run (empty for an Engine used as a streaming sink).
	PerFile []FileStats
}

// FileStats summarizes one input.
type FileStats struct {
	// Packets read from this input.
	Packets uint64
	// Malformed frames among them.
	Malformed uint64
	// TruncatedTails is 1 when this input ended in a torn final record.
	TruncatedTails uint64
}

// String renders a one-line progress summary.
func (s Stats) String() string {
	return fmt.Sprintf("pipeline: %d packets in %v (%.0f pkt/s, %d workers, %d malformed)",
		s.PacketsDispatched, s.Elapsed.Round(time.Millisecond), s.PacketsPerSec, s.Workers, s.Malformed)
}

// counters is the shared mutable progress state of one run; every field is
// updated atomically so Snapshot can be called from any goroutine.
type counters struct {
	start      time.Time
	read       atomic.Uint64
	dispatched atomic.Uint64
	malformed  atomic.Uint64
	unmatched  atomic.Uint64
	dropped    atomic.Uint64
	truncated  atomic.Uint64
	depths     []atomic.Int64 // one slot per worker

	// Telemetry mirrors (nil ⇒ no-ops). Workers feed the counters at
	// batch granularity through per-slot shard cells, so the live
	// /metrics view costs nothing on the per-packet path.
	tmPackets   *telemetry.Counter
	tmMalformed *telemetry.Counter
	tmUnmatched *telemetry.Counter
	tmDropped   *telemetry.Counter
	tmTruncated *telemetry.Counter
}

func newCounters(workers int, reg *telemetry.Registry) *counters {
	c := &counters{start: time.Now(), depths: make([]atomic.Int64, workers)}
	c.tmPackets = reg.Counter(MetricPackets)
	c.tmMalformed = reg.Counter(MetricMalformed)
	c.tmUnmatched = reg.Counter(MetricUnmatched)
	c.tmDropped = reg.Counter(MetricDropped)
	c.tmTruncated = reg.Counter(MetricTruncatedTails)
	if reg != nil {
		depths := c.depths
		reg.GaugeFunc(MetricQueueDepth, func() int64 {
			var sum int64
			for i := range depths {
				sum += depths[i].Load()
			}
			return sum
		})
		for i := range depths {
			d := &depths[i]
			reg.GaugeFunc(shardLabel(MetricQueueDepth, i), d.Load)
		}
	}
	return c
}

func (c *counters) snapshot(workers, files int) Stats {
	elapsed := time.Since(c.start)
	st := Stats{
		PacketsRead:        c.read.Load(),
		PacketsDispatched:  c.dispatched.Load(),
		Malformed:          c.malformed.Load(),
		UnmatchedResponses: c.unmatched.Load(),
		DroppedSegments:    c.dropped.Load(),
		TruncatedTails:     c.truncated.Load(),
		Workers:            workers,
		Files:              files,
		QueueDepths:        make([]int, len(c.depths)),
		Elapsed:            elapsed,
	}
	for i := range c.depths {
		st.QueueDepths[i] = int(c.depths[i].Load())
	}
	if secs := elapsed.Seconds(); secs > 0 {
		st.PacketsPerSec = float64(st.PacketsDispatched) / secs
	}
	return st
}

// fileCounter tracks one input's totals (atomic: the reader goroutine
// writes while the progress goroutine snapshots).
type fileCounter struct {
	packets   atomic.Uint64
	malformed atomic.Uint64
	truncated atomic.Uint64
}
