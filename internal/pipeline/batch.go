package pipeline

import (
	"sync"
	"time"
)

// batch carries a run of packets from the dispatcher to one shard worker.
// Frame bytes are packed into a single arena buffer so a full batch costs
// two allocations instead of one per packet (pcap readers reuse their
// internal buffer, so every dispatched frame must be copied anyway).
type batch struct {
	buf  []byte
	pkts []pktRef
}

// pktRef locates one packet inside the batch arena.
type pktRef struct {
	ts   time.Time
	off  int
	size int
}

func (b *batch) add(ts time.Time, data []byte) {
	off := len(b.buf)
	b.buf = append(b.buf, data...)
	b.pkts = append(b.pkts, pktRef{ts: ts, off: off, size: len(data)})
}

func (b *batch) full(maxPackets, maxBytes int) bool {
	return len(b.pkts) >= maxPackets || len(b.buf) >= maxBytes
}

func (b *batch) reset() {
	b.buf = b.buf[:0]
	b.pkts = b.pkts[:0]
}

// newBatchPool builds the recycling pool batches flow through: dispatcher
// Get → channel → worker → Put.
func newBatchPool(batchBytes, batchSize int) *sync.Pool {
	return &sync.Pool{New: func() any {
		return &batch{
			buf:  make([]byte, 0, batchBytes),
			pkts: make([]pktRef, 0, batchSize),
		}
	}}
}
