package pipeline

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"dnscentral/internal/entrada"
	"dnscentral/internal/telemetry"
)

// Engine is a concurrent ingestion sink for one logical capture: packets
// written to it are hashed by 5-tuple flow and fanned out over bounded
// queues to per-shard entrada.Analyzer workers; Close joins the workers
// and merges the shard aggregates. Both directions of a flow hash to the
// same shard, so query/response joining and TCP reassembly stay
// shard-local and the merged result equals a single-Analyzer run.
//
// WritePacket must be called from a single goroutine (it satisfies
// workload.PacketSink); Snapshot may be called from any goroutine.
type Engine struct {
	ctx    context.Context
	shards []*shard
	fill   []*batch // per-shard batch the dispatcher is filling
	pool   *sync.Pool
	cnt    *counters

	batchSize  int
	batchBytes int

	closed    bool
	malformed uint64 // summed from the analyzers at Close
	unmatched uint64
}

// ErrClosed reports a write to a closed engine.
var ErrClosed = errors.New("pipeline: engine is closed")

// shard is one worker: a bounded queue feeding a dedicated analyzer. depth
// is this worker's queue gauge inside the run-wide counters.
type shard struct {
	ch    chan *batch
	an    *entrada.Analyzer
	depth *atomic.Int64
	done  chan struct{}

	// Per-slot telemetry cells (nil ⇒ no-ops): each worker accumulates
	// into its own cache-line-padded cell, updated once per batch.
	tmPkts      *telemetry.Cell // this slot's {shard="N"} series
	tmTotal     *telemetry.Cell // this slot's share of MetricPackets
	tmMalformed *telemetry.Cell
	tmUnmatched *telemetry.Cell
	tmDropped   *telemetry.Cell
}

// NewEngine starts opts.Workers shard workers that analyze packets
// streamed via WritePacket. The caller must Close it to collect the
// merged aggregates.
func NewEngine(ctx context.Context, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if opts.Registry == nil {
		return nil, errors.New("pipeline: Options.Registry is required")
	}
	return newEngine(ctx, opts.Workers, 0, newCounters(opts.Workers, opts.Telemetry), opts), nil
}

// newEngine wires shards workers whose queue-depth gauges live at
// cnt.depths[slotOffset:slotOffset+shards] (Run packs several engines'
// workers into one budget-wide depth array).
func newEngine(ctx context.Context, shards, slotOffset int, cnt *counters, opts Options) *Engine {
	e := &Engine{
		ctx:        ctx,
		fill:       make([]*batch, shards),
		pool:       newBatchPool(opts.BatchBytes, opts.BatchSize),
		cnt:        cnt,
		batchSize:  opts.BatchSize,
		batchBytes: opts.BatchBytes,
	}
	for i := 0; i < shards; i++ {
		slot := slotOffset + i
		sh := &shard{
			ch:    make(chan *batch, opts.QueueDepth),
			an:    entrada.NewAnalyzer(opts.Registry, opts.AnalyzerOpts...),
			depth: &cnt.depths[slot],
			done:  make(chan struct{}),
		}
		if reg := opts.Telemetry; reg != nil {
			sh.tmPkts = reg.Counter(shardLabel(metricShardPackets, slot)).Shard(0)
			sh.tmTotal = cnt.tmPackets.Shard(slot)
			sh.tmMalformed = cnt.tmMalformed.Shard(slot)
			sh.tmUnmatched = cnt.tmUnmatched.Shard(slot)
			sh.tmDropped = cnt.tmDropped.Shard(slot)
		}
		e.shards = append(e.shards, sh)
		go sh.run(cnt, e.pool)
	}
	return e
}

// run is the worker loop: drain batches, feed the shard's analyzer, and
// publish progress deltas.
func (sh *shard) run(cnt *counters, pool *sync.Pool) {
	defer close(sh.done)
	var lastMalformed, lastUnmatched, lastDropped uint64
	for b := range sh.ch {
		for _, p := range b.pkts {
			sh.an.HandlePacket(p.ts, b.buf[p.off:p.off+p.size])
		}
		sh.depth.Add(-1)
		n := uint64(len(b.pkts))
		sh.tmPkts.Add(n)
		sh.tmTotal.Add(n)
		// The worker owns its analyzer, so reading the error counters here
		// is race-free; the shared totals advance by delta.
		if m := sh.an.MalformedPackets; m != lastMalformed {
			cnt.malformed.Add(m - lastMalformed)
			sh.tmMalformed.Add(m - lastMalformed)
			lastMalformed = m
		}
		if u := sh.an.UnmatchedResp; u != lastUnmatched {
			cnt.unmatched.Add(u - lastUnmatched)
			sh.tmUnmatched.Add(u - lastUnmatched)
			lastUnmatched = u
		}
		if d := sh.an.DroppedSegments(); d != lastDropped {
			cnt.dropped.Add(d - lastDropped)
			sh.tmDropped.Add(d - lastDropped)
			lastDropped = d
		}
		b.reset()
		pool.Put(b)
	}
}

// WritePacket dispatches one captured frame to its flow's shard, blocking
// when that shard's queue is full (backpressure) and failing fast when the
// engine's context is canceled. data is copied; the caller may reuse it.
func (e *Engine) WritePacket(ts time.Time, data []byte) error {
	if e.closed {
		return ErrClosed
	}
	e.cnt.read.Add(1)
	s := 0
	if len(e.shards) > 1 {
		s = entrada.FlowShard(data, len(e.shards))
	}
	b := e.fill[s]
	if b == nil {
		b = e.pool.Get().(*batch)
		e.fill[s] = b
	}
	b.add(ts, data)
	if b.full(e.batchSize, e.batchBytes) {
		return e.flush(s)
	}
	return nil
}

// flush sends shard s's in-progress batch to its worker.
func (e *Engine) flush(s int) error {
	b := e.fill[s]
	if b == nil || len(b.pkts) == 0 {
		return nil
	}
	e.fill[s] = nil
	n := uint64(len(b.pkts)) // the worker owns b once the send succeeds
	select {
	case e.shards[s].ch <- b:
		e.shards[s].depth.Add(1)
		e.cnt.dispatched.Add(n)
		return nil
	case <-e.ctx.Done():
		return e.ctx.Err()
	}
}

// Close flushes the in-progress batches, joins the workers, and returns
// the merged aggregates. After a context cancellation Close still joins
// cleanly and returns the context error alongside the partial result.
func (e *Engine) Close() (*entrada.Aggregates, error) {
	if e.closed {
		return nil, ErrClosed
	}
	e.closed = true
	var err error
	for s := range e.shards {
		if ferr := e.flush(s); ferr != nil && err == nil {
			err = ferr
		}
	}
	for _, sh := range e.shards {
		close(sh.ch)
	}
	for _, sh := range e.shards {
		<-sh.done
	}
	agg := e.shards[0].an.Finish()
	e.malformed = e.shards[0].an.MalformedPackets
	e.unmatched = e.shards[0].an.UnmatchedResp
	for _, sh := range e.shards[1:] {
		agg.Merge(sh.an.Finish())
		e.malformed += sh.an.MalformedPackets
		e.unmatched += sh.an.UnmatchedResp
	}
	return agg, err
}

// Malformed returns the total undecodable frames; valid after Close.
func (e *Engine) Malformed() uint64 { return e.malformed }

// Unmatched returns the total orphan responses; valid after Close.
func (e *Engine) Unmatched() uint64 { return e.unmatched }

// Snapshot returns the engine's live progress counters.
func (e *Engine) Snapshot() Stats {
	return e.cnt.snapshot(len(e.shards), 0)
}
