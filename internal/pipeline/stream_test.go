package pipeline

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/entrada"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/telemetry"
)

// streamOpts builds the common StreamOptions the tests use: fast polls
// and a short idle-exit so a finished file terminates the stream.
func streamOpts(o StreamOptions) StreamOptions {
	o.Poll = time.Millisecond
	if o.IdleExit == 0 {
		o.IdleExit = 200 * time.Millisecond
	}
	return o
}

// TestStreamMatchesBatch: following a finished capture to idle-exit must
// produce aggregates byte-identical to the batch Run over the same file
// — the windowing machinery must be invisible to the final result.
func TestStreamMatchesBatch(t *testing.T) {
	blob, reg, origin := genWeek(t, cloudmodel.VantageNL, 4000, 5)
	anOpts := []entrada.Option{entrada.WithZoneOrigin(origin)}
	path := filepath.Join(t.TempDir(), "cap.pcap")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	batchAgg, _, err := Run(context.Background(), openAll(t, blob), Options{Workers: 1, Registry: reg, AnalyzerOpts: anOpts})
	if err != nil {
		t.Fatal(err)
	}

	streamAgg, res, err := RunStream(context.Background(), path, streamOpts(StreamOptions{
		Options: Options{Registry: reg, AnalyzerOpts: anOpts},
		Window:  time.Hour, // capture time: a generated week has many hours
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportBytes(t, streamAgg, reg), reportBytes(t, batchAgg, reg); !bytes.Equal(got, want) {
		t.Fatal("streamed report differs from batch report")
	}
	if len(res.Windows) == 0 {
		t.Fatal("no windows emitted")
	}
	if res.Offset != int64(len(blob)) {
		t.Fatalf("final offset %d, want %d", res.Offset, len(blob))
	}
}

// TestStreamWindowSums is the windowed-merge property: window deltas are
// snapshots of one monotone series, so the sum of all window query
// counts — globally and per provider — must equal the one-shot totals.
func TestStreamWindowSums(t *testing.T) {
	blob, reg, origin := genWeek(t, cloudmodel.VantageNZ, 5000, 23)
	anOpts := []entrada.Option{entrada.WithZoneOrigin(origin)}
	path := filepath.Join(t.TempDir(), "cap.pcap")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	agg, res, err := RunStream(context.Background(), path, streamOpts(StreamOptions{
		Options: Options{Registry: reg, AnalyzerOpts: anOpts},
		Window:  30 * time.Minute,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) < 3 {
		t.Fatalf("want several windows over a week, got %d", len(res.Windows))
	}

	var sum uint64
	perProv := make(map[string]uint64)
	lastIdx := int64(-1 << 62)
	for _, w := range res.Windows {
		sum += w.Queries
		for p, n := range w.Providers {
			perProv[p] += n
		}
		if w.Index <= lastIdx {
			t.Fatalf("window indices not strictly increasing: %d after %d", w.Index, lastIdx)
		}
		lastIdx = w.Index
		var provSum uint64
		for _, n := range w.Providers {
			provSum += n
		}
		if provSum != w.Queries {
			t.Fatalf("window %d: provider sum %d != queries %d", w.Index, provSum, w.Queries)
		}
	}
	// Finish() flushes pending queries AFTER the last window closed, so
	// the windows cover everything finalized before shutdown.
	if sum > agg.Total {
		t.Fatalf("window sum %d exceeds total %d", sum, agg.Total)
	}
	finalized := agg.Total
	for p, pa := range agg.ByProvider {
		if perProv[p.String()] > pa.Queries {
			t.Fatalf("provider %s window sum %d exceeds aggregate %d", p, perProv[p.String()], pa.Queries)
		}
	}
	// The final partial window is emitted at shutdown, so only queries
	// finalized by Finish itself (pending flushes) may be uncovered.
	var pendingFlushed uint64 = finalized - sum
	if pendingFlushed > finalized/2 {
		t.Fatalf("windows cover too little: %d of %d finalized outside windows", pendingFlushed, finalized)
	}
}

// TestStreamKillResumeExact is the tentpole acceptance criterion at unit
// level: cancel a checkpointing stream partway (the in-process stand-in
// for kill -9 — the checkpoint on disk is all a restart would have),
// resume from the checkpoint directory, and require the resumed run's
// final report to be byte-identical to an uninterrupted batch run.
func TestStreamKillResumeExact(t *testing.T) {
	blob, reg, origin := genWeek(t, cloudmodel.VantageNL, 4000, 99)
	anOpts := []entrada.Option{entrada.WithZoneOrigin(origin)}
	dir := t.TempDir()
	path := filepath.Join(dir, "cap.pcap")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	ckDir := filepath.Join(dir, "state")

	batchAgg, _, err := Run(context.Background(), openAll(t, blob), Options{Workers: 1, Registry: reg, AnalyzerOpts: anOpts})
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, batchAgg, reg)

	// Phase 1: cancel hard after the third checkpointed window. To
	// simulate SIGKILL — which would leave only the last BOUNDARY
	// checkpoint, never a graceful shutdown one — snapshot the on-disk
	// checkpoint at the moment of the "kill" and restore it afterwards,
	// discarding anything the cancelled run wrote while winding down.
	ctx, cancel := context.WithCancel(context.Background())
	ckPath := filepath.Join(ckDir, "entrada.ckpt")
	var killCk []byte
	windows := 0
	_, res1, err := RunStream(ctx, path, streamOpts(StreamOptions{
		Options:         Options{Registry: reg, AnalyzerOpts: anOpts},
		Window:          30 * time.Minute,
		CheckpointDir:   ckDir,
		CheckpointEvery: 1,
		OnWindow: func(Window) {
			windows++
			if windows == 3 {
				b, rdErr := os.ReadFile(ckPath)
				if rdErr != nil {
					t.Errorf("no boundary checkpoint at window 3: %v", rdErr)
				}
				killCk = b
				cancel()
			}
		},
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("phase 1: err = %v, want context.Canceled", err)
	}
	if res1.WindowsClosed < 3 {
		t.Fatalf("phase 1 closed %d windows, want >= 3", res1.WindowsClosed)
	}
	if len(killCk) == 0 {
		t.Fatal("no checkpoint captured at kill point")
	}
	if err := os.WriteFile(ckPath, killCk, 0o644); err != nil {
		t.Fatal(err)
	}

	// Phase 2: resume. Must pick up at the recorded offset and finish
	// with the exact batch report.
	agg2, res2, err := RunStream(context.Background(), path, streamOpts(StreamOptions{
		Options:       Options{Registry: reg, AnalyzerOpts: anOpts},
		Window:        30 * time.Minute,
		CheckpointDir: ckDir,
		Resume:        true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Resumed {
		t.Fatal("phase 2 did not resume from checkpoint")
	}
	if got := reportBytes(t, agg2, reg); !bytes.Equal(got, want) {
		t.Fatal("resumed report differs from uninterrupted batch report")
	}
	if res2.WindowsClosed <= res1.WindowsClosed {
		t.Fatalf("resumed windows %d did not continue from %d", res2.WindowsClosed, res1.WindowsClosed)
	}
}

// TestStreamResumeFreshStart: Resume with an empty checkpoint dir is a
// documented fresh start, not an error.
func TestStreamResumeFreshStart(t *testing.T) {
	blob, reg, origin := genWeek(t, cloudmodel.VantageNL, 1000, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "cap.pcap")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	agg, res, err := RunStream(context.Background(), path, streamOpts(StreamOptions{
		Options:       Options{Registry: reg, AnalyzerOpts: []entrada.Option{entrada.WithZoneOrigin(origin)}},
		Window:        time.Hour,
		CheckpointDir: filepath.Join(dir, "state"),
		Resume:        true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed {
		t.Fatal("claimed to resume with no checkpoint present")
	}
	if agg.Total == 0 {
		t.Fatal("fresh start ingested nothing")
	}
}

// TestStreamWindowTelemetry: closed windows must move the
// entrada_window_* families on the registry.
func TestStreamWindowTelemetry(t *testing.T) {
	blob, reg, origin := genWeek(t, cloudmodel.VantageNL, 2000, 7)
	path := filepath.Join(t.TempDir(), "cap.pcap")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	tm := telemetry.New()
	_, res, err := RunStream(context.Background(), path, streamOpts(StreamOptions{
		Options:   Options{Registry: reg, AnalyzerOpts: []entrada.Option{entrada.WithZoneOrigin(origin)}, Telemetry: tm},
		Window:    time.Hour,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got := tm.Counter(MetricWindowsClosed).Value(); got != res.WindowsClosed {
		t.Fatalf("%s = %d, want %d", MetricWindowsClosed, got, res.WindowsClosed)
	}
	last := res.Windows[len(res.Windows)-1]
	if got := tm.Gauge(MetricWindowQueries).Value(); got != int64(last.Queries) {
		t.Fatalf("%s = %d, want %d", MetricWindowQueries, got, last.Queries)
	}
	if got := tm.FloatGauge(MetricWindowHHI).Value(); got != last.HHI {
		t.Fatalf("%s = %v, want %v", MetricWindowHHI, got, last.HHI)
	}
	var sb bytes.Buffer
	if err := tm.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{MetricWindowsClosed, MetricWindowQPS, MetricWindowTopShare, MetricWindowProviderShare + "{provider="} {
		if !bytes.Contains(sb.Bytes(), []byte(want)) {
			t.Fatalf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}

// TestBatchTruncatedTailTolerated: a torn final record in one input of a
// batch Run must not abort the run — its complete prefix is kept and the
// tear is counted per file, for both sequential and parallel modes.
func TestBatchTruncatedTailTolerated(t *testing.T) {
	blob, reg, origin := genWeek(t, cloudmodel.VantageNL, 2000, 11)
	anOpts := []entrada.Option{entrada.WithZoneOrigin(origin)}
	torn := blob[:len(blob)-7] // tear the last record's body

	for _, workers := range []int{1, 4} {
		agg, st, err := Run(context.Background(), openAll(t, torn, blob), Options{
			Workers: workers, Registry: reg, AnalyzerOpts: anOpts,
		})
		if err != nil {
			t.Fatalf("workers=%d: torn tail aborted the run: %v", workers, err)
		}
		if agg == nil || agg.Total == 0 {
			t.Fatalf("workers=%d: no aggregates from torn run", workers)
		}
		if st.TruncatedTails != 1 {
			t.Fatalf("workers=%d: TruncatedTails = %d, want 1", workers, st.TruncatedTails)
		}
		if st.PerFile[0].TruncatedTails != 1 || st.PerFile[1].TruncatedTails != 0 {
			t.Fatalf("workers=%d: per-file truncated tails = %+v", workers, st.PerFile)
		}
	}
}

// TestSequentialErrorPathStats: a mid-file decode failure must still
// surface the failing file's malformed count in Stats.PerFile (the old
// code only stored it after a clean Finish) and the Progress callback
// must receive one final snapshot with PerFile populated.
func TestSequentialErrorPathStats(t *testing.T) {
	blob, reg, _ := genWeek(t, cloudmodel.VantageNL, 500, 13)

	// Corrupt one mid-file record header so its declared caplen exceeds
	// the snap length — a fatal decode error, not a torn tail.
	corrupt := append([]byte(nil), blob...)
	r, err := pcapio.NewReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err != nil {
		t.Fatal(err)
	}
	off := r.Offset() // third record's header starts here
	// caplen field is bytes 8..12 of the record header (little-endian).
	corrupt[off+8], corrupt[off+9], corrupt[off+10], corrupt[off+11] = 0xFF, 0xFF, 0xFF, 0x7F

	var mu_last Stats
	gotFinal := false
	_, st, err := Run(context.Background(), openAll(t, corrupt), Options{
		Workers: 1, Registry: reg,
		Progress:         func(s Stats) { mu_last = s; gotFinal = len(s.PerFile) > 0 },
		ProgressInterval: time.Hour, // only the final snapshot fires
	})
	if err == nil {
		t.Fatal("corrupt record did not error")
	}
	if st.PerFile[0].Packets == 0 {
		t.Fatal("failing file's packet count missing from PerFile")
	}
	if !gotFinal {
		t.Fatalf("no final Progress snapshot with PerFile (last: %+v)", mu_last)
	}
	if mu_last.PerFile[0].Packets != st.PerFile[0].Packets {
		t.Fatalf("final Progress snapshot stale: %+v vs %+v", mu_last.PerFile[0], st.PerFile[0])
	}
}
