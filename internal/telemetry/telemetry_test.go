package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines through
// both the anonymous Add path and per-worker Shard cells; the summed
// value must be exact. Run under -race in CI.
func TestCounterConcurrent(t *testing.T) {
	reg := New()
	c := reg.Counter("test_total")
	const workers, per = 16, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cell := c.Shard(w)
			for i := 0; i < per; i++ {
				if i%2 == 0 {
					cell.Inc()
				} else {
					c.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value() = %d, want %d", got, workers*per)
	}
	if again := reg.Counter("test_total"); again != c {
		t.Fatalf("Counter() is not idempotent: %p != %p", again, c)
	}
}

func TestGaugeAndHistogramConcurrent(t *testing.T) {
	reg := New()
	g := reg.Gauge("depth")
	h := reg.Histogram("rtt_seconds")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

// TestValueBucketGeometry pins the plain-value bucket layout: exact
// buckets through 128 (every distinct batch size its own bucket), every
// value lands in a bucket whose bounds contain it, and indices are
// monotone in the value.
func TestValueBucketGeometry(t *testing.T) {
	for v := uint64(0); v <= 4096; v++ {
		i := ValueBucket(v)
		if v <= 128 && i != int(v) {
			t.Fatalf("ValueBucket(%d) = %d, want exact bucket %d", v, i, v)
		}
		upper := ValueBucketUpper(i)
		if v > upper {
			t.Fatalf("value %d above its bucket %d upper bound %d", v, i, upper)
		}
		if i > 0 && v <= ValueBucketUpper(i-1) {
			t.Fatalf("value %d fits bucket %d but was put in %d", v, i-1, i)
		}
		if prev := ValueBucket(v - 1); v > 0 && prev > i {
			t.Fatalf("bucket index not monotone: ValueBucket(%d)=%d > ValueBucket(%d)=%d", v-1, prev, v, i)
		}
	}
	// The extremes must not panic or fall outside the bucket array.
	if i := ValueBucket(1<<64 - 1); i >= numValueBuckets {
		t.Fatalf("max value bucket %d out of range %d", i, numValueBuckets)
	}
}

func TestValueHistogramObserve(t *testing.T) {
	reg := New()
	h := reg.ValueHistogram("batch_size")
	for i := 0; i < 100; i++ {
		h.Observe(32)
	}
	h.Observe(1000)
	if h.Count() != 101 {
		t.Fatalf("count = %d, want 101", h.Count())
	}
	if h.Sum() != 100*32+1000 {
		t.Fatalf("sum = %d, want %d", h.Sum(), 100*32+1000)
	}
	if again := reg.ValueHistogram("batch_size"); again != h {
		t.Fatal("ValueHistogram() is not idempotent")
	}
}

// TestNilRegistryNoop pins the no-op default: a nil registry hands out
// nil metrics, every operation is safe, and — the contract instrumented
// hot paths rely on — none of it allocates.
func TestNilRegistryNoop(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total")
	g := reg.Gauge("x")
	fg := reg.FloatGauge("x_ratio")
	h := reg.Histogram("x_seconds")
	vh := reg.ValueHistogram("x_size")
	cell := c.Shard(3)
	if c != nil || g != nil || fg != nil || h != nil || vh != nil || cell != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	reg.CounterFunc("f_total", func() uint64 { return 1 })
	reg.GaugeFunc("f", func() int64 { return 1 })

	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		c.Inc()
		cell.Add(7)
		g.Set(4)
		g.Add(-1)
		fg.Set(0.5)
		_ = fg.Value()
		h.Observe(time.Millisecond)
		vh.Observe(32)
		_ = c.Value()
		_ = g.Value()
		_ = h.Count()
		_ = vh.Count()
		_ = vh.Sum()
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocates: %v allocs/op", allocs)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil WritePrometheus: %q, %v", sb.String(), err)
	}
	sb.Reset()
	if err := reg.WriteJSON(&sb); err != nil || strings.TrimSpace(sb.String()) != "{}" {
		t.Fatalf("nil WriteJSON: %q, %v", sb.String(), err)
	}
}

// TestWritePrometheusGolden pins the exposition format byte for byte:
// sorted families, one TYPE line per family, labeled series adjacent,
// histograms as cumulative occupied buckets + +Inf/_sum/_count.
func TestWritePrometheusGolden(t *testing.T) {
	reg := New()
	reg.Counter("pipeline_packets_total").Add(1234)
	reg.Counter(`pipeline_shard_packets_total{shard="0"}`).Add(600)
	reg.Counter(`pipeline_shard_packets_total{shard="1"}`).Add(634)
	reg.CounterFunc("authserver_queries_total", func() uint64 { return 42 })
	reg.Gauge("pipeline_queue_depth").Set(3)
	reg.GaugeFunc("authserver_active_tcp_conns", func() int64 { return 2 })
	h := reg.Histogram("resolver_rtt_seconds")
	h.Observe(time.Millisecond)
	h.Observe(time.Millisecond)
	h.Observe(time.Second)
	vh := reg.ValueHistogram("udpengine_batch_size")
	vh.Observe(1)
	vh.Observe(1)
	vh.Observe(32)
	vh.Observe(200)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	const want = `# TYPE authserver_queries_total counter
authserver_queries_total 42
# TYPE pipeline_packets_total counter
pipeline_packets_total 1234
# TYPE pipeline_shard_packets_total counter
pipeline_shard_packets_total{shard="0"} 600
pipeline_shard_packets_total{shard="1"} 634
# TYPE authserver_active_tcp_conns gauge
authserver_active_tcp_conns 2
# TYPE pipeline_queue_depth gauge
pipeline_queue_depth 3
# TYPE resolver_rtt_seconds histogram
resolver_rtt_seconds_bucket{le="0.001007754"} 2
resolver_rtt_seconds_bucket{le="1.005514144"} 3
resolver_rtt_seconds_bucket{le="+Inf"} 3
resolver_rtt_seconds_sum 1.002
resolver_rtt_seconds_count 3
# TYPE udpengine_batch_size histogram
udpengine_batch_size_bucket{le="1"} 2
udpengine_batch_size_bucket{le="32"} 3
udpengine_batch_size_bucket{le="207"} 4
udpengine_batch_size_bucket{le="+Inf"} 4
udpengine_batch_size_sum 234
udpengine_batch_size_count 4
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFloatGauge pins the float-gauge surface: idempotent registration,
// atomic Set/Value, and exposition interleaved with integer gauges in
// one sorted gauge namespace.
func TestFloatGauge(t *testing.T) {
	reg := New()
	fg := reg.FloatGauge("entrada_window_hhi")
	fg.Set(0.25)
	if got := fg.Value(); got != 0.25 {
		t.Fatalf("Value() = %v, want 0.25", got)
	}
	if again := reg.FloatGauge("entrada_window_hhi"); again != fg {
		t.Fatal("FloatGauge() is not idempotent")
	}
	reg.FloatGauge(`entrada_window_provider_share{provider="Google"}`).Set(0.5)
	reg.Gauge("entrada_window_queries").Set(1200)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				fg.Set(0.25)
				if v := fg.Value(); v != 0.25 {
					panic("torn float gauge read")
				}
			}
		}()
	}
	wg.Wait()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	const want = `# TYPE entrada_window_hhi gauge
entrada_window_hhi 0.25
# TYPE entrada_window_provider_share gauge
entrada_window_provider_share{provider="Google"} 0.5
# TYPE entrada_window_queries gauge
entrada_window_queries 1200
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	sb.Reset()
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"entrada_window_hhi": 0.25`) {
		t.Fatalf("JSON missing float gauge:\n%s", sb.String())
	}
}

func TestWriteJSON(t *testing.T) {
	reg := New()
	reg.Counter("workload_events_total").Add(99)
	reg.Gauge("depth").Set(-2)
	reg.Histogram("rtt_seconds").Observe(2 * time.Second)

	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"workload_events_total": 99`,
		`"depth": -2`,
		`"count": 1`,
		`"sum_seconds": 2`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("JSON missing %q:\n%s", want, sb.String())
		}
	}
}
