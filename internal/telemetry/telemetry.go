// Package telemetry is the live observability core of the reproduction:
// a dependency-free metrics layer the hot subsystems (pipeline ingestion,
// resolver retries, authserver load, workload generation) publish their
// runtime state through, the way ENTRADA's operators watch their
// streaming warehouse while it loads.
//
// The design is built around two constraints of this codebase:
//
//   - The instrumented paths are the zero-allocation hot paths earlier
//     PRs fought for, so telemetry must cost nothing when it is off.
//     Every type is nil-safe: a nil *Registry hands out nil *Counter /
//     *Gauge / *Histogram values whose methods are no-op, non-allocating
//     single branches (pinned by BenchmarkDisabled* with ReportAllocs).
//     Instrumented code therefore never guards a call site — it just
//     calls Add/Observe on whatever it holds.
//
//   - The hot writers are per-shard worker goroutines, so counters are
//     sharded: a Counter is a set of cache-line-padded cells, each worker
//     accumulates into its own cell via Shard(i), and readers sum the
//     cells. No false sharing on the pipeline hot path, no mutex anywhere
//     near a packet.
//
// Histograms reuse the log-bucket geometry of stats.DurationReservoir
// (gamma 1.01, ~0.5% relative error, ≤~1800 buckets), so histogram
// quantiles and reservoir medians are directly comparable.
//
// Exposition is pull-based and double-format: Registry.WritePrometheus
// emits Prometheus text format, Registry.WriteJSON emits a flat
// expvar-style JSON map, and Serve binds both to an HTTP listener
// (/metrics, /metrics.json, /debug/vars).
package telemetry

import (
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dnscentral/internal/stats"
)

// cacheLine is the padding unit separating counter cells. 64 bytes covers
// x86-64 and most arm64 cores; adjacent-line prefetching makes 128 the
// truly safe value, but doubling the padding for that marginal case is
// not worth the memory on a per-shard-cell layout.
const cacheLine = 64

// Cell is one padded accumulation slot of a sharded Counter. A worker
// that owns a Cell increments it with plain atomic adds that never
// contend — or false-share — with other workers' cells.
type Cell struct {
	n atomic.Uint64
	_ [cacheLine - 8]byte
}

// Add increments the cell. Nil cells (telemetry off) are no-ops.
func (c *Cell) Add(n uint64) {
	if c == nil {
		return
	}
	c.n.Add(n)
}

// Inc adds one.
func (c *Cell) Inc() { c.Add(1) }

// Counter is a monotonically increasing sharded counter.
type Counter struct {
	cells []Cell
	mask  uint32
}

// numCells sizes every counter's cell array: enough shards to cover the
// machine's parallelism, capped so a counter stays a few KiB.
func numCells() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n <<= 1
	}
	return n
}

func newCounter() *Counter {
	n := numCells()
	return &Counter{cells: make([]Cell, n), mask: uint32(n - 1)}
}

// Add increments the counter through its first cell — right for call
// sites without a natural worker identity. Nil counters are no-ops.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.cells[0].n.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Shard returns worker i's accumulation cell. Distinct workers on
// distinct cells never share a cache line; indices beyond the cell count
// wrap. Nil counters return a nil (no-op) cell.
func (c *Counter) Shard(i int) *Cell {
	if c == nil {
		return nil
	}
	return &c.cells[uint32(i)&c.mask]
}

// Value sums the cells. Nil counters read zero.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.cells {
		sum += c.cells[i].n.Load()
	}
	return sum
}

// Gauge is an instantaneous level (queue depth, active connections).
type Gauge struct {
	v atomic.Int64
}

// Set stores the level. Nil gauges are no-ops.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the level by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the level. Nil gauges read zero.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an instantaneous floating-point level (a share, an HHI,
// a rate) stored as atomic float64 bits. It exists for the windowed
// centralization series, whose natural values — provider shares,
// concentration indices, queries/second — are ratios an int64 Gauge
// would have to smuggle through a fixed-point scale.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores the level. Nil gauges are no-ops.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reads the level. Nil gauges read zero.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-memory log-bucketed duration histogram sharing
// stats.DurationReservoir's bucket geometry. Observations are lock-free
// atomic adds; the bucket array is allocated once at registration.
type Histogram struct {
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds; wraps after ~584 years of samples
}

func newHistogram() *Histogram {
	return &Histogram{buckets: make([]atomic.Uint64, stats.NumDurationBuckets())}
}

// Observe adds one sample. Negative durations clamp to the lowest
// bucket. Nil histograms are no-ops.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[stats.DurationBucket(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(d))
}

// Count returns the number of samples. Nil histograms read zero.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the summed duration of all samples.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Value-histogram bucket geometry: exact buckets for 0..128 (the counts
// the instrumented paths actually produce — batch sizes, segment counts
// — deserve exact resolution), then 16 sub-buckets per power of two up
// to the full uint64 range (~3% relative error). 1041 buckets total.
const (
	valueExactMax   = 128
	valueSubBuckets = 16
	numValueBuckets = valueExactMax + 1 + (64-7)*valueSubBuckets
)

// ValueBucket maps a plain value to its bucket index.
func ValueBucket(v uint64) int {
	if v <= valueExactMax {
		return int(v)
	}
	e := bits.Len64(v) - 1 // 2^e ≤ v < 2^(e+1), e ≥ 7
	sub := int((v - 1<<e) >> (e - 4))
	return valueExactMax + 1 + (e-7)*valueSubBuckets + sub
}

// ValueBucketUpper returns the inclusive upper bound of bucket i — the
// `le` boundary the Prometheus exposition prints.
func ValueBucketUpper(i int) uint64 {
	if i <= valueExactMax {
		return uint64(i)
	}
	rel := i - valueExactMax - 1
	e := uint(7 + rel/valueSubBuckets)
	sub := uint64(rel % valueSubBuckets)
	return 1<<e + (sub+1)<<(e-4) - 1
}

// ValueHistogram is a fixed-memory log-bucketed histogram over plain
// (unitless) integer values — batch sizes, segment counts, queue
// lengths. It exists so counts are not smuggled through the duration
// Histogram under a fake time unit: buckets are exact up to 128 and
// ~3%-relative above, and the exposition prints plain-number `le`
// boundaries. Observations are lock-free atomic adds.
type ValueHistogram struct {
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

func newValueHistogram() *ValueHistogram {
	return &ValueHistogram{buckets: make([]atomic.Uint64, numValueBuckets)}
}

// Observe adds one sample. Nil histograms are no-ops.
func (h *ValueHistogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[ValueBucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples. Nil histograms read zero.
func (h *ValueHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the summed value of all samples.
func (h *ValueHistogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry names and hands out metrics. The zero value of the pointer —
// nil — is the no-op default: a nil registry hands out nil metrics whose
// operations cost a single predictable branch, so instrumented code pays
// ~0 ns when telemetry is off.
//
// Metric names follow the Prometheus convention: snake_case with a
// subsystem prefix and a _total suffix on counters; an optional
// {label="value"} suffix distinguishes per-shard series of one logical
// metric (`pipeline_shard_packets_total{shard="3"}`).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	counterFns map[string]func() uint64
	gauges     map[string]*Gauge
	gaugeFns   map[string]func() int64
	fgauges    map[string]*FloatGauge
	hists      map[string]*Histogram
	vhists     map[string]*ValueHistogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		counterFns: make(map[string]func() uint64),
		gauges:     make(map[string]*Gauge),
		gaugeFns:   make(map[string]func() int64),
		fgauges:    make(map[string]*FloatGauge),
		hists:      make(map[string]*Histogram),
		vhists:     make(map[string]*ValueHistogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = newCounter()
		r.counters[name] = c
	}
	return c
}

// CounterFunc registers (or replaces) a counter whose value is read from
// f at exposition time — for subsystems that already keep their own
// atomic or mutex-guarded cumulative counts. No-op on a nil registry.
func (r *Registry) CounterFunc(name string, f func() uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterFns[name] = f
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers (or replaces) a gauge read from f at exposition
// time. Re-registration replaces the previous reader, so a restarted
// subsystem (repro runs many pipeline engines) always exposes the live
// instance. No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, f func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = f
}

// FloatGauge returns the named float gauge, creating it on first use. A
// nil registry returns a nil (no-op) gauge.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.fgauges[name]
	if g == nil {
		g = new(FloatGauge)
		r.fgauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// ValueHistogram returns the named value histogram, creating it on first
// use. A nil registry returns a nil (no-op) histogram.
func (r *Registry) ValueHistogram(name string) *ValueHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.vhists[name]
	if h == nil {
		h = newValueHistogram()
		r.vhists[name] = h
	}
	return h
}

// sortedKeys returns the map's keys in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
