package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServe exercises the live HTTP surface end to end on an ephemeral
// port: Prometheus on /metrics, JSON on /metrics.json and /debug/vars.
func TestServe(t *testing.T) {
	reg := New()
	reg.Counter("demo_total").Add(7)
	ms, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + ms.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return string(b), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(body, "demo_total 7") || !strings.Contains(ctype, "text/plain") {
		t.Fatalf("/metrics = %q (%s)", body, ctype)
	}
	reg.Counter("demo_total").Add(1)
	body, _ = get("/metrics")
	if !strings.Contains(body, "demo_total 8") {
		t.Fatalf("/metrics is not live: %q", body)
	}
	for _, path := range []string{"/metrics.json", "/debug/vars"} {
		body, ctype = get(path)
		if !strings.Contains(body, `"demo_total": 8`) || !strings.Contains(ctype, "application/json") {
			t.Fatalf("%s = %q (%s)", path, body, ctype)
		}
	}

	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ms.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := http.Get("http://" + ms.Addr() + "/metrics"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("endpoint still serving after Close")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
