package telemetry

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Flags is the shared CLI surface of the telemetry layer: every
// instrumented command registers the same two flags and hands the
// resulting registry (nil when both are off, so instrumentation stays
// free) to its subsystems.
type Flags struct {
	// MetricsAddr, when non-empty, serves /metrics (Prometheus text),
	// /metrics.json and /debug/vars (expvar-style JSON) on this address.
	MetricsAddr string
	// ProgressInterval, when positive, prints a one-line telemetry
	// snapshot to stderr at this interval, plus a final line at Stop.
	ProgressInterval time.Duration

	reg *Registry
}

// RegisterFlags installs -metrics-addr and -progress-interval on fs.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "",
		"serve live metrics on this address: /metrics (Prometheus) and /metrics.json (empty = off)")
	fs.DurationVar(&f.ProgressInterval, "progress-interval", 0,
		"print a one-line telemetry snapshot to stderr at this interval, e.g. 2s (0 = off)")
	return f
}

// Enabled reports whether any telemetry output was requested.
func (f *Flags) Enabled() bool {
	return f.MetricsAddr != "" || f.ProgressInterval > 0
}

// Registry returns the registry backing the flags: nil (the no-op
// default) when telemetry is off, one shared live registry otherwise.
func (f *Flags) Registry() *Registry {
	if !f.Enabled() {
		return nil
	}
	if f.reg == nil {
		f.reg = New()
	}
	return f.reg
}

// Start brings the requested outputs up: the HTTP endpoint (its bound
// address is logged to stderr, so tests and operators find ephemeral
// ports) and the progress ticker. snapshot writes one status line — no
// trailing newline — and may be nil when the command has no line format.
// The returned stop function is idempotent, closes the endpoint, and
// emits one final snapshot line so short runs still show their totals.
func (f *Flags) Start(snapshot func(w io.Writer)) (stop func(), err error) {
	var ms *MetricsServer
	if f.MetricsAddr != "" {
		ms, err = Serve(f.MetricsAddr, f.Registry())
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics on %s\n", ms.Addr())
	}
	done := make(chan struct{})
	var tickWG sync.WaitGroup
	line := func() {
		if snapshot == nil {
			return
		}
		snapshot(os.Stderr)
		fmt.Fprintln(os.Stderr)
	}
	if f.ProgressInterval > 0 && snapshot != nil {
		tickWG.Add(1)
		go func() {
			defer tickWG.Done()
			t := time.NewTicker(f.ProgressInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					line()
				case <-done:
					return
				}
			}
		}()
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			tickWG.Wait()
			if f.ProgressInterval > 0 {
				line()
			}
			_ = ms.Close()
		})
	}, nil
}
