package telemetry

import (
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkDisabledCounter pins the telemetry-off contract the hot paths
// rely on: a nil counter costs one branch and zero allocations.
func BenchmarkDisabledCounter(b *testing.B) {
	var reg *Registry
	c := reg.Counter("off_total")
	cell := c.Shard(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		cell.Inc()
	}
}

// BenchmarkDisabledHistogram pins the same for Observe.
func BenchmarkDisabledHistogram(b *testing.B) {
	var reg *Registry
	h := reg.Histogram("off_seconds")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Millisecond)
	}
}

// BenchmarkEnabledCounterShard measures the live per-worker cell path
// (one uncontended atomic add).
func BenchmarkEnabledCounterShard(b *testing.B) {
	reg := New()
	cell := reg.Counter("on_total").Shard(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cell.Inc()
	}
}

// BenchmarkEnabledCounterParallel measures sharded cells under real
// parallelism: each goroutine on its own padded cell.
func BenchmarkEnabledCounterParallel(b *testing.B) {
	reg := New()
	c := reg.Counter("par_total")
	var next atomic.Int32
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		cell := c.Shard(int(next.Add(1)))
		for pb.Next() {
			cell.Inc()
		}
	})
}

// BenchmarkEnabledHistogram measures a live Observe.
func BenchmarkEnabledHistogram(b *testing.B) {
	reg := New()
	h := reg.Histogram("on_seconds")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}
