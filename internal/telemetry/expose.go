package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"dnscentral/internal/stats"
)

// baseName strips a {label="value"} suffix: the Prometheus # TYPE line
// names the metric family, not the individual series.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), sorted by name so the output is
// deterministic and diffable. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]uint64, len(r.counters)+len(r.counterFns))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	for name, f := range r.counterFns {
		counters[name] = f()
	}
	gauges := make(map[string]int64, len(r.gauges)+len(r.gaugeFns))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	for name, f := range r.gaugeFns {
		gauges[name] = f()
	}
	fgauges := make(map[string]float64, len(r.fgauges))
	for name, g := range r.fgauges {
		fgauges[name] = g.Value()
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	vhists := make(map[string]*ValueHistogram, len(r.vhists))
	for name, h := range r.vhists {
		vhists[name] = h
	}
	r.mu.Unlock()

	var lastType string // "family typ" of the preceding sample
	emitType := func(name, typ string) error {
		key := baseName(name) + " " + typ
		if key == lastType {
			return nil // one TYPE line per family, series stay adjacent
		}
		lastType = key
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", baseName(name), typ)
		return err
	}

	for _, name := range sortedKeys(counters) {
		if err := emitType(name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, counters[name]); err != nil {
			return err
		}
	}
	// Integer and float gauges are one sorted gauge namespace: merge the
	// key sets so families stay in lexical order regardless of flavor.
	gaugeNames := make([]string, 0, len(gauges)+len(fgauges))
	for name := range gauges {
		gaugeNames = append(gaugeNames, name)
	}
	for name := range fgauges {
		gaugeNames = append(gaugeNames, name)
	}
	sort.Strings(gaugeNames)
	for _, name := range gaugeNames {
		if err := emitType(name, "gauge"); err != nil {
			return err
		}
		if v, ok := gauges[name]; ok {
			if _, err := fmt.Fprintf(w, "%s %d\n", name, v); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(fgauges[name])); err != nil {
			return err
		}
	}
	// Duration and value histograms are one sorted histogram namespace:
	// merge the key sets so families stay in lexical order regardless of
	// which flavor a metric is.
	histNames := make([]string, 0, len(hists)+len(vhists))
	for name := range hists {
		histNames = append(histNames, name)
	}
	for name := range vhists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		if err := emitType(name, "histogram"); err != nil {
			return err
		}
		if h, ok := hists[name]; ok {
			if err := writePrometheusHistogram(w, name, h); err != nil {
				return err
			}
			continue
		}
		if err := writePrometheusValueHistogram(w, name, vhists[name]); err != nil {
			return err
		}
	}
	return nil
}

// writePrometheusHistogram emits the cumulative _bucket/_sum/_count
// triplet. Only occupied buckets get a line (the log-bucket space is
// ~1800 wide and almost entirely empty); boundaries are the shared
// reservoir geometry's upper bounds in seconds.
func writePrometheusHistogram(w io.Writer, name string, h *Histogram) error {
	base := baseName(name)
	var cum uint64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		le := stats.DurationBucketUpper(int32(i)).Seconds()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", base, formatFloat(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", base, h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", base, formatFloat(h.Sum().Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", base, h.Count())
	return err
}

// writePrometheusValueHistogram is the plain-value counterpart: `le`
// boundaries are the integer bucket upper bounds, _sum is the raw summed
// value (no unit conversion).
func writePrometheusValueHistogram(w io.Writer, name string, h *ValueHistogram) error {
	base := baseName(name)
	var cum uint64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", base, ValueBucketUpper(i), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", base, h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n", base, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", base, h.Count())
	return err
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// WriteJSON renders the registry as a flat expvar-style JSON object:
// counters and gauges as numbers, histograms as {count, sum_seconds}
// sub-objects. Keys are sorted (encoding/json sorts map keys). A nil
// registry writes an empty object.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]any)
	if r != nil {
		r.mu.Lock()
		for name, c := range r.counters {
			out[name] = c.Value()
		}
		for name, f := range r.counterFns {
			out[name] = f()
		}
		for name, g := range r.gauges {
			out[name] = g.Value()
		}
		for name, f := range r.gaugeFns {
			out[name] = f()
		}
		for name, g := range r.fgauges {
			out[name] = g.Value()
		}
		for name, h := range r.hists {
			out[name] = map[string]any{
				"count":       h.Count(),
				"sum_seconds": h.Sum().Seconds(),
			}
		}
		for name, h := range r.vhists {
			out[name] = map[string]any{
				"count": h.Count(),
				"sum":   h.Sum(),
			}
		}
		r.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler returns the registry's HTTP surface:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  expvar-style JSON
//	/debug/vars    alias of /metrics.json (expvar's conventional path)
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	serveJSON := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	}
	mux.HandleFunc("/metrics.json", serveJSON)
	mux.HandleFunc("/debug/vars", serveJSON)
	return mux
}

// MetricsServer is a live metrics HTTP endpoint; Close unbinds it.
type MetricsServer struct {
	ln     net.Listener
	srv    *http.Server
	closed atomic.Bool
}

// Serve binds the registry's Handler to addr (e.g. "127.0.0.1:9153";
// port 0 picks an ephemeral port, reported by Addr) and serves it on a
// background goroutine until Close.
func Serve(addr string, r *Registry) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: metrics listen: %w", err)
	}
	ms := &MetricsServer{ln: ln, srv: &http.Server{Handler: r.Handler()}}
	go func() {
		if err := ms.srv.Serve(ln); err != nil && err != http.ErrServerClosed && !ms.closed.Load() {
			// The endpoint is best-effort observability: losing it must
			// never take the measurement down with it.
			fmt.Printf("telemetry: metrics server: %v\n", err)
		}
	}()
	return ms, nil
}

// Addr returns the bound address.
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close stops serving. Idempotent; a nil server is a no-op.
func (s *MetricsServer) Close() error {
	if s == nil || s.closed.Swap(true) {
		return nil
	}
	return s.srv.Close()
}
