// Package pcapio reads and writes the classic libpcap capture file format,
// the format the paper's ccTLD operators used for collection ("we include
// only the authoritative servers that support pcap collection"). Both the
// microsecond (0xA1B2C3D4) and nanosecond (0xA1B23C4D) magic variants are
// supported, in either byte order, for Ethernet (DLT_EN10MB) link type.
package pcapio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers of the classic pcap format.
const (
	MagicMicroseconds uint32 = 0xA1B2C3D4
	MagicNanoseconds  uint32 = 0xA1B23C4D
)

// LinkTypeEthernet is DLT_EN10MB.
const LinkTypeEthernet uint32 = 1

// DefaultSnapLen is the snapshot length written in new files.
const DefaultSnapLen uint32 = 65535

// Errors of the pcap codec.
var (
	ErrBadMagic    = errors.New("pcapio: unrecognized magic number")
	ErrBadLinkType = errors.New("pcapio: unsupported link type")
	ErrShortRecord = errors.New("pcapio: short packet record")
	ErrSnapLen     = errors.New("pcapio: capture length exceeds snap length")

	// ErrTruncatedRecord reports a torn final record: the stream ended in
	// the middle of a record header or body. This is the normal state of a
	// file a live capture process is still appending to, so callers must
	// be able to tell it apart from real corruption — match it with
	// errors.Is and recover the resume point from TruncatedError.Offset.
	ErrTruncatedRecord = errors.New("pcapio: truncated final record")
)

// TruncatedError is the concrete error behind ErrTruncatedRecord. Offset
// is the number of stream bytes up to and including the last complete
// record (file header plus whole records/blocks): a tailing reader can
// wait for the file to grow and resume decoding from exactly there.
type TruncatedError struct {
	Offset int64
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("pcapio: truncated final record (last complete record ends at byte %d)", e.Offset)
}

// Is makes errors.Is(err, ErrTruncatedRecord) match.
func (e *TruncatedError) Is(target error) bool { return target == ErrTruncatedRecord }

const fileHeaderLen = 24
const recordHeaderLen = 16

// Packet is one captured packet record.
type Packet struct {
	// Timestamp of capture.
	Timestamp time.Time
	// Data is the captured bytes (possibly truncated to snaplen).
	Data []byte
	// OrigLen is the original on-the-wire length.
	OrigLen int
}

// Writer emits a pcap stream. It is not safe for concurrent use.
type Writer struct {
	w         *bufio.Writer
	nanos     bool
	snapLen   uint32
	headerOut bool
	scratch   [recordHeaderLen]byte
}

// WriterOption configures a Writer.
type WriterOption func(*Writer)

// WithNanosecondResolution makes the writer emit the nanosecond magic.
func WithNanosecondResolution() WriterOption {
	return func(w *Writer) { w.nanos = true }
}

// WithSnapLen overrides the advertised snapshot length.
func WithSnapLen(n uint32) WriterOption {
	return func(w *Writer) { w.snapLen = n }
}

// NewWriter wraps w. The file header is written lazily on the first packet
// (or by Flush).
func NewWriter(w io.Writer, opts ...WriterOption) *Writer {
	pw := &Writer{w: bufio.NewWriterSize(w, 1<<16), snapLen: DefaultSnapLen}
	for _, o := range opts {
		o(pw)
	}
	return pw
}

func (w *Writer) writeHeader() error {
	var hdr [fileHeaderLen]byte
	magic := MagicMicroseconds
	if w.nanos {
		magic = MagicNanoseconds
	}
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint16(hdr[4:], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:], 4) // version minor
	// thiszone=0, sigfigs=0
	binary.LittleEndian.PutUint32(hdr[16:], w.snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	w.headerOut = true
	_, err := w.w.Write(hdr[:])
	return err
}

// WritePacket appends one record with the given timestamp and full frame
// bytes (OrigLen == len(data); truncation to snaplen is applied).
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	if !w.headerOut {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	capLen := len(data)
	if uint32(capLen) > w.snapLen {
		capLen = int(w.snapLen)
	}
	sec := ts.Unix()
	var sub int64
	if w.nanos {
		sub = int64(ts.Nanosecond())
	} else {
		sub = int64(ts.Nanosecond() / 1000)
	}
	binary.LittleEndian.PutUint32(w.scratch[0:], uint32(sec))
	binary.LittleEndian.PutUint32(w.scratch[4:], uint32(sub))
	binary.LittleEndian.PutUint32(w.scratch[8:], uint32(capLen))
	binary.LittleEndian.PutUint32(w.scratch[12:], uint32(len(data)))
	if _, err := w.w.Write(w.scratch[:]); err != nil {
		return err
	}
	_, err := w.w.Write(data[:capLen])
	return err
}

// AppendRecord appends one packet record — header and payload coalesced —
// to dst, encoded exactly as WritePacket would emit it (same resolution
// and snaplen truncation). Use with WriteBatch to build large contiguous
// batches that reach the file in a single write.
func (w *Writer) AppendRecord(dst []byte, ts time.Time, data []byte) []byte {
	capLen := len(data)
	if uint32(capLen) > w.snapLen {
		capLen = int(w.snapLen)
	}
	var sub int64
	if w.nanos {
		sub = int64(ts.Nanosecond())
	} else {
		sub = int64(ts.Nanosecond() / 1000)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ts.Unix()))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(sub))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(capLen))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(data)))
	return append(dst, data[:capLen]...)
}

// WriteBatch writes records pre-encoded by AppendRecord. The file header is
// written first if needed; the batch itself reaches the underlying writer
// in one Write when it exceeds the buffer size.
func (w *Writer) WriteBatch(batch []byte) error {
	if !w.headerOut {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	_, err := w.w.Write(batch)
	return err
}

// Flush writes any buffered data (and the header, if no packet was written).
func (w *Writer) Flush() error {
	if !w.headerOut {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// Reader consumes a pcap stream.
type Reader struct {
	r       *bufio.Reader
	order   binary.ByteOrder
	nanos   bool
	snapLen uint32
	// off is the count of stream bytes consumed by complete units: the
	// file header plus every fully-decoded record. A torn tail never
	// advances it, so it is always a valid resume point.
	off int64
	// buf is reused across ReadPacket calls when the caller permits.
	buf []byte
}

// NewReader parses the file header of r.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcapio: reading file header: %w", err)
	}
	pr := &Reader{r: br}
	magicLE := binary.LittleEndian.Uint32(hdr[0:])
	magicBE := binary.BigEndian.Uint32(hdr[0:])
	switch {
	case magicLE == MagicMicroseconds:
		pr.order = binary.LittleEndian
	case magicLE == MagicNanoseconds:
		pr.order, pr.nanos = binary.LittleEndian, true
	case magicBE == MagicMicroseconds:
		pr.order = binary.BigEndian
	case magicBE == MagicNanoseconds:
		pr.order, pr.nanos = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("%w: %#08x", ErrBadMagic, magicLE)
	}
	pr.snapLen = pr.order.Uint32(hdr[16:])
	if lt := pr.order.Uint32(hdr[20:]); lt != LinkTypeEthernet {
		return nil, fmt.Errorf("%w: %d", ErrBadLinkType, lt)
	}
	pr.off = fileHeaderLen
	return pr, nil
}

// Offset returns the number of stream bytes consumed by the file header
// and all complete records so far — the point a tailing reader should
// resume from after ErrTruncatedRecord.
func (r *Reader) Offset() int64 { return r.off }

// SnapLen returns the snapshot length advertised by the file.
func (r *Reader) SnapLen() uint32 { return r.snapLen }

// NanosecondResolution reports whether timestamps carry nanoseconds.
func (r *Reader) NanosecondResolution() bool { return r.nanos }

// ReadPacket returns the next record. The returned Packet.Data aliases an
// internal buffer that is overwritten by the next call; callers that retain
// it must copy. io.EOF signals a clean end of file.
func (r *Reader) ReadPacket() (Packet, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			// Partial record header: a live writer got cut (or is still
			// writing) mid-record. Report where the complete prefix ends.
			return Packet{}, &TruncatedError{Offset: r.off}
		}
		return Packet{}, fmt.Errorf("pcapio: reading record header: %w", err)
	}
	sec := r.order.Uint32(hdr[0:])
	sub := r.order.Uint32(hdr[4:])
	capLen := r.order.Uint32(hdr[8:])
	origLen := r.order.Uint32(hdr[12:])
	if capLen > r.snapLen && r.snapLen > 0 {
		return Packet{}, fmt.Errorf("%w: cap=%d snap=%d", ErrSnapLen, capLen, r.snapLen)
	}
	if cap(r.buf) < int(capLen) {
		r.buf = make([]byte, capLen)
	}
	r.buf = r.buf[:capLen]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// Short body at stream end: same torn-tail case as a partial
			// header, just cut a little later.
			return Packet{}, &TruncatedError{Offset: r.off}
		}
		return Packet{}, fmt.Errorf("%w: %v", ErrShortRecord, err)
	}
	r.off += recordHeaderLen + int64(capLen)
	nanos := int64(sub) * 1000
	if r.nanos {
		nanos = int64(sub)
	}
	return Packet{
		Timestamp: time.Unix(int64(sec), nanos).UTC(),
		Data:      r.buf,
		OrigLen:   int(origLen),
	}, nil
}

// ForEach iterates every packet, stopping on the first error other than a
// clean EOF. The Packet passed to fn aliases the reader's buffer.
func (r *Reader) ForEach(fn func(Packet) error) error {
	for {
		pkt, err := r.ReadPacket()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(pkt); err != nil {
			return err
		}
	}
}
