package pcapio

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// Follow mode: tail a capture file that a live writer is still appending
// to, the way ENTRADA ingests the .nl server pcaps continuously. The
// torn final record a mid-write snapshot exposes is not an error here —
// the reader simply waits for the rest of the bytes to arrive — and a
// rotated file (new inode at the same path, or truncate-in-place) is
// picked up from its beginning.

// DefaultFollowPoll is how often a follow reader re-checks a quiet file
// for growth.
const DefaultFollowPoll = 50 * time.Millisecond

type followConfig struct {
	poll     time.Duration
	idleExit time.Duration
	resumeAt int64
}

// FollowOption configures a FollowReader.
type FollowOption func(*followConfig)

// FollowPoll sets the growth-poll interval (default DefaultFollowPoll).
func FollowPoll(d time.Duration) FollowOption {
	return func(c *followConfig) { c.poll = d }
}

// FollowIdleExit makes the reader return io.EOF once the file has not
// grown for d. Zero (the default) follows forever, until the context is
// cancelled or the file rotates away and never comes back.
func FollowIdleExit(d time.Duration) FollowOption {
	return func(c *followConfig) { c.idleExit = d }
}

// FollowResumeAt discards every record that ends at or before byte
// offset off of the followed file before delivering packets. Offsets are
// the decoder's Offset() values — complete-record boundaries — so a
// checkpointed offset resumes exactly after the last processed record.
func FollowResumeAt(off int64) FollowOption {
	return func(c *followConfig) { c.resumeAt = off }
}

// FollowReader is a PacketReader that tails a growing pcap or pcapng
// file. ReadPacket blocks until a complete record is available, the
// context is cancelled, or (with FollowIdleExit) the file goes quiet.
// It is not safe for concurrent use.
type FollowReader struct {
	ctx  context.Context
	path string
	cfg  followConfig

	tail *tailFile
	dec  PacketReader

	committed  int64 // decoder offset after the last delivered packet
	resumeSkip int64 // discard records ending at or before this offset
	truncTails uint64
	rotations  uint64
}

// NewFollowReader tails the file at path. The file may not exist yet;
// the first ReadPacket waits for it. ctx cancellation makes any blocked
// ReadPacket return promptly with ctx's error.
func NewFollowReader(ctx context.Context, path string, opts ...FollowOption) *FollowReader {
	cfg := followConfig{poll: DefaultFollowPoll}
	for _, o := range opts {
		o(&cfg)
	}
	return &FollowReader{ctx: ctx, path: path, cfg: cfg, resumeSkip: cfg.resumeAt}
}

// Offset returns the byte offset of the last complete record delivered
// (or skipped during resume) in the currently-followed file. It is the
// value to checkpoint and later hand to FollowResumeAt.
func (fr *FollowReader) Offset() int64 { return fr.committed }

// TruncatedTails counts torn final records observed when the follow
// ended (idle-exit or rotation) mid-record.
func (fr *FollowReader) TruncatedTails() uint64 { return fr.truncTails }

// Rotations counts file replacements detected and re-opened.
func (fr *FollowReader) Rotations() uint64 { return fr.rotations }

// Close releases the underlying file handle.
func (fr *FollowReader) Close() error {
	if fr.tail == nil {
		return nil
	}
	err := fr.tail.f.Close()
	fr.tail, fr.dec = nil, nil
	return err
}

// open waits for the file to exist, then builds the tail and decoder.
func (fr *FollowReader) open() error {
	var idleDeadline time.Time
	if fr.cfg.idleExit > 0 {
		idleDeadline = time.Now().Add(fr.cfg.idleExit)
	}
	for {
		f, err := os.Open(fr.path)
		if err == nil {
			fi, serr := f.Stat()
			if serr != nil {
				f.Close()
				return fmt.Errorf("pcapio: follow stat: %w", serr)
			}
			fr.tail = &tailFile{
				ctx:      fr.ctx,
				f:        f,
				path:     fr.path,
				fi:       fi,
				poll:     fr.cfg.poll,
				idleExit: fr.cfg.idleExit,
			}
			dec, derr := Open(fr.tail)
			if derr != nil {
				f.Close()
				fr.tail = nil
				return derr
			}
			fr.dec = dec
			return nil
		}
		if !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("pcapio: follow open: %w", err)
		}
		if !idleDeadline.IsZero() && time.Now().After(idleDeadline) {
			return io.EOF
		}
		select {
		case <-fr.ctx.Done():
			return fr.ctx.Err()
		case <-time.After(fr.cfg.poll):
		}
	}
}

// decOffset returns the current decoder's complete-record offset.
func (fr *FollowReader) decOffset() int64 {
	switch d := fr.dec.(type) {
	case *Reader:
		return d.Offset()
	case *NGReader:
		return d.Offset()
	}
	return 0
}

// ReadPacket returns the next packet from the tailed file, blocking
// through torn records until the writer completes them. io.EOF means the
// follow ended: idle-exit fired, or the file vanished for good.
func (fr *FollowReader) ReadPacket() (Packet, error) {
	for {
		if fr.dec == nil {
			if err := fr.open(); err != nil {
				if fr.ctx.Err() != nil {
					return Packet{}, fr.ctx.Err()
				}
				if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
					// Idle-exit while waiting for the file or its header.
					return Packet{}, io.EOF
				}
				return Packet{}, err
			}
		}
		pkt, err := fr.dec.ReadPacket()
		if err == nil {
			fr.committed = fr.decOffset()
			if fr.committed <= fr.resumeSkip {
				continue // already processed before the checkpoint
			}
			return pkt, nil
		}
		if fr.ctx.Err() != nil {
			return Packet{}, fr.ctx.Err()
		}
		if errors.Is(err, ErrTruncatedRecord) {
			// The tail gave up (idle-exit or rotation) mid-record: the
			// torn bytes are not an error, just the end of this follow.
			fr.truncTails++
			err = io.EOF
		}
		if err == io.EOF {
			if fr.tail != nil && fr.tail.rotated {
				// New file at the same path: start over from its head.
				fr.rotations++
				fr.tail.f.Close()
				fr.tail, fr.dec = nil, nil
				fr.committed, fr.resumeSkip = 0, 0
				continue
			}
			return Packet{}, io.EOF
		}
		return Packet{}, err
	}
}

// tailFile is an io.Reader over a growing file: EOF from the underlying
// file becomes a poll-and-retry loop that only reports io.EOF when the
// file rotates away or stays quiet past the idle-exit deadline.
type tailFile struct {
	ctx      context.Context
	f        *os.File
	path     string
	fi       os.FileInfo
	poll     time.Duration
	idleExit time.Duration

	delivered int64
	rotated   bool
}

func (t *tailFile) Read(p []byte) (int, error) {
	var idleDeadline time.Time
	if t.idleExit > 0 {
		idleDeadline = time.Now().Add(t.idleExit)
	}
	for {
		n, err := t.f.Read(p)
		if n > 0 {
			t.delivered += int64(n)
			return n, nil
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		// At the current end of the file. Rotation first: a new inode at
		// the path, a shrunk file (truncate-in-place), or a vanished path
		// all mean this handle will never grow again.
		if t.rotatedNow() {
			t.rotated = true
			return 0, io.EOF
		}
		if !idleDeadline.IsZero() && time.Now().After(idleDeadline) {
			return 0, io.EOF
		}
		select {
		case <-t.ctx.Done():
			return 0, t.ctx.Err()
		case <-time.After(t.poll):
		}
	}
}

func (t *tailFile) rotatedNow() bool {
	fi, err := os.Stat(t.path)
	if err != nil {
		// Path gone: mid-rotation. Treat as rotated; the reopen path
		// waits for the replacement to appear.
		return true
	}
	if !os.SameFile(t.fi, fi) {
		return true
	}
	return fi.Size() < t.delivered
}
