package pcapio

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// FuzzReader checks the pcap reader never panics and bounds its record
// sizes on arbitrary inputs.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.WritePacket(time.Unix(1, 0), []byte("one"))
	_ = w.WritePacket(time.Unix(2, 0), bytes.Repeat([]byte{9}, 300))
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xA1}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			pkt, err := r.ReadPacket()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if len(pkt.Data) > len(data) {
				t.Fatal("record larger than input")
			}
		}
	})
}
