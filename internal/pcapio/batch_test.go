package pcapio

import (
	"bytes"
	"testing"
	"time"
)

// TestAppendRecordMatchesWritePacket checks that a file assembled from
// AppendRecord batches is byte-identical to one written packet by packet,
// across resolutions and through snaplen truncation.
func TestAppendRecordMatchesWritePacket(t *testing.T) {
	pkts := [][]byte{
		bytes.Repeat([]byte{0xAA}, 60),
		bytes.Repeat([]byte{0xBB}, 1500),
		bytes.Repeat([]byte{0xCC}, 200), // truncated under snaplen 128
		{},
	}
	base := time.Date(2020, 4, 5, 12, 0, 0, 987654321, time.UTC)

	for _, tc := range []struct {
		name string
		opts []WriterOption
	}{
		{"micro", nil},
		{"nano", []WriterOption{WithNanosecondResolution()}},
		{"snaplen", []WriterOption{WithSnapLen(128)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var perPacket bytes.Buffer
			pw := NewWriter(&perPacket, tc.opts...)
			for i, p := range pkts {
				if err := pw.WritePacket(base.Add(time.Duration(i)*time.Millisecond), p); err != nil {
					t.Fatal(err)
				}
			}
			if err := pw.Flush(); err != nil {
				t.Fatal(err)
			}

			var batched bytes.Buffer
			bw := NewWriter(&batched, tc.opts...)
			var batch []byte
			for i, p := range pkts {
				batch = bw.AppendRecord(batch, base.Add(time.Duration(i)*time.Millisecond), p)
			}
			if err := bw.WriteBatch(batch); err != nil {
				t.Fatal(err)
			}
			if err := bw.Flush(); err != nil {
				t.Fatal(err)
			}

			if !bytes.Equal(perPacket.Bytes(), batched.Bytes()) {
				t.Fatal("batched file differs from per-packet file")
			}
		})
	}
}

// TestWriteBatchRoundTrip reads a batched file back through the Reader.
func TestWriteBatchRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WithNanosecondResolution())
	ts := time.Date(2020, 5, 6, 0, 0, 1, 42, time.UTC)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := w.WriteBatch(w.AppendRecord(nil, ts, data)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !pkt.Timestamp.Equal(ts) || !bytes.Equal(pkt.Data, data) || pkt.OrigLen != len(data) {
		t.Fatalf("round trip mismatch: %v %x orig=%d", pkt.Timestamp, pkt.Data, pkt.OrigLen)
	}
}
