package pcapio

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// makePcap returns a classic-pcap capture of n small packets plus the
// byte offset of every record boundary (offsets[i] = end of record i).
func makePcap(t *testing.T, n int) ([]byte, []int64) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	base := time.Date(2020, 4, 5, 0, 0, 0, 0, time.UTC)
	var offsets []int64
	for i := 0; i < n; i++ {
		data := bytes.Repeat([]byte{byte(i)}, 20+i)
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Second), data); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, int64(buf.Len()))
	}
	return buf.Bytes(), offsets
}

// TestTruncatedTailPcap pins the torn-final-record contract for classic
// pcap: a cut anywhere inside the last record yields ErrTruncatedRecord
// carrying the offset of the last complete record, and the packets
// before the tear all decode — instead of the old behavior of aborting
// the whole run on a generic wrapped ErrUnexpectedEOF.
func TestTruncatedTailPcap(t *testing.T) {
	blob, offsets := makePcap(t, 3)
	lastComplete := offsets[1] // end of record 2 of 3

	// Cut points inside record 3: mid header, end of header, mid body,
	// one byte short of complete.
	for _, cut := range []int64{lastComplete + 3, lastComplete + recordHeaderLen, lastComplete + recordHeaderLen + 5, offsets[2] - 1} {
		r, err := NewReader(bytes.NewReader(blob[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := r.ReadPacket(); err != nil {
				t.Fatalf("cut=%d packet %d: %v", cut, i, err)
			}
		}
		_, err = r.ReadPacket()
		if !errors.Is(err, ErrTruncatedRecord) {
			t.Fatalf("cut=%d: got %v, want ErrTruncatedRecord", cut, err)
		}
		var te *TruncatedError
		if !errors.As(err, &te) {
			t.Fatalf("cut=%d: error %T does not unwrap to *TruncatedError", cut, err)
		}
		if te.Offset != lastComplete {
			t.Fatalf("cut=%d: truncation offset = %d, want %d", cut, te.Offset, lastComplete)
		}
		if r.Offset() != lastComplete {
			t.Fatalf("cut=%d: Reader.Offset() = %d, want %d", cut, r.Offset(), lastComplete)
		}
	}

	// A clean cut exactly at a record boundary is a clean EOF, not a tear.
	r, err := NewReader(bytes.NewReader(blob[:lastComplete]))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := r.ReadPacket(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.ReadPacket(); err != io.EOF {
		t.Fatalf("boundary cut: got %v, want io.EOF", err)
	}
}

// TestTruncatedTailPcapng is the pcapng counterpart: tears inside the
// final EPB — envelope, body, or trailer — surface as ErrTruncatedRecord
// with the last complete block boundary as the resume offset.
func TestTruncatedTailPcapng(t *testing.T) {
	var buf bytes.Buffer
	w := NewNGWriter(&buf)
	base := time.Date(2020, 4, 5, 0, 0, 0, 0, time.UTC)
	var offsets []int64
	for i := 0; i < 3; i++ {
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Second), bytes.Repeat([]byte{byte(i)}, 30)); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, int64(buf.Len()))
	}
	blob := buf.Bytes()
	lastComplete := offsets[1]

	for _, cut := range []int64{lastComplete + 3, lastComplete + 8, lastComplete + 20, offsets[2] - 2} {
		r, err := NewNGReader(bytes.NewReader(blob[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := r.ReadPacket(); err != nil {
				t.Fatalf("cut=%d packet %d: %v", cut, i, err)
			}
		}
		_, err = r.ReadPacket()
		if !errors.Is(err, ErrTruncatedRecord) {
			t.Fatalf("cut=%d: got %v, want ErrTruncatedRecord", cut, err)
		}
		var te *TruncatedError
		if !errors.As(err, &te) {
			t.Fatalf("cut=%d: error %T does not unwrap to *TruncatedError", cut, err)
		}
		if te.Offset != lastComplete {
			t.Fatalf("cut=%d: truncation offset = %d, want %d", cut, te.Offset, lastComplete)
		}
		if r.Offset() != lastComplete {
			t.Fatalf("cut=%d: NGReader.Offset() = %d, want %d", cut, r.Offset(), lastComplete)
		}
	}
}

// TestFollowReaderTail drives a live-writer scenario: the file grows in
// deliberately torn chunks while a FollowReader drains it. Every packet
// must come out exactly once, in order, and the idle-exit must end the
// follow with a clean io.EOF once the writer stops.
func TestFollowReaderTail(t *testing.T) {
	blob, _ := makePcap(t, 40)
	path := filepath.Join(t.TempDir(), "live.pcap")

	// Append in 37-byte chunks: record headers are 16 bytes and bodies
	// 20..59, so nearly every chunk boundary tears a record.
	go func() {
		for off := 0; off < len(blob); off += 37 {
			end := off + 37
			if end > len(blob) {
				end = len(blob)
			}
			f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				panic(err)
			}
			if _, err := f.Write(blob[off:end]); err != nil {
				panic(err)
			}
			f.Close()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	fr := NewFollowReader(context.Background(), path,
		FollowPoll(5*time.Millisecond), FollowIdleExit(500*time.Millisecond))
	defer fr.Close()
	var got int
	for {
		pkt, err := fr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if want := bytes.Repeat([]byte{byte(got)}, 20+got); !bytes.Equal(pkt.Data, want) {
			t.Fatalf("packet %d: got %d bytes %v...", got, len(pkt.Data), pkt.Data[:4])
		}
		got++
	}
	if got != 40 {
		t.Fatalf("followed %d packets, want 40", got)
	}
	if fr.Offset() != int64(len(blob)) {
		t.Fatalf("final offset %d, want %d", fr.Offset(), len(blob))
	}
}

// TestFollowReaderResumeAt pins the checkpoint-resume contract: a new
// reader given the committed offset of packet k delivers exactly the
// packets after k.
func TestFollowReaderResumeAt(t *testing.T) {
	blob, offsets := makePcap(t, 10)
	path := filepath.Join(t.TempDir(), "resume.pcap")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	fr := NewFollowReader(context.Background(), path,
		FollowPoll(time.Millisecond), FollowIdleExit(50*time.Millisecond),
		FollowResumeAt(offsets[6])) // packets 0..6 already processed
	defer fr.Close()
	var got []byte
	for {
		pkt, err := fr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, pkt.Data[0])
	}
	if want := []byte{7, 8, 9}; !bytes.Equal(got, want) {
		t.Fatalf("resumed packets %v, want %v", got, want)
	}
}

// TestFollowReaderRotation replaces the followed file with a fresh
// capture mid-follow; the reader must notice the new inode and deliver
// the new file's packets from its beginning.
func TestFollowReaderRotation(t *testing.T) {
	first, _ := makePcap(t, 5)
	dir := t.TempDir()
	path := filepath.Join(dir, "rot.pcap")
	if err := os.WriteFile(path, first, 0o644); err != nil {
		t.Fatal(err)
	}

	fr := NewFollowReader(context.Background(), path,
		FollowPoll(time.Millisecond), FollowIdleExit(300*time.Millisecond))
	defer fr.Close()

	for i := 0; i < 5; i++ {
		if _, err := fr.ReadPacket(); err != nil {
			t.Fatalf("pre-rotation packet %d: %v", i, err)
		}
	}

	// Rotate: write the replacement beside it and rename over the path.
	second, _ := makePcap(t, 3)
	next := filepath.Join(dir, "rot.pcap.new")
	if err := os.WriteFile(next, second, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(next, path); err != nil {
		t.Fatal(err)
	}

	var got int
	for {
		_, err := fr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got++
	}
	if got != 3 {
		t.Fatalf("post-rotation packets = %d, want 3", got)
	}
	if fr.Rotations() != 1 {
		t.Fatalf("Rotations() = %d, want 1", fr.Rotations())
	}
}

// TestFollowReaderCancel pins prompt shutdown: a ReadPacket blocked on a
// quiet file must return the context's error as soon as it is cancelled,
// not after the next packet arrives.
func TestFollowReaderCancel(t *testing.T) {
	blob, _ := makePcap(t, 1)
	path := filepath.Join(t.TempDir(), "quiet.pcap")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	fr := NewFollowReader(ctx, path, FollowPoll(5*time.Millisecond))
	defer fr.Close()
	if _, err := fr.ReadPacket(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := fr.ReadPacket() // blocks: no more data, no idle-exit
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled ReadPacket did not return promptly")
	}
}
