package pcapio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

func TestNGRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewNGWriter(&buf)
	base := time.Date(2020, 4, 5, 12, 0, 0, 123456000, time.UTC)
	pkts := [][]byte{
		[]byte("first"),
		bytes.Repeat([]byte{0xEE}, 1000),
		{},
	}
	for i, p := range pkts {
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Minute), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewNGReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range pkts {
		got, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(got.Data, want) || got.OrigLen != len(want) {
			t.Errorf("packet %d: %d bytes (orig %d)", i, len(got.Data), got.OrigLen)
		}
		wantTS := base.Add(time.Duration(i) * time.Minute)
		if d := got.Timestamp.Sub(wantTS); d < -time.Microsecond || d > time.Microsecond {
			t.Errorf("packet %d ts skew %v", i, d)
		}
	}
	if _, err := r.ReadPacket(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestOpenSniffsBothFormats(t *testing.T) {
	// Classic.
	var classic bytes.Buffer
	cw := NewWriter(&classic)
	_ = cw.WritePacket(time.Unix(5, 0), []byte("classic"))
	_ = cw.Flush()
	r, err := Open(&classic)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.(*Reader); !ok {
		t.Errorf("classic sniffed as %T", r)
	}
	pkt, err := r.ReadPacket()
	if err != nil || string(pkt.Data) != "classic" {
		t.Fatalf("classic read: %v %q", err, pkt.Data)
	}

	// pcapng.
	var ng bytes.Buffer
	nw := NewNGWriter(&ng)
	_ = nw.WritePacket(time.Unix(6, 0), []byte("nextgen"))
	_ = nw.Flush()
	r, err = Open(&ng)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.(*NGReader); !ok {
		t.Errorf("ng sniffed as %T", r)
	}
	pkt, err = r.ReadPacket()
	if err != nil || string(pkt.Data) != "nextgen" {
		t.Fatalf("ng read: %v %q", err, pkt.Data)
	}

	// Garbage.
	if _, err := Open(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6})); err == nil {
		t.Error("garbage accepted")
	}
}

func TestNGReaderSkipsUnknownBlocks(t *testing.T) {
	var buf bytes.Buffer
	w := NewNGWriter(&buf)
	_ = w.WritePacket(time.Unix(1, 0), []byte("data"))
	_ = w.Flush()
	blob := buf.Bytes()

	// Append an unknown block type (e.g. a Name Resolution Block, 4).
	var extra bytes.Buffer
	body := []byte{0, 0, 0, 0}
	total := uint32(12 + len(body))
	_ = binary.Write(&extra, binary.LittleEndian, uint32(4))
	_ = binary.Write(&extra, binary.LittleEndian, total)
	extra.Write(body)
	_ = binary.Write(&extra, binary.LittleEndian, total)

	full := append(append([]byte{}, blob...), extra.Bytes()...)
	r, err := NewNGReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err != io.EOF {
		t.Errorf("unknown trailing block: %v", err)
	}
}

func TestNGReaderRejectsGarbage(t *testing.T) {
	if _, err := NewNGReader(bytes.NewReader(make([]byte, 32))); err == nil {
		t.Error("zero blocks accepted")
	}
	// A truncated SHB.
	var buf bytes.Buffer
	w := NewNGWriter(&buf)
	_ = w.Flush()
	blob := buf.Bytes()
	if _, err := NewNGReader(bytes.NewReader(blob[:10])); err == nil {
		t.Error("truncated SHB accepted")
	}
}

func TestNGReaderTrailerMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewNGWriter(&buf)
	_ = w.WritePacket(time.Unix(1, 0), []byte("abcd"))
	_ = w.Flush()
	blob := buf.Bytes()
	// Corrupt the last 4 bytes (the EPB trailer length).
	blob[len(blob)-1] ^= 0xFF
	r, err := NewNGReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); !errors.Is(err, ErrBadNG) {
		t.Errorf("corrupted trailer: %v", err)
	}
}

func TestForEachPacketHelper(t *testing.T) {
	var buf bytes.Buffer
	w := NewNGWriter(&buf)
	for i := 0; i < 5; i++ {
		_ = w.WritePacket(time.Unix(int64(i), 0), []byte{byte(i)})
	}
	_ = w.Flush()
	r, err := Open(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := ForEachPacket(r, func(p Packet) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("visited %d packets", n)
	}
}
