package pcapio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// pcapng (the pcap Next Generation format) support: modern capture tools
// (tcpdump ≥4.99, Wireshark) default to it, so the analysis pipeline
// accepts both formats. The reader handles Section Header, Interface
// Description, Enhanced Packet and Simple Packet blocks in either byte
// order with per-interface timestamp resolution; the writer emits the
// canonical little-endian SHB + one Ethernet IDB + EPBs.

// pcapng block types.
const (
	ngBlockSHB uint32 = 0x0A0D0D0A
	ngBlockIDB uint32 = 0x00000001
	ngBlockSPB uint32 = 0x00000003
	ngBlockEPB uint32 = 0x00000006
)

// ngByteOrderMagic distinguishes endianness inside the SHB.
const ngByteOrderMagic uint32 = 0x1A2B3C4D

// ErrBadNG reports a malformed pcapng stream.
var ErrBadNG = errors.New("pcapio: malformed pcapng")

// PacketReader is the common interface of the pcap and pcapng readers;
// Open returns one after sniffing the magic.
type PacketReader interface {
	// ReadPacket returns the next packet or io.EOF. The returned Data may
	// alias an internal buffer overwritten by the next call.
	ReadPacket() (Packet, error)
}

// ForEachPacket drains a PacketReader.
func ForEachPacket(r PacketReader, fn func(Packet) error) error {
	for {
		pkt, err := r.ReadPacket()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(pkt); err != nil {
			return err
		}
	}
}

// Open sniffs the stream's magic number and returns the matching reader
// (classic pcap or pcapng).
func Open(r io.Reader) (PacketReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("pcapio: sniffing magic: %w", err)
	}
	if binary.LittleEndian.Uint32(magic) == ngBlockSHB {
		return NewNGReader(br)
	}
	return NewReader(br)
}

// NGWriter emits a pcapng stream.
type NGWriter struct {
	w         *bufio.Writer
	headerOut bool
}

// NewNGWriter wraps w; the section and interface headers are written
// lazily.
func NewNGWriter(w io.Writer) *NGWriter {
	return &NGWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// writeBlock frames body (without the type/length envelope) as a block.
func (w *NGWriter) writeBlock(typ uint32, body []byte) error {
	pad := (4 - len(body)%4) % 4
	total := uint32(12 + len(body) + pad)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], typ)
	binary.LittleEndian.PutUint32(hdr[4:], total)
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(body); err != nil {
		return err
	}
	if pad > 0 {
		if _, err := w.w.Write(make([]byte, pad)); err != nil {
			return err
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], total)
	_, err := w.w.Write(tail[:])
	return err
}

func (w *NGWriter) writeHeader() error {
	// Section Header Block.
	shb := make([]byte, 16)
	binary.LittleEndian.PutUint32(shb[0:], ngByteOrderMagic)
	binary.LittleEndian.PutUint16(shb[4:], 1) // major
	binary.LittleEndian.PutUint16(shb[6:], 0) // minor
	// Section length unknown: -1.
	binary.LittleEndian.PutUint64(shb[8:], ^uint64(0))
	if err := w.writeBlock(ngBlockSHB, shb); err != nil {
		return err
	}
	// Interface Description Block: Ethernet, snaplen 65535, default
	// microsecond timestamps (no if_tsresol option).
	idb := make([]byte, 8)
	binary.LittleEndian.PutUint16(idb[0:], uint16(LinkTypeEthernet))
	binary.LittleEndian.PutUint32(idb[4:], DefaultSnapLen)
	if err := w.writeBlock(ngBlockIDB, idb); err != nil {
		return err
	}
	w.headerOut = true
	return nil
}

// WritePacket appends one Enhanced Packet Block.
func (w *NGWriter) WritePacket(ts time.Time, data []byte) error {
	if !w.headerOut {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	usec := uint64(ts.UnixMicro())
	body := make([]byte, 20+len(data))
	binary.LittleEndian.PutUint32(body[0:], 0) // interface 0
	binary.LittleEndian.PutUint32(body[4:], uint32(usec>>32))
	binary.LittleEndian.PutUint32(body[8:], uint32(usec))
	binary.LittleEndian.PutUint32(body[12:], uint32(len(data)))
	binary.LittleEndian.PutUint32(body[16:], uint32(len(data)))
	copy(body[20:], data)
	return w.writeBlock(ngBlockEPB, body)
}

// Flush writes buffered data (and headers for an empty capture).
func (w *NGWriter) Flush() error {
	if !w.headerOut {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// ngInterface carries per-interface decoding state.
type ngInterface struct {
	linkType uint16
	tsScale  time.Duration // duration of one timestamp unit
	snapLen  uint32
}

// NGReader consumes a pcapng stream.
type NGReader struct {
	r      *bufio.Reader
	order  binary.ByteOrder
	ifaces []ngInterface
	// off counts stream bytes consumed by complete blocks; a torn final
	// block never advances it (see Offset).
	off int64
	buf []byte
}

// NewNGReader parses the leading Section Header Block.
func NewNGReader(r io.Reader) (*NGReader, error) {
	nr := &NGReader{r: bufio.NewReaderSize(r, 1<<16)}
	typ, body, err := nr.readBlockRaw(binary.LittleEndian)
	if err != nil {
		return nil, err
	}
	if typ != ngBlockSHB || len(body) < 16 {
		return nil, fmt.Errorf("%w: no section header", ErrBadNG)
	}
	switch binary.LittleEndian.Uint32(body) {
	case ngByteOrderMagic:
		nr.order = binary.LittleEndian
	case 0x4D3C2B1A:
		nr.order = binary.BigEndian
	default:
		return nil, fmt.Errorf("%w: bad byte-order magic", ErrBadNG)
	}
	return nr, nil
}

// Offset returns the number of stream bytes consumed by complete blocks
// so far — the resume point after ErrTruncatedRecord.
func (nr *NGReader) Offset() int64 { return nr.off }

// readBlockRaw reads one block envelope with the given byte order,
// returning the body (between the envelope fields).
func (nr *NGReader) readBlockRaw(order binary.ByteOrder) (uint32, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(nr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			// Partial block envelope: torn tail of a live capture.
			return 0, nil, &TruncatedError{Offset: nr.off}
		}
		return 0, nil, fmt.Errorf("%w: block header: %v", ErrBadNG, err)
	}
	typ := order.Uint32(hdr[0:])
	total := order.Uint32(hdr[4:])
	// SHB's length field is always readable in LE for sniffing because we
	// re-parse with the right order below; for robustness check bounds.
	if typ == ngBlockSHB {
		// The byte-order magic follows; peek it to get the real length.
		var magic [4]byte
		if _, err := io.ReadFull(nr.r, magic[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return 0, nil, &TruncatedError{Offset: nr.off}
			}
			return 0, nil, fmt.Errorf("%w: SHB magic: %v", ErrBadNG, err)
		}
		if binary.BigEndian.Uint32(magic[:]) == ngByteOrderMagic {
			order = binary.BigEndian
			total = order.Uint32(hdr[4:])
		} else {
			order = binary.LittleEndian
			total = order.Uint32(hdr[4:])
		}
		if total < 28 || total > 1<<20 {
			return 0, nil, fmt.Errorf("%w: SHB length %d", ErrBadNG, total)
		}
		// Already consumed: 8 envelope bytes + 4 magic bytes. The block's
		// remaining bytes are total-12, of which the last 4 are the
		// trailing length.
		rest := make([]byte, total-12)
		if _, err := io.ReadFull(nr.r, rest); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return 0, nil, &TruncatedError{Offset: nr.off}
			}
			return 0, nil, fmt.Errorf("%w: SHB body: %v", ErrBadNG, err)
		}
		body := append(magic[:], rest[:len(rest)-4]...)
		nr.off += int64(total)
		return typ, body, nil
	}
	if total < 12 || total > 1<<26 {
		return 0, nil, fmt.Errorf("%w: block length %d", ErrBadNG, total)
	}
	body := make([]byte, total-12)
	if _, err := io.ReadFull(nr.r, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, &TruncatedError{Offset: nr.off}
		}
		return 0, nil, fmt.Errorf("%w: block body: %v", ErrBadNG, err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(nr.r, tail[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, &TruncatedError{Offset: nr.off}
		}
		return 0, nil, fmt.Errorf("%w: block trailer: %v", ErrBadNG, err)
	}
	if order.Uint32(tail[:]) != total {
		return 0, nil, fmt.Errorf("%w: trailer length mismatch", ErrBadNG)
	}
	nr.off += int64(total)
	return typ, body, nil
}

// handleIDB registers an interface.
func (nr *NGReader) handleIDB(body []byte) error {
	if len(body) < 8 {
		return fmt.Errorf("%w: short IDB", ErrBadNG)
	}
	iface := ngInterface{
		linkType: nr.order.Uint16(body[0:]),
		snapLen:  nr.order.Uint32(body[4:]),
		tsScale:  time.Microsecond,
	}
	// Scan options for if_tsresol (code 9).
	opts := body[8:]
	for len(opts) >= 4 {
		code := nr.order.Uint16(opts[0:])
		olen := int(nr.order.Uint16(opts[2:]))
		opts = opts[4:]
		if olen > len(opts) {
			break
		}
		if code == 9 && olen >= 1 {
			v := opts[0]
			if v&0x80 == 0 {
				scale := time.Second
				for i := byte(0); i < v && scale > 1; i++ {
					scale /= 10
				}
				iface.tsScale = scale
			} else {
				// Base-2 resolution.
				scale := float64(time.Second)
				for i := byte(0); i < v&0x7F; i++ {
					scale /= 2
				}
				if scale < 1 {
					scale = 1
				}
				iface.tsScale = time.Duration(scale)
			}
		}
		opts = opts[(olen+3)&^3:]
	}
	nr.ifaces = append(nr.ifaces, iface)
	return nil
}

// ReadPacket returns the next captured packet, skipping non-packet blocks.
func (nr *NGReader) ReadPacket() (Packet, error) {
	for {
		typ, body, err := nr.readBlockRaw(nr.order)
		if err != nil {
			return Packet{}, err
		}
		switch typ {
		case ngBlockSHB:
			// New section: reset interfaces.
			nr.ifaces = nr.ifaces[:0]
		case ngBlockIDB:
			if err := nr.handleIDB(body); err != nil {
				return Packet{}, err
			}
		case ngBlockEPB:
			if len(body) < 20 {
				return Packet{}, fmt.Errorf("%w: short EPB", ErrBadNG)
			}
			ifID := nr.order.Uint32(body[0:])
			if int(ifID) >= len(nr.ifaces) {
				return Packet{}, fmt.Errorf("%w: EPB interface %d undeclared", ErrBadNG, ifID)
			}
			iface := nr.ifaces[ifID]
			if iface.linkType != uint16(LinkTypeEthernet) {
				continue // skip non-Ethernet interfaces
			}
			tsUnits := uint64(nr.order.Uint32(body[4:]))<<32 | uint64(nr.order.Uint32(body[8:]))
			capLen := nr.order.Uint32(body[12:])
			origLen := nr.order.Uint32(body[16:])
			if int(capLen) > len(body)-20 {
				return Packet{}, fmt.Errorf("%w: EPB caplen %d", ErrBadNG, capLen)
			}
			if cap(nr.buf) < int(capLen) {
				nr.buf = make([]byte, capLen)
			}
			nr.buf = nr.buf[:capLen]
			copy(nr.buf, body[20:20+capLen])
			ts := time.Unix(0, int64(tsUnits)*int64(iface.tsScale)).UTC()
			return Packet{Timestamp: ts, Data: nr.buf, OrigLen: int(origLen)}, nil
		case ngBlockSPB:
			if len(nr.ifaces) == 0 {
				return Packet{}, fmt.Errorf("%w: SPB before IDB", ErrBadNG)
			}
			if len(body) < 4 {
				return Packet{}, fmt.Errorf("%w: short SPB", ErrBadNG)
			}
			origLen := nr.order.Uint32(body[0:])
			data := body[4:]
			if cap(nr.buf) < len(data) {
				nr.buf = make([]byte, len(data))
			}
			nr.buf = nr.buf[:len(data)]
			copy(nr.buf, data)
			if int(origLen) < len(nr.buf) {
				nr.buf = nr.buf[:origLen]
			}
			return Packet{Timestamp: time.Unix(0, 0).UTC(), Data: nr.buf, OrigLen: int(origLen)}, nil
		default:
			// Name resolution, statistics, custom blocks: skip.
		}
	}
}
