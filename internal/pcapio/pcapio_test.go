package pcapio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func roundTrip(t *testing.T, opts ...WriterOption) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, opts...)
	base := time.Date(2020, 4, 5, 0, 0, 0, 123456789, time.UTC)
	pkts := [][]byte{
		[]byte("first packet"),
		bytes.Repeat([]byte{0xAB}, 1500),
		{},
		[]byte("last"),
	}
	for i, p := range pkts {
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Second), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range pkts {
		got, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(got.Data, want) {
			t.Errorf("packet %d data mismatch: %d vs %d bytes", i, len(got.Data), len(want))
		}
		if got.OrigLen != len(want) {
			t.Errorf("packet %d origlen = %d", i, got.OrigLen)
		}
		wantTS := base.Add(time.Duration(i) * time.Second)
		diff := got.Timestamp.Sub(wantTS)
		if diff < 0 {
			diff = -diff
		}
		maxSkew := time.Microsecond
		if r.NanosecondResolution() {
			maxSkew = 0
		}
		if diff > maxSkew {
			t.Errorf("packet %d timestamp skew %v", i, diff)
		}
	}
	if _, err := r.ReadPacket(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestRoundTripMicroseconds(t *testing.T) { roundTrip(t) }

func TestRoundTripNanoseconds(t *testing.T) { roundTrip(t, WithNanosecondResolution()) }

func TestBigEndianFile(t *testing.T) {
	// Hand-craft a big-endian microsecond file with one packet.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:], MagicMicroseconds)
	binary.BigEndian.PutUint16(hdr[4:], 2)
	binary.BigEndian.PutUint16(hdr[6:], 4)
	binary.BigEndian.PutUint32(hdr[16:], 65535)
	binary.BigEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:], 1586044800) // 2020-04-05
	binary.BigEndian.PutUint32(rec[4:], 42)
	binary.BigEndian.PutUint32(rec[8:], 3)
	binary.BigEndian.PutUint32(rec[12:], 3)
	buf.Write(rec)
	buf.Write([]byte{1, 2, 3})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pkt.Data, []byte{1, 2, 3}) {
		t.Errorf("data = %v", pkt.Data)
	}
	if pkt.Timestamp.Unix() != 1586044800 || pkt.Timestamp.Nanosecond() != 42000 {
		t.Errorf("timestamp = %v", pkt.Timestamp)
	}
}

func TestRejectBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v", err)
	}
}

func TestRejectBadLinkType(t *testing.T) {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], MagicMicroseconds)
	binary.LittleEndian.PutUint32(hdr[20:], 101) // DLT_RAW
	if _, err := NewReader(bytes.NewReader(hdr)); !errors.Is(err, ErrBadLinkType) {
		t.Errorf("err = %v", err)
	}
}

func TestRejectShortHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short header accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(time.Now(), []byte("full packet here")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-4]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err == nil {
		t.Error("truncated record accepted")
	}
}

func TestSnapLenTruncatesData(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WithSnapLen(10))
	big := bytes.Repeat([]byte{7}, 100)
	if err := w.WritePacket(time.Unix(0, 0), big); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.SnapLen() != 10 {
		t.Errorf("snaplen = %d", r.SnapLen())
	}
	pkt, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt.Data) != 10 || pkt.OrigLen != 100 {
		t.Errorf("cap/orig = %d/%d", len(pkt.Data), pkt.OrigLen)
	}
}

func TestFlushWritesHeaderForEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err != io.EOF {
		t.Errorf("empty file: %v", err)
	}
}

func TestForEach(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		if err := w.WritePacket(time.Unix(int64(i), 0), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	err = r.ForEach(func(p Packet) error {
		if p.Data[0] != byte(count) {
			t.Errorf("packet %d has data %v", count, p.Data)
		}
		count++
		return nil
	})
	if err != nil || count != 10 {
		t.Errorf("ForEach: err=%v count=%d", err, count)
	}
}

func TestForEachPropagatesCallbackError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.WritePacket(time.Unix(0, 0), []byte{1})
	_ = w.Flush()
	r, _ := NewReader(&buf)
	sentinel := errors.New("stop")
	if err := r.ForEach(func(Packet) error { return sentinel }); err != sentinel {
		t.Errorf("err = %v", err)
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(seed int64, nanos bool) bool {
		r := rand.New(rand.NewSource(seed))
		var opts []WriterOption
		if nanos {
			opts = append(opts, WithNanosecondResolution())
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, opts...)
		n := 1 + r.Intn(20)
		datas := make([][]byte, n)
		for i := range datas {
			datas[i] = make([]byte, r.Intn(200))
			r.Read(datas[i])
			ts := time.Unix(int64(r.Int31()), int64(r.Intn(1e9))).UTC()
			if err := w.WritePacket(ts, datas[i]); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for i := range datas {
			pkt, err := rd.ReadPacket()
			if err != nil || !bytes.Equal(pkt.Data, datas[i]) {
				return false
			}
		}
		_, err = rd.ReadPacket()
		return err == io.EOF
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkWritePacket(b *testing.B) {
	w := NewWriter(io.Discard)
	data := make([]byte, 128)
	ts := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.WritePacket(ts, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadPacket(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	data := make([]byte, 128)
	for i := 0; i < 1000; i++ {
		_ = w.WritePacket(time.Unix(0, 0), data)
	}
	_ = w.Flush()
	blob := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(blob))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := r.ReadPacket(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}
