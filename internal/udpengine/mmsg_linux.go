//go:build linux && (amd64 || arm64)

package udpengine

import (
	"encoding/binary"
	"net/netip"
	"syscall"
	"unsafe"
)

// The batched syscall layer: hand-laid struct mirrors of the kernel's
// iovec/msghdr/mmsghdr ABI (LP64 layout — identical on linux/amd64 and
// linux/arm64) plus thin recvmmsg/sendmmsg wrappers over Syscall6, so
// the engine needs no module dependency for golang.org/x/sys.

// iovec is struct iovec: one scatter/gather slot.
type iovec struct {
	base *byte
	len  uint64
}

// msghdr is struct msghdr (56 bytes on LP64).
type msghdr struct {
	name       *byte
	namelen    uint32
	_          [4]byte
	iov        *iovec
	iovlen     uint64
	control    *byte
	controllen uint64
	flags      int32
	_          [4]byte
}

// mmsghdr is struct mmsghdr: a msghdr plus the kernel-written per-packet
// byte count.
type mmsghdr struct {
	hdr msghdr
	len uint32
	_   [4]byte
}

// sockaddrSlot is the per-datagram peer-address buffer: large enough for
// sockaddr_in6 (28 bytes), rounded to a power of two so slot offsets are
// shift-computable.
const sockaddrSlot = 32

// soReusePort is SO_REUSEPORT, absent from the frozen stdlib syscall
// package (Linux ≥ 3.9). 15 on every arch this file builds for.
const soReusePort = 0xf

// recvmmsg drains up to len(hs) datagrams in one syscall. Non-blocking
// (pair with MSG_DONTWAIT and the runtime poller); returns the number of
// populated mmsghdrs.
func recvmmsg(fd uintptr, hs []mmsghdr, flags int) (int, error) {
	for {
		n, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&hs[0])), uintptr(len(hs)),
			uintptr(flags), 0, 0)
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			return 0, errno
		}
		return int(n), nil
	}
}

// sendmmsg transmits up to len(hs) datagrams in one syscall, returning
// how many the kernel accepted (possibly fewer — the caller resumes from
// there).
func sendmmsg(fd uintptr, hs []mmsghdr, flags int) (int, error) {
	for {
		n, _, errno := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&hs[0])), uintptr(len(hs)),
			uintptr(flags), 0, 0)
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			return 0, errno
		}
		return int(n), nil
	}
}

// decodeSockaddr converts a kernel-written sockaddr buffer into a
// netip.AddrPort without allocating. Unknown families return the zero
// AddrPort.
func decodeSockaddr(b []byte) netip.AddrPort {
	if len(b) < 8 {
		return netip.AddrPort{}
	}
	family := binary.LittleEndian.Uint16(b[0:2]) // sa_family_t is host-endian
	port := binary.BigEndian.Uint16(b[2:4])      // sin_port is network-endian
	switch family {
	case syscall.AF_INET:
		return netip.AddrPortFrom(netip.AddrFrom4([4]byte(b[4:8])), port)
	case syscall.AF_INET6:
		if len(b) < 24 {
			return netip.AddrPort{}
		}
		return netip.AddrPortFrom(netip.AddrFrom16([16]byte(b[8:24])), port)
	}
	return netip.AddrPort{}
}
