//go:build linux && (amd64 || arm64)

package udpengine

import (
	"bytes"
	"fmt"
	"net"
	"net/netip"
	"syscall"
	"testing"
	"time"
	"unsafe"

	"dnscentral/internal/telemetry"
)

// forgeGROCmsg hand-builds the control buffer recvmsg would deliver for
// a GRO-coalesced payload: a UDP_GRO cmsg carrying segSize as an int32.
func forgeGROCmsg(segSize int32) ([]byte, uint64) {
	buf := alignedBytes(groCtlSlot)
	h := (*cmsghdr)(unsafe.Pointer(&buf[0]))
	h.len = cmsgHdrLen + 4 // CMSG_LEN(4)
	h.level = solUDP
	h.typ = udpGRO
	*(*int32)(unsafe.Pointer(&buf[cmsgHdrLen])) = segSize
	return buf, cmsgHdrLen + 8 // CMSG_SPACE(4)
}

// TestGROCmsgParse pins the cmsg walk against hand-laid buffers: the
// forged coalesce cmsg parses back, foreign cmsgs are stepped over, and
// truncated or absent buffers read as "not coalesced".
func TestGROCmsgParse(t *testing.T) {
	buf, clen := forgeGROCmsg(1232)
	if got := groSegSize(buf, clen); got != 1232 {
		t.Fatalf("groSegSize = %d, want 1232", got)
	}
	// A foreign cmsg (level/type the engine does not know) before the
	// GRO one: the walk must skip it by its aligned length.
	wide := alignedBytes(2 * groCtlSlot)
	fh := (*cmsghdr)(unsafe.Pointer(&wide[0]))
	fh.len = cmsgHdrLen + 4
	fh.level = syscall.SOL_SOCKET
	fh.typ = 0x29 // SO_TIMESTAMPNS-ish: anything non-GRO
	copy(wide[cmsgHdrLen+8:], buf[:clen])
	if got := groSegSize(wide, cmsgHdrLen+8+clen); got != 1232 {
		t.Fatalf("groSegSize with preceding foreign cmsg = %d, want 1232", got)
	}
	if got := groSegSize(buf, 0); got != 0 {
		t.Fatalf("groSegSize(empty) = %d, want 0", got)
	}
	if got := groSegSize(buf, cmsgHdrLen-1); got != 0 {
		t.Fatalf("groSegSize(truncated header) = %d, want 0", got)
	}
	// The send-side cmsg must round-trip its segment size too (same
	// layout, uint16 payload).
	sbuf := alignedBytes(gsoCtlSlot)
	if clen := putGSOCmsg(sbuf, 512); clen != gsoCtlSlot {
		t.Fatalf("putGSOCmsg controllen = %d, want %d", clen, gsoCtlSlot)
	}
	sh := (*cmsghdr)(unsafe.Pointer(&sbuf[0]))
	if sh.level != solUDP || sh.typ != udpSegment || sh.len != cmsgHdrLen+2 {
		t.Fatalf("putGSOCmsg header = %+v", *sh)
	}
	if got := *(*uint16)(unsafe.Pointer(&sbuf[cmsgHdrLen])); got != 512 {
		t.Fatalf("putGSOCmsg payload = %d, want 512", got)
	}
}

// TestGROSplitHandBuilt feeds the serve loop's split path a hand-built
// coalesced payload — three 48-byte queries and a 20-byte tail glued
// into one buffer with a forged segment-size cmsg — and asserts the
// handler sees exactly the per-query packets a non-coalescing receive
// would have delivered.
func TestGROSplitHandBuilt(t *testing.T) {
	queries := [][]byte{
		bytes.Repeat([]byte{'a'}, 48),
		bytes.Repeat([]byte{'b'}, 48),
		bytes.Repeat([]byte{'c'}, 48),
		bytes.Repeat([]byte{'d'}, 20), // shorter tail segment
	}
	coalesced := bytes.Join(queries, nil)

	var seen [][]byte
	e := &batchedEngine{
		cfg: Config{Batch: 8, SlotSize: 4096, GSO: true}.withDefaults(),
		h: func(shard int, pkt []byte, _ netip.AddrPort, resp []byte) []byte {
			seen = append(seen, append([]byte(nil), pkt...))
			return nil // no response: isolate the split, skip the flush
		},
		m:   newMetrics(telemetry.New(), 1),
		gso: true,
	}
	st := newSockState(e.cfg, true)
	copy(st.recvArena, coalesced)
	e.serveCoalesced(0, nil, st, st.recvArena[:len(coalesced)], netip.AddrPort{}, 48, 0)

	if len(seen) != len(queries) {
		t.Fatalf("split produced %d packets, want %d", len(seen), len(queries))
	}
	for i, q := range queries {
		if !bytes.Equal(seen[i], q) {
			t.Fatalf("segment %d: got %q, want %q (byte parity broken)", i, seen[i], q)
		}
	}
	if v := e.m.groSegments.Value(); v != uint64(len(queries)) {
		t.Fatalf("gro segments counter = %d, want %d", v, len(queries))
	}
}

// TestGSOEngineParity is the acceptance invariant with offload on: the
// same query stream through a GSO+GRO batched engine and the portable
// engine must produce byte-identical responses — segmentation changes
// syscall and stack-traversal counts, never wire bytes. The stream
// mixes equal-size runs (coalescible) with ragged sizes (forced
// singletons and short tails).
func TestGSOEngineParity(t *testing.T) {
	reg := telemetry.New()
	gso := listenEngine(t, false, transformHandler, Config{Batch: 16, Sockets: 1, GSO: true, Telemetry: reg})
	if !gso.Batched() {
		t.Skip("batched engine unavailable")
	}
	portable := listenEngine(t, true, transformHandler, Config{Batch: 16, Sockets: 1})

	queries := make([][]byte, 200)
	for i := range queries {
		var q []byte
		switch {
		case i < 120: // uniform runs: the GSO/GRO sweet spot
			q = bytes.Repeat([]byte{byte('A' + i%8)}, 64)
		case i < 160: // ragged: every size different
			q = bytes.Repeat([]byte{'r'}, 16+i%96)
		default: // tiny
			q = []byte{0, 0, byte(i)}
		}
		q = append([]byte{byte(i >> 8), byte(i)}, q...)
		queries[i] = q
	}

	collect := func(e Engine, wantGSOClient bool) map[uint16][]byte {
		conn := dialEngine(t, e)
		cb, err := NewClientBatch(conn, 16, 2048)
		if err != nil {
			t.Fatalf("client: %v", err)
		}
		if wantGSOClient && !cb.EnableGSO() {
			t.Skip("kernel refused UDP_SEGMENT on the client socket")
		}
		got := make(map[uint16][]byte)
		for _, q := range queries {
			if err := cb.Queue(q); err != nil {
				t.Fatalf("queue: %v", err)
			}
		}
		if err := cb.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for len(got) < len(queries) && time.Now().Before(deadline) {
			conn.SetReadDeadline(time.Now().Add(time.Second))
			views, err := cb.Recv()
			if err != nil {
				break
			}
			for _, v := range views {
				if len(v) < 2 {
					continue
				}
				id := uint16(v[0])<<8 | uint16(v[1])
				got[id] = append([]byte(nil), v...)
			}
		}
		return got
	}
	gb, gp := collect(gso, true), collect(portable, false)
	if len(gb) != len(queries) || len(gp) != len(queries) {
		t.Fatalf("lost responses: gso %d, portable %d, want %d", len(gb), len(gp), len(queries))
	}
	for id, b := range gb {
		if !bytes.Equal(b, gp[id]) {
			t.Fatalf("response %d diverges under GSO: %q vs portable %q", id, b, gp[id])
		}
	}
	// The offload must have actually engaged (this kernel passed the
	// probe, so refusals would be a regression): segmented sends
	// recorded, no runtime fallbacks.
	if n := reg.ValueHistogram("udpengine_gso_segments").Count(); n == 0 {
		t.Error("no super-datagrams recorded despite uniform-size batches")
	}
	if v := reg.Counter("udpengine_gso_fallbacks_total").Value(); v != 0 {
		t.Errorf("gso fallbacks = %d, want 0 on a supporting kernel", v)
	}
}

// TestGSOProbeRefusalFallsBack pins the probe's failure detection and
// the engine's clean degradation: UDP_SEGMENT on a non-UDP socket is
// refused (the exact answer a pre-4.18 kernel gives for any socket),
// and an engine whose probe failed serves with plain sendmmsg and
// counts the fallback.
func TestGSOProbeRefusalFallsBack(t *testing.T) {
	// A TCP socket refuses SOL_UDP options the same way an old kernel
	// refuses them on UDP: setsockopt errors and probeGSO reports false.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	rc, err := ln.(*net.TCPListener).SyscallConn()
	if err != nil {
		t.Fatal(err)
	}
	refused := true
	if err := rc.Control(func(fd uintptr) { refused = !probeGSO(int(fd)) }); err != nil {
		t.Fatal(err)
	}
	if !refused {
		t.Fatal("probeGSO accepted UDP_SEGMENT on a TCP socket")
	}

	// An engine in forced-fallback state (probe refused ⇒ gso=false)
	// must serve exactly like a plain batched engine.
	reg := telemetry.New()
	e := listenEngine(t, false, echoHandler, Config{Batch: 8, Sockets: 1, Telemetry: reg})
	be := e.(*batchedEngine)
	if be.gso {
		t.Fatal("engine enabled gso without Config.GSO")
	}
	be.m.gsoFallbacks.Inc() // what listenBatched records when its probe fails
	conn := dialEngine(t, e)
	buf := make([]byte, 256)
	for i := 0; i < 20; i++ {
		msg := []byte(fmt.Sprintf("fallback-%d", i))
		if _, err := conn.Write(msg); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(buf[:n], msg) {
			t.Fatalf("echo %d mismatch", i)
		}
	}
	if v := reg.Counter("udpengine_gso_fallbacks_total").Value(); v != 1 {
		t.Fatalf("fallback counter = %d, want 1", v)
	}
	if n := reg.ValueHistogram("udpengine_gso_segments").Count(); n != 0 {
		t.Fatalf("segments recorded on a fallback engine: %d", n)
	}
}

// TestClientGSOSegmentsOnWire sends a uniform batch from a GSO client to
// a plain (non-GRO) engine: the kernel must split every super-datagram
// back into the original per-query wire datagrams, which the engine
// then answers one-for-one.
func TestClientGSOSegmentsOnWire(t *testing.T) {
	e := listenEngine(t, false, transformHandler, Config{Batch: 32, Sockets: 1})
	if !e.Batched() {
		t.Skip("batched engine unavailable")
	}
	conn := dialEngine(t, e)
	cb, err := NewClientBatch(conn, 32, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if !cb.EnableGSO() {
		t.Skip("kernel refused UDP_SEGMENT")
	}
	const n = 32
	queries := make([][]byte, n)
	for i := range queries {
		q := bytes.Repeat([]byte{byte(i)}, 80)
		q[0], q[1] = byte(i>>8), byte(i)
		queries[i] = q
		if err := cb.Queue(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := cb.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make(map[uint16][]byte)
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < n && time.Now().Before(deadline) {
		conn.SetReadDeadline(time.Now().Add(time.Second))
		views, err := cb.Recv()
		if err != nil {
			break
		}
		for _, v := range views {
			if len(v) < 2 {
				continue
			}
			got[uint16(v[0])<<8|uint16(v[1])] = append([]byte(nil), v...)
		}
	}
	if len(got) != n {
		t.Fatalf("got %d responses, want %d (kernel-side segmentation lost packets)", len(got), n)
	}
	for i, q := range queries {
		want := transformHandler(0, q, netip.AddrPort{}, nil)
		if !bytes.Equal(got[uint16(i)], want) {
			t.Fatalf("response %d: got %q want %q", i, got[uint16(i)], want)
		}
	}
}

// TestPinnedLoopsServe exercises -udp-pin end to end on whatever CPUs
// the runner has: every socket loop pins to a core (the gauge says how
// many succeeded), steering attaches where the kernel allows it, and
// serving behavior is unchanged.
func TestPinnedLoopsServe(t *testing.T) {
	reg := telemetry.New()
	e := listenEngine(t, false, echoHandler, Config{Batch: 8, Sockets: 2, PinCPUs: true, Telemetry: reg})
	if !e.Batched() {
		t.Skip("batched engine unavailable")
	}
	conn := dialEngine(t, e)
	buf := make([]byte, 256)
	for i := 0; i < 20; i++ {
		msg := []byte(fmt.Sprintf("pinned-%d", i))
		if _, err := conn.Write(msg); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(buf[:n], msg) {
			t.Fatalf("echo %d mismatch", i)
		}
	}
	if v := reg.Gauge("udpengine_pinned_cores").Value(); v != 2 {
		// sched_setaffinity can be refused in restricted sandboxes; the
		// engine must keep serving either way, so only log it.
		t.Logf("pinned cores = %d of 2 (affinity restricted on this runner?)", v)
	}
}
