//go:build linux && amd64

package udpengine

// Syscall numbers the frozen stdlib syscall package predates or omits.
const (
	sysRecvmmsg         = 299
	sysSendmmsg         = 307
	sysSchedSetaffinity = 203
)
