package udpengine

import (
	"bytes"
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"

	"dnscentral/internal/telemetry"
)

// echoHandler appends the query back — the minimal deterministic,
// shard-independent handler, isolating the engine's own transport cost.
func echoHandler(shard int, pkt []byte, raddr netip.AddrPort, resp []byte) []byte {
	return append(resp, pkt...)
}

// transformHandler is a deterministic non-trivial handler for parity
// checks: first two bytes echoed (the "ID"), then the payload reversed.
func transformHandler(shard int, pkt []byte, raddr netip.AddrPort, resp []byte) []byte {
	if len(pkt) < 2 {
		return nil
	}
	resp = append(resp, pkt[0], pkt[1])
	for i := len(pkt) - 1; i >= 2; i-- {
		resp = append(resp, pkt[i])
	}
	return resp
}

func listenEngine(t *testing.T, portable bool, h Handler, cfg Config) Engine {
	t.Helper()
	cfg.Portable = portable
	e, err := Listen("127.0.0.1:0", h, cfg)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func dialEngine(t *testing.T, e Engine) *net.UDPConn {
	t.Helper()
	conn, err := net.Dial("udp", e.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn.(*net.UDPConn)
}

// TestEchoEngines round-trips a datagram stream through both engines.
func TestEchoEngines(t *testing.T) {
	for _, portable := range []bool{true, false} {
		name := "batched"
		if portable {
			name = "portable"
		}
		t.Run(name, func(t *testing.T) {
			e := listenEngine(t, portable, echoHandler, Config{Batch: 8, Sockets: 2})
			conn := dialEngine(t, e)
			buf := make([]byte, 2048)
			for i := 0; i < 50; i++ {
				msg := []byte(fmt.Sprintf("datagram-%03d", i))
				if _, err := conn.Write(msg); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
				conn.SetReadDeadline(time.Now().Add(2 * time.Second))
				n, err := conn.Read(buf)
				if err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if !bytes.Equal(buf[:n], msg) {
					t.Fatalf("echo %d: got %q want %q", i, buf[:n], msg)
				}
			}
		})
	}
}

// TestEngineParity replays one query stream against the batched engine
// and the portable fallback and requires byte-identical responses — the
// core acceptance invariant: batching must change syscall counts, never
// bytes on the wire.
func TestEngineParity(t *testing.T) {
	batched := listenEngine(t, false, transformHandler, Config{Batch: 16, Sockets: 2})
	portable := listenEngine(t, true, transformHandler, Config{Batch: 16, Sockets: 2})

	queries := make([][]byte, 200)
	for i := range queries {
		q := []byte(fmt.Sprintf("%02dpayload-%d-%s", i%100, i, string(make([]byte, i%64))))
		q[0], q[1] = byte(i>>8), byte(i)
		queries[i] = q
	}
	collect := func(e Engine) map[uint16][]byte {
		conn := dialEngine(t, e)
		cb, err := NewClientBatch(conn, 16, 2048)
		if err != nil {
			t.Fatalf("client: %v", err)
		}
		got := make(map[uint16][]byte)
		for _, q := range queries {
			if err := cb.Queue(q); err != nil {
				t.Fatalf("queue: %v", err)
			}
		}
		if err := cb.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for len(got) < len(queries) && time.Now().Before(deadline) {
			conn.SetReadDeadline(time.Now().Add(time.Second))
			views, err := cb.Recv()
			if err != nil {
				break
			}
			for _, v := range views {
				if len(v) < 2 {
					continue
				}
				id := uint16(v[0])<<8 | uint16(v[1])
				got[id] = append([]byte(nil), v...)
			}
		}
		return got
	}
	gb, gp := collect(batched), collect(portable)
	if len(gb) != len(queries) || len(gp) != len(queries) {
		t.Fatalf("lost responses: batched %d, portable %d, want %d", len(gb), len(gp), len(queries))
	}
	for id, b := range gb {
		if !bytes.Equal(b, gp[id]) {
			t.Fatalf("response %d diverges: batched %q portable %q", id, b, gp[id])
		}
	}
}

// TestReuseportAllSocketsReceive binds 4 reuseport sockets and drives
// traffic from many distinct source ports: the kernel's flow hash must
// spread load so that every socket serves some of it.
func TestReuseportAllSocketsReceive(t *testing.T) {
	reg := telemetry.New()
	e := listenEngine(t, false, echoHandler, Config{Batch: 8, Sockets: 4, Telemetry: reg})
	if !e.Batched() {
		t.Skip("batched engine unavailable on this platform")
	}
	buf := make([]byte, 256)
	for i := 0; i < 128; i++ {
		conn := dialEngine(t, e) // unique source port per iteration
		msg := []byte(fmt.Sprintf("flow-%d", i))
		if _, err := conn.Write(msg); err != nil {
			t.Fatalf("write: %v", err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(buf); err != nil {
			t.Fatalf("read flow %d: %v", i, err)
		}
		conn.Close()
	}
	for k := 0; k < 4; k++ {
		n := reg.Counter(fmt.Sprintf("udpengine_datagrams_total{socket=%q}", fmt.Sprint(k))).Value()
		if n == 0 {
			t.Errorf("socket %d received no datagrams (reuseport sharding not effective)", k)
		}
	}
}

// TestOversizedDatagramDropped: a datagram larger than the receive slot
// is dropped (and counted), and the loop keeps serving.
func TestOversizedDatagramDropped(t *testing.T) {
	reg := telemetry.New()
	e := listenEngine(t, false, echoHandler, Config{Batch: 4, Sockets: 1, SlotSize: 512, Telemetry: reg})
	if !e.Batched() {
		t.Skip("batched engine unavailable on this platform")
	}
	conn := dialEngine(t, e)
	if _, err := conn.Write(make([]byte, 1000)); err != nil {
		t.Fatalf("oversized write: %v", err)
	}
	if _, err := conn.Write([]byte("ok")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 256)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf[:n]) != "ok" {
		t.Fatalf("got %q, want the in-slot datagram echoed and the oversized one dropped", buf[:n])
	}
	if v := reg.Counter("udpengine_oversized_dropped_total").Value(); v != 1 {
		t.Fatalf("oversized counter = %d, want 1", v)
	}
}

// TestZeroAllocSteadyState pins the acceptance criterion: the batched
// receive→handle→respond cycle performs zero allocations per datagram
// once warm. The client side uses the (equally zero-alloc) ClientBatch,
// so the measured mallocs cover both ends of the wire; the engine runs
// on its own goroutines but testing.AllocsPerRun counts process-global
// mallocs, so any engine-side allocation shows up here.
func TestZeroAllocSteadyState(t *testing.T) {
	reg := telemetry.New()
	e := listenEngine(t, false, echoHandler, Config{Batch: 32, Sockets: 1, Telemetry: reg})
	if !e.Batched() {
		t.Skip("batched engine unavailable on this platform")
	}
	conn := dialEngine(t, e)
	cb, err := NewClientBatch(conn, 32, 2048)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 64)
	cycle := func() {
		for i := 0; i < 32; i++ {
			if err := cb.Queue(payload); err != nil {
				t.Fatalf("queue: %v", err)
			}
		}
		if err := cb.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		got := 0
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		for got < 32 {
			views, err := cb.Recv()
			if err != nil {
				t.Fatalf("recv after %d: %v", got, err)
			}
			got += len(views)
		}
	}
	for i := 0; i < 5; i++ {
		cycle() // warm every pool and lazily-initialized runtime path
	}
	const runs, perRun = 50, 32
	allocs := testing.AllocsPerRun(runs, cycle)
	perDatagram := allocs / perRun
	t.Logf("allocs/run=%.3f allocs/datagram=%.4f", allocs, perDatagram)
	// Runtime background activity can contribute a stray malloc across
	// 50×32 datagrams; anything ≥0.05/datagram means a per-datagram
	// allocation crept into the engine or client hot path.
	if perDatagram >= 0.05 {
		t.Fatalf("batched path allocates %.4f/datagram (want steady-state 0)", perDatagram)
	}
}

// TestSetReadDeadlineUnblocksRecv guards the load-generator contract:
// ClientBatch.Recv must honor the socket deadline rather than hang.
func TestClientRecvDeadline(t *testing.T) {
	e := listenEngine(t, false, func(int, []byte, netip.AddrPort, []byte) []byte { return nil }, Config{})
	conn := dialEngine(t, e)
	cb, err := NewClientBatch(conn, 4, 512)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if err := cb.Queue([]byte("dropped")); err != nil {
		t.Fatalf("queue: %v", err)
	}
	if err := cb.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	if _, err := cb.Recv(); err == nil {
		t.Fatal("Recv returned without an answer or deadline error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Recv ignored the deadline (blocked %v)", elapsed)
	}
}
