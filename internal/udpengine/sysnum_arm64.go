//go:build linux && arm64

package udpengine

// Syscall numbers the frozen stdlib syscall package predates or omits.
const (
	sysRecvmmsg         = 243
	sysSendmmsg         = 269
	sysSchedSetaffinity = 122
)
