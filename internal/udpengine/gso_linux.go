//go:build linux && (amd64 || arm64)

package udpengine

import (
	"runtime"
	"syscall"
	"unsafe"
)

// Segmentation-offload plumbing shared by the batched engine and the
// client: the UDP_SEGMENT/UDP_GRO socket options and their cmsg wire
// layout, sched_setaffinity for pinned socket loops, and the classic-BPF
// program that steers reuseport delivery to the socket of the receiving
// CPU.
//
// GSO moves the per-datagram cost of a send from the syscall to the
// lowest point of the stack that must see individual packets: userspace
// hands the kernel ONE super-datagram (a scatter-gather buffer of N
// equal-size payloads) plus a UDP_SEGMENT cmsg carrying the segment
// size, and the kernel — or the NIC, with hardware USO — splits it back
// into N wire datagrams. One sendmmsg entry, one route lookup, one
// netfilter traversal for N packets. GRO is the mirror image on
// receive: consecutive same-flow datagrams arrive as one coalesced
// payload with a UDP_GRO cmsg carrying the segment size, and the engine
// splits them back into per-query packets with plain slicing.

const (
	// solUDP is SOL_UDP == IPPROTO_UDP, the UDP socket-option level.
	solUDP = 17
	// udpSegment is UDP_SEGMENT (Linux ≥ 4.18): as a setsockopt, the
	// socket's default GSO segment size; as a sendmsg cmsg, the per-call
	// segment size that splits the payload into wire datagrams.
	udpSegment = 103
	// udpGRO is UDP_GRO (Linux ≥ 5.0): opts the socket in to receive
	// coalescing; coalesced payloads carry a UDP_GRO cmsg with the
	// segment size.
	udpGRO = 104

	// maxGSOSegments is the kernel's UDP_MAX_SEGMENTS: one send may
	// carry at most 64 segments.
	maxGSOSegments = 64
	// maxGSOBytes caps a super-datagram's total payload under the IPv4
	// UDP maximum (65507 minus headroom for options).
	maxGSOBytes = 65000

	// cmsg ABI on LP64: struct cmsghdr is 16 bytes, and alignment is 8.
	// The send side carries one uint16 (CMSG_LEN(2)=18, CMSG_SPACE(2)=24);
	// the receive side reads one int32 and reserves headroom in case the
	// kernel stacks another cmsg next to it.
	cmsgHdrLen = 16
	gsoCtlSlot = 24
	groCtlSlot = 64
)

// cmsghdr mirrors struct cmsghdr (LP64 layout, identical on linux/amd64
// and linux/arm64).
type cmsghdr struct {
	len   uint64
	level int32
	typ   int32
}

// alignedBytes returns an n-byte slice whose base is 8-aligned — cmsg
// buffers are read and written through *cmsghdr, and []byte allocations
// do not guarantee alignment.
func alignedBytes(n int) []byte {
	w := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), n)
}

// putGSOCmsg writes a UDP_SEGMENT cmsg carrying segSize into buf (at
// least gsoCtlSlot bytes, 8-aligned) and returns the msg_controllen to
// set alongside it.
func putGSOCmsg(buf []byte, segSize uint16) uint64 {
	h := (*cmsghdr)(unsafe.Pointer(&buf[0]))
	h.len = cmsgHdrLen + 2 // CMSG_LEN(2)
	h.level = solUDP
	h.typ = udpSegment
	*(*uint16)(unsafe.Pointer(&buf[cmsgHdrLen])) = segSize
	return gsoCtlSlot // CMSG_SPACE(2)
}

// groSegSize walks the kernel-written control buffer for a UDP_GRO cmsg
// and returns its segment size, 0 when the payload was not coalesced.
func groSegSize(buf []byte, controllen uint64) int {
	if controllen > uint64(len(buf)) {
		controllen = uint64(len(buf))
	}
	for off := uint64(0); off+cmsgHdrLen <= controllen; {
		h := (*cmsghdr)(unsafe.Pointer(&buf[off]))
		if h.len < cmsgHdrLen || off+h.len > controllen {
			return 0
		}
		if h.level == solUDP && h.typ == udpGRO && h.len >= cmsgHdrLen+4 {
			return int(*(*int32)(unsafe.Pointer(&buf[off+cmsgHdrLen])))
		}
		off += (h.len + 7) &^ 7 // CMSG_ALIGN
	}
	return 0
}

// probeGSO reports whether the kernel accepts UDP_SEGMENT on fd.
// Setting the socket default to 0 (off) is a no-op that still exercises
// the option, so a pre-4.18 kernel answers ENOPROTOOPT here instead of
// failing sends later.
func probeGSO(fd int) bool {
	return syscall.SetsockoptInt(fd, solUDP, udpSegment, 0) == nil
}

// enableGRO opts fd in to receive-side coalescing.
func enableGRO(fd int) bool {
	return syscall.SetsockoptInt(fd, solUDP, udpGRO, 1) == nil
}

// pinThisThread locks the calling goroutine to its OS thread and pins
// that thread to cpu. On failure the thread is unlocked again and the
// loop runs unpinned.
func pinThisThread(cpu int) bool {
	runtime.LockOSThread()
	var mask [16]uint64 // room for 1024 CPUs
	mask[(cpu/64)%len(mask)] = 1 << (cpu % 64)
	// pid 0 = the calling thread, which LockOSThread just made ours
	// exclusively.
	_, _, errno := syscall.RawSyscall(sysSchedSetaffinity, 0,
		unsafe.Sizeof(mask), uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		runtime.UnlockOSThread()
		return false
	}
	return true
}

// sockFilter/sockFprog mirror struct sock_filter / struct sock_fprog.
type sockFilter struct {
	code   uint16
	jt, jf uint8
	k      uint32
}

type sockFprog struct {
	len    uint16
	_      [6]byte
	filter *sockFilter
}

// soAttachReuseportCBPF is SO_ATTACH_REUSEPORT_CBPF (Linux ≥ 4.5).
const soAttachReuseportCBPF = 51

// attachCPUSteering installs a three-instruction classic-BPF program on
// the reuseport group that delivers each packet to socket (cpu % nsock)
// of the CPU it arrived on — aligning the kernel's flow placement with
// the engine's pinned shard layout so a datagram is received, served,
// and answered without crossing cores. The program applies to the whole
// group; attach it to any one fd after every socket has bound.
func attachCPUSteering(fd, nsock int) error {
	prog := [3]sockFilter{
		// A = raw_smp_processor_id()  (BPF_LD|BPF_W|BPF_ABS at the
		// SKF_AD_OFF+SKF_AD_CPU ancillary offset)
		{code: 0x20, k: 0xfffff024},
		// A %= nsock  (BPF_ALU|BPF_MOD|BPF_K)
		{code: 0x94, k: uint32(nsock)},
		// return A  (BPF_RET|BPF_A)
		{code: 0x16},
	}
	fprog := sockFprog{len: uint16(len(prog)), filter: &prog[0]}
	_, _, errno := syscall.Syscall6(syscall.SYS_SETSOCKOPT, uintptr(fd),
		syscall.SOL_SOCKET, soAttachReuseportCBPF,
		uintptr(unsafe.Pointer(&fprog)), unsafe.Sizeof(fprog), 0)
	runtime.KeepAlive(&prog)
	if errno != 0 {
		return errno
	}
	return nil
}
