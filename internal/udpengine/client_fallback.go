//go:build !linux || !(amd64 || arm64)

package udpengine

import (
	"fmt"
	"net"
)

// ClientBatch batches sends and receives on a connected UDP socket. This
// is the fallback build: the API is identical to the Linux batched
// version, but Flush degrades to one Write per queued datagram and Recv
// returns one datagram per call — the same syscall economics the
// pre-engine load generators had.
//
// A ClientBatch is not safe for concurrent use; give each worker its own.
type ClientBatch struct {
	conn  *net.UDPConn
	batch int
	slot  int

	sendArena []byte
	lens      []int
	pending   int

	recvArena []byte
	views     [][]byte
}

// NewClientBatch wraps a connected UDP socket (net.Dial "udp"). batch
// and slotSize default to 32 and 4096 when ≤ 0.
func NewClientBatch(conn *net.UDPConn, batch, slotSize int) (*ClientBatch, error) {
	if batch <= 0 {
		batch = 32
	}
	if batch > 1024 {
		batch = 1024
	}
	if slotSize <= 0 {
		slotSize = 4096
	}
	return &ClientBatch{
		conn:      conn,
		batch:     batch,
		slot:      slotSize,
		sendArena: make([]byte, batch*slotSize),
		lens:      make([]int, batch),
		recvArena: make([]byte, slotSize),
		views:     make([][]byte, 0, 1),
	}, nil
}

// Batched reports whether syscall batching is actually in effect.
func (c *ClientBatch) Batched() bool { return false }

// EnableGSO is a no-op on the fallback build: segmentation offload is a
// Linux sendmsg feature. Always reports false.
func (c *ClientBatch) EnableGSO() bool { return false }

// GSO reports whether segmentation-offload sending is active.
func (c *ClientBatch) GSO() bool { return false }

// Pending is the number of queued-but-unflushed datagrams.
func (c *ClientBatch) Pending() int { return c.pending }

// Queue copies pkt into the send arena, flushing first when the batch is
// full. Packets larger than the slot size are rejected.
func (c *ClientBatch) Queue(pkt []byte) error {
	if len(pkt) > c.slot {
		return fmt.Errorf("udpengine: %d-byte datagram exceeds %d-byte slot", len(pkt), c.slot)
	}
	if c.pending == c.batch {
		if err := c.Flush(); err != nil {
			return err
		}
	}
	w := c.pending
	copy(c.sendArena[w*c.slot:], pkt)
	c.lens[w] = len(pkt)
	c.pending++
	return nil
}

// Flush sends every queued datagram, one Write per packet.
func (c *ClientBatch) Flush() (err error) {
	defer func() { c.pending = 0 }()
	for w := 0; w < c.pending; w++ {
		if _, werr := c.conn.Write(c.sendArena[w*c.slot : w*c.slot+c.lens[w]]); werr != nil {
			return werr
		}
	}
	return nil
}

// Recv blocks (honoring the connection's read deadline) for one
// datagram. The returned view aliases the receive arena and is valid
// only until the next Recv.
func (c *ClientBatch) Recv() ([][]byte, error) {
	n, err := c.conn.Read(c.recvArena)
	if err != nil {
		return nil, err
	}
	c.views = append(c.views[:0], c.recvArena[:n])
	return c.views, nil
}
