// Package udpengine is the batched UDP socket plane of the live servers:
// a transport that moves N datagrams per syscall via recvmmsg/sendmmsg
// and shards flows across K independently-bound SO_REUSEPORT sockets, so
// the socket layer can keep up with the zero-allocation serve paths
// behind it (authserver.AppendResponse, recursor.HandleWire, the
// workload emit path) instead of capping them at one syscall per packet.
//
// Two implementations sit behind one Engine interface:
//
//   - The batched engine (engine_linux.go, linux amd64/arm64) binds K
//     UDP sockets to the same address with SO_REUSEPORT — the kernel
//     hashes each client flow to one socket, giving per-socket receive
//     loops that never contend — and each loop drains up to Batch
//     datagrams per recvmmsg into a contiguous arena (one iovec per
//     slot), invokes the handler per datagram with a response slot from
//     the write arena, and accumulates responses into a sendmmsg batch
//     that is flushed when full and at the end of every receive batch
//     (flush-on-full / flush-on-idle). Steady state, the engine itself
//     performs zero allocations per datagram.
//
//   - The portable engine (engine_portable.go, every platform) serves
//     the same Handler over the classic one-datagram-per-syscall loop —
//     Sockets reader goroutines sharing a single net.UDPConn, exactly
//     the transport the servers used before this package existed — so
//     behavior off Linux (or with Config.Portable set) is unchanged and
//     byte-parity between the two engines is testable on one machine.
//
// The syscall layer is dependency-free: raw syscall.Syscall6 against
// per-arch SYS_RECVMMSG/SYS_SENDMMSG numbers and hand-laid Mmsghdr
// structs, driven through net.UDPConn.SyscallConn so the runtime
// netpoller still owns readiness, deadlines, and Close interruption.
package udpengine

import (
	"fmt"
	"net/netip"
	"runtime"

	"dnscentral/internal/telemetry"
)

// Handler serves one datagram. pkt is the received payload and is only
// valid until the handler returns; resp is an empty (len 0) reusable
// buffer from the engine's write arena the response should be appended
// into. The returned slice is sent back to raddr, nil means drop (no
// response). shard identifies the socket/worker loop the datagram
// arrived on — stable in [0, Sockets) — so handlers can keep per-shard
// scratch state and shard telemetry cells without locking. Handlers are
// called concurrently across shards but serially within one shard.
type Handler func(shard int, pkt []byte, raddr netip.AddrPort, resp []byte) []byte

// Config tunes an engine.
type Config struct {
	// Batch is the number of datagrams moved per recvmmsg/sendmmsg
	// syscall (default 32, clamped to [1, 1024]). The portable engine
	// ignores it (always 1 datagram per syscall).
	Batch int
	// Sockets is the receive parallelism: SO_REUSEPORT sockets on the
	// batched engine, reader goroutines sharing one socket on the
	// portable engine (default GOMAXPROCS capped at 8).
	Sockets int
	// SlotSize is the per-datagram buffer size in both arenas (default
	// 4096). Received datagrams larger than a slot are dropped and
	// counted; responses appended past a slot's capacity fall back to a
	// heap allocation but are still sent intact.
	SlotSize int
	// Portable forces the one-datagram portable engine even where the
	// batched one is available — the debugging/benchmark baseline.
	Portable bool
	// GSO enables generic segmentation offload on the batched engine:
	// consecutive equal-destination, equal-size responses in a send
	// batch coalesce into one UDP_SEGMENT super-datagram (one sendmmsg
	// entry, the kernel splits it back into wire datagrams), and
	// UDP_GRO on the receive side delivers coalesced same-flow payloads
	// the engine splits back into per-query packets via the segment-
	// size cmsg. Support is probed per socket at bind with automatic
	// fallback to plain sendmmsg (udpengine_gso_fallbacks_total counts
	// both probe refusals and runtime rejections); the portable engine
	// ignores it. Wire bytes are identical either way.
	GSO bool
	// PinCPUs pins socket loop k to CPU k%NumCPU (runtime.LockOSThread
	// + sched_setaffinity) and, with more than one socket, installs a
	// SO_ATTACH_REUSEPORT_CBPF program steering each packet to the
	// socket of the CPU it arrived on — so the kernel's flow placement
	// and the shard layout agree and a datagram is received, served,
	// and answered without crossing cores. Best-effort: pinning or
	// filter refusal logs and falls back to unpinned loops. Linux
	// batched engine only.
	PinCPUs bool
	// Telemetry, when set, publishes the udpengine_* metric family
	// (per-socket datagram counters, the batch-size histogram, syscall
	// counts and the syscalls-saved derived counter). Nil is free.
	Telemetry *telemetry.Registry
	// Logf, when non-nil, receives per-error diagnostics.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Batch <= 0 {
		c.Batch = 32
	}
	if c.Batch > 1024 {
		c.Batch = 1024
	}
	if c.Sockets <= 0 {
		c.Sockets = runtime.GOMAXPROCS(0)
		if c.Sockets > 8 {
			c.Sockets = 8
		}
	}
	if c.SlotSize <= 0 {
		c.SlotSize = 4096
	}
	return c
}

// Engine is a serving UDP transport bound to one address.
type Engine interface {
	// Addr is the bound address (identical across all reuseport sockets).
	Addr() netip.AddrPort
	// Close stops every socket loop and waits for them to drain.
	Close() error
	// Batched reports whether this is the recvmmsg/sendmmsg engine.
	Batched() bool
	// Sockets is the number of independent receive loops (= the shard
	// index space handlers observe).
	Sockets() int
}

// Listen starts an engine serving h on addr (e.g. "127.0.0.1:5300" or
// ":0"). On Linux amd64/arm64 it returns the batched engine unless
// cfg.Portable is set; everywhere else the portable fallback.
func Listen(addr string, h Handler, cfg Config) (Engine, error) {
	cfg = cfg.withDefaults()
	if h == nil {
		return nil, fmt.Errorf("udpengine: nil handler")
	}
	if cfg.Portable || !batchedSupported {
		return listenPortable(addr, h, cfg)
	}
	return listenBatched(addr, h, cfg)
}

// metrics is the udpengine_* family shared by both engines. Every field
// tolerates the nil (telemetry-off) registry.
type metrics struct {
	datagrams []*telemetry.Counter      // per socket: udpengine_datagrams_total{socket="k"}
	sent      *telemetry.Counter        // udpengine_sent_datagrams_total
	recvCalls *telemetry.Counter        // udpengine_recv_syscalls_total
	sendCalls *telemetry.Counter        // udpengine_send_syscalls_total
	oversized *telemetry.Counter        // udpengine_oversized_dropped_total
	sendErrs  *telemetry.Counter        // udpengine_send_errors_total
	batchHist *telemetry.ValueHistogram // udpengine_batch_size (datagrams per recvmmsg)

	// Segmentation-offload family (Linux batched engine only; the
	// fields stay nil-safe everywhere else).
	gsoSegments  *telemetry.ValueHistogram // udpengine_gso_segments (segments per sent super-datagram)
	gsoFallbacks *telemetry.Counter        // udpengine_gso_fallbacks_total
	groSegments  *telemetry.Counter        // udpengine_gro_segments_total (queries split out of coalesced payloads)
	pinnedCores  *telemetry.Gauge          // udpengine_pinned_cores (socket loops pinned to a CPU)
}

func newMetrics(reg *telemetry.Registry, sockets int) *metrics {
	m := &metrics{
		sent:         reg.Counter("udpengine_sent_datagrams_total"),
		recvCalls:    reg.Counter("udpengine_recv_syscalls_total"),
		sendCalls:    reg.Counter("udpengine_send_syscalls_total"),
		oversized:    reg.Counter("udpengine_oversized_dropped_total"),
		sendErrs:     reg.Counter("udpengine_send_errors_total"),
		batchHist:    reg.ValueHistogram("udpengine_batch_size"),
		gsoSegments:  reg.ValueHistogram("udpengine_gso_segments"),
		gsoFallbacks: reg.Counter("udpengine_gso_fallbacks_total"),
		groSegments:  reg.Counter("udpengine_gro_segments_total"),
		pinnedCores:  reg.Gauge("udpengine_pinned_cores"),
	}
	m.datagrams = make([]*telemetry.Counter, sockets)
	for i := range m.datagrams {
		m.datagrams[i] = reg.Counter(fmt.Sprintf("udpengine_datagrams_total{socket=%q}", fmt.Sprint(i)))
	}
	if reg != nil {
		// Syscalls saved = datagrams moved minus syscalls spent moving
		// them, summed over both directions — the engine's whole reason
		// to exist, readable straight off the metrics page.
		reg.CounterFunc("udpengine_syscalls_saved_total", func() uint64 {
			var recvd uint64
			for _, c := range m.datagrams {
				recvd += c.Value()
			}
			saved := recvd + m.sent.Value()
			spent := m.recvCalls.Value() + m.sendCalls.Value()
			if spent >= saved {
				return 0
			}
			return saved - spent
		})
	}
	return m
}

// received counts one receive batch on socket k.
func (m *metrics) received(k, n int) {
	m.datagrams[k].Shard(k).Add(uint64(n))
	m.recvCalls.Shard(k).Inc()
	m.batchHist.Observe(uint64(n))
}
