package udpengine

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
)

// portableEngine is the fallback transport: one net.UDPConn, Sockets
// reader goroutines issuing one ReadFromUDPAddrPort and (at most) one
// WriteToUDPAddrPort per datagram — byte-for-byte the serve loop the
// servers ran before the batched engine existed, kept as the reference
// implementation the batched engine must stay parity with.
type portableEngine struct {
	conn *net.UDPConn
	h    Handler
	cfg  Config
	m    *metrics

	wg     sync.WaitGroup
	closed chan struct{}
}

func listenPortable(addr string, h Handler, cfg Config) (Engine, error) {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udpengine: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, fmt.Errorf("udpengine: listen %s: %w", addr, err)
	}
	e := &portableEngine{
		conn:   conn,
		h:      h,
		cfg:    cfg,
		m:      newMetrics(cfg.Telemetry, cfg.Sockets),
		closed: make(chan struct{}),
	}
	e.wg.Add(cfg.Sockets)
	for i := 0; i < cfg.Sockets; i++ {
		go e.serve(i)
	}
	return e, nil
}

func (e *portableEngine) Addr() netip.AddrPort {
	return e.conn.LocalAddr().(*net.UDPAddr).AddrPort()
}

func (e *portableEngine) Batched() bool { return false }
func (e *portableEngine) Sockets() int  { return e.cfg.Sockets }

func (e *portableEngine) Close() error {
	close(e.closed)
	e.conn.Close()
	e.wg.Wait()
	return nil
}

func (e *portableEngine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

// serve is one reader worker: the kernel serializes concurrent reads on
// the shared socket, so workers never see the same datagram twice. The
// receive buffer is a full 64 KiB (the portable engine predates slot
// sizing and must accept any datagram the socket can deliver); the
// response buffer is one reusable slot.
func (e *portableEngine) serve(shard int) {
	defer e.wg.Done()
	in := make([]byte, 1<<16)
	out := make([]byte, 0, e.cfg.SlotSize)
	for {
		n, raddr, err := e.conn.ReadFromUDPAddrPort(in)
		if err != nil {
			select {
			case <-e.closed:
				return
			default:
				e.logf("udp read: %v", err)
				continue
			}
		}
		e.m.received(shard, 1)
		resp := e.serveOne(shard, in[:n], raddr, out[:0])
		if len(resp) == 0 {
			continue
		}
		e.m.sendCalls.Shard(shard).Inc()
		if _, err := e.conn.WriteToUDPAddrPort(resp, raddr); err != nil {
			e.m.sendErrs.Shard(shard).Inc()
			e.logf("udp write to %s: %v", raddr, err)
			continue
		}
		e.m.sent.Shard(shard).Inc()
	}
}

// serveOne invokes the handler with per-datagram panic isolation,
// mirroring the batched engine: a panicking handler poisons one
// datagram, never the reader.
func (e *portableEngine) serveOne(shard int, pkt []byte, raddr netip.AddrPort, resp []byte) (out []byte) {
	defer func() {
		if p := recover(); p != nil {
			out = nil
			e.logf("udp handler panic from %s: %v", raddr, p)
		}
	}()
	return e.h(shard, pkt, raddr, resp)
}
