//go:build linux && (amd64 || arm64)

package udpengine

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"syscall"
	"unsafe"
)

const batchedSupported = true

// batchedEngine is the recvmmsg/sendmmsg transport: K SO_REUSEPORT
// sockets bound to one address, each owned by a single goroutine running
// the batch loop over per-socket arenas. The kernel hashes client flows
// across the sockets, so under multi-flow load every loop (and every
// core) receives independently.
type batchedEngine struct {
	conns []*net.UDPConn
	h     Handler
	cfg   Config
	m     *metrics
	// gso is Config.GSO after the bind-time kernel probe: true means
	// every socket accepted UDP_SEGMENT and runs with UDP_GRO on, so
	// the loops build super-datagram sends and split coalesced receives.
	gso bool

	wg     sync.WaitGroup
	closed chan struct{}
}

func listenBatched(addr string, h Handler, cfg Config) (Engine, error) {
	e := &batchedEngine{
		h:      h,
		cfg:    cfg,
		m:      newMetrics(cfg.Telemetry, cfg.Sockets),
		closed: make(chan struct{}),
	}
	lc := net.ListenConfig{}
	if cfg.Sockets > 1 {
		// SO_REUSEPORT must be set before bind on every socket sharing
		// the port; the kernel then shards flows by 4-tuple hash.
		lc.Control = func(network, address string, c syscall.RawConn) error {
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			return serr
		}
	}
	bindAddr := addr
	for i := 0; i < cfg.Sockets; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", bindAddr)
		if err != nil {
			for _, c := range e.conns {
				c.Close()
			}
			return nil, fmt.Errorf("udpengine: listen %s (socket %d): %w", bindAddr, i, err)
		}
		conn := pc.(*net.UDPConn)
		// Best-effort deep socket buffers: a batch drain amortizes
		// syscalls only if the kernel can queue a batch's worth of
		// datagrams between wakeups. Clamped by net.core.{r,w}mem_max.
		_ = conn.SetReadBuffer(1 << 20)
		_ = conn.SetWriteBuffer(1 << 20)
		e.conns = append(e.conns, conn)
		if i == 0 {
			// Later sockets must bind the exact port the first one got
			// (relevant when addr asked for :0).
			bindAddr = conn.LocalAddr().String()
		}
	}
	if cfg.GSO {
		// Probe UDP_SEGMENT once and opt every socket in to GRO. A
		// refusal (pre-4.18 kernel, seccomp) is a counted fallback, not
		// an error: the engine serves identical wire bytes either way.
		e.gso = true
		for i, c := range e.conns {
			ok := false
			if err := controlFd(c, func(fd int) {
				ok = probeGSO(fd) && enableGRO(fd)
			}); err != nil || !ok {
				e.gso = false
				e.m.gsoFallbacks.Inc()
				e.logf("socket %d: no UDP_SEGMENT/UDP_GRO support, falling back to plain sendmmsg", i)
				break
			}
		}
	}
	if cfg.PinCPUs && cfg.Sockets > 1 {
		// Steer each packet to the socket of its receiving CPU so the
		// kernel's reuseport placement matches the pinned shard layout.
		// Group-wide option: one attach after every socket has bound.
		if err := controlFd(e.conns[0], func(fd int) {
			if aerr := attachCPUSteering(fd, cfg.Sockets); aerr != nil {
				e.logf("reuseport cpu steering unavailable: %v", aerr)
			}
		}); err != nil {
			e.logf("reuseport cpu steering: %v", err)
		}
	}
	for i, c := range e.conns {
		e.wg.Add(1)
		go e.serve(i, c)
	}
	return e, nil
}

// controlFd runs f with conn's raw fd.
func controlFd(conn *net.UDPConn, f func(fd int)) error {
	rc, err := conn.SyscallConn()
	if err != nil {
		return err
	}
	return rc.Control(func(fd uintptr) { f(int(fd)) })
}

func (e *batchedEngine) Addr() netip.AddrPort {
	return e.conns[0].LocalAddr().(*net.UDPAddr).AddrPort()
}

func (e *batchedEngine) Batched() bool { return true }
func (e *batchedEngine) Sockets() int  { return e.cfg.Sockets }

func (e *batchedEngine) Close() error {
	close(e.closed)
	for _, c := range e.conns {
		c.Close()
	}
	e.wg.Wait()
	return nil
}

func (e *batchedEngine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

// sockState is one socket loop's batch memory: a contiguous receive
// arena with an iovec per slot, a parallel sockaddr arena the kernel
// writes peer addresses into, and the mirror write-side arena responses
// are appended into. Everything is allocated once at startup; the loop
// itself allocates nothing per datagram.
type sockState struct {
	slot  int // send-arena slot size
	rslot int // receive-arena slot size (≥ slot; 64 KiB under GRO)

	recvArena []byte
	nameArena []byte
	recvIovs  []iovec
	recvHdrs  []mmsghdr
	recvCtl   []byte // per-slot cmsg space for the UDP_GRO segment size

	sendArena []byte
	sendIovs  []iovec
	sendHdrs  []mmsghdr
	pending   int

	// sendmmsg resume state shared with the pre-allocated writeFn
	// closure (one closure per loop, not per flush, keeps this alloc-free).
	sendOff int
	nsent   int
	werr    error

	nrecv int
	rerr  error

	// wfn is the sendmmsg raw-write callback, built once per loop so
	// flushes don't allocate a closure.
	wfn func(fd uintptr) bool

	// GSO send state: the staged responses regrouped into super-datagram
	// mmsghdrs. gsoHdrs[g] covers responses gsoStart[g]..gsoStart[g+1]
	// of the plain batch — its iovlen spans that many contiguous
	// sendIovs and its cmsg carries the segment size. The plain
	// sendHdrs stay untouched, so a kernel-refused segmented send can
	// resend the identical bytes through the plain path.
	gsoHdrs  []mmsghdr
	gsoCtl   []byte
	gsoStart []int
	ngroups  int
	goff     int
	gnsent   int
	gwerr    error
	gwfn     func(fd uintptr) bool
}

func newSockState(cfg Config, gso bool) *sockState {
	b := cfg.Batch
	rslot := cfg.SlotSize
	if gso && rslot < 1<<16 {
		// GRO delivers coalesced payloads up to 64 KiB; undersized slots
		// would turn every coalesce into an MSG_TRUNC drop.
		rslot = 1 << 16
	}
	st := &sockState{
		slot:      cfg.SlotSize,
		rslot:     rslot,
		recvArena: make([]byte, b*rslot),
		nameArena: make([]byte, b*sockaddrSlot),
		recvIovs:  make([]iovec, b),
		recvHdrs:  make([]mmsghdr, b),
		sendArena: make([]byte, b*cfg.SlotSize),
		sendIovs:  make([]iovec, b),
		sendHdrs:  make([]mmsghdr, b),
	}
	for i := 0; i < b; i++ {
		st.recvIovs[i] = iovec{base: &st.recvArena[i*rslot], len: uint64(rslot)}
		st.recvHdrs[i].hdr.iov = &st.recvIovs[i]
		st.recvHdrs[i].hdr.iovlen = 1
		st.recvHdrs[i].hdr.name = &st.nameArena[i*sockaddrSlot]
		st.recvHdrs[i].hdr.namelen = sockaddrSlot
		st.sendHdrs[i].hdr.iov = &st.sendIovs[i]
		st.sendHdrs[i].hdr.iovlen = 1
	}
	if gso {
		st.recvCtl = alignedBytes(b * groCtlSlot)
		for i := 0; i < b; i++ {
			st.recvHdrs[i].hdr.control = &st.recvCtl[i*groCtlSlot]
			st.recvHdrs[i].hdr.controllen = groCtlSlot
		}
		st.gsoHdrs = make([]mmsghdr, b)
		st.gsoCtl = alignedBytes(b * gsoCtlSlot)
		st.gsoStart = make([]int, b+1)
	}
	return st
}

// resetRecv restores the kernel-written header fields before reuse.
func (st *sockState) resetRecv() {
	for i := range st.recvHdrs {
		st.recvHdrs[i].hdr.namelen = sockaddrSlot
		st.recvHdrs[i].hdr.flags = 0
		if st.recvCtl != nil {
			st.recvHdrs[i].hdr.controllen = groCtlSlot
		}
	}
}

// respSlot hands out the pending response's arena slot as an empty
// append buffer with the slot's full capacity.
func (st *sockState) respSlot() []byte {
	w := st.pending
	return st.sendArena[w*st.slot : w*st.slot : (w+1)*st.slot]
}

// queue stages resp (for the peer that sent receive-slot i) into the
// send batch. The destination sockaddr is the kernel-written peer
// address, pointed at in place — no conversion round trip.
func (st *sockState) queue(resp []byte, i int) {
	w := st.pending
	st.sendIovs[w].base = &resp[0]
	st.sendIovs[w].len = uint64(len(resp))
	st.sendHdrs[w].hdr.name = &st.nameArena[i*sockaddrSlot]
	st.sendHdrs[w].hdr.namelen = st.recvHdrs[i].hdr.namelen
	st.pending++
}

// serve is one socket's batch loop: drain up to Batch datagrams per
// recvmmsg, serve each through the handler with a write-arena slot, and
// push responses out via sendmmsg — flushed when the send batch fills
// and again once the receive batch is exhausted (flush-on-idle), so a
// lone datagram still answers immediately.
func (e *batchedEngine) serve(shard int, conn *net.UDPConn) {
	defer e.wg.Done()
	if e.cfg.PinCPUs {
		if pinThisThread(shard % runtime.NumCPU()) {
			e.m.pinnedCores.Add(1)
			defer e.m.pinnedCores.Add(-1)
		} else {
			e.logf("socket %d: cpu pinning unavailable, loop runs unpinned", shard)
		}
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		e.logf("socket %d: syscall conn: %v", shard, err)
		return
	}
	st := newSockState(e.cfg, e.gso)
	readFn := func(fd uintptr) bool {
		st.resetRecv()
		st.nrecv, st.rerr = recvmmsg(fd, st.recvHdrs, syscall.MSG_DONTWAIT)
		return st.rerr != syscall.EAGAIN
	}
	st.wfn = func(fd uintptr) bool {
		st.nsent, st.werr = sendmmsg(fd, st.sendHdrs[st.sendOff:st.pending], syscall.MSG_DONTWAIT)
		return st.werr != syscall.EAGAIN
	}
	if e.gso {
		st.gwfn = func(fd uintptr) bool {
			st.gnsent, st.gwerr = sendmmsg(fd, st.gsoHdrs[st.goff:st.ngroups], syscall.MSG_DONTWAIT)
			return st.gwerr != syscall.EAGAIN
		}
	}
	for {
		if err := rc.Read(readFn); err != nil {
			select {
			case <-e.closed:
			default:
				e.logf("socket %d: read: %v", shard, err)
			}
			return
		}
		if st.rerr != nil {
			e.logf("socket %d: recvmmsg: %v", shard, st.rerr)
			continue
		}
		if st.nrecv == 0 {
			continue
		}
		e.m.received(shard, st.nrecv)
		for i := 0; i < st.nrecv; i++ {
			h := &st.recvHdrs[i]
			if h.hdr.flags&syscall.MSG_TRUNC != 0 {
				e.m.oversized.Shard(shard).Inc()
				continue
			}
			pkt := st.recvArena[i*st.rslot : i*st.rslot+int(h.len)]
			raddr := decodeSockaddr(st.nameArena[i*sockaddrSlot : (i+1)*sockaddrSlot])
			if e.gso {
				if seg := groSegSize(st.recvCtl[i*groCtlSlot:(i+1)*groCtlSlot], h.hdr.controllen); seg > 0 && int(h.len) > seg {
					e.serveCoalesced(shard, rc, st, pkt, raddr, seg, i)
					continue
				}
			}
			resp := e.serveOne(shard, pkt, raddr, st.respSlot())
			if len(resp) == 0 {
				continue
			}
			st.queue(resp, i)
			if st.pending == e.cfg.Batch {
				e.flush(shard, rc, st)
			}
		}
		e.flush(shard, rc, st)
	}
}

// serveCoalesced splits a GRO-coalesced payload back into per-query
// packets — every segment is seg bytes except a possibly shorter tail —
// and serves each through the normal path. The segments are views into
// the receive slot, so the split costs no copies; the shared peer
// address (GRO only merges one flow) comes from slot i.
func (e *batchedEngine) serveCoalesced(shard int, rc syscall.RawConn, st *sockState, pkt []byte, raddr netip.AddrPort, seg, i int) {
	nseg := 0
	for off := 0; off < len(pkt); off += seg {
		end := off + seg
		if end > len(pkt) {
			end = len(pkt)
		}
		nseg++
		resp := e.serveOne(shard, pkt[off:end], raddr, st.respSlot())
		if len(resp) == 0 {
			continue
		}
		st.queue(resp, i)
		if st.pending == e.cfg.Batch {
			e.flush(shard, rc, st)
		}
	}
	e.m.groSegments.Shard(shard).Add(uint64(nseg))
}

// serveOne invokes the handler with per-datagram panic isolation: a
// panicking handler poisons one datagram, never the socket loop.
func (e *batchedEngine) serveOne(shard int, pkt []byte, raddr netip.AddrPort, resp []byte) (out []byte) {
	defer func() {
		if p := recover(); p != nil {
			out = nil
			e.logf("socket %d: handler panic from %s: %v", shard, raddr, p)
		}
	}()
	return e.h(shard, pkt, raddr, resp)
}

// flush drives the staged responses out with as few sendmmsg calls as
// the kernel permits. With GSO active the batch first goes through the
// super-datagram path; anything that path could not hand off (a kernel
// that accepts the probe but refuses a segmented send mid-flight) is
// resent byte-identically through the plain path, which resumes after
// partial sends and skips (and counts) individually refused datagrams
// so one bad peer cannot wedge the batch.
func (e *batchedEngine) flush(shard int, rc syscall.RawConn, st *sockState) {
	if st.pending == 0 {
		return
	}
	from := 0
	if e.gso && st.pending > 1 {
		from = e.flushGSO(shard, rc, st)
	}
	if from < st.pending {
		e.flushPlain(shard, rc, st, from)
	}
	st.pending = 0
}

// flushPlain is the one-mmsghdr-per-response send loop over
// sendHdrs[from:pending].
func (e *batchedEngine) flushPlain(shard int, rc syscall.RawConn, st *sockState, from int) {
	st.sendOff = from
	for st.sendOff < st.pending {
		if err := rc.Write(st.wfn); err != nil {
			e.m.sendErrs.Shard(shard).Add(uint64(st.pending - st.sendOff))
			break
		}
		e.m.sendCalls.Shard(shard).Inc()
		if st.werr != nil {
			// sendmmsg fails on the first datagram or not at all: drop
			// that one and resume with the rest.
			e.m.sendErrs.Shard(shard).Inc()
			e.logf("socket %d: sendmmsg: %v", shard, st.werr)
			st.sendOff++
			continue
		}
		e.m.sent.Shard(shard).Add(uint64(st.nsent))
		if st.nsent <= 0 {
			st.sendOff++ // defensive: never livelock on a zero-progress send
			continue
		}
		st.sendOff += st.nsent
	}
}

// sameDest reports whether staged responses a and b go to the same peer.
func (st *sockState) sameDest(a, b int) bool {
	ha, hb := &st.sendHdrs[a].hdr, &st.sendHdrs[b].hdr
	if ha.namelen != hb.namelen {
		return false
	}
	na := unsafe.Slice(ha.name, ha.namelen)
	nb := unsafe.Slice(hb.name, hb.namelen)
	return string(na) == string(nb)
}

// flushGSO coalesces the staged batch into super-datagrams and sends
// them. A run of consecutive responses to one peer becomes one mmsghdr
// whose iovlen spans the run's (contiguous) iovecs and whose
// UDP_SEGMENT cmsg carries the run's segment size — the kernel splits
// it back into wire datagrams, so N responses cost one batch entry and
// one stack traversal. The kernel's contract shapes the grouping: every
// segment must be exactly the cmsg size except the last, which may be
// shorter, and a run is capped at UDP_MAX_SEGMENTS and the UDP payload
// maximum.
//
// Returns the index of the first staged response NOT handed to the
// kernel (== pending when everything went out): a segmented send the
// kernel refuses at runtime is counted as a fallback and the remainder
// is left for flushPlain, whose untouched sendHdrs resend the same
// bytes unsegmented.
func (e *batchedEngine) flushGSO(shard int, rc syscall.RawConn, st *sockState) int {
	// Group the batch: gsoHdrs[g] spans responses gsoStart[g]..gsoStart[g+1].
	ng := 0
	for i := 0; i < st.pending; {
		segLen := st.sendIovs[i].len
		total := segLen
		j := i + 1
		for j < st.pending && j-i < maxGSOSegments {
			l := st.sendIovs[j].len
			if l > segLen || total+l > maxGSOBytes || !st.sameDest(i, j) {
				break
			}
			total += l
			j++
			if l < segLen {
				break // a shorter datagram must be the run's final segment
			}
		}
		st.gsoStart[ng] = i
		h := &st.gsoHdrs[ng]
		*h = st.sendHdrs[i]
		h.hdr.flags = 0
		h.len = 0
		if j-i > 1 {
			h.hdr.iovlen = uint64(j - i)
			ctl := st.gsoCtl[ng*gsoCtlSlot : (ng+1)*gsoCtlSlot]
			h.hdr.control = &ctl[0]
			h.hdr.controllen = putGSOCmsg(ctl, uint16(segLen))
		} else {
			h.hdr.iovlen = 1
			h.hdr.control = nil
			h.hdr.controllen = 0
		}
		ng++
		i = j
	}
	st.ngroups = ng
	st.gsoStart[ng] = st.pending

	st.goff = 0
	for st.goff < st.ngroups {
		if err := rc.Write(st.gwfn); err != nil {
			e.m.sendErrs.Shard(shard).Add(uint64(st.pending - st.gsoStart[st.goff]))
			return st.pending // errored, but nothing left to resend either
		}
		e.m.sendCalls.Shard(shard).Inc()
		if st.gwerr != nil {
			g := st.goff
			if segs := st.gsoStart[g+1] - st.gsoStart[g]; segs > 1 {
				// The kernel accepted the probe but refused this
				// segmented send (path/driver dependent): resend
				// everything unsent through the plain path.
				e.m.gsoFallbacks.Shard(shard).Inc()
				e.logf("socket %d: segmented sendmmsg refused (%d segs): %v", shard, segs, st.gwerr)
				return st.gsoStart[g]
			}
			e.m.sendErrs.Shard(shard).Inc()
			e.logf("socket %d: sendmmsg: %v", shard, st.gwerr)
			st.goff++
			continue
		}
		if st.gnsent <= 0 {
			st.goff++ // defensive: never livelock on a zero-progress send
			continue
		}
		for g := st.goff; g < st.goff+st.gnsent; g++ {
			e.m.gsoSegments.Observe(uint64(st.gsoStart[g+1] - st.gsoStart[g]))
		}
		e.m.sent.Shard(shard).Add(uint64(st.gsoStart[st.goff+st.gnsent] - st.gsoStart[st.goff]))
		st.goff += st.gnsent
	}
	return st.pending
}
