//go:build linux && (amd64 || arm64)

package udpengine

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"syscall"
)

const batchedSupported = true

// batchedEngine is the recvmmsg/sendmmsg transport: K SO_REUSEPORT
// sockets bound to one address, each owned by a single goroutine running
// the batch loop over per-socket arenas. The kernel hashes client flows
// across the sockets, so under multi-flow load every loop (and every
// core) receives independently.
type batchedEngine struct {
	conns []*net.UDPConn
	h     Handler
	cfg   Config
	m     *metrics

	wg     sync.WaitGroup
	closed chan struct{}
}

func listenBatched(addr string, h Handler, cfg Config) (Engine, error) {
	e := &batchedEngine{
		h:      h,
		cfg:    cfg,
		m:      newMetrics(cfg.Telemetry, cfg.Sockets),
		closed: make(chan struct{}),
	}
	lc := net.ListenConfig{}
	if cfg.Sockets > 1 {
		// SO_REUSEPORT must be set before bind on every socket sharing
		// the port; the kernel then shards flows by 4-tuple hash.
		lc.Control = func(network, address string, c syscall.RawConn) error {
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			return serr
		}
	}
	bindAddr := addr
	for i := 0; i < cfg.Sockets; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", bindAddr)
		if err != nil {
			for _, c := range e.conns {
				c.Close()
			}
			return nil, fmt.Errorf("udpengine: listen %s (socket %d): %w", bindAddr, i, err)
		}
		conn := pc.(*net.UDPConn)
		// Best-effort deep socket buffers: a batch drain amortizes
		// syscalls only if the kernel can queue a batch's worth of
		// datagrams between wakeups. Clamped by net.core.{r,w}mem_max.
		_ = conn.SetReadBuffer(1 << 20)
		_ = conn.SetWriteBuffer(1 << 20)
		e.conns = append(e.conns, conn)
		if i == 0 {
			// Later sockets must bind the exact port the first one got
			// (relevant when addr asked for :0).
			bindAddr = conn.LocalAddr().String()
		}
	}
	for i, c := range e.conns {
		e.wg.Add(1)
		go e.serve(i, c)
	}
	return e, nil
}

func (e *batchedEngine) Addr() netip.AddrPort {
	return e.conns[0].LocalAddr().(*net.UDPAddr).AddrPort()
}

func (e *batchedEngine) Batched() bool { return true }
func (e *batchedEngine) Sockets() int  { return e.cfg.Sockets }

func (e *batchedEngine) Close() error {
	close(e.closed)
	for _, c := range e.conns {
		c.Close()
	}
	e.wg.Wait()
	return nil
}

func (e *batchedEngine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

// sockState is one socket loop's batch memory: a contiguous receive
// arena with an iovec per slot, a parallel sockaddr arena the kernel
// writes peer addresses into, and the mirror write-side arena responses
// are appended into. Everything is allocated once at startup; the loop
// itself allocates nothing per datagram.
type sockState struct {
	slot int

	recvArena []byte
	nameArena []byte
	recvIovs  []iovec
	recvHdrs  []mmsghdr

	sendArena []byte
	sendIovs  []iovec
	sendHdrs  []mmsghdr
	pending   int

	// sendmmsg resume state shared with the pre-allocated writeFn
	// closure (one closure per loop, not per flush, keeps this alloc-free).
	sendOff int
	nsent   int
	werr    error

	nrecv int
	rerr  error

	// wfn is the sendmmsg raw-write callback, built once per loop so
	// flushes don't allocate a closure.
	wfn func(fd uintptr) bool
}

func newSockState(cfg Config) *sockState {
	b := cfg.Batch
	st := &sockState{
		slot:      cfg.SlotSize,
		recvArena: make([]byte, b*cfg.SlotSize),
		nameArena: make([]byte, b*sockaddrSlot),
		recvIovs:  make([]iovec, b),
		recvHdrs:  make([]mmsghdr, b),
		sendArena: make([]byte, b*cfg.SlotSize),
		sendIovs:  make([]iovec, b),
		sendHdrs:  make([]mmsghdr, b),
	}
	for i := 0; i < b; i++ {
		st.recvIovs[i] = iovec{base: &st.recvArena[i*cfg.SlotSize], len: uint64(cfg.SlotSize)}
		st.recvHdrs[i].hdr.iov = &st.recvIovs[i]
		st.recvHdrs[i].hdr.iovlen = 1
		st.recvHdrs[i].hdr.name = &st.nameArena[i*sockaddrSlot]
		st.recvHdrs[i].hdr.namelen = sockaddrSlot
		st.sendHdrs[i].hdr.iov = &st.sendIovs[i]
		st.sendHdrs[i].hdr.iovlen = 1
	}
	return st
}

// resetRecv restores the kernel-written header fields before reuse.
func (st *sockState) resetRecv() {
	for i := range st.recvHdrs {
		st.recvHdrs[i].hdr.namelen = sockaddrSlot
		st.recvHdrs[i].hdr.flags = 0
	}
}

// respSlot hands out the pending response's arena slot as an empty
// append buffer with the slot's full capacity.
func (st *sockState) respSlot() []byte {
	w := st.pending
	return st.sendArena[w*st.slot : w*st.slot : (w+1)*st.slot]
}

// queue stages resp (for the peer that sent receive-slot i) into the
// send batch. The destination sockaddr is the kernel-written peer
// address, pointed at in place — no conversion round trip.
func (st *sockState) queue(resp []byte, i int) {
	w := st.pending
	st.sendIovs[w].base = &resp[0]
	st.sendIovs[w].len = uint64(len(resp))
	st.sendHdrs[w].hdr.name = &st.nameArena[i*sockaddrSlot]
	st.sendHdrs[w].hdr.namelen = st.recvHdrs[i].hdr.namelen
	st.pending++
}

// serve is one socket's batch loop: drain up to Batch datagrams per
// recvmmsg, serve each through the handler with a write-arena slot, and
// push responses out via sendmmsg — flushed when the send batch fills
// and again once the receive batch is exhausted (flush-on-idle), so a
// lone datagram still answers immediately.
func (e *batchedEngine) serve(shard int, conn *net.UDPConn) {
	defer e.wg.Done()
	rc, err := conn.SyscallConn()
	if err != nil {
		e.logf("socket %d: syscall conn: %v", shard, err)
		return
	}
	st := newSockState(e.cfg)
	readFn := func(fd uintptr) bool {
		st.resetRecv()
		st.nrecv, st.rerr = recvmmsg(fd, st.recvHdrs, syscall.MSG_DONTWAIT)
		return st.rerr != syscall.EAGAIN
	}
	st.wfn = func(fd uintptr) bool {
		st.nsent, st.werr = sendmmsg(fd, st.sendHdrs[st.sendOff:st.pending], syscall.MSG_DONTWAIT)
		return st.werr != syscall.EAGAIN
	}
	for {
		if err := rc.Read(readFn); err != nil {
			select {
			case <-e.closed:
			default:
				e.logf("socket %d: read: %v", shard, err)
			}
			return
		}
		if st.rerr != nil {
			e.logf("socket %d: recvmmsg: %v", shard, st.rerr)
			continue
		}
		if st.nrecv == 0 {
			continue
		}
		e.m.received(shard, st.nrecv)
		for i := 0; i < st.nrecv; i++ {
			h := &st.recvHdrs[i]
			if h.hdr.flags&syscall.MSG_TRUNC != 0 {
				e.m.oversized.Shard(shard).Inc()
				continue
			}
			pkt := st.recvArena[i*st.slot : i*st.slot+int(h.len)]
			raddr := decodeSockaddr(st.nameArena[i*sockaddrSlot : (i+1)*sockaddrSlot])
			resp := e.serveOne(shard, pkt, raddr, st.respSlot())
			if len(resp) == 0 {
				continue
			}
			st.queue(resp, i)
			if st.pending == e.cfg.Batch {
				e.flush(shard, rc, st)
			}
		}
		e.flush(shard, rc, st)
	}
}

// serveOne invokes the handler with per-datagram panic isolation: a
// panicking handler poisons one datagram, never the socket loop.
func (e *batchedEngine) serveOne(shard int, pkt []byte, raddr netip.AddrPort, resp []byte) (out []byte) {
	defer func() {
		if p := recover(); p != nil {
			out = nil
			e.logf("socket %d: handler panic from %s: %v", shard, raddr, p)
		}
	}()
	return e.h(shard, pkt, raddr, resp)
}

// flush drives the staged responses out with as few sendmmsg calls as
// the kernel permits, resuming after partial sends and skipping (and
// counting) individually refused datagrams so one bad peer cannot wedge
// the batch.
func (e *batchedEngine) flush(shard int, rc syscall.RawConn, st *sockState) {
	if st.pending == 0 {
		return
	}
	st.sendOff = 0
	for st.sendOff < st.pending {
		if err := rc.Write(st.wfn); err != nil {
			e.m.sendErrs.Shard(shard).Add(uint64(st.pending - st.sendOff))
			break
		}
		e.m.sendCalls.Shard(shard).Inc()
		if st.werr != nil {
			// sendmmsg fails on the first datagram or not at all: drop
			// that one and resume with the rest.
			e.m.sendErrs.Shard(shard).Inc()
			e.logf("socket %d: sendmmsg: %v", shard, st.werr)
			st.sendOff++
			continue
		}
		e.m.sent.Shard(shard).Add(uint64(st.nsent))
		if st.nsent <= 0 {
			st.sendOff++ // defensive: never livelock on a zero-progress send
			continue
		}
		st.sendOff += st.nsent
	}
	st.pending = 0
}
