package udpengine

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"
)

// BenchmarkEngineEcho measures raw transport throughput — an echo
// handler strips everything but the socket plane, so batched-vs-portable
// here is the syscall amortization itself. The client drives windows of
// WINDOW in-flight datagrams through a ClientBatch (itself batched, so
// the generator is not the bottleneck) and b.N counts round-tripped
// datagrams.
func BenchmarkEngineEcho(b *testing.B) {
	for _, mode := range []struct {
		name     string
		portable bool
		gso      bool
	}{{"batched", false, false}, {"portable", true, false}, {"gso", false, true}} {
		b.Run(mode.name, func(b *testing.B) {
			e, err := Listen("127.0.0.1:0", echoHandler, Config{
				Batch: 32, Sockets: 1, Portable: mode.portable, GSO: mode.gso,
			})
			if err != nil {
				b.Fatalf("Listen: %v", err)
			}
			defer e.Close()
			conn, err := net.Dial("udp", e.Addr().String())
			if err != nil {
				b.Fatalf("dial: %v", err)
			}
			defer conn.Close()
			uconn := conn.(*net.UDPConn)
			cb, err := NewClientBatch(uconn, 32, 2048)
			if err != nil {
				b.Fatalf("client: %v", err)
			}
			if mode.gso && !cb.EnableGSO() {
				b.Skip("UDP_SEGMENT unavailable on this kernel")
			}
			payload := bytes.Repeat([]byte{0x5A}, 64)
			const window = 32
			b.ReportAllocs()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			done := 0
			for done < b.N {
				n := min(window, b.N-done)
				for i := 0; i < n; i++ {
					if err := cb.Queue(payload); err != nil {
						b.Fatalf("queue: %v", err)
					}
				}
				if err := cb.Flush(); err != nil {
					b.Fatalf("flush: %v", err)
				}
				got := 0
				uconn.SetReadDeadline(time.Now().Add(5 * time.Second))
				for got < n {
					views, err := cb.Recv()
					if err != nil {
						b.Fatalf("recv after %d/%d: %v", got, n, err)
					}
					got += len(views)
				}
				done += n
			}
			b.StopTimer()
			rate := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(rate, "datagrams/s")
		})
	}
}

// BenchmarkEngineEchoMultiSocket spreads the same echo load over
// multiple reuseport sockets from multiple client flows — the shape the
// CI multi-core run exercises; on a single-core host the sockets mostly
// serialize.
func BenchmarkEngineEchoMultiSocket(b *testing.B) {
	const sockets = 2
	e, err := Listen("127.0.0.1:0", echoHandler, Config{Batch: 32, Sockets: sockets})
	if err != nil {
		b.Fatalf("Listen: %v", err)
	}
	defer e.Close()
	if !e.Batched() {
		b.Skip("batched engine unavailable on this platform")
	}
	payload := bytes.Repeat([]byte{0x5A}, 64)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		conn, err := net.Dial("udp", e.Addr().String())
		if err != nil {
			b.Errorf("dial: %v", err)
			return
		}
		defer conn.Close()
		uconn := conn.(*net.UDPConn)
		cb, err := NewClientBatch(uconn, 32, 2048)
		if err != nil {
			b.Errorf("client: %v", err)
			return
		}
		for pb.Next() {
			if err := cb.Queue(payload); err != nil {
				b.Errorf("queue: %v", err)
				return
			}
			if cb.Pending() < 32 {
				continue // fill the window before flushing
			}
			if err := flushAndDrain(uconn, cb, 32); err != nil {
				b.Errorf("%v", err)
				return
			}
		}
		if p := cb.Pending(); p > 0 {
			if err := flushAndDrain(uconn, cb, p); err != nil {
				b.Errorf("%v", err)
			}
		}
	})
}

func flushAndDrain(conn *net.UDPConn, cb *ClientBatch, want int) error {
	if err := cb.Flush(); err != nil {
		return fmt.Errorf("flush: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got := 0
	for got < want {
		views, err := cb.Recv()
		if err != nil {
			return fmt.Errorf("recv after %d/%d: %w", got, want, err)
		}
		got += len(views)
	}
	return nil
}
