//go:build linux && (amd64 || arm64)

package udpengine

import (
	"fmt"
	"net"
	"syscall"
)

// ClientBatch batches sends and receives on a connected UDP socket — the
// load-generator counterpart of the serving engine, so a stub population
// can produce traffic as fast as the batched servers consume it. Queue
// copies datagrams into a contiguous send arena (flushing automatically
// when the batch fills), Flush pushes the remainder out in one sendmmsg,
// and Recv drains up to a batch of answers per recvmmsg. On this
// platform every call moves up to Batch datagrams per syscall; the
// fallback build runs the identical API over one-datagram syscalls.
//
// A ClientBatch is not safe for concurrent use; give each worker its own.
type ClientBatch struct {
	conn  *net.UDPConn
	rc    syscall.RawConn
	batch int
	slot  int

	sendArena []byte
	sendIovs  []iovec
	sendHdrs  []mmsghdr
	pending   int
	sendOff   int
	nsent     int
	werr      error
	wfn       func(fd uintptr) bool

	recvArena []byte
	recvIovs  []iovec
	recvHdrs  []mmsghdr
	views     [][]byte
	nrecv     int
	rerr      error
	rfn       func(fd uintptr) bool
}

// NewClientBatch wraps a connected UDP socket (net.Dial "udp"). batch
// and slotSize default to 32 and 4096 when ≤ 0.
func NewClientBatch(conn *net.UDPConn, batch, slotSize int) (*ClientBatch, error) {
	if batch <= 0 {
		batch = 32
	}
	if batch > 1024 {
		batch = 1024
	}
	if slotSize <= 0 {
		slotSize = 4096
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, fmt.Errorf("udpengine: client syscall conn: %w", err)
	}
	c := &ClientBatch{
		conn:      conn,
		rc:        rc,
		batch:     batch,
		slot:      slotSize,
		sendArena: make([]byte, batch*slotSize),
		sendIovs:  make([]iovec, batch),
		sendHdrs:  make([]mmsghdr, batch),
		recvArena: make([]byte, batch*slotSize),
		recvIovs:  make([]iovec, batch),
		recvHdrs:  make([]mmsghdr, batch),
		views:     make([][]byte, 0, batch),
	}
	for i := 0; i < batch; i++ {
		// Connected socket: no per-datagram sockaddr, the kernel routes
		// by the connection's peer.
		c.sendIovs[i] = iovec{base: &c.sendArena[i*slotSize]}
		c.sendHdrs[i].hdr.iov = &c.sendIovs[i]
		c.sendHdrs[i].hdr.iovlen = 1
		c.recvIovs[i] = iovec{base: &c.recvArena[i*slotSize], len: uint64(slotSize)}
		c.recvHdrs[i].hdr.iov = &c.recvIovs[i]
		c.recvHdrs[i].hdr.iovlen = 1
	}
	c.wfn = func(fd uintptr) bool {
		c.nsent, c.werr = sendmmsg(fd, c.sendHdrs[c.sendOff:c.pending], syscall.MSG_DONTWAIT)
		return c.werr != syscall.EAGAIN
	}
	c.rfn = func(fd uintptr) bool {
		c.nrecv, c.rerr = recvmmsg(fd, c.recvHdrs, syscall.MSG_DONTWAIT)
		return c.rerr != syscall.EAGAIN
	}
	return c, nil
}

// Batched reports whether syscall batching is actually in effect.
func (c *ClientBatch) Batched() bool { return true }

// Pending is the number of queued-but-unflushed datagrams.
func (c *ClientBatch) Pending() int { return c.pending }

// Queue copies pkt into the send arena, flushing first when the batch is
// full. Packets larger than the slot size are rejected.
func (c *ClientBatch) Queue(pkt []byte) error {
	if len(pkt) > c.slot {
		return fmt.Errorf("udpengine: %d-byte datagram exceeds %d-byte slot", len(pkt), c.slot)
	}
	if c.pending == c.batch {
		if err := c.Flush(); err != nil {
			return err
		}
	}
	w := c.pending
	copy(c.sendArena[w*c.slot:], pkt)
	c.sendIovs[w].len = uint64(len(pkt))
	c.pending++
	return nil
}

// Flush sends every queued datagram, resuming across partial sendmmsg
// returns. Returns the number of datagrams handed to the kernel.
func (c *ClientBatch) Flush() (err error) {
	if c.pending == 0 {
		return nil
	}
	defer func() { c.pending = 0 }()
	c.sendOff = 0
	for c.sendOff < c.pending {
		if werr := c.rc.Write(c.wfn); werr != nil {
			return werr
		}
		if c.werr != nil {
			return c.werr
		}
		if c.nsent <= 0 {
			return fmt.Errorf("udpengine: sendmmsg made no progress")
		}
		c.sendOff += c.nsent
	}
	return nil
}

// Recv blocks (honoring the connection's read deadline) until at least
// one datagram arrives, then drains up to a batch of them in one
// recvmmsg. The returned views alias the receive arena and are valid
// only until the next Recv.
func (c *ClientBatch) Recv() ([][]byte, error) {
	if err := c.rc.Read(c.rfn); err != nil {
		return nil, err
	}
	if c.rerr != nil {
		return nil, c.rerr
	}
	c.views = c.views[:0]
	for i := 0; i < c.nrecv; i++ {
		n := int(c.recvHdrs[i].len)
		c.views = append(c.views, c.recvArena[i*c.slot:i*c.slot+n])
	}
	return c.views, nil
}
