//go:build linux && (amd64 || arm64)

package udpengine

import (
	"fmt"
	"net"
	"syscall"
)

// ClientBatch batches sends and receives on a connected UDP socket — the
// load-generator counterpart of the serving engine, so a stub population
// can produce traffic as fast as the batched servers consume it. Queue
// copies datagrams into a contiguous send arena (flushing automatically
// when the batch fills), Flush pushes the remainder out in one sendmmsg,
// and Recv drains up to a batch of answers per recvmmsg. On this
// platform every call moves up to Batch datagrams per syscall; the
// fallback build runs the identical API over one-datagram syscalls.
//
// A ClientBatch is not safe for concurrent use; give each worker its own.
type ClientBatch struct {
	conn  *net.UDPConn
	rc    syscall.RawConn
	batch int
	slot  int

	sendArena []byte
	sendIovs  []iovec
	sendHdrs  []mmsghdr
	pending   int
	sendOff   int
	nsent     int
	werr      error
	wfn       func(fd uintptr) bool

	recvArena []byte
	recvIovs  []iovec
	recvHdrs  []mmsghdr
	views     [][]byte
	nrecv     int
	rerr      error
	rfn       func(fd uintptr) bool

	// Send-side GSO state (EnableGSO): queued equal-size runs coalesce
	// into UDP_SEGMENT super-datagrams. The connected socket fixes the
	// destination, so every run groups on size alone. The plain
	// sendHdrs stay valid, giving runtime refusals a byte-identical
	// plain resend.
	gso      bool
	gsoHdrs  []mmsghdr
	gsoCtl   []byte
	gsoStart []int
	ngroups  int
	goff     int
	gnsent   int
	gwerr    error
	gwfn     func(fd uintptr) bool
}

// NewClientBatch wraps a connected UDP socket (net.Dial "udp"). batch
// and slotSize default to 32 and 4096 when ≤ 0.
func NewClientBatch(conn *net.UDPConn, batch, slotSize int) (*ClientBatch, error) {
	if batch <= 0 {
		batch = 32
	}
	if batch > 1024 {
		batch = 1024
	}
	if slotSize <= 0 {
		slotSize = 4096
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, fmt.Errorf("udpengine: client syscall conn: %w", err)
	}
	c := &ClientBatch{
		conn:      conn,
		rc:        rc,
		batch:     batch,
		slot:      slotSize,
		sendArena: make([]byte, batch*slotSize),
		sendIovs:  make([]iovec, batch),
		sendHdrs:  make([]mmsghdr, batch),
		recvArena: make([]byte, batch*slotSize),
		recvIovs:  make([]iovec, batch),
		recvHdrs:  make([]mmsghdr, batch),
		views:     make([][]byte, 0, batch),
	}
	for i := 0; i < batch; i++ {
		// Connected socket: no per-datagram sockaddr, the kernel routes
		// by the connection's peer.
		c.sendIovs[i] = iovec{base: &c.sendArena[i*slotSize]}
		c.sendHdrs[i].hdr.iov = &c.sendIovs[i]
		c.sendHdrs[i].hdr.iovlen = 1
		c.recvIovs[i] = iovec{base: &c.recvArena[i*slotSize], len: uint64(slotSize)}
		c.recvHdrs[i].hdr.iov = &c.recvIovs[i]
		c.recvHdrs[i].hdr.iovlen = 1
	}
	c.wfn = func(fd uintptr) bool {
		c.nsent, c.werr = sendmmsg(fd, c.sendHdrs[c.sendOff:c.pending], syscall.MSG_DONTWAIT)
		return c.werr != syscall.EAGAIN
	}
	c.rfn = func(fd uintptr) bool {
		c.nrecv, c.rerr = recvmmsg(fd, c.recvHdrs, syscall.MSG_DONTWAIT)
		return c.rerr != syscall.EAGAIN
	}
	return c, nil
}

// Batched reports whether syscall batching is actually in effect.
func (c *ClientBatch) Batched() bool { return true }

// EnableGSO turns on segmentation offload for this client's sends:
// Flush coalesces runs of equal-size queued datagrams into one
// UDP_SEGMENT super-datagram each, so a batch of uniform queries costs
// the kernel one stack traversal instead of one per packet. Reports
// whether the kernel accepted the option; on refusal (pre-4.18) the
// client keeps its plain sendmmsg behavior. Receive-side GRO is left
// off — answers are consumed one Recv view per datagram either way.
func (c *ClientBatch) EnableGSO() bool {
	ok := false
	if err := c.rc.Control(func(fd uintptr) { ok = probeGSO(int(fd)) }); err != nil || !ok {
		return false
	}
	c.gso = true
	c.gsoHdrs = make([]mmsghdr, c.batch)
	c.gsoCtl = alignedBytes(c.batch * gsoCtlSlot)
	c.gsoStart = make([]int, c.batch+1)
	c.gwfn = func(fd uintptr) bool {
		c.gnsent, c.gwerr = sendmmsg(fd, c.gsoHdrs[c.goff:c.ngroups], syscall.MSG_DONTWAIT)
		return c.gwerr != syscall.EAGAIN
	}
	return true
}

// GSO reports whether segmentation-offload sending is active.
func (c *ClientBatch) GSO() bool { return c.gso }

// Pending is the number of queued-but-unflushed datagrams.
func (c *ClientBatch) Pending() int { return c.pending }

// Queue copies pkt into the send arena, flushing first when the batch is
// full. Packets larger than the slot size are rejected.
func (c *ClientBatch) Queue(pkt []byte) error {
	if len(pkt) > c.slot {
		return fmt.Errorf("udpengine: %d-byte datagram exceeds %d-byte slot", len(pkt), c.slot)
	}
	if c.pending == c.batch {
		if err := c.Flush(); err != nil {
			return err
		}
	}
	w := c.pending
	copy(c.sendArena[w*c.slot:], pkt)
	c.sendIovs[w].len = uint64(len(pkt))
	c.pending++
	return nil
}

// Flush sends every queued datagram, resuming across partial sendmmsg
// returns. With GSO enabled the batch goes out as super-datagrams; a
// runtime refusal of a segmented send disables GSO for the rest of the
// client's life and resends the remainder through the plain path.
func (c *ClientBatch) Flush() (err error) {
	if c.pending == 0 {
		return nil
	}
	defer func() { c.pending = 0 }()
	from := 0
	if c.gso && c.pending > 1 {
		from, err = c.flushGSO()
		if err != nil {
			return err
		}
	}
	c.sendOff = from
	for c.sendOff < c.pending {
		if werr := c.rc.Write(c.wfn); werr != nil {
			return werr
		}
		if c.werr != nil {
			return c.werr
		}
		if c.nsent <= 0 {
			return fmt.Errorf("udpengine: sendmmsg made no progress")
		}
		c.sendOff += c.nsent
	}
	return nil
}

// flushGSO groups the queued batch into equal-size runs (each at most
// UDP_MAX_SEGMENTS segments / the UDP payload cap, a shorter datagram
// only as a run's tail) and sends one UDP_SEGMENT mmsghdr per run.
// Returns the index of the first datagram not handed to the kernel;
// a refused segmented send permanently drops back to plain mode.
func (c *ClientBatch) flushGSO() (int, error) {
	ng := 0
	for i := 0; i < c.pending; {
		segLen := c.sendIovs[i].len
		total := segLen
		j := i + 1
		for j < c.pending && j-i < maxGSOSegments {
			l := c.sendIovs[j].len
			if l > segLen || total+l > maxGSOBytes {
				break
			}
			total += l
			j++
			if l < segLen {
				break
			}
		}
		c.gsoStart[ng] = i
		h := &c.gsoHdrs[ng]
		*h = c.sendHdrs[i]
		h.hdr.flags = 0
		h.len = 0
		if j-i > 1 {
			h.hdr.iovlen = uint64(j - i)
			ctl := c.gsoCtl[ng*gsoCtlSlot : (ng+1)*gsoCtlSlot]
			h.hdr.control = &ctl[0]
			h.hdr.controllen = putGSOCmsg(ctl, uint16(segLen))
		} else {
			h.hdr.iovlen = 1
			h.hdr.control = nil
			h.hdr.controllen = 0
		}
		ng++
		i = j
	}
	c.ngroups = ng
	c.gsoStart[ng] = c.pending

	c.goff = 0
	for c.goff < c.ngroups {
		if werr := c.rc.Write(c.gwfn); werr != nil {
			return c.pending, werr
		}
		if c.gwerr != nil {
			if segs := c.gsoStart[c.goff+1] - c.gsoStart[c.goff]; segs > 1 {
				c.gso = false
				return c.gsoStart[c.goff], nil // plain path resends the rest
			}
			return c.pending, c.gwerr
		}
		if c.gnsent <= 0 {
			return c.pending, fmt.Errorf("udpengine: segmented sendmmsg made no progress")
		}
		c.goff += c.gnsent
	}
	return c.pending, nil
}

// Recv blocks (honoring the connection's read deadline) until at least
// one datagram arrives, then drains up to a batch of them in one
// recvmmsg. The returned views alias the receive arena and are valid
// only until the next Recv.
func (c *ClientBatch) Recv() ([][]byte, error) {
	if err := c.rc.Read(c.rfn); err != nil {
		return nil, err
	}
	if c.rerr != nil {
		return nil, c.rerr
	}
	c.views = c.views[:0]
	for i := 0; i < c.nrecv; i++ {
		n := int(c.recvHdrs[i].len)
		c.views = append(c.views, c.recvArena[i*c.slot:i*c.slot+n])
	}
	return c.views, nil
}
