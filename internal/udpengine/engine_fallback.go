//go:build !linux || !(amd64 || arm64)

package udpengine

// batchedSupported gates Listen's dispatch: off Linux (or on an arch we
// have no syscall numbers for) every engine is the portable one.
const batchedSupported = false

func listenBatched(addr string, h Handler, cfg Config) (Engine, error) {
	return listenPortable(addr, h, cfg)
}
