// Package rdns models the reverse-DNS machinery of §4.3 of the paper: PTR
// records, the in-addr.arpa/ip6.arpa reverse names, Facebook's operational
// PTR naming scheme (airport-coded site plus — at 12 of 13 sites — the
// host's IPv4 address embedded even in the PTR of an IPv6 address), and
// the dual-stack matcher that joins a resolver's IPv4 and IPv6 addresses
// through those embedded IPv4s.
package rdns

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"

	"dnscentral/internal/dnswire"
)

// ReverseName builds the in-addr.arpa (IPv4) or ip6.arpa (IPv6) name whose
// PTR record names the host (RFC 1035 §3.5, RFC 3596 §2.5).
func ReverseName(addr netip.Addr) string {
	addr = addr.Unmap()
	if addr.Is4() {
		b := addr.As4()
		return fmt.Sprintf("%d.%d.%d.%d.in-addr.arpa.", b[3], b[2], b[1], b[0])
	}
	b := addr.As16()
	var sb strings.Builder
	const hexdigits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		sb.WriteByte(hexdigits[b[i]&0xF])
		sb.WriteByte('.')
		sb.WriteByte(hexdigits[b[i]>>4])
		sb.WriteByte('.')
	}
	sb.WriteString("ip6.arpa.")
	return sb.String()
}

// ParseReverseName inverts ReverseName.
func ParseReverseName(name string) (netip.Addr, bool) {
	name = dnswire.CanonicalName(name)
	if strings.HasSuffix(name, ".in-addr.arpa.") {
		parts := strings.Split(strings.TrimSuffix(name, ".in-addr.arpa."), ".")
		if len(parts) != 4 {
			return netip.Addr{}, false
		}
		var b [4]byte
		for i, p := range parts {
			var v int
			if _, err := fmt.Sscanf(p, "%d", &v); err != nil || v < 0 || v > 255 {
				return netip.Addr{}, false
			}
			b[3-i] = byte(v)
		}
		return netip.AddrFrom4(b), true
	}
	if strings.HasSuffix(name, ".ip6.arpa.") {
		parts := strings.Split(strings.TrimSuffix(name, ".ip6.arpa."), ".")
		if len(parts) != 32 {
			return netip.Addr{}, false
		}
		var b [16]byte
		for i, p := range parts {
			if len(p) != 1 {
				return netip.Addr{}, false
			}
			v := strings.IndexByte("0123456789abcdef", p[0])
			if v < 0 {
				return netip.Addr{}, false
			}
			// parts[0] is the lowest nibble of the last byte.
			byteIdx := 15 - i/2
			if i%2 == 0 {
				b[byteIdx] |= byte(v)
			} else {
				b[byteIdx] |= byte(v) << 4
			}
		}
		return netip.AddrFrom16(b), true
	}
	return netip.Addr{}, false
}

// DB is a PTR database: address → host name. Safe for concurrent use.
type DB struct {
	mu  sync.RWMutex
	ptr map[netip.Addr]string
}

// NewDB returns an empty PTR database.
func NewDB() *DB { return &DB{ptr: make(map[netip.Addr]string)} }

// Add registers the PTR target for addr.
func (db *DB) Add(addr netip.Addr, target string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.ptr[addr.Unmap()] = dnswire.CanonicalName(target)
}

// Lookup performs the "reverse lookup" of the paper: address → PTR target.
func (db *DB) Lookup(addr netip.Addr) (string, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.ptr[addr.Unmap()]
	return t, ok
}

// Len returns the number of PTR records.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.ptr)
}

// FacebookSites are the 13 anycast/resolver sites (airport codes) the
// paper identifies from Facebook's PTR names. Site index 0 ("location 1"
// in Figure 5) is the dominant one; the last site is the single site whose
// PTR names do NOT embed the host IPv4 ("For 12 of these sites, the PTR
// record names also include the IPv4 address").
var FacebookSites = []string{
	"ams", "fra", "lhr", "cdg", "iad", "atl", "dfw", "sea", "sjc", "gru", "nrt", "sin", "syd",
}

// FacebookPTRDomain is the suffix of the synthetic Facebook resolver PTRs.
const FacebookPTRDomain = "fbdns.tfbnw.net."

// SiteEmbedsIPv4 reports whether the site's PTR names embed the host IPv4;
// true for all but the last of the 13 sites.
func SiteEmbedsIPv4(site string) bool {
	return site != FacebookSites[len(FacebookSites)-1]
}

// FacebookPTRName builds a PTR target in Facebook's operational style:
// "resolver-<site>-<a>-<b>-<c>-<d>.fbdns.tfbnw.net." embedding hostV4, or
// "resolver-<site>-x<n>.fbdns.tfbnw.net." for the non-embedding site.
func FacebookPTRName(site string, hostV4 netip.Addr, ordinal int) string {
	if !SiteEmbedsIPv4(site) {
		return fmt.Sprintf("resolver-%s-x%d.%s", site, ordinal, FacebookPTRDomain)
	}
	b := hostV4.Unmap().As4()
	return fmt.Sprintf("resolver-%s-%d-%d-%d-%d.%s", site, b[0], b[1], b[2], b[3], FacebookPTRDomain)
}

// ParseFacebookPTR extracts the site code and (when embedded) the IPv4
// address from a Facebook-style PTR target.
func ParseFacebookPTR(target string) (site string, hostV4 netip.Addr, hasV4 bool, ok bool) {
	target = dnswire.CanonicalName(target)
	if !strings.HasSuffix(target, "."+FacebookPTRDomain) {
		return "", netip.Addr{}, false, false
	}
	label := strings.TrimSuffix(target, "."+FacebookPTRDomain)
	parts := strings.Split(label, "-")
	if len(parts) < 3 || parts[0] != "resolver" {
		return "", netip.Addr{}, false, false
	}
	site = parts[1]
	if len(parts) == 6 {
		var b [4]byte
		for i := 0; i < 4; i++ {
			var v int
			if _, err := fmt.Sscanf(parts[2+i], "%d", &v); err != nil || v < 0 || v > 255 {
				return "", netip.Addr{}, false, false
			}
			b[i] = byte(v)
		}
		return site, netip.AddrFrom4(b), true, true
	}
	if len(parts) == 3 && strings.HasPrefix(parts[2], "x") {
		return site, netip.Addr{}, false, true
	}
	return "", netip.Addr{}, false, false
}

// DualStack is one resolver identified on both families.
type DualStack struct {
	Site string
	Key  netip.Addr // the embedded IPv4 joining the addresses
	V4   []netip.Addr
	V6   []netip.Addr
}

// Matcher reproduces the paper's dual-stack identification: observe the
// PTR target of every address that queried, join addresses whose PTR
// embeds the same IPv4.
type Matcher struct {
	mu      sync.Mutex
	byKey   map[netip.Addr]*DualStack
	noPTR   int
	nonFB   int
	observed int
}

// NewMatcher returns an empty matcher.
func NewMatcher() *Matcher {
	return &Matcher{byKey: make(map[netip.Addr]*DualStack)}
}

// Observe records one (address, PTR target) observation. Addresses whose
// PTR is missing (target "") or not Facebook-shaped are counted but not
// matched — the paper reports 1 IPv4 and 2 IPv6 addresses without PTRs.
func (m *Matcher) Observe(addr netip.Addr, target string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.observed++
	if target == "" {
		m.noPTR++
		return
	}
	site, key, hasV4, ok := ParseFacebookPTR(target)
	if !ok {
		m.nonFB++
		return
	}
	if !hasV4 {
		return // non-embedding site: cannot join families
	}
	ds, exists := m.byKey[key]
	if !exists {
		ds = &DualStack{Site: site, Key: key}
		m.byKey[key] = ds
	}
	a := addr.Unmap()
	if a.Is4() {
		ds.V4 = appendUnique(ds.V4, a)
	} else {
		ds.V6 = appendUnique(ds.V6, a)
	}
}

func appendUnique(s []netip.Addr, a netip.Addr) []netip.Addr {
	for _, x := range s {
		if x == a {
			return s
		}
	}
	return append(s, a)
}

// DualStacks returns the resolvers seen on both families, sorted by key.
func (m *Matcher) DualStacks() []DualStack {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []DualStack
	for _, ds := range m.byKey {
		if len(ds.V4) > 0 && len(ds.V6) > 0 {
			out = append(out, *ds)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out
}

// Unmatched reports the observation counts that could not be joined.
func (m *Matcher) Unmatched() (noPTR, nonFacebook int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.noPTR, m.nonFB
}
