package rdns

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestReverseNameV4(t *testing.T) {
	got := ReverseName(netip.MustParseAddr("192.0.2.17"))
	if got != "17.2.0.192.in-addr.arpa." {
		t.Errorf("got %q", got)
	}
}

func TestReverseNameV6(t *testing.T) {
	got := ReverseName(netip.MustParseAddr("2001:db8::567:89ab"))
	want := "b.a.9.8.7.6.5.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.8.b.d.0.1.0.0.2.ip6.arpa."
	if got != want {
		t.Errorf("got  %q\nwant %q", got, want)
	}
}

func TestParseReverseNameRejectsGarbage(t *testing.T) {
	bad := []string{
		"example.com.",
		"1.2.3.in-addr.arpa.",
		"256.2.0.192.in-addr.arpa.",
		"x.2.0.192.in-addr.arpa.",
		"1.2.ip6.arpa.",
		"zz.ip6.arpa.",
	}
	for _, name := range bad {
		if _, ok := ParseReverseName(name); ok {
			t.Errorf("parsed %q", name)
		}
	}
}

func TestPropertyReverseNameRoundTrip(t *testing.T) {
	f := func(seed int64, v6 bool) bool {
		r := rand.New(rand.NewSource(seed))
		var addr netip.Addr
		if v6 {
			var b [16]byte
			r.Read(b[:])
			addr = netip.AddrFrom16(b)
		} else {
			var b [4]byte
			r.Read(b[:])
			addr = netip.AddrFrom4(b)
		}
		got, ok := ParseReverseName(ReverseName(addr))
		return ok && got == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDB(t *testing.T) {
	db := NewDB()
	a := netip.MustParseAddr("192.0.2.1")
	if _, ok := db.Lookup(a); ok {
		t.Error("empty DB hit")
	}
	db.Add(a, "host.example.com")
	got, ok := db.Lookup(a)
	if !ok || got != "host.example.com." {
		t.Errorf("Lookup = %q,%v", got, ok)
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	// v4-mapped v6 form of the same address must hit.
	mapped := netip.AddrFrom16(a.As16())
	if _, ok := db.Lookup(mapped); !ok {
		t.Error("v4-mapped miss")
	}
}

func TestFacebookSitesShape(t *testing.T) {
	if len(FacebookSites) != 13 {
		t.Fatalf("sites = %d, want 13 (paper identifies 13 sites)", len(FacebookSites))
	}
	embedding := 0
	for _, s := range FacebookSites {
		if SiteEmbedsIPv4(s) {
			embedding++
		}
	}
	if embedding != 12 {
		t.Fatalf("embedding sites = %d, want 12", embedding)
	}
}

func TestFacebookPTRRoundTrip(t *testing.T) {
	host := netip.MustParseAddr("203.0.113.77")
	name := FacebookPTRName("ams", host, 0)
	site, got, hasV4, ok := ParseFacebookPTR(name)
	if !ok || !hasV4 || site != "ams" || got != host {
		t.Fatalf("parse(%q) = %q %v %v %v", name, site, got, hasV4, ok)
	}
}

func TestFacebookPTRNonEmbeddingSite(t *testing.T) {
	site := FacebookSites[len(FacebookSites)-1]
	name := FacebookPTRName(site, netip.MustParseAddr("203.0.113.1"), 42)
	gotSite, _, hasV4, ok := ParseFacebookPTR(name)
	if !ok || hasV4 || gotSite != site {
		t.Fatalf("parse(%q) = %q %v %v", name, gotSite, hasV4, ok)
	}
}

func TestParseFacebookPTRRejects(t *testing.T) {
	bad := []string{
		"resolver-ams-1-2-3-4.other.example.",
		"host-ams-1-2-3-4." + FacebookPTRDomain,
		"resolver-ams-1-2-3." + FacebookPTRDomain,
		"resolver-ams-1-2-3-999." + FacebookPTRDomain,
		"resolver." + FacebookPTRDomain,
	}
	for _, name := range bad {
		if _, _, _, ok := ParseFacebookPTR(name); ok {
			t.Errorf("parsed %q", name)
		}
	}
}

func TestMatcherJoinsFamilies(t *testing.T) {
	m := NewMatcher()
	host := netip.MustParseAddr("203.0.113.10")
	v4 := netip.MustParseAddr("203.0.113.10")
	v6a := netip.MustParseAddr("2001:db8:face::1")
	v6b := netip.MustParseAddr("2001:db8:face::2")
	ptr := FacebookPTRName("fra", host, 0)
	m.Observe(v4, ptr)
	m.Observe(v6a, ptr)
	m.Observe(v6b, ptr)
	m.Observe(v6a, ptr) // duplicate observation must not duplicate entries
	ds := m.DualStacks()
	if len(ds) != 1 {
		t.Fatalf("dual stacks = %d", len(ds))
	}
	if ds[0].Site != "fra" || len(ds[0].V4) != 1 || len(ds[0].V6) != 2 {
		t.Fatalf("ds = %+v", ds[0])
	}
}

func TestMatcherSingleFamilyNotDualStack(t *testing.T) {
	m := NewMatcher()
	host := netip.MustParseAddr("203.0.113.20")
	m.Observe(netip.MustParseAddr("203.0.113.20"), FacebookPTRName("lhr", host, 0))
	if len(m.DualStacks()) != 0 {
		t.Error("single-family resolver reported dual-stack")
	}
}

func TestMatcherCountsUnmatched(t *testing.T) {
	m := NewMatcher()
	m.Observe(netip.MustParseAddr("192.0.2.1"), "")
	m.Observe(netip.MustParseAddr("192.0.2.2"), "something.google.com.")
	noPTR, nonFB := m.Unmatched()
	if noPTR != 1 || nonFB != 1 {
		t.Errorf("unmatched = %d,%d", noPTR, nonFB)
	}
}

func TestMatcherNonEmbeddingSiteCannotJoin(t *testing.T) {
	m := NewMatcher()
	site := FacebookSites[len(FacebookSites)-1]
	m.Observe(netip.MustParseAddr("203.0.113.30"), FacebookPTRName(site, netip.Addr{}, 1))
	m.Observe(netip.MustParseAddr("2001:db8::30"), FacebookPTRName(site, netip.Addr{}, 1))
	if len(m.DualStacks()) != 0 {
		t.Error("non-embedding site joined families")
	}
}
