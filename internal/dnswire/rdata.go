package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Errors returned by the RDATA codec.
var (
	ErrTruncatedRData = errors.New("dnswire: truncated rdata")
	ErrBadRData       = errors.New("dnswire: malformed rdata")
)

// RData is the typed payload of a resource record. Concrete implementations
// (AData, NSData, ...) know how to append themselves to the wire.
// Compression is only used for name fields where RFC 3597 permits it
// (NS, CNAME, PTR, SOA, MX); DNSSEC types always embed uncompressed names.
type RData interface {
	// Type returns the record type this payload belongs to.
	Type() Type
	// appendTo appends the RDATA wire bytes (without the length prefix).
	appendTo(b []byte, comp *nameCompressor) ([]byte, error)
	// String renders the RDATA in zone-file presentation style.
	String() string
}

// RR is one resource record: an owner name, TTL, class and typed payload.
type RR struct {
	Name  string
	Class Class
	TTL   uint32
	Data  RData
}

// String renders the RR in zone-file style.
func (rr RR) String() string {
	return fmt.Sprintf("%s %d %s %s %s",
		CanonicalName(rr.Name), rr.TTL, rr.Class, rr.Data.Type(), rr.Data.String())
}

// AData is an IPv4 address record (RFC 1035).
type AData struct{ Addr netip.Addr }

// Type implements RData.
func (AData) Type() Type { return TypeA }

func (d AData) appendTo(b []byte, _ *nameCompressor) ([]byte, error) {
	if !d.Addr.Is4() {
		return b, fmt.Errorf("%w: A record requires IPv4, got %s", ErrBadRData, d.Addr)
	}
	a4 := d.Addr.As4()
	return append(b, a4[:]...), nil
}

// String implements RData.
func (d AData) String() string { return d.Addr.String() }

// AAAAData is an IPv6 address record (RFC 3596).
type AAAAData struct{ Addr netip.Addr }

// Type implements RData.
func (AAAAData) Type() Type { return TypeAAAA }

func (d AAAAData) appendTo(b []byte, _ *nameCompressor) ([]byte, error) {
	if !d.Addr.Is6() || d.Addr.Is4In6() {
		return b, fmt.Errorf("%w: AAAA record requires IPv6, got %s", ErrBadRData, d.Addr)
	}
	a16 := d.Addr.As16()
	return append(b, a16[:]...), nil
}

// String implements RData.
func (d AAAAData) String() string { return d.Addr.String() }

// NSData names an authoritative server for the owner zone.
type NSData struct{ Host string }

// Type implements RData.
func (NSData) Type() Type { return TypeNS }

func (d NSData) appendTo(b []byte, comp *nameCompressor) ([]byte, error) {
	return appendName(b, d.Host, comp)
}

// String implements RData.
func (d NSData) String() string { return CanonicalName(d.Host) }

// CNAMEData is a canonical-name alias.
type CNAMEData struct{ Target string }

// Type implements RData.
func (CNAMEData) Type() Type { return TypeCNAME }

func (d CNAMEData) appendTo(b []byte, comp *nameCompressor) ([]byte, error) {
	return appendName(b, d.Target, comp)
}

// String implements RData.
func (d CNAMEData) String() string { return CanonicalName(d.Target) }

// PTRData maps an address back to a name (reverse DNS).
type PTRData struct{ Target string }

// Type implements RData.
func (PTRData) Type() Type { return TypePTR }

func (d PTRData) appendTo(b []byte, comp *nameCompressor) ([]byte, error) {
	return appendName(b, d.Target, comp)
}

// String implements RData.
func (d PTRData) String() string { return CanonicalName(d.Target) }

// SOAData is the start-of-authority record of a zone.
type SOAData struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Type implements RData.
func (SOAData) Type() Type { return TypeSOA }

func (d SOAData) appendTo(b []byte, comp *nameCompressor) ([]byte, error) {
	var err error
	if b, err = appendName(b, d.MName, comp); err != nil {
		return b, err
	}
	if b, err = appendName(b, d.RName, comp); err != nil {
		return b, err
	}
	b = binary.BigEndian.AppendUint32(b, d.Serial)
	b = binary.BigEndian.AppendUint32(b, d.Refresh)
	b = binary.BigEndian.AppendUint32(b, d.Retry)
	b = binary.BigEndian.AppendUint32(b, d.Expire)
	b = binary.BigEndian.AppendUint32(b, d.Minimum)
	return b, nil
}

// String implements RData.
func (d SOAData) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		CanonicalName(d.MName), CanonicalName(d.RName),
		d.Serial, d.Refresh, d.Retry, d.Expire, d.Minimum)
}

// MXData names a mail exchanger with a preference value.
type MXData struct {
	Preference uint16
	Exchange   string
}

// Type implements RData.
func (MXData) Type() Type { return TypeMX }

func (d MXData) appendTo(b []byte, comp *nameCompressor) ([]byte, error) {
	b = binary.BigEndian.AppendUint16(b, d.Preference)
	return appendName(b, d.Exchange, comp)
}

// String implements RData.
func (d MXData) String() string {
	return fmt.Sprintf("%d %s", d.Preference, CanonicalName(d.Exchange))
}

// TXTData carries one or more character strings, each ≤255 bytes.
type TXTData struct{ Strings []string }

// Type implements RData.
func (TXTData) Type() Type { return TypeTXT }

func (d TXTData) appendTo(b []byte, _ *nameCompressor) ([]byte, error) {
	if len(d.Strings) == 0 {
		// An empty TXT is encoded as a single empty character-string.
		return append(b, 0), nil
	}
	for _, s := range d.Strings {
		if len(s) > 255 {
			return b, fmt.Errorf("%w: TXT string exceeds 255 bytes", ErrBadRData)
		}
		b = append(b, byte(len(s)))
		b = append(b, s...)
	}
	return b, nil
}

// String implements RData.
func (d TXTData) String() string {
	out := ""
	for i, s := range d.Strings {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%q", s)
	}
	return out
}

// SRVData locates a service (RFC 2782). Target must not be compressed.
type SRVData struct {
	Priority uint16
	Weight   uint16
	Port     uint16
	Target   string
}

// Type implements RData.
func (SRVData) Type() Type { return TypeSRV }

func (d SRVData) appendTo(b []byte, _ *nameCompressor) ([]byte, error) {
	b = binary.BigEndian.AppendUint16(b, d.Priority)
	b = binary.BigEndian.AppendUint16(b, d.Weight)
	b = binary.BigEndian.AppendUint16(b, d.Port)
	return appendName(b, d.Target, nil)
}

// String implements RData.
func (d SRVData) String() string {
	return fmt.Sprintf("%d %d %d %s", d.Priority, d.Weight, d.Port, CanonicalName(d.Target))
}

// DSData is a delegation-signer digest over a child zone's DNSKEY
// (RFC 4034 §5). DNSSEC-validating resolvers — the paper uses DS query
// volume as the validation signal — fetch these from the parent.
type DSData struct {
	KeyTag     uint16
	Algorithm  uint8
	DigestType uint8
	Digest     []byte
}

// Type implements RData.
func (DSData) Type() Type { return TypeDS }

func (d DSData) appendTo(b []byte, _ *nameCompressor) ([]byte, error) {
	b = binary.BigEndian.AppendUint16(b, d.KeyTag)
	b = append(b, d.Algorithm, d.DigestType)
	return append(b, d.Digest...), nil
}

// String implements RData.
func (d DSData) String() string {
	return fmt.Sprintf("%d %d %d %X", d.KeyTag, d.Algorithm, d.DigestType, d.Digest)
}

// DNSKEYData is a zone public key (RFC 4034 §2).
type DNSKEYData struct {
	Flags     uint16
	Protocol  uint8
	Algorithm uint8
	PublicKey []byte
}

// DNSKEY flag bits.
const (
	DNSKEYFlagZone = 1 << 8 // ZSK/KSK indicator bit
	DNSKEYFlagSEP  = 1      // secure entry point (KSK)
)

// Type implements RData.
func (DNSKEYData) Type() Type { return TypeDNSKEY }

func (d DNSKEYData) appendTo(b []byte, _ *nameCompressor) ([]byte, error) {
	b = binary.BigEndian.AppendUint16(b, d.Flags)
	b = append(b, d.Protocol, d.Algorithm)
	return append(b, d.PublicKey...), nil
}

// String implements RData.
func (d DNSKEYData) String() string {
	return fmt.Sprintf("%d %d %d (%d-byte key)", d.Flags, d.Protocol, d.Algorithm, len(d.PublicKey))
}

// KeyTag computes the RFC 4034 Appendix B key tag over the DNSKEY RDATA.
func (d DNSKEYData) KeyTag() uint16 {
	wire, _ := d.appendTo(nil, nil)
	var ac uint32
	for i, b := range wire {
		if i&1 == 1 {
			ac += uint32(b)
		} else {
			ac += uint32(b) << 8
		}
	}
	ac += ac >> 16 & 0xFFFF
	return uint16(ac)
}

// RRSIGData is a signature over an RRSet (RFC 4034 §3).
type RRSIGData struct {
	TypeCovered Type
	Algorithm   uint8
	Labels      uint8
	OriginalTTL uint32
	Expiration  uint32
	Inception   uint32
	KeyTag      uint16
	SignerName  string
	Signature   []byte
}

// Type implements RData.
func (RRSIGData) Type() Type { return TypeRRSIG }

func (d RRSIGData) appendTo(b []byte, _ *nameCompressor) ([]byte, error) {
	b = binary.BigEndian.AppendUint16(b, uint16(d.TypeCovered))
	b = append(b, d.Algorithm, d.Labels)
	b = binary.BigEndian.AppendUint32(b, d.OriginalTTL)
	b = binary.BigEndian.AppendUint32(b, d.Expiration)
	b = binary.BigEndian.AppendUint32(b, d.Inception)
	b = binary.BigEndian.AppendUint16(b, d.KeyTag)
	var err error
	if b, err = appendName(b, d.SignerName, nil); err != nil {
		return b, err
	}
	return append(b, d.Signature...), nil
}

// String implements RData.
func (d RRSIGData) String() string {
	return fmt.Sprintf("%s %d %d %d %d %d %d %s (%d-byte sig)",
		d.TypeCovered, d.Algorithm, d.Labels, d.OriginalTTL,
		d.Expiration, d.Inception, d.KeyTag, CanonicalName(d.SignerName), len(d.Signature))
}

// NSECData proves nonexistence ranges (RFC 4034 §4); used for aggressive
// negative caching (RFC 8198), which the paper cites as a possible cause of
// declining junk from the clouds.
type NSECData struct {
	NextName string
	Types    []Type
}

// Type implements RData.
func (NSECData) Type() Type { return TypeNSEC }

func (d NSECData) appendTo(b []byte, _ *nameCompressor) ([]byte, error) {
	var err error
	if b, err = appendName(b, d.NextName, nil); err != nil {
		return b, err
	}
	return appendTypeBitmap(b, d.Types)
}

// String implements RData.
func (d NSECData) String() string {
	out := CanonicalName(d.NextName)
	for _, t := range d.Types {
		out += " " + t.String()
	}
	return out
}

// appendTypeBitmap encodes the NSEC window-block type bitmap (RFC 4034 §4.1.2).
func appendTypeBitmap(b []byte, types []Type) ([]byte, error) {
	if len(types) == 0 {
		return b, nil
	}
	// Group by window (high byte), windows must be emitted in order.
	windows := make(map[byte][]byte) // window -> 32-byte bitmap
	for _, t := range types {
		w := byte(t >> 8)
		lo := byte(t)
		bm := windows[w]
		if bm == nil {
			bm = make([]byte, 32)
			windows[w] = bm
		}
		bm[lo/8] |= 0x80 >> (lo % 8)
	}
	for w := 0; w < 256; w++ {
		bm, ok := windows[byte(w)]
		if !ok {
			continue
		}
		// Trim trailing zero octets; length must be ≥1.
		n := 32
		for n > 0 && bm[n-1] == 0 {
			n--
		}
		b = append(b, byte(w), byte(n))
		b = append(b, bm[:n]...)
	}
	return b, nil
}

// parseTypeBitmap decodes an NSEC type bitmap.
func parseTypeBitmap(b []byte) ([]Type, error) {
	var types []Type
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, ErrTruncatedRData
		}
		window, n := b[0], int(b[1])
		b = b[2:]
		if n < 1 || n > 32 || len(b) < n {
			return nil, ErrBadRData
		}
		for i := 0; i < n; i++ {
			for bit := 0; bit < 8; bit++ {
				if b[i]&(0x80>>bit) != 0 {
					types = append(types, Type(uint16(window)<<8|uint16(i*8+bit)))
				}
			}
		}
		b = b[n:]
	}
	return types, nil
}

// CAAData restricts which CAs may issue for a domain (RFC 8659).
type CAAData struct {
	Flags uint8
	Tag   string
	Value string
}

// Type implements RData.
func (CAAData) Type() Type { return TypeCAA }

func (d CAAData) appendTo(b []byte, _ *nameCompressor) ([]byte, error) {
	if len(d.Tag) == 0 || len(d.Tag) > 255 {
		return b, fmt.Errorf("%w: CAA tag length %d", ErrBadRData, len(d.Tag))
	}
	b = append(b, d.Flags, byte(len(d.Tag)))
	b = append(b, d.Tag...)
	return append(b, d.Value...), nil
}

// String implements RData.
func (d CAAData) String() string {
	return fmt.Sprintf("%d %s %q", d.Flags, d.Tag, d.Value)
}

// RawData carries RDATA of a type this codec does not model (RFC 3597
// handling of unknown types); it round-trips verbatim.
type RawData struct {
	RRType Type
	Data   []byte
}

// Type implements RData.
func (d RawData) Type() Type { return d.RRType }

func (d RawData) appendTo(b []byte, _ *nameCompressor) ([]byte, error) {
	return append(b, d.Data...), nil
}

// String implements RData.
func (d RawData) String() string { return fmt.Sprintf("\\# %d %X", len(d.Data), d.Data) }

// parseRData decodes the RDATA of the given type from msg[off:off+rdlen].
// msg is the full message so compressed names can be followed.
func parseRData(typ Type, msg []byte, off, rdlen int) (RData, error) {
	if off+rdlen > len(msg) {
		return nil, ErrTruncatedRData
	}
	rd := msg[off : off+rdlen]
	switch typ {
	case TypeA:
		if rdlen != 4 {
			return nil, fmt.Errorf("%w: A rdlen %d", ErrBadRData, rdlen)
		}
		return AData{Addr: netip.AddrFrom4([4]byte(rd))}, nil
	case TypeAAAA:
		if rdlen != 16 {
			return nil, fmt.Errorf("%w: AAAA rdlen %d", ErrBadRData, rdlen)
		}
		return AAAAData{Addr: netip.AddrFrom16([16]byte(rd))}, nil
	case TypeNS:
		host, _, err := readName(msg, off)
		return NSData{Host: host}, err
	case TypeCNAME:
		target, _, err := readName(msg, off)
		return CNAMEData{Target: target}, err
	case TypePTR:
		target, _, err := readName(msg, off)
		return PTRData{Target: target}, err
	case TypeSOA:
		mname, next, err := readName(msg, off)
		if err != nil {
			return nil, err
		}
		rname, next, err := readName(msg, next)
		if err != nil {
			return nil, err
		}
		if next+20 > off+rdlen {
			return nil, ErrTruncatedRData
		}
		return SOAData{
			MName:   mname,
			RName:   rname,
			Serial:  binary.BigEndian.Uint32(msg[next:]),
			Refresh: binary.BigEndian.Uint32(msg[next+4:]),
			Retry:   binary.BigEndian.Uint32(msg[next+8:]),
			Expire:  binary.BigEndian.Uint32(msg[next+12:]),
			Minimum: binary.BigEndian.Uint32(msg[next+16:]),
		}, nil
	case TypeMX:
		if rdlen < 3 {
			return nil, ErrTruncatedRData
		}
		exch, _, err := readName(msg, off+2)
		return MXData{Preference: binary.BigEndian.Uint16(rd), Exchange: exch}, err
	case TypeTXT:
		var ss []string
		for i := 0; i < len(rd); {
			l := int(rd[i])
			if i+1+l > len(rd) {
				return nil, ErrTruncatedRData
			}
			ss = append(ss, string(rd[i+1:i+1+l]))
			i += 1 + l
		}
		return TXTData{Strings: ss}, nil
	case TypeSRV:
		if rdlen < 7 {
			return nil, ErrTruncatedRData
		}
		target, _, err := readName(msg, off+6)
		return SRVData{
			Priority: binary.BigEndian.Uint16(rd),
			Weight:   binary.BigEndian.Uint16(rd[2:]),
			Port:     binary.BigEndian.Uint16(rd[4:]),
			Target:   target,
		}, err
	case TypeDS:
		if rdlen < 4 {
			return nil, ErrTruncatedRData
		}
		return DSData{
			KeyTag:     binary.BigEndian.Uint16(rd),
			Algorithm:  rd[2],
			DigestType: rd[3],
			Digest:     append([]byte(nil), rd[4:]...),
		}, nil
	case TypeDNSKEY:
		if rdlen < 4 {
			return nil, ErrTruncatedRData
		}
		return DNSKEYData{
			Flags:     binary.BigEndian.Uint16(rd),
			Protocol:  rd[2],
			Algorithm: rd[3],
			PublicKey: append([]byte(nil), rd[4:]...),
		}, nil
	case TypeRRSIG:
		if rdlen < 18 {
			return nil, ErrTruncatedRData
		}
		signer, next, err := readName(msg, off+18)
		if err != nil {
			return nil, err
		}
		if next > off+rdlen {
			// The signer name may follow compression pointers beyond the
			// rdata, but its in-place encoding must end inside it.
			return nil, ErrTruncatedRData
		}
		return RRSIGData{
			TypeCovered: Type(binary.BigEndian.Uint16(rd)),
			Algorithm:   rd[2],
			Labels:      rd[3],
			OriginalTTL: binary.BigEndian.Uint32(rd[4:]),
			Expiration:  binary.BigEndian.Uint32(rd[8:]),
			Inception:   binary.BigEndian.Uint32(rd[12:]),
			KeyTag:      binary.BigEndian.Uint16(rd[16:]),
			SignerName:  signer,
			Signature:   append([]byte(nil), msg[next:off+rdlen]...),
		}, nil
	case TypeNSEC:
		next, rest, err := readName(msg, off)
		if err != nil {
			return nil, err
		}
		if rest > off+rdlen {
			return nil, ErrTruncatedRData
		}
		types, err := parseTypeBitmap(msg[rest : off+rdlen])
		if err != nil {
			return nil, err
		}
		return NSECData{NextName: next, Types: types}, nil
	case TypeSVCB, TypeHTTPS:
		return parseSVCB(typ, msg, off, rdlen)
	case TypeNSEC3:
		return parseNSEC3(rd)
	case TypeNSEC3PARAM:
		return parseNSEC3PARAM(rd)
	case TypeCAA:
		if rdlen < 2 {
			return nil, ErrTruncatedRData
		}
		tl := int(rd[1])
		if 2+tl > len(rd) {
			return nil, ErrTruncatedRData
		}
		return CAAData{Flags: rd[0], Tag: string(rd[2 : 2+tl]), Value: string(rd[2+tl:])}, nil
	default:
		return RawData{RRType: typ, Data: append([]byte(nil), rd...)}, nil
	}
}

// validateRData mirrors parseRData's accept/reject decisions without
// materializing anything, so dnswire.View counts exactly the same
// messages malformed as Unpack while staying allocation-free. Every
// branch here must track its parseRData twin — FuzzViewParity enforces
// the lockstep, so a change to one without the other fails fuzzing.
func validateRData(typ Type, msg []byte, off, rdlen int) error {
	if off+rdlen > len(msg) {
		return ErrTruncatedRData
	}
	rd := msg[off : off+rdlen]
	switch typ {
	case TypeA:
		if rdlen != 4 {
			return ErrBadRData
		}
	case TypeAAAA:
		if rdlen != 16 {
			return ErrBadRData
		}
	case TypeNS, TypeCNAME, TypePTR:
		_, err := skipName(msg, off)
		return err
	case TypeSOA:
		next, err := skipName(msg, off)
		if err != nil {
			return err
		}
		if next, err = skipName(msg, next); err != nil {
			return err
		}
		if next+20 > off+rdlen {
			return ErrTruncatedRData
		}
	case TypeMX:
		if rdlen < 3 {
			return ErrTruncatedRData
		}
		_, err := skipName(msg, off+2)
		return err
	case TypeTXT:
		for i := 0; i < len(rd); {
			l := int(rd[i])
			if i+1+l > len(rd) {
				return ErrTruncatedRData
			}
			i += 1 + l
		}
	case TypeSRV:
		if rdlen < 7 {
			return ErrTruncatedRData
		}
		_, err := skipName(msg, off+6)
		return err
	case TypeDS, TypeDNSKEY:
		if rdlen < 4 {
			return ErrTruncatedRData
		}
	case TypeRRSIG:
		if rdlen < 18 {
			return ErrTruncatedRData
		}
		next, err := skipName(msg, off+18)
		if err != nil {
			return err
		}
		if next > off+rdlen {
			return ErrTruncatedRData
		}
	case TypeNSEC:
		rest, err := skipName(msg, off)
		if err != nil {
			return err
		}
		if rest > off+rdlen {
			return ErrTruncatedRData
		}
		return validateTypeBitmap(msg[rest : off+rdlen])
	case TypeSVCB, TypeHTTPS:
		if rdlen < 3 {
			return ErrTruncatedRData
		}
		next, err := skipName(msg, off+2)
		if err != nil {
			return err
		}
		end := off + rdlen
		lastKey := -1
		for next < end {
			if next+4 > end {
				return ErrTruncatedRData
			}
			key := int(binary.BigEndian.Uint16(msg[next:]))
			vlen := int(binary.BigEndian.Uint16(msg[next+2:]))
			next += 4
			if next+vlen > end {
				return ErrTruncatedRData
			}
			if key <= lastKey {
				return ErrBadRData
			}
			lastKey = key
			next += vlen
		}
	case TypeNSEC3:
		if len(rd) < 5 {
			return ErrTruncatedRData
		}
		saltLen := int(rd[4])
		if len(rd) < 5+saltLen+1 {
			return ErrTruncatedRData
		}
		o := 5 + saltLen
		hashLen := int(rd[o])
		o++
		if len(rd) < o+hashLen {
			return ErrTruncatedRData
		}
		return validateTypeBitmap(rd[o+hashLen:])
	case TypeNSEC3PARAM:
		if len(rd) < 5 {
			return ErrTruncatedRData
		}
		if len(rd) < 5+int(rd[4]) {
			return ErrTruncatedRData
		}
	case TypeCAA:
		if rdlen < 2 {
			return ErrTruncatedRData
		}
		if 2+int(rd[1]) > len(rd) {
			return ErrTruncatedRData
		}
	default:
		// Unknown types (RFC 3597) are accepted verbatim, like parseRData.
	}
	return nil
}

// validateTypeBitmap mirrors parseTypeBitmap without building the type
// slice.
func validateTypeBitmap(b []byte) error {
	for len(b) > 0 {
		if len(b) < 2 {
			return ErrTruncatedRData
		}
		n := int(b[1])
		b = b[2:]
		if n < 1 || n > 32 || len(b) < n {
			return ErrBadRData
		}
		b = b[n:]
	}
	return nil
}
