package dnswire

import (
	"errors"
	"testing"
)

func TestViewQueryFields(t *testing.T) {
	m := NewQuery(0xBEEF, "WWW.Example.NL", TypeAAAA).WithEdns(1232, true)
	b, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var v View
	if err := v.Reset(b); err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.ID() != 0xBEEF || v.Response() || !v.RecursionDesired() {
		t.Fatalf("header fields: id=%#x qr=%v rd=%v", v.ID(), v.Response(), v.RecursionDesired())
	}
	if v.QDCount() != 1 || v.ARCount() != 1 {
		t.Fatalf("counts: qd=%d ar=%d", v.QDCount(), v.ARCount())
	}
	name, qtype, qclass, err := v.Question(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(name) != "www.example.nl." || qtype != TypeAAAA || qclass != ClassIN {
		t.Fatalf("question: %q %v %v", name, qtype, qclass)
	}
	info, ok, err := v.EDNS()
	if err != nil || !ok {
		t.Fatalf("EDNS: ok=%v err=%v", ok, err)
	}
	if info.UDPSize != 1232 || !info.DO || info.Version != 0 {
		t.Fatalf("EDNS fields: %+v", info)
	}
}

func TestViewQuestionScratchReuse(t *testing.T) {
	b1, _ := NewQuery(1, "first.example.nl.", TypeA).Pack()
	b2, _ := NewQuery(2, "second.example.nz.", TypeNS).Pack()
	var v View
	scratch := make([]byte, 0, 256)
	if err := v.Reset(b1); err != nil {
		t.Fatal(err)
	}
	name, _, _, err := v.Question(scratch[:0])
	if err != nil || string(name) != "first.example.nl." {
		t.Fatalf("first question: %q err=%v", name, err)
	}
	if err := v.Reset(b2); err != nil {
		t.Fatal(err)
	}
	name, _, _, err = v.Question(scratch[:0])
	if err != nil || string(name) != "second.example.nz." {
		t.Fatalf("second question after reuse: %q err=%v", name, err)
	}
}

func TestViewNoQuestion(t *testing.T) {
	b, err := (&Message{}).Pack()
	if err != nil {
		t.Fatal(err)
	}
	var v View
	if err := v.Reset(b); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := v.Question(nil); !errors.Is(err, ErrNoQuestion) {
		t.Fatalf("Question on empty section: %v", err)
	}
	if _, ok, err := v.EDNS(); ok || err != nil {
		t.Fatalf("EDNS on bare header: ok=%v err=%v", ok, err)
	}
}

func TestViewRejectsWhatUnpackRejects(t *testing.T) {
	cases := [][]byte{
		nil,                                  // empty
		make([]byte, 11),                     // short header
		{0, 0, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0}, // counts exceed size
		// Valid query with trailing garbage.
		func() []byte {
			b, _ := NewQuery(3, "x.nl.", TypeA).Pack()
			return append(b, 0xFF)
		}(),
	}
	for i, data := range cases {
		if _, err := Unpack(data); err == nil {
			t.Fatalf("case %d: Unpack unexpectedly accepted", i)
		}
		var v View
		err := v.Reset(data)
		if err == nil {
			err = v.Validate()
		}
		if err == nil {
			t.Fatalf("case %d: View unexpectedly accepted", i)
		}
	}
}

// TestRDataBoundsRegression pins the fix for two crash bugs: NSEC and
// RRSIG rdata whose embedded name decodes past the declared RDLENGTH used
// to panic with a slice-bounds violation in parseRData. Both parsers must
// reject these messages instead.
func TestRDataBoundsRegression(t *testing.T) {
	nsec := []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
		0, 0, 47, 0, 1, 0, 0, 0, 0, 0, 1, 1, 'a', 0}
	rrsig := []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
		0, 0, 46, 0, 1, 0, 0, 0, 0, 0, 19,
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 'a', 0}
	for name, data := range map[string][]byte{"NSEC": nsec, "RRSIG": rrsig} {
		if _, err := Unpack(data); !errors.Is(err, ErrTruncatedRData) {
			t.Errorf("%s: Unpack err = %v, want ErrTruncatedRData", name, err)
		}
		var v View
		err := v.Reset(data)
		if err == nil {
			err = v.Validate()
		}
		if !errors.Is(err, ErrTruncatedRData) {
			t.Errorf("%s: View err = %v, want ErrTruncatedRData", name, err)
		}
	}
}

// TestViewQuestionEnd pins the question-boundary offset the recursor's
// truncation path clips at: header + qname wire form + qtype + qclass.
func TestViewQuestionEnd(t *testing.T) {
	q := NewQuery(1, "www.d5.nl.", TypeA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var v View
	if err := v.Reset(wire); err != nil {
		t.Fatal(err)
	}
	end, err := v.QuestionEnd()
	if err != nil {
		t.Fatal(err)
	}
	// 3www 2d5 2nl root = 11 name bytes, +4 fixed, +12 header.
	if want := HeaderLen + 11 + 4; end != want {
		t.Fatalf("QuestionEnd = %d, want %d", end, want)
	}
	// The prefix up to QuestionEnd must itself be a well-formed
	// zero-record message once the counts say so.
	if end > len(wire) {
		t.Fatalf("QuestionEnd %d beyond message length %d", end, len(wire))
	}

	// With EDNS the OPT sits after the question: same boundary.
	q.WithEdns(1232, true)
	wire, err = q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Reset(wire); err != nil {
		t.Fatal(err)
	}
	end2, err := v.QuestionEnd()
	if err != nil {
		t.Fatal(err)
	}
	if end2 != end {
		t.Fatalf("QuestionEnd with OPT = %d, want %d", end2, end)
	}
}
