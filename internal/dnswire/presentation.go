package dnswire

import (
	"errors"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// This file implements the presentation format (zone-file syntax,
// RFC 1035 §5) for the record types the reproduction models, so traces
// and zones can be exchanged with standard DNS tooling: ParseRR reads
// "owner TTL class type rdata..." lines and RR.String (rdata.go) writes
// them back.

// ErrPresentation wraps presentation-format parse failures.
var ErrPresentation = errors.New("dnswire: bad presentation format")

// ParseRR parses one zone-file-style resource record line. Comments
// (from ';' to end of line) are stripped; fields are whitespace-separated.
// The class defaults to IN and the TTL to 3600 when omitted in the common
// "owner type rdata" short form.
func ParseRR(line string) (RR, error) {
	if i := strings.IndexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return RR{}, fmt.Errorf("%w: need at least owner, type, rdata", ErrPresentation)
	}
	rr := RR{Class: ClassIN, TTL: 3600}
	rr.Name = CanonicalName(fields[0])
	if err := ValidateName(rr.Name); err != nil {
		return RR{}, fmt.Errorf("%w: owner: %v", ErrPresentation, err)
	}
	rest := fields[1:]

	// Optional TTL.
	if ttl, err := strconv.ParseUint(rest[0], 10, 32); err == nil {
		rr.TTL = uint32(ttl)
		rest = rest[1:]
	}
	// Optional class.
	if len(rest) > 0 {
		switch rest[0] {
		case "IN":
			rr.Class, rest = ClassIN, rest[1:]
		case "CH":
			rr.Class, rest = ClassCH, rest[1:]
		}
	}
	if len(rest) < 1 {
		return RR{}, fmt.Errorf("%w: missing type", ErrPresentation)
	}
	typ, ok := ParseType(rest[0])
	if !ok {
		return RR{}, fmt.Errorf("%w: unknown type %q", ErrPresentation, rest[0])
	}
	data, err := parseRDataText(typ, rest[1:])
	if err != nil {
		return RR{}, err
	}
	rr.Data = data
	return rr, nil
}

// parseRDataText parses the rdata fields for one type.
func parseRDataText(typ Type, f []string) (RData, error) {
	need := func(n int) error {
		if len(f) < n {
			return fmt.Errorf("%w: %s needs %d fields, got %d", ErrPresentation, typ, n, len(f))
		}
		return nil
	}
	switch typ {
	case TypeA:
		if err := need(1); err != nil {
			return nil, err
		}
		a, err := netip.ParseAddr(f[0])
		if err != nil || !a.Is4() {
			return nil, fmt.Errorf("%w: A address %q", ErrPresentation, f[0])
		}
		return AData{Addr: a}, nil
	case TypeAAAA:
		if err := need(1); err != nil {
			return nil, err
		}
		a, err := netip.ParseAddr(f[0])
		if err != nil || !a.Is6() || a.Is4In6() {
			return nil, fmt.Errorf("%w: AAAA address %q", ErrPresentation, f[0])
		}
		return AAAAData{Addr: a}, nil
	case TypeNS:
		if err := need(1); err != nil {
			return nil, err
		}
		return NSData{Host: CanonicalName(f[0])}, nil
	case TypeCNAME:
		if err := need(1); err != nil {
			return nil, err
		}
		return CNAMEData{Target: CanonicalName(f[0])}, nil
	case TypePTR:
		if err := need(1); err != nil {
			return nil, err
		}
		return PTRData{Target: CanonicalName(f[0])}, nil
	case TypeMX:
		if err := need(2); err != nil {
			return nil, err
		}
		pref, err := strconv.ParseUint(f[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("%w: MX preference %q", ErrPresentation, f[0])
		}
		return MXData{Preference: uint16(pref), Exchange: CanonicalName(f[1])}, nil
	case TypeTXT:
		var ss []string
		for _, tok := range f {
			ss = append(ss, strings.Trim(tok, `"`))
		}
		if len(ss) == 0 {
			return nil, fmt.Errorf("%w: TXT needs strings", ErrPresentation)
		}
		return TXTData{Strings: ss}, nil
	case TypeSOA:
		if err := need(7); err != nil {
			return nil, err
		}
		nums := make([]uint32, 5)
		for i := 0; i < 5; i++ {
			v, err := strconv.ParseUint(f[2+i], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("%w: SOA field %q", ErrPresentation, f[2+i])
			}
			nums[i] = uint32(v)
		}
		return SOAData{
			MName: CanonicalName(f[0]), RName: CanonicalName(f[1]),
			Serial: nums[0], Refresh: nums[1], Retry: nums[2],
			Expire: nums[3], Minimum: nums[4],
		}, nil
	case TypeSRV:
		if err := need(4); err != nil {
			return nil, err
		}
		var vals [3]uint16
		for i := 0; i < 3; i++ {
			v, err := strconv.ParseUint(f[i], 10, 16)
			if err != nil {
				return nil, fmt.Errorf("%w: SRV field %q", ErrPresentation, f[i])
			}
			vals[i] = uint16(v)
		}
		return SRVData{Priority: vals[0], Weight: vals[1], Port: vals[2], Target: CanonicalName(f[3])}, nil
	case TypeDS:
		if err := need(4); err != nil {
			return nil, err
		}
		tag, err1 := strconv.ParseUint(f[0], 10, 16)
		algo, err2 := strconv.ParseUint(f[1], 10, 8)
		dt, err3 := strconv.ParseUint(f[2], 10, 8)
		digest, err4 := parseHex(strings.Join(f[3:], ""))
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("%w: DS fields", ErrPresentation)
		}
		return DSData{KeyTag: uint16(tag), Algorithm: uint8(algo), DigestType: uint8(dt), Digest: digest}, nil
	case TypeCAA:
		if err := need(3); err != nil {
			return nil, err
		}
		flags, err := strconv.ParseUint(f[0], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("%w: CAA flags %q", ErrPresentation, f[0])
		}
		return CAAData{Flags: uint8(flags), Tag: f[1], Value: strings.Trim(strings.Join(f[2:], " "), `"`)}, nil
	default:
		return nil, fmt.Errorf("%w: type %s has no presentation parser", ErrPresentation, typ)
	}
}

// parseHex decodes a hex string (upper or lower case).
func parseHex(s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("odd hex length")
	}
	out := make([]byte, len(s)/2)
	for i := 0; i < len(out); i++ {
		hi := hexVal(s[2*i])
		lo := hexVal(s[2*i+1])
		if hi < 0 || lo < 0 {
			return nil, fmt.Errorf("bad hex byte %q", s[2*i:2*i+2])
		}
		out[i] = byte(hi<<4 | lo)
	}
	return out, nil
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// ParseZoneText parses a sequence of presentation-format lines (blank
// lines and ';' comments ignored) into records. It does not implement
// $ORIGIN/$TTL directives or multi-line parentheses — the subset is meant
// for static test zones and tool input, not full zone files.
func ParseZoneText(text string) ([]RR, error) {
	var out []RR
	for lineno, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, ";") {
			continue
		}
		if strings.HasPrefix(trimmed, "$") {
			return nil, fmt.Errorf("%w: line %d: directives not supported", ErrPresentation, lineno+1)
		}
		rr, err := ParseRR(trimmed)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno+1, err)
		}
		out = append(out, rr)
	}
	return out, nil
}
