package dnswire

import (
	"net/netip"
	"strings"
	"testing"
)

// TestStringRenderings exercises every presentation/String path so dig-like
// output stays stable.
func TestStringRenderings(t *testing.T) {
	m := NewQuery(7, "example.nl.", TypeA).WithEdns(1232, true)
	m.Edns.Options = append(m.Edns.Options, EDNSOption{Code: EDNSOptionCookie, Data: make([]byte, 8)})
	r := m.Reply()
	r.Header.Authoritative = true
	r.Answers = []RR{
		{Name: "example.nl.", Class: ClassIN, TTL: 60, Data: AData{Addr: netip.MustParseAddr("192.0.2.1")}},
		{Name: "example.nl.", Class: ClassIN, TTL: 60, Data: TXTData{Strings: []string{"a", "b"}}},
		{Name: "example.nl.", Class: ClassIN, TTL: 60, Data: CAAData{Flags: 0, Tag: "issue", Value: "x"}},
		{Name: "example.nl.", Class: ClassIN, TTL: 60, Data: RawData{RRType: Type(999), Data: []byte{1}}},
		{Name: "a.nl.", Class: ClassIN, TTL: 60, Data: NSECData{NextName: "b.nl.", Types: []Type{TypeA}}},
		{Name: "x.nl.", Class: ClassIN, TTL: 60, Data: RRSIGData{TypeCovered: TypeA, SignerName: "nl.", Signature: []byte{1}}},
		{Name: "x.nl.", Class: ClassIN, TTL: 60, Data: DNSKEYData{Flags: 256, Protocol: 3, Algorithm: 13, PublicKey: []byte{1}}},
		{Name: "x.nl.", Class: ClassIN, TTL: 60, Data: SRVData{Priority: 1, Weight: 2, Port: 3, Target: "t.nl."}},
	}
	r.Authority = []RR{{Name: "nl.", Class: ClassIN, TTL: 60, Data: SOAData{MName: "ns.nl.", RName: "hm.nl."}}}
	r.Additional = []RR{{Name: "t.nl.", Class: ClassIN, TTL: 60, Data: AAAAData{Addr: netip.MustParseAddr("2001:db8::1")}}}

	out := r.String()
	for _, want := range []string{
		"example.nl.", "192.0.2.1", "TYPE999", "SOA", "authority", "additional",
		"EDNS0 udp=", "NSEC", "RRSIG", "DNSKEY", "SRV", `"a" "b"`, "issue",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Message.String() missing %q:\n%s", want, out)
		}
	}
	var nilEdns *EDNS
	if nilEdns.String() != "no EDNS" {
		t.Error("nil EDNS string")
	}
	// NSEC3 presentation with and without salt.
	n3 := NSEC3Data{HashAlgo: 1, Iterations: 2, NextHashed: []byte{0xFF}, Types: []Type{TypeNS}}
	if !strings.Contains(n3.String(), "-") {
		t.Errorf("saltless NSEC3 = %q", n3.String())
	}
	n3.Salt = []byte{0xAB}
	if !strings.Contains(n3.String(), "AB") {
		t.Errorf("salted NSEC3 = %q", n3.String())
	}
	p3 := NSEC3PARAMData{HashAlgo: 1, Iterations: 2, Salt: []byte{0xCD}}
	if !strings.Contains(p3.String(), "CD") {
		t.Errorf("NSEC3PARAM = %q", p3.String())
	}
	// Enum fallbacks.
	if Opcode(3) == OpcodeQuery {
		t.Error("opcode sanity")
	}
	if Class(99).String() != "CLASS99" || ClassCH.String() != "CH" || ClassANY.String() != "ANY" {
		t.Error("class strings")
	}
	if RCode(99).String() != "RCODE99" || RCodeFormErr.String() != "FORMERR" ||
		RCodeServFail.String() != "SERVFAIL" || RCodeNotImp.String() != "NOTIMP" ||
		RCodeRefused.String() != "REFUSED" {
		t.Error("rcode strings")
	}
}
