package dnswire

import (
	"errors"
	"net/netip"
	"strings"
	"testing"
)

func TestParseRRBasics(t *testing.T) {
	cases := []struct {
		line string
		want RR
	}{
		{
			"example.nl. 3600 IN A 192.0.2.1",
			RR{Name: "example.nl.", Class: ClassIN, TTL: 3600,
				Data: AData{Addr: netip.MustParseAddr("192.0.2.1")}},
		},
		{
			"example.nl. IN AAAA 2001:db8::1", // TTL omitted
			RR{Name: "example.nl.", Class: ClassIN, TTL: 3600,
				Data: AAAAData{Addr: netip.MustParseAddr("2001:db8::1")}},
		},
		{
			"example.nl. NS ns1.example.nl", // short form
			RR{Name: "example.nl.", Class: ClassIN, TTL: 3600,
				Data: NSData{Host: "ns1.example.nl."}},
		},
		{
			"www.example.nl. 60 CNAME example.nl.",
			RR{Name: "www.example.nl.", Class: ClassIN, TTL: 60,
				Data: CNAMEData{Target: "example.nl."}},
		},
		{
			"example.nl. 300 IN MX 10 mail.example.nl.",
			RR{Name: "example.nl.", Class: ClassIN, TTL: 300,
				Data: MXData{Preference: 10, Exchange: "mail.example.nl."}},
		},
		{
			`example.nl. TXT "v=spf1 -all"`,
			RR{Name: "example.nl.", Class: ClassIN, TTL: 3600,
				Data: TXTData{Strings: []string{"v=spf1", "-all"}}},
		},
		{
			"1.2.0.192.in-addr.arpa. PTR host.example.nl.",
			RR{Name: "1.2.0.192.in-addr.arpa.", Class: ClassIN, TTL: 3600,
				Data: PTRData{Target: "host.example.nl."}},
		},
		{
			"nl. 900 IN SOA ns1.dns.nl. hostmaster.nl. 2020040500 3600 600 2419200 900",
			RR{Name: "nl.", Class: ClassIN, TTL: 900,
				Data: SOAData{MName: "ns1.dns.nl.", RName: "hostmaster.nl.",
					Serial: 2020040500, Refresh: 3600, Retry: 600, Expire: 2419200, Minimum: 900}},
		},
		{
			"_sip._tcp.example.nl. SRV 1 5 5060 sip.example.nl.",
			RR{Name: "_sip._tcp.example.nl.", Class: ClassIN, TTL: 3600,
				Data: SRVData{Priority: 1, Weight: 5, Port: 5060, Target: "sip.example.nl."}},
		},
		{
			"example.nl. DS 12345 13 2 AABBCCDD",
			RR{Name: "example.nl.", Class: ClassIN, TTL: 3600,
				Data: DSData{KeyTag: 12345, Algorithm: 13, DigestType: 2, Digest: []byte{0xAA, 0xBB, 0xCC, 0xDD}}},
		},
		{
			`example.nl. CAA 0 issue "letsencrypt.org"`,
			RR{Name: "example.nl.", Class: ClassIN, TTL: 3600,
				Data: CAAData{Flags: 0, Tag: "issue", Value: "letsencrypt.org"}},
		},
	}
	for _, c := range cases {
		got, err := ParseRR(c.line)
		if err != nil {
			t.Errorf("ParseRR(%q): %v", c.line, err)
			continue
		}
		if got.Name != c.want.Name || got.TTL != c.want.TTL || got.Class != c.want.Class {
			t.Errorf("ParseRR(%q) header = %v/%d/%v", c.line, got.Name, got.TTL, got.Class)
		}
		gw, _ := (&Message{Answers: []RR{got}}).Pack()
		ww, _ := (&Message{Answers: []RR{c.want}}).Pack()
		if string(gw) != string(ww) {
			t.Errorf("ParseRR(%q) = %v, want %v", c.line, got, c.want)
		}
	}
}

func TestParseRRComments(t *testing.T) {
	rr, err := ParseRR("example.nl. A 192.0.2.7 ; the web server")
	if err != nil {
		t.Fatal(err)
	}
	if rr.Data.(AData).Addr != netip.MustParseAddr("192.0.2.7") {
		t.Fatalf("rr = %v", rr)
	}
}

func TestParseRRErrors(t *testing.T) {
	bad := []string{
		"",
		"example.nl.",
		"example.nl. A",
		"example.nl. FROB 1 2 3",
		"example.nl. A not-an-ip",
		"example.nl. A 2001:db8::1",                // family mismatch
		"example.nl. AAAA 192.0.2.1",               // family mismatch
		"example.nl. MX ten mail.nl.",              // bad preference
		"example.nl. DS 1 2 3 XYZ",                 // bad hex
		"example.nl. DS 1 2 3 ABC",                 // odd hex
		"example.nl. SOA ns. hm. 1 2 3",            // short SOA
		strings.Repeat("x", 300) + ". A 192.0.2.1", // bad owner
	}
	for _, line := range bad {
		if _, err := ParseRR(line); !errors.Is(err, ErrPresentation) {
			t.Errorf("ParseRR(%q) err = %v, want ErrPresentation", line, err)
		}
	}
}

// TestPresentationRoundTrip: String() output of supported types parses
// back to an equivalent record.
func TestPresentationRoundTrip(t *testing.T) {
	rrs := []RR{
		{Name: "a.nl.", Class: ClassIN, TTL: 60, Data: AData{Addr: netip.MustParseAddr("203.0.113.9")}},
		{Name: "a.nl.", Class: ClassIN, TTL: 60, Data: AAAAData{Addr: netip.MustParseAddr("2001:db8:1::9")}},
		{Name: "a.nl.", Class: ClassIN, TTL: 60, Data: NSData{Host: "ns.a.nl."}},
		{Name: "b.nl.", Class: ClassIN, TTL: 60, Data: CNAMEData{Target: "a.nl."}},
		{Name: "a.nl.", Class: ClassIN, TTL: 60, Data: MXData{Preference: 10, Exchange: "mx.a.nl."}},
		{Name: "nl.", Class: ClassIN, TTL: 60, Data: SOAData{MName: "ns1.nl.", RName: "hm.nl.",
			Serial: 1, Refresh: 2, Retry: 3, Expire: 4, Minimum: 5}},
		{Name: "a.nl.", Class: ClassIN, TTL: 60, Data: SRVData{Priority: 1, Weight: 2, Port: 3, Target: "t.nl."}},
		{Name: "a.nl.", Class: ClassIN, TTL: 60, Data: DSData{KeyTag: 9, Algorithm: 13, DigestType: 2, Digest: []byte{1, 2}}},
	}
	for _, rr := range rrs {
		line := rr.String()
		back, err := ParseRR(line)
		if err != nil {
			t.Errorf("ParseRR(String() = %q): %v", line, err)
			continue
		}
		w1, _ := (&Message{Answers: []RR{rr}}).Pack()
		w2, _ := (&Message{Answers: []RR{back}}).Pack()
		if string(w1) != string(w2) {
			t.Errorf("round trip changed %q -> %q", rr, back)
		}
	}
}

func TestParseZoneText(t *testing.T) {
	zone := `
; test zone
nl.        900 IN SOA ns1.dns.nl. hostmaster.nl. 1 2 3 4 5
nl.        IN NS ns1.dns.nl.
ns1.dns.nl. A 192.0.2.53

example.nl. NS ns1.example.nl. ; delegated
`
	rrs, err := ParseZoneText(zone)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) != 4 {
		t.Fatalf("parsed %d records", len(rrs))
	}
	if rrs[0].Data.Type() != TypeSOA || rrs[3].Name != "example.nl." {
		t.Fatalf("records: %v", rrs)
	}
}

func TestParseZoneTextRejectsDirectives(t *testing.T) {
	if _, err := ParseZoneText("$ORIGIN nl.\n"); err == nil {
		t.Fatal("directive accepted")
	}
	if _, err := ParseZoneText("bogus line here is bad\n"); err == nil {
		t.Fatal("junk line accepted")
	}
}
