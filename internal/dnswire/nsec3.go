package dnswire

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"strings"
)

// NSEC3 support (RFC 5155): hashed authenticated denial of existence, the
// scheme production signed TLDs (including .nl) actually deploy. The
// reproduction's authoritative engine can emit NSEC3 denial instead of
// plain NSEC, which also keeps junk names unlinkable to registered ones.

// TypeNSEC3 and TypeNSEC3PARAM are the RFC 5155 record types.
const (
	TypeNSEC3      Type = 50
	TypeNSEC3PARAM Type = 51
)

func init() {
	typeNames[TypeNSEC3] = "NSEC3"
	typeNames[TypeNSEC3PARAM] = "NSEC3PARAM"
}

// NSEC3Data is one NSEC3 record: the owner name's label is the base32hex
// hash; NextHashed is the successor hash in the chain.
type NSEC3Data struct {
	HashAlgo   uint8 // 1 = SHA-1
	Flags      uint8 // 1 = opt-out
	Iterations uint16
	Salt       []byte
	NextHashed []byte // 20 bytes for SHA-1
	Types      []Type
}

// Type implements RData.
func (NSEC3Data) Type() Type { return TypeNSEC3 }

func (d NSEC3Data) appendTo(b []byte, _ *nameCompressor) ([]byte, error) {
	if len(d.Salt) > 255 || len(d.NextHashed) > 255 {
		return b, fmt.Errorf("%w: NSEC3 salt/hash too long", ErrBadRData)
	}
	b = append(b, d.HashAlgo, d.Flags)
	b = binary.BigEndian.AppendUint16(b, d.Iterations)
	b = append(b, byte(len(d.Salt)))
	b = append(b, d.Salt...)
	b = append(b, byte(len(d.NextHashed)))
	b = append(b, d.NextHashed...)
	return appendTypeBitmap(b, d.Types)
}

// String implements RData.
func (d NSEC3Data) String() string {
	out := fmt.Sprintf("%d %d %d %s %s",
		d.HashAlgo, d.Flags, d.Iterations, saltString(d.Salt), Base32Hex(d.NextHashed))
	for _, t := range d.Types {
		out += " " + t.String()
	}
	return out
}

func saltString(salt []byte) string {
	if len(salt) == 0 {
		return "-"
	}
	return fmt.Sprintf("%X", salt)
}

// NSEC3PARAMData advertises the zone's NSEC3 parameters at the apex.
type NSEC3PARAMData struct {
	HashAlgo   uint8
	Flags      uint8
	Iterations uint16
	Salt       []byte
}

// Type implements RData.
func (NSEC3PARAMData) Type() Type { return TypeNSEC3PARAM }

func (d NSEC3PARAMData) appendTo(b []byte, _ *nameCompressor) ([]byte, error) {
	if len(d.Salt) > 255 {
		return b, fmt.Errorf("%w: NSEC3PARAM salt too long", ErrBadRData)
	}
	b = append(b, d.HashAlgo, d.Flags)
	b = binary.BigEndian.AppendUint16(b, d.Iterations)
	b = append(b, byte(len(d.Salt)))
	return append(b, d.Salt...), nil
}

// String implements RData.
func (d NSEC3PARAMData) String() string {
	return fmt.Sprintf("%d %d %d %s", d.HashAlgo, d.Flags, d.Iterations, saltString(d.Salt))
}

// parseNSEC3 decodes NSEC3 rdata.
func parseNSEC3(rd []byte) (RData, error) {
	if len(rd) < 5 {
		return nil, ErrTruncatedRData
	}
	d := NSEC3Data{
		HashAlgo:   rd[0],
		Flags:      rd[1],
		Iterations: binary.BigEndian.Uint16(rd[2:]),
	}
	saltLen := int(rd[4])
	if len(rd) < 5+saltLen+1 {
		return nil, ErrTruncatedRData
	}
	d.Salt = append([]byte(nil), rd[5:5+saltLen]...)
	off := 5 + saltLen
	hashLen := int(rd[off])
	off++
	if len(rd) < off+hashLen {
		return nil, ErrTruncatedRData
	}
	d.NextHashed = append([]byte(nil), rd[off:off+hashLen]...)
	types, err := parseTypeBitmap(rd[off+hashLen:])
	if err != nil {
		return nil, err
	}
	d.Types = types
	return d, nil
}

// parseNSEC3PARAM decodes NSEC3PARAM rdata.
func parseNSEC3PARAM(rd []byte) (RData, error) {
	if len(rd) < 5 {
		return nil, ErrTruncatedRData
	}
	saltLen := int(rd[4])
	if len(rd) < 5+saltLen {
		return nil, ErrTruncatedRData
	}
	return NSEC3PARAMData{
		HashAlgo:   rd[0],
		Flags:      rd[1],
		Iterations: binary.BigEndian.Uint16(rd[2:]),
		Salt:       append([]byte(nil), rd[5:5+saltLen]...),
	}, nil
}

// NSEC3Hash computes the RFC 5155 §5 hashed owner name of name:
// IH(salt, x, 0) = H(x || salt); IH(salt, x, k) = H(IH(salt, x, k-1) || salt).
// The input is the name in DNS wire format (lowercased, uncompressed).
func NSEC3Hash(name string, salt []byte, iterations uint16) ([]byte, error) {
	wire, err := appendName(nil, name, nil)
	if err != nil {
		return nil, err
	}
	h := sha1.Sum(append(wire, salt...))
	for i := uint16(0); i < iterations; i++ {
		h = sha1.Sum(append(h[:], salt...))
	}
	return h[:], nil
}

// Base32Hex encodes with the RFC 4648 extended-hex alphabet (no padding),
// as NSEC3 owner labels require.
func Base32Hex(b []byte) string {
	const alphabet = "0123456789abcdefghijklmnopqrstuv"
	var sb strings.Builder
	var acc uint32
	bits := 0
	for _, x := range b {
		acc = acc<<8 | uint32(x)
		bits += 8
		for bits >= 5 {
			bits -= 5
			sb.WriteByte(alphabet[acc>>uint(bits)&0x1F])
		}
	}
	if bits > 0 {
		sb.WriteByte(alphabet[acc<<uint(5-bits)&0x1F])
	}
	return sb.String()
}
