package dnswire

import (
	"encoding/binary"
	"errors"
)

// ErrNoQuestion is returned by View.Question when QDCOUNT is zero.
var ErrNoQuestion = errors.New("dnswire: message has no question")

// EDNSInfo is the fixed-size subset of the OPT pseudo-record the analyzer
// consumes; unlike EDNS it carries no option slice and so costs nothing to
// return by value.
type EDNSInfo struct {
	UDPSize  uint16
	ExtRCode uint8
	Version  uint8
	DO       bool
}

// View is a zero-allocation lazy decoder over a raw DNS message. Where
// Unpack materializes every section — name strings, rdata structs, option
// slices — a View only records offsets: Reset validates the fixed header
// and count sanity, and the first accessor that needs section data runs a
// single cached walk (walk) that validates the entire message without
// building anything.
//
// The walk accepts and rejects exactly the inputs Unpack does. This is a
// hard requirement, not an optimization nicety: the entrada analyzer
// counts a packet as malformed when decoding fails, so a View that was
// more or less strict than Unpack would make the lazy and eager analysis
// paths disagree on Aggregates. FuzzViewParity pins the equivalence.
//
// A View is meant to be embedded and reused: Reset(nil-or-next-payload)
// between packets, no per-message state escapes. It must not outlive the
// buffer it was Reset with. Not safe for concurrent use.
type View struct {
	data []byte

	walked  bool
	walkErr error

	end    int // offset just past the last RR, valid after a clean walk
	qFixed int // offset of the first question's qtype, 0 if QDCOUNT == 0

	hasOPT  bool
	optUDP  uint16
	optExt  uint8
	optVer  uint8
	optDO   bool
	extFold RCode // OR of RCode(ExtRCode)<<4 across every OPT, as Unpack folds
}

// Reset points the View at a new raw message, dropping all cached state.
// It performs only the O(1) checks — header length and the section-count
// sanity bound — so the hot path can reject garbage before walking.
// Accessors must not be called after Reset returns an error.
func (v *View) Reset(data []byte) error {
	*v = View{data: data}
	if len(data) < HeaderLen {
		v.walked, v.walkErr = true, ErrShortMessage
		return v.walkErr
	}
	qd := int(binary.BigEndian.Uint16(data[4:]))
	an := int(binary.BigEndian.Uint16(data[6:]))
	ns := int(binary.BigEndian.Uint16(data[8:]))
	ar := int(binary.BigEndian.Uint16(data[10:]))
	// Each question takes ≥5 bytes; each RR ≥11 — same bound as Unpack.
	if qd*5+(an+ns+ar)*11 > len(data) {
		v.walked, v.walkErr = true, ErrCountiny
		return v.walkErr
	}
	return nil
}

// Header field accessors: valid whenever Reset succeeded, no walk needed.

// ID returns the message ID.
func (v *View) ID() uint16 { return binary.BigEndian.Uint16(v.data) }

func (v *View) flags() uint16 { return binary.BigEndian.Uint16(v.data[2:]) }

// Response reports the QR bit.
func (v *View) Response() bool { return v.flags()&(1<<15) != 0 }

// Opcode returns the 4-bit opcode.
func (v *View) Opcode() Opcode { return Opcode(v.flags() >> 11 & 0xF) }

// Authoritative reports the AA bit.
func (v *View) Authoritative() bool { return v.flags()&(1<<10) != 0 }

// Truncated reports the TC bit.
func (v *View) Truncated() bool { return v.flags()&(1<<9) != 0 }

// RecursionDesired reports the RD bit.
func (v *View) RecursionDesired() bool { return v.flags()&(1<<8) != 0 }

// RecursionAvailable reports the RA bit.
func (v *View) RecursionAvailable() bool { return v.flags()&(1<<7) != 0 }

// AuthenticData reports the AD bit.
func (v *View) AuthenticData() bool { return v.flags()&(1<<5) != 0 }

// CheckingDisabled reports the CD bit.
func (v *View) CheckingDisabled() bool { return v.flags()&(1<<4) != 0 }

// RCode returns the low 4 RCODE bits from the header only; use FullRCode
// for the extended-RCODE view Unpack exposes.
func (v *View) RCode() RCode { return RCode(v.flags() & 0xF) }

// QDCount returns QDCOUNT.
func (v *View) QDCount() uint16 { return binary.BigEndian.Uint16(v.data[4:]) }

// ANCount returns ANCOUNT.
func (v *View) ANCount() uint16 { return binary.BigEndian.Uint16(v.data[6:]) }

// NSCount returns NSCOUNT.
func (v *View) NSCount() uint16 { return binary.BigEndian.Uint16(v.data[8:]) }

// ARCount returns ARCOUNT, including any OPT pseudo-record.
func (v *View) ARCount() uint16 { return binary.BigEndian.Uint16(v.data[10:]) }

// Validate runs the full structural walk plus Unpack's trailing-bytes
// check, so Validate() == nil exactly when Unpack would succeed.
func (v *View) Validate() error {
	if err := v.walk(); err != nil {
		return err
	}
	if v.end != len(v.data) {
		return ErrTrailingData
	}
	return nil
}

// FullRCode returns the RCODE with extended bits from any OPT record
// folded in, matching Message.Header.RCode after Unpack.
func (v *View) FullRCode() (RCode, error) {
	if err := v.walk(); err != nil {
		return 0, err
	}
	return v.RCode() | v.extFold, nil
}

// QuestionType returns the first question's type and class without
// materializing the qname — the common case for the analyzer, which only
// needs the name itself for the rare NS-query minimization heuristic.
func (v *View) QuestionType() (Type, Class, error) {
	if err := v.walk(); err != nil {
		return 0, 0, err
	}
	if v.qFixed == 0 {
		return 0, 0, ErrNoQuestion
	}
	return Type(binary.BigEndian.Uint16(v.data[v.qFixed:])),
		Class(binary.BigEndian.Uint16(v.data[v.qFixed+2:])),
		nil
}

// Question appends the canonical (lowercased, dot-terminated) first qname
// to buf and returns the grown slice plus qtype and qclass. Passing a
// reused scratch buffer makes the call allocation-free; the returned
// slice aliases buf's array, not the message.
func (v *View) Question(buf []byte) ([]byte, Type, Class, error) {
	if err := v.walk(); err != nil {
		return buf, 0, 0, err
	}
	if v.qFixed == 0 {
		return buf, 0, 0, ErrNoQuestion
	}
	name, _, err := appendNameBytes(buf, v.data, HeaderLen)
	if err != nil {
		// Unreachable after a clean walk; kept for interface honesty.
		return buf, 0, 0, err
	}
	return name,
		Type(binary.BigEndian.Uint16(v.data[v.qFixed:])),
		Class(binary.BigEndian.Uint16(v.data[v.qFixed+2:])),
		nil
}

// QuestionEnd returns the offset just past the first question — the
// header-plus-question prefix length. The recursor tier uses it to clip
// a response at the question boundary when forcing TC=1 for clients
// whose EDNS budget the cached answer exceeds.
func (v *View) QuestionEnd() (int, error) {
	if err := v.walk(); err != nil {
		return 0, err
	}
	if v.qFixed == 0 {
		return 0, ErrNoQuestion
	}
	return v.qFixed + 4, nil
}

// EDNS reports whether the additional section carries an OPT record and,
// if so, its fixed fields. When several OPTs are present the last one
// wins, matching Unpack's m.Edns behavior.
func (v *View) EDNS() (EDNSInfo, bool, error) {
	if err := v.walk(); err != nil {
		return EDNSInfo{}, false, err
	}
	if !v.hasOPT {
		return EDNSInfo{}, false, nil
	}
	return EDNSInfo{
		UDPSize:  v.optUDP,
		ExtRCode: v.optExt,
		Version:  v.optVer,
		DO:       v.optDO,
	}, true, nil
}

// walk runs (once) the full structural validation pass: every name
// crossed with skipName, every RR bounds-checked, every rdata run through
// the validate-only mirror of parseRData, and OPT records decoded into
// the View's fixed fields. Errors are cached so repeated accessor calls
// stay cheap.
func (v *View) walk() error {
	if v.walked {
		return v.walkErr
	}
	v.walked = true
	v.walkErr = v.doWalk()
	return v.walkErr
}

func (v *View) doWalk() error {
	data := v.data
	qd := int(v.QDCount())
	an := int(v.ANCount())
	ns := int(v.NSCount())
	ar := int(v.ARCount())

	off := HeaderLen
	for i := 0; i < qd; i++ {
		next, err := skipName(data, off)
		if err != nil {
			return err
		}
		if next+4 > len(data) {
			return ErrShortMessage
		}
		if i == 0 {
			v.qFixed = next
		}
		off = next + 4
	}
	var err error
	if off, err = v.walkSection(off, an+ns); err != nil {
		return err
	}
	// Additional section: scan for OPT pseudo-RRs, mirroring Unpack's
	// dedicated loop (bounds check before the OPT branch, root owner
	// required, extended RCODE bits OR-accumulated, last OPT wins).
	for i := 0; i < ar; i++ {
		nameOff := off
		next, err := skipName(data, off)
		if err != nil {
			return err
		}
		if next+10 > len(data) {
			return ErrShortMessage
		}
		typ := Type(binary.BigEndian.Uint16(data[next:]))
		class := binary.BigEndian.Uint16(data[next+2:])
		ttl := binary.BigEndian.Uint32(data[next+4:])
		rdlen := int(binary.BigEndian.Uint16(data[next+8:]))
		rdoff := next + 10
		if rdoff+rdlen > len(data) {
			return ErrTruncatedRData
		}
		if typ == TypeOPT {
			if !nameIsRoot(data, nameOff) {
				return ErrBadRData
			}
			if err := validateOPTRData(data[rdoff : rdoff+rdlen]); err != nil {
				return err
			}
			v.hasOPT = true
			v.optUDP = class
			v.optExt = uint8(ttl >> 24)
			v.optVer = uint8(ttl >> 16)
			v.optDO = ttl&(1<<15) != 0
			v.extFold |= RCode(v.optExt) << 4
		} else if err := validateRData(typ, data, rdoff, rdlen); err != nil {
			return err
		}
		off = rdoff + rdlen
	}
	v.end = off
	return nil
}

// walkSection validates count generic RRs (answers + authority) starting
// at off, mirroring parseSection.
func (v *View) walkSection(off, count int) (int, error) {
	data := v.data
	for i := 0; i < count; i++ {
		next, err := skipName(data, off)
		if err != nil {
			return 0, err
		}
		if next+10 > len(data) {
			return 0, ErrShortMessage
		}
		typ := Type(binary.BigEndian.Uint16(data[next:]))
		rdlen := int(binary.BigEndian.Uint16(data[next+8:]))
		rdoff := next + 10
		if err := validateRData(typ, data, rdoff, rdlen); err != nil {
			return 0, err
		}
		off = rdoff + rdlen
	}
	return off, nil
}
