package dnswire

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// SVCB and HTTPS records (RFC 9460): service-binding lookups became a
// large share of real resolver traffic during and after the study period
// (Apple clients began querying HTTPS in 2020), so a pipeline meant to
// ingest modern captures must decode them.

// TypeSVCB and TypeHTTPS are the RFC 9460 record types.
const (
	TypeSVCB  Type = 64
	TypeHTTPS Type = 65
)

func init() {
	typeNames[TypeSVCB] = "SVCB"
	typeNames[TypeHTTPS] = "HTTPS"
}

// SvcParam keys defined by RFC 9460.
const (
	SvcParamALPN          uint16 = 1
	SvcParamNoDefaultALPN uint16 = 2
	SvcParamPort          uint16 = 3
	SvcParamIPv4Hint      uint16 = 4
	SvcParamIPv6Hint      uint16 = 6
)

// SVCBData is the shared wire form of SVCB and HTTPS records. Service
// parameters are kept as raw key/value pairs; the codec preserves them
// byte-exactly and enforces the RFC's strictly-increasing key order.
type SVCBData struct {
	// RRType distinguishes SVCB from HTTPS (same wire format).
	RRType Type
	// Priority 0 means AliasMode; >0 is ServiceMode.
	Priority uint16
	// TargetName is the service endpoint ("." = owner itself).
	TargetName string
	// Params are the SvcParams in ascending key order.
	Params []SvcParam
}

// SvcParam is one raw service parameter.
type SvcParam struct {
	Key   uint16
	Value []byte
}

// Type implements RData.
func (d SVCBData) Type() Type {
	if d.RRType == TypeHTTPS {
		return TypeHTTPS
	}
	return TypeSVCB
}

func (d SVCBData) appendTo(b []byte, _ *nameCompressor) ([]byte, error) {
	b = binary.BigEndian.AppendUint16(b, d.Priority)
	var err error
	if b, err = appendName(b, d.TargetName, nil); err != nil {
		return b, err
	}
	if !sort.SliceIsSorted(d.Params, func(i, j int) bool { return d.Params[i].Key < d.Params[j].Key }) {
		return b, fmt.Errorf("%w: SvcParams must be in ascending key order", ErrBadRData)
	}
	for i, p := range d.Params {
		if i > 0 && p.Key == d.Params[i-1].Key {
			return b, fmt.Errorf("%w: duplicate SvcParam key %d", ErrBadRData, p.Key)
		}
		if len(p.Value) > 0xFFFF {
			return b, fmt.Errorf("%w: SvcParam value too long", ErrBadRData)
		}
		b = binary.BigEndian.AppendUint16(b, p.Key)
		b = binary.BigEndian.AppendUint16(b, uint16(len(p.Value)))
		b = append(b, p.Value...)
	}
	return b, nil
}

// String implements RData.
func (d SVCBData) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d %s", d.Priority, CanonicalName(d.TargetName))
	for _, p := range d.Params {
		fmt.Fprintf(&sb, " key%d=%X", p.Key, p.Value)
	}
	return sb.String()
}

// parseSVCB decodes SVCB/HTTPS rdata.
func parseSVCB(typ Type, msg []byte, off, rdlen int) (RData, error) {
	if rdlen < 3 {
		return nil, ErrTruncatedRData
	}
	d := SVCBData{RRType: typ, Priority: binary.BigEndian.Uint16(msg[off:])}
	target, next, err := readName(msg, off+2)
	if err != nil {
		return nil, err
	}
	d.TargetName = target
	end := off + rdlen
	lastKey := -1
	for next < end {
		if next+4 > end {
			return nil, ErrTruncatedRData
		}
		key := binary.BigEndian.Uint16(msg[next:])
		vlen := int(binary.BigEndian.Uint16(msg[next+2:]))
		next += 4
		if next+vlen > end {
			return nil, ErrTruncatedRData
		}
		if int(key) <= lastKey {
			return nil, fmt.Errorf("%w: SvcParam keys out of order", ErrBadRData)
		}
		lastKey = int(key)
		d.Params = append(d.Params, SvcParam{
			Key:   key,
			Value: append([]byte(nil), msg[next:next+vlen]...),
		})
		next += vlen
	}
	return d, nil
}
