package dnswire

import (
	"net/netip"
	"testing"
)

// FuzzUnpack checks that no input can panic the message parser, and that
// anything it accepts round-trips through Pack → Unpack.
func FuzzUnpack(f *testing.F) {
	seed := func(m *Message) {
		b, err := m.Pack()
		if err == nil {
			f.Add(b)
		}
	}
	seed(NewQuery(1, "example.nl.", TypeA))
	seed(NewQuery(2, "x.y.z.nz.", TypeNS).WithEdns(1232, true))
	r := sampleResponse()
	seed(r)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0x0C, 0, 1, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		b, err := m.Pack()
		if err != nil {
			// Parsed messages may contain structures we refuse to emit
			// (e.g. oversized names reconstructed through pointers).
			return
		}
		if _, err := Unpack(b); err != nil {
			t.Fatalf("repacked message does not parse: %v", err)
		}
	})
}

// FuzzReadName checks the name decompressor against panics and
// non-termination on arbitrary inputs and offsets.
func FuzzReadName(f *testing.F) {
	b, _ := appendName(nil, "www.example.nl.", nil)
	f.Add(b, 0)
	f.Add([]byte{0xC0, 0x00}, 0)
	f.Add([]byte{1, 'a', 0xC0, 0x00}, 2)
	f.Fuzz(func(t *testing.T, data []byte, off int) {
		if off < 0 || off > len(data) {
			return
		}
		name, n, err := readName(data, off)
		if err != nil {
			return
		}
		if n < off || n > len(data) {
			t.Fatalf("consumed offset %d out of bounds", n)
		}
		if err := ValidateName(name); err != nil {
			t.Fatalf("decoded invalid name %q: %v", name, err)
		}
	})
}

// FuzzPackTruncated checks the truncation budget is always respected for
// messages the packer accepts.
func FuzzPackTruncated(f *testing.F) {
	f.Add(uint16(7), "host.example.nl.", 128)
	f.Add(uint16(9), "a.b.c.d.nz.", 600)
	f.Fuzz(func(t *testing.T, id uint16, name string, limit int) {
		if limit < 64 || limit > 4096 {
			return
		}
		if ValidateName(name) != nil {
			return
		}
		m := NewQuery(id, name, TypeA).Reply()
		for i := 0; i < 30; i++ {
			m.Answers = append(m.Answers, RR{
				Name: name, Class: ClassIN, TTL: 60,
				Data: AData{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})},
			})
		}
		b, err := m.PackTruncated(limit)
		if err != nil {
			return
		}
		if len(b) > limit {
			t.Fatalf("PackTruncated(%d) produced %d bytes", limit, len(b))
		}
		if _, err := Unpack(b); err != nil {
			t.Fatalf("truncated message does not parse: %v", err)
		}
	})
}
