package dnswire

import (
	"net/netip"
	"testing"
)

// FuzzUnpack checks that no input can panic the message parser, and that
// anything it accepts round-trips through Pack → Unpack.
func FuzzUnpack(f *testing.F) {
	seed := func(m *Message) {
		b, err := m.Pack()
		if err == nil {
			f.Add(b)
		}
	}
	seed(NewQuery(1, "example.nl.", TypeA))
	seed(NewQuery(2, "x.y.z.nz.", TypeNS).WithEdns(1232, true))
	r := sampleResponse()
	seed(r)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0x0C, 0, 1, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		b, err := m.Pack()
		if err != nil {
			// Parsed messages may contain structures we refuse to emit
			// (e.g. oversized names reconstructed through pointers).
			return
		}
		if _, err := Unpack(b); err != nil {
			t.Fatalf("repacked message does not parse: %v", err)
		}
	})
}

// FuzzViewParity is the contract the lazy fast path rests on: for every
// input, View (Reset + Validate + accessors) must agree with the full
// Unpack parser — both accept or both reject, and on acceptance every
// field the analyzer consumes must match. A divergence here means the
// lazy and eager analysis paths could classify packets differently and
// produce different Aggregates.
func FuzzViewParity(f *testing.F) {
	seed := func(m *Message) {
		b, err := m.Pack()
		if err == nil {
			f.Add(b)
		}
	}
	seed(NewQuery(1, "example.nl.", TypeA))
	seed(NewQuery(2, "x.y.z.nz.", TypeNS).WithEdns(1232, true))
	seed(sampleResponse())
	rich := sampleResponse().WithEdns(4096, true)
	rich.Header.RCode = RCodeNXDomain
	rich.Edns.ExtRCode = 1 // BADVERS-style extended rcode
	rich.Authority = append(rich.Authority,
		RR{Name: "example.nl.", Class: ClassIN, TTL: 300, Data: SOAData{
			MName: "ns1.example.nl.", RName: "hostmaster.example.nl.",
			Serial: 7, Refresh: 3600, Retry: 600, Expire: 86400, Minimum: 300}},
		RR{Name: "example.nl.", Class: ClassIN, TTL: 300, Data: NSECData{
			NextName: "a.example.nl.", Types: []Type{TypeA, TypeNSEC}}},
		RR{Name: "example.nl.", Class: ClassIN, TTL: 300, Data: RRSIGData{
			TypeCovered: TypeSOA, Algorithm: 8, Labels: 2, OriginalTTL: 300,
			Expiration: 2, Inception: 1, KeyTag: 9,
			SignerName: "example.nl.", Signature: []byte{1, 2, 3}}},
	)
	rich.Additional = append(rich.Additional,
		RR{Name: "svc.example.nl.", Class: ClassIN, TTL: 60, Data: SVCBData{
			RRType: TypeHTTPS, Priority: 1, TargetName: ".",
			Params: []SvcParam{{Key: SvcParamALPN, Value: []byte("h2")}}}},
	)
	seed(rich)
	// Regression seeds for the NSEC/RRSIG rdata bounds panics: an owner
	// or signer name that keeps decoding past the declared RDLENGTH.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
		0, 0, 47, 0, 1, 0, 0, 0, 0, 0, 1, 1, 'a', 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
		0, 0, 46, 0, 1, 0, 0, 0, 0, 0, 19,
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 'a', 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, uerr := Unpack(data)
		var v View
		verr := v.Reset(data)
		if verr == nil {
			verr = v.Validate()
		}
		if (uerr == nil) != (verr == nil) {
			t.Fatalf("accept/reject divergence: Unpack err=%v, View err=%v", uerr, verr)
		}
		if uerr != nil {
			return
		}
		h := m.Header
		if v.ID() != h.ID || v.Response() != h.Response || v.Opcode() != h.Opcode ||
			v.Authoritative() != h.Authoritative || v.Truncated() != h.Truncated ||
			v.RecursionDesired() != h.RecursionDesired ||
			v.RecursionAvailable() != h.RecursionAvailable ||
			v.AuthenticData() != h.AuthenticData ||
			v.CheckingDisabled() != h.CheckingDisabled {
			t.Fatalf("header flag divergence: view vs %+v", h)
		}
		full, err := v.FullRCode()
		if err != nil || full != h.RCode {
			t.Fatalf("FullRCode = %v, %v; Unpack header RCode = %v", full, err, h.RCode)
		}
		if int(v.QDCount()) != len(m.Questions) || int(v.ANCount()) != len(m.Answers) ||
			int(v.NSCount()) != len(m.Authority) {
			t.Fatalf("count divergence: %d/%d/%d vs %d/%d/%d",
				v.QDCount(), v.ANCount(), v.NSCount(),
				len(m.Questions), len(m.Answers), len(m.Authority))
		}
		name, qtype, qclass, qerr := v.Question(nil)
		if len(m.Questions) == 0 {
			if qerr != ErrNoQuestion {
				t.Fatalf("Question on empty section: err=%v", qerr)
			}
		} else {
			q := m.Questions[0]
			if qerr != nil || string(name) != q.Name || qtype != q.Type || qclass != q.Class {
				t.Fatalf("question divergence: %q/%v/%v err=%v vs %+v", name, qtype, qclass, qerr, q)
			}
		}
		info, ok, eerr := v.EDNS()
		if eerr != nil || ok != (m.Edns != nil) {
			t.Fatalf("EDNS presence divergence: ok=%v err=%v vs Edns=%v", ok, eerr, m.Edns)
		}
		if ok && (info.UDPSize != m.Edns.UDPSize || info.ExtRCode != m.Edns.ExtRCode ||
			info.Version != m.Edns.Version || info.DO != m.Edns.DO) {
			t.Fatalf("EDNS field divergence: %+v vs %+v", info, m.Edns)
		}
	})
}

// FuzzReadName checks the name decompressor against panics and
// non-termination on arbitrary inputs and offsets.
func FuzzReadName(f *testing.F) {
	b, _ := appendName(nil, "www.example.nl.", nil)
	f.Add(b, 0)
	f.Add([]byte{0xC0, 0x00}, 0)
	f.Add([]byte{1, 'a', 0xC0, 0x00}, 2)
	f.Fuzz(func(t *testing.T, data []byte, off int) {
		if off < 0 || off > len(data) {
			return
		}
		name, n, err := readName(data, off)
		if err != nil {
			return
		}
		if n < off || n > len(data) {
			t.Fatalf("consumed offset %d out of bounds", n)
		}
		if err := ValidateName(name); err != nil {
			t.Fatalf("decoded invalid name %q: %v", name, err)
		}
	})
}

// FuzzPackTruncated checks the truncation budget is always respected for
// messages the packer accepts.
func FuzzPackTruncated(f *testing.F) {
	f.Add(uint16(7), "host.example.nl.", 128)
	f.Add(uint16(9), "a.b.c.d.nz.", 600)
	f.Fuzz(func(t *testing.T, id uint16, name string, limit int) {
		if limit < 64 || limit > 4096 {
			return
		}
		if ValidateName(name) != nil {
			return
		}
		m := NewQuery(id, name, TypeA).Reply()
		for i := 0; i < 30; i++ {
			m.Answers = append(m.Answers, RR{
				Name: name, Class: ClassIN, TTL: 60,
				Data: AData{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})},
			})
		}
		b, err := m.PackTruncated(limit)
		if err != nil {
			return
		}
		if len(b) > limit {
			t.Fatalf("PackTruncated(%d) produced %d bytes", limit, len(b))
		}
		if _, err := Unpack(b); err != nil {
			t.Fatalf("truncated message does not parse: %v", err)
		}
	})
}
