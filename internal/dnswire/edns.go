package dnswire

import (
	"encoding/binary"
	"fmt"
)

// EDNS carries the parsed EDNS(0) OPT pseudo-record (RFC 6891). The paper's
// Figure 6 studies the advertised UDP payload size, which drives answer
// truncation and therefore TCP fallback.
type EDNS struct {
	// UDPSize is the requestor's advertised maximum UDP payload size.
	// Values below 512 are treated as 512 per RFC 6891 §6.2.3.
	UDPSize uint16
	// ExtRCode holds the upper 8 bits of the extended RCODE.
	ExtRCode uint8
	// Version is the EDNS version; only 0 is defined.
	Version uint8
	// DO is the DNSSEC-OK bit: the requestor wants RRSIGs in the answer.
	DO bool
	// Options carries raw EDNS options (code, data), e.g. cookies.
	Options []EDNSOption
}

// EDNSOption is a single EDNS option TLV.
type EDNSOption struct {
	Code uint16
	Data []byte
}

// EDNS option codes used in the wild.
const (
	EDNSOptionCookie       uint16 = 10
	EDNSOptionClientSubnet uint16 = 8
	EDNSOptionPadding      uint16 = 12
)

// EffectiveUDPSize clamps the advertised size per RFC 6891: a nil EDNS means
// the classic 512-byte limit; advertised values below 512 also mean 512.
func (e *EDNS) EffectiveUDPSize() int {
	if e == nil || e.UDPSize < 512 {
		return 512
	}
	return int(e.UDPSize)
}

// String summarizes the OPT record.
func (e *EDNS) String() string {
	if e == nil {
		return "no EDNS"
	}
	return fmt.Sprintf("EDNS0 udp=%d do=%v ver=%d opts=%d", e.UDPSize, e.DO, e.Version, len(e.Options))
}

// appendOPT appends a full OPT RR (name, type, class=udpsize, ttl=flags,
// rdata=options) to b.
func appendOPT(b []byte, e *EDNS) ([]byte, error) {
	b = append(b, 0) // root owner name
	b = binary.BigEndian.AppendUint16(b, uint16(TypeOPT))
	b = binary.BigEndian.AppendUint16(b, e.UDPSize)
	ttl := uint32(e.ExtRCode)<<24 | uint32(e.Version)<<16
	if e.DO {
		ttl |= 1 << 15
	}
	b = binary.BigEndian.AppendUint32(b, ttl)
	rdlenAt := len(b)
	b = append(b, 0, 0)
	for _, opt := range e.Options {
		b = binary.BigEndian.AppendUint16(b, opt.Code)
		if len(opt.Data) > 0xFFFF {
			return b, fmt.Errorf("%w: EDNS option too long", ErrBadRData)
		}
		b = binary.BigEndian.AppendUint16(b, uint16(len(opt.Data)))
		b = append(b, opt.Data...)
	}
	rdlen := len(b) - rdlenAt - 2
	if rdlen > 0xFFFF {
		return b, fmt.Errorf("%w: OPT rdata too long", ErrBadRData)
	}
	binary.BigEndian.PutUint16(b[rdlenAt:], uint16(rdlen))
	return b, nil
}

// parseOPT interprets an already-sliced OPT RR (class and TTL fields carried
// in the generic header) plus its rdata bytes.
func parseOPT(class uint16, ttl uint32, rdata []byte) (*EDNS, error) {
	e := &EDNS{
		UDPSize:  class,
		ExtRCode: uint8(ttl >> 24),
		Version:  uint8(ttl >> 16),
		DO:       ttl&(1<<15) != 0,
	}
	for len(rdata) > 0 {
		if len(rdata) < 4 {
			return nil, ErrTruncatedRData
		}
		code := binary.BigEndian.Uint16(rdata)
		olen := int(binary.BigEndian.Uint16(rdata[2:]))
		if len(rdata) < 4+olen {
			return nil, ErrTruncatedRData
		}
		e.Options = append(e.Options, EDNSOption{
			Code: code,
			Data: append([]byte(nil), rdata[4:4+olen]...),
		})
		rdata = rdata[4+olen:]
	}
	return e, nil
}

// validateOPTRData mirrors parseOPT's option-TLV walk without collecting
// the options; dnswire.View uses it on the lazy path. Keep in lockstep
// with parseOPT — FuzzViewParity enforces it.
func validateOPTRData(rdata []byte) error {
	for len(rdata) > 0 {
		if len(rdata) < 4 {
			return ErrTruncatedRData
		}
		olen := int(binary.BigEndian.Uint16(rdata[2:]))
		if len(rdata) < 4+olen {
			return ErrTruncatedRData
		}
		rdata = rdata[4+olen:]
	}
	return nil
}
