package dnswire

import (
	"bytes"
	"net/netip"
	"testing"
)

func testResponse() *Message {
	m := NewQuery(0x4242, "www.example.nl", TypeA).WithEdns(1232, true)
	r := m.Reply()
	r.Answers = []RR{{
		Name: "www.example.nl.", Class: ClassIN, TTL: 3600,
		Data: AData{Addr: netip.MustParseAddr("192.0.2.1")},
	}}
	r.Authority = []RR{{
		Name: "example.nl.", Class: ClassIN, TTL: 7200,
		Data: NSData{Host: "ns1.example.nl."},
	}}
	return r
}

// TestAppendPackMidBuffer checks the base-relative compression property:
// packing after unrelated prefix bytes yields the same message bytes as
// packing from scratch, with pointers still relative to the message start.
func TestAppendPackMidBuffer(t *testing.T) {
	m := testResponse()
	want, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("twelve bytes")
	b := append([]byte(nil), prefix...)
	b, err = m.AppendPack(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b[len(prefix):], want) {
		t.Fatal("AppendPack mid-buffer differs from Pack from scratch")
	}
	// The packed bytes must stand alone: unpack just the suffix.
	got, err := Unpack(b[len(prefix):])
	if err != nil {
		t.Fatalf("unpacking mid-buffer message: %v", err)
	}
	if got.Answers[0].Name != "www.example.nl." || got.Authority[0].Name != "example.nl." {
		t.Fatalf("compressed names corrupted: %+v", got)
	}
}

// TestAppendPackTruncatedParity checks the append variant against
// PackTruncated across fitting and overflowing limits.
func TestAppendPackTruncatedParity(t *testing.T) {
	m := testResponse()
	for _, limit := range []int{512, 80, 40} {
		want, err := m.PackTruncated(limit)
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		prefix := []byte("prefix")
		b, err := m.AppendPackTruncated(append([]byte(nil), prefix...), limit)
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if !bytes.Equal(b[len(prefix):], want) {
			t.Fatalf("limit %d: AppendPackTruncated differs from PackTruncated", limit)
		}
		if len(want) > limit {
			t.Fatalf("limit %d: packed %d bytes", limit, len(want))
		}
	}
}

// TestAppendPackNoAlloc checks the emitter's steady-state property:
// repacking into a pre-grown buffer does not allocate.
func TestAppendPackNoAlloc(t *testing.T) {
	q := NewQuery(7, "www.example.nl", TypeAAAA).WithEdns(1232, false)
	buf := make([]byte, 0, 512)
	avg := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = q.AppendPack(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("AppendPack allocates %.1f times per message, want 0", avg)
	}
}
