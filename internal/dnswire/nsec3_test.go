package dnswire

import (
	"bytes"
	"reflect"
	"testing"
)

func TestBase32Hex(t *testing.T) {
	// RFC 4648 test vectors (extended hex alphabet, lowercased, no pad).
	cases := []struct{ in, want string }{
		{"", ""},
		{"f", "co"},
		{"fo", "cpng"},
		{"foo", "cpnmu"},
		{"foob", "cpnmuog"},
		{"fooba", "cpnmuoj1"},
		{"foobar", "cpnmuoj1e8"},
	}
	for _, c := range cases {
		if got := Base32Hex([]byte(c.in)); got != c.want {
			t.Errorf("Base32Hex(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNSEC3HashRFC5155Vector(t *testing.T) {
	// RFC 5155 Appendix A: H(example) with salt aabbccdd, 12 iterations
	// = 0p9mhaveqvm6t7vbl5lop2u3t2rp3tom.
	salt := []byte{0xaa, 0xbb, 0xcc, 0xdd}
	h, err := NSEC3Hash("example.", salt, 12)
	if err != nil {
		t.Fatal(err)
	}
	if got := Base32Hex(h); got != "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom" {
		t.Fatalf("hash = %s", got)
	}
}

func TestNSEC3HashDeterministicAndSaltSensitive(t *testing.T) {
	a, _ := NSEC3Hash("junk.nl.", []byte{1, 2}, 5)
	b, _ := NSEC3Hash("junk.nl.", []byte{1, 2}, 5)
	if !bytes.Equal(a, b) {
		t.Fatal("not deterministic")
	}
	c, _ := NSEC3Hash("junk.nl.", []byte{3, 4}, 5)
	if bytes.Equal(a, c) {
		t.Fatal("salt ignored")
	}
	d, _ := NSEC3Hash("junk.nl.", []byte{1, 2}, 6)
	if bytes.Equal(a, d) {
		t.Fatal("iterations ignored")
	}
	// Case-insensitive (wire format lowercases).
	e, _ := NSEC3Hash("JUNK.NL.", []byte{1, 2}, 5)
	if !bytes.Equal(a, e) {
		t.Fatal("hash not case-normalized")
	}
}

func TestNSEC3RoundTrip(t *testing.T) {
	hash, _ := NSEC3Hash("next.nl.", []byte{9}, 3)
	rrs := []RR{
		{Name: Base32Hex(hash) + ".nl.", Class: ClassIN, TTL: 900,
			Data: NSEC3Data{
				HashAlgo: 1, Flags: 1, Iterations: 3, Salt: []byte{9},
				NextHashed: hash,
				Types:      []Type{TypeNS, TypeDS, TypeRRSIG},
			}},
		{Name: "nl.", Class: ClassIN, TTL: 0,
			Data: NSEC3PARAMData{HashAlgo: 1, Iterations: 3, Salt: []byte{9}}},
		{Name: "nl.", Class: ClassIN, TTL: 0,
			Data: NSEC3PARAMData{HashAlgo: 1}}, // empty salt
	}
	m := &Message{Header: Header{ID: 4, Response: true}, Answers: rrs}
	b, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rrs {
		// Empty salt decodes as nil vs []byte{}; normalize.
		w, g := rrs[i].Data, got.Answers[i].Data
		if w3, ok := w.(NSEC3PARAMData); ok && len(w3.Salt) == 0 {
			w3.Salt = nil
			w = w3
		}
		if g3, ok := g.(NSEC3PARAMData); ok && len(g3.Salt) == 0 {
			g3.Salt = nil
			g = g3
		}
		if !reflect.DeepEqual(w, g) {
			t.Errorf("rr %d: got %#v, want %#v", i, g, w)
		}
	}
}

func TestNSEC3TypeNames(t *testing.T) {
	if TypeNSEC3.String() != "NSEC3" || TypeNSEC3PARAM.String() != "NSEC3PARAM" {
		t.Error("type names not registered")
	}
	if tt, ok := ParseType("NSEC3"); !ok || tt != TypeNSEC3 {
		t.Error("ParseType(NSEC3)")
	}
}
