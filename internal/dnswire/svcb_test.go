package dnswire

import (
	"reflect"
	"strings"
	"testing"
)

func TestSVCBRoundTrip(t *testing.T) {
	rrs := []RR{
		// AliasMode HTTPS.
		{Name: "example.nl.", Class: ClassIN, TTL: 300,
			Data: SVCBData{RRType: TypeHTTPS, Priority: 0, TargetName: "svc.example.nl."}},
		// ServiceMode with ALPN + port + v4 hint.
		{Name: "example.nl.", Class: ClassIN, TTL: 300,
			Data: SVCBData{RRType: TypeHTTPS, Priority: 1, TargetName: ".",
				Params: []SvcParam{
					{Key: SvcParamALPN, Value: []byte{2, 'h', '2'}},
					{Key: SvcParamPort, Value: []byte{0x01, 0xBB}},
					{Key: SvcParamIPv4Hint, Value: []byte{192, 0, 2, 1}},
				}}},
		// Plain SVCB.
		{Name: "_dns.example.nl.", Class: ClassIN, TTL: 300,
			Data: SVCBData{RRType: TypeSVCB, Priority: 2, TargetName: "doh.example.nl.",
				Params: []SvcParam{{Key: SvcParamNoDefaultALPN}}}},
	}
	m := &Message{Header: Header{ID: 9, Response: true}, Answers: rrs}
	b, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rrs {
		w := rrs[i].Data.(SVCBData)
		g, ok := got.Answers[i].Data.(SVCBData)
		if !ok {
			t.Fatalf("rr %d decoded as %T", i, got.Answers[i].Data)
		}
		if g.Priority != w.Priority || g.TargetName != w.TargetName || g.Type() != w.Type() {
			t.Errorf("rr %d: got %+v, want %+v", i, g, w)
		}
		if len(g.Params) != len(w.Params) {
			t.Fatalf("rr %d params: %d vs %d", i, len(g.Params), len(w.Params))
		}
		for j := range w.Params {
			if g.Params[j].Key != w.Params[j].Key ||
				!reflect.DeepEqual(normalizeEmpty(g.Params[j].Value), normalizeEmpty(w.Params[j].Value)) {
				t.Errorf("rr %d param %d: %+v vs %+v", i, j, g.Params[j], w.Params[j])
			}
		}
	}
}

func normalizeEmpty(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return b
}

func TestSVCBRejectsBadParams(t *testing.T) {
	// Out-of-order keys must not serialize.
	d := SVCBData{RRType: TypeHTTPS, Priority: 1, TargetName: ".",
		Params: []SvcParam{{Key: 3}, {Key: 1}}}
	m := &Message{Answers: []RR{{Name: "x.nl.", Class: ClassIN, TTL: 1, Data: d}}}
	if _, err := m.Pack(); err == nil {
		t.Error("out-of-order SvcParams packed")
	}
	// Duplicate keys must not serialize.
	d.Params = []SvcParam{{Key: 1}, {Key: 1}}
	m.Answers[0].Data = d
	if _, err := m.Pack(); err == nil {
		t.Error("duplicate SvcParams packed")
	}
	// Out-of-order keys on the wire must not parse.
	good := SVCBData{RRType: TypeHTTPS, Priority: 1, TargetName: ".",
		Params: []SvcParam{{Key: 1, Value: []byte{2, 'h', '2'}}, {Key: 3, Value: []byte{0, 80}}}}
	m.Answers[0].Data = good
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Swap the two param keys in place (key 1 ↔ key 3): find them.
	i1 := -1
	for i := 0; i+1 < len(wire); i++ {
		if wire[i] == 0 && wire[i+1] == 1 && i+5 < len(wire) && wire[i+2] == 0 && wire[i+3] == 3 {
			i1 = i
			break
		}
	}
	if i1 >= 0 {
		wire[i1+1], wire[i1+5] = 3, 1 // best-effort corruption
	}
	// Whether or not the heuristic hit, Unpack must never panic.
	_, _ = Unpack(wire)
}

func TestSVCBPresentation(t *testing.T) {
	d := SVCBData{RRType: TypeHTTPS, Priority: 1, TargetName: ".",
		Params: []SvcParam{{Key: SvcParamPort, Value: []byte{0x01, 0xBB}}}}
	s := d.String()
	if !strings.Contains(s, "key3=01BB") || !strings.HasPrefix(s, "1 .") {
		t.Errorf("presentation = %q", s)
	}
	if TypeHTTPS.String() != "HTTPS" || TypeSVCB.String() != "SVCB" {
		t.Error("type names")
	}
}
