package dnswire

import (
	"errors"
	"strings"
	"sync"
)

// Errors returned by the name codec.
var (
	ErrNameTooLong    = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong   = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel     = errors.New("dnswire: empty label inside name")
	ErrBadPointer     = errors.New("dnswire: bad compression pointer")
	ErrPointerLoop    = errors.New("dnswire: compression pointer loop")
	ErrTruncatedName  = errors.New("dnswire: truncated name")
	ErrReservedLabel  = errors.New("dnswire: reserved label type")
	ErrNameNotCanonic = errors.New("dnswire: name not in canonical form")
)

const (
	maxNameWire  = 255 // total wire octets including length bytes and root
	maxLabelWire = 63
)

// CanonicalName lowercases s and guarantees a single trailing dot, so that
// "WWW.Example.NL" and "www.example.nl." map to the same key. The root name
// is ".".
func CanonicalName(s string) string {
	s = strings.ToLower(s)
	if s == "" || s == "." {
		return "."
	}
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	return s
}

// SplitLabels splits a canonical name into its labels, excluding the root.
// SplitLabels(".") returns nil.
func SplitLabels(name string) []string {
	name = CanonicalName(name)
	if name == "." {
		return nil
	}
	return strings.Split(strings.TrimSuffix(name, "."), ".")
}

// CountLabels returns the number of labels in name, excluding the root.
func CountLabels(name string) int {
	return len(SplitLabels(name))
}

// ParentName strips the leftmost label: ParentName("a.b.nl.") == "b.nl.".
// The parent of a single-label name is the root "."; the parent of the root
// is the root.
func ParentName(name string) string {
	name = CanonicalName(name)
	if name == "." {
		return "."
	}
	idx := strings.IndexByte(name, '.')
	rest := name[idx+1:]
	if rest == "" {
		return "."
	}
	return rest
}

// IsSubdomain reports whether child is equal to or underneath parent.
// Every name is a subdomain of the root.
func IsSubdomain(child, parent string) bool {
	child, parent = CanonicalName(child), CanonicalName(parent)
	if parent == "." {
		return true
	}
	if child == parent {
		return true
	}
	return strings.HasSuffix(child, "."+parent)
}

// nameCompressor remembers wire offsets of name suffixes already emitted so
// later occurrences can be encoded as 14-bit compression pointers
// (RFC 1035 §4.1.4). Pointers can only reference the first 0x3FFF octets.
// Offsets are recorded relative to base, the buffer position where the
// message header starts, so a message may be packed into the middle of a
// larger buffer (e.g. a reused arena) and still emit valid pointers.
type nameCompressor struct {
	offsets map[string]int
	base    int
}

func newNameCompressor() *nameCompressor { return newNameCompressorAt(0) }

// compressorPool recycles compressors (and their map buckets) across Pack
// calls: steady-state packing reuses a cleared map instead of allocating a
// fresh one per message.
var compressorPool = sync.Pool{
	New: func() any { return &nameCompressor{offsets: make(map[string]int, 16)} },
}

func newNameCompressorAt(base int) *nameCompressor {
	c := compressorPool.Get().(*nameCompressor)
	clear(c.offsets)
	c.base = base
	return c
}

func (c *nameCompressor) release() { compressorPool.Put(c) }

// appendName appends the wire encoding of name to b, registering and reusing
// compression offsets when comp is non-nil. The canonical form is walked
// label by label in place — no split allocation — and each suffix key is a
// substring of name. On error b may hold a partially written name; callers
// abort the whole message in that case.
func appendName(b []byte, name string, comp *nameCompressor) ([]byte, error) {
	name = CanonicalName(name)
	if name == "." {
		return append(b, 0), nil
	}
	// A canonical name's wire form is one byte longer than its text form
	// (each trailing dot becomes a length byte, plus the root byte).
	if len(name)+1 > maxNameWire {
		return b, ErrNameTooLong
	}
	for pos := 0; pos < len(name); {
		l := strings.IndexByte(name[pos:], '.') // canonical ⇒ always ≥ 0
		if l == 0 {
			return b, ErrEmptyLabel
		}
		if l > maxLabelWire {
			return b, ErrLabelTooLong
		}
		suffix := name[pos:]
		if comp != nil {
			if off, ok := comp.offsets[suffix]; ok {
				return append(b, byte(0xC0|off>>8), byte(off)), nil
			}
			if off := len(b) - comp.base; off <= 0x3FFF {
				comp.offsets[suffix] = off
			}
		}
		b = append(b, byte(l))
		b = append(b, name[pos:pos+l]...)
		pos += l + 1
	}
	return append(b, 0), nil
}

// readName decodes a possibly-compressed name starting at off in msg.
// It returns the canonical name and the offset just past the name in the
// *original* (non-pointer-followed) byte stream.
func readName(msg []byte, off int) (string, int, error) {
	// A canonical text name is at most 254 bytes ("a." × 127 labels), so the
	// append below never escapes this stack buffer.
	var arr [maxNameWire + 1]byte
	b, end, err := appendNameBytes(arr[:0], msg, off)
	if err != nil {
		return "", 0, err
	}
	return string(b), end, nil
}

// appendNameBytes is readName's allocation-free core: it appends the
// canonical (lowercased, dot-terminated) text form of the name at off to
// dst and returns the grown slice plus the offset just past the name in
// the *original* (non-pointer-followed) byte stream. The root name
// appends ".".
func appendNameBytes(dst, msg []byte, off int) ([]byte, int, error) {
	start := len(dst)
	ptrBudget := 64 // generous loop guard: RFC names have ≤127 labels
	end := -1       // first position after the name in the original stream
	labels := 0
	total := 1
	for {
		if off >= len(msg) {
			return dst, 0, ErrTruncatedName
		}
		c := msg[off]
		switch {
		case c == 0:
			if end < 0 {
				end = off + 1
			}
			if len(dst) == start {
				return append(dst, '.'), end, nil
			}
			return dst, end, nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return dst, 0, ErrTruncatedName
			}
			ptr := int(c&0x3F)<<8 | int(msg[off+1])
			if end < 0 {
				end = off + 2
			}
			if ptr >= off {
				// Forward or self pointers are invalid and would loop.
				return dst, 0, ErrBadPointer
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return dst, 0, ErrPointerLoop
			}
			off = ptr
		case c&0xC0 != 0:
			return dst, 0, ErrReservedLabel
		default:
			l := int(c)
			if off+1+l > len(msg) {
				return dst, 0, ErrTruncatedName
			}
			total += 1 + l
			if total > maxNameWire {
				return dst, 0, ErrNameTooLong
			}
			labels++
			if labels > 127 {
				return dst, 0, ErrNameTooLong
			}
			for _, ch := range msg[off+1 : off+1+l] {
				if ch >= 'A' && ch <= 'Z' {
					ch += 'a' - 'A'
				}
				dst = append(dst, ch)
			}
			dst = append(dst, '.')
			off += 1 + l
		}
	}
}

// SkipName returns the offset just past the (possibly compressed) name
// starting at off, validating it along the way. It lets callers walk
// resource records in a packed message without materializing names —
// the recursor uses it to locate TTL fields for serve-stale clamping.
func SkipName(msg []byte, off int) (int, error) { return skipName(msg, off) }

// skipName validates the name at off exactly like readName but without
// materializing it, returning only the offset just past the name in the
// original stream. The lazy View walker uses it to cross names for free.
// Keep its checks in lockstep with appendNameBytes — FuzzViewParity pins
// the equivalence.
func skipName(msg []byte, off int) (int, error) {
	ptrBudget := 64
	end := -1
	labels := 0
	total := 1
	for {
		if off >= len(msg) {
			return 0, ErrTruncatedName
		}
		c := msg[off]
		switch {
		case c == 0:
			if end < 0 {
				end = off + 1
			}
			return end, nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return 0, ErrTruncatedName
			}
			ptr := int(c&0x3F)<<8 | int(msg[off+1])
			if end < 0 {
				end = off + 2
			}
			if ptr >= off {
				return 0, ErrBadPointer
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return 0, ErrPointerLoop
			}
			off = ptr
		case c&0xC0 != 0:
			return 0, ErrReservedLabel
		default:
			l := int(c)
			if off+1+l > len(msg) {
				return 0, ErrTruncatedName
			}
			total += 1 + l
			if total > maxNameWire {
				return 0, ErrNameTooLong
			}
			labels++
			if labels > 127 {
				return 0, ErrNameTooLong
			}
			off += 1 + l
		}
	}
}

// nameIsRoot reports whether the (already skipName-validated) name at off
// is the root name, following compression pointers without allocating.
func nameIsRoot(msg []byte, off int) bool {
	for budget := 64; budget > 0; budget-- {
		if off >= len(msg) {
			return false
		}
		c := msg[off]
		switch {
		case c == 0:
			return true
		case c&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return false
			}
			off = int(c&0x3F)<<8 | int(msg[off+1])
		default:
			return false
		}
	}
	return false
}

// ValidateName checks that name can be encoded on the wire.
func ValidateName(name string) error {
	_, err := appendName(nil, name, nil)
	return err
}
