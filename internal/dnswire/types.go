// Package dnswire implements the DNS wire format (RFC 1035 and extensions):
// domain-name encoding with message compression, the fixed message header,
// questions, resource records for the record types the reproduction needs
// (A, AAAA, NS, CNAME, SOA, PTR, MX, TXT, DS, DNSKEY, RRSIG, NSEC, SRV, CAA),
// and EDNS(0) OPT pseudo-records (RFC 6891).
//
// The codec is allocation-conscious but favors clarity: Message values are
// plain structs that can be built by hand, packed with Pack or PackBuffer,
// and parsed back with Unpack. Truncation to a UDP payload budget is
// supported via PackTruncated, which implements the RFC 2181 rule of
// dropping whole RRSets and setting TC.
package dnswire

import "fmt"

// Type is a DNS resource record type (RFC 1035 §3.2.2 and successors).
type Type uint16

// Record types used throughout the reproduction.
const (
	TypeNone   Type = 0
	TypeA      Type = 1
	TypeNS     Type = 2
	TypeCNAME  Type = 5
	TypeSOA    Type = 6
	TypePTR    Type = 12
	TypeMX     Type = 15
	TypeTXT    Type = 16
	TypeAAAA   Type = 28
	TypeSRV    Type = 33
	TypeOPT    Type = 41
	TypeDS     Type = 43
	TypeRRSIG  Type = 46
	TypeNSEC   Type = 47
	TypeDNSKEY Type = 48
	TypeCAA    Type = 257
	TypeANY    Type = 255
)

var typeNames = map[Type]string{
	TypeA:      "A",
	TypeNS:     "NS",
	TypeCNAME:  "CNAME",
	TypeSOA:    "SOA",
	TypePTR:    "PTR",
	TypeMX:     "MX",
	TypeTXT:    "TXT",
	TypeAAAA:   "AAAA",
	TypeSRV:    "SRV",
	TypeOPT:    "OPT",
	TypeDS:     "DS",
	TypeRRSIG:  "RRSIG",
	TypeNSEC:   "NSEC",
	TypeDNSKEY: "DNSKEY",
	TypeCAA:    "CAA",
	TypeANY:    "ANY",
}

// String returns the mnemonic for t, or "TYPE<n>" for unknown types
// (RFC 3597 presentation style).
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// ParseType maps a mnemonic back to a Type. It accepts exactly the
// mnemonics produced by Type.String (without the TYPE<n> fallback).
func ParseType(s string) (Type, bool) {
	for t, name := range typeNames {
		if name == s {
			return t, true
		}
	}
	return TypeNone, false
}

// Class is a DNS class. Only IN is used on today's Internet.
type Class uint16

const (
	ClassIN  Class = 1
	ClassCH  Class = 3
	ClassANY Class = 255
)

// String returns the mnemonic for c.
func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassCH:
		return "CH"
	case ClassANY:
		return "ANY"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// RCode is a DNS response code. The paper defines "junk" traffic as any
// query whose response carries a non-NOERROR RCode.
type RCode uint16

const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// String returns the mnemonic for rc.
func (rc RCode) String() string {
	switch rc {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	}
	return fmt.Sprintf("RCODE%d", uint16(rc))
}

// Opcode is the DNS operation code; queries use OpcodeQuery.
type Opcode uint8

const (
	OpcodeQuery  Opcode = 0
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5
)

// Header is the 12-byte fixed DNS message header (RFC 1035 §4.1.1) with the
// flag bits broken out. Section counts are derived from the Message slices
// at pack time and filled in at parse time.
type Header struct {
	ID                 uint16
	Response           bool   // QR
	Opcode             Opcode // 4 bits
	Authoritative      bool   // AA
	Truncated          bool   // TC
	RecursionDesired   bool   // RD
	RecursionAvailable bool   // RA
	AuthenticData      bool   // AD (RFC 4035)
	CheckingDisabled   bool   // CD (RFC 4035)
	RCode              RCode  // low 4 bits; extended bits live in the OPT RR
}

// Question is a single entry of the question section.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String formats q in zone-file style.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}
