package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Errors returned by the message codec.
var (
	ErrShortMessage = errors.New("dnswire: message shorter than header")
	ErrTrailingData = errors.New("dnswire: trailing bytes after message")
	ErrCountiny     = errors.New("dnswire: section count exceeds message size")
)

// HeaderLen is the size of the fixed DNS header.
const HeaderLen = 12

// MinUDPSize is the classic pre-EDNS maximum DNS/UDP payload (RFC 1035).
const MinUDPSize = 512

// Message is a complete DNS message. The EDNS OPT pseudo-record is kept out
// of Additional and exposed via the Edns field; Pack re-inserts it.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
	Edns       *EDNS
}

// NewQuery builds a standard recursive-desired query for (name, type).
func NewQuery(id uint16, name string, typ Type) *Message {
	return &Message{
		Header: Header{
			ID:               id,
			Opcode:           OpcodeQuery,
			RecursionDesired: true,
		},
		Questions: []Question{{Name: CanonicalName(name), Type: typ, Class: ClassIN}},
	}
}

// WithEdns attaches an EDNS(0) OPT with the given UDP size and DO bit and
// returns m for chaining.
func (m *Message) WithEdns(udpSize uint16, do bool) *Message {
	m.Edns = &EDNS{UDPSize: udpSize, DO: do}
	return m
}

// Question returns the first question, or a zero Question if none.
func (m *Message) Question() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// Reply constructs a response skeleton echoing ID, question, opcode, and RD.
func (m *Message) Reply() *Message {
	r := &Message{
		Header: Header{
			ID:               m.Header.ID,
			Response:         true,
			Opcode:           m.Header.Opcode,
			RecursionDesired: m.Header.RecursionDesired,
		},
		Questions: append([]Question(nil), m.Questions...),
	}
	if m.Edns != nil {
		// Echo EDNS presence so the client knows its options were seen.
		r.Edns = &EDNS{UDPSize: MinUDPSize * 8, DO: m.Edns.DO}
	}
	return r
}

// packFlags encodes the 16-bit flags word.
func packFlags(h Header) uint16 {
	var f uint16
	if h.Response {
		f |= 1 << 15
	}
	f |= uint16(h.Opcode&0xF) << 11
	if h.Authoritative {
		f |= 1 << 10
	}
	if h.Truncated {
		f |= 1 << 9
	}
	if h.RecursionDesired {
		f |= 1 << 8
	}
	if h.RecursionAvailable {
		f |= 1 << 7
	}
	if h.AuthenticData {
		f |= 1 << 5
	}
	if h.CheckingDisabled {
		f |= 1 << 4
	}
	f |= uint16(h.RCode & 0xF)
	return f
}

// unpackFlags decodes the 16-bit flags word.
func unpackFlags(f uint16) Header {
	return Header{
		Response:           f&(1<<15) != 0,
		Opcode:             Opcode(f >> 11 & 0xF),
		Authoritative:      f&(1<<10) != 0,
		Truncated:          f&(1<<9) != 0,
		RecursionDesired:   f&(1<<8) != 0,
		RecursionAvailable: f&(1<<7) != 0,
		AuthenticData:      f&(1<<5) != 0,
		CheckingDisabled:   f&(1<<4) != 0,
		RCode:              RCode(f & 0xF),
	}
}

// appendRR appends one resource record with compression context comp.
func appendRR(b []byte, rr RR, comp *nameCompressor) ([]byte, error) {
	var err error
	if b, err = appendName(b, rr.Name, comp); err != nil {
		return b, err
	}
	b = binary.BigEndian.AppendUint16(b, uint16(rr.Data.Type()))
	b = binary.BigEndian.AppendUint16(b, uint16(rr.Class))
	b = binary.BigEndian.AppendUint32(b, rr.TTL)
	rdlenAt := len(b)
	b = append(b, 0, 0)
	if b, err = rr.Data.appendTo(b, comp); err != nil {
		return b, err
	}
	rdlen := len(b) - rdlenAt - 2
	if rdlen > 0xFFFF {
		return b, fmt.Errorf("%w: rdata %d bytes", ErrBadRData, rdlen)
	}
	binary.BigEndian.PutUint16(b[rdlenAt:], uint16(rdlen))
	return b, nil
}

// Pack serializes m with name compression.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(make([]byte, 0, 128))
}

// AppendPack serializes m, appending to b. Compression pointer offsets are
// relative to the message start (the initial len(b)), so a message may be
// packed into the middle of a reused buffer.
func (m *Message) AppendPack(b []byte) ([]byte, error) {
	if len(m.Questions) > 0xFFFF || len(m.Answers) > 0xFFFF ||
		len(m.Authority) > 0xFFFF || len(m.Additional)+1 > 0xFFFF {
		return nil, errors.New("dnswire: section too large")
	}
	base := len(b)
	b = binary.BigEndian.AppendUint16(b, m.Header.ID)
	b = binary.BigEndian.AppendUint16(b, packFlags(m.Header))
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Questions)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Answers)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Authority)))
	arcount := len(m.Additional)
	if m.Edns != nil {
		arcount++
	}
	b = binary.BigEndian.AppendUint16(b, uint16(arcount))

	comp := newNameCompressorAt(base)
	defer comp.release()
	var err error
	for _, q := range m.Questions {
		if b, err = appendName(b, q.Name, comp); err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint16(b, uint16(q.Type))
		b = binary.BigEndian.AppendUint16(b, uint16(q.Class))
	}
	for _, rr := range m.Answers {
		if b, err = appendRR(b, rr, comp); err != nil {
			return nil, err
		}
	}
	for _, rr := range m.Authority {
		if b, err = appendRR(b, rr, comp); err != nil {
			return nil, err
		}
	}
	for _, rr := range m.Additional {
		if b, err = appendRR(b, rr, comp); err != nil {
			return nil, err
		}
	}
	if m.Edns != nil {
		if b, err = appendOPT(b, m.Edns); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// PackTruncated serializes m but guarantees the result fits within limit
// bytes, dropping whole records back-to-front (additional, authority, then
// answers) and setting TC when anything was dropped (RFC 2181 §9 spirit).
// The question section is never dropped.
func (m *Message) PackTruncated(limit int) ([]byte, error) {
	return m.AppendPackTruncated(make([]byte, 0, 128), limit)
}

// AppendPackTruncated is PackTruncated appending to b: the common
// fits-within-limit case performs no allocation beyond growing b.
func (m *Message) AppendPackTruncated(b []byte, limit int) ([]byte, error) {
	if limit < HeaderLen {
		return nil, fmt.Errorf("dnswire: truncation limit %d below header size", limit)
	}
	start := len(b)
	out, err := m.AppendPack(b)
	if err != nil {
		return nil, err
	}
	if len(out)-start <= limit {
		return out, nil
	}
	trimmed, err := m.packTruncatedSlow(limit)
	if err != nil {
		return nil, err
	}
	return append(out[:start], trimmed...), nil
}

// packTruncatedSlow drops records until the message fits within limit.
func (m *Message) packTruncatedSlow(limit int) ([]byte, error) {
	trimmed := *m
	trimmed.Answers = append([]RR(nil), m.Answers...)
	trimmed.Authority = append([]RR(nil), m.Authority...)
	trimmed.Additional = append([]RR(nil), m.Additional...)
	trimmed.Header.Truncated = true
	for {
		switch {
		case len(trimmed.Additional) > 0:
			trimmed.Additional = trimmed.Additional[:len(trimmed.Additional)-1]
		case len(trimmed.Authority) > 0:
			trimmed.Authority = trimmed.Authority[:len(trimmed.Authority)-1]
		case len(trimmed.Answers) > 0:
			trimmed.Answers = trimmed.Answers[:len(trimmed.Answers)-1]
		default:
			// Bare header + question (+ OPT). If even that exceeds the
			// limit, drop EDNS as a last resort.
			b, err := trimmed.Pack()
			if err != nil {
				return nil, err
			}
			if len(b) <= limit {
				return b, nil
			}
			if trimmed.Edns != nil {
				trimmed.Edns = nil
				continue
			}
			return nil, fmt.Errorf("dnswire: cannot fit message in %d bytes", limit)
		}
		b, err := trimmed.Pack()
		if err != nil {
			return nil, err
		}
		if len(b) <= limit {
			return b, nil
		}
	}
}

// Unpack parses a complete DNS message. Trailing bytes are rejected; use
// UnpackPrefix to parse a message embedded in a larger buffer.
func Unpack(data []byte) (*Message, error) {
	m, n, err := UnpackPrefix(data)
	if err != nil {
		return nil, err
	}
	if n != len(data) {
		return nil, ErrTrailingData
	}
	return m, nil
}

// UnpackPrefix parses one message from the start of data and returns the
// number of bytes consumed.
func UnpackPrefix(data []byte) (*Message, int, error) {
	if len(data) < HeaderLen {
		return nil, 0, ErrShortMessage
	}
	m := &Message{}
	m.Header = unpackFlags(binary.BigEndian.Uint16(data[2:]))
	m.Header.ID = binary.BigEndian.Uint16(data)
	qd := int(binary.BigEndian.Uint16(data[4:]))
	an := int(binary.BigEndian.Uint16(data[6:]))
	ns := int(binary.BigEndian.Uint16(data[8:]))
	ar := int(binary.BigEndian.Uint16(data[10:]))
	// Each question takes ≥5 bytes; each RR ≥11. Cheap sanity bound.
	if qd*5+(an+ns+ar)*11 > len(data) {
		return nil, 0, ErrCountiny
	}
	off := HeaderLen
	for i := 0; i < qd; i++ {
		name, next, err := readName(data, off)
		if err != nil {
			return nil, 0, fmt.Errorf("question %d: %w", i, err)
		}
		if next+4 > len(data) {
			return nil, 0, ErrShortMessage
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  Type(binary.BigEndian.Uint16(data[next:])),
			Class: Class(binary.BigEndian.Uint16(data[next+2:])),
		})
		off = next + 4
	}
	var err error
	if m.Answers, off, err = parseSection(data, off, an, "answer"); err != nil {
		return nil, 0, err
	}
	if m.Authority, off, err = parseSection(data, off, ns, "authority"); err != nil {
		return nil, 0, err
	}
	// The additional section may contain the OPT pseudo-RR.
	for i := 0; i < ar; i++ {
		name, next, err := readName(data, off)
		if err != nil {
			return nil, 0, fmt.Errorf("additional %d: %w", i, err)
		}
		if next+10 > len(data) {
			return nil, 0, ErrShortMessage
		}
		typ := Type(binary.BigEndian.Uint16(data[next:]))
		class := binary.BigEndian.Uint16(data[next+2:])
		ttl := binary.BigEndian.Uint32(data[next+4:])
		rdlen := int(binary.BigEndian.Uint16(data[next+8:]))
		rdoff := next + 10
		if rdoff+rdlen > len(data) {
			return nil, 0, ErrTruncatedRData
		}
		if typ == TypeOPT {
			if name != "." {
				return nil, 0, fmt.Errorf("%w: OPT owner %q", ErrBadRData, name)
			}
			e, err := parseOPT(class, ttl, data[rdoff:rdoff+rdlen])
			if err != nil {
				return nil, 0, err
			}
			m.Edns = e
			// Fold extended RCODE bits into the header view.
			m.Header.RCode |= RCode(e.ExtRCode) << 4
		} else {
			rdata, err := parseRData(typ, data, rdoff, rdlen)
			if err != nil {
				return nil, 0, fmt.Errorf("additional %d: %w", i, err)
			}
			m.Additional = append(m.Additional, RR{
				Name: name, Class: Class(class), TTL: ttl, Data: rdata,
			})
		}
		off = rdoff + rdlen
	}
	return m, off, nil
}

// parseSection parses count resource records starting at off.
func parseSection(data []byte, off, count int, what string) ([]RR, int, error) {
	if count == 0 {
		return nil, off, nil
	}
	rrs := make([]RR, 0, count)
	for i := 0; i < count; i++ {
		name, next, err := readName(data, off)
		if err != nil {
			return nil, 0, fmt.Errorf("%s %d: %w", what, i, err)
		}
		if next+10 > len(data) {
			return nil, 0, ErrShortMessage
		}
		typ := Type(binary.BigEndian.Uint16(data[next:]))
		class := Class(binary.BigEndian.Uint16(data[next+2:]))
		ttl := binary.BigEndian.Uint32(data[next+4:])
		rdlen := int(binary.BigEndian.Uint16(data[next+8:]))
		rdoff := next + 10
		rdata, err := parseRData(typ, data, rdoff, rdlen)
		if err != nil {
			return nil, 0, fmt.Errorf("%s %d: %w", what, i, err)
		}
		rrs = append(rrs, RR{Name: name, Class: class, TTL: ttl, Data: rdata})
		off = rdoff + rdlen
	}
	return rrs, off, nil
}

// String renders the message in dig-like presentation form.
func (m *Message) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ";; id=%d opcode=%d rcode=%s qr=%v aa=%v tc=%v rd=%v ra=%v ad=%v\n",
		m.Header.ID, m.Header.Opcode, m.Header.RCode, m.Header.Response,
		m.Header.Authoritative, m.Header.Truncated,
		m.Header.RecursionDesired, m.Header.RecursionAvailable, m.Header.AuthenticData)
	if m.Edns != nil {
		fmt.Fprintf(&sb, ";; %s\n", m.Edns)
	}
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, ";%s\n", q)
	}
	for _, rr := range m.Answers {
		fmt.Fprintf(&sb, "%s\n", rr)
	}
	for _, rr := range m.Authority {
		fmt.Fprintf(&sb, "%s ; authority\n", rr)
	}
	for _, rr := range m.Additional {
		fmt.Fprintf(&sb, "%s ; additional\n", rr)
	}
	return sb.String()
}
