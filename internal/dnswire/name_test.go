package dnswire

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonicalName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "."},
		{".", "."},
		{"nl", "nl."},
		{"nl.", "nl."},
		{"WWW.Example.NL", "www.example.nl."},
		{"example.net.nz.", "example.net.nz."},
	}
	for _, c := range cases {
		if got := CanonicalName(c.in); got != c.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSplitAndCountLabels(t *testing.T) {
	if got := SplitLabels("."); got != nil {
		t.Errorf("SplitLabels(.) = %v, want nil", got)
	}
	got := SplitLabels("a.b.nl.")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "nl" {
		t.Errorf("SplitLabels(a.b.nl.) = %v", got)
	}
	if CountLabels("example.net.nz") != 3 {
		t.Errorf("CountLabels(example.net.nz) != 3")
	}
	if CountLabels(".") != 0 {
		t.Errorf("CountLabels(.) != 0")
	}
}

func TestParentName(t *testing.T) {
	cases := []struct{ in, want string }{
		{".", "."},
		{"nl.", "."},
		{"example.nl.", "nl."},
		{"www.example.net.nz.", "example.net.nz."},
	}
	for _, c := range cases {
		if got := ParentName(c.in); got != c.want {
			t.Errorf("ParentName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestIsSubdomain(t *testing.T) {
	cases := []struct {
		child, parent string
		want          bool
	}{
		{"example.nl.", "nl.", true},
		{"example.nl.", ".", true},
		{"nl.", "nl.", true},
		{"example.com.", "nl.", false},
		{"notnl.", "nl.", false}, // suffix of string but not of labels
		{"xample.nl.", "example.nl.", false},
		{"a.b.example.nl.", "example.nl.", true},
	}
	for _, c := range cases {
		if got := IsSubdomain(c.child, c.parent); got != c.want {
			t.Errorf("IsSubdomain(%q, %q) = %v, want %v", c.child, c.parent, got, c.want)
		}
	}
}

func TestAppendNameRoot(t *testing.T) {
	b, err := appendName(nil, ".", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 1 || b[0] != 0 {
		t.Fatalf("root encoding = %v", b)
	}
}

func TestNameRoundTrip(t *testing.T) {
	names := []string{
		".", "nl.", "example.nl.", "www.example.net.nz.",
		"a.b.c.d.e.f.g.h.example.com.",
		strings.Repeat("x", 63) + ".nl.",
	}
	for _, name := range names {
		b, err := appendName(nil, name, nil)
		if err != nil {
			t.Fatalf("appendName(%q): %v", name, err)
		}
		got, n, err := readName(b, 0)
		if err != nil {
			t.Fatalf("readName(%q): %v", name, err)
		}
		if got != name {
			t.Errorf("round trip %q -> %q", name, got)
		}
		if n != len(b) {
			t.Errorf("readName consumed %d of %d bytes", n, len(b))
		}
	}
}

func TestNameLimits(t *testing.T) {
	if _, err := appendName(nil, strings.Repeat("x", 64)+".nl.", nil); !errors.Is(err, ErrLabelTooLong) {
		t.Errorf("64-byte label: err = %v, want ErrLabelTooLong", err)
	}
	long := strings.TrimSuffix(strings.Repeat("abcdefgh.", 40), ".") + "." // 40*9=360 wire bytes
	if _, err := appendName(nil, long, nil); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("long name: err = %v, want ErrNameTooLong", err)
	}
	if _, err := appendName(nil, "a..nl.", nil); !errors.Is(err, ErrEmptyLabel) {
		t.Errorf("empty label: err = %v, want ErrEmptyLabel", err)
	}
}

func TestCompressionPointers(t *testing.T) {
	comp := newNameCompressor()
	b, err := appendName(nil, "www.example.nl.", comp)
	if err != nil {
		t.Fatal(err)
	}
	first := len(b)
	b, err = appendName(b, "mail.example.nl.", comp)
	if err != nil {
		t.Fatal(err)
	}
	// The second name should be shorter than its uncompressed form
	// (5 bytes "mail" label + 2-byte pointer = 7 < 17).
	if len(b)-first >= 17 {
		t.Errorf("compression not applied: second name took %d bytes", len(b)-first)
	}
	got1, n1, err := readName(b, 0)
	if err != nil || got1 != "www.example.nl." {
		t.Fatalf("first name: %q, %v", got1, err)
	}
	if n1 != first {
		t.Fatalf("first name consumed %d, want %d", n1, first)
	}
	got2, n2, err := readName(b, first)
	if err != nil || got2 != "mail.example.nl." {
		t.Fatalf("second name: %q, %v", got2, err)
	}
	if n2 != len(b) {
		t.Fatalf("second name consumed to %d, want %d", n2, len(b))
	}
}

func TestReadNameRejectsPointerLoop(t *testing.T) {
	// Pointer at offset 2 pointing to offset 0, which points to itself.
	msg := []byte{0xC0, 0x00}
	if _, _, err := readName(msg, 0); err == nil {
		t.Error("self-pointer accepted")
	}
	// Forward pointer.
	msg = []byte{0xC0, 0x04, 0, 0, 1, 'a', 0}
	if _, _, err := readName(msg, 0); !errors.Is(err, ErrBadPointer) {
		t.Errorf("forward pointer: err = %v, want ErrBadPointer", err)
	}
}

func TestReadNameTruncated(t *testing.T) {
	cases := [][]byte{
		{},            // nothing
		{3, 'a', 'b'}, // label runs past end
		{0xC0},        // half a pointer
		{2, 'a', 'b'}, // missing terminator
	}
	for i, msg := range cases {
		if _, _, err := readName(msg, 0); err == nil {
			t.Errorf("case %d: truncated name accepted", i)
		}
	}
}

func TestReadNameLowercases(t *testing.T) {
	b, err := appendName(nil, "WWW.EXAMPLE.NL", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := readName(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != "www.example.nl." {
		t.Errorf("got %q", got)
	}
}

// randomName generates a syntactically valid random DNS name.
func randomName(r *rand.Rand) string {
	labels := 1 + r.Intn(5)
	parts := make([]string, labels)
	for i := range parts {
		n := 1 + r.Intn(12)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte('a' + r.Intn(26))
		}
		parts[i] = string(b)
	}
	return strings.Join(parts, ".") + "."
}

func TestPropertyNameRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		name := randomName(r)
		b, err := appendName(nil, name, nil)
		if err != nil {
			return false
		}
		got, n, err := readName(b, 0)
		return err == nil && got == name && n == len(b)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyParentIsSubdomainInverse(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		name := randomName(r)
		return IsSubdomain(name, ParentName(name))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestValidateName(t *testing.T) {
	if err := ValidateName("example.nl."); err != nil {
		t.Errorf("valid name rejected: %v", err)
	}
	if err := ValidateName(strings.Repeat("y", 70) + "."); err == nil {
		t.Error("oversized label accepted")
	}
}
