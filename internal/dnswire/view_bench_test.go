package dnswire

import "testing"

// BenchmarkViewDecode compares the lazy View walk against the full Unpack
// parse on the two message shapes the entrada hot path sees: a typical
// EDNS query and an authoritative response. The view sub-benchmarks must
// stay at 0 allocs/op — CI runs this file in short mode so a regression
// shows up as a diff in the -benchtime=1x smoke run, and BENCH_PR3.json
// records the measured ratios.
func BenchmarkViewDecode(b *testing.B) {
	query, err := NewQuery(4321, "www.some-domain.example.nl.", TypeA).WithEdns(1232, true).Pack()
	if err != nil {
		b.Fatal(err)
	}
	resp, err := sampleResponse().WithEdns(4096, false).Pack()
	if err != nil {
		b.Fatal(err)
	}
	inputs := []struct {
		name string
		data []byte
	}{
		{"query", query},
		{"response", resp},
	}
	for _, in := range inputs {
		b.Run("view/"+in.name, func(b *testing.B) {
			var v View
			scratch := make([]byte, 0, 256)
			b.ReportAllocs()
			b.SetBytes(int64(len(in.data)))
			for i := 0; i < b.N; i++ {
				if err := v.Reset(in.data); err != nil {
					b.Fatal(err)
				}
				if err := v.Validate(); err != nil {
					b.Fatal(err)
				}
				name, _, _, err := v.Question(scratch[:0])
				if err != nil {
					b.Fatal(err)
				}
				scratch = name
				if _, _, err := v.EDNS(); err != nil {
					b.Fatal(err)
				}
				if _, err := v.FullRCode(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("unpack/"+in.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(in.data)))
			for i := 0; i < b.N; i++ {
				m, err := Unpack(in.data)
				if err != nil {
					b.Fatal(err)
				}
				q := m.Question()
				_ = q.Type
				_ = m.Edns
				_ = m.Header.RCode
			}
		})
	}
}
