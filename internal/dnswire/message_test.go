package dnswire

import (
	"bytes"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func mustPack(t *testing.T, m *Message) []byte {
	t.Helper()
	b, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	return b
}

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "example.nl", TypeA)
	b := mustPack(t, q)
	got, err := Unpack(b)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if got.Header.ID != 0x1234 || got.Header.Response || !got.Header.RecursionDesired {
		t.Errorf("header mismatch: %+v", got.Header)
	}
	if q := got.Question(); q.Name != "example.nl." || q.Type != TypeA || q.Class != ClassIN {
		t.Errorf("question mismatch: %+v", q)
	}
}

func TestQueryWithEdnsRoundTrip(t *testing.T) {
	q := NewQuery(7, "example.nz", TypeAAAA).WithEdns(1232, true)
	b := mustPack(t, q)
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Edns == nil {
		t.Fatal("EDNS lost")
	}
	if got.Edns.UDPSize != 1232 || !got.Edns.DO {
		t.Errorf("EDNS = %+v", got.Edns)
	}
	if len(got.Additional) != 0 {
		t.Errorf("OPT leaked into Additional: %v", got.Additional)
	}
}

func sampleResponse() *Message {
	m := NewQuery(42, "example.nl", TypeA).Reply()
	m.Header.Authoritative = true
	m.Answers = []RR{
		{Name: "example.nl.", Class: ClassIN, TTL: 3600,
			Data: AData{Addr: netip.MustParseAddr("192.0.2.1")}},
	}
	m.Authority = []RR{
		{Name: "example.nl.", Class: ClassIN, TTL: 3600,
			Data: NSData{Host: "ns1.example.nl."}},
		{Name: "example.nl.", Class: ClassIN, TTL: 3600,
			Data: NSData{Host: "ns2.example.nl."}},
	}
	m.Additional = []RR{
		{Name: "ns1.example.nl.", Class: ClassIN, TTL: 3600,
			Data: AData{Addr: netip.MustParseAddr("192.0.2.53")}},
		{Name: "ns1.example.nl.", Class: ClassIN, TTL: 3600,
			Data: AAAAData{Addr: netip.MustParseAddr("2001:db8::53")}},
	}
	return m
}

func TestResponseRoundTrip(t *testing.T) {
	m := sampleResponse()
	b := mustPack(t, m)
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 1 || len(got.Authority) != 2 || len(got.Additional) != 2 {
		t.Fatalf("section sizes: %d/%d/%d", len(got.Answers), len(got.Authority), len(got.Additional))
	}
	a, ok := got.Answers[0].Data.(AData)
	if !ok || a.Addr != netip.MustParseAddr("192.0.2.1") {
		t.Errorf("answer = %v", got.Answers[0])
	}
	ns, ok := got.Authority[1].Data.(NSData)
	if !ok || ns.Host != "ns2.example.nl." {
		t.Errorf("authority = %v", got.Authority[1])
	}
	aaaa, ok := got.Additional[1].Data.(AAAAData)
	if !ok || aaaa.Addr != netip.MustParseAddr("2001:db8::53") {
		t.Errorf("additional = %v", got.Additional[1])
	}
}

func TestCompressionSavesSpace(t *testing.T) {
	m := sampleResponse()
	b := mustPack(t, m)
	// Repack without compression by packing each name standalone would be
	// longer; sanity check the compressed form is well under that bound.
	if len(b) > 200 {
		t.Errorf("compressed response is %d bytes, expected < 200", len(b))
	}
}

func TestAllRDataTypesRoundTrip(t *testing.T) {
	rrs := []RR{
		{Name: "example.nl.", Class: ClassIN, TTL: 60, Data: AData{Addr: netip.MustParseAddr("203.0.113.9")}},
		{Name: "example.nl.", Class: ClassIN, TTL: 60, Data: AAAAData{Addr: netip.MustParseAddr("2001:db8:1::9")}},
		{Name: "example.nl.", Class: ClassIN, TTL: 60, Data: NSData{Host: "ns.example.nl."}},
		{Name: "alias.example.nl.", Class: ClassIN, TTL: 60, Data: CNAMEData{Target: "example.nl."}},
		{Name: "9.113.0.203.in-addr.arpa.", Class: ClassIN, TTL: 60, Data: PTRData{Target: "host.example.nl."}},
		{Name: "nl.", Class: ClassIN, TTL: 60, Data: SOAData{
			MName: "ns1.dns.nl.", RName: "hostmaster.domain-registry.nl.",
			Serial: 2020041100, Refresh: 3600, Retry: 600, Expire: 2419200, Minimum: 600}},
		{Name: "example.nl.", Class: ClassIN, TTL: 60, Data: MXData{Preference: 10, Exchange: "mx.example.nl."}},
		{Name: "example.nl.", Class: ClassIN, TTL: 60, Data: TXTData{Strings: []string{"v=spf1 -all", "second"}}},
		{Name: "_sip._tcp.example.nl.", Class: ClassIN, TTL: 60, Data: SRVData{Priority: 1, Weight: 5, Port: 5060, Target: "sip.example.nl."}},
		{Name: "example.nl.", Class: ClassIN, TTL: 60, Data: DSData{KeyTag: 12345, Algorithm: 13, DigestType: 2, Digest: []byte{1, 2, 3, 4}}},
		{Name: "nl.", Class: ClassIN, TTL: 60, Data: DNSKEYData{Flags: 257, Protocol: 3, Algorithm: 13, PublicKey: []byte{9, 8, 7}}},
		{Name: "nl.", Class: ClassIN, TTL: 60, Data: RRSIGData{
			TypeCovered: TypeSOA, Algorithm: 13, Labels: 1, OriginalTTL: 3600,
			Expiration: 1588000000, Inception: 1586000000, KeyTag: 12345,
			SignerName: "nl.", Signature: []byte{0xAA, 0xBB}}},
		{Name: "a.nl.", Class: ClassIN, TTL: 60, Data: NSECData{NextName: "b.nl.", Types: []Type{TypeA, TypeNS, TypeRRSIG, TypeCAA}}},
		{Name: "example.nl.", Class: ClassIN, TTL: 60, Data: CAAData{Flags: 0, Tag: "issue", Value: "letsencrypt.org"}},
		{Name: "example.nl.", Class: ClassIN, TTL: 60, Data: RawData{RRType: Type(999), Data: []byte{1, 2, 3}}},
	}
	m := &Message{Header: Header{ID: 1, Response: true}, Answers: rrs}
	b := mustPack(t, m)
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != len(rrs) {
		t.Fatalf("got %d answers, want %d", len(got.Answers), len(rrs))
	}
	for i, rr := range rrs {
		if !reflect.DeepEqual(got.Answers[i].Data, rr.Data) {
			t.Errorf("rr %d (%s): got %#v, want %#v", i, rr.Data.Type(), got.Answers[i].Data, rr.Data)
		}
		if got.Answers[i].Name != CanonicalName(rr.Name) {
			t.Errorf("rr %d name: got %q", i, got.Answers[i].Name)
		}
	}
}

func TestEmptyTXTRoundTrip(t *testing.T) {
	m := &Message{Answers: []RR{{Name: "x.nl.", Class: ClassIN, TTL: 1, Data: TXTData{}}}}
	b := mustPack(t, m)
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	txt := got.Answers[0].Data.(TXTData)
	if len(txt.Strings) != 1 || txt.Strings[0] != "" {
		t.Errorf("empty TXT round trip = %#v", txt)
	}
}

func TestPackTruncated(t *testing.T) {
	m := sampleResponse()
	full := mustPack(t, m)
	// Force truncation just below the full size.
	b, err := m.PackTruncated(len(full) - 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) >= len(full) {
		t.Errorf("truncated pack %d >= full %d", len(b), len(full))
	}
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Header.Truncated {
		t.Error("TC bit not set after truncation")
	}
	// Question must survive.
	if got.Question().Name != "example.nl." {
		t.Errorf("question lost: %+v", got.Question())
	}
}

func TestPackTruncatedFitsExactly(t *testing.T) {
	m := sampleResponse()
	full := mustPack(t, m)
	b, err := m.PackTruncated(len(full))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, full) {
		t.Error("no-op truncation altered message")
	}
	got, _ := Unpack(b)
	if got.Header.Truncated {
		t.Error("TC set although nothing was dropped")
	}
}

func TestPackTruncatedTo512(t *testing.T) {
	// Large response: 40 answers of ~30 bytes each.
	m := NewQuery(9, "big.example.nl", TypeA).Reply()
	for i := 0; i < 40; i++ {
		m.Answers = append(m.Answers, RR{
			Name: "big.example.nl.", Class: ClassIN, TTL: 60,
			Data: AData{Addr: netip.AddrFrom4([4]byte{198, 51, 100, byte(i)})},
		})
	}
	b, err := m.PackTruncated(MinUDPSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) > MinUDPSize {
		t.Fatalf("truncated message is %d bytes", len(b))
	}
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Header.Truncated {
		t.Error("TC not set")
	}
	if len(got.Answers) == 40 {
		t.Error("no answers dropped")
	}
}

func TestUnpackRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		bytes.Repeat([]byte{0xFF}, 12), // counts far exceed size
	}
	for i, b := range cases {
		if _, err := Unpack(b); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestUnpackRejectsTrailing(t *testing.T) {
	b := mustPack(t, NewQuery(1, "a.nl", TypeA))
	b = append(b, 0xDE, 0xAD)
	if _, err := Unpack(b); err != ErrTrailingData {
		t.Errorf("err = %v, want ErrTrailingData", err)
	}
	// UnpackPrefix should succeed and report consumed length.
	m, n, err := UnpackPrefix(b)
	if err != nil || n != len(b)-2 || m.Question().Name != "a.nl." {
		t.Errorf("UnpackPrefix: %v %d", err, n)
	}
}

func TestReplyEchoes(t *testing.T) {
	q := NewQuery(77, "x.nz", TypeNS).WithEdns(4096, true)
	r := q.Reply()
	if !r.Header.Response || r.Header.ID != 77 || !r.Header.RecursionDesired {
		t.Errorf("reply header: %+v", r.Header)
	}
	if r.Question() != q.Question() {
		t.Errorf("reply question: %+v", r.Question())
	}
	if r.Edns == nil || !r.Edns.DO {
		t.Error("reply lost EDNS/DO")
	}
}

func TestFlagsRoundTrip(t *testing.T) {
	f := func(id uint16, qr, aa, tc, rd, ra, ad, cd bool, op, rc uint8) bool {
		h := Header{
			ID: id, Response: qr, Opcode: Opcode(op & 0xF),
			Authoritative: aa, Truncated: tc, RecursionDesired: rd,
			RecursionAvailable: ra, AuthenticData: ad, CheckingDisabled: cd,
			RCode: RCode(rc & 0xF),
		}
		got := unpackFlags(packFlags(h))
		got.ID = id
		return got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEffectiveUDPSize(t *testing.T) {
	var e *EDNS
	if e.EffectiveUDPSize() != 512 {
		t.Error("nil EDNS should mean 512")
	}
	if (&EDNS{UDPSize: 100}).EffectiveUDPSize() != 512 {
		t.Error("tiny advertised size should clamp to 512")
	}
	if (&EDNS{UDPSize: 1232}).EffectiveUDPSize() != 1232 {
		t.Error("1232 should pass through")
	}
}

func TestEDNSOptionsRoundTrip(t *testing.T) {
	q := NewQuery(5, "opt.nl", TypeA)
	q.Edns = &EDNS{UDPSize: 4096, Options: []EDNSOption{
		{Code: EDNSOptionCookie, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Code: EDNSOptionPadding, Data: make([]byte, 16)},
	}}
	b := mustPack(t, q)
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Edns.Options) != 2 ||
		got.Edns.Options[0].Code != EDNSOptionCookie ||
		len(got.Edns.Options[1].Data) != 16 {
		t.Errorf("options = %+v", got.Edns.Options)
	}
}

func TestExtendedRCode(t *testing.T) {
	m := NewQuery(1, "x.nl", TypeA).Reply()
	m.Header.RCode = RCodeNoError
	m.Edns = &EDNS{UDPSize: 1232, ExtRCode: 1} // e.g. BADVERS = 16
	b := mustPack(t, m)
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.RCode != RCode(16) {
		t.Errorf("extended rcode = %d, want 16", got.Header.RCode)
	}
}

func TestDNSKEYKeyTagDeterministic(t *testing.T) {
	k := DNSKEYData{Flags: 257, Protocol: 3, Algorithm: 13, PublicKey: []byte("somekeymaterial")}
	if k.KeyTag() != k.KeyTag() {
		t.Error("key tag not deterministic")
	}
	k2 := k
	k2.PublicKey = []byte("otherkeymaterial")
	if k.KeyTag() == k2.KeyTag() {
		t.Error("different keys produced same tag (unlikely)")
	}
}

// randomMessage builds a structurally valid random message for fuzz-ish
// round-trip checking.
func randomMessage(r *rand.Rand) *Message {
	m := NewQuery(uint16(r.Uint32()), randomName(r), []Type{TypeA, TypeNS, TypeAAAA, TypeDS, TypeMX}[r.Intn(5)])
	if r.Intn(2) == 0 {
		m.WithEdns(uint16(512+r.Intn(4096)), r.Intn(2) == 0)
	}
	n := r.Intn(4)
	for i := 0; i < n; i++ {
		var d RData
		switch r.Intn(4) {
		case 0:
			d = AData{Addr: netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})}
		case 1:
			var a16 [16]byte
			a16[0], a16[1] = 0x20, 0x01
			a16[15] = byte(r.Intn(256))
			d = AAAAData{Addr: netip.AddrFrom16(a16)}
		case 2:
			d = NSData{Host: randomName(r)}
		default:
			d = TXTData{Strings: []string{"t"}}
		}
		m.Answers = append(m.Answers, RR{Name: m.Question().Name, Class: ClassIN, TTL: uint32(r.Intn(86400)), Data: d})
	}
	return m
}

func TestPropertyMessageRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMessage(r)
		b, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(b)
		if err != nil {
			return false
		}
		if got.Question() != m.Question() || len(got.Answers) != len(m.Answers) {
			return false
		}
		// Repacking the parsed form must produce a parseable equal message.
		b2, err := got.Pack()
		if err != nil {
			return false
		}
		got2, err := Unpack(b2)
		return err == nil && reflect.DeepEqual(got.Answers, got2.Answers)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyUnpackNeverPanics(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	f := func(data []byte) bool {
		// Must not panic; errors are fine.
		_, _ = Unpack(data)
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyTruncationRespectsLimit(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMessage(r)
		limit := 64 + r.Intn(512)
		b, err := m.PackTruncated(limit)
		if err != nil {
			// Only acceptable if even the bare question cannot fit.
			return limit < 40
		}
		return len(b) <= limit
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeDNSKEY.String() != "DNSKEY" {
		t.Error("type names wrong")
	}
	if Type(9999).String() != "TYPE9999" {
		t.Errorf("unknown type = %s", Type(9999))
	}
	if tt, ok := ParseType("NS"); !ok || tt != TypeNS {
		t.Error("ParseType(NS) failed")
	}
	if _, ok := ParseType("NOPE"); ok {
		t.Error("ParseType accepted junk")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" {
		t.Error("rcode name wrong")
	}
	if ClassIN.String() != "IN" {
		t.Error("class name wrong")
	}
}

func BenchmarkPackQuery(b *testing.B) {
	q := NewQuery(1, "www.example.nl", TypeA).WithEdns(1232, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpackResponse(b *testing.B) {
	m := sampleResponse()
	buf, _ := m.Pack()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(buf); err != nil {
			b.Fatal(err)
		}
	}
}
