package sim

import (
	"testing"
	"time"

	"dnscentral/internal/dnswire"
)

// TestHierarchyQminJunkUnderTLD covers the minimized probe for a
// nonexistent name: the TLD sees only the minimized NS query.
func TestHierarchyQminJunkUnderTLD(t *testing.T) {
	h := newHierarchy(t)
	now := time.Unix(1586000000, 0)
	c := h.NewIterClient(iterAddr, true, func() time.Time { return now })
	r, err := c.Resolve("a.b.nosuchname.nl.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %s", r.Header.RCode)
	}
	// The minimized first step under nl. is "nosuchname.nl. NS".
	if q := r.Question(); q.Type != dnswire.TypeNS || q.Name != "nosuchname.nl." {
		t.Fatalf("TLD saw %s %s, want minimized NS probe", q.Name, q.Type)
	}
	if st := c.Stats(); st.TLD != 1 || st.Leaf != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMinimizedStepShapes(t *testing.T) {
	cases := []struct{ origin, qname, want string }{
		{"nl.", "www.d5.nl.", "d5.nl."},
		{"nl.", "a.b.c.d5.nl.", "d5.nl."},
		{".", "www.d5.nl.", "nl."},
		{"nl.", "d5.nl.", "d5.nl."}, // already at the cut
	}
	for _, c := range cases {
		if got := minimizedStep(c.origin, c.qname); got != c.want {
			t.Errorf("minimizedStep(%q, %q) = %q, want %q", c.origin, c.qname, got, c.want)
		}
	}
}

// TestHierarchyDefaultClock covers the nil-clock constructor path.
func TestHierarchyDefaultClock(t *testing.T) {
	h := newHierarchy(t)
	c := h.NewIterClient(iterAddr, false, nil)
	if _, err := c.Resolve("www.d1.nl.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
}
