package sim

import (
	"bytes"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/authserver"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/entrada"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/resolver"
	"dnscentral/internal/stats"
	"dnscentral/internal/zonedb"
)

func newSim(t *testing.T, sink *pcapio.Writer, rrl *authserver.RRLConfig) *Sim {
	t.Helper()
	z, err := zonedb.NewCcTLD("nl", 2000, 0, 0.55, []string{"ns1.dns.nl"})
	if err != nil {
		t.Fatal(err)
	}
	var s workloadSink
	if sink != nil {
		s.w = sink
	}
	sm, err := New(Config{Zone: z, Sink: s, RRL: rrl})
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

// workloadSink adapts *pcapio.Writer to the nil-able sink.
type workloadSink struct{ w *pcapio.Writer }

func (s workloadSink) WritePacket(ts time.Time, data []byte) error {
	if s.w == nil {
		return nil
	}
	return s.w.WritePacket(ts, data)
}

func TestSimRequiresZone(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no zone accepted")
	}
}

func TestSimResolverNeedsAddress(t *testing.T) {
	sm := newSim(t, nil, nil)
	if _, err := sm.AddResolver(ResolverSpec{}); err == nil {
		t.Fatal("address-less resolver accepted")
	}
}

func TestQminMechanismEmergesAtTheVantage(t *testing.T) {
	// Two identical resolvers, one minimizing; the NS share difference in
	// the *capture* is the Figure 3 mechanism from first principles.
	reg := astrie.NewRegistry(4)
	for _, qmin := range []bool{false, true} {
		var buf bytes.Buffer
		w := pcapio.NewWriter(&buf)
		sm := newSim(t, w, nil)
		addr, _ := reg.ResolverAddr(15169, false, false, 1)
		r, err := sm.AddResolver(ResolverSpec{
			Addr4:  addr,
			Config: resolver.Config{Qmin: qmin, EDNSSize: 1232},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			name := fmt.Sprintf("www.d%d.nl.", i)
			if _, err := r.Resolve(name, dnswire.TypeA); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		rd, err := pcapio.NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		an := entrada.NewAnalyzer(reg)
		if err := an.AnalyzeReader(rd); err != nil {
			t.Fatal(err)
		}
		ag := an.Finish()
		google := ag.Provider(astrie.ProviderGoogle)
		nsShare := stats.Ratio(google.ByType[dnswire.TypeNS], google.Queries)
		if qmin && nsShare < 0.95 {
			t.Errorf("qmin: NS share %.2f, want ≈1", nsShare)
		}
		if !qmin && nsShare > 0.05 {
			t.Errorf("no qmin: NS share %.2f, want ≈0", nsShare)
		}
	}
}

func TestEDNSTruncationMechanism(t *testing.T) {
	// A 512-byte advertiser validating DNSSEC retries over TCP for signed
	// referrals; a 1232-byte advertiser never does.
	reg := astrie.NewRegistry(4)
	type result struct{ tcpShare float64 }
	run := func(edns uint16) result {
		var buf bytes.Buffer
		w := pcapio.NewWriter(&buf)
		sm := newSim(t, w, nil)
		addr, _ := reg.ResolverAddr(32934, false, false, 2)
		r, err := sm.AddResolver(ResolverSpec{
			Addr4:  addr,
			Config: resolver.Config{Validate: true, EDNSSize: edns},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if _, err := r.Resolve(fmt.Sprintf("www.d%d.nl.", i), dnswire.TypeA); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		rd, _ := pcapio.NewReader(&buf)
		an := entrada.NewAnalyzer(reg)
		if err := an.AnalyzeReader(rd); err != nil {
			t.Fatal(err)
		}
		ag := an.Finish()
		fb := ag.Provider(astrie.ProviderFacebook)
		return result{tcpShare: stats.Ratio(fb.TCP, fb.Queries)}
	}
	small := run(512)
	big := run(1232)
	if small.tcpShare < 0.10 {
		t.Errorf("512B advertiser TCP share %.3f, want substantial", small.tcpShare)
	}
	if big.tcpShare > 0.01 {
		t.Errorf("1232B advertiser TCP share %.3f, want ≈0", big.tcpShare)
	}
}

func TestRRLForcesTCP(t *testing.T) {
	reg := astrie.NewRegistry(4)
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf)
	sm := newSim(t, w, &authserver.RRLConfig{RatePerSec: 0.0000001, Burst: 2, SlipEvery: 1})
	addr, _ := reg.ResolverAddr(16509, false, false, 3)
	r, err := sm.AddResolver(ResolverSpec{
		Addr4:  addr,
		Config: resolver.Config{EDNSSize: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := r.Resolve(fmt.Sprintf("www.d%d.nl.", i), dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.TCPRetries < 40 {
		t.Errorf("TCP retries = %d, want ≈48 (rate-limited past burst)", st.TCPRetries)
	}
}

func TestDualStackRTTPreferenceInCapture(t *testing.T) {
	// A dual-stack resolver with a much faster IPv6 path must show mostly
	// IPv6 queries at the vantage (§4.3's mechanism).
	reg := astrie.NewRegistry(4)
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf)
	sm := newSim(t, w, nil)
	a4, _ := reg.ResolverAddr(32934, false, false, 4)
	a6, _ := reg.ResolverAddr(32934, true, false, 4)
	r, err := sm.AddResolver(ResolverSpec{
		Addr4: a4, Addr6: a6,
		RTT4: 80 * time.Millisecond, RTT6: 8 * time.Millisecond,
		Config: resolver.Config{EDNSSize: 1232, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if _, err := r.Resolve(fmt.Sprintf("www.d%d.nl.", i), dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, _ := pcapio.NewReader(&buf)
	an := entrada.NewAnalyzer(reg)
	if err := an.AnalyzeReader(rd); err != nil {
		t.Fatal(err)
	}
	ag := an.Finish()
	fb := ag.Provider(astrie.ProviderFacebook)
	v6Share := stats.Ratio(fb.V6, fb.Queries)
	if v6Share < 0.7 {
		t.Errorf("v6 share at the vantage = %.2f, want > 0.7 when v6 is 10x faster", v6Share)
	}
	// Both addresses must appear as distinct resolvers.
	rc := fb.ResolverCounts(nil)
	if rc.V4 != 1 || rc.V6 != 1 {
		t.Errorf("resolver counts = %+v", rc)
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	sm := newSim(t, nil, nil)
	start := sm.Clock.Now()
	reg := astrie.NewRegistry(1)
	addr, _ := reg.ResolverAddr(15169, false, false, 9)
	r, err := sm.AddResolver(ResolverSpec{Addr4: addr, RTT4: 50 * time.Millisecond,
		Config: resolver.Config{EDNSSize: 1232}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve("www.d1.nl.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if sm.Clock.Now().Sub(start) < 50*time.Millisecond {
		t.Error("clock did not advance by an RTT")
	}
}

func TestCaptureParsesCleanly(t *testing.T) {
	reg := astrie.NewRegistry(2)
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf)
	sm := newSim(t, w, nil)
	a4, _ := reg.ResolverAddr(13335, false, false, 1)
	r, err := sm.AddResolver(ResolverSpec{Addr4: a4,
		Config: resolver.Config{Qmin: true, Validate: true, EDNSSize: 512}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := r.Resolve(fmt.Sprintf("mail.d%d.nl.", i), dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, _ := pcapio.NewReader(&buf)
	an := entrada.NewAnalyzer(reg)
	if err := an.AnalyzeReader(rd); err != nil {
		t.Fatal(err)
	}
	if an.MalformedPackets != 0 {
		t.Errorf("malformed packets in capture: %d", an.MalformedPackets)
	}
	ag := an.Finish()
	// Analyzer totals must match the resolver's own accounting.
	if ag.Total != r.Stats().Sent {
		t.Errorf("capture total %d != resolver sent %d", ag.Total, r.Stats().Sent)
	}
	_ = netip.Addr{}
}
