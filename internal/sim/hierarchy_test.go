package sim

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"dnscentral/internal/dnswire"
	"dnscentral/internal/zonedb"
)

func newHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	nl, err := zonedb.NewCcTLD("nl", 5000, 0, 0.55, []string{"ns1.dns.nl"})
	if err != nil {
		t.Fatal(err)
	}
	nz, err := zonedb.NewCcTLD("nz", 500, 2000, 0.3, []string{"ns1.dns.net.nz"})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHierarchy(nl, nz)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

var iterAddr = netip.MustParseAddr("100.0.0.42")

func TestHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(); err == nil {
		t.Error("empty hierarchy accepted")
	}
	leaf, _ := zonedb.NewLeaf("x.nl.", []string{"ns1.x.nl."})
	if _, err := NewHierarchy(leaf); err == nil {
		t.Error("leaf accepted as TLD")
	}
}

func TestIterativeWalkAnswers(t *testing.T) {
	h := newHierarchy(t)
	now := time.Unix(1586000000, 0)
	c := h.NewIterClient(iterAddr, false, func() time.Time { return now })
	r, err := c.Resolve("www.d7.nl.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header.RCode != dnswire.RCodeNoError || len(r.Answers) == 0 {
		t.Fatalf("final answer: %+v", r.Header)
	}
	if r.Answers[0].Data.Type() != dnswire.TypeA {
		t.Fatalf("answer type %s", r.Answers[0].Data.Type())
	}
	st := c.Stats()
	if st.Root != 1 || st.TLD != 1 || st.Leaf != 1 {
		t.Fatalf("level stats = %+v, want 1/1/1", st)
	}
}

func TestHierarchyCachingAsymmetry(t *testing.T) {
	// The Figure 1 asymmetry: resolving many domains under one TLD hits
	// the root once but the TLD per domain — the root's share of
	// hierarchy traffic collapses, like B-Root's 8.7% vs the ccTLDs' 33%.
	h := newHierarchy(t)
	now := time.Unix(1586000000, 0)
	c := h.NewIterClient(iterAddr, true, func() time.Time { return now })
	const domains = 400
	for i := 0; i < domains; i++ {
		if _, err := c.Resolve(fmt.Sprintf("www.d%d.nl.", i), dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Root != 1 {
		t.Errorf("root queries = %d, want 1 (TLD NS cached)", st.Root)
	}
	if st.TLD != domains || st.Leaf != domains {
		t.Errorf("TLD/leaf queries = %d/%d, want %d each", st.TLD, st.Leaf, domains)
	}
	rootShare := float64(st.Root) / float64(st.Root+st.TLD+st.Leaf)
	if rootShare > 0.01 {
		t.Errorf("root share = %.4f, want ≪ TLD share", rootShare)
	}
}

func TestHierarchyRepeatedDomainServedFromLeafOnly(t *testing.T) {
	h := newHierarchy(t)
	now := time.Unix(1586000000, 0)
	c := h.NewIterClient(iterAddr, true, func() time.Time { return now })
	for i := 0; i < 10; i++ {
		if _, err := c.Resolve("www.d3.nl.", dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.TLD != 1 {
		t.Errorf("TLD queries = %d, want 1 (delegation cached)", st.TLD)
	}
	if st.Leaf != 10 {
		t.Errorf("leaf queries = %d, want 10", st.Leaf)
	}
}

func TestHierarchyCacheExpiry(t *testing.T) {
	h := newHierarchy(t)
	now := time.Unix(1586000000, 0)
	c := h.NewIterClient(iterAddr, true, func() time.Time { return now })
	if _, err := c.Resolve("www.d3.nl.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Hour) // past the delegation TTL, below the root's
	if _, err := c.Resolve("www.d3.nl.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Root != 1 {
		t.Errorf("root queries = %d, want 1", st.Root)
	}
	if st.TLD != 2 {
		t.Errorf("TLD queries = %d, want 2 (delegation expired)", st.TLD)
	}
}

func TestHierarchyJunkStopsAtTheRightLevel(t *testing.T) {
	h := newHierarchy(t)
	now := time.Unix(1586000000, 0)
	c := h.NewIterClient(iterAddr, false, func() time.Time { return now })
	// Junk TLD: NXDOMAIN from the root.
	r, err := c.Resolve("www.chromiumjunk.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("junk TLD rcode = %s", r.Header.RCode)
	}
	if st := c.Stats(); st.TLD != 0 || st.Leaf != 0 {
		t.Errorf("junk TLD leaked below the root: %+v", st)
	}
	// Junk under a real TLD: NXDOMAIN from the TLD.
	r, err = c.Resolve("nosuchname.nl.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("junk SLD rcode = %s", r.Header.RCode)
	}
	if st := c.Stats(); st.Leaf != 0 {
		t.Errorf("junk name leaked to a leaf: %+v", st)
	}
	// Junk host under a real domain: NXDOMAIN from the leaf.
	r, err = c.Resolve("nohost.d3.nl.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("junk host rcode = %s", r.Header.RCode)
	}
	if st := c.Stats(); st.Leaf != 1 {
		t.Errorf("leaf queries = %d, want 1", st.Leaf)
	}
}

func TestHierarchyThirdLevelNZ(t *testing.T) {
	h := newHierarchy(t)
	now := time.Unix(1586000000, 0)
	c := h.NewIterClient(iterAddr, true, func() time.Time { return now })
	// Rank 500 is the first third-level .nz domain.
	nz := h.TLDs["nz."].Zone()
	name, err := nz.DomainName(500)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Resolve("www."+name, dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header.RCode != dnswire.RCodeNoError || len(r.Answers) == 0 {
		t.Fatalf("third-level answer: %+v", r.Header)
	}
}

func TestLeafZoneSemantics(t *testing.T) {
	z, err := zonedb.NewLeaf("d9.nl.", []string{"ns1.d9.nl."})
	if err != nil {
		t.Fatal(err)
	}
	if !z.IsLeaf() {
		t.Fatal("not leaf")
	}
	if !z.LeafOwns("d9.nl.") || !z.LeafOwns("www.d9.nl.") {
		t.Error("leaf does not own its names")
	}
	if z.LeafOwns("nope.d9.nl.") || z.LeafOwns("a.www.d9.nl.") || z.LeafOwns("other.nl.") {
		t.Error("leaf owns foreign names")
	}
	if _, err := zonedb.NewLeaf("nl.", []string{"ns1.x."}); err == nil {
		t.Error("TLD accepted as leaf")
	}
}
