package sim

import (
	"bytes"
	"fmt"
	"net/netip"
	"os"
	"strconv"
	"testing"
	"time"

	"dnscentral/internal/dnswire"
	"dnscentral/internal/faults"
	"dnscentral/internal/pcapio"
	"dnscentral/internal/resolver"
	"dnscentral/internal/stats"
	"dnscentral/internal/zonedb"
)

// chaosSeed returns the fault seed for this run. CI sets CHAOS_SEED to
// sweep the chaos matrix over several fixed seeds; locally it defaults
// to 1.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	v := os.Getenv("CHAOS_SEED")
	if v == "" {
		return 1
	}
	seed, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("bad CHAOS_SEED %q: %v", v, err)
	}
	return seed
}

// chaosRun resolves n names through an impaired path and returns the
// capture bytes, the robustness report, and the failure count.
func chaosRun(t *testing.T, fcfg *faults.Config, rcfg resolver.Config, n int) ([]byte, stats.Robustness, int) {
	t.Helper()
	z, err := zonedb.NewCcTLD("nl", 2000, 0, 0.55, []string{"ns1.dns.nl"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sm, err := New(Config{Zone: z, Sink: workloadSink{pcapio.NewWriter(&buf)}, Faults: fcfg})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sm.AddResolver(ResolverSpec{
		Addr4:  netip.MustParseAddr("192.0.2.53"),
		Config: rcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for i := 0; i < n; i++ {
		if _, err := r.Resolve(fmt.Sprintf("www.d%d.nl.", i), dnswire.TypeA); err != nil {
			failures++
		}
	}
	rep := faults.Robustness(r.Stats(), uint64(n), uint64(failures), sm.FaultStats())
	return buf.Bytes(), rep, failures
}

// TestChaosDeterminism: the acceptance bar for the fault layer — the
// same seed and impairment plan must reproduce the run exactly, down to
// the capture bytes and the formatted robustness report.
func TestChaosDeterminism(t *testing.T) {
	fcfg := &faults.Config{
		Loss: 0.15, Duplicate: 0.05, Reorder: 0.05, Corrupt: 0.05,
		Truncate: 0.05, Jitter: 2 * time.Millisecond,
		Brownout: faults.Brownout{Every: 40, Len: 5, Mode: faults.BrownoutServfail},
		Seed:     chaosSeed(t),
	}
	rcfg := resolver.Config{
		EDNSSize: 1232, Retries: 8, Seed: 7,
		RetryBackoff: 50 * time.Millisecond, AttemptTimeout: 200 * time.Millisecond,
		RetryServfail: true,
	}
	pcapA, repA, failA := chaosRun(t, fcfg, rcfg, 120)
	pcapB, repB, failB := chaosRun(t, fcfg, rcfg, 120)
	if failA != failB {
		t.Fatalf("failure counts diverged: %d vs %d", failA, failB)
	}
	if repA != repB {
		t.Fatalf("robustness reports diverged:\n%+v\n%+v", repA, repB)
	}
	if repA.Format() != repB.Format() {
		t.Fatalf("formatted reports diverged:\n%s\n%s", repA.Format(), repB.Format())
	}
	if !bytes.Equal(pcapA, pcapB) {
		t.Fatalf("captures diverged: %d vs %d bytes", len(pcapA), len(pcapB))
	}
	if repA.FaultsInjected == 0 {
		t.Fatal("impaired run injected no faults")
	}
}

// TestChaosLossAmplification: under 20% per-direction UDP loss every
// lookup must still complete within the retry budget, and the measured
// retry amplification must sit strictly between the perfect-network 1.0
// and the budget ceiling — the paper's §5 junk/retransmission inflation,
// reproduced and bounded.
func TestChaosLossAmplification(t *testing.T) {
	fcfg := &faults.Config{Loss: 0.2, Seed: chaosSeed(t)}
	rcfg := resolver.Config{
		EDNSSize: 1232, Retries: 8, Seed: 7,
		RetryBackoff: 50 * time.Millisecond, AttemptTimeout: 200 * time.Millisecond,
	}
	_, rep, failures := chaosRun(t, fcfg, rcfg, 150)
	if failures != 0 {
		t.Fatalf("%d lookups failed under 20%% loss with a %d-retry budget", failures, rcfg.Retries)
	}
	amp := rep.Amplification()
	if amp <= 1.0 {
		t.Fatalf("amplification %.3f under 20%% loss, want > 1.0", amp)
	}
	if ceiling := float64(1 + rcfg.Retries); amp > ceiling {
		t.Fatalf("amplification %.3f exceeds retry budget ceiling %.1f", amp, ceiling)
	}
	if rep.WireQueries <= rep.LogicalExchanges {
		t.Fatalf("wire %d <= logical %d despite loss", rep.WireQueries, rep.LogicalExchanges)
	}
}

// TestChaosZeroImpairmentMatchesBaseline: a disabled fault config must
// leave the simulation byte-identical to one with no fault config at
// all — the impairment layer costs nothing when off.
func TestChaosZeroImpairmentMatchesBaseline(t *testing.T) {
	rcfg := resolver.Config{EDNSSize: 1232, Seed: 7}
	base, repBase, _ := chaosRun(t, nil, rcfg, 100)
	off, repOff, _ := chaosRun(t, &faults.Config{Seed: 99}, rcfg, 100)
	if !bytes.Equal(base, off) {
		t.Fatalf("disabled fault config changed the capture: %d vs %d bytes", len(base), len(off))
	}
	if repBase.WireQueries != repOff.WireQueries || repOff.FaultsInjected != 0 {
		t.Fatalf("reports diverged: %+v vs %+v", repBase, repOff)
	}
	if amp := repOff.Amplification(); amp != 1.0 {
		t.Fatalf("amplification %.3f on a perfect network, want exactly 1.0", amp)
	}
}

// TestChaosBrownoutServfail: during brownout windows the resolver
// retries SERVFAILs but lookups still complete (the SERVFAIL answer is
// surfaced, not an error), and the window shows up in the fault stats.
func TestChaosBrownoutServfail(t *testing.T) {
	fcfg := &faults.Config{
		Brownout: faults.Brownout{Every: 10, Len: 3, Mode: faults.BrownoutServfail},
		Seed:     chaosSeed(t),
	}
	rcfg := resolver.Config{EDNSSize: 1232, Retries: 2, Seed: 7, RetryServfail: true}
	_, rep, failures := chaosRun(t, fcfg, rcfg, 80)
	if failures != 0 {
		t.Fatalf("%d lookups turned into hard errors during servfail brownouts", failures)
	}
	if rep.ServfailRetries == 0 {
		t.Fatal("no servfail retries recorded across brownout windows")
	}
	if rep.FaultsInjected == 0 {
		t.Fatal("no brownout faults recorded")
	}
}
