package sim

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"dnscentral/internal/authserver"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/zonedb"
)

// Hierarchy wires the full DNS tree the paper's two vantage levels sit in:
// a root engine delegating to TLD engines delegating to (lazily built)
// registrant leaf engines. Iterative clients walking it reproduce the
// paper's root/ccTLD asymmetry as an emergent caching effect — the TLD NS
// set is cached once and reused for every domain under it, so the root
// sees a vanishing fraction of the TLD's query load (8.7% vs >30% in
// Figure 1).
type Hierarchy struct {
	Root *authserver.Engine
	// TLDs maps canonical origin ("nl.") to the TLD engine.
	TLDs map[string]*authserver.Engine

	mu     sync.Mutex
	leaves map[string]*authserver.Engine
}

// NewHierarchy builds a root serving the given TLD zones.
func NewHierarchy(tldZones ...*zonedb.Zone) (*Hierarchy, error) {
	if len(tldZones) == 0 {
		return nil, fmt.Errorf("sim: hierarchy needs at least one TLD")
	}
	var labels []string
	tlds := make(map[string]*authserver.Engine, len(tldZones))
	for _, z := range tldZones {
		if z.IsRoot() || z.IsLeaf() {
			return nil, fmt.Errorf("sim: %q is not a TLD zone", z.Origin)
		}
		labels = append(labels, z.Origin)
		tlds[z.Origin] = authserver.NewEngine(z)
	}
	rootZone, err := zonedb.NewRoot(labels, []string{"b.root-servers.net"})
	if err != nil {
		return nil, err
	}
	return &Hierarchy{
		Root:   authserver.NewEngine(rootZone),
		TLDs:   tlds,
		leaves: make(map[string]*authserver.Engine),
	}, nil
}

// leafEngine lazily builds the engine of one registered domain.
func (h *Hierarchy) leafEngine(delegation string, hosts []string) (*authserver.Engine, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.leaves[delegation]; ok {
		return e, nil
	}
	z, err := zonedb.NewLeaf(delegation, hosts)
	if err != nil {
		return nil, err
	}
	e := authserver.NewEngine(z)
	h.leaves[delegation] = e
	return e, nil
}

// LevelStats counts the queries one client sent to each hierarchy level.
type LevelStats struct {
	Root uint64
	TLD  uint64
	Leaf uint64
}

// IterClient is an iterative resolver walking the hierarchy with per-level
// caching, the way a real recursive resolver produces the traffic both
// B-Root and the ccTLDs observe.
type IterClient struct {
	h    *Hierarchy
	addr netip.Addr
	qmin bool
	now  func() time.Time

	mu sync.Mutex
	// tldNS caches "TLD exists, ask its engine" with expiry.
	tldNS map[string]time.Time
	// delegNS caches delegation→(hosts, expiry).
	delegNS map[string]delegEntry
	stats   LevelStats
	nextID  uint16
}

type delegEntry struct {
	hosts   []string
	expires time.Time
}

// NewIterClient creates an iterative client. now may be nil (wall clock).
func (h *Hierarchy) NewIterClient(addr netip.Addr, qmin bool, now func() time.Time) *IterClient {
	if now == nil {
		now = time.Now
	}
	return &IterClient{
		h: h, addr: addr, qmin: qmin, now: now,
		tldNS:   make(map[string]time.Time),
		delegNS: make(map[string]delegEntry),
	}
}

// Stats returns the per-level query counts.
func (c *IterClient) Stats() LevelStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ask sends one query to an engine, accounting the level.
func (c *IterClient) ask(e *authserver.Engine, level *uint64, name string, typ dnswire.Type) (*dnswire.Message, error) {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	*level++
	c.mu.Unlock()
	q := dnswire.NewQuery(id, name, typ).WithEdns(1232, false)
	r := e.Handle(q, c.addr, false)
	if r == nil {
		return nil, fmt.Errorf("sim: query dropped")
	}
	return r, nil
}

// Resolve walks root → TLD → leaf for (qname, qtype), returning the final
// response. Caching means repeat walks skip upper levels entirely.
func (c *IterClient) Resolve(qname string, qtype dnswire.Type) (*dnswire.Message, error) {
	qname = dnswire.CanonicalName(qname)
	labels := dnswire.SplitLabels(qname)
	if len(labels) < 2 {
		return nil, fmt.Errorf("sim: %q has no registered domain", qname)
	}
	tld := labels[len(labels)-1] + "."
	now := c.now()

	// Step 1: the root, unless the TLD's NS set is cached.
	c.mu.Lock()
	exp, cached := c.tldNS[tld]
	c.mu.Unlock()
	if !cached || now.After(exp) {
		name, typ := qname, qtype
		if c.qmin {
			name, typ = tld, dnswire.TypeNS
		}
		r, err := c.ask(c.h.Root, &c.stats.Root, name, typ)
		if err != nil {
			return nil, err
		}
		if r.Header.RCode != dnswire.RCodeNoError {
			return r, nil // junk TLD: NXDOMAIN from the root
		}
		c.mu.Lock()
		c.tldNS[tld] = now.Add(48 * time.Hour) // root referral TTLs are long
		c.mu.Unlock()
	}
	tldEngine, ok := c.h.TLDs[tld]
	if !ok {
		return nil, fmt.Errorf("sim: no engine for TLD %q", tld)
	}

	// Step 2: the TLD, unless the delegation is cached.
	zone := tldEngine.Zone()
	delegation, registered := zone.Delegation(qname)
	if !registered {
		// The TLD answers NXDOMAIN itself.
		name, typ := qname, qtype
		if c.qmin {
			name, typ = minimizedStep(zone.Origin, qname), dnswire.TypeNS
		}
		return c.ask(tldEngine, &c.stats.TLD, name, typ)
	}
	c.mu.Lock()
	entry, cached := c.delegNS[delegation]
	c.mu.Unlock()
	if !cached || now.After(entry.expires) {
		name, typ := qname, qtype
		if c.qmin {
			name, typ = delegation, dnswire.TypeNS
		}
		r, err := c.ask(tldEngine, &c.stats.TLD, name, typ)
		if err != nil {
			return nil, err
		}
		var hosts []string
		for _, rr := range r.Authority {
			if ns, ok := rr.Data.(dnswire.NSData); ok {
				hosts = append(hosts, ns.Host)
			}
		}
		if len(hosts) == 0 {
			return r, nil // unexpected: surface the TLD answer
		}
		entry = delegEntry{hosts: hosts, expires: now.Add(time.Hour)}
		c.mu.Lock()
		c.delegNS[delegation] = entry
		c.mu.Unlock()
	}

	// Step 3: the registrant's own servers.
	leaf, err := c.h.leafEngine(delegation, entry.hosts)
	if err != nil {
		return nil, err
	}
	return c.ask(leaf, &c.stats.Leaf, qname, qtype)
}

// minimizedStep returns the one-label-deeper name a Q-min resolver sends
// to a server authoritative for origin.
func minimizedStep(origin, qname string) string {
	labels := dnswire.SplitLabels(qname)
	depth := dnswire.CountLabels(origin) + 1
	if depth > len(labels) {
		depth = len(labels)
	}
	out := ""
	for i := len(labels) - depth; i < len(labels); i++ {
		out += labels[i] + "."
	}
	return out
}
