// Package sim wires the full mechanism chain end to end: real resolver
// logic (caching, QNAME minimization, DNSSEC validation, EDNS-driven TCP
// fallback, RTT-based family preference) from internal/resolver, against a
// real authoritative engine from internal/authserver, with every exchange
// also emitted as wire-faithful pcap frames carrying the resolver's
// synthetic source address.
//
// Where internal/workload *samples* behavior from calibrated
// distributions, sim *derives* it from the mechanisms themselves — the
// ablation benchmarks compare the two, showing the paper's aggregate
// signatures (NS-share jump under Q-min, truncation→TCP under small EDNS)
// emerge from first principles.
package sim

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"dnscentral/internal/authserver"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/faults"
	"dnscentral/internal/layers"
	"dnscentral/internal/resolver"
	"dnscentral/internal/workload"
	"dnscentral/internal/zonedb"
)

// Clock is a deterministic virtual clock shared by a simulation.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock starts at start.
func NewClock(start time.Time) *Clock { return &Clock{now: start} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Sim hosts one authoritative zone and any number of tapped resolvers.
type Sim struct {
	Engine *authserver.Engine
	Clock  *Clock

	mu        sync.Mutex
	sink      workload.PacketSink
	server4   netip.Addr
	server6   netip.Addr
	nextPort  uint16
	faults    *faults.Config
	injectors []*faults.Injector
}

// Config for a simulation.
type Config struct {
	Zone *zonedb.Zone
	// Sink receives the capture; nil discards packets.
	Sink workload.PacketSink
	// Server4/Server6 are the authoritative addresses (defaults provided).
	Server4, Server6 netip.Addr
	// Start is the virtual start time.
	Start time.Time
	// RRL optionally enables response rate limiting on the engine.
	RRL *authserver.RRLConfig
	// Faults, when non-nil, impairs every resolver's network path with
	// the configured loss/duplication/corruption/brownout plan (each
	// resolver gets its own deterministic injector seeded from
	// Faults.Seed, and its timeouts/backoffs advance the virtual
	// clock). Per-resolver overrides live on ResolverSpec.Faults.
	Faults *faults.Config
}

// New builds a simulation.
func New(cfg Config) (*Sim, error) {
	if cfg.Zone == nil {
		return nil, fmt.Errorf("sim: zone required")
	}
	if !cfg.Server4.IsValid() {
		cfg.Server4 = netip.MustParseAddr("198.51.99.1")
	}
	if !cfg.Server6.IsValid() {
		cfg.Server6 = netip.MustParseAddr("2001:500:1b::99:1")
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2020, 4, 5, 0, 0, 0, 0, time.UTC)
	}
	clock := NewClock(cfg.Start)
	opts := []authserver.Option{authserver.WithClock(clock.Now)}
	if cfg.RRL != nil {
		opts = append(opts, authserver.WithRRL(*cfg.RRL))
	}
	return &Sim{
		Engine:   authserver.NewEngine(cfg.Zone, opts...),
		Clock:    clock,
		sink:     cfg.Sink,
		server4:  cfg.Server4,
		server6:  cfg.Server6,
		nextPort: 1024,
		faults:   cfg.Faults,
	}, nil
}

// ResolverSpec describes one simulated resolver.
type ResolverSpec struct {
	// Addr4/Addr6: at least one must be valid; both make it dual-stack.
	Addr4, Addr6 netip.Addr
	// RTT4/RTT6 are the one-way network delays used for the virtual
	// clock and the TCP handshake shapes in the capture.
	RTT4, RTT6 time.Duration
	// Config is the resolver behavior (Q-min, validation, EDNS size...).
	Config resolver.Config
	// Faults overrides the simulation-wide impairment plan for this
	// resolver's path (nil inherits the Sim config).
	Faults *faults.Config
}

// AddResolver registers a resolver whose exchanges are tapped into the
// capture. When an impairment plan is configured, the resolver's path
// runs through a dedicated fault injector whose waits (lost-exchange
// timeouts, reorder delays, retry backoff) advance the virtual clock.
func (s *Sim) AddResolver(spec ResolverSpec) (*resolver.Resolver, error) {
	if !spec.Addr4.IsValid() && !spec.Addr6.IsValid() {
		return nil, fmt.Errorf("sim: resolver needs an address")
	}
	if spec.Config.Now == nil {
		spec.Config.Now = s.Clock.Now
	}
	if spec.Config.Sleep == nil {
		spec.Config.Sleep = s.Clock.Advance
	}
	fcfg := spec.Faults
	if fcfg == nil {
		fcfg = s.faults
	}
	var inj *faults.Injector
	if fcfg != nil && fcfg.Enabled() {
		// One injector per resolver: both families share the brownout
		// schedule and decision stream, and a sequentially driven
		// resolver consumes it deterministically.
		inj = faults.NewInjector(*fcfg)
		s.mu.Lock()
		s.injectors = append(s.injectors, inj)
		s.mu.Unlock()
	}
	impair := func(t resolver.Transport) resolver.Transport {
		if inj == nil {
			return t
		}
		return faults.WrapTransport(t, inj, s.Clock.Advance)
	}
	r := resolver.New(s.Engine.Zone().Origin, spec.Config)
	if spec.Addr4.IsValid() {
		rtt := spec.RTT4
		if rtt == 0 {
			rtt = 10 * time.Millisecond
		}
		r.AddUpstream(resolver.FamilyV4, impair(&tapTransport{
			sim: s, client: spec.Addr4, server: s.server4, rtt: rtt,
		}))
	}
	if spec.Addr6.IsValid() {
		rtt := spec.RTT6
		if rtt == 0 {
			rtt = 10 * time.Millisecond
		}
		r.AddUpstream(resolver.FamilyV6, impair(&tapTransport{
			sim: s, client: spec.Addr6, server: s.server6, rtt: rtt,
		}))
	}
	return r, nil
}

// FaultStats merges the injected-fault counters of every impaired
// resolver path in the simulation.
func (s *Sim) FaultStats() faults.Stats {
	s.mu.Lock()
	injectors := append([]*faults.Injector(nil), s.injectors...)
	s.mu.Unlock()
	var out faults.Stats
	for _, inj := range injectors {
		out.Merge(inj.Stats())
	}
	return out
}

// allocPort hands out ephemeral ports.
func (s *Sim) allocPort() uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextPort++
	if s.nextPort < 1024 {
		s.nextPort = 1024
	}
	return s.nextPort
}

// emit writes a frame to the sink if one is configured.
func (s *Sim) emit(ts time.Time, frame []byte, err error) error {
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sink == nil {
		return nil
	}
	return s.sink.WritePacket(ts, frame)
}

// tapTransport performs in-process exchanges against the engine while
// emitting the equivalent wire traffic (UDP datagrams or a full TCP
// connection) into the capture, stamped with virtual time.
type tapTransport struct {
	sim    *Sim
	client netip.Addr
	server netip.Addr
	rtt    time.Duration
}

// Exchange implements resolver.Transport.
func (t *tapTransport) Exchange(q *dnswire.Message, tcp bool) (*dnswire.Message, time.Duration, error) {
	s := t.sim
	qwire, err := q.Pack()
	if err != nil {
		return nil, 0, err
	}
	parsed, err := dnswire.Unpack(qwire)
	if err != nil {
		return nil, 0, err
	}
	resp := s.Engine.Handle(parsed, t.client, tcp)
	if resp == nil {
		return nil, 0, fmt.Errorf("sim: query dropped (RRL)")
	}
	rwire, err := authserver.PackResponse(resp, parsed, tcp)
	if err != nil {
		return nil, 0, err
	}
	answer, err := dnswire.Unpack(rwire)
	if err != nil {
		return nil, 0, err
	}

	src := netip.AddrPortFrom(t.client, s.allocPort())
	dst := netip.AddrPortFrom(t.server, 53)
	// The capture is taken at the server: the query arrives after half an
	// RTT of virtual time.
	s.Clock.Advance(t.rtt / 2)
	ts := s.Clock.Now()
	if tcp {
		if err := t.emitTCPConn(ts, src, dst, qwire, rwire); err != nil {
			return nil, 0, err
		}
		s.Clock.Advance(3 * t.rtt / 2) // handshake + response travel
		return answer, 2 * t.rtt, nil
	}
	frame, err := buildUDPFrame(src, dst, qwire)
	if err := s.emit(ts, frame, err); err != nil {
		return nil, 0, err
	}
	frame, err = buildUDPFrame(dst, src, rwire)
	if err := s.emit(ts.Add(200*time.Microsecond), frame, err); err != nil {
		return nil, 0, err
	}
	s.Clock.Advance(t.rtt / 2)
	return answer, t.rtt, nil
}

func buildUDPFrame(src, dst netip.AddrPort, payload []byte) ([]byte, error) {
	return layers.BuildUDP(src, dst, payload)
}

// emitTCPConn writes handshake, framed messages and teardown.
func (t *tapTransport) emitTCPConn(ts time.Time, src, dst netip.AddrPort, qwire, rwire []byte) error {
	s := t.sim
	proc := 200 * time.Microsecond
	frameQ := append([]byte{byte(len(qwire) >> 8), byte(len(qwire))}, qwire...)
	frameR := append([]byte{byte(len(rwire) >> 8), byte(len(rwire))}, rwire...)
	const iss, irs = 1000, 2000
	steps := []struct {
		at   time.Time
		from netip.AddrPort
		to   netip.AddrPort
		meta layers.TCPMeta
		data []byte
	}{
		{ts, src, dst, layers.TCPMeta{Seq: iss, Flags: layers.TCPFlagSYN}, nil},
		{ts.Add(proc), dst, src, layers.TCPMeta{Seq: irs, Ack: iss + 1, Flags: layers.TCPFlagSYN | layers.TCPFlagACK}, nil},
		{ts.Add(proc + t.rtt), src, dst, layers.TCPMeta{Seq: iss + 1, Ack: irs + 1, Flags: layers.TCPFlagACK}, nil},
		{ts.Add(proc + t.rtt + 50*time.Microsecond), src, dst, layers.TCPMeta{Seq: iss + 1, Ack: irs + 1, Flags: layers.TCPFlagPSH | layers.TCPFlagACK}, frameQ},
		{ts.Add(proc + t.rtt + 250*time.Microsecond), dst, src, layers.TCPMeta{Seq: irs + 1, Ack: iss + 1 + uint32(len(frameQ)), Flags: layers.TCPFlagPSH | layers.TCPFlagACK}, frameR},
		{ts.Add(proc + 2*t.rtt + 300*time.Microsecond), src, dst, layers.TCPMeta{Seq: iss + 1 + uint32(len(frameQ)), Ack: irs + 1 + uint32(len(frameR)), Flags: layers.TCPFlagFIN | layers.TCPFlagACK}, nil},
		{ts.Add(proc + 2*t.rtt + 500*time.Microsecond), dst, src, layers.TCPMeta{Seq: irs + 1 + uint32(len(frameR)), Ack: iss + 2 + uint32(len(frameQ)), Flags: layers.TCPFlagFIN | layers.TCPFlagACK}, nil},
	}
	for _, st := range steps {
		frame, err := layers.BuildTCP(st.from, st.to, st.meta, st.data)
		if err := s.emit(st.at, frame, err); err != nil {
			return err
		}
	}
	return nil
}
