package workload

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"dnscentral/internal/anycast"
	"dnscentral/internal/astrie"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/rdns"
	"dnscentral/internal/stats"
	"dnscentral/internal/telemetry"
	"dnscentral/internal/zonedb"
)

// PacketSink receives generated packets in timestamp order; pcapio.Writer
// satisfies it.
type PacketSink interface {
	WritePacket(ts time.Time, data []byte) error
}

// Config parameterizes one generated trace.
type Config struct {
	Vantage cloudmodel.Vantage
	Week    cloudmodel.Week
	// TotalQueries is the number of query events (cache misses) to
	// generate; the paper's billions scale down to this.
	TotalQueries int
	// ResolverScale scales resolver populations (default 0.02).
	ResolverScale float64
	// LongTailASes is the number of non-cloud ASes (default: scaled from
	// Table 3's AS counts).
	LongTailASes int
	// NumServers splits the vantage across several authoritative server
	// addresses (Table 2: .nl data covers two servers — Figures 5 and 8).
	NumServers int
	// Seed makes the trace reproducible.
	Seed int64
	// ProviderFilter, when non-empty, restricts generation to these
	// providers (used by the Figure 3 monthly harness).
	ProviderFilter []astrie.Provider
	// QminOverride, when non-nil, overrides every provider's QminShare
	// (Figure 3: Google's fleet before/after Dec 2019).
	QminOverride *float64
	// Anomaly injects the Feb-2020 .nz cyclic-dependency event: a flood of
	// repeated A/AAAA queries from Google for two broken domains (§4.2.1).
	Anomaly bool
	// DiurnalAmplitude shapes the time-of-day traffic density (0 = flat,
	// default 0.4: daytime peaks ≈2.3× the nightly trough, per the
	// diurnal patterns the paper compensates for by capturing full weeks).
	DiurnalAmplitude float64
	// Start overrides the trace start time (defaults to the Table 2 week).
	Start time.Time
	// Workers is the generation parallelism: event-index ranges are
	// sharded across this many goroutines and merged back in timestamp
	// order, so the output is byte-identical for any worker count.
	// 0 or 1 generate on a single shard.
	Workers int
	// Telemetry, when set, publishes live generation metrics (events and
	// packets emitted, block-pool hit rate) on the registry. The trace
	// bytes are unaffected: telemetry reads counters, never randomness.
	Telemetry *telemetry.Registry
}

// WeekStart returns the capture start of each vantage/week (Table 2 and
// §2.2's DITL days).
func WeekStart(v cloudmodel.Vantage, w cloudmodel.Week) time.Time {
	if v == cloudmodel.VantageBRoot {
		switch w {
		case cloudmodel.W2018:
			return time.Date(2018, 4, 10, 0, 0, 0, 0, time.UTC)
		case cloudmodel.W2019:
			return time.Date(2019, 4, 9, 0, 0, 0, 0, time.UTC)
		default:
			return time.Date(2020, 5, 6, 0, 0, 0, 0, time.UTC)
		}
	}
	switch w {
	case cloudmodel.W2018:
		return time.Date(2018, 11, 4, 0, 0, 0, 0, time.UTC)
	case cloudmodel.W2019:
		return time.Date(2019, 11, 3, 0, 0, 0, 0, time.UTC)
	default:
		return time.Date(2020, 4, 5, 0, 0, 0, 0, time.UTC)
	}
}

// Duration returns the capture length: a week for ccTLDs, one day for
// B-Root (DITL collections).
func Duration(v cloudmodel.Vantage) time.Duration {
	if v == cloudmodel.VantageBRoot {
		return 24 * time.Hour
	}
	return 7 * 24 * time.Hour
}

// ServerAddr returns the address of the i-th authoritative server of the
// vantage. The space (198.51.x / 2001:500:1b::x) is disjoint from resolver
// and glue allocations.
func ServerAddr(v cloudmodel.Vantage, i int, v6 bool) netip.Addr {
	base := map[cloudmodel.Vantage]byte{
		cloudmodel.VantageNL: 10, cloudmodel.VantageNZ: 20, cloudmodel.VantageBRoot: 30,
	}[v]
	if v6 {
		var b [16]byte
		copy(b[:6], []byte{0x20, 0x01, 0x05, 0x00, 0x00, 0x1b})
		b[14] = base
		b[15] = byte(i + 1)
		return netip.AddrFrom16(b)
	}
	return netip.AddrFrom4([4]byte{198, 51, base, byte(i + 1)})
}

// GroundTruth counts what the generator emitted, for validating the
// analysis pipeline against an oracle.
type GroundTruth struct {
	Queries      uint64
	ByProvider   map[astrie.Provider]uint64
	JunkQueries  map[astrie.Provider]uint64
	V6Queries    map[astrie.Provider]uint64
	TCPQueries   map[astrie.Provider]uint64
	Truncated    map[astrie.Provider]uint64
	ByType       map[dnswire.Type]uint64
	ResolverSet  map[netip.Addr]struct{}
	OtherQueries uint64
	OtherJunk    uint64
}

// Generator produces one trace. Its state after NewGenerator is read-only:
// every mutable piece of generation state (PRNG, engine, scratch buffers)
// lives in per-shard emitters, so one Generator can drive many shards.
type Generator struct {
	cfg   Config
	vw    *cloudmodel.VantageWeek
	reg   *astrie.Registry
	zone  *zonedb.Zone
	ptrDB *rdns.DB

	pools    map[astrie.Provider]*providerPool
	longTail *longTailPool
	pickProv *stats.WeightedChoice
	provIdx  []astrie.Provider // index space of pickProv: providers + Other last

	// Telemetry mirrors (nil ⇒ no-ops), fed once per generated block so
	// the per-event emit path stays zero-cost.
	tmEvents  *telemetry.Counter
	tmPackets *telemetry.Counter
}

// NewGenerator builds all state for one trace configuration.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.TotalQueries <= 0 {
		return nil, fmt.Errorf("workload: TotalQueries must be positive")
	}
	if cfg.ResolverScale <= 0 {
		cfg.ResolverScale = 0.02
	}
	if cfg.NumServers <= 0 {
		cfg.NumServers = 1
		if cfg.Vantage == cloudmodel.VantageNL {
			cfg.NumServers = 2 // Table 2: two analyzed .nl servers
		}
	}
	vw, err := cloudmodel.Get(cfg.Vantage, cfg.Week)
	if err != nil {
		return nil, err
	}
	if cfg.LongTailASes <= 0 {
		cfg.LongTailASes = vw.ASes / 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	reg := astrie.NewRegistry(cfg.LongTailASes)
	zone, err := buildZone(cfg.Vantage)
	if err != nil {
		return nil, err
	}
	deployment := deploymentFor(cfg.Vantage, cfg.Week)
	g := &Generator{
		cfg:   cfg,
		vw:    vw,
		reg:   reg,
		zone:  zone,
		ptrDB: rdns.NewDB(),
		pools: make(map[astrie.Provider]*providerPool),
	}

	filter := cfg.ProviderFilter
	if len(filter) == 0 {
		filter = astrie.CloudProviders
	}
	var weights []float64
	cloudShare := 0.0
	for _, p := range filter {
		profile := vw.Providers[p]
		if cfg.QminOverride != nil {
			profile.QminShare = *cfg.QminOverride
		}
		pool, err := buildProviderPool(reg, p, profile, cfg.ResolverScale, rng, g.ptrDB, deployment)
		if err != nil {
			return nil, err
		}
		g.pools[p] = pool
		g.provIdx = append(g.provIdx, p)
		weights = append(weights, profile.Share)
		cloudShare += profile.Share
	}
	// The long tail only participates in unfiltered runs.
	if len(cfg.ProviderFilter) == 0 {
		cloudResolvers := 0
		for _, p := range astrie.CloudProviders {
			cloudResolvers += vw.Providers[p].Resolvers
		}
		nOther := scaledCount(vw.Resolvers-cloudResolvers, cfg.ResolverScale/4, cfg.LongTailASes)
		lt, err := buildLongTailPool(reg, nOther, cfg.LongTailASes, cfg.Week, rng, deployment)
		if err != nil {
			return nil, err
		}
		g.longTail = lt
		g.provIdx = append(g.provIdx, astrie.ProviderOther)
		weights = append(weights, 1-cloudShare)
	}
	g.pickProv, err = stats.NewWeightedChoice(weights)
	if err != nil {
		return nil, err
	}
	if reg := cfg.Telemetry; reg != nil {
		g.tmEvents = reg.Counter("workload_events_total")
		g.tmPackets = reg.Counter("workload_packets_total")
		// The block pool is package-wide; expose its cumulative gets and
		// misses so the arena-recycling hit rate (1 - misses/gets) is
		// readable live.
		reg.CounterFunc("workload_block_pool_gets_total", poolGets.Load)
		reg.CounterFunc("workload_block_pool_misses_total", poolMisses.Load)
	}
	return g, nil
}

// deploymentFor returns the vantage's anycast site set: B-Root's grows
// across the snapshots (§3's explanation for its resolver growth); the
// ccTLD authoritative services are anycast across roughly a dozen (.nl,
// §2.1.1) and several (.nz) global locations throughout.
func deploymentFor(v cloudmodel.Vantage, w cloudmodel.Week) *anycast.Deployment {
	if v == cloudmodel.VantageBRoot {
		return anycast.BRootDeployments[w.Year()]
	}
	if v == cloudmodel.VantageNL {
		return nlDeployment
	}
	return nzDeployment
}

var nlDeployment = mustDeployment([]anycast.Site{
	{Code: "ams", Lat: 52.31, Lon: 4.76},
	{Code: "lhr", Lat: 51.47, Lon: -0.45},
	{Code: "fra", Lat: 50.03, Lon: 8.56},
	{Code: "cdg", Lat: 49.01, Lon: 2.55},
	{Code: "iad", Lat: 38.94, Lon: -77.46},
	{Code: "ord", Lat: 41.97, Lon: -87.91},
	{Code: "sjc", Lat: 37.36, Lon: -121.93},
	{Code: "gru", Lat: -23.44, Lon: -46.47},
	{Code: "sin", Lat: 1.36, Lon: 103.99},
	{Code: "nrt", Lat: 35.76, Lon: 140.39},
	{Code: "syd", Lat: -33.95, Lon: 151.18},
	{Code: "jnb", Lat: -26.13, Lon: 28.23},
})

var nzDeployment = mustDeployment([]anycast.Site{
	{Code: "akl", Lat: -37.01, Lon: 174.79},
	{Code: "wlg", Lat: -41.33, Lon: 174.81},
	{Code: "syd", Lat: -33.95, Lon: 151.18},
	{Code: "lax", Lat: 33.94, Lon: -118.41},
	{Code: "lhr", Lat: 51.47, Lon: -0.45},
	{Code: "fra", Lat: 50.03, Lon: 8.56},
	{Code: "sin", Lat: 1.36, Lon: 103.99},
})

func mustDeployment(sites []anycast.Site) *anycast.Deployment {
	d, err := anycast.NewDeployment(sites)
	if err != nil {
		panic(err)
	}
	return d
}

// buildZone creates the vantage's zone at a scaled-down size that keeps
// the .nz second/third-level split (Table 2's zone sizes are virtual, so
// the full sizes would also work; scaled sizes keep Zipf sampling fast).
func buildZone(v cloudmodel.Vantage) (*zonedb.Zone, error) {
	switch v {
	case cloudmodel.VantageNL:
		return zonedb.NewCcTLD("nl", 590_000, 0, 0.55,
			[]string{"ns1.dns.nl", "ns3.dns.nl"})
	case cloudmodel.VantageNZ:
		// 140.5K second-level, 574.5K third-level scaled by 10.
		return zonedb.NewCcTLD("nz", 14_050, 57_450, 0.30,
			[]string{"ns1.dns.net.nz", "ns2.dns.net.nz"})
	case cloudmodel.VantageBRoot:
		return zonedb.NewRoot(zonedb.DefaultRootTLDs, []string{"b.root-servers.net"})
	}
	return nil, fmt.Errorf("workload: unknown vantage %q", v)
}

// Registry exposes the AS registry used (the analysis pipeline must use
// the same one).
func (g *Generator) Registry() *astrie.Registry { return g.reg }

// PTRDB exposes the PTR database for the Figure 5 reverse-DNS step.
func (g *Generator) PTRDB() *rdns.DB { return g.ptrDB }

// Zone exposes the zone served at the vantage.
func (g *Generator) Zone() *zonedb.Zone { return g.zone }

// newGroundTruth allocates the counters.
func newGroundTruth() *GroundTruth {
	return &GroundTruth{
		ByProvider:  make(map[astrie.Provider]uint64),
		JunkQueries: make(map[astrie.Provider]uint64),
		V6Queries:   make(map[astrie.Provider]uint64),
		TCPQueries:  make(map[astrie.Provider]uint64),
		Truncated:   make(map[astrie.Provider]uint64),
		ByType:      make(map[dnswire.Type]uint64),
		ResolverSet: make(map[netip.Addr]struct{}),
	}
}


// Merge folds the counts of another shard's ground truth into gt. All
// fields are order-insensitive sums or set unions, so merging per-shard
// truths yields the same totals regardless of sharding.
func (gt *GroundTruth) Merge(o *GroundTruth) {
	gt.Queries += o.Queries
	gt.OtherQueries += o.OtherQueries
	gt.OtherJunk += o.OtherJunk
	for k, v := range o.ByProvider {
		gt.ByProvider[k] += v
	}
	for k, v := range o.JunkQueries {
		gt.JunkQueries[k] += v
	}
	for k, v := range o.V6Queries {
		gt.V6Queries[k] += v
	}
	for k, v := range o.TCPQueries {
		gt.TCPQueries[k] += v
	}
	for k, v := range o.Truncated {
		gt.Truncated[k] += v
	}
	for k, v := range o.ByType {
		gt.ByType[k] += v
	}
	for k := range o.ResolverSet {
		gt.ResolverSet[k] = struct{}{}
	}
}
