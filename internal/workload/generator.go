package workload

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"dnscentral/internal/anycast"
	"dnscentral/internal/astrie"
	"dnscentral/internal/authserver"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/layers"
	"dnscentral/internal/rdns"
	"dnscentral/internal/stats"
	"dnscentral/internal/zonedb"
)

// PacketSink receives generated packets in timestamp order; pcapio.Writer
// satisfies it.
type PacketSink interface {
	WritePacket(ts time.Time, data []byte) error
}

// Config parameterizes one generated trace.
type Config struct {
	Vantage cloudmodel.Vantage
	Week    cloudmodel.Week
	// TotalQueries is the number of query events (cache misses) to
	// generate; the paper's billions scale down to this.
	TotalQueries int
	// ResolverScale scales resolver populations (default 0.02).
	ResolverScale float64
	// LongTailASes is the number of non-cloud ASes (default: scaled from
	// Table 3's AS counts).
	LongTailASes int
	// NumServers splits the vantage across several authoritative server
	// addresses (Table 2: .nl data covers two servers — Figures 5 and 8).
	NumServers int
	// Seed makes the trace reproducible.
	Seed int64
	// ProviderFilter, when non-empty, restricts generation to these
	// providers (used by the Figure 3 monthly harness).
	ProviderFilter []astrie.Provider
	// QminOverride, when non-nil, overrides every provider's QminShare
	// (Figure 3: Google's fleet before/after Dec 2019).
	QminOverride *float64
	// Anomaly injects the Feb-2020 .nz cyclic-dependency event: a flood of
	// repeated A/AAAA queries from Google for two broken domains (§4.2.1).
	Anomaly bool
	// DiurnalAmplitude shapes the time-of-day traffic density (0 = flat,
	// default 0.4: daytime peaks ≈2.3× the nightly trough, per the
	// diurnal patterns the paper compensates for by capturing full weeks).
	DiurnalAmplitude float64
	// Start overrides the trace start time (defaults to the Table 2 week).
	Start time.Time
}

// WeekStart returns the capture start of each vantage/week (Table 2 and
// §2.2's DITL days).
func WeekStart(v cloudmodel.Vantage, w cloudmodel.Week) time.Time {
	if v == cloudmodel.VantageBRoot {
		switch w {
		case cloudmodel.W2018:
			return time.Date(2018, 4, 10, 0, 0, 0, 0, time.UTC)
		case cloudmodel.W2019:
			return time.Date(2019, 4, 9, 0, 0, 0, 0, time.UTC)
		default:
			return time.Date(2020, 5, 6, 0, 0, 0, 0, time.UTC)
		}
	}
	switch w {
	case cloudmodel.W2018:
		return time.Date(2018, 11, 4, 0, 0, 0, 0, time.UTC)
	case cloudmodel.W2019:
		return time.Date(2019, 11, 3, 0, 0, 0, 0, time.UTC)
	default:
		return time.Date(2020, 4, 5, 0, 0, 0, 0, time.UTC)
	}
}

// Duration returns the capture length: a week for ccTLDs, one day for
// B-Root (DITL collections).
func Duration(v cloudmodel.Vantage) time.Duration {
	if v == cloudmodel.VantageBRoot {
		return 24 * time.Hour
	}
	return 7 * 24 * time.Hour
}

// ServerAddr returns the address of the i-th authoritative server of the
// vantage. The space (198.51.x / 2001:500:1b::x) is disjoint from resolver
// and glue allocations.
func ServerAddr(v cloudmodel.Vantage, i int, v6 bool) netip.Addr {
	base := map[cloudmodel.Vantage]byte{
		cloudmodel.VantageNL: 10, cloudmodel.VantageNZ: 20, cloudmodel.VantageBRoot: 30,
	}[v]
	if v6 {
		var b [16]byte
		copy(b[:6], []byte{0x20, 0x01, 0x05, 0x00, 0x00, 0x1b})
		b[14] = base
		b[15] = byte(i + 1)
		return netip.AddrFrom16(b)
	}
	return netip.AddrFrom4([4]byte{198, 51, base, byte(i + 1)})
}

// GroundTruth counts what the generator emitted, for validating the
// analysis pipeline against an oracle.
type GroundTruth struct {
	Queries      uint64
	ByProvider   map[astrie.Provider]uint64
	JunkQueries  map[astrie.Provider]uint64
	V6Queries    map[astrie.Provider]uint64
	TCPQueries   map[astrie.Provider]uint64
	Truncated    map[astrie.Provider]uint64
	ByType       map[dnswire.Type]uint64
	ResolverSet  map[netip.Addr]struct{}
	OtherQueries uint64
	OtherJunk    uint64
}

// Generator produces one trace.
type Generator struct {
	cfg    Config
	vw     *cloudmodel.VantageWeek
	reg    *astrie.Registry
	zone   *zonedb.Zone
	engine *authserver.Engine
	ptrDB  *rdns.DB

	pools    map[astrie.Provider]*providerPool
	longTail *longTailPool
	pickProv *stats.WeightedChoice
	provIdx  []astrie.Provider // index space of pickProv: providers + Other last

	zipf *stats.Zipf
	rng  *rand.Rand

	nextID   uint16
	nextPort uint16
}

// NewGenerator builds all state for one trace configuration.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.TotalQueries <= 0 {
		return nil, fmt.Errorf("workload: TotalQueries must be positive")
	}
	if cfg.ResolverScale <= 0 {
		cfg.ResolverScale = 0.02
	}
	if cfg.NumServers <= 0 {
		cfg.NumServers = 1
		if cfg.Vantage == cloudmodel.VantageNL {
			cfg.NumServers = 2 // Table 2: two analyzed .nl servers
		}
	}
	vw, err := cloudmodel.Get(cfg.Vantage, cfg.Week)
	if err != nil {
		return nil, err
	}
	if cfg.LongTailASes <= 0 {
		cfg.LongTailASes = vw.ASes / 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	reg := astrie.NewRegistry(cfg.LongTailASes)
	zone, err := buildZone(cfg.Vantage)
	if err != nil {
		return nil, err
	}
	deployment := deploymentFor(cfg.Vantage, cfg.Week)
	g := &Generator{
		cfg:    cfg,
		vw:     vw,
		reg:    reg,
		zone:   zone,
		engine: authserver.NewEngine(zone),
		ptrDB:  rdns.NewDB(),
		pools:  make(map[astrie.Provider]*providerPool),
		rng:    rng,
	}

	filter := cfg.ProviderFilter
	if len(filter) == 0 {
		filter = astrie.CloudProviders
	}
	var weights []float64
	cloudShare := 0.0
	for _, p := range filter {
		profile := vw.Providers[p]
		if cfg.QminOverride != nil {
			profile.QminShare = *cfg.QminOverride
		}
		pool, err := buildProviderPool(reg, p, profile, cfg.ResolverScale, rng, g.ptrDB, deployment)
		if err != nil {
			return nil, err
		}
		g.pools[p] = pool
		g.provIdx = append(g.provIdx, p)
		weights = append(weights, profile.Share)
		cloudShare += profile.Share
	}
	// The long tail only participates in unfiltered runs.
	if len(cfg.ProviderFilter) == 0 {
		cloudResolvers := 0
		for _, p := range astrie.CloudProviders {
			cloudResolvers += vw.Providers[p].Resolvers
		}
		nOther := scaledCount(vw.Resolvers-cloudResolvers, cfg.ResolverScale/4, cfg.LongTailASes)
		lt, err := buildLongTailPool(reg, nOther, cfg.LongTailASes, cfg.Week, rng, deployment)
		if err != nil {
			return nil, err
		}
		g.longTail = lt
		g.provIdx = append(g.provIdx, astrie.ProviderOther)
		weights = append(weights, 1-cloudShare)
	}
	g.pickProv, err = stats.NewWeightedChoice(weights)
	if err != nil {
		return nil, err
	}
	g.zipf = stats.NewZipf(rng, 1.1, uint64(zone.Size()))
	g.nextPort = 1024
	return g, nil
}

// deploymentFor returns the vantage's anycast site set: B-Root's grows
// across the snapshots (§3's explanation for its resolver growth); the
// ccTLD authoritative services are anycast across roughly a dozen (.nl,
// §2.1.1) and several (.nz) global locations throughout.
func deploymentFor(v cloudmodel.Vantage, w cloudmodel.Week) *anycast.Deployment {
	if v == cloudmodel.VantageBRoot {
		return anycast.BRootDeployments[w.Year()]
	}
	if v == cloudmodel.VantageNL {
		return nlDeployment
	}
	return nzDeployment
}

var nlDeployment = mustDeployment([]anycast.Site{
	{Code: "ams", Lat: 52.31, Lon: 4.76},
	{Code: "lhr", Lat: 51.47, Lon: -0.45},
	{Code: "fra", Lat: 50.03, Lon: 8.56},
	{Code: "cdg", Lat: 49.01, Lon: 2.55},
	{Code: "iad", Lat: 38.94, Lon: -77.46},
	{Code: "ord", Lat: 41.97, Lon: -87.91},
	{Code: "sjc", Lat: 37.36, Lon: -121.93},
	{Code: "gru", Lat: -23.44, Lon: -46.47},
	{Code: "sin", Lat: 1.36, Lon: 103.99},
	{Code: "nrt", Lat: 35.76, Lon: 140.39},
	{Code: "syd", Lat: -33.95, Lon: 151.18},
	{Code: "jnb", Lat: -26.13, Lon: 28.23},
})

var nzDeployment = mustDeployment([]anycast.Site{
	{Code: "akl", Lat: -37.01, Lon: 174.79},
	{Code: "wlg", Lat: -41.33, Lon: 174.81},
	{Code: "syd", Lat: -33.95, Lon: 151.18},
	{Code: "lax", Lat: 33.94, Lon: -118.41},
	{Code: "lhr", Lat: 51.47, Lon: -0.45},
	{Code: "fra", Lat: 50.03, Lon: 8.56},
	{Code: "sin", Lat: 1.36, Lon: 103.99},
})

func mustDeployment(sites []anycast.Site) *anycast.Deployment {
	d, err := anycast.NewDeployment(sites)
	if err != nil {
		panic(err)
	}
	return d
}

// buildZone creates the vantage's zone at a scaled-down size that keeps
// the .nz second/third-level split (Table 2's zone sizes are virtual, so
// the full sizes would also work; scaled sizes keep Zipf sampling fast).
func buildZone(v cloudmodel.Vantage) (*zonedb.Zone, error) {
	switch v {
	case cloudmodel.VantageNL:
		return zonedb.NewCcTLD("nl", 590_000, 0, 0.55,
			[]string{"ns1.dns.nl", "ns3.dns.nl"})
	case cloudmodel.VantageNZ:
		// 140.5K second-level, 574.5K third-level scaled by 10.
		return zonedb.NewCcTLD("nz", 14_050, 57_450, 0.30,
			[]string{"ns1.dns.net.nz", "ns2.dns.net.nz"})
	case cloudmodel.VantageBRoot:
		return zonedb.NewRoot(zonedb.DefaultRootTLDs, []string{"b.root-servers.net"})
	}
	return nil, fmt.Errorf("workload: unknown vantage %q", v)
}

// Registry exposes the AS registry used (the analysis pipeline must use
// the same one).
func (g *Generator) Registry() *astrie.Registry { return g.reg }

// PTRDB exposes the PTR database for the Figure 5 reverse-DNS step.
func (g *Generator) PTRDB() *rdns.DB { return g.ptrDB }

// Zone exposes the zone served at the vantage.
func (g *Generator) Zone() *zonedb.Zone { return g.zone }

// newGroundTruth allocates the counters.
func newGroundTruth() *GroundTruth {
	return &GroundTruth{
		ByProvider:  make(map[astrie.Provider]uint64),
		JunkQueries: make(map[astrie.Provider]uint64),
		V6Queries:   make(map[astrie.Provider]uint64),
		TCPQueries:  make(map[astrie.Provider]uint64),
		Truncated:   make(map[astrie.Provider]uint64),
		ByType:      make(map[dnswire.Type]uint64),
		ResolverSet: make(map[netip.Addr]struct{}),
	}
}

// Run generates the trace into sink and returns the ground truth.
func (g *Generator) Run(sink PacketSink) (*GroundTruth, error) {
	gt := newGroundTruth()
	start := g.cfg.Start
	if start.IsZero() {
		start = WeekStart(g.cfg.Vantage, g.cfg.Week)
	}
	dur := Duration(g.cfg.Vantage)
	n := g.cfg.TotalQueries
	step := dur / time.Duration(n+1)
	amplitude := g.cfg.DiurnalAmplitude
	if amplitude == 0 {
		amplitude = 0.4
	}
	pattern := newDiurnal(dur, amplitude)

	anomalyEvery := 0
	if g.cfg.Anomaly {
		// The misconfiguration roughly doubled Google's A/AAAA volume:
		// interleave one anomaly query per regular event.
		anomalyEvery = 2
	}

	for i := 0; i < n; i++ {
		frac := pattern.warp((float64(i) + 0.5) / float64(n))
		ts := start.Add(time.Duration(frac*float64(dur)) + time.Duration(g.rng.Int63n(int64(step))))
		if anomalyEvery > 0 && i%anomalyEvery == 0 {
			if err := g.emitAnomalyQuery(sink, ts, gt); err != nil {
				return nil, err
			}
			continue
		}
		if err := g.emitEvent(sink, ts, gt); err != nil {
			return nil, err
		}
	}
	return gt, nil
}

// emitEvent generates one query event (which may expand to several packets
// for TCP or truncation retries).
func (g *Generator) emitEvent(sink PacketSink, ts time.Time, gt *GroundTruth) error {
	provider := g.provIdx[g.pickProv.Pick(g.rng)]
	server := g.rng.Intn(g.cfg.NumServers)

	var desc *resolverDesc
	var v6 bool
	var junkShare float64
	if provider == astrie.ProviderOther {
		desc = g.longTail.pick(g.rng)
		v6 = desc.addr6.IsValid()
		junkShare = g.vw.OtherJunkShare
	} else {
		pool := g.pools[provider]
		desc, v6 = pool.pick(g.rng, server)
		junkShare = pool.profile.JunkShare
	}
	if desc == nil {
		return fmt.Errorf("workload: empty pool for %s", provider)
	}

	junk := g.rng.Float64() < junkShare
	qname, qtype := g.pickQuery(desc, junk)

	// Transport: deliberate TCP per profile; Facebook site 0 never TCP.
	tcpShare := 0.0
	if provider != astrie.ProviderOther {
		tcpShare = g.pools[provider].profile.TCPShare
	}
	deliberateTCP := g.rng.Float64() < tcpShare
	if desc.site >= 0 && !FacebookSiteModel[desc.site].TCP {
		deliberateTCP = false
	}
	return g.emitExchange(sink, ts, desc, provider, v6, server, qname, qtype, junk, deliberateTCP, gt)
}

// emitAnomalyQuery injects the Feb-2020 .nz cyclic-dependency traffic:
// Google resolvers repeatedly asking A/AAAA for two misconfigured domains.
func (g *Generator) emitAnomalyQuery(sink PacketSink, ts time.Time, gt *GroundTruth) error {
	pool, ok := g.pools[astrie.ProviderGoogle]
	if !ok {
		return fmt.Errorf("workload: anomaly requires Google in the provider set")
	}
	server := g.rng.Intn(g.cfg.NumServers)
	desc, v6 := pool.pick(g.rng, server)
	broken := [2]string{"d77.nz.", "d78.nz."}
	qname := broken[g.rng.Intn(2)]
	qtype := dnswire.TypeA
	if g.rng.Intn(2) == 0 {
		qtype = dnswire.TypeAAAA
	}
	return g.emitExchange(sink, ts, desc, astrie.ProviderGoogle, v6, server, qname, qtype, false, false, gt)
}

// pickQuery chooses the query name and type for one event.
func (g *Generator) pickQuery(desc *resolverDesc, junk bool) (string, dnswire.Type) {
	if junk {
		if desc.qmin {
			// A minimizing resolver's first probe for a junk name is an
			// NS query for the minimized name, which already NXDOMAINs.
			return g.junkName(), dnswire.TypeNS
		}
		return g.junkName(), dnswire.TypeA
	}
	// Validation traffic first: DS / DNSKEY shares.
	var profile cloudmodel.Profile
	if desc.provider == astrie.ProviderOther {
		profile = cloudmodel.Profile{DSShare: 0.02, DNSKEYShare: 0.001}
	} else {
		profile = g.pools[desc.provider].profile
	}
	if desc.validate {
		x := g.rng.Float64()
		if x < profile.DSShare {
			return g.validDomain(), dnswire.TypeDS
		}
		if x < profile.DSShare+profile.DNSKEYShare {
			return g.zone.Origin, dnswire.TypeDNSKEY
		}
	}
	domain := g.validDomain()
	if desc.qmin {
		// Q-min resolvers expose only NS queries for the delegation.
		return domain, dnswire.TypeNS
	}
	// Classic resolvers leak the full name and original qtype.
	qname := domain
	if g.rng.Float64() < 0.6 {
		qname = "www." + domain
	}
	return qname, g.baseQtype()
}

// baseQtype draws from the pre-Qmin record mix (Figure 2's 2018 shape).
func (g *Generator) baseQtype() dnswire.Type {
	x := g.rng.Float64()
	switch {
	case x < 0.60:
		return dnswire.TypeA
	case x < 0.84:
		return dnswire.TypeAAAA
	case x < 0.89:
		return dnswire.TypeMX
	case x < 0.94:
		return dnswire.TypeTXT
	case x < 0.97:
		return dnswire.TypeNS
	case x < 0.985:
		return dnswire.TypeSOA
	default:
		return dnswire.TypeCNAME
	}
}

// validDomain draws a registered delegation by Zipf popularity.
func (g *Generator) validDomain() string {
	rank := int(g.zipf.Next())
	name, err := g.zone.DomainName(rank)
	if err != nil {
		name = g.zone.Origin
	}
	return name
}

// junkName fabricates a non-existing name: random labels under the ccTLD,
// or Chromium-style random TLD probes at the root (§3).
func (g *Generator) junkName() string {
	n := 7 + g.rng.Intn(9)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + g.rng.Intn(26))
	}
	if g.zone.IsRoot() {
		return string(b) + "."
	}
	return string(b) + "." + g.zone.Origin
}

// ephemeralPort hands out client ports, skipping the well-known range.
func (g *Generator) ephemeralPort() uint16 {
	g.nextPort++
	if g.nextPort < 1024 {
		g.nextPort = 1024
	}
	return g.nextPort
}

// emitExchange writes the packets of one resolver↔server exchange.
func (g *Generator) emitExchange(
	sink PacketSink,
	ts time.Time,
	desc *resolverDesc,
	provider astrie.Provider,
	v6 bool,
	server int,
	qname string,
	qtype dnswire.Type,
	junk, deliberateTCP bool,
	gt *GroundTruth,
) error {
	clientAddr := desc.addr4
	if v6 && desc.addr6.IsValid() {
		clientAddr = desc.addr6
	} else if !clientAddr.IsValid() {
		clientAddr = desc.addr6
	}
	v6 = clientAddr.Is6()
	serverAddr := ServerAddr(g.cfg.Vantage, server, v6)
	src := netip.AddrPortFrom(clientAddr, g.ephemeralPort())
	dst := netip.AddrPortFrom(serverAddr, 53)

	g.nextID++
	q := dnswire.NewQuery(g.nextID, qname, qtype)
	// The advertised EDNS size follows the provider's per-query mix
	// (Figure 6 is a query-weighted CDF, not a resolver-weighted one).
	if size := g.pickEDNSFor(provider); size > 0 {
		q.WithEdns(size, desc.validate)
	}
	resp := g.engine.Handle(q, clientAddr, deliberateTCP)
	if resp == nil {
		return fmt.Errorf("workload: engine dropped query")
	}

	count := func(tcp bool) {
		gt.Queries++
		if provider == astrie.ProviderOther {
			gt.OtherQueries++
			if junk {
				gt.OtherJunk++
			}
		} else {
			gt.ByProvider[provider]++
			if junk {
				gt.JunkQueries[provider]++
			}
			if v6 {
				gt.V6Queries[provider]++
			}
			if tcp {
				gt.TCPQueries[provider]++
			}
		}
		gt.ByType[qtype]++
		gt.ResolverSet[clientAddr] = struct{}{}
	}

	rtt := desc.rtt
	if desc.site >= 0 {
		s := FacebookSiteModel[desc.site]
		base := s.RTT4
		if v6 {
			base = s.RTT6
		}
		rtt = time.Duration(float64(base) * serverRTTFactor(desc.site, server, v6))
	}

	if deliberateTCP {
		count(true)
		return g.emitTCP(sink, ts, src, dst, q, resp, rtt)
	}

	// UDP exchange.
	count(false)
	qwire, err := q.Pack()
	if err != nil {
		return err
	}
	if err := g.writeUDP(sink, ts, src, dst, qwire); err != nil {
		return err
	}
	rwire, err := authserver.PackResponse(resp, q, false)
	if err != nil {
		return err
	}
	if err := g.writeUDP(sink, ts.Add(200*time.Microsecond), dst, src, rwire); err != nil {
		return err
	}
	parsedTC := resp.Header.Truncated
	if !parsedTC {
		// PackResponse may have set TC during truncation; check the wire.
		if m, err := dnswire.Unpack(rwire); err == nil {
			parsedTC = m.Header.Truncated
		}
	}
	if parsedTC {
		if provider != astrie.ProviderOther {
			gt.Truncated[provider]++
		}
		// Retry over TCP unless the site never speaks TCP (Facebook
		// location 1 — its truncated answers go unretried, §4.3).
		if desc.site >= 0 && !FacebookSiteModel[desc.site].TCP {
			return nil
		}
		count(true)
		retrySrc := netip.AddrPortFrom(clientAddr, g.ephemeralPort())
		return g.emitTCP(sink, ts.Add(rtt+time.Millisecond), retrySrc, dst, q, resp, rtt)
	}
	return nil
}

// writeUDP emits one UDP frame.
func (g *Generator) writeUDP(sink PacketSink, ts time.Time, src, dst netip.AddrPort, payload []byte) error {
	frame, err := layers.BuildUDP(src, dst, payload)
	if err != nil {
		return err
	}
	return sink.WritePacket(ts, frame)
}

// emitTCP writes a full TCP exchange: handshake (from which the analysis
// estimates RTT, §4.3), framed query and response, and teardown.
func (g *Generator) emitTCP(sink PacketSink, ts time.Time, src, dst netip.AddrPort, q, resp *dnswire.Message, rtt time.Duration) error {
	qwire, err := q.Pack()
	if err != nil {
		return err
	}
	rwire, err := authserver.PackResponse(resp, q, true)
	if err != nil {
		return err
	}
	iss, irs := g.rng.Uint32(), g.rng.Uint32()
	proc := 200 * time.Microsecond

	type pkt struct {
		at   time.Time
		from netip.AddrPort
		to   netip.AddrPort
		meta layers.TCPMeta
		data []byte
	}
	frameQ := append(lenPrefix(len(qwire)), qwire...)
	frameR := append(lenPrefix(len(rwire)), rwire...)
	seq := []pkt{
		// SYN arrives at the capture point at ts.
		{ts, src, dst, layers.TCPMeta{Seq: iss, Flags: layers.TCPFlagSYN}, nil},
		// Server replies immediately; the client's ACK lands one RTT later:
		// t(ACK) − t(SYN-ACK) is the §4.3 RTT estimator.
		{ts.Add(proc), dst, src, layers.TCPMeta{Seq: irs, Ack: iss + 1, Flags: layers.TCPFlagSYN | layers.TCPFlagACK}, nil},
		{ts.Add(proc + rtt), src, dst, layers.TCPMeta{Seq: iss + 1, Ack: irs + 1, Flags: layers.TCPFlagACK}, nil},
		{ts.Add(proc + rtt + 50*time.Microsecond), src, dst, layers.TCPMeta{Seq: iss + 1, Ack: irs + 1, Flags: layers.TCPFlagPSH | layers.TCPFlagACK}, frameQ},
		{ts.Add(proc + rtt + 250*time.Microsecond), dst, src, layers.TCPMeta{Seq: irs + 1, Ack: iss + 1 + uint32(len(frameQ)), Flags: layers.TCPFlagPSH | layers.TCPFlagACK}, frameR},
		{ts.Add(proc + 2*rtt + 300*time.Microsecond), src, dst, layers.TCPMeta{Seq: iss + 1 + uint32(len(frameQ)), Ack: irs + 1 + uint32(len(frameR)), Flags: layers.TCPFlagFIN | layers.TCPFlagACK}, nil},
		{ts.Add(proc + 2*rtt + 500*time.Microsecond), dst, src, layers.TCPMeta{Seq: irs + 1 + uint32(len(frameR)), Ack: iss + 2 + uint32(len(frameQ)), Flags: layers.TCPFlagFIN | layers.TCPFlagACK}, nil},
	}
	for _, p := range seq {
		frame, err := layers.BuildTCP(p.from, p.to, p.meta, p.data)
		if err != nil {
			return err
		}
		if err := sink.WritePacket(p.at, frame); err != nil {
			return err
		}
	}
	return nil
}

// pickEDNSFor draws an advertised EDNS size from the provider's mix.
func (g *Generator) pickEDNSFor(p astrie.Provider) uint16 {
	if p == astrie.ProviderOther {
		return pickEDNS(longTailEDNSMix, g.rng)
	}
	return pickEDNS(g.pools[p].profile.EDNSSizes, g.rng)
}

// lenPrefix builds the RFC 1035 §4.2.2 two-byte length prefix.
func lenPrefix(n int) []byte {
	return []byte{byte(n >> 8), byte(n)}
}
