package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDiurnalCDFEndpoints(t *testing.T) {
	d := newDiurnal(7*24*time.Hour, 0.4)
	if got := d.cdf(0); math.Abs(got) > 1e-9 {
		t.Errorf("cdf(0) = %v", got)
	}
	if got := d.cdf(1); math.Abs(got-1) > 1e-9 {
		t.Errorf("cdf(1) = %v", got)
	}
}

func TestDiurnalWarpInvertsCDF(t *testing.T) {
	d := newDiurnal(24*time.Hour, 0.6)
	for u := 0.0; u <= 1.0; u += 0.01 {
		x := d.warp(u)
		if x < 0 || x > 1 {
			t.Fatalf("warp(%v) = %v out of range", u, x)
		}
		if got := d.cdf(x); math.Abs(got-u) > 1e-6 {
			t.Errorf("cdf(warp(%v)) = %v", u, got)
		}
	}
}

func TestDiurnalZeroAmplitudeIsIdentity(t *testing.T) {
	d := newDiurnal(24*time.Hour, 0)
	for _, u := range []float64{0, 0.25, 0.5, 0.99} {
		if d.warp(u) != u {
			t.Errorf("warp(%v) = %v", u, d.warp(u))
		}
	}
}

func TestDiurnalClampsAmplitude(t *testing.T) {
	d := newDiurnal(24*time.Hour, 5)
	if d.amplitude > 0.95 {
		t.Errorf("amplitude = %v", d.amplitude)
	}
	d = newDiurnal(24*time.Hour, -3)
	if d.amplitude != 0 {
		t.Errorf("amplitude = %v", d.amplitude)
	}
}

func TestPropertyDiurnalWarpMonotone(t *testing.T) {
	d := newDiurnal(7*24*time.Hour, 0.5)
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 1))
		b = math.Abs(math.Mod(b, 1))
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return d.warp(a) <= d.warp(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
