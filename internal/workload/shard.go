package workload

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// BatchSink is the optional fast path of PacketSink: the merger pre-encodes
// records into a contiguous batch with AppendRecord and hands the batch
// over in one WriteBatch call. pcapio.Writer satisfies it; sinks that do
// not (e.g. pcapng writers, test sinks) fall back to per-packet
// WritePacket with identical output.
type BatchSink interface {
	PacketSink
	AppendRecord(dst []byte, ts time.Time, data []byte) []byte
	WriteBatch(batch []byte) error
}

// mergeBatchSize is the flush threshold of the batched emit path.
const mergeBatchSize = 256 << 10

// floorNano returns a lower bound on the UnixNano timestamp of every
// packet of every event at index ≥ first: the jitter-free base timestamp
// of event first, minus a millisecond of slack for the Newton-iteration
// float noise in the diurnal warp. The merger may safely emit anything
// strictly below this bound before opening the block that starts at first.
func (tl timeline) floorNano(first int) int64 {
	return tl.start.Add(tl.base(first)).UnixNano() - int64(time.Millisecond)
}

// cursor walks one open block during the merge.
type cursor struct {
	blk *block
	pos int
}

func (c cursor) head() pktRef { return c.blk.pkts[c.pos] }

// merger interleaves the packets of consecutive blocks into global
// timestamp order. Blocks arrive in index order; a k-way heap of open
// blocks drains up to the floor of the next block, so TCP exchanges that
// span block boundaries land in their true chronological position. The
// result is identical however many shards produced the blocks.
type merger struct {
	sink  PacketSink
	bs    BatchSink
	batch []byte
	heap  []cursor
}

func newMerger(sink PacketSink) *merger {
	m := &merger{sink: sink}
	if bs, ok := sink.(BatchSink); ok {
		m.bs = bs
		m.batch = make([]byte, 0, mergeBatchSize+4096)
	}
	return m
}

func (m *merger) less(i, j int) bool { return m.heap[i].head().less(m.heap[j].head()) }

func (m *merger) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !m.less(i, parent) {
			return
		}
		m.heap[i], m.heap[parent] = m.heap[parent], m.heap[i]
		i = parent
	}
}

func (m *merger) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(m.heap) && m.less(l, min) {
			min = l
		}
		if r < len(m.heap) && m.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		m.heap[i], m.heap[min] = m.heap[min], m.heap[i]
		i = min
	}
}

// push opens a block for merging.
func (m *merger) push(blk *block) {
	if len(blk.pkts) == 0 {
		releaseBlock(blk)
		return
	}
	m.heap = append(m.heap, cursor{blk: blk})
	m.siftUp(len(m.heap) - 1)
}

// emit writes one packet through the batched or plain path.
func (m *merger) emit(p pktRef, arena []byte) error {
	data := arena[p.off : p.off+p.n]
	ts := time.Unix(0, p.ts).UTC()
	if m.bs != nil {
		m.batch = m.bs.AppendRecord(m.batch, ts, data)
		if len(m.batch) >= mergeBatchSize {
			err := m.bs.WriteBatch(m.batch)
			m.batch = m.batch[:0]
			return err
		}
		return nil
	}
	return m.sink.WritePacket(ts, data)
}

// drainBelow emits every queued packet with timestamp < floor.
func (m *merger) drainBelow(floor int64) error {
	for len(m.heap) > 0 {
		c := &m.heap[0]
		p := c.head()
		if p.ts >= floor {
			return nil
		}
		if err := m.emit(p, c.blk.arena); err != nil {
			return err
		}
		c.pos++
		if c.pos == len(c.blk.pkts) {
			releaseBlock(c.blk)
			last := len(m.heap) - 1
			m.heap[0] = m.heap[last]
			m.heap = m.heap[:last]
		}
		m.siftDown(0)
	}
	return nil
}

// finish drains everything still queued and flushes the batch.
func (m *merger) finish() error {
	if err := m.drainBelow(math.MaxInt64); err != nil {
		return err
	}
	if m.bs != nil && len(m.batch) > 0 {
		err := m.bs.WriteBatch(m.batch)
		m.batch = m.batch[:0]
		return err
	}
	return nil
}

// abort recycles whatever is still open after an error.
func (m *merger) abort() {
	for _, c := range m.heap {
		releaseBlock(c.blk)
	}
	m.heap = nil
}

// numBlocks returns how many blocks cover n events.
func numBlocks(n int) int { return (n + blockEvents - 1) / blockEvents }

// Run generates the trace into sink and returns the ground truth. With
// cfg.Workers > 1 the event-index space is sharded across goroutines;
// the merged output — and the ground truth — is byte-for-byte identical
// for any worker count under the same Config.
func (g *Generator) Run(sink PacketSink) (*GroundTruth, error) {
	workers := g.cfg.Workers
	if nb := numBlocks(g.cfg.TotalQueries); workers > nb {
		workers = nb
	}
	if workers <= 1 {
		return g.runSingle(sink)
	}
	return g.runSharded(sink, workers)
}

// runSingle is the in-line path: one emitter, blocks generated and merged
// on the calling goroutine.
func (g *Generator) runSingle(sink PacketSink) (*GroundTruth, error) {
	em := g.newEmitter()
	m := newMerger(sink)
	tl := em.tl
	nb := numBlocks(g.cfg.TotalQueries)
	for b := 0; b < nb; b++ {
		blk, err := em.genBlock(b * blockEvents)
		if err != nil {
			m.abort()
			return nil, err
		}
		m.push(blk)
		if b+1 < nb {
			if err := m.drainBelow(tl.floorNano((b + 1) * blockEvents)); err != nil {
				m.abort()
				return nil, err
			}
		}
	}
	if err := m.finish(); err != nil {
		m.abort()
		return nil, err
	}
	return em.gt, nil
}

// runSharded fans blocks out to workers goroutines. Worker w generates
// blocks w, w+W, w+2W, … so block contents never depend on W; the merger
// collects block b from channel b mod W, restoring global index order.
func (g *Generator) runSharded(sink PacketSink, workers int) (*GroundTruth, error) {
	nb := numBlocks(g.cfg.TotalQueries)
	chans := make([]chan *block, workers)
	for i := range chans {
		chans[i] = make(chan *block, 2)
	}
	quit := make(chan struct{})
	errs := make([]error, workers)
	gts := make([]*GroundTruth, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer close(chans[w])
			em := g.newEmitter()
			gts[w] = em.gt
			for b := w; b < nb; b += workers {
				blk, err := em.genBlock(b * blockEvents)
				if err != nil {
					errs[w] = err
					return
				}
				select {
				case chans[w] <- blk:
				case <-quit:
					releaseBlock(blk)
					return
				}
			}
		}(w)
	}

	fail := func(m *merger) {
		close(quit)
		// Unblock producers stuck on a send, then recycle their blocks.
		for _, ch := range chans {
			for blk := range ch {
				releaseBlock(blk)
			}
		}
		wg.Wait()
		m.abort()
	}

	m := newMerger(sink)
	tl := g.timeline()
	for b := 0; b < nb; b++ {
		blk, ok := <-chans[b%workers]
		if !ok {
			fail(m)
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
			return nil, fmt.Errorf("workload: shard %d stopped early", b%workers)
		}
		m.push(blk)
		if b+1 < nb {
			if err := m.drainBelow(tl.floorNano((b + 1) * blockEvents)); err != nil {
				fail(m)
				return nil, err
			}
		}
	}
	wg.Wait()
	if err := m.finish(); err != nil {
		m.abort()
		return nil, err
	}
	gt := gts[0]
	for _, other := range gts[1:] {
		gt.Merge(other)
	}
	return gt, nil
}
