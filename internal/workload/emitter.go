package workload

import (
	"fmt"
	"math/rand"
	"net/netip"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/authserver"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/layers"
	"dnscentral/internal/stats"
)

// blockEvents is the number of query events one block covers. Blocks are
// the unit of work handed from shards to the merger; the constant is
// independent of the worker count so block contents are too.
const blockEvents = 512

// pktRef locates one generated frame in a block's arena and carries the
// key of the global timestamp merge: (timestamp, event index, packet
// sequence within the event).
type pktRef struct {
	ts    int64 // UnixNano
	event int64
	off   int32
	n     int32
	seq   int16
}

// less orders packets by timestamp, breaking ties by event index and then
// by emission sequence so the merged order is total and deterministic.
func (p pktRef) less(q pktRef) bool {
	if p.ts != q.ts {
		return p.ts < q.ts
	}
	if p.event != q.event {
		return p.event < q.event
	}
	return p.seq < q.seq
}

// block is one shard's output for a contiguous event-index range: frames
// appended back to back in an arena, indexed and sorted by pktRef.
type block struct {
	first int // first event index of the range
	pkts  []pktRef
	arena []byte
}

// poolGets and poolMisses track the block pool's recycling hit rate for
// telemetry: a miss is a Get the pool had to satisfy with a fresh block
// (whose arena then grows from nil). Bumped once per 512-event block.
var poolGets, poolMisses atomic.Uint64

var blockPool = sync.Pool{New: func() any { poolMisses.Add(1); return new(block) }}

func newBlock(first int) *block {
	poolGets.Add(1)
	b := blockPool.Get().(*block)
	b.first = first
	b.pkts = b.pkts[:0]
	b.arena = b.arena[:0]
	return b
}

func releaseBlock(b *block) { blockPool.Put(b) }

// timeline captures the shared deterministic time mapping of one trace.
type timeline struct {
	start   time.Time
	dur     time.Duration
	step    time.Duration
	pattern diurnal
	n       int
}

func (g *Generator) timeline() timeline {
	start := g.cfg.Start
	if start.IsZero() {
		start = WeekStart(g.cfg.Vantage, g.cfg.Week)
	}
	dur := Duration(g.cfg.Vantage)
	n := g.cfg.TotalQueries
	step := dur / time.Duration(n+1)
	if step <= 0 {
		step = 1
	}
	amplitude := g.cfg.DiurnalAmplitude
	if amplitude == 0 {
		amplitude = 0.4
	}
	return timeline{
		start:   start,
		dur:     dur,
		step:    step,
		pattern: newDiurnal(dur, amplitude),
		n:       n,
	}
}

// base returns the jitter-free timestamp floor of an event: every packet
// the event emits is at or after this instant (jitter and exchange offsets
// only add time), which is what lets the merger bound its lookahead.
func (tl timeline) base(event int) time.Duration {
	frac := tl.pattern.warp((float64(event) + 0.5) / float64(tl.n))
	return time.Duration(frac * float64(tl.dur))
}

// respCacheMax bounds the per-emitter response cache; once full, new keys
// pack through scratch buffers instead. The Zipf query mix means the hot
// keys enter the cache almost immediately.
const respCacheMax = 4096

// respKey identifies everything the packed query and response bytes depend
// on, except the message ID (patched per use): question, advertised EDNS
// size (0 = no OPT), and the DO bit.
type respKey struct {
	qname string
	qtype dnswire.Type
	size  uint16
	do    bool
}

// respEntry caches the packed wire forms of one exchange. Flavors fill in
// lazily: rUDP is truncated to the advertised size, rTCP is the full
// message with the two-byte ID patched before every use.
type respEntry struct {
	qwire []byte
	rUDP  []byte
	rTCP  []byte
	tcUDP bool // TC bit of rUDP
}

// patchID overwrites the message ID of a packed DNS message in place.
func patchID(wire []byte, id uint16) {
	wire[0], wire[1] = byte(id>>8), byte(id)
}

// emitter generates whole blocks of events for one shard. All per-event
// randomness comes from the event's own SplitMix64 stream, the engine and
// scratch buffers are shard-local, and frames go into the current block's
// arena — steady-state generation does not allocate per packet.
type emitter struct {
	g            *Generator
	src          splitSource
	rng          *rand.Rand
	zipf         *stats.Zipf
	engine       *authserver.Engine
	gt           *GroundTruth
	tl           timeline
	anomalyEvery int

	blk     *block
	seq     int16
	q       dnswire.Message
	edns    dnswire.EDNS
	cache   map[respKey]*respEntry
	msgBuf  []byte // packed query scratch (uncached path)
	rspBuf  []byte // packed response scratch (uncached path)
	qBuf    []byte // length-prefixed TCP query payload
	rBuf    []byte // length-prefixed TCP response payload
	nameBuf []byte // junk-name scratch
}

func (g *Generator) newEmitter() *emitter {
	em := &emitter{
		g:      g,
		gt:     newGroundTruth(),
		tl:     g.timeline(),
		engine: authserver.NewEngine(g.zone),
		cache:  make(map[respKey]*respEntry),
	}
	if g.cfg.Anomaly {
		// The misconfiguration roughly doubled Google's A/AAAA volume:
		// interleave one anomaly query per regular event.
		em.anomalyEvery = 2
	}
	em.rng = rand.New(&em.src)
	em.zipf = stats.NewZipf(em.rng, 1.1, uint64(g.zone.Size()))
	return em
}

// genBlock generates the block starting at event index first. The returned
// block's bytes depend only on (Config, first): any shard produces the
// identical block.
func (em *emitter) genBlock(first int) (*block, error) {
	blk := newBlock(first)
	em.blk = blk
	end := first + blockEvents
	if end > em.tl.n {
		end = em.tl.n
	}
	for i := first; i < end; i++ {
		if err := em.emitEvent(i); err != nil {
			em.blk = nil
			releaseBlock(blk)
			return nil, err
		}
	}
	em.blk = nil
	em.g.tmEvents.Add(uint64(end - first))
	em.g.tmPackets.Add(uint64(len(blk.pkts)))
	slices.SortFunc(blk.pkts, func(a, b pktRef) int {
		if a.less(b) {
			return -1
		}
		if b.less(a) {
			return 1
		}
		return 0
	})
	return blk, nil
}

// emitEvent generates one query event (which may expand to several packets
// for TCP or truncation retries).
func (em *emitter) emitEvent(i int) error {
	em.src.state = eventSeed(em.g.cfg.Seed, uint64(i))
	em.seq = 0
	ts := em.tl.start.Add(em.tl.base(i) + time.Duration(em.rng.Int63n(int64(em.tl.step))))
	if em.anomalyEvery > 0 && i%em.anomalyEvery == 0 {
		return em.emitAnomalyQuery(i, ts)
	}
	g := em.g
	provider := g.provIdx[g.pickProv.Pick(em.rng)]
	server := em.rng.Intn(g.cfg.NumServers)

	var desc *resolverDesc
	var v6 bool
	var junkShare float64
	if provider == astrie.ProviderOther {
		desc = g.longTail.pick(em.rng)
		v6 = desc.addr6.IsValid()
		junkShare = g.vw.OtherJunkShare
	} else {
		pool := g.pools[provider]
		desc, v6 = pool.pick(em.rng, server)
		junkShare = pool.profile.JunkShare
	}
	if desc == nil {
		return fmt.Errorf("workload: empty pool for %s", provider)
	}

	junk := em.rng.Float64() < junkShare
	qname, qtype := em.pickQuery(desc, junk)

	// Transport: deliberate TCP per profile; Facebook site 0 never TCP.
	tcpShare := 0.0
	if provider != astrie.ProviderOther {
		tcpShare = g.pools[provider].profile.TCPShare
	}
	deliberateTCP := em.rng.Float64() < tcpShare
	if desc.site >= 0 && !FacebookSiteModel[desc.site].TCP {
		deliberateTCP = false
	}
	return em.emitExchange(i, ts, desc, provider, v6, server, qname, qtype, junk, deliberateTCP)
}

// emitAnomalyQuery injects the Feb-2020 .nz cyclic-dependency traffic:
// Google resolvers repeatedly asking A/AAAA for two misconfigured domains.
func (em *emitter) emitAnomalyQuery(i int, ts time.Time) error {
	pool, ok := em.g.pools[astrie.ProviderGoogle]
	if !ok {
		return fmt.Errorf("workload: anomaly requires Google in the provider set")
	}
	server := em.rng.Intn(em.g.cfg.NumServers)
	desc, v6 := pool.pick(em.rng, server)
	broken := [2]string{"d77.nz.", "d78.nz."}
	qname := broken[em.rng.Intn(2)]
	qtype := dnswire.TypeA
	if em.rng.Intn(2) == 0 {
		qtype = dnswire.TypeAAAA
	}
	return em.emitExchange(i, ts, desc, astrie.ProviderGoogle, v6, server, qname, qtype, false, false)
}

// pickQuery chooses the query name and type for one event.
func (em *emitter) pickQuery(desc *resolverDesc, junk bool) (string, dnswire.Type) {
	if junk {
		if desc.qmin {
			// A minimizing resolver's first probe for a junk name is an
			// NS query for the minimized name, which already NXDOMAINs.
			return em.junkName(), dnswire.TypeNS
		}
		return em.junkName(), dnswire.TypeA
	}
	// Validation traffic first: DS / DNSKEY shares.
	var profile cloudmodel.Profile
	if desc.provider == astrie.ProviderOther {
		profile = cloudmodel.Profile{DSShare: 0.02, DNSKEYShare: 0.001}
	} else {
		profile = em.g.pools[desc.provider].profile
	}
	if desc.validate {
		x := em.rng.Float64()
		if x < profile.DSShare {
			return em.validDomain(), dnswire.TypeDS
		}
		if x < profile.DSShare+profile.DNSKEYShare {
			return em.g.zone.Origin, dnswire.TypeDNSKEY
		}
	}
	domain := em.validDomain()
	if desc.qmin {
		// Q-min resolvers expose only NS queries for the delegation.
		return domain, dnswire.TypeNS
	}
	// Classic resolvers leak the full name and original qtype.
	qname := domain
	if em.rng.Float64() < 0.6 {
		qname = "www." + domain
	}
	return qname, em.baseQtype()
}

// baseQtype draws from the pre-Qmin record mix (Figure 2's 2018 shape).
func (em *emitter) baseQtype() dnswire.Type {
	x := em.rng.Float64()
	switch {
	case x < 0.60:
		return dnswire.TypeA
	case x < 0.84:
		return dnswire.TypeAAAA
	case x < 0.89:
		return dnswire.TypeMX
	case x < 0.94:
		return dnswire.TypeTXT
	case x < 0.97:
		return dnswire.TypeNS
	case x < 0.985:
		return dnswire.TypeSOA
	default:
		return dnswire.TypeCNAME
	}
}

// validDomain draws a registered delegation by Zipf popularity.
func (em *emitter) validDomain() string {
	rank := int(em.zipf.Next())
	name, err := em.g.zone.DomainName(rank)
	if err != nil {
		name = em.g.zone.Origin
	}
	return name
}

// junkName fabricates a non-existing name: random labels under the ccTLD,
// or Chromium-style random TLD probes at the root (§3). The bytes build in
// a reused scratch buffer; only the final string conversion allocates.
func (em *emitter) junkName() string {
	n := 7 + em.rng.Intn(9)
	b := em.nameBuf[:0]
	for i := 0; i < n; i++ {
		b = append(b, byte('a'+em.rng.Intn(26)))
	}
	b = append(b, '.')
	if !em.g.zone.IsRoot() {
		b = append(b, em.g.zone.Origin...)
	}
	em.nameBuf = b
	return string(b)
}

// ephemeralPort draws a client port above the well-known range.
func (em *emitter) ephemeralPort() uint16 {
	return uint16(1024 + em.rng.Intn(65536-1024))
}

// writeFrame indexes the newly appended frame [off, len(arena)) of event i.
func (em *emitter) writeFrame(i int, ts time.Time, off int) {
	em.blk.pkts = append(em.blk.pkts, pktRef{
		ts:    ts.UnixNano(),
		event: int64(i),
		off:   int32(off),
		n:     int32(len(em.blk.arena) - off),
		seq:   em.seq,
	})
	em.seq++
}

// writeUDP appends one UDP frame to the block arena.
func (em *emitter) writeUDP(i int, ts time.Time, src, dst netip.AddrPort, payload []byte) error {
	off := len(em.blk.arena)
	arena, err := layers.AppendUDP(em.blk.arena, src, dst, payload)
	if err != nil {
		return err
	}
	em.blk.arena = arena
	em.writeFrame(i, ts, off)
	return nil
}

// writeTCP appends one TCP frame to the block arena.
func (em *emitter) writeTCP(i int, ts time.Time, src, dst netip.AddrPort, meta layers.TCPMeta, payload []byte) error {
	off := len(em.blk.arena)
	arena, err := layers.AppendTCP(em.blk.arena, src, dst, meta, payload)
	if err != nil {
		return err
	}
	em.blk.arena = arena
	em.writeFrame(i, ts, off)
	return nil
}

// wireTC reports the TC bit of a packed DNS message.
func wireTC(wire []byte) bool {
	return len(wire) > 2 && wire[2]&0x02 != 0
}

// emitExchange writes the packets of one resolver↔server exchange.
func (em *emitter) emitExchange(
	i int,
	ts time.Time,
	desc *resolverDesc,
	provider astrie.Provider,
	v6 bool,
	server int,
	qname string,
	qtype dnswire.Type,
	junk, deliberateTCP bool,
) error {
	g, gt := em.g, em.gt
	clientAddr := desc.addr4
	if v6 && desc.addr6.IsValid() {
		clientAddr = desc.addr6
	} else if !clientAddr.IsValid() {
		clientAddr = desc.addr6
	}
	v6 = clientAddr.Is6()
	serverAddr := ServerAddr(g.cfg.Vantage, server, v6)
	src := netip.AddrPortFrom(clientAddr, em.ephemeralPort())
	dst := netip.AddrPortFrom(serverAddr, 53)

	id := uint16(em.rng.Uint32())
	// The advertised EDNS size follows the provider's per-query mix
	// (Figure 6 is a query-weighted CDF, not a resolver-weighted one).
	size := em.pickEDNSFor(provider)
	key := respKey{
		qname: dnswire.CanonicalName(qname), qtype: qtype,
		size: size, do: size > 0 && desc.validate,
	}

	// handle rebuilds the query in the reusable shard-local message and
	// runs it through the engine (the engine's Reply copies what it needs,
	// so reuse across events is safe). Only cache misses pay this cost.
	handle := func() (*dnswire.Message, *dnswire.Message) {
		em.q.Header = dnswire.Header{
			ID:               id,
			Opcode:           dnswire.OpcodeQuery,
			RecursionDesired: true,
		}
		em.q.Questions = append(em.q.Questions[:0], dnswire.Question{
			Name: key.qname, Type: qtype, Class: dnswire.ClassIN,
		})
		em.q.Answers, em.q.Authority, em.q.Additional = nil, nil, nil
		em.q.Edns = nil
		if size > 0 {
			em.edns = dnswire.EDNS{UDPSize: size, DO: key.do}
			em.q.Edns = &em.edns
		}
		return &em.q, em.engine.Handle(&em.q, clientAddr, deliberateTCP)
	}

	// Junk names are (almost surely) unique, so caching them would only
	// evict hot entries. The response bytes depend on nothing outside key
	// and the ID (no RRL, no cookies in generated queries), so a cached
	// wire with a patched ID is byte-identical to a fresh pack.
	var ent *respEntry
	if !junk {
		ent = em.cache[key]
	}
	ensure := func() *respEntry {
		if ent == nil && !junk && len(em.cache) < respCacheMax {
			ent = &respEntry{}
			em.cache[key] = ent
		}
		return ent
	}

	count := func(tcp bool) {
		gt.Queries++
		if provider == astrie.ProviderOther {
			gt.OtherQueries++
			if junk {
				gt.OtherJunk++
			}
		} else {
			gt.ByProvider[provider]++
			if junk {
				gt.JunkQueries[provider]++
			}
			if v6 {
				gt.V6Queries[provider]++
			}
			if tcp {
				gt.TCPQueries[provider]++
			}
		}
		gt.ByType[qtype]++
		gt.ResolverSet[clientAddr] = struct{}{}
	}

	rtt := desc.rtt
	if desc.site >= 0 {
		s := FacebookSiteModel[desc.site]
		base := s.RTT4
		if v6 {
			base = s.RTT6
		}
		rtt = time.Duration(float64(base) * serverRTTFactor(desc.site, server, v6))
	}

	if deliberateTCP {
		count(true)
		qw, rw, err := em.wiresTCP(ent, ensure, handle)
		if err != nil {
			return err
		}
		patchID(qw, id)
		patchID(rw, id)
		return em.emitTCP(i, ts, src, dst, qw, rw, rtt)
	}

	// UDP exchange.
	count(false)
	var qw, rw []byte
	var err error
	if ent != nil && ent.rUDP != nil {
		qw, rw = ent.qwire, ent.rUDP
	} else {
		q, resp := handle()
		if resp == nil {
			return fmt.Errorf("workload: engine dropped query")
		}
		if e := ensure(); e != nil {
			if e.qwire, err = q.AppendPack(nil); err != nil {
				return err
			}
			if e.rUDP, err = authserver.AppendResponse(nil, resp, q, false); err != nil {
				return err
			}
			e.tcUDP = wireTC(e.rUDP)
			qw, rw = e.qwire, e.rUDP
		} else {
			if em.msgBuf, err = q.AppendPack(em.msgBuf[:0]); err != nil {
				return err
			}
			if em.rspBuf, err = authserver.AppendResponse(em.rspBuf[:0], resp, q, false); err != nil {
				return err
			}
			qw, rw = em.msgBuf, em.rspBuf
		}
	}
	patchID(qw, id)
	patchID(rw, id)
	if err := em.writeUDP(i, ts, src, dst, qw); err != nil {
		return err
	}
	if err := em.writeUDP(i, ts.Add(200*time.Microsecond), dst, src, rw); err != nil {
		return err
	}
	// Truncation shows up in the packed wire bits (the message struct is
	// never mutated): check TC there rather than re-parsing.
	if wireTC(rw) {
		if provider != astrie.ProviderOther {
			gt.Truncated[provider]++
		}
		// Retry over TCP unless the site never speaks TCP (Facebook
		// location 1 — its truncated answers go unretried, §4.3).
		if desc.site >= 0 && !FacebookSiteModel[desc.site].TCP {
			return nil
		}
		count(true)
		retrySrc := netip.AddrPortFrom(clientAddr, em.ephemeralPort())
		qwT, rwT, err := em.wiresTCP(ent, ensure, handle)
		if err != nil {
			return err
		}
		patchID(qwT, id)
		patchID(rwT, id)
		return em.emitTCP(i, ts.Add(rtt+time.Millisecond), retrySrc, dst, qwT, rwT, rtt)
	}
	return nil
}

// wiresTCP returns the packed query and full (TCP-flavor) response for the
// current event, from the cache when both are present, packing — and
// caching — them otherwise.
func (em *emitter) wiresTCP(
	ent *respEntry,
	ensure func() *respEntry,
	handle func() (*dnswire.Message, *dnswire.Message),
) (qw, rw []byte, err error) {
	if ent != nil && ent.qwire != nil && ent.rTCP != nil {
		return ent.qwire, ent.rTCP, nil
	}
	q, resp := handle()
	if resp == nil {
		return nil, nil, fmt.Errorf("workload: engine dropped query")
	}
	if e := ensure(); e != nil {
		if e.qwire == nil {
			if e.qwire, err = q.AppendPack(nil); err != nil {
				return nil, nil, err
			}
		}
		if e.rTCP, err = authserver.AppendResponse(nil, resp, q, true); err != nil {
			return nil, nil, err
		}
		return e.qwire, e.rTCP, nil
	}
	if em.msgBuf, err = q.AppendPack(em.msgBuf[:0]); err != nil {
		return nil, nil, err
	}
	if em.rspBuf, err = authserver.AppendResponse(em.rspBuf[:0], resp, q, true); err != nil {
		return nil, nil, err
	}
	return em.msgBuf, em.rspBuf, nil
}

// emitTCP writes a full TCP exchange: handshake (from which the analysis
// estimates RTT, §4.3), framed query and response, and teardown. qw and rw
// are the already-packed DNS messages; the RFC 1035 §4.2.2 two-byte length
// prefix is built directly into the shard's reusable payload buffers.
func (em *emitter) emitTCP(i int, ts time.Time, src, dst netip.AddrPort, qw, rw []byte, rtt time.Duration) error {
	em.qBuf = appendLenPrefixed(em.qBuf[:0], qw)
	em.rBuf = appendLenPrefixed(em.rBuf[:0], rw)
	frameQ, frameR := em.qBuf, em.rBuf

	iss, irs := em.rng.Uint32(), em.rng.Uint32()
	proc := 200 * time.Microsecond

	type pkt struct {
		at   time.Time
		from netip.AddrPort
		to   netip.AddrPort
		meta layers.TCPMeta
		data []byte
	}
	seq := [...]pkt{
		// SYN arrives at the capture point at ts.
		{ts, src, dst, layers.TCPMeta{Seq: iss, Flags: layers.TCPFlagSYN}, nil},
		// Server replies immediately; the client's ACK lands one RTT later:
		// t(ACK) − t(SYN-ACK) is the §4.3 RTT estimator.
		{ts.Add(proc), dst, src, layers.TCPMeta{Seq: irs, Ack: iss + 1, Flags: layers.TCPFlagSYN | layers.TCPFlagACK}, nil},
		{ts.Add(proc + rtt), src, dst, layers.TCPMeta{Seq: iss + 1, Ack: irs + 1, Flags: layers.TCPFlagACK}, nil},
		{ts.Add(proc + rtt + 50*time.Microsecond), src, dst, layers.TCPMeta{Seq: iss + 1, Ack: irs + 1, Flags: layers.TCPFlagPSH | layers.TCPFlagACK}, frameQ},
		{ts.Add(proc + rtt + 250*time.Microsecond), dst, src, layers.TCPMeta{Seq: irs + 1, Ack: iss + 1 + uint32(len(frameQ)), Flags: layers.TCPFlagPSH | layers.TCPFlagACK}, frameR},
		{ts.Add(proc + 2*rtt + 300*time.Microsecond), src, dst, layers.TCPMeta{Seq: iss + 1 + uint32(len(frameQ)), Ack: irs + 1 + uint32(len(frameR)), Flags: layers.TCPFlagFIN | layers.TCPFlagACK}, nil},
		{ts.Add(proc + 2*rtt + 500*time.Microsecond), dst, src, layers.TCPMeta{Seq: irs + 1 + uint32(len(frameR)), Ack: iss + 2 + uint32(len(frameQ)), Flags: layers.TCPFlagFIN | layers.TCPFlagACK}, nil},
	}
	for _, p := range seq {
		if err := em.writeTCP(i, p.at, p.from, p.to, p.meta, p.data); err != nil {
			return err
		}
	}
	return nil
}

// appendLenPrefixed appends the two-byte big-endian length of msg and then
// msg itself — the RFC 1035 §4.2.2 TCP framing — without the intermediate
// allocation the old lenPrefix helper required.
func appendLenPrefixed(dst, msg []byte) []byte {
	dst = append(dst, byte(len(msg)>>8), byte(len(msg)))
	return append(dst, msg...)
}

// pickEDNSFor draws an advertised EDNS size from the provider's mix.
func (em *emitter) pickEDNSFor(p astrie.Provider) uint16 {
	if p == astrie.ProviderOther {
		return pickEDNSDist(longTailEDNSDist, em.rng)
	}
	return pickEDNSDist(em.g.pools[p].edns, em.rng)
}
