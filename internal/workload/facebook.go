package workload

import (
	"time"

	"dnscentral/internal/rdns"
)

// FBSite models one Facebook resolver site for Figures 5 and 8: its share
// of Facebook's query volume, per-family RTT to the vantage server, the
// family split (which, per §4.3, correlates with the RTT difference), and
// whether the site speaks TCP at all ("For Location 1, we observed no TCP
// traffic").
type FBSite struct {
	Code    string
	Weight  float64
	RTT4    time.Duration
	RTT6    time.Duration
	V6Share float64
	TCP     bool
}

// FacebookSiteModel is calibrated so that: location 1 dominates and sends
// no TCP; locations 8–10 have clearly larger IPv6 RTTs and therefore
// prefer IPv4; the remaining sites have close RTTs and an even-to-v6
// split; and the weighted V6Share aggregates to Table 5's ~0.76–0.83.
var FacebookSiteModel = []FBSite{
	{Code: rdns.FacebookSites[0], Weight: 0.45, RTT4: 9 * time.Millisecond, RTT6: 8 * time.Millisecond, V6Share: 0.92, TCP: false},
	{Code: rdns.FacebookSites[1], Weight: 0.07, RTT4: 12 * time.Millisecond, RTT6: 11 * time.Millisecond, V6Share: 0.72, TCP: true},
	{Code: rdns.FacebookSites[2], Weight: 0.06, RTT4: 14 * time.Millisecond, RTT6: 13 * time.Millisecond, V6Share: 0.70, TCP: true},
	{Code: rdns.FacebookSites[3], Weight: 0.06, RTT4: 16 * time.Millisecond, RTT6: 15 * time.Millisecond, V6Share: 0.68, TCP: true},
	{Code: rdns.FacebookSites[4], Weight: 0.06, RTT4: 90 * time.Millisecond, RTT6: 88 * time.Millisecond, V6Share: 0.66, TCP: true},
	{Code: rdns.FacebookSites[5], Weight: 0.05, RTT4: 100 * time.Millisecond, RTT6: 102 * time.Millisecond, V6Share: 0.60, TCP: true},
	{Code: rdns.FacebookSites[6], Weight: 0.05, RTT4: 110 * time.Millisecond, RTT6: 109 * time.Millisecond, V6Share: 0.62, TCP: true},
	// Locations 8–10: IPv6 RTT much larger → strong IPv4 preference.
	{Code: rdns.FacebookSites[7], Weight: 0.045, RTT4: 120 * time.Millisecond, RTT6: 210 * time.Millisecond, V6Share: 0.18, TCP: true},
	{Code: rdns.FacebookSites[8], Weight: 0.040, RTT4: 130 * time.Millisecond, RTT6: 235 * time.Millisecond, V6Share: 0.15, TCP: true},
	{Code: rdns.FacebookSites[9], Weight: 0.035, RTT4: 150 * time.Millisecond, RTT6: 260 * time.Millisecond, V6Share: 0.12, TCP: true},
	{Code: rdns.FacebookSites[10], Weight: 0.030, RTT4: 180 * time.Millisecond, RTT6: 178 * time.Millisecond, V6Share: 0.70, TCP: true},
	{Code: rdns.FacebookSites[11], Weight: 0.025, RTT4: 200 * time.Millisecond, RTT6: 196 * time.Millisecond, V6Share: 0.72, TCP: true},
	// The final site is the one whose PTR names embed no IPv4.
	{Code: rdns.FacebookSites[12], Weight: 0.020, RTT4: 220 * time.Millisecond, RTT6: 214 * time.Millisecond, V6Share: 0.70, TCP: true},
}

// FacebookAggregateV6Share is the weighted IPv6 share implied by the site
// model (should track Table 5's Facebook row).
func FacebookAggregateV6Share() float64 {
	num, den := 0.0, 0.0
	for _, s := range FacebookSiteModel {
		num += s.Weight * s.V6Share
		den += s.Weight
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// serverRTTFactor perturbs a site's RTT for different authoritative
// servers: Figure 8 (Server B) shows the same mechanism with different
// magnitudes, e.g. its locations 2 and 4 prefer IPv4. The factor is
// deterministic per (site, server, family).
func serverRTTFactor(site, server int, v6 bool) float64 {
	if server == 0 {
		return 1
	}
	// Server B: flip which sites see inflated IPv6 RTTs.
	if v6 {
		switch site {
		case 1, 3: // "locations 2 and 4" in Figure 8b
			return 2.4
		case 7, 8, 9:
			return 0.6 // the server-A outliers look ordinary from B
		}
	}
	return 1.1
}

// fbSiteV6Share returns the family split a site uses toward a given
// server, consistent with its (per-server) RTT gap: sites whose IPv6 RTT
// is ≥1.5× the IPv4 RTT send most queries over IPv4 and vice versa.
func fbSiteV6Share(siteIdx, server int) float64 {
	s := FacebookSiteModel[siteIdx]
	rtt4 := time.Duration(float64(s.RTT4) * serverRTTFactor(siteIdx, server, false))
	rtt6 := time.Duration(float64(s.RTT6) * serverRTTFactor(siteIdx, server, true))
	switch {
	case rtt6 > rtt4*3/2:
		return 0.15
	case rtt4 > rtt6*3/2:
		return 0.88
	default:
		return s.V6Share
	}
}
