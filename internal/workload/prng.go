package workload

// splitSource is a SplitMix64 PRNG implementing math/rand.Source64. Each
// shard owns one and reseeds it at the start of every event, so a single
// math/rand.Rand wrapping it is reused allocation-free across events while
// every event still draws from its own independent stream.
type splitSource struct{ state uint64 }

// Seed implements rand.Source.
func (s *splitSource) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 implements rand.Source64 (the SplitMix64 step).
func (s *splitSource) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// Int63 implements rand.Source.
func (s *splitSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// eventSeed derives the SplitMix64 state of one event's stream from the
// trace seed and the event index. The double mixing round decorrelates
// adjacent indices, so an event's randomness depends only on (seed, index)
// — never on which shard generates it or in what order. This is the
// determinism backbone of parallel generation.
func eventSeed(seed int64, event uint64) uint64 {
	z := uint64(seed)*0xA24BAED4963EE407 + (event+1)*0x9E3779B97F4A7C15
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}
