package workload

import (
	"runtime"
	"testing"
	"time"

	"dnscentral/internal/cloudmodel"
)

// nullSink counts packets and bytes without retaining them.
type nullSink struct {
	packets int64
	bytes   int64
}

func (s *nullSink) WritePacket(_ time.Time, data []byte) error {
	s.packets++
	s.bytes += int64(len(data))
	return nil
}

// benchGenerate measures steady-state trace generation throughput and
// allocations per event. The generator is rebuilt every iteration (outside
// the timed region) so each Run sees identical state.
func benchGenerate(b *testing.B, workers int) {
	cfg := Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020,
		TotalQueries: 20_000, Seed: 1, ResolverScale: 0.002,
	}
	cfg.Workers = workers
	b.ReportAllocs()
	var events, packets, bytes, allocs uint64
	var ms1, ms2 runtime.MemStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		gen, err := NewGenerator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sink := &nullSink{}
		runtime.ReadMemStats(&ms1)
		b.StartTimer()
		gt, err := gen.Run(sink)
		b.StopTimer()
		runtime.ReadMemStats(&ms2)
		if err != nil {
			b.Fatal(err)
		}
		events += uint64(cfg.TotalQueries)
		packets += uint64(sink.packets)
		bytes += uint64(sink.bytes)
		allocs += ms2.Mallocs - ms1.Mallocs
		_ = gt
		b.StartTimer()
	}
	b.StopTimer()
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(events)/sec, "events/sec")
		b.ReportMetric(float64(packets)/sec, "pkts/sec")
		b.ReportMetric(float64(bytes)/sec/1e6, "MB/sec")
	}
	b.ReportMetric(float64(allocs)/float64(events), "allocs/event")
}

func BenchmarkGenerate(b *testing.B) {
	b.Run("workers=1", func(b *testing.B) { benchGenerate(b, 1) })
	b.Run("workers=4", func(b *testing.B) { benchGenerate(b, 4) })
}
