package workload

import (
	"math"
	"testing"
	"time"

	"dnscentral/internal/astrie"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/layers"
	"dnscentral/internal/rdns"
)

// memSink collects generated packets in memory.
type memSink struct {
	ts     []time.Time
	frames [][]byte
}

func (m *memSink) WritePacket(ts time.Time, data []byte) error {
	m.ts = append(m.ts, ts)
	m.frames = append(m.frames, append([]byte(nil), data...))
	return nil
}

func generate(t *testing.T, cfg Config) (*Generator, *memSink, *GroundTruth) {
	t.Helper()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := &memSink{}
	gt, err := g.Run(sink)
	if err != nil {
		t.Fatal(err)
	}
	return g, sink, gt
}

func TestGeneratorProducesParseablePackets(t *testing.T) {
	_, sink, gt := generate(t, Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020,
		TotalQueries: 3000, Seed: 1, ResolverScale: 0.002,
	})
	if gt.Queries < 3000 {
		t.Fatalf("ground truth queries = %d", gt.Queries)
	}
	if len(sink.frames) < 6000 { // at least query+response per event
		t.Fatalf("frames = %d", len(sink.frames))
	}
	p := layers.NewParser()
	dnsCount := 0
	for i, frame := range sink.frames {
		if _, err := p.Decode(frame); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(p.Payload) > 0 && p.Decoded[2] == layers.LayerTypeUDP {
			if _, err := dnswire.Unpack(p.Payload); err != nil {
				t.Fatalf("frame %d DNS: %v", i, err)
			}
			dnsCount++
		}
	}
	if dnsCount == 0 {
		t.Fatal("no UDP DNS payloads decoded")
	}
}

func TestTimestampsMonotonicWithinTolerance(t *testing.T) {
	_, sink, _ := generate(t, Config{
		Vantage: cloudmodel.VantageNZ, Week: cloudmodel.W2019,
		TotalQueries: 2000, Seed: 2, ResolverScale: 0.002,
	})
	start := WeekStart(cloudmodel.VantageNZ, cloudmodel.W2019)
	end := start.Add(Duration(cloudmodel.VantageNZ)).Add(time.Hour)
	for i, ts := range sink.ts {
		if ts.Before(start) || ts.After(end) {
			t.Fatalf("packet %d at %v outside capture window", i, ts)
		}
	}
}

func TestProviderSharesApproximateModel(t *testing.T) {
	_, _, gt := generate(t, Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020,
		TotalQueries: 30000, Seed: 3, ResolverScale: 0.002,
	})
	vw, _ := cloudmodel.Get(cloudmodel.VantageNL, cloudmodel.W2020)
	for _, p := range astrie.CloudProviders {
		got := float64(gt.ByProvider[p]) / float64(gt.Queries)
		want := vw.Providers[p].Share
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%s share = %.3f, model %.3f", p, got, want)
		}
	}
	cloud := uint64(0)
	for _, c := range gt.ByProvider {
		cloud += c
	}
	frac := float64(cloud) / float64(gt.Queries)
	if frac < 0.28 || frac > 0.38 {
		t.Errorf("cloud share = %.3f, want ≈1/3 (Figure 1a)", frac)
	}
}

func TestTransportSharesApproximateTable5(t *testing.T) {
	_, _, gt := generate(t, Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020,
		TotalQueries: 40000, Seed: 4, ResolverScale: 0.002,
	})
	// Microsoft: all IPv4, all UDP.
	if gt.V6Queries[astrie.ProviderMicrosoft] != 0 {
		t.Error("Microsoft sent IPv6")
	}
	if gt.TCPQueries[astrie.ProviderMicrosoft] != 0 {
		t.Error("Microsoft sent TCP")
	}
	// Google: roughly half IPv6, no TCP to speak of.
	gv6 := float64(gt.V6Queries[astrie.ProviderGoogle]) / float64(gt.ByProvider[astrie.ProviderGoogle])
	if math.Abs(gv6-0.48) > 0.08 {
		t.Errorf("Google v6 share = %.3f, want ≈0.48", gv6)
	}
	// Facebook: majority IPv6 and the heaviest TCP user.
	fv6 := float64(gt.V6Queries[astrie.ProviderFacebook]) / float64(gt.ByProvider[astrie.ProviderFacebook])
	if fv6 < 0.6 {
		t.Errorf("Facebook v6 share = %.3f, want > 0.6", fv6)
	}
	ftcp := float64(gt.TCPQueries[astrie.ProviderFacebook]) / float64(gt.ByProvider[astrie.ProviderFacebook])
	if ftcp < 0.06 || ftcp > 0.30 {
		t.Errorf("Facebook TCP share = %.3f, want ≈0.14", ftcp)
	}
	for _, p := range []astrie.Provider{astrie.ProviderGoogle, astrie.ProviderCloudflare} {
		tcp := float64(gt.TCPQueries[p]) / float64(gt.ByProvider[p])
		if tcp >= ftcp {
			t.Errorf("%s TCP share %.3f ≥ Facebook %.3f", p, tcp, ftcp)
		}
	}
}

func TestFacebookTruncationDominates(t *testing.T) {
	_, _, gt := generate(t, Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020,
		TotalQueries: 40000, Seed: 5, ResolverScale: 0.002,
	})
	ftr := float64(gt.Truncated[astrie.ProviderFacebook]) / float64(gt.ByProvider[astrie.ProviderFacebook])
	gtr := float64(gt.Truncated[astrie.ProviderGoogle]) / float64(gt.ByProvider[astrie.ProviderGoogle])
	if ftr < 0.05 {
		t.Errorf("Facebook truncation = %.4f, want ≳0.1 (paper: 0.17)", ftr)
	}
	if gtr > 0.01 {
		t.Errorf("Google truncation = %.4f, want ≈0.0004", gtr)
	}
	if ftr < 20*gtr {
		t.Errorf("Facebook/Google truncation ratio = %.1f, want ≫1", ftr/gtr)
	}
}

func TestQminShapesQueryTypes(t *testing.T) {
	zero, one := 0.0, 1.0
	// Google only, Q-min off (pre-Dec-2019).
	_, _, before := generate(t, Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2019,
		TotalQueries: 8000, Seed: 6, ResolverScale: 0.002,
		ProviderFilter: []astrie.Provider{astrie.ProviderGoogle},
		QminOverride:   &zero,
	})
	nsBefore := float64(before.ByType[dnswire.TypeNS]) / float64(before.Queries)
	// Q-min on (post-Dec-2019).
	_, _, after := generate(t, Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2019,
		TotalQueries: 8000, Seed: 6, ResolverScale: 0.002,
		ProviderFilter: []astrie.Provider{astrie.ProviderGoogle},
		QminOverride:   &one,
	})
	nsAfter := float64(after.ByType[dnswire.TypeNS]) / float64(after.Queries)
	if nsBefore > 0.10 {
		t.Errorf("NS share before Q-min = %.3f, want small", nsBefore)
	}
	if nsAfter < 0.80 {
		t.Errorf("NS share after Q-min = %.3f, want dominant", nsAfter)
	}
}

func TestAnomalyInflatesAQueries(t *testing.T) {
	one := 1.0
	_, _, gt := generate(t, Config{
		Vantage: cloudmodel.VantageNZ, Week: cloudmodel.W2020,
		TotalQueries: 6000, Seed: 7, ResolverScale: 0.002,
		ProviderFilter: []astrie.Provider{astrie.ProviderGoogle},
		QminOverride:   &one,
		Anomaly:        true,
	})
	aShare := float64(gt.ByType[dnswire.TypeA]+gt.ByType[dnswire.TypeAAAA]) / float64(gt.Queries)
	if aShare < 0.4 {
		t.Errorf("A/AAAA share with anomaly = %.3f, want ≈0.5 (§4.2.1 Feb 2020)", aShare)
	}
}

func TestJunkSharesReconcile(t *testing.T) {
	_, _, gt := generate(t, Config{
		Vantage: cloudmodel.VantageNZ, Week: cloudmodel.W2020,
		TotalQueries: 30000, Seed: 8, ResolverScale: 0.002,
	})
	vw, _ := cloudmodel.Get(cloudmodel.VantageNZ, cloudmodel.W2020)
	junk := gt.OtherJunk
	for _, j := range gt.JunkQueries {
		junk += j
	}
	got := float64(junk) / float64(gt.Queries)
	want := 1 - vw.ValidShare
	if math.Abs(got-want) > 0.03 {
		t.Errorf("junk share = %.3f, Table 3 implies %.3f", got, want)
	}
}

func TestFacebookPTRsRegistered(t *testing.T) {
	g, _, gt := generate(t, Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020,
		TotalQueries: 5000, Seed: 9, ResolverScale: 0.002,
	})
	db := g.PTRDB()
	if db.Len() == 0 {
		t.Fatal("no PTR records registered")
	}
	// Every Facebook resolver that queried must reverse-resolve.
	reg := g.Registry()
	fbSeen, fbResolved := 0, 0
	for addr := range gt.ResolverSet {
		if reg.ProviderOf(addr) == astrie.ProviderFacebook {
			fbSeen++
			if target, ok := db.Lookup(addr); ok {
				if _, _, _, ok := rdns.ParseFacebookPTR(target); !ok {
					t.Errorf("PTR %q not Facebook-shaped", target)
				}
				fbResolved++
			}
		}
	}
	if fbSeen == 0 || fbResolved != fbSeen {
		t.Errorf("facebook resolvers seen=%d resolved=%d", fbSeen, fbResolved)
	}
}

func TestBRootMostlyJunk(t *testing.T) {
	_, _, gt := generate(t, Config{
		Vantage: cloudmodel.VantageBRoot, Week: cloudmodel.W2020,
		TotalQueries: 20000, Seed: 10, ResolverScale: 0.002,
	})
	junk := gt.OtherJunk
	for _, j := range gt.JunkQueries {
		junk += j
	}
	got := float64(junk) / float64(gt.Queries)
	if got < 0.7 {
		t.Errorf("B-Root junk share = %.3f, want ≈0.8 (Table 3)", got)
	}
	// Cloud share under 10%.
	cloud := uint64(0)
	for _, c := range gt.ByProvider {
		cloud += c
	}
	if frac := float64(cloud) / float64(gt.Queries); frac > 0.12 {
		t.Errorf("B-Root cloud share = %.3f, want < 0.1", frac)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2018,
		TotalQueries: 1000, Seed: 11, ResolverScale: 0.002,
	}
	_, s1, gt1 := generate(t, cfg)
	_, s2, gt2 := generate(t, cfg)
	if len(s1.frames) != len(s2.frames) || gt1.Queries != gt2.Queries {
		t.Fatalf("runs differ: %d vs %d frames", len(s1.frames), len(s2.frames))
	}
	for i := range s1.frames {
		if string(s1.frames[i]) != string(s2.frames[i]) {
			t.Fatalf("frame %d differs", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewGenerator(Config{Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020}); err == nil {
		t.Error("zero TotalQueries accepted")
	}
	if _, err := NewGenerator(Config{Vantage: "mars", Week: cloudmodel.W2020, TotalQueries: 10}); err == nil {
		t.Error("unknown vantage accepted")
	}
}

func TestWeekStartsMatchTable2(t *testing.T) {
	if WeekStart(cloudmodel.VantageNL, cloudmodel.W2018) != time.Date(2018, 11, 4, 0, 0, 0, 0, time.UTC) {
		t.Error("w2018 start")
	}
	if WeekStart(cloudmodel.VantageNL, cloudmodel.W2020) != time.Date(2020, 4, 5, 0, 0, 0, 0, time.UTC) {
		t.Error("w2020 start")
	}
	if WeekStart(cloudmodel.VantageBRoot, cloudmodel.W2020) != time.Date(2020, 5, 6, 0, 0, 0, 0, time.UTC) {
		t.Error("B-Root 2020 day")
	}
	if Duration(cloudmodel.VantageBRoot) != 24*time.Hour || Duration(cloudmodel.VantageNL) != 7*24*time.Hour {
		t.Error("durations")
	}
}

func TestServerAddrsDistinctAndWellKnown(t *testing.T) {
	seen := map[string]bool{}
	for _, v := range cloudmodel.Vantages {
		for i := 0; i < 2; i++ {
			for _, v6 := range []bool{false, true} {
				a := ServerAddr(v, i, v6)
				if !a.IsValid() {
					t.Fatalf("invalid server addr %s/%d/%v", v, i, v6)
				}
				if seen[a.String()] {
					t.Fatalf("duplicate server addr %s", a)
				}
				seen[a.String()] = true
			}
		}
	}
}

func TestFacebookAggregateV6ShareMatchesTable5(t *testing.T) {
	got := FacebookAggregateV6Share()
	if got < 0.70 || got > 0.86 {
		t.Errorf("site-model aggregate v6 share = %.3f, want ≈0.76–0.83", got)
	}
}

func TestNLUsesTwoServers(t *testing.T) {
	_, sink, _ := generate(t, Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020,
		TotalQueries: 3000, Seed: 12, ResolverScale: 0.002,
	})
	p := layers.NewParser()
	servers := map[string]bool{}
	for _, frame := range sink.frames {
		flow, err := p.Decode(frame)
		if err != nil {
			continue
		}
		if flow.DstPort == 53 {
			servers[flow.Dst.String()] = true
		}
	}
	// Two servers × two families.
	if len(servers) != 4 {
		t.Errorf("distinct server addrs = %d, want 4", len(servers))
	}
}
