// Package workload synthesizes the resolver→authoritative DNS traffic the
// paper measured: weekly pcap snapshots per vantage (.nl, .nz, B-Root) in
// which every packet is a well-formed Ethernet/IP/UDP-or-TCP frame
// carrying a DNS message generated from the cloudmodel behavior profiles
// and answered by a real authserver engine. The absolute volume is scaled
// down from the paper's billions; every reported metric is a ratio or
// distribution, so the shape survives scaling.
package workload

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"dnscentral/internal/anycast"
	"dnscentral/internal/astrie"
	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/rdns"
)

// resolverDesc is one resolver address (or dual-stack pair for Facebook).
type resolverDesc struct {
	provider astrie.Provider
	asn      uint32
	addr4    netip.Addr // valid when the resolver has an IPv4 address
	addr6    netip.Addr // valid when the resolver has an IPv6 address
	public   bool
	qmin     bool
	validate bool
	ednsSize uint16
	site     int // Facebook site index, -1 otherwise
	rtt      time.Duration
}

// providerPool indexes a provider's resolvers for weighted selection.
type providerPool struct {
	provider astrie.Provider
	profile  cloudmodel.Profile
	descs    []*resolverDesc
	// subpools[public][v6] hold indices into descs for non-Facebook
	// providers (each resolver is a single address).
	subpools [2][2][]int
	// fbSites groups dual-stack Facebook resolver units per site index.
	fbSites [][]int
	// edns is the profile's EDNS mix as a precomputed CDF, so per-event
	// draws need no map-key sort or allocation.
	edns []ednsEntry
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// scaledCount scales a real-world count down, keeping at least min.
func scaledCount(n int, scale float64, min int) int {
	s := int(float64(n) * scale)
	if s < min {
		s = min
	}
	return s
}

// pickEDNS draws an advertised EDNS size from the profile mix.
func pickEDNS(sizes map[uint16]float64, rng *rand.Rand) uint16 {
	x := rng.Float64()
	cum := 0.0
	var last uint16
	// Iterate deterministically: map iteration order is random, so walk
	// keys sorted to keep draws reproducible across runs with one seed.
	keys := sortedEDNSKeys(sizes)
	for _, size := range keys {
		cum += sizes[size]
		last = size
		if x < cum {
			return size
		}
	}
	return last
}

// ednsEntry is one step of a precomputed EDNS size CDF.
type ednsEntry struct {
	size uint16
	cum  float64
}

// ednsDist precomputes the CDF pickEDNSDist walks; draws are identical to
// pickEDNS over the same map.
func ednsDist(sizes map[uint16]float64) []ednsEntry {
	keys := sortedEDNSKeys(sizes)
	out := make([]ednsEntry, len(keys))
	cum := 0.0
	for i, k := range keys {
		cum += sizes[k]
		out[i] = ednsEntry{size: k, cum: cum}
	}
	return out
}

// pickEDNSDist is the allocation-free equivalent of pickEDNS.
func pickEDNSDist(dist []ednsEntry, rng *rand.Rand) uint16 {
	x := rng.Float64()
	for _, e := range dist {
		if x < e.cum {
			return e.size
		}
	}
	return dist[len(dist)-1].size
}

func sortedEDNSKeys(sizes map[uint16]float64) []uint16 {
	keys := make([]uint16, 0, len(sizes))
	for k := range sizes {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// buildProviderPool materializes the scaled resolver population of one
// provider: addresses from the registry, behavior flags drawn from the
// profile, Facebook units dual-stack with PTR records registered.
func buildProviderPool(
	reg *astrie.Registry,
	p astrie.Provider,
	profile cloudmodel.Profile,
	scale float64,
	rng *rand.Rand,
	ptrDB *rdns.DB,
	deployment *anycast.Deployment,
) (*providerPool, error) {
	pool := &providerPool{provider: p, profile: profile, edns: ednsDist(profile.EDNSSizes)}
	asns := astrie.ProviderASNs[p]
	if len(asns) == 0 {
		return nil, fmt.Errorf("workload: provider %s has no ASNs", p)
	}
	n := scaledCount(profile.Resolvers, scale, 8)

	if p == astrie.ProviderFacebook {
		return buildFacebookPool(reg, pool, n, rng, ptrDB)
	}

	// idx counters per (asn, family, public) keep addresses unique.
	type key struct {
		asn    uint32
		v6     bool
		public bool
	}
	counters := make(map[key]uint32)
	for i := 0; i < n; i++ {
		asn := asns[i%len(asns)]
		// Low-discrepancy assignment keeps the family and public splits
		// near-exact even in small scaled pools (Tables 4 and 6 compare
		// these fractions directly); distinct irrational strides decorrelate
		// the two flags.
		v6 := lowDiscrepancy(i, 0.6180339887498949) < profile.ResolverV6Frac
		public := lowDiscrepancy(i, 0.7548776662466927) < profile.PublicResolverFrac
		k := key{asn, v6, public}
		idx := counters[k]
		counters[k]++
		addr, err := reg.ResolverAddr(asn, v6, public, idx)
		if err != nil {
			return nil, fmt.Errorf("workload: %s resolver %d: %w", p, i, err)
		}
		d := &resolverDesc{
			provider: p,
			asn:      asn,
			public:   public,
			qmin:     lowDiscrepancy(i, 0.5545497331806323) < profile.QminShare,
			validate: lowDiscrepancy(i, 0.3247179572447461) < profile.ValidateShare,
			ednsSize: pickEDNS(profile.EDNSSizes, rng),
			site:     -1,
			rtt:      catchRTT(deployment, addr, rng),
		}
		if v6 {
			d.addr6 = addr
		} else {
			d.addr4 = addr
		}
		pool.descs = append(pool.descs, d)
		pool.subpools[b2i(public)][b2i(v6)] = append(pool.subpools[b2i(public)][b2i(v6)], len(pool.descs)-1)
	}
	return pool, nil
}

// buildFacebookPool creates dual-stack units spread over the site model.
func buildFacebookPool(reg *astrie.Registry, pool *providerPool, n int, rng *rand.Rand, ptrDB *rdns.DB) (*providerPool, error) {
	asn := astrie.ProviderASNs[astrie.ProviderFacebook][0]
	units := n / 2 // each unit contributes a v4 and a v6 address
	if units < 2*len(FacebookSiteModel) {
		units = 2 * len(FacebookSiteModel)
	}
	pool.fbSites = make([][]int, len(FacebookSiteModel))
	var idx uint32
	for u := 0; u < units; u++ {
		// The first unit of every site is guaranteed; the rest follow the
		// traffic weights.
		site := u
		if u >= len(FacebookSiteModel) {
			site = siteForUnit(u-len(FacebookSiteModel), units-len(FacebookSiteModel))
		}
		a4, err := reg.ResolverAddr(asn, false, false, idx)
		if err != nil {
			return nil, err
		}
		a6, err := reg.ResolverAddr(asn, true, false, idx)
		if err != nil {
			return nil, err
		}
		idx++
		s := FacebookSiteModel[site]
		d := &resolverDesc{
			provider: astrie.ProviderFacebook,
			asn:      asn,
			addr4:    a4,
			addr6:    a6,
			qmin:     lowDiscrepancy(u, 0.5545497331806323) < pool.profile.QminShare,
			validate: lowDiscrepancy(u, 0.3247179572447461) < pool.profile.ValidateShare,
			ednsSize: pickEDNS(pool.profile.EDNSSizes, rng),
			site:     site,
			rtt:      s.RTT4,
		}
		pool.descs = append(pool.descs, d)
		pool.fbSites[site] = append(pool.fbSites[site], len(pool.descs)-1)
		if ptrDB != nil {
			// 12 of 13 sites embed the unit's IPv4 in both PTRs; the last
			// site's PTRs carry an opaque ordinal instead.
			ptr := rdns.FacebookPTRName(s.Code, a4, u)
			ptrDB.Add(a4, ptr)
			ptrDB.Add(a6, ptr)
		}
	}
	return pool, nil
}

// siteForUnit deterministically assigns units to sites by cumulative
// weight, so site populations track the traffic model.
func siteForUnit(u, units int) int {
	frac := (float64(u) + 0.5) / float64(units)
	cum := 0.0
	total := 0.0
	for _, s := range FacebookSiteModel {
		total += s.Weight
	}
	for i, s := range FacebookSiteModel {
		cum += s.Weight / total
		if frac < cum {
			return i
		}
	}
	return len(FacebookSiteModel) - 1
}

// pick selects a resolver and the family for one query event.
func (pp *providerPool) pick(rng *rand.Rand, server int) (d *resolverDesc, v6 bool) {
	if pp.provider == astrie.ProviderFacebook {
		site := pickFBSite(rng)
		ids := pp.fbSites[site]
		for len(ids) == 0 { // weight rounding may leave a site empty
			site = (site + 1) % len(pp.fbSites)
			ids = pp.fbSites[site]
		}
		d = pp.descs[ids[rng.Intn(len(ids))]]
		// The site model encodes the steady-state (2019+) family mix;
		// scale it to the year's aggregate (Table 5: 48% v6 in 2018,
		// 76%+ later) while preserving the per-site ordering.
		share := fbSiteV6Share(site, server)
		if agg := FacebookAggregateV6Share(); agg > 0 {
			share *= pp.profile.V6Share / agg
		}
		if share > 1 {
			share = 1
		}
		v6 = rng.Float64() < share
		return d, v6
	}
	public := rng.Float64() < pp.profile.PublicDNSShare
	v6 = rng.Float64() < pp.profile.V6Share
	ids := pp.subpools[b2i(public)][b2i(v6)]
	// Fall back across subpools when a cell is empty at small scales.
	for _, alt := range [][2]int{
		{b2i(public), b2i(v6)},
		{b2i(public), 1 - b2i(v6)},
		{1 - b2i(public), b2i(v6)},
		{1 - b2i(public), 1 - b2i(v6)},
	} {
		ids = pp.subpools[alt[0]][alt[1]]
		if len(ids) > 0 {
			d = pp.descs[ids[rng.Intn(len(ids))]]
			return d, d.addr6.IsValid()
		}
	}
	return nil, false
}

// pickFBSite draws a site index by weight.
func pickFBSite(rng *rand.Rand) int {
	total := 0.0
	for _, s := range FacebookSiteModel {
		total += s.Weight
	}
	x := rng.Float64() * total
	cum := 0.0
	for i, s := range FacebookSiteModel {
		cum += s.Weight
		if x < cum {
			return i
		}
	}
	return len(FacebookSiteModel) - 1
}

// lowDiscrepancy returns the fractional part of i·stride — a Weyl
// sequence whose below-threshold fraction converges to the threshold much
// faster than Bernoulli draws.
func lowDiscrepancy(i int, stride float64) float64 {
	x := float64(i+1) * stride
	return x - float64(int(x))
}

// catchRTT derives a resolver's RTT to the vantage from the anycast
// catchment model, falling back to a uniform draw when no deployment is
// configured (tests building pools directly).
func catchRTT(d *anycast.Deployment, addr netip.Addr, rng *rand.Rand) time.Duration {
	if d == nil {
		return time.Duration(5+rng.Intn(115)) * time.Millisecond
	}
	_, rtt := d.Catch(addr)
	return rtt
}

// longTailEDNSMix is the EDNS(0) size mix of the non-cloud Internet.
var longTailEDNSMix = map[uint16]float64{0: 0.10, 512: 0.15, 1232: 0.25, 4096: 0.50}

// longTailEDNSDist is the same mix as a precomputed CDF for the hot path.
var longTailEDNSDist = ednsDist(longTailEDNSMix)

// longTailPool models the rest of the Internet: single-address resolvers
// spread over the long-tail ASes.
type longTailPool struct {
	descs []*resolverDesc
}

// buildLongTailPool creates n resolvers over the registry's long-tail ASes.
// Behavior reflects the non-cloud Internet of the period: modest IPv6,
// partial validation, and a Q-min share that grows by year (de Vries et
// al. found 33–40% of queries minimized by 2019, across all resolvers).
func buildLongTailPool(reg *astrie.Registry, n, numASes int, week cloudmodel.Week, rng *rand.Rand, deployment *anycast.Deployment) (*longTailPool, error) {
	if numASes < 1 {
		return nil, fmt.Errorf("workload: long tail needs at least one AS")
	}
	qminShare := map[cloudmodel.Week]float64{
		cloudmodel.W2018: 0.05, cloudmodel.W2019: 0.12, cloudmodel.W2020: 0.22,
	}[week]
	lt := &longTailPool{}
	counters := make(map[[2]uint32]uint32) // (asn, family) -> next idx
	for i := 0; i < n; i++ {
		asn := astrie.LongTailASNBase + uint32(i%numASes)
		v6 := rng.Float64() < 0.12
		k := [2]uint32{asn, uint32(b2i(v6))}
		idx := counters[k]
		counters[k]++
		addr, err := reg.ResolverAddr(asn, v6, false, idx)
		if err != nil {
			return nil, err
		}
		d := &resolverDesc{
			provider: astrie.ProviderOther,
			asn:      asn,
			qmin:     rng.Float64() < qminShare,
			validate: rng.Float64() < 0.30,
			ednsSize: pickEDNS(longTailEDNSMix, rng),
			site:     -1,
			rtt:      catchRTT(deployment, addr, rng),
		}
		if v6 {
			d.addr6 = addr
		} else {
			d.addr4 = addr
		}
		lt.descs = append(lt.descs, d)
	}
	return lt, nil
}

// pick selects a long-tail resolver; popularity is skewed so some
// resolvers (big ISPs) dominate, like real traffic.
func (lt *longTailPool) pick(rng *rand.Rand) *resolverDesc {
	n := len(lt.descs)
	// Power-law-ish: square a uniform draw to bias toward low indices.
	x := rng.Float64()
	i := int(x * x * float64(n))
	if i >= n {
		i = n - 1
	}
	return lt.descs[i]
}
