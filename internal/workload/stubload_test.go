package workload

import (
	"net"
	"strings"
	"testing"
	"time"
)

// echoResponder answers every query with QR set and NOERROR — enough
// for the stub loop's ID matching and RCODE accounting.
func echoResponder(t *testing.T) string {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	go func() {
		buf := make([]byte, 1<<16)
		for {
			n, addr, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			if n < 12 {
				continue
			}
			buf[2] |= 0x80 // QR
			pc.WriteTo(buf[:n], addr)
		}
	}()
	return pc.LocalAddr().String()
}

func TestStubLoadAllAnswered(t *testing.T) {
	addr := echoResponder(t)
	st, err := StubLoad(StubLoadConfig{
		Target:  addr,
		Zone:    "nl",
		Names:   50,
		Queries: 200,
		Workers: 3,
		Seed:    7,
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 200 || st.Answered != 200 || st.Timeouts != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ByRCode[0] != 200 {
		t.Fatalf("NOERROR count = %d, want 200", st.ByRCode[0])
	}
	if st.QPS() <= 0 {
		t.Fatal("qps not computed")
	}
}

// TestStubLoadBatched runs the same load through the windowed batch
// sender: every query answered, none lost across window boundaries.
func TestStubLoadBatched(t *testing.T) {
	addr := echoResponder(t)
	st, err := StubLoad(StubLoadConfig{
		Target:  addr,
		Zone:    "nl",
		Names:   50,
		Queries: 203, // deliberately not a multiple of Batch or Workers
		Workers: 3,
		Batch:   16,
		Seed:    7,
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 203 || st.Answered != 203 || st.Timeouts != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ByRCode[0] != 203 {
		t.Fatalf("NOERROR count = %d, want 203", st.ByRCode[0])
	}
}

// TestStubLoadPacedRate checks TargetQPS pacing holds the send rate
// near the target and the stats expose achieved-vs-target.
func TestStubLoadPacedRate(t *testing.T) {
	addr := echoResponder(t)
	st, err := StubLoad(StubLoadConfig{
		Target:    addr,
		Zone:      "nl",
		Names:     20,
		Queries:   100,
		Workers:   2,
		Batch:     8,
		TargetQPS: 500,
		Seed:      3,
		Timeout:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 100 {
		t.Fatalf("sent = %d, want 100", st.Sent)
	}
	// 100 queries at 500/s ≈ 200ms minimum; an unpaced run against a
	// loopback echo finishes in a few ms.
	if st.Elapsed < 150*time.Millisecond {
		t.Fatalf("run finished in %v — pacing not applied", st.Elapsed)
	}
	if got := st.SendQPS(); got > 700 {
		t.Fatalf("send rate %.0f/s overshoots the 500/s target", got)
	}
	if st.TargetQPS != 500 {
		t.Fatalf("TargetQPS = %v", st.TargetQPS)
	}
	if !strings.Contains(st.Format(), "target") {
		t.Fatalf("Format() missing target report: %s", st.Format())
	}
}

// TestStubLoadBottleneckWarning fabricates stats where the generator
// missed its target and checks the report calls it out.
func TestStubLoadBottleneckWarning(t *testing.T) {
	st := StubLoadStats{Sent: 100, Elapsed: time.Second, TargetQPS: 1000}
	if !st.GeneratorBottleneck() {
		t.Fatal("100/s of a 1000/s target not flagged as a bottleneck")
	}
	if !strings.Contains(st.Format(), "BOTTLENECK") {
		t.Fatalf("Format() missing bottleneck warning: %s", st.Format())
	}
	ok := StubLoadStats{Sent: 980, Elapsed: time.Second, TargetQPS: 1000}
	if ok.GeneratorBottleneck() {
		t.Fatal("98% of target wrongly flagged")
	}
}

func TestStubLoadDeterministicRanks(t *testing.T) {
	// Two runs with the same seed must draw identical rank sequences;
	// capture the names each run asks via a recording responder.
	record := func(seed int64) map[string]int {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer pc.Close()
		seen := make(map[string]int)
		done := make(chan struct{})
		go func() {
			defer close(done)
			buf := make([]byte, 1<<16)
			for {
				n, addr, err := pc.ReadFrom(buf)
				if err != nil {
					return
				}
				if n < 12 {
					continue
				}
				seen[string(append([]byte(nil), buf[12:n]...))]++
				buf[2] |= 0x80
				pc.WriteTo(buf[:n], addr)
			}
		}()
		_, err = StubLoad(StubLoadConfig{
			Target: pc.LocalAddr().String(), Zone: "nl",
			Names: 30, Queries: 100, Workers: 2, Seed: seed,
			Timeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		pc.Close()
		<-done
		return seen
	}
	a, b := record(11), record(11)
	if len(a) != len(b) {
		t.Fatalf("question sets differ in size: %d vs %d", len(a), len(b))
	}
	for q, n := range a {
		if b[q] != n {
			t.Fatalf("question %q asked %d vs %d times across same-seed runs", q, n, b[q])
		}
	}
	// The Zipf head must dominate: rank 0 asked more than any mid-tail rank.
	if len(a) >= 30 {
		t.Fatalf("zipf draw used every rank uniformly (%d distinct)", len(a))
	}
}
