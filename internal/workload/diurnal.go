package workload

import (
	"math"
	"time"
)

// diurnal models the time-of-day density of Internet traffic the paper
// compensates for by capturing whole weeks (§2.1, citing "When the
// Internet Sleeps"). Query density over the capture follows
//
//	f(x) = 1 + A·sin(2π·k·x − φ)
//
// with one cycle per day (k = days in the capture) and amplitude A.
type diurnal struct {
	amplitude float64
	cycles    float64
}

// newDiurnal builds the pattern for a capture of length dur.
func newDiurnal(dur time.Duration, amplitude float64) diurnal {
	days := dur.Hours() / 24
	if days < 1 {
		days = 1
	}
	if amplitude < 0 {
		amplitude = 0
	}
	if amplitude > 0.95 {
		amplitude = 0.95
	}
	return diurnal{amplitude: amplitude, cycles: days}
}

// cdf is the cumulative distribution of the density over [0,1].
func (d diurnal) cdf(x float64) float64 {
	w := 2 * math.Pi * d.cycles
	return x + d.amplitude/w*(1-math.Cos(w*x))
}

// warp maps a uniform position u ∈ [0,1] to the diurnal position t with
// CDF(t) = u, by Newton iteration on the strictly monotone CDF.
func (d diurnal) warp(u float64) float64 {
	if d.amplitude == 0 {
		return u
	}
	w := 2 * math.Pi * d.cycles
	t := u
	for i := 0; i < 8; i++ {
		f := d.cdf(t) - u
		df := 1 + d.amplitude*math.Sin(w*t)
		if df < 0.05 {
			df = 0.05
		}
		t -= f / df
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
	}
	return t
}
