package workload

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"reflect"
	"testing"
	"time"

	"dnscentral/internal/cloudmodel"
	"dnscentral/internal/pcapio"
)

func goldenConfig(workers int) Config {
	return Config{
		Vantage: cloudmodel.VantageNL, Week: cloudmodel.W2020,
		TotalQueries: 6000, Seed: 42, ResolverScale: 0.002,
		Workers: workers,
	}
}

// renderTrace generates one full pcap into memory.
func renderTrace(t testing.TB, cfg Config) ([]byte, *GroundTruth) {
	t.Helper()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf, pcapio.WithNanosecondResolution())
	gt, err := g.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), gt
}

// goldenTraceDigest pins the exact pcap bytes of goldenConfig: any change
// to the PRNG scheme, frame builders, packing, merge order, or pcap
// encoding shows up here. Regenerate deliberately (and note it in the
// change description) when the trace model itself changes.
const goldenTraceDigest = "6e8fc5ea11275f6b177a1d25bbca93ad02393f30268c63324fb164e50b40d4ff"

func TestSeedStabilityGolden(t *testing.T) {
	data, _ := renderTrace(t, goldenConfig(1))
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != goldenTraceDigest {
		t.Fatalf("golden trace digest = %s, want %s (seed stability broken — only repin if the trace model intentionally changed)",
			got, goldenTraceDigest)
	}
}

// TestWorkerCountParity is the tentpole invariant: the trace and the
// ground truth are byte-for-byte identical however many shards generate
// them.
func TestWorkerCountParity(t *testing.T) {
	base, gtBase := renderTrace(t, goldenConfig(1))
	for _, workers := range []int{2, 4, 7} {
		data, gt := renderTrace(t, goldenConfig(workers))
		if !bytes.Equal(base, data) {
			t.Fatalf("workers=%d trace differs from workers=1 (%d vs %d bytes)", workers, len(data), len(base))
		}
		if !reflect.DeepEqual(gtBase, gt) {
			t.Errorf("workers=%d ground truth differs from workers=1", workers)
		}
	}
}

// TestWorkerCountParityAnomaly covers the anomaly-injection path (and a
// second vantage) under sharding.
func TestWorkerCountParityAnomaly(t *testing.T) {
	cfg := Config{
		Vantage: cloudmodel.VantageNZ, Week: cloudmodel.W2020,
		TotalQueries: 3000, Seed: 7, ResolverScale: 0.002,
		Anomaly: true,
	}
	cfg.Workers = 1
	base, _ := renderTrace(t, cfg)
	cfg.Workers = 3
	data, _ := renderTrace(t, cfg)
	if !bytes.Equal(base, data) {
		t.Fatalf("anomaly trace differs between workers=1 and workers=3")
	}
}

// plainSink hides the BatchSink fast path so the merger falls back to
// per-packet WritePacket.
type plainSink struct{ w *pcapio.Writer }

func (s plainSink) WritePacket(ts time.Time, data []byte) error { return s.w.WritePacket(ts, data) }

// TestBatchSinkParity checks that the batched emit path produces the same
// file as the per-packet fallback.
func TestBatchSinkParity(t *testing.T) {
	cfg := goldenConfig(2)
	cfg.TotalQueries = 2000

	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var batched bytes.Buffer
	bw := pcapio.NewWriter(&batched, pcapio.WithNanosecondResolution())
	if _, err := g.Run(bw); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	g, err = NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	pw := pcapio.NewWriter(&plain, pcapio.WithNanosecondResolution())
	if _, err := g.Run(plainSink{pw}); err != nil {
		t.Fatal(err)
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batched.Bytes(), plain.Bytes()) {
		t.Fatal("batched pcap differs from per-packet pcap")
	}
}

// TestMergedTimestampsMonotone checks the k-way merge's contract: the
// capture is globally ordered by timestamp.
func TestMergedTimestampsMonotone(t *testing.T) {
	data, _ := renderTrace(t, goldenConfig(4))
	r, err := pcapio.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Time
	n := 0
	if err := r.ForEach(func(p pcapio.Packet) error {
		if p.Timestamp.Before(prev) {
			t.Fatalf("packet %d at %v precedes previous %v", n, p.Timestamp, prev)
		}
		prev = p.Timestamp
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty capture")
	}
}
