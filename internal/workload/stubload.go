package workload

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dnscentral/internal/dnswire"
	"dnscentral/internal/stats"
	"dnscentral/internal/udpengine"
)

// StubLoadConfig shapes a synthetic stub population firing queries at a
// recursive resolver: the Zipf-ranked name popularity the paper observes
// in real client traffic is exactly what gives a cache tier its high hit
// rate, so the generator reproduces it deterministically.
type StubLoadConfig struct {
	// Target is the recursive resolver's UDP address.
	Target string
	// Zone is the origin names are drawn under ("nl" → "www.d<rank>.nl.").
	Zone string
	// Names is the popularity-ranked name universe size (default 1000).
	Names int
	// Queries is the total number of queries to send (default 10000).
	Queries int
	// Skew is the Zipf exponent (default 1.0, near-harmonic).
	Skew float64
	// Workers are concurrent stub clients, each with its own socket and
	// derived PRNG stream (default 4).
	Workers int
	// EDNSSize advertised by the stubs; 0 sends plain queries.
	EDNSSize uint16
	// Timeout per exchange (default 3s).
	Timeout time.Duration
	// Seed makes runs reproducible; worker i uses Seed+i so the drawn
	// rank sequence is independent of scheduling.
	Seed int64
	// Attack switches the generator from the benign Zipf stream to an
	// attack pattern. "watertorture" sends random never-repeating
	// names — every query a guaranteed cache miss, the classic
	// random-subdomain flood. Empty means benign.
	Attack string
	// AttackVictim selects the flood's target. 0 (the default) aims at
	// the zone apex: random junk directly under <zone>, which a TLD
	// answers with NXDOMAIN — the storm the recursor's flood guard
	// keys on. A rank ≥ 1 aims under that delegated domain
	// ("w<rand>.d<victim>.<zone>."), which draws referrals instead and
	// fills the recursor cache with unique entries.
	AttackVictim int
	// Batch switches each worker from the synchronous send-one-await-one
	// stub to a windowed batch client: queue Batch queries through one
	// sendmmsg, then drain the answers. >1 engages the batched sender
	// (default 1, the classic stub).
	Batch int
	// TargetQPS paces the population's aggregate send rate (0 = as fast
	// as answers come back). The stats report achieved vs target so a
	// too-slow load generator is visible rather than silently deflating
	// the measurement.
	TargetQPS float64
	// GSO enables segmentation offload on the batched sender (Batch >
	// 1): each sendmmsg window's equal-size query runs leave as
	// UDP_SEGMENT super-datagrams, so the generator's send cost stops
	// scaling with per-packet stack traversals. Probed per socket;
	// silently plain on unsupported kernels or the portable build.
	GSO bool
}

func (c StubLoadConfig) withDefaults() StubLoadConfig {
	if c.Names <= 0 {
		c.Names = 1000
	}
	if c.Queries <= 0 {
		c.Queries = 10000
	}
	if c.Skew == 0 {
		c.Skew = 1.0
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 3 * time.Second
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	return c
}

// StubLoadStats summarizes one load run.
type StubLoadStats struct {
	Sent, Answered, Timeouts uint64
	// ByRCode counts the answers per response code.
	ByRCode map[dnswire.RCode]uint64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// TargetQPS echoes the configured pacing target (0 = unpaced).
	TargetQPS float64
}

// QPS is the achieved answered-queries-per-second rate.
func (s StubLoadStats) QPS() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Answered) / s.Elapsed.Seconds()
}

// SendQPS is the achieved send rate — the number the load generator
// actually produced, regardless of how many answers came back.
func (s StubLoadStats) SendQPS() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Sent) / s.Elapsed.Seconds()
}

// GeneratorBottleneck reports whether the generator fell visibly short
// of its pacing target (under 90% of TargetQPS): the measurement then
// reflects the load generator's ceiling, not the server's.
func (s StubLoadStats) GeneratorBottleneck() bool {
	return s.TargetQPS > 0 && s.SendQPS() < 0.9*s.TargetQPS
}

// Format renders the stats for the CLI.
func (s StubLoadStats) Format() string {
	out := fmt.Sprintf("stub load: %d sent, %d answered, %d timeouts, %.0f qps over %v",
		s.Sent, s.Answered, s.Timeouts, s.QPS(), s.Elapsed.Round(time.Millisecond))
	if s.TargetQPS > 0 {
		out += fmt.Sprintf("; send rate %.0f/s of %.0f/s target", s.SendQPS(), s.TargetQPS)
		if s.GeneratorBottleneck() {
			out += " (LOAD GENERATOR BOTTLENECK: results measure the generator, not the server)"
		}
	}
	return out
}

// StubLoad fires the configured query stream at the target and blocks
// until every worker drains. With Batch ≤ 1 each worker is a synchronous
// stub: send, wait for the matching ID, next — so concurrency equals
// Workers, like a population of simple clients rather than an open-loop
// flood. With Batch > 1 each worker drives a udpengine.ClientBatch:
// Batch queries leave in one sendmmsg and the answers drain in batched
// recvmmsg calls, so the generator can saturate a batched server from
// far fewer sockets. TargetQPS paces the sends either way.
func StubLoad(cfg StubLoadConfig) (StubLoadStats, error) {
	cfg = cfg.withDefaults()
	st := StubLoadStats{
		ByRCode:   make(map[dnswire.RCode]uint64),
		TargetQPS: cfg.TargetQPS,
	}
	var sent, answered, timeouts atomic.Uint64
	var mu sync.Mutex // guards ByRCode

	// Pacing: query i of a worker is due at start + i*interval, where
	// interval spreads TargetQPS across the population.
	var interval time.Duration
	if cfg.TargetQPS > 0 {
		interval = time.Duration(float64(time.Second) * float64(cfg.Workers) / cfg.TargetQPS)
	}

	per := cfg.Queries / cfg.Workers
	extra := cfg.Queries % cfg.Workers
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		n := per
		if w < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(worker, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)))
			zipf := stats.NewZipf(rng, cfg.Skew, uint64(cfg.Names))
			nextName := func() string {
				if cfg.Attack == "watertorture" {
					// Unique per draw, so the cache never helps and every
					// query costs an upstream round trip.
					if cfg.AttackVictim > 0 {
						return fmt.Sprintf("w%08x.d%d.%s.", rng.Uint32(), cfg.AttackVictim, cfg.Zone)
					}
					return fmt.Sprintf("w%08x.%s.", rng.Uint32(), cfg.Zone)
				}
				return fmt.Sprintf("www.d%d.%s.", zipf.Next(), cfg.Zone)
			}
			packQuery := func(i int) ([]byte, uint16, error) {
				id := uint16(worker<<10) + uint16(i)
				q := dnswire.NewQuery(id, nextName(), dnswire.TypeA)
				if cfg.EDNSSize > 0 {
					q.WithEdns(cfg.EDNSSize, false)
				}
				wire, err := q.Pack()
				return wire, id, err
			}
			pace := func(i int) {
				if interval <= 0 {
					return
				}
				if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
					time.Sleep(d)
				}
			}
			conn, err := net.Dial("udp", cfg.Target)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			record := func(rcode dnswire.RCode) {
				answered.Add(1)
				mu.Lock()
				st.ByRCode[rcode]++
				mu.Unlock()
			}
			if cfg.Batch > 1 {
				if err := stubWorkerBatched(conn.(*net.UDPConn), cfg, n, packQuery, pace,
					&sent, &timeouts, record); err != nil {
					errs <- err
				}
				return
			}
			buf := make([]byte, 1<<16)
			for i := 0; i < n; i++ {
				pace(i)
				wire, id, err := packQuery(i)
				if err != nil {
					errs <- err
					return
				}
				if _, err := conn.Write(wire); err != nil {
					errs <- err
					return
				}
				sent.Add(1)
				conn.SetReadDeadline(time.Now().Add(cfg.Timeout))
				rcode, ok := awaitAnswer(conn, buf, id)
				if !ok {
					timeouts.Add(1)
					continue
				}
				record(rcode)
			}
		}(w, n)
	}
	wg.Wait()
	close(errs)
	st.Elapsed = time.Since(start)
	st.Sent = sent.Load()
	st.Answered = answered.Load()
	st.Timeouts = timeouts.Load()
	if err := <-errs; err != nil {
		return st, err
	}
	return st, nil
}

// stubWorkerBatched runs one worker's share of the load through a
// ClientBatch: windows of up to cfg.Batch queries leave in one sendmmsg,
// then answers drain in batched recvmmsg calls until every ID in the
// window is matched or the window's deadline hits. Unmatched IDs count
// as timeouts, exactly like the synchronous stub's per-query deadline.
func stubWorkerBatched(conn *net.UDPConn, cfg StubLoadConfig, n int,
	packQuery func(int) ([]byte, uint16, error), pace func(int),
	sent, timeouts *atomic.Uint64, record func(dnswire.RCode)) error {
	cb, err := udpengine.NewClientBatch(conn, cfg.Batch, 4096)
	if err != nil {
		return err
	}
	if cfg.GSO {
		cb.EnableGSO() // best-effort: refusal keeps the plain batched sender
	}
	pending := make(map[uint16]struct{}, cfg.Batch)
	for i := 0; i < n; i += cfg.Batch {
		window := min(cfg.Batch, n-i)
		for j := 0; j < window; j++ {
			pace(i + j)
			wire, id, err := packQuery(i + j)
			if err != nil {
				return err
			}
			if err := cb.Queue(wire); err != nil {
				return err
			}
			sent.Add(1)
			pending[id] = struct{}{}
		}
		if err := cb.Flush(); err != nil {
			return err
		}
		conn.SetReadDeadline(time.Now().Add(cfg.Timeout))
		for len(pending) > 0 {
			pkts, err := cb.Recv()
			if err != nil {
				break // window deadline: leftovers are timeouts
			}
			for _, pkt := range pkts {
				if len(pkt) < dnswire.HeaderLen {
					continue
				}
				id := uint16(pkt[0])<<8 | uint16(pkt[1])
				if _, ok := pending[id]; !ok {
					continue // stray from an earlier window
				}
				delete(pending, id)
				record(dnswire.RCode(pkt[3] & 0xF))
			}
		}
		timeouts.Add(uint64(len(pending)))
		clear(pending)
	}
	return nil
}

// awaitAnswer reads datagrams until the matching ID arrives (stray or
// late answers from earlier timeouts are skipped) or the deadline hits.
func awaitAnswer(conn net.Conn, buf []byte, id uint16) (dnswire.RCode, bool) {
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return 0, false
		}
		if n < dnswire.HeaderLen {
			continue
		}
		if uint16(buf[0])<<8|uint16(buf[1]) != id {
			continue
		}
		return dnswire.RCode(buf[3] & 0xF), true
	}
}
