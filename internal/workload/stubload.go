package workload

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dnscentral/internal/dnswire"
	"dnscentral/internal/stats"
)

// StubLoadConfig shapes a synthetic stub population firing queries at a
// recursive resolver: the Zipf-ranked name popularity the paper observes
// in real client traffic is exactly what gives a cache tier its high hit
// rate, so the generator reproduces it deterministically.
type StubLoadConfig struct {
	// Target is the recursive resolver's UDP address.
	Target string
	// Zone is the origin names are drawn under ("nl" → "www.d<rank>.nl.").
	Zone string
	// Names is the popularity-ranked name universe size (default 1000).
	Names int
	// Queries is the total number of queries to send (default 10000).
	Queries int
	// Skew is the Zipf exponent (default 1.0, near-harmonic).
	Skew float64
	// Workers are concurrent stub clients, each with its own socket and
	// derived PRNG stream (default 4).
	Workers int
	// EDNSSize advertised by the stubs; 0 sends plain queries.
	EDNSSize uint16
	// Timeout per exchange (default 3s).
	Timeout time.Duration
	// Seed makes runs reproducible; worker i uses Seed+i so the drawn
	// rank sequence is independent of scheduling.
	Seed int64
	// Attack switches the generator from the benign Zipf stream to an
	// attack pattern. "watertorture" sends random never-repeating
	// names — every query a guaranteed cache miss, the classic
	// random-subdomain flood. Empty means benign.
	Attack string
	// AttackVictim selects the flood's target. 0 (the default) aims at
	// the zone apex: random junk directly under <zone>, which a TLD
	// answers with NXDOMAIN — the storm the recursor's flood guard
	// keys on. A rank ≥ 1 aims under that delegated domain
	// ("w<rand>.d<victim>.<zone>."), which draws referrals instead and
	// fills the recursor cache with unique entries.
	AttackVictim int
}

func (c StubLoadConfig) withDefaults() StubLoadConfig {
	if c.Names <= 0 {
		c.Names = 1000
	}
	if c.Queries <= 0 {
		c.Queries = 10000
	}
	if c.Skew == 0 {
		c.Skew = 1.0
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 3 * time.Second
	}
	return c
}

// StubLoadStats summarizes one load run.
type StubLoadStats struct {
	Sent, Answered, Timeouts uint64
	// ByRCode counts the answers per response code.
	ByRCode map[dnswire.RCode]uint64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// QPS is the achieved answered-queries-per-second rate.
func (s StubLoadStats) QPS() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Answered) / s.Elapsed.Seconds()
}

// Format renders the stats for the CLI.
func (s StubLoadStats) Format() string {
	return fmt.Sprintf("stub load: %d sent, %d answered, %d timeouts, %.0f qps over %v",
		s.Sent, s.Answered, s.Timeouts, s.QPS(), s.Elapsed.Round(time.Millisecond))
}

// StubLoad fires the configured query stream at the target and blocks
// until every worker drains. Each worker is a synchronous stub: send,
// wait for the matching ID, next — so concurrency equals Workers, like a
// population of simple clients rather than an open-loop flood.
func StubLoad(cfg StubLoadConfig) (StubLoadStats, error) {
	cfg = cfg.withDefaults()
	st := StubLoadStats{ByRCode: make(map[dnswire.RCode]uint64)}
	var sent, answered, timeouts atomic.Uint64
	var mu sync.Mutex // guards ByRCode

	per := cfg.Queries / cfg.Workers
	extra := cfg.Queries % cfg.Workers
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		n := per
		if w < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(worker, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)))
			zipf := stats.NewZipf(rng, cfg.Skew, uint64(cfg.Names))
			conn, err := net.Dial("udp", cfg.Target)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			buf := make([]byte, 1<<16)
			for i := 0; i < n; i++ {
				var name string
				if cfg.Attack == "watertorture" {
					// Unique per draw, so the cache never helps and every
					// query costs an upstream round trip.
					if cfg.AttackVictim > 0 {
						name = fmt.Sprintf("w%08x.d%d.%s.", rng.Uint32(), cfg.AttackVictim, cfg.Zone)
					} else {
						name = fmt.Sprintf("w%08x.%s.", rng.Uint32(), cfg.Zone)
					}
				} else {
					name = fmt.Sprintf("www.d%d.%s.", zipf.Next(), cfg.Zone)
				}
				id := uint16(worker<<10) + uint16(i)
				q := dnswire.NewQuery(id, name, dnswire.TypeA)
				if cfg.EDNSSize > 0 {
					q.WithEdns(cfg.EDNSSize, false)
				}
				wire, err := q.Pack()
				if err != nil {
					errs <- err
					return
				}
				if _, err := conn.Write(wire); err != nil {
					errs <- err
					return
				}
				sent.Add(1)
				conn.SetReadDeadline(time.Now().Add(cfg.Timeout))
				rcode, ok := awaitAnswer(conn, buf, id)
				if !ok {
					timeouts.Add(1)
					continue
				}
				answered.Add(1)
				mu.Lock()
				st.ByRCode[rcode]++
				mu.Unlock()
			}
		}(w, n)
	}
	wg.Wait()
	close(errs)
	st.Elapsed = time.Since(start)
	st.Sent = sent.Load()
	st.Answered = answered.Load()
	st.Timeouts = timeouts.Load()
	if err := <-errs; err != nil {
		return st, err
	}
	return st, nil
}

// awaitAnswer reads datagrams until the matching ID arrives (stray or
// late answers from earlier timeouts are skipped) or the deadline hits.
func awaitAnswer(conn net.Conn, buf []byte, id uint16) (dnswire.RCode, bool) {
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return 0, false
		}
		if n < dnswire.HeaderLen {
			continue
		}
		if uint16(buf[0])<<8|uint16(buf[1]) != id {
			continue
		}
		return dnswire.RCode(buf[3] & 0xF), true
	}
}
