package authserver

import (
	"net"
	"testing"
	"time"

	"dnscentral/internal/dnswire"
	"dnscentral/internal/udpengine"
	"dnscentral/internal/zonedb"
)

// benchServer starts an authserver over the chosen UDP engine for the
// loopback-throughput benchmarks.
func benchServer(b *testing.B, portable, gso bool) *Server {
	b.Helper()
	z, err := zonedb.NewCcTLD("nl", 10_000, 0, 0.5, []string{"ns1.dns.nl", "ns2.dns.nl"})
	if err != nil {
		b.Fatal(err)
	}
	s, err := ListenConfig("127.0.0.1:0", NewEngine(z), ServerConfig{
		UDPBatch:    32,
		UDPSockets:  1,
		UDPPortable: portable,
		UDPGSO:      gso,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

// benchQueries pre-packs a referral-heavy query stream so the timed
// loop pays no packing cost: IDs cycle 0..window-1 to match the
// in-flight window.
func benchQueries(b *testing.B, window int) [][]byte {
	b.Helper()
	queries := make([][]byte, window)
	for i := range queries {
		q := dnswire.NewQuery(uint16(i), "www.d42.nl.", dnswire.TypeA).WithEdns(1232, false)
		wire, err := q.Pack()
		if err != nil {
			b.Fatal(err)
		}
		queries[i] = wire
	}
	return queries
}

func benchAuthserver(b *testing.B, portable, gso bool) {
	s := benchServer(b, portable, gso)
	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	uconn := conn.(*net.UDPConn)
	cb, err := udpengine.NewClientBatch(uconn, 32, 2048)
	if err != nil {
		b.Fatal(err)
	}
	if gso && !cb.EnableGSO() {
		b.Skip("UDP_SEGMENT unavailable on this kernel")
	}
	const window = 32
	queries := benchQueries(b, window)
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		n := min(window, b.N-done)
		for i := 0; i < n; i++ {
			if err := cb.Queue(queries[i]); err != nil {
				b.Fatal(err)
			}
		}
		if err := cb.Flush(); err != nil {
			b.Fatal(err)
		}
		got := 0
		uconn.SetReadDeadline(time.Now().Add(5 * time.Second))
		for got < n {
			views, err := cb.Recv()
			if err != nil {
				b.Fatalf("recv after %d/%d: %v", got, n, err)
			}
			got += len(views)
		}
		done += n
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "resp/s")
}

// BenchmarkAuthserverBatched is the headline number: full DNS serving
// (unpack → engine → AppendResponse) over the recvmmsg/sendmmsg engine,
// loopback round trips per second.
func BenchmarkAuthserverBatched(b *testing.B) { benchAuthserver(b, false, false) }

// BenchmarkAuthserverPortable is the pre-batching baseline on the same
// hardware: identical serving path over the one-datagram-per-syscall
// loop.
func BenchmarkAuthserverPortable(b *testing.B) { benchAuthserver(b, true, false) }

// BenchmarkAuthserverGSO layers segmentation offload on the batched
// path: the 32-query windows arrive as GRO-coalesced payloads and the
// equal-size response runs leave as UDP_SEGMENT super-datagrams, both
// directions one kernel stack traversal per run instead of per packet.
func BenchmarkAuthserverGSO(b *testing.B) { benchAuthserver(b, false, true) }
