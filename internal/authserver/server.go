package authserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnscentral/internal/dnswire"
	"dnscentral/internal/telemetry"
	"dnscentral/internal/udpengine"
)

// ServerConfig tunes the transport hardening knobs.
type ServerConfig struct {
	// TCPIdleTimeout is how long an idle TCP connection may sit between
	// messages before the server hangs up (default 10s).
	TCPIdleTimeout time.Duration
	// MaxTCPConns caps concurrently served TCP connections; excess
	// connections are accepted and immediately closed so clients see a
	// fast reset instead of a hang (default 128, negative = unlimited).
	MaxTCPConns int
	// UDPBatch is the datagrams-per-syscall budget of the batched UDP
	// engine (default 32; see internal/udpengine).
	UDPBatch int
	// UDPSockets is the UDP receive parallelism: SO_REUSEPORT sockets on
	// Linux, reader goroutines on the portable fallback (default
	// GOMAXPROCS capped at 8).
	UDPSockets int
	// UDPPortable forces the one-datagram-per-syscall portable engine —
	// the pre-batching baseline, kept for debugging and benchmarking.
	UDPPortable bool
	// UDPGSO enables segmentation offload on the batched engine:
	// equal-destination response runs coalesce into UDP_SEGMENT
	// super-datagrams and GRO-coalesced receives are split back into
	// per-query packets. Probed at bind with automatic fallback.
	UDPGSO bool
	// UDPPin pins each socket loop to a CPU core and steers reuseport
	// delivery to the receiving core's socket (Linux batched engine).
	UDPPin bool
	// Telemetry, when set, publishes live transport metrics (datagram
	// and connection counters, the active-connection gauge, the
	// udpengine_* socket-plane family) on the registry; pair it with
	// WithTelemetry on the Engine for the RCODE mix. Nil keeps the
	// serve loops telemetry-free.
	Telemetry *telemetry.Registry
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.TCPIdleTimeout <= 0 {
		c.TCPIdleTimeout = 10 * time.Second
	}
	if c.MaxTCPConns == 0 {
		c.MaxTCPConns = 128
	}
	return c
}

// Server binds an Engine to real UDP and TCP sockets, speaking standard
// DNS transport framing (RFC 1035 §4.2: two-byte length prefix on TCP).
// The UDP side rides the batched socket engine (internal/udpengine):
// recvmmsg/sendmmsg with SO_REUSEPORT sharding on Linux, the classic
// one-datagram loop elsewhere; responses are appended straight into the
// engine's write arena via AppendResponse, so the per-datagram response
// allocation the old PackResponse path paid is gone.
type Server struct {
	engine *Engine
	cfg    ServerConfig

	udp udpengine.Engine
	tcp *net.TCPListener

	wg     sync.WaitGroup
	closed chan struct{}

	mu    sync.Mutex
	conns map[*net.TCPConn]struct{}

	tcpRejected atomic.Uint64
	panics      atomic.Uint64

	// Telemetry mirrors (nil ⇒ no-ops).
	tmDatagrams *telemetry.Counter
	tmTCPConns  *telemetry.Counter

	// Logf, when non-nil, receives per-error diagnostics.
	Logf func(format string, args ...any)
}

// Listen starts a server on addr (e.g. "127.0.0.1:0" — UDP and TCP bind the
// same port) with default hardening limits. The returned server is
// already serving.
func Listen(addr string, engine *Engine) (*Server, error) {
	return ListenConfig(addr, engine, ServerConfig{})
}

// ListenConfig starts a server with explicit transport limits.
func ListenConfig(addr string, engine *Engine, cfg ServerConfig) (*Server, error) {
	tcpLn, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("authserver: tcp listen: %w", err)
	}
	s := &Server{
		engine: engine,
		cfg:    cfg.withDefaults(),
		tcp:    tcpLn.(*net.TCPListener),
		closed: make(chan struct{}),
		conns:  make(map[*net.TCPConn]struct{}),
	}
	if reg := s.cfg.Telemetry; reg != nil {
		s.tmDatagrams = reg.Counter("authserver_datagrams_total")
		s.tmTCPConns = reg.Counter("authserver_tcp_conns_total")
		reg.CounterFunc("authserver_tcp_rejected_total", s.tcpRejected.Load)
		reg.CounterFunc("authserver_panics_total", s.panics.Load)
		reg.GaugeFunc("authserver_active_tcp_conns", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(len(s.conns))
		})
	}
	// Bind UDP to the exact port TCP got (relevant for addr with port 0)
	// through the batched socket engine.
	tcpAddr := tcpLn.Addr().(*net.TCPAddr)
	udpAddr := net.JoinHostPort(tcpAddr.IP.String(), fmt.Sprint(tcpAddr.Port))
	s.udp, err = udpengine.Listen(udpAddr, s.handleUDPPacket, udpengine.Config{
		Batch:     s.cfg.UDPBatch,
		Sockets:   s.cfg.UDPSockets,
		Portable:  s.cfg.UDPPortable,
		GSO:       s.cfg.UDPGSO,
		PinCPUs:   s.cfg.UDPPin,
		Telemetry: s.cfg.Telemetry,
		Logf:      s.logf,
	})
	if err != nil {
		tcpLn.Close()
		return nil, fmt.Errorf("authserver: udp listen: %w", err)
	}
	s.wg.Add(1)
	go s.serveTCP()
	return s, nil
}

// Addr returns the bound address (same port for UDP and TCP).
func (s *Server) Addr() netip.AddrPort {
	return s.udp.Addr()
}

// Engine returns the underlying engine.
func (s *Server) Engine() *Engine { return s.engine }

// Close stops serving: it closes the listeners, actively severs
// in-flight TCP connections (so shutdown never waits out an idle
// timeout), and waits for every handler to drain.
func (s *Server) Close() error {
	close(s.closed)
	s.udp.Close()
	s.tcp.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// TCPRejected counts connections turned away by the MaxTCPConns cap.
func (s *Server) TCPRejected() uint64 { return s.tcpRejected.Load() }

// Panics counts handler panics recovered instead of crashing the server.
func (s *Server) Panics() uint64 { return s.panics.Load() }

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// handleUDPPacket serves one datagram from the engine's receive arena,
// appending the response into the engine's write arena (resp) so the
// fresh-buffer-per-response allocation of the old PackResponse path is
// gone. A panic in the engine poisons only that datagram, not the
// socket loop.
func (s *Server) handleUDPPacket(shard int, pkt []byte, raddr netip.AddrPort, resp []byte) (out []byte) {
	defer func() {
		if p := recover(); p != nil {
			out = nil
			s.panics.Add(1)
			s.logf("udp handler panic from %s: %v", raddr, p)
		}
	}()
	s.tmDatagrams.Shard(shard).Inc()
	q, err := dnswire.Unpack(pkt)
	if err != nil {
		s.logf("udp parse from %s: %v", raddr, err)
		return nil
	}
	r := s.engine.Handle(q, raddr.Addr(), false)
	if r == nil {
		return nil // RRL drop
	}
	out, err = AppendResponse(resp, r, q, false)
	if err != nil {
		s.logf("udp pack: %v", err)
		return nil
	}
	return out
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.AcceptTCP()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logf("tcp accept: %v", err)
				continue
			}
		}
		if !s.trackConn(conn) {
			s.tcpRejected.Add(1)
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go s.serveTCPConn(conn)
	}
}

// trackConn registers a connection against the concurrency cap; false
// means the cap is hit (or the server is closing) and the conn must be
// turned away.
func (s *Server) trackConn(conn *net.TCPConn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.closed:
		return false
	default:
	}
	if s.cfg.MaxTCPConns > 0 && len(s.conns) >= s.cfg.MaxTCPConns {
		return false
	}
	s.conns[conn] = struct{}{}
	s.tmTCPConns.Inc()
	return true
}

func (s *Server) untrackConn(conn *net.TCPConn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) serveTCPConn(conn *net.TCPConn) {
	defer s.wg.Done()
	defer s.untrackConn(conn)
	defer conn.Close()
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			s.logf("tcp handler panic from %s: %v", conn.RemoteAddr(), p)
		}
	}()
	raddr := conn.RemoteAddr().(*net.TCPAddr).AddrPort()
	for {
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.TCPIdleTimeout))
		msg, err := ReadTCPMessage(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.logf("tcp read from %s: %v", raddr, err)
			}
			return
		}
		q, err := dnswire.Unpack(msg)
		if err != nil {
			s.logf("tcp parse from %s: %v", raddr, err)
			return
		}
		r := s.engine.Handle(q, raddr.Addr(), true)
		if r == nil {
			return
		}
		out, err := PackResponse(r, q, true)
		if err != nil {
			s.logf("tcp pack: %v", err)
			return
		}
		if err := WriteTCPMessage(conn, out); err != nil {
			s.logf("tcp write to %s: %v", raddr, err)
			return
		}
	}
}

// ReadTCPMessage reads one length-prefixed DNS message.
func ReadTCPMessage(r io.Reader) ([]byte, error) {
	var lenb [2]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenb[:])
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, fmt.Errorf("authserver: short TCP message: %w", err)
	}
	return msg, nil
}

// WriteTCPMessage writes one length-prefixed DNS message.
func WriteTCPMessage(w io.Writer, msg []byte) error {
	if len(msg) > 0xFFFF {
		return fmt.Errorf("authserver: message %d bytes exceeds TCP framing", len(msg))
	}
	var lenb [2]byte
	binary.BigEndian.PutUint16(lenb[:], uint16(len(msg)))
	if _, err := w.Write(lenb[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}
