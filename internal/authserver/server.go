package authserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"dnscentral/internal/dnswire"
)

// Server binds an Engine to real UDP and TCP sockets, speaking standard
// DNS transport framing (RFC 1035 §4.2: two-byte length prefix on TCP).
type Server struct {
	engine *Engine

	udp *net.UDPConn
	tcp *net.TCPListener

	wg     sync.WaitGroup
	closed chan struct{}

	// Logf, when non-nil, receives per-error diagnostics.
	Logf func(format string, args ...any)
}

// Listen starts a server on addr (e.g. "127.0.0.1:0" — UDP and TCP bind the
// same port). The returned server is already serving.
func Listen(addr string, engine *Engine) (*Server, error) {
	tcpLn, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("authserver: tcp listen: %w", err)
	}
	// Bind UDP to the exact port TCP got (relevant for addr with port 0).
	udpConn, err := net.ListenUDP("udp", &net.UDPAddr{
		IP:   tcpLn.Addr().(*net.TCPAddr).IP,
		Port: tcpLn.Addr().(*net.TCPAddr).Port,
	})
	if err != nil {
		tcpLn.Close()
		return nil, fmt.Errorf("authserver: udp listen: %w", err)
	}
	s := &Server{
		engine: engine,
		udp:    udpConn,
		tcp:    tcpLn.(*net.TCPListener),
		closed: make(chan struct{}),
	}
	s.wg.Add(2)
	go s.serveUDP()
	go s.serveTCP()
	return s, nil
}

// Addr returns the bound address (same port for UDP and TCP).
func (s *Server) Addr() netip.AddrPort {
	return s.udp.LocalAddr().(*net.UDPAddr).AddrPort()
}

// Engine returns the underlying engine.
func (s *Server) Engine() *Engine { return s.engine }

// Close stops serving and waits for the loops to exit.
func (s *Server) Close() error {
	close(s.closed)
	s.udp.Close()
	s.tcp.Close()
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) serveUDP() {
	defer s.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, raddr, err := s.udp.ReadFromUDPAddrPort(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logf("udp read: %v", err)
				continue
			}
		}
		q, err := dnswire.Unpack(buf[:n])
		if err != nil {
			s.logf("udp parse from %s: %v", raddr, err)
			continue
		}
		r := s.engine.Handle(q, raddr.Addr(), false)
		if r == nil {
			continue // RRL drop
		}
		out, err := PackResponse(r, q, false)
		if err != nil {
			s.logf("udp pack: %v", err)
			continue
		}
		if _, err := s.udp.WriteToUDPAddrPort(out, raddr); err != nil {
			s.logf("udp write to %s: %v", raddr, err)
		}
	}
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.AcceptTCP()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logf("tcp accept: %v", err)
				continue
			}
		}
		s.wg.Add(1)
		go s.serveTCPConn(conn)
	}
}

func (s *Server) serveTCPConn(conn *net.TCPConn) {
	defer s.wg.Done()
	defer conn.Close()
	raddr := conn.RemoteAddr().(*net.TCPAddr).AddrPort()
	for {
		_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		msg, err := ReadTCPMessage(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.logf("tcp read from %s: %v", raddr, err)
			}
			return
		}
		q, err := dnswire.Unpack(msg)
		if err != nil {
			s.logf("tcp parse from %s: %v", raddr, err)
			return
		}
		r := s.engine.Handle(q, raddr.Addr(), true)
		if r == nil {
			return
		}
		out, err := PackResponse(r, q, true)
		if err != nil {
			s.logf("tcp pack: %v", err)
			return
		}
		if err := WriteTCPMessage(conn, out); err != nil {
			s.logf("tcp write to %s: %v", raddr, err)
			return
		}
	}
}

// ReadTCPMessage reads one length-prefixed DNS message.
func ReadTCPMessage(r io.Reader) ([]byte, error) {
	var lenb [2]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenb[:])
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, fmt.Errorf("authserver: short TCP message: %w", err)
	}
	return msg, nil
}

// WriteTCPMessage writes one length-prefixed DNS message.
func WriteTCPMessage(w io.Writer, msg []byte) error {
	if len(msg) > 0xFFFF {
		return fmt.Errorf("authserver: message %d bytes exceeds TCP framing", len(msg))
	}
	var lenb [2]byte
	binary.BigEndian.PutUint16(lenb[:], uint16(len(msg)))
	if _, err := w.Write(lenb[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}
