package authserver

import (
	"bytes"
	"testing"

	"dnscentral/internal/dnswire"
	"dnscentral/internal/zonedb"
)

func nsec3Engine(t *testing.T) *Engine {
	t.Helper()
	z, err := zonedb.NewCcTLD("nl", 1000, 0, 0.55, []string{"ns1.dns.nl"})
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(z, WithNSEC3(NSEC3Config{Salt: []byte{0xAB, 0xCD}, Iterations: 5}))
}

func TestNSEC3DenialShape(t *testing.T) {
	e := nsec3Engine(t)
	r := handle(t, e, "qqjunk.nl.", dnswire.TypeA)
	if r.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %s", r.Header.RCode)
	}
	var nsec3s []dnswire.RR
	for _, rr := range r.Authority {
		if rr.Data.Type() == dnswire.TypeNSEC3 {
			nsec3s = append(nsec3s, rr)
		}
		if rr.Data.Type() == dnswire.TypeNSEC {
			t.Error("plain NSEC in an NSEC3 zone")
		}
	}
	if len(nsec3s) != 2 {
		t.Fatalf("NSEC3 records = %d, want 2 (closest encloser + covering)", len(nsec3s))
	}
	// The covering record's range must bracket the qname hash.
	qHash, err := dnswire.NSEC3Hash("qqjunk.nl.", []byte{0xAB, 0xCD}, 5)
	if err != nil {
		t.Fatal(err)
	}
	covered := false
	for _, rr := range nsec3s {
		d := rr.Data.(dnswire.NSEC3Data)
		ownerLabel := dnswire.SplitLabels(rr.Name)[0]
		if ownerLabel < dnswire.Base32Hex(qHash) && bytes.Compare(qHash, d.NextHashed) < 0 {
			covered = true
		}
		if d.Iterations != 5 || d.HashAlgo != 1 {
			t.Errorf("NSEC3 params: %+v", d)
		}
	}
	if !covered {
		t.Error("no NSEC3 covers the junk name's hash")
	}
}

func TestNSEC3DenialStillTruncatesAt512(t *testing.T) {
	e := nsec3Engine(t)
	q := dnswire.NewQuery(1, "qqjunk.nl.", dnswire.TypeA).WithEdns(512, true)
	r := e.Handle(q, testClient, false)
	out, err := PackResponse(r, q, false)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dnswire.Unpack(out)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Header.Truncated {
		t.Error("NSEC3 NXDOMAIN fits in 512B — §4.4 truncation lost")
	}
}

func TestNSEC3PARAMAtApex(t *testing.T) {
	e := nsec3Engine(t)
	r := handle(t, e, "nl.", dnswire.TypeNSEC3PARAM)
	if len(r.Answers) != 1 || r.Answers[0].Data.Type() != dnswire.TypeNSEC3PARAM {
		t.Fatalf("answers: %v", r.Answers)
	}
	p := r.Answers[0].Data.(dnswire.NSEC3PARAMData)
	if p.Iterations != 5 || len(p.Salt) != 2 {
		t.Fatalf("params: %+v", p)
	}
	// An NSEC-mode engine answers NODATA instead.
	plain := nlEngine(t)
	r = handle(t, plain, "nl.", dnswire.TypeNSEC3PARAM)
	if len(r.Answers) != 0 {
		t.Fatalf("NSEC engine returned NSEC3PARAM: %v", r.Answers)
	}
}

func TestNSEC3DeniesWithoutRevealingNames(t *testing.T) {
	e := nsec3Engine(t)
	r := handle(t, e, "secretprobe.nl.", dnswire.TypeA)
	packed, err := r.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// No registered d<rank> label may appear in the denial (zone
	// enumeration resistance — the point of NSEC3).
	if bytes.Contains(packed, []byte("\x02d0")) || bytes.Contains(packed, []byte("\x02d1")) {
		t.Error("denial leaks registered names")
	}
}
