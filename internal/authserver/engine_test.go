package authserver

import (
	"net/netip"
	"testing"
	"time"

	"dnscentral/internal/dnswire"
	"dnscentral/internal/zonedb"
)

var testClient = netip.MustParseAddr("192.0.2.99")

func nlEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	z, err := zonedb.NewCcTLD("nl", 1000, 0, 0.5, []string{"ns1.dns.nl", "ns2.dns.nl"})
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(z, opts...)
}

func nzEngine(t *testing.T) *Engine {
	t.Helper()
	z, err := zonedb.NewCcTLD("nz", 140, 570, 0.3, []string{"ns1.dns.net.nz"})
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(z)
}

func handle(t *testing.T, e *Engine, name string, typ dnswire.Type) *dnswire.Message {
	t.Helper()
	q := dnswire.NewQuery(1, name, typ).WithEdns(1232, true)
	r := e.Handle(q, testClient, false)
	if r == nil {
		t.Fatalf("query %s %s dropped", name, typ)
	}
	return r
}

func TestApexSOA(t *testing.T) {
	e := nlEngine(t)
	r := handle(t, e, "nl.", dnswire.TypeSOA)
	if r.Header.RCode != dnswire.RCodeNoError || !r.Header.Authoritative {
		t.Fatalf("header: %+v", r.Header)
	}
	if len(r.Answers) != 1 || r.Answers[0].Data.Type() != dnswire.TypeSOA {
		t.Fatalf("answers: %v", r.Answers)
	}
}

func TestApexNSWithGlue(t *testing.T) {
	e := nlEngine(t)
	r := handle(t, e, "nl.", dnswire.TypeNS)
	if len(r.Answers) != 2 {
		t.Fatalf("answers: %v", r.Answers)
	}
	// Glue: one A + one AAAA per server.
	if len(r.Additional) != 4 {
		t.Fatalf("additional: %v", r.Additional)
	}
}

func TestApexDNSKEY(t *testing.T) {
	e := nlEngine(t)
	r := handle(t, e, "nl.", dnswire.TypeDNSKEY)
	// DO bit is set by the EDNS in handle(), so the DNSKEY comes signed.
	if len(r.Answers) != 2 || r.Answers[0].Data.Type() != dnswire.TypeDNSKEY ||
		r.Answers[1].Data.Type() != dnswire.TypeRRSIG {
		t.Fatalf("answers: %v", r.Answers)
	}
	// Without DO, no signature.
	q := dnswire.NewQuery(4, "nl.", dnswire.TypeDNSKEY)
	plain := e.Handle(q, testClient, false)
	if len(plain.Answers) != 1 {
		t.Fatalf("non-DO answers: %v", plain.Answers)
	}
}

func TestApexNoData(t *testing.T) {
	e := nlEngine(t)
	r := handle(t, e, "nl.", dnswire.TypeMX)
	if r.Header.RCode != dnswire.RCodeNoError || len(r.Answers) != 0 {
		t.Fatalf("NODATA expected: %+v", r)
	}
	if len(r.Authority) != 1 || r.Authority[0].Data.Type() != dnswire.TypeSOA {
		t.Fatalf("authority: %v", r.Authority)
	}
}

func TestReferralForRegisteredDomain(t *testing.T) {
	e := nlEngine(t)
	r := handle(t, e, "www.d7.nl.", dnswire.TypeA)
	if r.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("rcode = %s", r.Header.RCode)
	}
	if r.Header.Authoritative {
		t.Error("referral must not set AA")
	}
	if len(r.Answers) != 0 {
		t.Errorf("referral has answers: %v", r.Answers)
	}
	nsCount := 0
	for _, rr := range r.Authority {
		if rr.Data.Type() == dnswire.TypeNS {
			nsCount++
			if rr.Name != "d7.nl." {
				t.Errorf("NS owner = %s", rr.Name)
			}
		}
	}
	if nsCount != 3 {
		t.Errorf("NS count = %d, want 3", nsCount)
	}
}

func TestReferralIncludesDSForSignedWithDO(t *testing.T) {
	e := nlEngine(t)
	zone := e.Zone()
	// Find a signed and an unsigned domain.
	var signed, unsigned string
	for rank := 0; rank < 1000 && (signed == "" || unsigned == ""); rank++ {
		name, _ := zone.DomainName(rank)
		if zone.IsSigned(name) {
			if signed == "" {
				signed = name
			}
		} else if unsigned == "" {
			unsigned = name
		}
	}
	r := handle(t, e, signed, dnswire.TypeA)
	foundDS := false
	for _, rr := range r.Authority {
		if rr.Data.Type() == dnswire.TypeDS {
			foundDS = true
		}
	}
	if !foundDS {
		t.Errorf("signed referral for %s lacks DS", signed)
	}
	r = handle(t, e, unsigned, dnswire.TypeA)
	for _, rr := range r.Authority {
		if rr.Data.Type() == dnswire.TypeDS {
			t.Errorf("unsigned referral for %s has DS", unsigned)
		}
	}
	// Without DO, no DS even for signed.
	q := dnswire.NewQuery(2, signed, dnswire.TypeA) // no EDNS at all
	r = e.Handle(q, testClient, false)
	for _, rr := range r.Authority {
		if rr.Data.Type() == dnswire.TypeDS {
			t.Error("DS included without DO bit")
		}
	}
}

func TestReferralGlueOnlyForInZoneHosts(t *testing.T) {
	e := nlEngine(t)
	zone := e.Zone()
	for rank := 0; rank < 50; rank++ {
		name, _ := zone.DomainName(rank)
		hosts := zone.DelegationNS(name)
		r := handle(t, e, name, dnswire.TypeA)
		inZone := dnswire.IsSubdomain(hosts[0], name)
		if inZone && len(r.Additional) == 0 {
			t.Errorf("in-zone NS for %s missing glue", name)
		}
		if !inZone && len(r.Additional) != 0 {
			t.Errorf("out-of-zone NS for %s has glue", name)
		}
	}
}

func TestDSQueryAnsweredAuthoritatively(t *testing.T) {
	e := nlEngine(t)
	zone := e.Zone()
	var signed string
	for rank := 0; rank < 1000; rank++ {
		name, _ := zone.DomainName(rank)
		if zone.IsSigned(name) {
			signed = name
			break
		}
	}
	r := handle(t, e, signed, dnswire.TypeDS)
	if !r.Header.Authoritative {
		t.Error("DS answer must set AA (parent-side data)")
	}
	// Four DS records plus their RRSIG (DO was set).
	if len(r.Answers) != 5 || r.Answers[0].Data.Type() != dnswire.TypeDS ||
		r.Answers[4].Data.Type() != dnswire.TypeRRSIG {
		t.Fatalf("DS answers: %v", r.Answers)
	}
	st := e.Stats()
	if st.DSAnswers == 0 {
		t.Error("DSAnswers counter not bumped")
	}
}

func TestNXDomain(t *testing.T) {
	e := nlEngine(t)
	r := handle(t, e, "no-such-domain.nl.", dnswire.TypeA)
	if r.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %s", r.Header.RCode)
	}
	// DO was set, so the negative answer carries denial-of-existence
	// records: SOA, RRSIG(SOA), NSEC, RRSIG(NSEC).
	if len(r.Authority) != 4 || r.Authority[0].Data.Type() != dnswire.TypeSOA {
		t.Fatalf("authority: %v", r.Authority)
	}
	// Without DO: bare SOA.
	q := dnswire.NewQuery(8, "no-such-domain.nl.", dnswire.TypeA)
	plain := e.Handle(q, testClient, false)
	if len(plain.Authority) != 1 {
		t.Fatalf("non-DO authority: %v", plain.Authority)
	}
	if e.Stats().NXDomain != 2 {
		t.Error("NXDomain counter")
	}
}

func TestOutOfZoneRefused(t *testing.T) {
	e := nlEngine(t)
	r := handle(t, e, "example.com.", dnswire.TypeA)
	if r.Header.RCode != dnswire.RCodeRefused {
		t.Fatalf("rcode = %s", r.Header.RCode)
	}
}

func TestChaosClassRefused(t *testing.T) {
	e := nlEngine(t)
	q := dnswire.NewQuery(3, "version.bind.", dnswire.TypeTXT)
	q.Questions[0].Class = dnswire.ClassCH
	q.Questions[0].Name = "d1.nl." // in-zone name, wrong class
	r := e.Handle(q, testClient, false)
	if r.Header.RCode != dnswire.RCodeRefused {
		t.Fatalf("rcode = %s", r.Header.RCode)
	}
}

func TestEmptyNonTerminalNoData(t *testing.T) {
	e := nzEngine(t)
	r := handle(t, e, "co.nz.", dnswire.TypeA)
	if r.Header.RCode != dnswire.RCodeNoError || len(r.Answers) != 0 {
		t.Fatalf("ENT answer: %+v", r.Header)
	}
}

func TestMalformedQueries(t *testing.T) {
	e := nlEngine(t)
	// A response message sent as a query.
	q := dnswire.NewQuery(1, "d1.nl.", dnswire.TypeA)
	q.Header.Response = true
	if r := e.Handle(q, testClient, false); r.Header.RCode != dnswire.RCodeFormErr {
		t.Errorf("response-as-query rcode = %s", r.Header.RCode)
	}
	// Unsupported opcode.
	q = dnswire.NewQuery(1, "d1.nl.", dnswire.TypeA)
	q.Header.Opcode = dnswire.OpcodeUpdate
	if r := e.Handle(q, testClient, false); r.Header.RCode != dnswire.RCodeNotImp {
		t.Errorf("update rcode = %s", r.Header.RCode)
	}
	// Zero questions.
	q = &dnswire.Message{}
	if r := e.Handle(q, testClient, false); r.Header.RCode != dnswire.RCodeFormErr {
		t.Errorf("no-question rcode = %s", r.Header.RCode)
	}
}

func TestRRLSlipsOverLimitUDP(t *testing.T) {
	now := time.Unix(0, 0)
	e := nlEngine(t,
		WithRRL(RRLConfig{RatePerSec: 1, Burst: 5, SlipEvery: 1}),
		WithClock(func() time.Time { return now }),
	)
	q := dnswire.NewQuery(1, "d1.nl.", dnswire.TypeA)
	var normal, slipped int
	for i := 0; i < 20; i++ {
		r := e.Handle(q, testClient, false)
		if r == nil {
			t.Fatal("drop with SlipEvery=1")
		}
		if r.Header.Truncated && len(r.Authority) == 0 {
			slipped++
		} else {
			normal++
		}
	}
	if normal != 5 || slipped != 15 {
		t.Errorf("normal=%d slipped=%d, want 5/15", normal, slipped)
	}
	// Advance time: bucket refills.
	now = now.Add(10 * time.Second)
	r := e.Handle(q, testClient, false)
	if r.Header.Truncated {
		t.Error("bucket did not refill")
	}
}

func TestRRLDoesNotApplyToTCP(t *testing.T) {
	e := nlEngine(t, WithRRL(RRLConfig{RatePerSec: 0.0001, Burst: 1}))
	q := dnswire.NewQuery(1, "d1.nl.", dnswire.TypeA)
	for i := 0; i < 10; i++ {
		r := e.Handle(q, testClient, true)
		if r == nil || r.Header.Truncated {
			t.Fatal("TCP query rate limited")
		}
	}
}

func TestRRLSlipEvery2Drops(t *testing.T) {
	now := time.Unix(0, 0)
	e := nlEngine(t,
		WithRRL(RRLConfig{RatePerSec: 1, Burst: 1, SlipEvery: 2}),
		WithClock(func() time.Time { return now }),
	)
	q := dnswire.NewQuery(1, "d1.nl.", dnswire.TypeA)
	_ = e.Handle(q, testClient, false) // consumes the only token
	var drops, slips int
	for i := 0; i < 10; i++ {
		if r := e.Handle(q, testClient, false); r == nil {
			drops++
		} else {
			slips++
		}
	}
	if drops != 5 || slips != 5 {
		t.Errorf("drops=%d slips=%d", drops, slips)
	}
	st := e.Stats()
	if st.RRLDrops != 5 || st.RRLSlips != 5 {
		t.Errorf("stats: %+v", st)
	}
}

func TestRRLPerClientIsolation(t *testing.T) {
	now := time.Unix(0, 0)
	e := nlEngine(t,
		WithRRL(RRLConfig{RatePerSec: 1, Burst: 1, SlipEvery: 1}),
		WithClock(func() time.Time { return now }),
	)
	q := dnswire.NewQuery(1, "d1.nl.", dnswire.TypeA)
	_ = e.Handle(q, testClient, false)
	// Exhausted for testClient, but a different client is unaffected.
	other := netip.MustParseAddr("198.51.100.50")
	if r := e.Handle(q, other, false); r.Header.Truncated {
		t.Error("RRL leaked across clients")
	}
}

func TestGlueAddrsStableAndDistinct(t *testing.T) {
	a4, a6 := GlueAddrs("ns1.d1.nl.")
	b4, b6 := GlueAddrs("ns1.d1.nl.")
	if a4 != b4 || a6 != b6 {
		t.Error("glue not deterministic")
	}
	c4, _ := GlueAddrs("ns2.d1.nl.")
	if a4 == c4 {
		t.Error("distinct hosts share glue v4 (hash collision on trivial input)")
	}
	if !a4.Is4() || !a6.Is6() {
		t.Error("glue families wrong")
	}
}

func TestPackResponseTruncatesUDP(t *testing.T) {
	e := nlEngine(t)
	q := dnswire.NewQuery(9, "nl.", dnswire.TypeNS) // no EDNS: 512 limit
	r := e.Handle(q, testClient, false)
	// Inflate the response beyond 512 with extra additional records.
	for i := 0; i < 40; i++ {
		v4, _ := GlueAddrs("ns1.dns.nl.")
		r.Additional = append(r.Additional, dnswire.RR{
			Name: "ns1.dns.nl.", Class: dnswire.ClassIN, TTL: 1,
			Data: dnswire.AData{Addr: v4},
		})
	}
	out, err := PackResponse(r, q, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > 512 {
		t.Fatalf("UDP response %d bytes", len(out))
	}
	parsed, err := dnswire.Unpack(out)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Header.Truncated {
		t.Error("TC not set")
	}
	// Same response via TCP is complete.
	out, err = PackResponse(r, q, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) <= 512 {
		t.Error("TCP response unexpectedly small")
	}
}

func TestStatsCounters(t *testing.T) {
	e := nlEngine(t)
	handle(t, e, "d1.nl.", dnswire.TypeA)        // referral
	handle(t, e, "nope.nl.", dnswire.TypeA)      // nxdomain
	handle(t, e, "nl.", dnswire.TypeSOA)         // apex
	handle(t, e, "example.org.", dnswire.TypeA)  // refused
	st := e.Stats()
	if st.Queries != 4 || st.Referrals != 1 || st.NXDomain != 1 || st.ApexAnswers != 1 || st.Refused != 1 {
		t.Errorf("stats: %+v", st)
	}
}
