// Package authserver implements an authoritative DNS server for the
// zonedb zones: parent-side referrals with glue and DS records, apex
// SOA/NS/DNSKEY service, NXDOMAIN with negative-caching SOA, EDNS(0)-driven
// UDP truncation, and response rate limiting (RRL) that answers over-limit
// UDP clients with TC=1 so genuine resolvers re-ask over TCP — the paper's
// §4.4 explanation for one source of cloud TCP traffic.
//
// The query-answering logic lives in Engine, which is transport-free and
// directly usable in tests and simulations; Server (see server.go) binds an
// Engine to real UDP and TCP listeners.
package authserver

import (
	"hash/fnv"
	"net/netip"
	"strings"
	"sync"
	"time"

	"dnscentral/internal/dnswire"
	"dnscentral/internal/telemetry"
	"dnscentral/internal/zonedb"
)

// RRLConfig configures response rate limiting.
type RRLConfig struct {
	// RatePerSec is the sustained per-client responses per second;
	// 0 disables RRL.
	RatePerSec float64
	// Burst is the bucket depth.
	Burst float64
	// SlipEvery makes every n-th over-limit response a TC=1 "slip" instead
	// of a silent drop; 1 means always slip (our default, so simulated
	// resolvers always learn to retry over TCP).
	SlipEvery int
}

// Engine answers queries for one zone.
type Engine struct {
	zone         *zonedb.Zone
	rrl          RRLConfig
	now          func() time.Time
	cookieSecret uint64
	nsec3        *NSEC3Config

	mu      sync.Mutex
	buckets map[netip.Addr]*bucket

	statsMu sync.Mutex
	stats   Stats
}

// Stats counts engine activity.
type Stats struct {
	Queries     uint64
	Referrals   uint64
	NXDomain    uint64
	Refused     uint64
	FormErr     uint64
	NotImp      uint64
	RRLSlips    uint64
	RRLDrops    uint64
	CookieSeen  uint64
	CookieValid uint64
	ApexAnswers uint64
	DSAnswers   uint64
}

type bucket struct {
	tokens float64
	last   time.Time
	slips  int
}

// Option configures an Engine.
type Option func(*Engine)

// WithRRL enables response rate limiting.
func WithRRL(cfg RRLConfig) Option {
	return func(e *Engine) {
		if cfg.SlipEvery <= 0 {
			cfg.SlipEvery = 1
		}
		e.rrl = cfg
	}
}

// NSEC3Config selects RFC 5155 hashed denial of existence.
type NSEC3Config struct {
	// Salt and Iterations parameterize the hash; production TLDs of the
	// study period commonly used a short salt and 0–10 iterations.
	Salt       []byte
	Iterations uint16
}

// WithNSEC3 switches negative answers from NSEC to NSEC3 denial, matching
// how .nl and most signed TLDs actually answer (hashed owner names keep
// the zone unenumerable). NSEC3 denial is slightly larger than NSEC, so
// the §4.4 truncation behavior is preserved.
func WithNSEC3(cfg NSEC3Config) Option {
	return func(e *Engine) { e.nsec3 = &cfg }
}

// WithCookieSecret sets the RFC 7873 server-cookie secret (a random
// default is fine for tests; production would rotate it).
func WithCookieSecret(secret uint64) Option {
	return func(e *Engine) { e.cookieSecret = secret }
}

// WithClock injects a time source (tests and simulation).
func WithClock(now func() time.Time) Option {
	return func(e *Engine) { e.now = now }
}

// WithTelemetry publishes the engine's cumulative counters — query
// volume, the RCODE mix, RRL activity, cookie validation — on reg as
// exposition-time CounterFuncs reading the existing Stats, so the answer
// path itself carries zero extra work whether telemetry is on or off.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(e *Engine) {
		if reg == nil {
			return
		}
		field := func(name string, read func(Stats) uint64) {
			reg.CounterFunc(name, func() uint64 { return read(e.Stats()) })
		}
		field("authserver_queries_total", func(s Stats) uint64 { return s.Queries })
		field("authserver_referrals_total", func(s Stats) uint64 { return s.Referrals })
		field("authserver_rrl_drops_total", func(s Stats) uint64 { return s.RRLDrops })
		field("authserver_rrl_slips_total", func(s Stats) uint64 { return s.RRLSlips })
		field("authserver_cookies_seen_total", func(s Stats) uint64 { return s.CookieSeen })
		field("authserver_cookies_valid_total", func(s Stats) uint64 { return s.CookieValid })
		field(`authserver_rcode_total{rcode="NOERROR"}`, func(s Stats) uint64 {
			// Everything answered that is not an error or an RRL drop:
			// referrals, apex/DS answers, and NODATA responses.
			return s.Queries - s.NXDomain - s.Refused - s.FormErr - s.NotImp - s.RRLDrops
		})
		field(`authserver_rcode_total{rcode="NXDOMAIN"}`, func(s Stats) uint64 { return s.NXDomain })
		field(`authserver_rcode_total{rcode="REFUSED"}`, func(s Stats) uint64 { return s.Refused })
		field(`authserver_rcode_total{rcode="FORMERR"}`, func(s Stats) uint64 { return s.FormErr })
		field(`authserver_rcode_total{rcode="NOTIMP"}`, func(s Stats) uint64 { return s.NotImp })
	}
}

// NewEngine builds an engine for zone.
func NewEngine(zone *zonedb.Zone, opts ...Option) *Engine {
	e := &Engine{
		zone:         zone,
		now:          time.Now,
		cookieSecret: 0x5f3759df5f3759df,
		buckets:      make(map[netip.Addr]*bucket),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Zone returns the zone the engine serves.
func (e *Engine) Zone() *zonedb.Zone { return e.zone }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.stats
}

// Handle answers one query. client is the source address (used for RRL)
// and tcp reports the transport (RRL and truncation only apply to UDP).
// A nil return means "drop silently" (RRL decided not even to slip).
func (e *Engine) Handle(q *dnswire.Message, client netip.Addr, tcp bool) *dnswire.Message {
	e.statsMu.Lock()
	e.stats.Queries++
	e.statsMu.Unlock()

	if q.Header.Response || len(q.Questions) != 1 {
		e.count(func(s *Stats) { s.FormErr++ })
		r := q.Reply()
		r.Header.RCode = dnswire.RCodeFormErr
		return r
	}
	if q.Header.Opcode != dnswire.OpcodeQuery {
		e.count(func(s *Stats) { s.NotImp++ })
		r := q.Reply()
		r.Header.RCode = dnswire.RCodeNotImp
		return r
	}

	// DNS cookies (RFC 7873): a valid server cookie proves the source
	// address is not spoofed, so such clients bypass RRL.
	cookie := e.parseCookie(q, client)
	if cookie.present {
		e.count(func(s *Stats) { s.CookieSeen++ })
		if cookie.serverValid {
			e.count(func(s *Stats) { s.CookieValid++ })
		}
	}

	// RRL applies before the (cheap) lookup, like BIND's implementation.
	if !tcp && e.rrl.RatePerSec > 0 && !cookie.serverValid {
		switch e.admit(client) {
		case rrlSlip:
			e.count(func(s *Stats) { s.RRLSlips++ })
			r := q.Reply()
			r.Header.Truncated = true
			e.attachCookie(r, client, cookie)
			return r
		case rrlDrop:
			e.count(func(s *Stats) { s.RRLDrops++ })
			return nil
		}
	}
	r := e.answer(q)
	e.attachCookie(r, client, cookie)
	return r
}

type rrlVerdict int

const (
	rrlPass rrlVerdict = iota
	rrlSlip
	rrlDrop
)

// admit updates the client's token bucket and decides pass/slip/drop.
func (e *Engine) admit(client netip.Addr) rrlVerdict {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	b, ok := e.buckets[client]
	if !ok {
		b = &bucket{tokens: e.rrl.Burst, last: now}
		e.buckets[client] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * e.rrl.RatePerSec
		if b.tokens > e.rrl.Burst {
			b.tokens = e.rrl.Burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return rrlPass
	}
	b.slips++
	if b.slips%e.rrl.SlipEvery == 0 {
		return rrlSlip
	}
	return rrlDrop
}

// answer implements the zone lookup semantics.
func (e *Engine) answer(q *dnswire.Message) *dnswire.Message {
	question := q.Question()
	qname := dnswire.CanonicalName(question.Name)
	r := q.Reply()

	if question.Class != dnswire.ClassIN {
		r.Header.RCode = dnswire.RCodeRefused
		e.count(func(s *Stats) { s.Refused++ })
		return r
	}
	zone := e.zone
	if !dnswire.IsSubdomain(qname, zone.Origin) {
		r.Header.RCode = dnswire.RCodeRefused
		e.count(func(s *Stats) { s.Refused++ })
		return r
	}
	do := q.Edns != nil && q.Edns.DO

	// Apex queries.
	if qname == zone.Origin {
		r.Header.Authoritative = true
		e.count(func(s *Stats) { s.ApexAnswers++ })
		switch question.Type {
		case dnswire.TypeSOA:
			r.Answers = []dnswire.RR{zone.SOA()}
		case dnswire.TypeNS:
			r.Answers = zone.ApexNS()
			e.addApexGlue(r)
		case dnswire.TypeDNSKEY:
			r.Answers = zone.DNSKEY()
			if do {
				r.Answers = append(r.Answers, signatureFor(r.Answers[0], zone.Origin))
			}
		case dnswire.TypeNSEC3PARAM:
			if e.nsec3 != nil {
				r.Answers = []dnswire.RR{{
					Name: zone.Origin, Class: dnswire.ClassIN, TTL: 0,
					Data: dnswire.NSEC3PARAMData{
						HashAlgo: 1, Iterations: e.nsec3.Iterations, Salt: e.nsec3.Salt,
					},
				}}
			} else {
				r.Authority = []dnswire.RR{zone.SOA()}
			}
		default:
			// NODATA: NOERROR with SOA in authority.
			r.Authority = []dnswire.RR{zone.SOA()}
		}
		return r
	}

	if zone.IsLeaf() {
		return e.answerLeaf(r, qname, question.Type, do)
	}

	delegation, ok := zone.Delegation(qname)
	if !ok {
		if zone.Exists(qname) {
			// Empty non-terminal (e.g. co.nz.): NODATA.
			r.Header.Authoritative = true
			r.Authority = []dnswire.RR{zone.SOA()}
			if do {
				e.addDenialProof(r, qname)
			}
			return r
		}
		r.Header.Authoritative = true
		r.Header.RCode = dnswire.RCodeNXDomain
		r.Authority = []dnswire.RR{zone.SOA()}
		if do {
			e.addDenialProof(r, qname)
		}
		e.count(func(s *Stats) { s.NXDomain++ })
		return r
	}

	// DS for the delegation itself is answered authoritatively by the
	// parent (RFC 4035 §3.1.4.1).
	if question.Type == dnswire.TypeDS && qname == delegation {
		r.Header.Authoritative = true
		e.count(func(s *Stats) { s.DSAnswers++ })
		if ds := zone.DSRecords(delegation); len(ds) > 0 {
			r.Answers = ds
			if do {
				r.Answers = append(r.Answers, signatureFor(ds[0], zone.Origin))
			}
		} else {
			r.Authority = []dnswire.RR{zone.SOA()} // unsigned: NODATA
			if do {
				e.addDenialProof(r, qname)
			}
		}
		return r
	}

	// Everything else at or below a delegation: referral.
	e.count(func(s *Stats) { s.Referrals++ })
	hosts := zone.DelegationNS(delegation)
	for _, h := range hosts {
		r.Authority = append(r.Authority, dnswire.RR{
			Name: delegation, Class: dnswire.ClassIN, TTL: 172800,
			Data: dnswire.NSData{Host: h},
		})
	}
	if do {
		if ds := zone.DSRecords(delegation); len(ds) > 0 {
			r.Authority = append(r.Authority, ds...)
			r.Authority = append(r.Authority, signatureFor(ds[0], zone.Origin))
		}
	}
	for _, h := range hosts {
		if dnswire.IsSubdomain(h, delegation) {
			v4, v6 := GlueAddrs(h)
			r.Additional = append(r.Additional,
				dnswire.RR{Name: h, Class: dnswire.ClassIN, TTL: 172800, Data: dnswire.AData{Addr: v4}},
				dnswire.RR{Name: h, Class: dnswire.ClassIN, TTL: 172800, Data: dnswire.AAAAData{Addr: v6}},
			)
		}
	}
	return r
}

// signatureFor fabricates an RRSIG covering rr's RRSet, sized like a
// production 2048-bit RSA signature (256 bytes). Signed referrals therefore
// exceed the classic 512-byte UDP budget, which is the mechanism behind the
// paper's Figure 6/§4.4 finding that Facebook's 512-byte EDNS advertisements
// yield ~17% truncated UDP answers while 1232+ advertisers see almost none.
func signatureFor(rr dnswire.RR, signer string) dnswire.RR {
	h := fnv.New64a()
	_, _ = h.Write([]byte(rr.Name))
	sum := h.Sum64()
	sig := make([]byte, 256)
	for i := range sig {
		sig[i] = byte(sum >> (uint(i) % 8 * 8))
	}
	return dnswire.RR{
		Name: rr.Name, Class: dnswire.ClassIN, TTL: rr.TTL,
		Data: dnswire.RRSIGData{
			TypeCovered: rr.Data.Type(),
			Algorithm:   8, Labels: uint8(dnswire.CountLabels(rr.Name)),
			OriginalTTL: rr.TTL,
			Expiration:  1900000000, Inception: 1500000000,
			KeyTag: uint16(sum), SignerName: signer, Signature: sig,
		},
	}
}

// addDenialProof appends the authenticated denial records a signed zone
// returns alongside a negative answer: RRSIG over the SOA plus an NSEC and
// its RRSIG covering the nonexistent name (RFC 4035 §3.1.3). These push
// negative answers well past 512 bytes, so 512-byte-EDNS clients see TC.
//
// The NSEC range is chosen to be genuinely correct for the virtual zone
// (whose registered names are all d<rank>[.category] labels), so
// RFC 8198-style aggressive negative caching in the resolver can reuse it
// for other junk names — the effect the paper suggests behind the 2020
// junk decline (§4.2.3).
func (e *Engine) addDenialProof(r *dnswire.Message, qname string) {
	soa := r.Authority[0]
	r.Authority = append(r.Authority, signatureFor(soa, e.zone.Origin))
	if e.nsec3 != nil {
		e.addNSEC3Denial(r, qname)
		return
	}
	owner, next := DenialRange(e.zone.Origin, qname)
	nsec := dnswire.RR{
		Name: owner, Class: dnswire.ClassIN, TTL: soa.TTL,
		Data: dnswire.NSECData{
			NextName: next,
			Types:    []dnswire.Type{dnswire.TypeNS, dnswire.TypeSOA, dnswire.TypeRRSIG, dnswire.TypeNSEC, dnswire.TypeDNSKEY},
		},
	}
	r.Authority = append(r.Authority, nsec, signatureFor(nsec, e.zone.Origin))
}

// DenialRange returns the NSEC (owner, next] pair covering a nonexistent
// qname in a virtual zone. Registered delegations are d<rank> labels (with
// digits sorting below every letter), so two ranges tile the junk space:
// names below "d" hash into (apex, d.<origin>) and names above the d<digit>
// block into (d:.<origin>, <origin>). The colon label sorts right after
// the digits, making both ranges exact.
func DenialRange(origin, qname string) (owner, next string) {
	origin = dnswire.CanonicalName(origin)
	if canonKey(origin, qname) < "d" {
		return origin, joinLabel("d", origin)
	}
	return joinLabel("d:", origin), origin
}

// joinLabel prefixes a label to an origin, handling the root.
func joinLabel(label, origin string) string {
	if origin == "." {
		return label + "."
	}
	return label + "." + origin
}

// canonKey builds a string whose plain ordering matches DNS canonical
// ordering (RFC 4034 §6.1) for names under origin: labels are reversed so
// the most significant (closest to the origin) compares first, separated
// by a byte below any label character. The origin itself maps to "".
func canonKey(origin, name string) string {
	origin = dnswire.CanonicalName(origin)
	name = dnswire.CanonicalName(name)
	if name == origin {
		return ""
	}
	labels := dnswire.SplitLabels(name)
	labels = labels[:len(labels)-dnswire.CountLabels(origin)]
	var sb strings.Builder
	for i := len(labels) - 1; i >= 0; i-- {
		sb.WriteString(labels[i])
		if i > 0 {
			sb.WriteByte(0x01)
		}
	}
	return sb.String()
}

// CoversName reports whether the NSEC range (owner, next) denies qname in
// DNS canonical order. origin anchors the comparison; next == origin
// means "to the end of the zone".
func CoversName(origin, owner, next, qname string) bool {
	q := canonKey(origin, qname)
	lo := canonKey(origin, owner)
	hi := canonKey(origin, next)
	if q == "" {
		return false // the apex always exists
	}
	if hi == "" && lo != "" {
		// Range wraps to the zone end.
		return q > lo
	}
	return q > lo && q < hi
}

// answerLeaf serves a registrant zone: terminal A/AAAA (and apex MX/TXT)
// answers instead of referrals — the endpoint a resolver reaches after the
// TLD referral the paper's vantage points observe.
func (e *Engine) answerLeaf(r *dnswire.Message, qname string, qtype dnswire.Type, do bool) *dnswire.Message {
	zone := e.zone
	r.Header.Authoritative = true
	if !zone.LeafOwns(qname) {
		r.Header.RCode = dnswire.RCodeNXDomain
		r.Authority = []dnswire.RR{zone.SOA()}
		if do {
			r.Authority = append(r.Authority, signatureFor(r.Authority[0], zone.Origin))
		}
		e.count(func(s *Stats) { s.NXDomain++ })
		return r
	}
	v4, v6 := GlueAddrs(qname)
	switch qtype {
	case dnswire.TypeA:
		r.Answers = []dnswire.RR{{
			Name: qname, Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.AData{Addr: v4},
		}}
	case dnswire.TypeAAAA:
		r.Answers = []dnswire.RR{{
			Name: qname, Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.AAAAData{Addr: v6},
		}}
	case dnswire.TypeMX:
		if qname == zone.Origin {
			r.Answers = []dnswire.RR{{
				Name: qname, Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.MXData{Preference: 10, Exchange: "mail." + zone.Origin},
			}}
		}
	case dnswire.TypeTXT:
		if qname == zone.Origin {
			r.Answers = []dnswire.RR{{
				Name: qname, Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.TXTData{Strings: []string{"v=spf1 mx -all"}},
			}}
		}
	}
	if len(r.Answers) == 0 {
		r.Authority = []dnswire.RR{zone.SOA()} // NODATA
	} else if do {
		r.Answers = append(r.Answers, signatureFor(r.Answers[0], zone.Origin))
	}
	return r
}

// addNSEC3Denial emits the RFC 5155 closest-encloser proof: an NSEC3
// matching the closest encloser (the apex, for a TLD's direct children)
// and an NSEC3 covering the hash of the next closer name, each signed.
func (e *Engine) addNSEC3Denial(r *dnswire.Message, qname string) {
	cfg := e.nsec3
	origin := e.zone.Origin
	apexHash, err1 := dnswire.NSEC3Hash(origin, cfg.Salt, cfg.Iterations)
	qHash, err2 := dnswire.NSEC3Hash(qname, cfg.Salt, cfg.Iterations)
	if err1 != nil || err2 != nil {
		return
	}
	ttl := r.Authority[0].TTL
	// Matching NSEC3 for the closest encloser (the apex).
	apexNext := append([]byte(nil), apexHash...)
	apexNext[len(apexNext)-1]++
	matching := dnswire.RR{
		Name:  joinLabel(dnswire.Base32Hex(apexHash), origin),
		Class: dnswire.ClassIN, TTL: ttl,
		Data: dnswire.NSEC3Data{
			HashAlgo: 1, Flags: 1, Iterations: cfg.Iterations, Salt: cfg.Salt,
			NextHashed: apexNext,
			Types: []dnswire.Type{
				dnswire.TypeNS, dnswire.TypeSOA, dnswire.TypeRRSIG,
				dnswire.TypeDNSKEY, dnswire.TypeNSEC3PARAM,
			},
		},
	}
	// Covering NSEC3 for the next closer name: a range bracketing qHash.
	lo := append([]byte(nil), qHash...)
	lo[len(lo)-1]--
	hi := append([]byte(nil), qHash...)
	hi[len(hi)-1]++
	covering := dnswire.RR{
		Name:  joinLabel(dnswire.Base32Hex(lo), origin),
		Class: dnswire.ClassIN, TTL: ttl,
		Data: dnswire.NSEC3Data{
			HashAlgo: 1, Flags: 1, Iterations: cfg.Iterations, Salt: cfg.Salt,
			NextHashed: hi,
		},
	}
	r.Authority = append(r.Authority,
		matching, signatureFor(matching, origin),
		covering, signatureFor(covering, origin),
	)
}

// addApexGlue attaches address records for the zone's own servers.
func (e *Engine) addApexGlue(r *dnswire.Message) {
	for _, h := range e.zone.ServerNames {
		v4, v6 := GlueAddrs(h)
		r.Additional = append(r.Additional,
			dnswire.RR{Name: h, Class: dnswire.ClassIN, TTL: 172800, Data: dnswire.AData{Addr: v4}},
			dnswire.RR{Name: h, Class: dnswire.ClassIN, TTL: 172800, Data: dnswire.AAAAData{Addr: v6}},
		)
	}
}

func (e *Engine) count(f func(*Stats)) {
	e.statsMu.Lock()
	f(&e.stats)
	e.statsMu.Unlock()
}

// GlueAddrs derives the deterministic synthetic A/AAAA addresses of a name
// server host name. All glue lives in 198.18.0.0/15 (benchmark space) and
// 2001:db8:feed::/48 so it never collides with the astrie resolver ranges.
func GlueAddrs(host string) (v4, v6 netip.Addr) {
	h := fnv.New32a()
	_, _ = h.Write([]byte(dnswire.CanonicalName(host)))
	sum := h.Sum32()
	v4 = netip.AddrFrom4([4]byte{198, 18 | byte(sum>>24&1), byte(sum >> 8), byte(sum)})
	var b16 [16]byte
	copy(b16[:6], []byte{0x20, 0x01, 0x0d, 0xb8, 0xfe, 0xed})
	b16[12] = byte(sum >> 24)
	b16[13] = byte(sum >> 16)
	b16[14] = byte(sum >> 8)
	b16[15] = byte(sum)
	v6 = netip.AddrFrom16(b16)
	return v4, v6
}

// PackResponse serializes a response for the transport: TCP responses may
// use the full 64KiB; UDP responses are truncated to the client's EDNS
// budget (512 when absent).
func PackResponse(r *dnswire.Message, q *dnswire.Message, tcp bool) ([]byte, error) {
	return AppendResponse(nil, r, q, tcp)
}

// AppendResponse is PackResponse appending into b — the allocation-free
// path for hot loops that reuse a scratch buffer.
func AppendResponse(b []byte, r *dnswire.Message, q *dnswire.Message, tcp bool) ([]byte, error) {
	if tcp {
		return r.AppendPack(b)
	}
	return r.AppendPackTruncated(b, q.Edns.EffectiveUDPSize())
}
