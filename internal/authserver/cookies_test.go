package authserver

import (
	"net/netip"
	"testing"
	"time"

	"dnscentral/internal/dnswire"
)

func cookieQuery(id uint16, data []byte) *dnswire.Message {
	q := dnswire.NewQuery(id, "d1.nl.", dnswire.TypeA).WithEdns(1232, false)
	q.Edns.Options = append(q.Edns.Options, dnswire.EDNSOption{
		Code: dnswire.EDNSOptionCookie, Data: data,
	})
	return q
}

func TestCookieEchoedWithServerCookie(t *testing.T) {
	e := nlEngine(t)
	clientCookie := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	r := e.Handle(cookieQuery(1, clientCookie), testClient, false)
	if r.Edns == nil {
		t.Fatal("response lost EDNS")
	}
	var got []byte
	for _, opt := range r.Edns.Options {
		if opt.Code == dnswire.EDNSOptionCookie {
			got = opt.Data
		}
	}
	if len(got) != ClientCookieLen+ServerCookieLen {
		t.Fatalf("cookie option = %d bytes", len(got))
	}
	for i := range clientCookie {
		if got[i] != clientCookie[i] {
			t.Fatal("client cookie not echoed")
		}
	}
	st := e.Stats()
	if st.CookieSeen != 1 || st.CookieValid != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCookieRoundTripValidates(t *testing.T) {
	e := nlEngine(t)
	clientCookie := []byte{9, 9, 9, 9, 9, 9, 9, 9}
	r := e.Handle(cookieQuery(1, clientCookie), testClient, false)
	var full []byte
	for _, opt := range r.Edns.Options {
		if opt.Code == dnswire.EDNSOptionCookie {
			full = opt.Data
		}
	}
	// Present the full cookie back: must validate.
	_ = e.Handle(cookieQuery(2, full), testClient, false)
	st := e.Stats()
	if st.CookieValid != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// The same cookie from a different address must NOT validate.
	other := netip.MustParseAddr("198.51.100.77")
	_ = e.Handle(cookieQuery(3, full), other, false)
	if e.Stats().CookieValid != 1 {
		t.Fatal("cookie validated for the wrong client address")
	}
}

func TestCookieExemptsFromRRL(t *testing.T) {
	now := time.Unix(0, 0)
	e := nlEngine(t,
		WithRRL(RRLConfig{RatePerSec: 0.0001, Burst: 1, SlipEvery: 1}),
		WithClock(func() time.Time { return now }),
	)
	clientCookie := []byte{5, 5, 5, 5, 5, 5, 5, 5}
	// First query consumes the burst and returns the server cookie.
	r := e.Handle(cookieQuery(1, clientCookie), testClient, false)
	var full []byte
	for _, opt := range r.Edns.Options {
		if opt.Code == dnswire.EDNSOptionCookie {
			full = opt.Data
		}
	}
	// Without the server cookie, subsequent queries slip (TC=1).
	r = e.Handle(cookieQuery(2, clientCookie), testClient, false)
	if !r.Header.Truncated {
		t.Fatal("cookie-less repeat not rate limited")
	}
	// With a valid server cookie, the client bypasses RRL entirely.
	for i := uint16(3); i < 20; i++ {
		r = e.Handle(cookieQuery(i, full), testClient, false)
		if r == nil || r.Header.Truncated {
			t.Fatalf("cookie-validated query %d rate limited", i)
		}
	}
}

func TestMalformedCookieIgnored(t *testing.T) {
	e := nlEngine(t)
	r := e.Handle(cookieQuery(1, []byte{1, 2, 3}), testClient, false) // too short
	if r.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("rcode = %s", r.Header.RCode)
	}
	if e.Stats().CookieSeen != 0 {
		t.Fatal("malformed cookie counted as seen")
	}
}

func TestCookieSecretsDiffer(t *testing.T) {
	e1 := nlEngine(t, WithCookieSecret(1))
	e2 := nlEngine(t, WithCookieSecret(2))
	cc := [ClientCookieLen]byte{1, 2, 3, 4, 5, 6, 7, 8}
	s1 := e1.serverCookie(testClient, cc)
	s2 := e2.serverCookie(testClient, cc)
	if s1 == s2 {
		t.Fatal("different secrets produced the same server cookie")
	}
}
