package authserver

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"dnscentral/internal/dnswire"
	"dnscentral/internal/udpengine"
	"dnscentral/internal/zonedb"
)

// TestServerUDPEngineParity replays one DNS query stream against two
// authservers over the same zone — one on the batched engine, one on
// the portable loop — and requires byte-identical responses. Batching
// must change syscall counts, never bytes on the wire.
func TestServerUDPEngineParity(t *testing.T) {
	z, err := zonedb.NewCcTLD("nl", 2000, 0, 0.5, []string{"ns1.dns.nl", "ns2.dns.nl"})
	if err != nil {
		t.Fatal(err)
	}
	start := func(portable bool) *Server {
		s, err := ListenConfig("127.0.0.1:0", NewEngine(z), ServerConfig{
			UDPBatch: 8, UDPSockets: 2, UDPPortable: portable,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	batched, portable := start(false), start(true)

	// A mixed stream: referrals, apex SOA/NS, NXDOMAIN, DS, with and
	// without EDNS — every major response shape the engine produces.
	var queries [][]byte
	for i := 0; i < 60; i++ {
		var q *dnswire.Message
		switch i % 5 {
		case 0:
			q = dnswire.NewQuery(uint16(i), fmt.Sprintf("www.d%d.nl.", i), dnswire.TypeA).WithEdns(1232, false)
		case 1:
			q = dnswire.NewQuery(uint16(i), "nl.", dnswire.TypeSOA)
		case 2:
			q = dnswire.NewQuery(uint16(i), fmt.Sprintf("no-such-%d.nl.", i), dnswire.TypeA).WithEdns(1232, true)
		case 3:
			q = dnswire.NewQuery(uint16(i), fmt.Sprintf("d%d.nl.", i), dnswire.TypeDS).WithEdns(1232, false)
		default:
			q = dnswire.NewQuery(uint16(i), "nl.", dnswire.TypeNS).WithEdns(512, false)
		}
		wire, err := q.Pack()
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, wire)
	}
	collect := func(s *Server) map[uint16][]byte {
		conn, err := net.Dial("udp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		cb, err := udpengine.NewClientBatch(conn.(*net.UDPConn), 8, 2048)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			if err := cb.Queue(q); err != nil {
				t.Fatal(err)
			}
		}
		if err := cb.Flush(); err != nil {
			t.Fatal(err)
		}
		got := make(map[uint16][]byte)
		deadline := time.Now().Add(5 * time.Second)
		for len(got) < len(queries) && time.Now().Before(deadline) {
			conn.SetReadDeadline(time.Now().Add(time.Second))
			views, err := cb.Recv()
			if err != nil {
				break
			}
			for _, v := range views {
				if len(v) < dnswire.HeaderLen {
					continue
				}
				got[uint16(v[0])<<8|uint16(v[1])] = append([]byte(nil), v...)
			}
		}
		return got
	}
	gb, gp := collect(batched), collect(portable)
	if len(gb) != len(queries) || len(gp) != len(queries) {
		t.Fatalf("lost responses: batched %d, portable %d, want %d", len(gb), len(gp), len(queries))
	}
	for id, rb := range gb {
		if !bytes.Equal(rb, gp[id]) {
			t.Errorf("response %d diverges:\n batched: %x\nportable: %x", id, rb, gp[id])
		}
	}
}
