package authserver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dnscentral/internal/dnswire"
	"dnscentral/internal/zonedb"
)

func TestDenialProofPresentOnlyWithDO(t *testing.T) {
	e := nlEngine(t)
	r := handle(t, e, "junkname.nl.", dnswire.TypeA) // DO set by helper
	var nsec *dnswire.NSECData
	for _, rr := range r.Authority {
		if d, ok := rr.Data.(dnswire.NSECData); ok {
			nsec = &d
			if !CoversName("nl.", rr.Name, d.NextName, "junkname.nl.") {
				t.Errorf("NSEC (%s, %s) does not cover the denied name", rr.Name, d.NextName)
			}
		}
	}
	if nsec == nil {
		t.Fatal("no NSEC in DO NXDOMAIN")
	}
}

func TestDenialRangeRootZone(t *testing.T) {
	z, err := zonedb.NewRoot(zonedb.DefaultRootTLDs, []string{"b.root-servers.net"})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(z)
	q := dnswire.NewQuery(1, "qqjunktld.", dnswire.TypeA).WithEdns(1232, true)
	r := e.Handle(q, testClient, false)
	if r.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %s", r.Header.RCode)
	}
	found := false
	for _, rr := range r.Authority {
		if d, ok := rr.Data.(dnswire.NSECData); ok {
			found = true
			if !CoversName(".", rr.Name, d.NextName, "qqjunktld.") {
				t.Errorf("root NSEC (%s, %s) does not cover the junk TLD", rr.Name, d.NextName)
			}
		}
	}
	if !found {
		t.Fatal("no NSEC in root NXDOMAIN")
	}
}

// TestPropertyDenialNeverCoversRegistered: for random junk names, the
// denial range returned must cover the junk but never any registered
// delegation or any name under one.
func TestPropertyDenialNeverCoversRegistered(t *testing.T) {
	z, err := zonedb.NewCcTLD("nl", 10000, 0, 0.5, []string{"ns1.dns.nl"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random junk label (never d<digits> by construction: always ≥1
		// letter beyond 'd' prefix or shorter).
		n := 3 + r.Intn(10)
		lbl := make([]byte, n)
		for i := range lbl {
			lbl[i] = byte('a' + r.Intn(26))
		}
		junk := string(lbl) + ".nl."
		if _, ok := z.Delegation(junk); ok {
			return true // astronomically unlikely, but skip
		}
		owner, next := DenialRange("nl.", junk)
		if !CoversName("nl.", owner, next, junk) {
			return false
		}
		// Probe registered names and children.
		for probe := 0; probe < 10; probe++ {
			name, _ := z.DomainName(r.Intn(10000))
			if CoversName("nl.", owner, next, name) {
				return false
			}
			if CoversName("nl.", owner, next, "www."+name) {
				return false
			}
		}
		// The apex is never denied.
		return !CoversName("nl.", owner, next, "nl.")
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCoversNameWrapAround(t *testing.T) {
	// Range (d:.nl., nl.) wraps to the zone end.
	if !CoversName("nl.", "d:.nl.", "nl.", "zzz.nl.") {
		t.Error("wrap-around range must cover high names")
	}
	if CoversName("nl.", "d:.nl.", "nl.", "aaa.nl.") {
		t.Error("wrap-around range must not cover low names")
	}
	// Subdomains of registered names sort with their parent, not at the
	// top of the zone (RFC 4034 canonical order).
	if CoversName("nl.", "d:.nl.", "nl.", "www.d5.nl.") {
		t.Error("child of registered name wrongly denied")
	}
}
