package authserver

import (
	"encoding/binary"
	"hash/fnv"
	"net/netip"

	"dnscentral/internal/dnswire"
)

// DNS cookies (RFC 7873) give a server a cheap return-path validation:
// a client presenting a server cookie previously issued to its address
// cannot be a spoofed source, so operators exempt such clients from
// response rate limiting — which would otherwise push them to TCP. The
// engine issues and verifies cookies; the resolver package round-trips
// them.

// ClientCookieLen and ServerCookieLen are the RFC 7873 sizes used here.
const (
	ClientCookieLen = 8
	ServerCookieLen = 8
)

// cookieState carries the parsed COOKIE option of a query.
type cookieState struct {
	present     bool
	client      [ClientCookieLen]byte
	serverValid bool
}

// parseCookie extracts and verifies the COOKIE option, if any.
func (e *Engine) parseCookie(q *dnswire.Message, client netip.Addr) cookieState {
	var cs cookieState
	if q.Edns == nil {
		return cs
	}
	for _, opt := range q.Edns.Options {
		if opt.Code != dnswire.EDNSOptionCookie {
			continue
		}
		if len(opt.Data) < ClientCookieLen {
			return cs // malformed: ignore entirely
		}
		cs.present = true
		copy(cs.client[:], opt.Data[:ClientCookieLen])
		if len(opt.Data) >= ClientCookieLen+ServerCookieLen {
			want := e.serverCookie(client, cs.client)
			got := opt.Data[ClientCookieLen : ClientCookieLen+ServerCookieLen]
			cs.serverValid = true
			for i := range want {
				if got[i] != want[i] {
					cs.serverValid = false
					break
				}
			}
		}
		return cs
	}
	return cs
}

// serverCookie derives the server cookie for a client address+cookie pair
// from the engine's secret (a keyed hash, standing in for the RFC 7873
// FNV/SipHash constructions).
func (e *Engine) serverCookie(client netip.Addr, clientCookie [ClientCookieLen]byte) [ServerCookieLen]byte {
	h := fnv.New64a()
	var secret [8]byte
	binary.BigEndian.PutUint64(secret[:], e.cookieSecret)
	_, _ = h.Write(secret[:])
	b := client.As16()
	_, _ = h.Write(b[:])
	_, _ = h.Write(clientCookie[:])
	var out [ServerCookieLen]byte
	binary.BigEndian.PutUint64(out[:], h.Sum64())
	return out
}

// attachCookie adds the response COOKIE option echoing the client cookie
// and carrying a fresh server cookie.
func (e *Engine) attachCookie(r *dnswire.Message, client netip.Addr, cs cookieState) {
	if !cs.present || r.Edns == nil {
		return
	}
	sc := e.serverCookie(client, cs.client)
	data := make([]byte, 0, ClientCookieLen+ServerCookieLen)
	data = append(data, cs.client[:]...)
	data = append(data, sc[:]...)
	r.Edns.Options = append(r.Edns.Options, dnswire.EDNSOption{
		Code: dnswire.EDNSOptionCookie,
		Data: data,
	})
}
