package authserver

import (
	"bytes"
	"net"
	"net/netip"
	"testing"
	"time"

	"dnscentral/internal/dnswire"
	"dnscentral/internal/zonedb"
)

func startServer(t *testing.T, opts ...Option) *Server {
	t.Helper()
	z, err := zonedb.NewCcTLD("nl", 1000, 0, 0.5, []string{"ns1.dns.nl", "ns2.dns.nl"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Listen("127.0.0.1:0", NewEngine(z, opts...))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func udpExchange(t *testing.T, s *Server, q *dnswire.Message) *dnswire.Message {
	t.Helper()
	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	out, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 65535)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	r, err := dnswire.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func tcpExchange(t *testing.T, s *Server, q *dnswire.Message) *dnswire.Message {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	out, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTCPMessage(conn, out); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := ReadTCPMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	r, err := dnswire.Unpack(resp)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestServerUDPQuery(t *testing.T) {
	s := startServer(t)
	q := dnswire.NewQuery(101, "www.d3.nl.", dnswire.TypeA).WithEdns(1232, false)
	r := udpExchange(t, s, q)
	if r.Header.ID != 101 || !r.Header.Response {
		t.Fatalf("header: %+v", r.Header)
	}
	if len(r.Authority) == 0 {
		t.Fatal("expected referral authority section")
	}
}

func TestServerTCPQuery(t *testing.T) {
	s := startServer(t)
	q := dnswire.NewQuery(102, "nl.", dnswire.TypeSOA)
	r := tcpExchange(t, s, q)
	if len(r.Answers) != 1 || r.Answers[0].Data.Type() != dnswire.TypeSOA {
		t.Fatalf("answers: %v", r.Answers)
	}
}

func TestServerTCPPipelining(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Two queries on one connection.
	for i := uint16(1); i <= 2; i++ {
		q := dnswire.NewQuery(i, "nl.", dnswire.TypeNS)
		out, _ := q.Pack()
		if err := WriteTCPMessage(conn, out); err != nil {
			t.Fatal(err)
		}
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for i := uint16(1); i <= 2; i++ {
		resp, err := ReadTCPMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		r, err := dnswire.Unpack(resp)
		if err != nil {
			t.Fatal(err)
		}
		if r.Header.ID != i {
			t.Errorf("response %d has id %d", i, r.Header.ID)
		}
	}
}

func TestServerUDPTruncationAndTCPRetry(t *testing.T) {
	s := startServer(t)
	// No EDNS and a large apex NS answer with glue: ask for NS with a
	// padded question? The apex NS + glue fits in 512, so instead force a
	// tiny advertised EDNS size.
	q := dnswire.NewQuery(103, "nl.", dnswire.TypeNS).WithEdns(512, false)
	q.Edns.UDPSize = 0 // clamps to 512 server-side; fits anyway
	r := udpExchange(t, s, q)
	if r.Header.Truncated {
		// acceptable: retry over TCP must then give the full answer
		r = tcpExchange(t, s, q)
	}
	if len(r.Answers) != 2 {
		t.Fatalf("answers: %v", r.Answers)
	}
}

func TestServerIgnoresGarbageUDP(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Then a valid query must still be answered.
	q := dnswire.NewQuery(9, "nl.", dnswire.TypeSOA)
	out, _ := q.Pack()
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dnswire.Unpack(buf[:n]); err != nil {
		t.Fatal(err)
	}
}

func TestServerCloseIdempotentUse(t *testing.T) {
	z, _ := zonedb.NewCcTLD("nl", 10, 0, 0, []string{"ns1.dns.nl"})
	s, err := Listen("127.0.0.1:0", NewEngine(z))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPFramingRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msg := []byte("hello dns")
	if err := WriteTCPMessage(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTCPMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
}

func TestTCPFramingRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTCPMessage(&buf, make([]byte, 70000)); err == nil {
		t.Error("oversize message accepted")
	}
}

func TestServerCloseFastWithIdleTCPConns(t *testing.T) {
	z, err := zonedb.NewCcTLD("nl", 50, 0, 0.5, []string{"ns1.dns.nl"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ListenConfig("127.0.0.1:0", NewEngine(z), ServerConfig{TCPIdleTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Park idle connections; one has done a full exchange so the server
	// is provably inside its read loop, not just the accept queue.
	var conns []net.Conn
	for i := 0; i < 3; i++ {
		conn, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conns = append(conns, conn)
	}
	q := dnswire.NewQuery(7, "nl.", dnswire.TypeSOA)
	out, _ := q.Pack()
	if err := WriteTCPMessage(conns[0], out); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTCPMessage(conns[0]); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Close took %v with idle TCP conns, want <1s", d)
	}
}

func TestServerTCPConnCap(t *testing.T) {
	z, err := zonedb.NewCcTLD("nl", 50, 0, 0.5, []string{"ns1.dns.nl"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ListenConfig("127.0.0.1:0", NewEngine(z), ServerConfig{MaxTCPConns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	q := dnswire.NewQuery(1, "nl.", dnswire.TypeSOA)
	out, _ := q.Pack()
	// Fill the cap with two live connections (a completed exchange
	// guarantees each is tracked before the next dial).
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := WriteTCPMessage(conn, out); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadTCPMessage(conn); err != nil {
			t.Fatal(err)
		}
	}
	// The third connection must be turned away promptly.
	extra, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer extra.Close()
	_ = extra.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := ReadTCPMessage(extra); err == nil {
		t.Fatal("over-cap connection was served")
	}
	if got := s.TCPRejected(); got != 1 {
		t.Errorf("TCPRejected = %d, want 1", got)
	}
}

func TestServerTCPIdleTimeoutConfigurable(t *testing.T) {
	z, err := zonedb.NewCcTLD("nl", 50, 0, 0.5, []string{"ns1.dns.nl"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ListenConfig("127.0.0.1:0", NewEngine(z), ServerConfig{TCPIdleTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	_ = conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := ReadTCPMessage(conn); err == nil {
		t.Fatal("idle connection produced a message")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("idle hangup took %v, want ~100ms", d)
	}
}

func TestServerRecoversHandlerPanic(t *testing.T) {
	// A nil engine makes Handle panic; the per-packet recovery must
	// swallow it and count it rather than crash the serve loop.
	s := &Server{conns: make(map[*net.TCPConn]struct{})}
	q := dnswire.NewQuery(3, "nl.", dnswire.TypeSOA)
	out, _ := q.Pack()
	if resp := s.handleUDPPacket(0, out, netip.MustParseAddrPort("192.0.2.1:5353"), nil); resp != nil {
		t.Errorf("panicking handler returned a response")
	}
	if got := s.Panics(); got != 1 {
		t.Errorf("Panics = %d, want 1", got)
	}
}
