package authserver

import (
	"bytes"
	"net"
	"testing"
	"time"

	"dnscentral/internal/dnswire"
	"dnscentral/internal/zonedb"
)

func startServer(t *testing.T, opts ...Option) *Server {
	t.Helper()
	z, err := zonedb.NewCcTLD("nl", 1000, 0, 0.5, []string{"ns1.dns.nl", "ns2.dns.nl"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Listen("127.0.0.1:0", NewEngine(z, opts...))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func udpExchange(t *testing.T, s *Server, q *dnswire.Message) *dnswire.Message {
	t.Helper()
	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	out, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 65535)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	r, err := dnswire.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func tcpExchange(t *testing.T, s *Server, q *dnswire.Message) *dnswire.Message {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	out, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTCPMessage(conn, out); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := ReadTCPMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	r, err := dnswire.Unpack(resp)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestServerUDPQuery(t *testing.T) {
	s := startServer(t)
	q := dnswire.NewQuery(101, "www.d3.nl.", dnswire.TypeA).WithEdns(1232, false)
	r := udpExchange(t, s, q)
	if r.Header.ID != 101 || !r.Header.Response {
		t.Fatalf("header: %+v", r.Header)
	}
	if len(r.Authority) == 0 {
		t.Fatal("expected referral authority section")
	}
}

func TestServerTCPQuery(t *testing.T) {
	s := startServer(t)
	q := dnswire.NewQuery(102, "nl.", dnswire.TypeSOA)
	r := tcpExchange(t, s, q)
	if len(r.Answers) != 1 || r.Answers[0].Data.Type() != dnswire.TypeSOA {
		t.Fatalf("answers: %v", r.Answers)
	}
}

func TestServerTCPPipelining(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Two queries on one connection.
	for i := uint16(1); i <= 2; i++ {
		q := dnswire.NewQuery(i, "nl.", dnswire.TypeNS)
		out, _ := q.Pack()
		if err := WriteTCPMessage(conn, out); err != nil {
			t.Fatal(err)
		}
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for i := uint16(1); i <= 2; i++ {
		resp, err := ReadTCPMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		r, err := dnswire.Unpack(resp)
		if err != nil {
			t.Fatal(err)
		}
		if r.Header.ID != i {
			t.Errorf("response %d has id %d", i, r.Header.ID)
		}
	}
}

func TestServerUDPTruncationAndTCPRetry(t *testing.T) {
	s := startServer(t)
	// No EDNS and a large apex NS answer with glue: ask for NS with a
	// padded question? The apex NS + glue fits in 512, so instead force a
	// tiny advertised EDNS size.
	q := dnswire.NewQuery(103, "nl.", dnswire.TypeNS).WithEdns(512, false)
	q.Edns.UDPSize = 0 // clamps to 512 server-side; fits anyway
	r := udpExchange(t, s, q)
	if r.Header.Truncated {
		// acceptable: retry over TCP must then give the full answer
		r = tcpExchange(t, s, q)
	}
	if len(r.Answers) != 2 {
		t.Fatalf("answers: %v", r.Answers)
	}
}

func TestServerIgnoresGarbageUDP(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("udp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Then a valid query must still be answered.
	q := dnswire.NewQuery(9, "nl.", dnswire.TypeSOA)
	out, _ := q.Pack()
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dnswire.Unpack(buf[:n]); err != nil {
		t.Fatal(err)
	}
}

func TestServerCloseIdempotentUse(t *testing.T) {
	z, _ := zonedb.NewCcTLD("nl", 10, 0, 0, []string{"ns1.dns.nl"})
	s, err := Listen("127.0.0.1:0", NewEngine(z))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPFramingRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msg := []byte("hello dns")
	if err := WriteTCPMessage(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTCPMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
}

func TestTCPFramingRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTCPMessage(&buf, make([]byte, 70000)); err == nil {
		t.Error("oversize message accepted")
	}
}
