package recursor

import (
	"encoding/binary"

	"dnscentral/internal/dnswire"
)

// ttlOffsets walks a packed message and records the wire offset of
// every RR TTL field, skipping OPT pseudo-RRs (their TTL carries the
// extended RCODE and EDNS flags, not a lifetime). The serve-stale path
// patches clamped TTLs through these offsets into the copied response
// without re-parsing, keeping stale serving allocation-free per query.
// Returns nil on any malformed structure — the entry then serves stale
// with original TTLs, which RFC 8767 tolerates.
func ttlOffsets(wire []byte) []uint16 {
	if len(wire) < dnswire.HeaderLen {
		return nil
	}
	qd := int(binary.BigEndian.Uint16(wire[4:]))
	rrs := int(binary.BigEndian.Uint16(wire[6:])) +
		int(binary.BigEndian.Uint16(wire[8:])) +
		int(binary.BigEndian.Uint16(wire[10:]))
	off := dnswire.HeaderLen
	var err error
	for i := 0; i < qd; i++ {
		if off, err = dnswire.SkipName(wire, off); err != nil {
			return nil
		}
		off += 4
	}
	var out []uint16
	for i := 0; i < rrs; i++ {
		if off, err = dnswire.SkipName(wire, off); err != nil {
			return nil
		}
		if off+10 > len(wire) {
			return nil
		}
		typ := dnswire.Type(binary.BigEndian.Uint16(wire[off:]))
		rdlen := int(binary.BigEndian.Uint16(wire[off+8:]))
		if typ != dnswire.TypeOPT {
			out = append(out, uint16(off+4))
		}
		off += 10 + rdlen
		if off > len(wire) {
			return nil
		}
	}
	return out
}

// clampTTLs rewrites every recorded TTL in resp that exceeds maxSecs
// down to maxSecs. Offsets past len(resp) (records clipped away by
// TC truncation) are skipped.
func clampTTLs(resp []byte, offs []uint16, maxSecs uint32) {
	for _, off := range offs {
		if int(off)+4 > len(resp) {
			continue
		}
		if binary.BigEndian.Uint32(resp[off:]) > maxSecs {
			binary.BigEndian.PutUint32(resp[off:], maxSecs)
		}
	}
}

// parentZone maps a qname to its flood-accounting zone: the name with
// its first label stripped ("w123.d1.nl." under "nl." → "d1.nl.";
// "junk.nl." → "nl."), clamped to the recursor's origin for apex or
// out-of-bailiwick names. A random-subdomain (water-torture) flood
// shares its victim's parent under this key while its qnames never
// repeat — exactly the aggregation the NXDOMAIN-rate detector needs.
func parentZone(qname, origin string) string {
	for i := 0; i+1 < len(qname); i++ {
		if qname[i] == '.' {
			p := qname[i+1:]
			if len(p) >= len(origin) && p[len(p)-len(origin):] == origin {
				return p
			}
			break
		}
	}
	return origin
}
