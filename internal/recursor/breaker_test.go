package recursor

import (
	"testing"
	"time"
)

func TestBreakerClosedToOpenToHalfOpenToClosed(t *testing.T) {
	clk := newClock()
	b := newBreaker(BreakerConfig{Failures: 3, OpenFor: time.Second})

	if b.State() != BreakerClosed {
		t.Fatal("new breaker must start closed")
	}
	b.onFailure(clk.Now())
	b.onFailure(clk.Now())
	if !b.admit(clk.Now()) {
		t.Fatal("closed breaker below threshold must admit")
	}
	b.onFailure(clk.Now()) // third consecutive failure: trip
	if b.State() != BreakerOpen {
		t.Fatalf("state = %d after threshold, want open", b.State())
	}
	if b.admit(clk.Now()) {
		t.Fatal("open breaker must reject inside the window")
	}
	if b.rejects.Load() == 0 {
		t.Fatal("rejection not counted")
	}

	clk.Advance(1100 * time.Millisecond)
	if !b.admit(clk.Now()) {
		t.Fatal("expired window must half-open and grant the probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %d, want half-open", b.State())
	}
	if b.admit(clk.Now()) {
		t.Fatal("half-open breaker must hold concurrent traffic to one probe")
	}
	b.onSuccess()
	if b.State() != BreakerClosed {
		t.Fatal("successful probe must close the breaker")
	}
	if !b.admit(clk.Now()) {
		t.Fatal("closed breaker must admit again")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	clk := newClock()
	b := newBreaker(BreakerConfig{Failures: 1, OpenFor: time.Second})
	b.onFailure(clk.Now())
	clk.Advance(2 * time.Second)
	if !b.admit(clk.Now()) {
		t.Fatal("probe not granted")
	}
	b.onFailure(clk.Now())
	if b.State() != BreakerOpen {
		t.Fatal("failed probe must re-open")
	}
	if b.admit(clk.Now()) {
		t.Fatal("re-opened breaker must reject")
	}
	if got := b.opens.Load(); got != 2 {
		t.Fatalf("opens = %d, want 2", got)
	}
}

func TestBreakerOnCancelReleasesProbeSlot(t *testing.T) {
	clk := newClock()
	b := newBreaker(BreakerConfig{Failures: 1, OpenFor: time.Second})
	b.onFailure(clk.Now())
	clk.Advance(2 * time.Second)
	if !b.admit(clk.Now()) {
		t.Fatal("probe not granted")
	}
	// The probe was torn down (hedge loser) — no verdict on the upstream.
	b.onCancel()
	if b.State() != BreakerOpen {
		t.Fatal("cancelled probe must revert to open")
	}
	// The window already passed, so the next admit re-probes immediately.
	if !b.admit(clk.Now()) {
		t.Fatal("next admit after cancelled probe must re-probe")
	}
	if got := b.probes.Load(); got != 2 {
		t.Fatalf("probes = %d, want 2", got)
	}
}

func TestPickSkipsOpenBreakers(t *testing.T) {
	clk := newClock()
	a := &Upstream{Name: "a"}
	b := &Upstream{Name: "b"}
	a.observe(time.Millisecond)
	b.observe(time.Millisecond)
	p := NewPool(1, a, b)
	p.armBreakers(BreakerConfig{Failures: 1, OpenFor: time.Minute})

	a.br.onFailure(clk.Now()) // a trips open
	for i := 0; i < 20; i++ {
		u, idx := p.Pick(clk.Now())
		if u != b || idx != 1 {
			t.Fatalf("pick %d chose %v/%d with a's breaker open, want b/1", i, u, idx)
		}
	}
	if !p.anyAdmissible(clk.Now()) {
		t.Fatal("b is healthy; pool must be admissible")
	}

	b.br.onFailure(clk.Now()) // b trips too: whole pool dark
	if u, idx := p.Pick(clk.Now()); u != nil || idx != -1 {
		t.Fatalf("all-open pool picked %v/%d, want nil/-1", u, idx)
	}
	if p.anyAdmissible(clk.Now()) {
		t.Fatal("all-open pool must not be admissible")
	}
	if u, _ := p.PickOther(0, clk.Now()); u != nil {
		t.Fatal("PickOther must respect open breakers")
	}
}
