package recursor

import (
	"fmt"
	"strings"

	"dnscentral/internal/stats"
)

// ProviderShare is one provider's slice of both traffic planes.
type ProviderShare struct {
	Name string
	// UpstreamQueries are wire exchanges this provider's authoritative
	// servers actually received from the recursor (what the paper's
	// vantage measures).
	UpstreamQueries uint64
	UpstreamShare   float64
	// StubAnswers are stub queries whose answer this provider sourced,
	// cache hits included (what end users actually experienced).
	StubAnswers uint64
	StubShare   float64
}

// Report quantifies centralization through the cache tier: the provider
// share distribution of upstream traffic (the authoritative vantage the
// paper measures) against the share distribution of stub answers (the
// stub vantage the cache reshapes). A provider that answered a popular
// name once can source a dominant stub share from cache while barely
// appearing upstream — the masking effect the report's HHI pair makes
// visible.
type Report struct {
	StubQueries    uint64
	CacheHits      uint64
	CacheMisses    uint64
	AggressiveHits uint64
	Stale          uint64
	Evictions      uint64
	Singleflight   uint64
	Hedges         uint64
	HedgeWins      uint64
	Failovers      uint64
	TCPFallbacks   uint64
	Servfails      uint64

	Providers            []ProviderShare
	UpstreamHHI, StubHHI float64
}

// HitRate is cache hits over cache lookups (aggressive synthesis not
// included: those queries never reached the answer cache).
func (rep Report) HitRate() float64 {
	total := rep.CacheHits + rep.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(rep.CacheHits) / float64(total)
}

// Report snapshots the counters into the centralization report,
// aggregating upstreams that share a provider name.
func (r *Recursor) Report() Report {
	cs := r.cache.Stats()
	rep := Report{
		StubQueries:    r.stubQueries.Load(),
		CacheHits:      cs.Hits,
		CacheMisses:    cs.Misses,
		AggressiveHits: r.aggressiveHits.Load(),
		Stale:          cs.Stale,
		Evictions:      cs.Evictions,
		Singleflight:   cs.SingleflightShared,
		Hedges:         r.hedges.Load(),
		HedgeWins:      r.hedgeWins.Load(),
		Failovers:      r.failovers.Load(),
		TCPFallbacks:   r.tcpFallbacks.Load(),
		Servfails:      r.servfails.Load(),
	}
	upstream := make(map[string]uint64)
	stub := make(map[string]uint64)
	for i := 0; i < r.pool.Len(); i++ {
		u := r.pool.Upstream(i)
		upstream[u.Name] += u.queries.Load()
		stub[u.Name] += u.answers.Load()
	}
	upShares := stats.Shares(upstream)
	stubShares := stats.Shares(stub)
	stubByName := make(map[string]stats.Share, len(stubShares))
	for _, s := range stubShares {
		stubByName[s.Name] = s
	}
	for _, s := range upShares {
		st := stubByName[s.Name]
		rep.Providers = append(rep.Providers, ProviderShare{
			Name:            s.Name,
			UpstreamQueries: s.Count,
			UpstreamShare:   s.Fraction,
			StubAnswers:     st.Count,
			StubShare:       st.Fraction,
		})
	}
	rep.UpstreamHHI = stats.HHI(upShares)
	rep.StubHHI = stats.HHI(stubShares)
	return rep
}

// Resilience snapshots the outage-survival counters. Call
// WaitRefreshes first when background stale refreshes must be settled
// (tests; the live CLI snapshots whatever is current).
func (r *Recursor) Resilience() stats.Resilience {
	cs := r.cache.Stats()
	res := stats.Resilience{
		StubQueries:      r.stubQueries.Load(),
		Servfails:        r.servfails.Load(),
		FloodRefused:     r.floodRefused.Load(),
		FreshHits:        cs.Hits,
		StaleServed:      r.staleServed.Load(),
		StaleRefreshes:   r.staleRefreshes.Load(),
		FailCacheHits:    cs.FailHits,
		BreakerFastFails: r.breakerFastFails.Load(),
		RRLDrops:         r.rrlDrops.Load(),
		RRLSlips:         r.rrlSlips.Load(),
	}
	for i := 0; i < r.pool.Len(); i++ {
		u := r.pool.Upstream(i)
		res.BreakerOpens += u.BreakerOpens()
		res.UpstreamQueries += u.queries.Load()
		res.UpstreamFailures += u.failures.Load()
	}
	return res
}

// Format renders the report for the CLI.
func (rep Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cache-tier centralization report:\n")
	fmt.Fprintf(&b, "  stub queries          %10d\n", rep.StubQueries)
	fmt.Fprintf(&b, "  cache hit rate        %9.1f%% (%d hits, %d misses, %d stale, %d evicted)\n",
		100*rep.HitRate(), rep.CacheHits, rep.CacheMisses, rep.Stale, rep.Evictions)
	fmt.Fprintf(&b, "  aggressive NSEC hits  %10d\n", rep.AggressiveHits)
	fmt.Fprintf(&b, "  singleflight shared   %10d\n", rep.Singleflight)
	fmt.Fprintf(&b, "  hedged queries        %10d (%d hedge wins, %d failovers)\n",
		rep.Hedges, rep.HedgeWins, rep.Failovers)
	fmt.Fprintf(&b, "  TCP fallbacks         %10d\n", rep.TCPFallbacks)
	fmt.Fprintf(&b, "  SERVFAIL answers      %10d\n", rep.Servfails)
	fmt.Fprintf(&b, "  provider shares (upstream vantage vs stub vantage):\n")
	for _, p := range rep.Providers {
		fmt.Fprintf(&b, "    %-12s upstream %6d (%5.1f%%)   stub %8d (%5.1f%%)\n",
			p.Name, p.UpstreamQueries, 100*p.UpstreamShare, p.StubAnswers, 100*p.StubShare)
	}
	fmt.Fprintf(&b, "  concentration (HHI): upstream %.3f vs stub %.3f\n", rep.UpstreamHHI, rep.StubHHI)
	return b.String()
}
