package recursor

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dnscentral/internal/authserver"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/resolver"
)

// brownableTransport wraps a live transport with a kill switch — the
// in-process equivalent of browning out the sole upstream.
type brownableTransport struct {
	mu   sync.Mutex
	live resolver.Transport
	down bool
}

func (b *brownableTransport) setDown(down bool) {
	b.mu.Lock()
	b.down = down
	b.mu.Unlock()
}

func (b *brownableTransport) Exchange(q *dnswire.Message, tcp bool) (*dnswire.Message, time.Duration, error) {
	b.mu.Lock()
	down := b.down
	b.mu.Unlock()
	if down {
		return nil, 0, errors.New("brownout: upstream dark")
	}
	return b.live.Exchange(q, tcp)
}

// outageFixture is a single-upstream recursor whose upstream can be
// switched dark, with serve-stale, failure caching and breakers armed.
func outageFixture(t *testing.T, cfg Config) (*Recursor, *brownableTransport, *virtualClock) {
	t.Helper()
	f := newFixture(t)
	tr := &brownableTransport{live: &resolver.EngineTransport{Engine: f.engine, Client: stubAddr}}
	cfg.Origin = "nl."
	cfg.Seed = 42
	cfg.Now = f.clk.Now
	pool := NewPool(cfg.Seed, &Upstream{Name: "soleCloud", Transport: tr})
	return New(cfg, pool), tr, f.clk
}

func TestServeStaleSurvivesBrownout(t *testing.T) {
	r, tr, clk := outageFixture(t, Config{
		MaxTTL:   30 * time.Second,
		MaxStale: time.Hour,
		StaleTTL: 30 * time.Second,
		FailTTL:  2 * time.Second,
		Breaker:  BreakerConfig{Failures: 2, OpenFor: time.Second},
	})
	sc := NewScratch()

	// Warm the cache, then expire the entry and kill the upstream.
	warm := query(t, 1, "www.d5.nl.", dnswire.TypeA, 1232, false)
	if resp := r.HandleWire(warm, nil, false, sc); resp == nil {
		t.Fatal("warm query dropped")
	}
	warmQueries := r.pool.Upstream(0).Queries()
	clk.Advance(31 * time.Second)
	tr.setDown(true)

	// Phase A — burst at one instant: every repeat ask during the
	// brownout must still get the (stale) answer, TTLs clamped to
	// StaleTTL. The first ask burns one refresh attempt; the failure
	// cache absorbs the other 99 without touching the wire.
	const asks = 100
	for i := 0; i < asks; i++ {
		q := query(t, uint16(10+i), "www.d5.nl.", dnswire.TypeA, 1232, false)
		resp := r.HandleWire(q, nil, false, sc)
		if resp == nil {
			t.Fatalf("ask %d dropped during brownout", i)
		}
		m, err := dnswire.Unpack(resp)
		if err != nil {
			t.Fatalf("ask %d unparseable: %v", i, err)
		}
		if m.Header.RCode != dnswire.RCodeNoError {
			t.Fatalf("ask %d rcode = %s, want stale NOERROR", i, m.Header.RCode)
		}
		for _, rr := range m.Answers {
			if rr.TTL > 30 {
				t.Fatalf("stale TTL %d exceeds the 30s clamp", rr.TTL)
			}
		}
		r.WaitRefreshes() // settle the background refresh before the next ask
	}
	if got := r.staleServed.Load(); got != asks {
		t.Fatalf("staleServed = %d, want %d (100%% stale availability)", got, asks)
	}
	if r.servfails.Load() != 0 {
		t.Fatalf("servfails = %d during brownout, want 0", r.servfails.Load())
	}
	if burned := r.pool.Upstream(0).Queries() - warmQueries; burned != 1 {
		t.Fatalf("one-instant burst burned %d upstream attempts, want 1 (fail cache)", burned)
	}
	if r.cache.failHits.Load() == 0 {
		t.Fatal("failure cache absorbed nothing")
	}

	// Phase B — the brownout wears on: once the fail mark expires each
	// refresh retries, the breaker trips at its 2-failure threshold and
	// every later attempt is a single half-open probe per window. Stale
	// answers keep flowing throughout.
	for i := 0; i < 5; i++ {
		clk.Advance(3 * time.Second) // past FailTTL and the breaker window
		q := query(t, uint16(200+i), "www.d5.nl.", dnswire.TypeA, 1232, false)
		if resp := r.HandleWire(q, nil, false, sc); resp == nil {
			t.Fatalf("sustained ask %d dropped", i)
		}
		r.WaitRefreshes()
	}
	if got := r.staleServed.Load(); got != asks+5 {
		t.Fatalf("staleServed = %d after sustained phase, want %d", got, asks+5)
	}
	burned := r.pool.Upstream(0).Queries() - warmQueries
	if burned > 6 {
		t.Fatalf("brownout leaked %d upstream attempts, want ≤ 6 (probe rate)", burned)
	}
	if r.pool.Upstream(0).BreakerState() != BreakerOpen {
		t.Fatal("sole upstream's breaker must be open after failed probes")
	}
	if r.pool.Upstream(0).BreakerOpens() == 0 {
		t.Fatal("breaker never recorded an open")
	}

	// Recovery: upstream back, breaker window passed — the next refresh
	// probe repopulates the entry and fresh answers resume.
	tr.setDown(false)
	clk.Advance(3 * time.Second) // past FailTTL and the breaker window
	q := query(t, 900, "www.d5.nl.", dnswire.TypeA, 1232, false)
	if resp := r.HandleWire(q, nil, false, sc); resp == nil {
		t.Fatal("recovery ask dropped")
	}
	r.WaitRefreshes()
	if r.pool.Upstream(0).BreakerState() != BreakerClosed {
		t.Fatal("successful probe must close the breaker")
	}
	if r.cache.Get(AppendKey(nil, []byte("www.d5.nl."), dnswire.TypeA, false)) == nil {
		t.Fatal("refresh did not repopulate the entry")
	}
}

func TestColdMissDuringOutageServfailsWithoutStorm(t *testing.T) {
	r, tr, clk := outageFixture(t, Config{
		MaxStale: time.Hour,
		FailTTL:  time.Second,
		Breaker:  BreakerConfig{Failures: 2, OpenFor: 10 * time.Second},
	})
	sc := NewScratch()
	tr.setDown(true)

	// A name with no cached history: nothing to serve stale, so the
	// stub sees SERVFAIL — but the miss storm stays off the wire. The
	// clock creeps forward so the fail mark periodically expires; those
	// retries hit the open breaker and fast-fail instead of the wire.
	for i := 0; i < 50; i++ {
		if i%3 == 0 {
			clk.Advance(1500 * time.Millisecond)
		}
		q := query(t, uint16(i), "www.d9.nl.", dnswire.TypeA, 1232, false)
		resp := r.HandleWire(q, nil, false, sc)
		if resp == nil {
			t.Fatalf("ask %d dropped", i)
		}
		if rc := dnswire.RCode(resp[3] & 0xF); rc != dnswire.RCodeServFail {
			t.Fatalf("ask %d rcode = %s, want SERVFAIL", i, rc)
		}
	}
	// Two wire attempts trip the breaker; after that only half-open
	// probes (one per 10s window over ~25s of virtual time) get out.
	if got := r.pool.Upstream(0).Queries(); got > 6 {
		t.Fatalf("cold-miss storm leaked %d upstream attempts, want ≤ 6", got)
	}
	if r.servfails.Load() != 50 {
		t.Fatalf("servfails = %d, want 50", r.servfails.Load())
	}
	if r.cache.failHits.Load() == 0 {
		t.Fatal("failure cache absorbed nothing")
	}
	if r.breakerFastFails.Load() == 0 {
		t.Fatal("no fill fast-failed on the open breaker")
	}
}

func TestWaterTortureGuardShieldsUpstream(t *testing.T) {
	f := newFixture(t)
	r := f.recursor(Config{
		Flood: FloodConfig{NXPerSec: 10, Hold: 5 * time.Second, ProbeRate: 1},
	})
	sc := NewScratch()

	// 100 unique junk labels directly under the origin — the engine
	// answers NXDOMAIN for each (names under a delegation get referrals
	// instead, which the recursor caches like any answer). parentZone
	// accounts them all to "nl.", and the frozen clock lands the whole
	// flood in one 1s rate window.
	refusedSeen := false
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("w%04x-junk.nl.", i)
		q := query(t, uint16(i), name, dnswire.TypeA, 1232, false)
		resp := r.HandleWire(q, nil, false, sc)
		if resp == nil {
			t.Fatalf("flood query %d dropped", i)
		}
		if dnswire.RCode(resp[3]&0xF) == dnswire.RCodeRefused {
			refusedSeen = true
		}
	}
	if !refusedSeen {
		t.Fatal("guard never tripped to REFUSED")
	}
	if got := r.floodRefused.Load(); got < 80 {
		t.Fatalf("floodRefused = %d, want ≥ 80 of 100", got)
	}
	// Upstream saw the detection threshold plus the probe trickle, not
	// the flood.
	if got := upstreamQueries(r); got > 15 {
		t.Fatalf("flood leaked %d upstream queries, want ≤ 15", got)
	}

	// Deeper zones key to their own parent ("d2.nl."), so real names
	// under delegations still resolve while "nl." itself is suppressed.
	if resp := r.HandleWire(query(t, 901, "www.d2.nl.", dnswire.TypeA, 1232, false), nil, false, sc); resp == nil ||
		dnswire.RCode(resp[3]&0xF) != dnswire.RCodeNoError {
		t.Fatal("unrelated zone impaired by the guard")
	}
}

func TestUpstreamCookiesRoundTrip(t *testing.T) {
	f := newFixture(t)
	r := f.recursor(Config{UseCookies: true})
	sc := NewScratch()

	before := f.engine.Stats()
	if resp := r.HandleWire(query(t, 1, "www.d5.nl.", dnswire.TypeA, 1232, false), nil, false, sc); resp == nil {
		t.Fatal("query dropped")
	}
	after := f.engine.Stats()
	if after.CookieSeen == before.CookieSeen {
		t.Fatal("upstream query carried no COOKIE option")
	}
	// The jar must have learned the server cookie from the response;
	// the next query then presents a full client+server cookie.
	u := r.pool.Upstream(0)
	if u.jar == nil {
		t.Fatal("cookies enabled but no jar armed")
	}
	if got := len(u.jar.Option()); got <= authserver.ClientCookieLen {
		u2 := r.pool.Upstream(1)
		if u2.jar == nil || len(u2.jar.Option()) <= authserver.ClientCookieLen {
			t.Fatalf("no jar learned a server cookie (option %d bytes)", got)
		}
	}
}

// outageScript drives one deterministic warm→brownout→flood sequence
// and returns the formatted resilience report.
func outageScript(t *testing.T) string {
	t.Helper()
	r, tr, clk := outageFixture(t, Config{
		MaxTTL:   30 * time.Second,
		MaxStale: time.Hour,
		FailTTL:  2 * time.Second,
		Breaker:  BreakerConfig{Failures: 2, OpenFor: time.Second},
		Flood:    FloodConfig{NXPerSec: 10},
	})
	sc := NewScratch()
	for i := 0; i < 10; i++ {
		r.HandleWire(query(t, uint16(i), fmt.Sprintf("www.d%d.nl.", i), dnswire.TypeA, 1232, false), nil, false, sc)
	}
	clk.Advance(31 * time.Second)
	tr.setDown(true)
	for i := 0; i < 30; i++ {
		r.HandleWire(query(t, uint16(100+i), fmt.Sprintf("www.d%d.nl.", i%10), dnswire.TypeA, 1232, false), nil, false, sc)
		r.WaitRefreshes()
	}
	tr.setDown(false)
	for i := 0; i < 40; i++ {
		r.HandleWire(query(t, uint16(200+i), fmt.Sprintf("w%03x-junk.nl.", i), dnswire.TypeA, 1232, false), nil, false, sc)
	}
	r.WaitRefreshes()
	return r.Resilience().Format()
}

func TestResilienceReportDeterministic(t *testing.T) {
	a, b := outageScript(t), outageScript(t)
	if a != b {
		t.Fatalf("same-seed resilience reports differ:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	for _, want := range []string{"availability", "stale share", "amplification", "breaker"} {
		if !contains(a, want) {
			t.Fatalf("report missing %q:\n%s", want, a)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// slowAnswerTransport answers correctly but only after ctx-aware delay,
// exercising the stale path's non-blocking property.
type slowAnswerTransport struct {
	inner resolver.Transport
	delay time.Duration
}

func (s *slowAnswerTransport) Exchange(q *dnswire.Message, tcp bool) (*dnswire.Message, time.Duration, error) {
	time.Sleep(s.delay)
	return s.inner.Exchange(q, tcp)
}

func (s *slowAnswerTransport) ExchangeContext(ctx context.Context, q *dnswire.Message, tcp bool, timeout time.Duration) (*dnswire.Message, time.Duration, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
	return s.inner.Exchange(q, tcp)
}

func TestStaleServeDoesNotBlockOnSlowUpstream(t *testing.T) {
	f := newFixture(t)
	slow := &slowAnswerTransport{
		inner: &resolver.EngineTransport{Engine: f.engine, Client: stubAddr},
	}
	pool := NewPool(42, &Upstream{Name: "slow", Transport: slow})
	r := New(Config{
		Origin: "nl.", Seed: 42, Now: f.clk.Now,
		MaxTTL: 30 * time.Second, MaxStale: time.Hour,
	}, pool)
	sc := NewScratch()

	q := query(t, 1, "www.d5.nl.", dnswire.TypeA, 1232, false)
	r.HandleWire(q, nil, false, sc) // warm (no delay configured yet)
	f.clk.Advance(31 * time.Second)
	slow.delay = 2 * time.Second

	begin := time.Now()
	resp := r.HandleWire(query(t, 2, "www.d5.nl.", dnswire.TypeA, 1232, false), nil, false, sc)
	if resp == nil {
		t.Fatal("stale ask dropped")
	}
	if rc := dnswire.RCode(resp[3] & 0xF); rc != dnswire.RCodeNoError {
		t.Fatalf("stale rcode = %s", rc)
	}
	if took := time.Since(begin); took > time.Second {
		t.Fatalf("stale serve blocked %v on the slow refresh, want immediate", took)
	}
	if r.staleServed.Load() != 1 {
		t.Fatalf("staleServed = %d, want 1", r.staleServed.Load())
	}
	r.WaitRefreshes() // let the slow background refresh land
	if r.staleRefreshes.Load() != 1 {
		t.Fatalf("staleRefreshes = %d, want 1", r.staleRefreshes.Load())
	}
}
