package recursor

import (
	"testing"
	"time"
)

func TestEWMAConverges(t *testing.T) {
	u := &Upstream{Name: "a"}
	if u.EWMA() != 0 {
		t.Fatal("unmeasured upstream must report 0")
	}
	u.observe(100 * time.Millisecond)
	if u.EWMA() != 100*time.Millisecond {
		t.Fatalf("first sample should seed the estimate, got %v", u.EWMA())
	}
	for i := 0; i < 100; i++ {
		u.observe(10 * time.Millisecond)
	}
	if got := u.EWMA(); got > 15*time.Millisecond {
		t.Fatalf("EWMA failed to converge toward 10ms: %v", got)
	}
}

func TestPenalizePushesEstimateUp(t *testing.T) {
	u := &Upstream{Name: "a"}
	u.observe(5 * time.Millisecond)
	before := u.EWMA()
	u.penalize()
	if u.EWMA() <= before {
		t.Fatalf("penalty did not raise the estimate: %v -> %v", before, u.EWMA())
	}
}

func TestP2CPrefersFasterUpstream(t *testing.T) {
	fast := &Upstream{Name: "fast"}
	slow := &Upstream{Name: "slow"}
	fast.observe(2 * time.Millisecond)
	slow.observe(200 * time.Millisecond)
	p := NewPool(42, fast, slow)
	fastPicks := 0
	for i := 0; i < 1000; i++ {
		if u, _ := p.Pick(time.Now()); u == fast {
			fastPicks++
		}
	}
	// With two upstreams P2C always compares both, so the faster one
	// must win every draw.
	if fastPicks != 1000 {
		t.Fatalf("fast picked %d/1000, want 1000", fastPicks)
	}
}

func TestP2CProbesUnmeasuredFirst(t *testing.T) {
	measured := &Upstream{Name: "measured"}
	measured.observe(time.Millisecond)
	fresh := &Upstream{Name: "fresh"}
	p := NewPool(7, measured, fresh)
	if u, _ := p.Pick(time.Now()); u != fresh {
		t.Fatal("unmeasured upstream must win its first comparison")
	}
}

func TestP2CSpreadsAcrossComparableUpstreams(t *testing.T) {
	ups := []*Upstream{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}}
	for _, u := range ups {
		u.observe(10 * time.Millisecond)
	}
	p := NewPool(1, ups...)
	picks := make(map[string]int)
	for i := 0; i < 4000; i++ {
		u, _ := p.Pick(time.Now())
		picks[u.Name]++
		// Tiny jitter so estimates wander but stay comparable.
		u.observe(10 * time.Millisecond)
	}
	for _, u := range ups {
		if picks[u.Name] < 400 {
			t.Fatalf("upstream %s starved: %d/4000 picks (%v)", u.Name, picks[u.Name], picks)
		}
	}
}

func TestPickOtherReturnsBestAlternative(t *testing.T) {
	a := &Upstream{Name: "a"}
	b := &Upstream{Name: "b"}
	c := &Upstream{Name: "c"}
	a.observe(1 * time.Millisecond)
	b.observe(50 * time.Millisecond)
	c.observe(5 * time.Millisecond)
	p := NewPool(1, a, b, c)
	if u, idx := p.PickOther(0, time.Now()); u != c || idx != 2 {
		t.Fatalf("PickOther(0) = %v/%d, want c/2", u, idx)
	}
	single := NewPool(1, a)
	if u, _ := single.PickOther(0, time.Now()); u != nil {
		t.Fatal("single-upstream pool must have no hedge target")
	}
}
