package recursor

import (
	"context"
	"errors"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnscentral/internal/dnswire"
	"dnscentral/internal/resolver"
	"dnscentral/internal/telemetry"
)

// Config shapes the recursor tier.
type Config struct {
	// Origin is the zone the upstreams are authoritative for; it scopes
	// the RFC 8198 aggressive-NSEC cache and the flood guard's per-zone
	// accounting.
	Origin string
	// CacheEntries bounds the answer cache (default 65536).
	CacheEntries int
	// CacheShards is the lock-sharding factor, rounded up to a power of
	// two (default 16).
	CacheShards int
	// EDNSSize is the EDNS(0) size advertised on upstream queries
	// (default 1232, the DNS-flag-day value; 0 disables upstream EDNS).
	EDNSSize uint16
	// UpstreamTimeout bounds each upstream exchange (default 3s).
	UpstreamTimeout time.Duration
	// HedgeDelay is how long a fill waits on the primary upstream
	// before racing a second query against the best alternative; the
	// first answer wins and the loser is cancelled. 0 disables latency
	// hedging (failure-triggered failover stays on).
	HedgeDelay time.Duration
	// MinTTL/MaxTTL clamp cache lifetimes (defaults 1s and 1h).
	MinTTL, MaxTTL time.Duration
	// AggressiveNSEC enables RFC 8198 synthesis: NSEC ranges learned
	// from DO-bit NXDOMAIN answers deny other covered names without an
	// upstream query.
	AggressiveNSEC bool
	// MaxStale is the RFC 8767 serve-stale window: expired entries stay
	// retrievable this long past expiry and are served — TTLs clamped
	// to StaleTTL — while an asynchronous refresh repopulates them, so
	// an upstream outage browns out gracefully instead of going dark.
	// 0 disables serve-stale entirely.
	MaxStale time.Duration
	// StaleTTL is the TTL clamp on served stale answers (default 30s,
	// the RFC 8767 recommendation: long enough to damp retry storms,
	// short enough that stubs re-ask soon after recovery).
	StaleTTL time.Duration
	// FailTTL is the negative failure-cache window (RFC 2308 §7 style):
	// after a fill fails, repeat misses for the same key inside the
	// window are answered from stale (or SERVFAIL) without touching the
	// upstream path, absorbing miss storms during an outage. 0 disables.
	FailTTL time.Duration
	// Breaker arms a per-upstream circuit breaker (Failures 0 disables):
	// consecutive failures open it, fills fast-fail past it, and a
	// half-open probe re-admits the upstream when it recovers.
	Breaker BreakerConfig
	// UseCookies round-trips RFC 7873 DNS cookies on upstream queries
	// (one jar per upstream), earning the RRL exemption cookie-validating
	// authservers grant proven-source clients.
	UseCookies bool
	// RRL is the stub-facing per-client-IP token-bucket rate limit
	// (RatePerSec 0 disables). UDP only; TCP proves the source address.
	RRL RRLConfig
	// Flood is the random-subdomain (water-torture) guard: zones whose
	// NXDOMAIN-miss rate crosses the threshold get their misses REFUSED
	// at the front door, upstream shielded (NXPerSec 0 disables).
	Flood FloodConfig
	// Seed fixes the P2C and cookie randomness for reproducible runs.
	Seed int64
	// Now is the cache clock (default time.Now); tests inject a
	// virtual clock to step TTLs deterministically.
	Now func() time.Time
	// Telemetry, when set, publishes the recursor_* metric families.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1 << 16
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.EDNSSize == 0 {
		c.EDNSSize = 1232
	}
	if c.UpstreamTimeout <= 0 {
		c.UpstreamTimeout = 3 * time.Second
	}
	if c.MinTTL <= 0 {
		c.MinTTL = time.Second
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = time.Hour
	}
	if c.StaleTTL <= 0 {
		c.StaleTTL = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// ErrNoUpstream is returned when every upstream attempt failed.
var ErrNoUpstream = errors.New("recursor: all upstream attempts failed")

// ErrBreakerOpen is returned when every upstream's circuit breaker
// refused the exchange — the fill fast-fails without wire traffic.
var ErrBreakerOpen = errors.New("recursor: all upstream breakers open")

// Recursor answers stub queries from the sharded cache, filling misses
// through the upstream pool with singleflight collapsing and hedged
// racing. The wire-level serve path (HandleWire) is allocation-free on
// cache hits. With MaxStale set it degrades gracefully through an
// upstream outage: expired entries are served stale (RFC 8767) while
// breakers hold the dead upstream to a probe trickle.
type Recursor struct {
	cfg   Config
	cache *Cache
	pool  *Pool
	nsec  *resolver.NSECCache
	rrl   *rateLimiter
	flood *floodGuard

	nextID    atomic.Uint32
	refreshWG sync.WaitGroup

	stubQueries      atomic.Uint64
	aggressiveHits   atomic.Uint64
	truncations      atomic.Uint64
	hedges           atomic.Uint64
	hedgeWins        atomic.Uint64
	failovers        atomic.Uint64
	tcpFallbacks     atomic.Uint64
	servfails        atomic.Uint64
	dropped          atomic.Uint64
	refused          atomic.Uint64
	staleServed      atomic.Uint64
	staleRefreshes   atomic.Uint64
	breakerFastFails atomic.Uint64
	rrlDrops         atomic.Uint64
	rrlSlips         atomic.Uint64
	floodRefused     atomic.Uint64

	latency *telemetry.Histogram
}

// New builds a recursor over the pool. The pool must hold ≥1 upstream.
func New(cfg Config, pool *Pool) *Recursor {
	cfg = cfg.withDefaults()
	r := &Recursor{
		cfg: cfg,
		cache: NewCache(CacheConfig{
			MaxEntries: cfg.CacheEntries,
			Shards:     cfg.CacheShards,
			MaxStale:   cfg.MaxStale,
			FailTTL:    cfg.FailTTL,
			TTLFloor:   cfg.MinTTL,
			TTLCap:     cfg.MaxTTL,
			Now:        cfg.Now,
		}),
		pool:  pool,
		nsec:  resolver.NewNSECCache(cfg.Origin),
		rrl:   newRateLimiter(cfg.RRL, cfg.Now),
		flood: newFloodGuard(cfg.Flood, cfg.Now),
	}
	pool.armBreakers(cfg.Breaker)
	if cfg.UseCookies {
		for i := 0; i < pool.Len(); i++ {
			pool.Upstream(i).jar = resolver.NewCookieJar(cfg.Seed + int64(i) + 1)
		}
	}
	r.register(cfg.Telemetry)
	return r
}

// register exposes the live metric families; all readers are
// exposition-time CounterFunc/GaugeFunc over the atomics the hot path
// already maintains, so telemetry adds zero work per query.
func (r *Recursor) register(reg *telemetry.Registry) {
	r.latency = reg.Histogram("recursor_answer_seconds")
	if reg == nil {
		return
	}
	reg.CounterFunc("recursor_stub_queries_total", r.stubQueries.Load)
	reg.CounterFunc("recursor_cache_hits_total", r.cache.hits.Load)
	reg.CounterFunc("recursor_cache_misses_total", r.cache.misses.Load)
	reg.CounterFunc("recursor_cache_stale_total", r.cache.stale.Load)
	reg.CounterFunc("recursor_cache_evictions_total", r.cache.evictions.Load)
	reg.CounterFunc("recursor_cache_locked_gets_total", r.cache.lockedGets.Load)
	reg.CounterFunc("recursor_singleflight_shared_total", r.cache.sfShared.Load)
	reg.CounterFunc("recursor_aggressive_hits_total", r.aggressiveHits.Load)
	reg.CounterFunc("recursor_truncated_total", r.truncations.Load)
	reg.CounterFunc("recursor_hedges_total", r.hedges.Load)
	reg.CounterFunc("recursor_hedge_wins_total", r.hedgeWins.Load)
	reg.CounterFunc("recursor_failovers_total", r.failovers.Load)
	reg.CounterFunc("recursor_upstream_tcp_fallbacks_total", r.tcpFallbacks.Load)
	reg.CounterFunc("recursor_servfail_total", r.servfails.Load)
	reg.CounterFunc("recursor_dropped_total", r.dropped.Load)
	reg.CounterFunc("recursor_stale_served_total", r.staleServed.Load)
	reg.CounterFunc("recursor_stale_refreshes_total", r.staleRefreshes.Load)
	reg.CounterFunc("recursor_fail_cache_marks_total", r.cache.failMarks.Load)
	reg.CounterFunc("recursor_fail_cache_hits_total", r.cache.failHits.Load)
	reg.CounterFunc("recursor_breaker_fastfails_total", r.breakerFastFails.Load)
	reg.CounterFunc("recursor_rrl_drops_total", r.rrlDrops.Load)
	reg.CounterFunc("recursor_rrl_slips_total", r.rrlSlips.Load)
	reg.CounterFunc("recursor_flood_refused_total", r.floodRefused.Load)
	reg.GaugeFunc("recursor_cache_entries", func() int64 { return int64(r.cache.Len()) })
	for i := 0; i < r.pool.Len(); i++ {
		u := r.pool.Upstream(i)
		reg.CounterFunc(`recursor_upstream_queries_total{upstream="`+u.Name+`"}`, u.queries.Load)
		reg.CounterFunc(`recursor_upstream_failures_total{upstream="`+u.Name+`"}`, u.failures.Load)
		reg.CounterFunc(`recursor_breaker_opens_total{upstream="`+u.Name+`"}`, u.BreakerOpens)
		reg.GaugeFunc(`recursor_breaker_state{upstream="`+u.Name+`"}`, func() int64 {
			return int64(u.BreakerState())
		})
		reg.GaugeFunc(`recursor_upstream_ewma_rtt_us{upstream="`+u.Name+`"}`, func() int64 {
			return int64(u.EWMA() / time.Microsecond)
		})
	}
}

// Cache exposes the answer cache (stats, tests).
func (r *Recursor) Cache() *Cache { return r.cache }

// Pool exposes the upstream pool.
func (r *Recursor) Pool() *Pool { return r.pool }

// WaitRefreshes blocks until every in-flight asynchronous stale refresh
// has completed — tests and shutdown paths use it to make serve-stale
// outcomes deterministic.
func (r *Recursor) WaitRefreshes() { r.refreshWG.Wait() }

// AdmitStub applies the front-line per-client rate limit for one UDP
// datagram, before any parsing. TCP is exempt: completing the handshake
// already proves the source address, which is the spoofing RRL defends
// against.
func (r *Recursor) AdmitStub(client netip.Addr) RRLVerdict {
	if r.rrl == nil {
		return RRLPass
	}
	v := r.rrl.admit(client)
	switch v {
	case RRLSlip:
		r.rrlSlips.Add(1)
	case RRLDrop:
		r.rrlDrops.Add(1)
	}
	return v
}

// SlipResponse builds the RRL slip answer for query into dst: a minimal
// TC=1 header that invites a legitimate stub to retry over TCP while
// staying smaller than the query — negative amplification. Returns nil
// when the datagram is not even a plausible query.
func (r *Recursor) SlipResponse(query, dst []byte) []byte {
	if len(query) < dnswire.HeaderLen || query[2]&flagQR != 0 {
		return nil
	}
	dst = append(dst, query[:dnswire.HeaderLen]...)
	dst[2] = dst[2]&(0x78|flagRD) | flagQR | flagTC
	dst[3] = flagRA
	for i := 4; i < 12; i++ {
		dst[i] = 0
	}
	return dst
}

// Scratch is the per-goroutine reusable state of the serve path: the
// lazy View and the qname/key buffers. One Scratch per serving
// goroutine keeps HandleWire allocation-free.
type Scratch struct {
	view dnswire.View
	name []byte
	key  []byte
}

// NewScratch allocates the reusable buffers once. 256 covers the
// 255-octet wire-name bound plus the key's type and DO suffix.
func NewScratch() *Scratch {
	return &Scratch{
		name: make([]byte, 0, 256),
		key:  make([]byte, 0, 260),
	}
}

// Header flag bits (byte offsets 2 and 3 of the wire header).
const (
	flagQR = 0x80 // byte 2
	flagAA = 0x04 // byte 2
	flagTC = 0x02 // byte 2
	flagRD = 0x01 // byte 2
	flagRA = 0x80 // byte 3
)

// HandleWire answers one stub query: query is the raw message, dst the
// reusable output buffer the response is built in (it must be empty —
// pass buf[:0]; header patching addresses absolute offsets), tcp
// whether the stub arrived over TCP. Returns nil when the datagram must
// be dropped (unparseable, or a response packet). Cache hits run start
// to finish without allocating.
func (r *Recursor) HandleWire(query []byte, dst []byte, tcp bool, sc *Scratch) []byte {
	start := time.Now()
	if sc.view.Reset(query) != nil || sc.view.Response() {
		r.dropped.Add(1)
		return nil
	}
	r.stubQueries.Add(1)
	if sc.view.Opcode() != dnswire.OpcodeQuery {
		return r.headerError(query, dst, dnswire.RCodeNotImp)
	}
	var qtype dnswire.Type
	var qclass dnswire.Class
	var err error
	sc.name, qtype, qclass, err = sc.view.Question(sc.name[:0])
	if err != nil {
		return r.headerError(query, dst, dnswire.RCodeFormErr)
	}
	if qclass != dnswire.ClassIN {
		r.refused.Add(1)
		return r.headerError(query, dst, dnswire.RCodeRefused)
	}
	ednsInfo, hasEDNS, err := sc.view.EDNS()
	if err != nil {
		return r.headerError(query, dst, dnswire.RCodeFormErr)
	}
	do := hasEDNS && ednsInfo.DO
	budget := 1 << 16 // TCP: framing is the only bound
	if !tcp {
		budget = 512
		if hasEDNS && int(ednsInfo.UDPSize) > budget {
			budget = int(ednsInfo.UDPSize)
		}
	}
	sc.key = AppendKey(sc.key[:0], sc.name, qtype, do)

	if e := r.cache.Get(sc.key); e != nil {
		r.pool.Upstream(e.Upstream).answers.Add(1)
		dst = r.serveEntry(query, dst, e, hasEDNS, budget)
		r.latency.Observe(time.Since(start))
		return dst
	}

	// Miss. RFC 8198: a cached NSEC range covering the name lets us
	// synthesize the NXDOMAIN without any upstream traffic.
	qname := string(sc.name)
	if r.cfg.AggressiveNSEC && do && r.nsec.Covers(qname, r.cfg.Now()) {
		r.aggressiveHits.Add(1)
		dst = r.synthesize(query, dst, dnswire.RCodeNXDomain)
		r.latency.Observe(time.Since(start))
		return dst
	}

	// Water-torture guard: a zone drowning in NXDOMAIN misses gets its
	// further misses REFUSED at the front door (cache hits above still
	// serve — the flood only poisons the miss path).
	if r.flood != nil && !r.flood.admitMiss(parentZone(qname, r.cfg.Origin)) {
		r.floodRefused.Add(1)
		dst = r.headerError(query, dst, dnswire.RCodeRefused)
		r.latency.Observe(time.Since(start))
		return dst
	}

	// Failure cache: the upstream path failed for this key moments ago;
	// answer from stale data (or SERVFAIL) without re-asking.
	if r.cache.FailedRecently(sc.key) {
		if e := r.cache.GetStale(sc.key); e != nil {
			r.pool.Upstream(e.Upstream).answers.Add(1)
			dst = r.serveStale(query, dst, e, hasEDNS, budget)
		} else {
			r.servfails.Add(1)
			dst = r.synthesize(query, dst, dnswire.RCodeServFail)
		}
		r.latency.Observe(time.Since(start))
		return dst
	}

	// Serve-stale (RFC 8767): an expired-but-retained answer is served
	// immediately with clamped TTLs while a background singleflight
	// refresh tries to repopulate the entry. During an outage the
	// refresh fails fast (breaker) or marks the failure cache, so the
	// stub-facing path never blocks on a dead upstream.
	if e := r.cache.GetStale(sc.key); e != nil {
		r.pool.Upstream(e.Upstream).answers.Add(1)
		dst = r.serveStale(query, dst, e, hasEDNS, budget)
		r.asyncRefresh(sc.key, qname, qtype, do)
		r.latency.Observe(time.Since(start))
		return dst
	}

	// Cold miss: block on the (singleflight-collapsed) fill.
	// Do reads sc.key only before running fill (its inflight and map
	// keys are string copies), so the scratch can be passed directly.
	e, _, err := r.cache.Do(sc.key, func() (*Entry, error) {
		return r.fill(qname, qtype, do)
	})
	if err != nil || (e != nil && e.RCode == dnswire.RCodeServFail && !e.Cacheable()) {
		// The fill could not produce a usable answer; stale data that
		// landed in the window since the checks above is still better
		// than surfacing the failure.
		if se := r.cache.GetStale(sc.key); se != nil {
			r.pool.Upstream(se.Upstream).answers.Add(1)
			dst = r.serveStale(query, dst, se, hasEDNS, budget)
			r.latency.Observe(time.Since(start))
			return dst
		}
	}
	if err != nil {
		r.servfails.Add(1)
		dst = r.synthesize(query, dst, dnswire.RCodeServFail)
		r.latency.Observe(time.Since(start))
		return dst
	}
	r.pool.Upstream(e.Upstream).answers.Add(1)
	dst = r.serveEntry(query, dst, e, hasEDNS, budget)
	r.latency.Observe(time.Since(start))
	return dst
}

// asyncRefresh launches the background half of serve-stale: one
// goroutine per key (the Inflight pre-check plus Refresh's singleflight
// slot collapse duplicates) re-running the fill. The key is copied out
// of the caller's scratch, which is reused the moment HandleWire
// returns.
func (r *Recursor) asyncRefresh(key []byte, qname string, qtype dnswire.Type, do bool) {
	if r.cache.Inflight(key) {
		return
	}
	k := append([]byte(nil), key...)
	r.refreshWG.Add(1)
	go func() {
		defer r.refreshWG.Done()
		if r.cache.Refresh(k, func() (*Entry, error) {
			return r.fill(qname, qtype, do)
		}) {
			r.staleRefreshes.Add(1)
		}
	}()
}

// serveEntry copies the right cached variant into dst and patches it
// for this stub: the stub's ID over the zeroed bytes, AA cleared, RA
// set, RD echoed, and TC truncation when the answer exceeds the stub's
// UDP budget.
func (r *Recursor) serveEntry(query, dst []byte, e *Entry, hasEDNS bool, budget int) []byte {
	w := e.Wire
	if !hasEDNS {
		w = e.Plain
	}
	dst = append(dst, w...)
	dst[0], dst[1] = query[0], query[1]
	dst[2] = dst[2]&^(flagAA|flagRD) | query[2]&flagRD
	dst[3] |= flagRA
	if len(dst) > budget {
		// Clip at the question boundary and signal TC; the stub
		// re-asks over TCP where the full answer fits.
		r.truncations.Add(1)
		dst = dst[:e.QEnd]
		dst[2] |= flagTC
		dst[6], dst[7] = 0, 0 // ANCOUNT
		dst[8], dst[9] = 0, 0 // NSCOUNT
		dst[10], dst[11] = 0, 0
	}
	return dst
}

// serveStale serves a retained expired entry: the normal patching plus
// the RFC 8767 TTL clamp, applied in place through the precomputed
// offsets so stale serving stays allocation-free too.
func (r *Recursor) serveStale(query, dst []byte, e *Entry, hasEDNS bool, budget int) []byte {
	dst = r.serveEntry(query, dst, e, hasEDNS, budget)
	offs := e.TTLOffs
	if !hasEDNS {
		offs = e.PlainTTLOffs
	}
	clampTTLs(dst, offs, uint32(r.cfg.StaleTTL/time.Second))
	r.staleServed.Add(1)
	return dst
}

// synthesize builds a minimal answer (header + echoed question) with
// the given RCODE — used for RFC 8198 denials and SERVFAIL surfacing.
func (r *Recursor) synthesize(query, dst []byte, rcode dnswire.RCode) []byte {
	qEnd, err := r.scratchQuestionEnd(query)
	if err != nil {
		return r.headerError(query, dst, rcode)
	}
	dst = append(dst, query[:qEnd]...)
	dst[2] = dst[2]&(0x78|flagRD) | flagQR
	dst[3] = flagRA | byte(rcode&0xF)
	dst[4], dst[5] = 0, 1 // QDCOUNT = 1
	dst[6], dst[7] = 0, 0
	dst[8], dst[9] = 0, 0
	dst[10], dst[11] = 0, 0
	return dst
}

// scratchQuestionEnd re-walks the query for its question boundary; the
// serve path's View already validated it, so errors are rare.
func (r *Recursor) scratchQuestionEnd(query []byte) (int, error) {
	var v dnswire.View
	if err := v.Reset(query); err != nil {
		return 0, err
	}
	return v.QuestionEnd()
}

// headerError answers with a bare 12-byte header carrying rcode.
func (r *Recursor) headerError(query, dst []byte, rcode dnswire.RCode) []byte {
	dst = append(dst, query[:dnswire.HeaderLen]...)
	dst[2] = dst[2]&(0x78|flagRD) | flagQR
	dst[3] = flagRA | byte(rcode&0xF)
	for i := 4; i < 12; i++ {
		dst[i] = 0
	}
	return dst
}

// fill resolves one miss through the upstream pool and builds the cache
// entry. Runs once per key under singleflight, so allocations here are
// amortized across every collapsed waiter.
func (r *Recursor) fill(qname string, qtype dnswire.Type, do bool) (*Entry, error) {
	id := uint16(r.nextID.Add(1))
	q := dnswire.NewQuery(id, qname, qtype)
	if r.cfg.EDNSSize > 0 {
		q.WithEdns(r.cfg.EDNSSize, do)
	}
	resp, upIdx, err := r.exchangeHedged(q)
	if err != nil {
		return nil, err
	}
	now := r.cfg.Now()
	resp.Header.ID = 0 // serve path patches the stub's ID in
	wire, err := resp.Pack()
	if err != nil {
		return nil, err
	}
	plain := wire
	if resp.Edns != nil {
		saved := resp.Edns
		resp.Edns = nil
		plain, err = resp.Pack()
		resp.Edns = saved
		if err != nil {
			return nil, err
		}
	}
	qEnd := dnswire.HeaderLen
	var v dnswire.View
	if v.Reset(wire) == nil {
		if end, err := v.QuestionEnd(); err == nil {
			qEnd = end
		}
	}
	e := &Entry{
		Wire:     wire,
		Plain:    plain,
		QEnd:     qEnd,
		RCode:    resp.Header.RCode,
		Upstream: upIdx,
	}
	if r.cfg.MaxStale > 0 {
		// Precompute the TTL patch points once per fill so every later
		// stale serve is a few in-place writes.
		e.TTLOffs = ttlOffsets(wire)
		if resp.Edns != nil {
			e.PlainTTLOffs = ttlOffsets(plain)
		} else {
			e.PlainTTLOffs = e.TTLOffs
		}
	}
	if resp.Header.RCode == dnswire.RCodeServFail {
		// Browned-out answers are surfaced but never cached.
		r.servfails.Add(1)
		return e, nil
	}
	e.expires = now.Add(r.ttlOf(resp))
	if resp.Header.RCode == dnswire.RCodeNXDomain {
		if r.flood != nil {
			r.flood.noteNXDomain(parentZone(qname, r.cfg.Origin))
		}
		if r.cfg.AggressiveNSEC && do {
			r.nsec.Remember(resp, e.expires)
		}
	}
	return e, nil
}

// ttlOf extracts the caching TTL of a response: minimum RR TTL across
// answer and authority (the SOA MINIMUM capping negative answers per
// RFC 2308), clamped to [MinTTL, MaxTTL].
func (r *Recursor) ttlOf(m *dnswire.Message) time.Duration {
	best := uint32(r.cfg.MaxTTL / time.Second)
	scan := func(rrs []dnswire.RR) {
		for _, rr := range rrs {
			if rr.TTL < best {
				best = rr.TTL
			}
			if soa, ok := rr.Data.(dnswire.SOAData); ok && soa.Minimum < best {
				best = soa.Minimum
			}
		}
	}
	scan(m.Answers)
	scan(m.Authority)
	ttl := time.Duration(best) * time.Second
	if ttl < r.cfg.MinTTL {
		ttl = r.cfg.MinTTL
	}
	if ttl > r.cfg.MaxTTL {
		ttl = r.cfg.MaxTTL
	}
	return ttl
}

// exchangeHedged resolves one upstream exchange with tail-latency
// hedging: the P2C-picked primary gets HedgeDelay to answer before a
// second query races against the best alternative; the first answer
// wins and cancels the loser. A primary that fails outright triggers
// the second attempt immediately (failover), with or without hedging.
// When every upstream's breaker refuses the exchange it fast-fails
// with ErrBreakerOpen — no wire traffic, no timeout wait.
func (r *Recursor) exchangeHedged(q *dnswire.Message) (*dnswire.Message, int, error) {
	primary, pi := r.pool.Pick(r.cfg.Now())
	if primary == nil {
		r.breakerFastFails.Add(1)
		return nil, -1, ErrBreakerOpen
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type outcome struct {
		m   *dnswire.Message
		idx int
		err error
	}
	ch := make(chan outcome, 2)
	launch := func(u *Upstream, idx int) {
		go func() {
			m, err := r.exchangeOne(ctx, u, q)
			ch <- outcome{m, idx, err}
		}()
	}
	launch(primary, pi)
	outstanding, second := 1, false

	var timerC <-chan time.Time
	if r.cfg.HedgeDelay > 0 && r.pool.Len() > 1 {
		t := time.NewTimer(r.cfg.HedgeDelay)
		defer t.Stop()
		timerC = t.C
	}
	launchSecond := func(hedge bool) {
		if second {
			return
		}
		u, idx := r.pool.PickOther(pi, r.cfg.Now())
		if u == nil {
			return
		}
		second = true
		outstanding++
		if hedge {
			r.hedges.Add(1)
		} else {
			r.failovers.Add(1)
		}
		launch(u, idx)
	}

	var firstErr error
	for {
		select {
		case o := <-ch:
			outstanding--
			if o.err == nil {
				if second && o.idx != pi {
					r.hedgeWins.Add(1)
				}
				cancel() // tear the loser down before returning
				return o.m, o.idx, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if !second && r.pool.Len() > 1 {
				launchSecond(false)
				continue
			}
			if outstanding == 0 {
				if firstErr == nil {
					firstErr = ErrNoUpstream
				}
				return nil, -1, firstErr
			}
		case <-timerC:
			timerC = nil
			launchSecond(true)
		}
	}
}

// exchangeOne performs a single upstream exchange including the TC→TCP
// escalation, maintaining the EWMA estimate and the circuit breaker:
// successes feed measured RTTs and close the breaker, failures charge
// the penalty and grow the streak — except cancelled losers, which
// carry no signal about the upstream and only release the probe slot.
// An upstream answering SERVFAIL counts as a breaker failure (the
// server is up but not serving) without distorting the RTT estimate.
func (r *Recursor) exchangeOne(ctx context.Context, u *Upstream, q *dnswire.Message) (*dnswire.Message, error) {
	if u.jar != nil && q.Edns != nil {
		// Shallow-copy the message and OPT so this upstream's COOKIE
		// option never rides along to another upstream (server cookies
		// are bound to the issuing server, RFC 7873 §5.2).
		qc := *q
		edns := *q.Edns
		edns.Options = append([]dnswire.EDNSOption(nil), q.Edns.Options...)
		qc.Edns = &edns
		u.jar.Attach(&qc)
		q = &qc
	}
	fail := func(err error) (*dnswire.Message, error) {
		if ctx.Err() != nil {
			if u.br != nil {
				u.br.onCancel()
			}
			return nil, err
		}
		u.failures.Add(1)
		u.penalize()
		if u.br != nil {
			u.br.onFailure(r.cfg.Now())
		}
		return nil, err
	}
	u.queries.Add(1)
	resp, rtt, err := resolver.ExchangeContext(ctx, u.Transport, q, false, r.cfg.UpstreamTimeout)
	if err != nil {
		return fail(err)
	}
	u.observe(rtt)
	if resp.Header.Truncated {
		r.tcpFallbacks.Add(1)
		u.queries.Add(1)
		resp, rtt, err = resolver.ExchangeContext(ctx, u.Transport, q, true, r.cfg.UpstreamTimeout)
		if err != nil {
			return fail(err)
		}
		u.observe(rtt)
	}
	if u.br != nil {
		if resp.Header.RCode == dnswire.RCodeServFail {
			u.br.onFailure(r.cfg.Now())
		} else {
			u.br.onSuccess()
		}
	}
	if u.jar != nil {
		u.jar.Learn(resp)
	}
	return resp, nil
}
