package recursor

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dnscentral/internal/resolver"
)

// ewmaDecay is the smoothing horizon of the per-upstream RTT estimate:
// each observation moves the average 1/10th of the way to the sample,
// the same decay dnscrypt-proxy uses for its load-balancing EWMA.
const ewmaDecay = 10.0

// failPenalty is the RTT charged for a failed exchange, pushing a dead
// or browned-out upstream to the back of every power-of-two choice
// until fresh successes pull its estimate down again.
const failPenalty = 2 * time.Second

// Upstream is one authoritative server the recursor can forward to,
// tagged with the provider name the centralization report groups by.
type Upstream struct {
	// Name labels the upstream in reports and metrics ("cloudA",
	// "ns1.nl"). Several upstreams may share a provider name; the
	// report aggregates them.
	Name string
	// Transport performs the exchanges (any resolver.Transport; the
	// hardened NetTransport brings RTO, TC→TCP and fault-injection
	// composition for free).
	Transport resolver.Transport

	// ewmaNS is the smoothed RTT in nanoseconds (atomic float bits via
	// int64; 0 = unmeasured).
	ewmaNS atomic.Int64

	// br is the circuit breaker (nil when disabled); jar round-trips
	// RFC 7873 DNS cookies with this server (nil when disabled). Both
	// are armed by Recursor.New from its Config.
	br  *breaker
	jar *resolver.CookieJar

	queries  atomic.Uint64 // wire exchanges sent to this upstream
	failures atomic.Uint64 // exchanges that errored
	answers  atomic.Uint64 // stub queries answered from this upstream's fills (hits included)
}

// admit consults the breaker (always true when disarmed), consuming the
// half-open probe slot when it grants one.
func (u *Upstream) admit(now time.Time) bool {
	return u.br == nil || u.br.admit(now)
}

// admissible is the non-consuming admission preview.
func (u *Upstream) admissible(now time.Time) bool {
	return u.br == nil || u.br.admissible(now)
}

// BreakerState returns the breaker state constant (BreakerClosed when
// breakers are disarmed).
func (u *Upstream) BreakerState() int32 {
	if u.br == nil {
		return BreakerClosed
	}
	return u.br.State()
}

// BreakerOpens returns how often this upstream's breaker tripped open.
func (u *Upstream) BreakerOpens() uint64 {
	if u.br == nil {
		return 0
	}
	return u.br.opens.Load()
}

// EWMA returns the smoothed RTT estimate (0 until first measurement).
func (u *Upstream) EWMA() time.Duration { return time.Duration(u.ewmaNS.Load()) }

// Queries returns the wire exchanges sent to this upstream.
func (u *Upstream) Queries() uint64 { return u.queries.Load() }

// observe folds one measured RTT into the estimate.
func (u *Upstream) observe(rtt time.Duration) {
	for {
		old := u.ewmaNS.Load()
		var next int64
		if old == 0 {
			next = int64(rtt)
		} else {
			next = old + (int64(rtt)-old)/int64(ewmaDecay)
		}
		if next <= 0 {
			next = 1
		}
		if u.ewmaNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// penalize charges a failure as a slow observation.
func (u *Upstream) penalize() { u.observe(failPenalty) }

// Pool selects upstreams by EWMA-RTT power-of-two-choices: draw two
// distinct candidates uniformly, send to the one with the lower
// smoothed RTT. P2C gives most traffic to fast upstreams while still
// sampling slow ones enough to notice recovery — the balance plain
// best-of-N converges away from.
type Pool struct {
	ups []*Upstream

	mu  sync.Mutex
	rng *rand.Rand
}

// NewPool builds a pool over the given upstreams (at least one).
func NewPool(seed int64, ups ...*Upstream) *Pool {
	return &Pool{ups: ups, rng: rand.New(rand.NewSource(seed))}
}

// Len returns the number of upstreams.
func (p *Pool) Len() int { return len(p.ups) }

// Upstream returns the upstream at pool index i.
func (p *Pool) Upstream(i int) *Upstream { return p.ups[i] }

// armBreakers attaches a circuit breaker to every upstream. No-op when
// cfg.Failures is 0 (disabled).
func (p *Pool) armBreakers(cfg BreakerConfig) {
	if cfg.Failures <= 0 {
		return
	}
	for _, u := range p.ups {
		u.br = newBreaker(cfg)
	}
}

// anyAdmissible reports whether at least one upstream would currently
// accept an exchange — false means every breaker is open and a fill
// would fast-fail, so the serve path should go straight to stale data.
func (p *Pool) anyAdmissible(now time.Time) bool {
	for _, u := range p.ups {
		if u.admissible(now) {
			return true
		}
	}
	return false
}

// Pick chooses the next upstream by power-of-two-choices. Unmeasured
// upstreams (EWMA 0) win every comparison so each gets probed early.
// Breaker-rejected candidates are skipped; when every upstream's
// breaker refuses, Pick returns (nil, -1) and the exchange fast-fails
// without wire traffic. A granted pick consumes the breaker admission
// (including the single half-open probe slot), so the caller must
// actually send.
func (p *Pool) Pick(now time.Time) (*Upstream, int) {
	n := len(p.ups)
	if n == 1 {
		if p.ups[0].admit(now) {
			return p.ups[0], 0
		}
		return nil, -1
	}
	p.mu.Lock()
	i := p.rng.Intn(n)
	j := p.rng.Intn(n - 1)
	p.mu.Unlock()
	if j >= i {
		j++
	}
	if better(p.ups[j], p.ups[i]) {
		i, j = j, i
	}
	if p.ups[i].admit(now) {
		return p.ups[i], i
	}
	if p.ups[j].admit(now) {
		return p.ups[j], j
	}
	for k, u := range p.ups {
		if k != i && k != j && u.admit(now) {
			return u, k
		}
	}
	return nil, -1
}

// PickOther chooses the hedge target: the lowest-EWMA admissible
// upstream other than the primary (nil when the pool has no admissible
// alternative). Hedging to the best-known alternative, not a random
// one, is what makes the second query likely to actually beat a
// straggling primary. Like Pick, a non-nil return consumes the
// breaker admission.
func (p *Pool) PickOther(primary int, now time.Time) (*Upstream, int) {
	best, bi := (*Upstream)(nil), -1
	for i, u := range p.ups {
		if i == primary || !u.admissible(now) {
			continue
		}
		if best == nil || better(u, best) {
			best, bi = u, i
		}
	}
	if best == nil || !best.admit(now) {
		return nil, -1
	}
	return best, bi
}

// better reports whether a should be preferred over b: unmeasured
// upstreams first (they need probing), then lower smoothed RTT.
func better(a, b *Upstream) bool {
	ea, eb := a.ewmaNS.Load(), b.ewmaNS.Load()
	if ea == 0 {
		return true
	}
	if eb == 0 {
		return false
	}
	return ea < eb
}
