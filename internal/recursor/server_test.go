package recursor

import (
	"net"
	"testing"
	"time"

	"dnscentral/internal/authserver"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/resolver"
)

// startServer boots a recursor server over a real authserver, both on
// loopback sockets — the full wire path stubs traverse.
func startServer(t *testing.T) *Server {
	t.Helper()
	f := newFixture(t)
	auth, err := authserver.Listen("127.0.0.1:0", f.engine)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { auth.Close() })
	rec := New(Config{Origin: "nl.", Seed: 1}, NewPool(1,
		&Upstream{Name: "cloudA", Transport: &resolver.NetTransport{Server: auth.Addr()}},
	))
	srv, err := Serve("127.0.0.1:0", rec, ServerConfig{UDPWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestServerUDPEndToEnd(t *testing.T) {
	srv := startServer(t)
	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	q := query(t, 0x55aa, "www.d3.nl.", dnswire.TypeA, 1232, false)
	if _, err := conn.Write(q); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 65535)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dnswire.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.ID != 0x55aa || m.Header.RCode != dnswire.RCodeNoError || !m.Header.RecursionAvailable {
		t.Fatalf("header = %+v", m.Header)
	}

	// Second ask from the socket: a cache hit over the wire.
	if _, err := conn.Write(q); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	if st := srv.Recursor().Cache().Stats(); st.Hits != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits)
	}
}

func TestServerTCPEndToEnd(t *testing.T) {
	srv := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	q := query(t, 0x77, "www.d4.nl.", dnswire.TypeA, 1232, false)
	if err := authserver.WriteTCPMessage(conn, q); err != nil {
		t.Fatal(err)
	}
	msg, err := authserver.ReadTCPMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dnswire.Unpack(msg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.ID != 0x77 || m.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("header = %+v", m.Header)
	}
	// Pipelined second message on the same connection.
	if err := authserver.WriteTCPMessage(conn, q); err != nil {
		t.Fatal(err)
	}
	if _, err := authserver.ReadTCPMessage(conn); err != nil {
		t.Fatal(err)
	}
}

func TestServerGarbageDoesNotKillWorkers(t *testing.T) {
	srv := startServer(t)
	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	// The garbage gets no reply; a real query afterwards still works.
	q := query(t, 9, "www.d6.nl.", dnswire.TypeA, 1232, false)
	if _, err := conn.Write(q); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 65535)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
}
