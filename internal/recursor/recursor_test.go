package recursor

import (
	"context"
	"errors"
	"net/netip"
	"strings"
	"testing"
	"time"

	"dnscentral/internal/authserver"
	"dnscentral/internal/dnswire"
	"dnscentral/internal/resolver"
	"dnscentral/internal/zonedb"
)

var stubAddr = netip.MustParseAddr("100.0.0.1")

type fixture struct {
	engine *authserver.Engine
	clk    *virtualClock
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	z, err := zonedb.NewCcTLD("nl", 1000, 0, 0.5, []string{"ns1.dns.nl", "ns2.dns.nl"})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{engine: authserver.NewEngine(z), clk: newClock()}
}

// recursor builds a two-upstream recursor ("cloudA", "cloudB") over the
// fixture engine.
func (f *fixture) recursor(cfg Config) *Recursor {
	cfg.Origin = "nl."
	cfg.Seed = 42
	cfg.Now = f.clk.Now
	pool := NewPool(cfg.Seed,
		&Upstream{Name: "cloudA", Transport: &resolver.EngineTransport{Engine: f.engine, Client: stubAddr}},
		&Upstream{Name: "cloudB", Transport: &resolver.EngineTransport{Engine: f.engine, Client: stubAddr}},
	)
	return New(cfg, pool)
}

// query packs a stub query; edns 0 means no OPT record.
func query(t testing.TB, id uint16, name string, qtype dnswire.Type, edns uint16, do bool) []byte {
	t.Helper()
	q := dnswire.NewQuery(id, name, qtype)
	if edns > 0 {
		q.WithEdns(edns, do)
	}
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func upstreamQueries(r *Recursor) uint64 {
	var n uint64
	for i := 0; i < r.pool.Len(); i++ {
		n += r.pool.Upstream(i).Queries()
	}
	return n
}

func TestMissThenHit(t *testing.T) {
	f := newFixture(t)
	r := f.recursor(Config{})
	sc := NewScratch()

	q := query(t, 0x1234, "www.d5.nl.", dnswire.TypeA, 1232, false)
	resp := r.HandleWire(q, nil, false, sc)
	if resp == nil {
		t.Fatal("first query dropped")
	}
	m, err := dnswire.Unpack(resp)
	if err != nil {
		t.Fatalf("first response unparseable: %v", err)
	}
	if m.Header.ID != 0x1234 {
		t.Fatalf("ID = %#x, want 0x1234", m.Header.ID)
	}
	if !m.Header.Response || !m.Header.RecursionAvailable {
		t.Fatalf("header = %+v, want QR+RA", m.Header)
	}
	if m.Header.Authoritative {
		t.Fatal("AA must be cleared on recursive answers")
	}
	if m.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("rcode = %s", m.Header.RCode)
	}
	sent := upstreamQueries(r)
	if sent == 0 {
		t.Fatal("miss did not reach an upstream")
	}

	// Same question again: a pure cache hit, new stub ID patched in, no
	// new upstream traffic.
	q2 := query(t, 0x4321, "www.d5.nl.", dnswire.TypeA, 1232, false)
	resp2 := r.HandleWire(q2, nil, false, sc)
	m2, err := dnswire.Unpack(resp2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Header.ID != 0x4321 {
		t.Fatalf("hit ID = %#x, want 0x4321", m2.Header.ID)
	}
	if got := upstreamQueries(r); got != sent {
		t.Fatalf("cache hit sent upstream traffic: %d -> %d", sent, got)
	}
	st := r.Cache().Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
}

func TestCachedAnswerExpires(t *testing.T) {
	f := newFixture(t)
	r := f.recursor(Config{MaxTTL: 30 * time.Second})
	sc := NewScratch()
	q := query(t, 1, "www.d5.nl.", dnswire.TypeA, 1232, false)
	r.HandleWire(q, nil, false, sc)
	sent := upstreamQueries(r)
	f.clk.Advance(31 * time.Second)
	r.HandleWire(q, nil, false, sc)
	if got := upstreamQueries(r); got <= sent {
		t.Fatal("expired entry served without refill")
	}
	if st := r.Cache().Stats(); st.Stale != 1 {
		t.Fatalf("stale = %d, want 1", st.Stale)
	}
}

func TestPlainStubGetsNoOPT(t *testing.T) {
	f := newFixture(t)
	r := f.recursor(Config{})
	sc := NewScratch()
	// Prime via an EDNS stub, then serve the same answer to a plain one.
	r.HandleWire(query(t, 1, "www.d7.nl.", dnswire.TypeA, 1232, false), nil, false, sc)
	resp := r.HandleWire(query(t, 2, "www.d7.nl.", dnswire.TypeA, 0, false), nil, false, sc)
	m, err := dnswire.Unpack(resp)
	if err != nil {
		t.Fatal(err)
	}
	if m.Edns != nil {
		t.Fatal("OPT echoed to a stub that sent none (RFC 6891 violation)")
	}
	// And the EDNS variant still carries it.
	resp = r.HandleWire(query(t, 3, "www.d7.nl.", dnswire.TypeA, 1232, false), nil, false, sc)
	if m, err = dnswire.Unpack(resp); err != nil {
		t.Fatal(err)
	}
	if m.Edns == nil {
		t.Fatal("OPT missing for an EDNS stub")
	}
}

func TestNXDomainCachedAndAggressiveSynthesis(t *testing.T) {
	f := newFixture(t)
	r := f.recursor(Config{AggressiveNSEC: true})
	sc := NewScratch()

	resp := r.HandleWire(query(t, 1, "aaa-junk.nl.", dnswire.TypeA, 1232, true), nil, false, sc)
	m, err := dnswire.Unpack(resp)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %s, want NXDOMAIN", m.Header.RCode)
	}
	sent := upstreamQueries(r)

	// A different junk name covered by the learned NSEC range must be
	// denied without upstream traffic (RFC 8198).
	resp = r.HandleWire(query(t, 2, "aab-junk.nl.", dnswire.TypeA, 1232, true), nil, false, sc)
	if m, err = dnswire.Unpack(resp); err != nil {
		t.Fatal(err)
	}
	if m.Header.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("synthesized rcode = %s, want NXDOMAIN", m.Header.RCode)
	}
	if m.Header.ID != 2 {
		t.Fatalf("synthesized ID = %d, want 2", m.Header.ID)
	}
	if got := upstreamQueries(r); got != sent {
		t.Fatalf("aggressive synthesis sent upstream traffic: %d -> %d", sent, got)
	}
	if r.aggressiveHits.Load() != 1 {
		t.Fatalf("aggressiveHits = %d, want 1", r.aggressiveHits.Load())
	}

	// Registered names must still resolve positively.
	resp = r.HandleWire(query(t, 3, "www.d5.nl.", dnswire.TypeA, 1232, true), nil, false, sc)
	if m, err = dnswire.Unpack(resp); err != nil {
		t.Fatal(err)
	}
	if m.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("registered name got %s", m.Header.RCode)
	}
}

func TestTruncationToStubBudget(t *testing.T) {
	f := newFixture(t)
	r := f.recursor(Config{})
	sc := NewScratch()
	q := query(t, 0xabcd, "www.d1.nl.", dnswire.TypeA, 0, false)

	// Plant an oversized cached answer: serveEntry only patches the
	// header and clips at QEnd, so padding past a valid header+question
	// exercises the truncation path without a fat zone.
	var v dnswire.View
	if err := v.Reset(q); err != nil {
		t.Fatal(err)
	}
	qEnd, err := v.QuestionEnd()
	if err != nil {
		t.Fatal(err)
	}
	fat := append(append([]byte{}, q...), make([]byte, 700)...)
	key := AppendKey(nil, []byte("www.d1.nl."), dnswire.TypeA, false)
	_, _, err = r.Cache().Do(key, func() (*Entry, error) {
		return &Entry{Wire: fat, Plain: fat, QEnd: qEnd,
			expires: f.clk.Now().Add(time.Hour)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// UDP, no EDNS: 512-byte budget forces TC and a clip at the question.
	resp := r.HandleWire(q, nil, false, sc)
	if len(resp) != qEnd {
		t.Fatalf("truncated length = %d, want %d", len(resp), qEnd)
	}
	if resp[2]&flagTC == 0 {
		t.Fatal("TC not set on truncated response")
	}
	if resp[0] != 0xab || resp[1] != 0xcd {
		t.Fatal("stub ID not patched on truncated response")
	}
	for i := 6; i < 12; i++ {
		if resp[i] != 0 {
			t.Fatalf("record counts not zeroed: header[%d]=%d", i, resp[i])
		}
	}
	if r.truncations.Load() != 1 {
		t.Fatalf("truncations = %d, want 1", r.truncations.Load())
	}

	// TCP: framing is the bound; the full fat answer flows.
	resp = r.HandleWire(q, nil, true, sc)
	if len(resp) != len(fat) {
		t.Fatalf("tcp length = %d, want %d", len(resp), len(fat))
	}
}

func TestMalformedAndNonQueryHandling(t *testing.T) {
	f := newFixture(t)
	r := f.recursor(Config{})
	sc := NewScratch()

	if r.HandleWire([]byte{1, 2, 3}, nil, false, sc) != nil {
		t.Fatal("short garbage must be dropped")
	}
	// A response packet must be dropped, not served (anti-spoofing).
	resp := query(t, 1, "www.d5.nl.", dnswire.TypeA, 0, false)
	resp[2] |= flagQR
	if r.HandleWire(resp, nil, false, sc) != nil {
		t.Fatal("response packet must be dropped")
	}
	if r.dropped.Load() != 2 {
		t.Fatalf("dropped = %d, want 2", r.dropped.Load())
	}

	// CHAOS class: refused.
	chaos := query(t, 2, "id.server.", dnswire.TypeTXT, 0, false)
	chaos[len(chaos)-1] = 3 // QCLASS CH
	out := r.HandleWire(chaos, nil, false, sc)
	if out == nil {
		t.Fatal("refused query must still get an answer")
	}
	if rc := dnswire.RCode(out[3] & 0xF); rc != dnswire.RCodeRefused {
		t.Fatalf("rcode = %s, want REFUSED", rc)
	}
}

// blockingTransport parks every exchange until its context dies,
// recording that cancellation arrived — the hedged loser.
type blockingTransport struct {
	cancelled chan struct{}
}

func (b *blockingTransport) Exchange(q *dnswire.Message, tcp bool) (*dnswire.Message, time.Duration, error) {
	return b.ExchangeContext(context.Background(), q, tcp, time.Minute)
}

func (b *blockingTransport) ExchangeContext(ctx context.Context, q *dnswire.Message, tcp bool, timeout time.Duration) (*dnswire.Message, time.Duration, error) {
	select {
	case <-ctx.Done():
		select {
		case b.cancelled <- struct{}{}:
		default:
		}
		return nil, 0, ctx.Err()
	case <-time.After(timeout):
		return nil, 0, errors.New("blockingTransport: timed out")
	}
}

func TestHedgeRacesAndCancelsLoser(t *testing.T) {
	f := newFixture(t)
	slow := &blockingTransport{cancelled: make(chan struct{}, 1)}
	slowUp := &Upstream{Name: "slow", Transport: slow}
	fastUp := &Upstream{Name: "fast", Transport: &resolver.EngineTransport{Engine: f.engine, Client: stubAddr}}
	// Seed the estimates so P2C picks the (about to stall) primary and
	// the hedge goes to the alternative.
	slowUp.observe(time.Millisecond)
	fastUp.observe(10 * time.Millisecond)
	r := New(Config{Origin: "nl.", HedgeDelay: 5 * time.Millisecond,
		UpstreamTimeout: 5 * time.Second, Now: f.clk.Now}, NewPool(1, slowUp, fastUp))
	sc := NewScratch()

	resp := r.HandleWire(query(t, 1, "www.d5.nl.", dnswire.TypeA, 1232, false), nil, false, sc)
	m, err := dnswire.Unpack(resp)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("hedged answer rcode = %s", m.Header.RCode)
	}
	if r.hedges.Load() != 1 || r.hedgeWins.Load() != 1 {
		t.Fatalf("hedges/wins = %d/%d, want 1/1", r.hedges.Load(), r.hedgeWins.Load())
	}
	select {
	case <-slow.cancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("losing exchange was never cancelled")
	}
	// The cancelled loser is no failure signal: its EWMA keeps its seed.
	if slowUp.failures.Load() != 0 {
		t.Fatalf("cancelled loser counted as failure: %d", slowUp.failures.Load())
	}
}

// failingTransport errors instantly.
type failingTransport struct{}

func (failingTransport) Exchange(*dnswire.Message, bool) (*dnswire.Message, time.Duration, error) {
	return nil, 0, errors.New("connection refused")
}

func TestFailoverOnPrimaryError(t *testing.T) {
	f := newFixture(t)
	deadUp := &Upstream{Name: "dead", Transport: failingTransport{}}
	liveUp := &Upstream{Name: "live", Transport: &resolver.EngineTransport{Engine: f.engine, Client: stubAddr}}
	deadUp.observe(time.Millisecond) // P2C prefers the dead one first
	liveUp.observe(10 * time.Millisecond)
	r := New(Config{Origin: "nl.", Now: f.clk.Now}, NewPool(1, deadUp, liveUp))
	sc := NewScratch()

	resp := r.HandleWire(query(t, 1, "www.d5.nl.", dnswire.TypeA, 1232, false), nil, false, sc)
	m, err := dnswire.Unpack(resp)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("failover answer rcode = %s", m.Header.RCode)
	}
	if r.failovers.Load() != 1 {
		t.Fatalf("failovers = %d, want 1", r.failovers.Load())
	}
	if deadUp.failures.Load() != 1 {
		t.Fatalf("dead upstream failures = %d, want 1", deadUp.failures.Load())
	}
	if deadUp.EWMA() < 100*time.Millisecond {
		t.Fatalf("failure penalty not applied: EWMA = %v", deadUp.EWMA())
	}
}

func TestAllUpstreamsDownYieldsServfail(t *testing.T) {
	f := newFixture(t)
	r := New(Config{Origin: "nl.", Now: f.clk.Now},
		NewPool(1, &Upstream{Name: "dead", Transport: failingTransport{}}))
	sc := NewScratch()
	resp := r.HandleWire(query(t, 7, "www.d5.nl.", dnswire.TypeA, 1232, false), nil, false, sc)
	if resp == nil {
		t.Fatal("dead upstreams must still produce an answer")
	}
	if rc := dnswire.RCode(resp[3] & 0xF); rc != dnswire.RCodeServFail {
		t.Fatalf("rcode = %s, want SERVFAIL", rc)
	}
	if resp[0] != 0 || resp[1] != 7 {
		t.Fatal("SERVFAIL did not echo the stub ID")
	}
	if r.servfails.Load() != 1 {
		t.Fatalf("servfails = %d, want 1", r.servfails.Load())
	}
	// Failures are not cached: the next ask tries upstream again.
	before := r.pool.Upstream(0).Queries()
	r.HandleWire(query(t, 8, "www.d5.nl.", dnswire.TypeA, 1232, false), nil, false, sc)
	if r.pool.Upstream(0).Queries() == before {
		t.Fatal("SERVFAIL was cached")
	}
}

func TestReportSharesAndHHI(t *testing.T) {
	f := newFixture(t)
	r := f.recursor(Config{})
	sc := NewScratch()
	// A skewed workload: one hot name asked 50 times, a tail of 10.
	for i := 0; i < 50; i++ {
		r.HandleWire(query(t, uint16(i), "www.d1.nl.", dnswire.TypeA, 1232, false), nil, false, sc)
	}
	for i := 0; i < 10; i++ {
		name := "www.d" + string(rune('2'+i%8)) + ".nl."
		r.HandleWire(query(t, uint16(100+i), name, dnswire.TypeA, 1232, false), nil, false, sc)
	}
	rep := r.Report()
	if rep.StubQueries != 60 {
		t.Fatalf("stub queries = %d, want 60", rep.StubQueries)
	}
	if rep.HitRate() < 0.8 {
		t.Fatalf("hit rate = %v, want > 0.8 on the hot-name workload", rep.HitRate())
	}
	var upSum uint64
	var stubSum uint64
	var upFrac float64
	for _, p := range rep.Providers {
		upSum += p.UpstreamQueries
		stubSum += p.StubAnswers
		upFrac += p.UpstreamShare
	}
	if upSum == 0 || stubSum != 60 {
		t.Fatalf("share totals: upstream=%d stub=%d (want stub 60)", upSum, stubSum)
	}
	if upFrac < 0.999 || upFrac > 1.001 {
		t.Fatalf("upstream fractions sum to %v", upFrac)
	}
	if rep.UpstreamHHI <= 0 || rep.UpstreamHHI > 1 || rep.StubHHI <= 0 || rep.StubHHI > 1 {
		t.Fatalf("HHI out of range: upstream=%v stub=%v", rep.UpstreamHHI, rep.StubHHI)
	}
	out := rep.Format()
	for _, want := range []string{"provider shares", "cloudA", "HHI", "hit rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
