package recursor

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnscentral/internal/dnswire"
)

// virtualClock steps time deterministically for TTL tests.
type virtualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newClock() *virtualClock { return &virtualClock{now: time.Unix(1586000000, 0)} }

func (c *virtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *virtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testKey(name string) []byte {
	return AppendKey(nil, []byte(name), dnswire.TypeA, false)
}

func mustFill(t *testing.T, c *Cache, key []byte, e *Entry) {
	t.Helper()
	if _, _, err := c.Do(key, func() (*Entry, error) { return e, nil }); err != nil {
		t.Fatal(err)
	}
}

func entryExpiring(at time.Time) *Entry {
	return &Entry{Wire: []byte{0, 0}, Plain: []byte{0, 0}, expires: at}
}

func TestCacheTTLExpiry(t *testing.T) {
	clk := newClock()
	c := NewCache(CacheConfig{MaxEntries: 64, Shards: 4, Now: clk.Now})
	key := testKey("www.d1.nl.")
	mustFill(t, c, key, entryExpiring(clk.Now().Add(30*time.Second)))

	if c.Get(key) == nil {
		t.Fatal("fresh entry missed")
	}
	clk.Advance(29 * time.Second)
	if c.Get(key) == nil {
		t.Fatal("entry expired early")
	}
	clk.Advance(2 * time.Second)
	if c.Get(key) != nil {
		t.Fatal("expired entry served")
	}
	st := c.Stats()
	if st.Stale != 1 {
		t.Fatalf("stale = %d, want 1", st.Stale)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after lazy expiry, want 0", c.Len())
	}
}

func TestCacheLRUBound(t *testing.T) {
	clk := newClock()
	const max = 32
	c := NewCache(CacheConfig{MaxEntries: max, Shards: 1, Now: clk.Now}) // one shard: the bound is exact
	far := clk.Now().Add(time.Hour)
	for i := 0; i < 3*max; i++ {
		mustFill(t, c, testKey(fmt.Sprintf("www.d%d.nl.", i)), entryExpiring(far))
	}
	if n := c.Len(); n > max {
		t.Fatalf("len = %d, want ≤ %d", n, max)
	}
	st := c.Stats()
	if st.Evictions != 2*max {
		t.Fatalf("evictions = %d, want %d", st.Evictions, 2*max)
	}
	// The most recently inserted keys must have survived.
	for i := 2 * max; i < 3*max; i++ {
		if c.Get(testKey(fmt.Sprintf("www.d%d.nl.", i))) == nil {
			t.Fatalf("recently inserted d%d evicted", i)
		}
	}
}

func TestCacheLRUTouchOnHit(t *testing.T) {
	clk := newClock()
	c := NewCache(CacheConfig{MaxEntries: 2, Shards: 1, Now: clk.Now})
	far := clk.Now().Add(time.Hour)
	a, b, d := testKey("a.nl."), testKey("b.nl."), testKey("d.nl.")
	mustFill(t, c, a, entryExpiring(far))
	mustFill(t, c, b, entryExpiring(far))
	if c.Get(a) == nil { // touch a: b becomes the eviction candidate
		t.Fatal("a missing")
	}
	mustFill(t, c, d, entryExpiring(far))
	if c.Get(a) == nil {
		t.Fatal("recently used entry evicted")
	}
	if c.Get(b) != nil {
		t.Fatal("least recently used entry survived")
	}
}

// TestCacheLockFreeHitPath pins the seqlock contract: a read-only
// concurrent phase over a stable cache never touches the shard mutex
// (LockedGets stays zero), and every reader sees every resident entry.
func TestCacheLockFreeHitPath(t *testing.T) {
	clk := newClock()
	c := NewCache(CacheConfig{MaxEntries: 256, Shards: 4, Now: clk.Now})
	far := clk.Now().Add(time.Hour)
	const keys = 64
	for i := 0; i < keys; i++ {
		mustFill(t, c, testKey(fmt.Sprintf("www.d%d.nl.", i)), entryExpiring(far))
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 2000; round++ {
				k := testKey(fmt.Sprintf("www.d%d.nl.", (round+w)%keys))
				if c.Get(k) == nil {
					t.Errorf("worker %d: resident key missed", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if lg := c.Stats().LockedGets; lg != 0 {
		t.Fatalf("LockedGets = %d on a read-only run, want 0 (hit path took the mutex)", lg)
	}
}

// TestCacheSeqlockConcurrentChurn hammers lock-free readers against
// writers doing the full mutation set — inserts, evictions (the CLOCK
// walk), expiry removals, and the tombstone compaction that flips the
// seqlock — and asserts readers never see a torn or wrong entry. The
// cache is deliberately tiny so eviction and compaction run constantly.
// This is the -race sentinel for the whole seqlock scheme.
func TestCacheSeqlockConcurrentChurn(t *testing.T) {
	clk := newClock()
	c := NewCache(CacheConfig{MaxEntries: 16, Shards: 2, Now: clk.Now})
	far := clk.Now().Add(time.Hour)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers: continuous distinct-key fills force evictions every
	// insert and, via the removals they cause, periodic compactions.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("w%d-%d.nl.", w, i)
				key := AppendKey(nil, []byte(name), dnswire.TypeA, false)
				e := entryExpiring(far)
				if _, _, err := c.Do(key, func() (*Entry, error) { return e, nil }); err != nil {
					t.Errorf("fill: %v", err)
					return
				}
			}
		}(w)
	}
	// Readers: probe a moving window of recent keys. A returned entry
	// must be internally consistent — the key the probe matched must be
	// the key the entry was filled under (catches torn index reads).
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("w%d-%d.nl.", r%2, i%512)
				key := AppendKey(nil, []byte(name), dnswire.TypeA, false)
				if e := c.Get(key); e != nil && e.key != string(key) {
					t.Errorf("torn read: got entry for %q via key %q", e.key, key)
					return
				}
			}
		}(r)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n, max := c.Len(), 16+2; n > max {
		t.Fatalf("len = %d, want ≤ %d after churn", n, max)
	}
	// The index must still agree with the map: every resident entry
	// remains reachable lock-free.
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k := range s.entries {
			if e, ok := s.probe(uint32(hashKey(k)), []byte(k)); !ok || e == nil {
				s.mu.Unlock()
				t.Fatalf("resident key %q unreachable through the read index", k)
			}
		}
		s.mu.Unlock()
	}
}

func TestSingleflightCollapsesConcurrentMisses(t *testing.T) {
	clk := newClock()
	c := NewCache(CacheConfig{MaxEntries: 64, Shards: 4, Now: clk.Now})
	key := testKey("www.d1.nl.")

	const n = 32
	var fills atomic.Uint64
	release := make(chan struct{})
	ready := make(chan struct{}, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ready <- struct{}{}
			e, _, err := c.Do(key, func() (*Entry, error) {
				fills.Add(1)
				<-release // hold the flight open until all callers queue
				return entryExpiring(clk.Now().Add(time.Minute)), nil
			})
			if err != nil || e == nil {
				t.Errorf("Do: e=%v err=%v", e, err)
			}
		}()
	}
	for i := 0; i < n; i++ {
		<-ready
	}
	// All n callers are at or past the Do entry; let the one fill finish.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := fills.Load(); got != 1 {
		t.Fatalf("fills = %d, want 1 (singleflight must collapse)", got)
	}
	st := c.Stats()
	if st.SingleflightShared == 0 {
		t.Fatal("no waiter recorded as singleflight-shared")
	}
	if st.SingleflightShared > n-1 {
		t.Fatalf("shared = %d > %d", st.SingleflightShared, n-1)
	}
}

func TestDoDoesNotCacheUncacheable(t *testing.T) {
	clk := newClock()
	c := NewCache(CacheConfig{MaxEntries: 64, Shards: 4, Now: clk.Now})
	key := testKey("brownout.nl.")
	e, _, err := c.Do(key, func() (*Entry, error) {
		return &Entry{Wire: []byte{0, 0}}, nil // zero expiry: SERVFAIL-style
	})
	if err != nil || e == nil {
		t.Fatalf("Do: %v %v", e, err)
	}
	if c.Len() != 0 {
		t.Fatal("uncacheable entry was inserted")
	}
	if c.Get(key) != nil {
		t.Fatal("uncacheable entry served from cache")
	}
}

func TestDoPropagatesFillError(t *testing.T) {
	clk := newClock()
	c := NewCache(CacheConfig{MaxEntries: 64, Shards: 4, Now: clk.Now})
	wantErr := fmt.Errorf("upstream dead")
	_, _, err := c.Do(testKey("x.nl."), func() (*Entry, error) { return nil, wantErr })
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if c.Len() != 0 {
		t.Fatal("failed fill left an entry behind")
	}
}
