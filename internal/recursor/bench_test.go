package recursor

import (
	"fmt"
	"testing"
	"time"

	"dnscentral/internal/dnswire"
)

// benchRecursor primes one hot entry and returns everything the hit
// path needs.
func benchRecursor(tb testing.TB) (*Recursor, []byte, []byte, *Scratch) {
	tb.Helper()
	f := newFixture(tb)
	r := f.recursor(Config{})
	q := query(tb, 0x1234, "www.d5.nl.", dnswire.TypeA, 1232, false)
	sc := NewScratch()
	if r.HandleWire(q, nil, false, sc) == nil {
		tb.Fatal("prime query dropped")
	}
	out := make([]byte, 0, 1<<16)
	return r, q, out, sc
}

// TestHitPathZeroAllocs pins the acceptance criterion: a cache hit runs
// socket-buffer to socket-buffer without allocating.
func TestHitPathZeroAllocs(t *testing.T) {
	r, q, out, sc := benchRecursor(t)
	allocs := testing.AllocsPerRun(200, func() {
		if r.HandleWire(q, out[:0], false, sc) == nil {
			t.Fatal("hit dropped")
		}
	})
	if allocs != 0 {
		t.Fatalf("hit path allocates %v per query, want 0", allocs)
	}
}

// BenchmarkRecursorHitPath measures the full wire-in/wire-out cache hit:
// parse, key, lookup, copy, patch.
func BenchmarkRecursorHitPath(b *testing.B) {
	r, q, out, sc := benchRecursor(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.HandleWire(q, out[:0], false, sc) == nil {
			b.Fatal("hit dropped")
		}
	}
}

// BenchmarkRecursorHitPathParallel stresses the shard locks from many
// serving goroutines, each with its own scratch (the server's shape).
func BenchmarkRecursorHitPathParallel(b *testing.B) {
	r, q, _, _ := benchRecursor(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sc := NewScratch()
		out := make([]byte, 0, 1<<16)
		for pb.Next() {
			if r.HandleWire(q, out[:0], false, sc) == nil {
				b.Fatal("hit dropped")
			}
		}
	})
}

// BenchmarkRecursorHitPathContended is the seqlock's reason to exist:
// parallel hit-path readers while a background writer churns distinct
// keys through the same cache (fills, CLOCK evictions, compactions).
// Pre-seqlock every reader serialized on the shard mutex behind the
// writer; now the readers' only writer exposure is the rare seq retry.
func BenchmarkRecursorHitPathContended(b *testing.B) {
	r, q, _, _ := benchRecursor(b)
	c := r.Cache()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		far := time.Now().Add(time.Hour)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := AppendKey(nil, []byte(fmt.Sprintf("churn%d.nl.", i)), dnswire.TypeA, false)
			c.Do(key, func() (*Entry, error) {
				return &Entry{Wire: []byte{0, 0}, Plain: []byte{0, 0}, expires: far}, nil
			})
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sc := NewScratch()
		out := make([]byte, 0, 1<<16)
		for pb.Next() {
			if r.HandleWire(q, out[:0], false, sc) == nil {
				b.Fatal("hit dropped")
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-done
	// The hot entry is read constantly, so CLOCK keeps it resident and
	// its hits stay on the lock-free path; report how often readers had
	// to fall back to the mutex (expected ~0 even under churn).
	b.ReportMetric(float64(c.Stats().LockedGets)/float64(b.N), "lockedgets/op")
}

// BenchmarkCacheKeyAndLookup isolates the key-build + shard lookup step.
func BenchmarkCacheKeyAndLookup(b *testing.B) {
	r, q, _, sc := benchRecursor(b)
	var v dnswire.View
	if err := v.Reset(q); err != nil {
		b.Fatal(err)
	}
	name, qtype, _, err := v.Question(nil)
	if err != nil {
		b.Fatal(err)
	}
	key := AppendKey(nil, name, qtype, false)
	c := r.Cache()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.key = AppendKey(sc.key[:0], name, qtype, false)
		if c.Get(key) == nil {
			b.Fatal("miss")
		}
	}
}
