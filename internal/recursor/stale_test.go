package recursor

import (
	"encoding/binary"
	"net/netip"
	"testing"
	"time"

	"dnscentral/internal/dnswire"
)

func TestTTLOffsetsAndClamp(t *testing.T) {
	m := dnswire.NewQuery(0, "www.d1.nl.", dnswire.TypeA)
	m.Header.Response = true
	m.Answers = []dnswire.RR{
		{Name: "www.d1.nl.", Class: dnswire.ClassIN, TTL: 3600,
			Data: dnswire.AData{Addr: netip.MustParseAddr("192.0.2.1")}},
		{Name: "www.d1.nl.", Class: dnswire.ClassIN, TTL: 10,
			Data: dnswire.AData{Addr: netip.MustParseAddr("192.0.2.2")}},
	}
	m.WithEdns(1232, false)
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	offs := ttlOffsets(wire)
	// Two A records; the OPT pseudo-RR must be excluded.
	if len(offs) != 2 {
		t.Fatalf("ttlOffsets found %d records, want 2 (OPT excluded)", len(offs))
	}
	for i, off := range offs {
		want := uint32(3600)
		if i == 1 {
			want = 10
		}
		if got := binary.BigEndian.Uint32(wire[off:]); got != want {
			t.Fatalf("offset %d reads TTL %d, want %d", off, got, want)
		}
	}
	clampTTLs(wire, offs, 30)
	if got := binary.BigEndian.Uint32(wire[offs[0]:]); got != 30 {
		t.Fatalf("TTL not clamped: %d, want 30", got)
	}
	if got := binary.BigEndian.Uint32(wire[offs[1]:]); got != 10 {
		t.Fatalf("already-low TTL modified: %d, want 10", got)
	}
	// Re-parse: the patched message must stay well-formed and the OPT's
	// extended-RCODE/flags TTL untouched.
	m2, err := dnswire.Unpack(wire)
	if err != nil {
		t.Fatalf("clamped message unparseable: %v", err)
	}
	if m2.Answers[0].TTL != 30 || m2.Answers[1].TTL != 10 {
		t.Fatalf("parsed TTLs = %d/%d, want 30/10", m2.Answers[0].TTL, m2.Answers[1].TTL)
	}
	if m2.Edns == nil {
		t.Fatal("OPT lost after clamp")
	}

	if ttlOffsets([]byte{1, 2, 3}) != nil {
		t.Fatal("malformed message must yield nil offsets")
	}
}

func TestParentZone(t *testing.T) {
	cases := []struct{ qname, origin, want string }{
		{"www.d42.nl.", "nl.", "d42.nl."},
		{"w0abc.d1.nl.", "nl.", "d1.nl."},
		{"junk.nl.", "nl.", "nl."},
		{"d1.nl.", "nl.", "nl."},
		{"nl.", "nl.", "nl."},
		{"com.", "nl.", "nl."},
		{"a.b.c.d1.nl.", "nl.", "b.c.d1.nl."},
	}
	for _, c := range cases {
		if got := parentZone(c.qname, c.origin); got != c.want {
			t.Errorf("parentZone(%q, %q) = %q, want %q", c.qname, c.origin, got, c.want)
		}
	}
}

func TestRateLimiterPassSlipDrop(t *testing.T) {
	clk := newClock()
	l := newRateLimiter(RRLConfig{RatePerSec: 2, Burst: 4, SlipEvery: 2}, clk.Now)
	client := netip.MustParseAddr("192.0.2.7")

	for i := 0; i < 4; i++ {
		if v := l.admit(client); v != RRLPass {
			t.Fatalf("query %d within burst = %v, want pass", i, v)
		}
	}
	// Bucket dry: over-limit queries alternate drop/slip (SlipEvery 2).
	if v := l.admit(client); v != RRLDrop {
		t.Fatalf("first over-limit = %v, want drop", v)
	}
	if v := l.admit(client); v != RRLSlip {
		t.Fatalf("second over-limit = %v, want slip", v)
	}
	// A second's refill buys RatePerSec more passes.
	clk.Advance(time.Second)
	if v := l.admit(client); v != RRLPass {
		t.Fatalf("post-refill = %v, want pass", v)
	}
	if v := l.admit(client); v != RRLPass {
		t.Fatalf("post-refill second = %v, want pass", v)
	}
	if v := l.admit(client); v == RRLPass {
		t.Fatal("budget exceeded again, must not pass")
	}
	// A different client has its own bucket.
	if v := l.admit(netip.MustParseAddr("192.0.2.8")); v != RRLPass {
		t.Fatalf("fresh client = %v, want pass", v)
	}
}

func TestRateLimiterBoundsClientTable(t *testing.T) {
	clk := newClock()
	l := newRateLimiter(RRLConfig{RatePerSec: 1, MaxClients: 8}, clk.Now)
	for i := 0; i < 100; i++ {
		a := netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
		l.admit(a)
	}
	l.mu.Lock()
	n := len(l.buckets)
	l.mu.Unlock()
	if n > 8 {
		t.Fatalf("bucket table grew to %d, want ≤ 8", n)
	}
}

func TestFloodGuardSuppressesAndProbes(t *testing.T) {
	clk := newClock()
	g := newFloodGuard(FloodConfig{NXPerSec: 5, Hold: 5 * time.Second, ProbeRate: 1}, clk.Now)
	zone := "d1.nl."

	if !g.admitMiss(zone) {
		t.Fatal("unknown zone must admit")
	}
	for i := 0; i < 5; i++ {
		g.noteNXDomain(zone)
	}
	if !g.Suppressed(zone) {
		t.Fatal("zone must be suppressed at the NXDOMAIN threshold")
	}
	// Probe trickle: one miss per second still flows.
	if !g.admitMiss(zone) {
		t.Fatal("first probe must be admitted")
	}
	if g.admitMiss(zone) {
		t.Fatal("second probe within the same second must be refused")
	}
	clk.Advance(time.Second)
	if !g.admitMiss(zone) {
		t.Fatal("probe budget must refill each second")
	}
	// Other zones are untouched.
	if !g.admitMiss("d2.nl.") {
		t.Fatal("unrelated zone must not be suppressed")
	}
	// Quiet hold expiry lifts the suppression.
	clk.Advance(6 * time.Second)
	if g.Suppressed(zone) {
		t.Fatal("suppression must lift after the hold")
	}
	if !g.admitMiss(zone) {
		t.Fatal("recovered zone must admit freely")
	}
}

func TestSlipResponseShape(t *testing.T) {
	f := newFixture(t)
	r := f.recursor(Config{})
	q := query(t, 0xbeef, "www.d1.nl.", dnswire.TypeA, 1232, false)
	resp := r.SlipResponse(q, nil)
	if resp == nil {
		t.Fatal("slip response missing")
	}
	if len(resp) != dnswire.HeaderLen {
		t.Fatalf("slip length = %d, want bare header (negative amplification)", len(resp))
	}
	if resp[0] != 0xbe || resp[1] != 0xef {
		t.Fatal("slip must echo the query ID")
	}
	if resp[2]&flagQR == 0 || resp[2]&flagTC == 0 {
		t.Fatal("slip must set QR and TC")
	}
	// A response packet must not be slipped back (reflection guard).
	q[2] |= flagQR
	if r.SlipResponse(q, nil) != nil {
		t.Fatal("slip for a response packet")
	}
}
