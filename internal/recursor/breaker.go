package recursor

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerConfig tunes the per-upstream circuit breaker.
type BreakerConfig struct {
	// Failures is the consecutive-failure count that opens the breaker
	// (0 disables breakers entirely).
	Failures int
	// OpenFor is how long an open breaker rejects traffic before
	// half-opening for a single probe (default 1s).
	OpenFor time.Duration
}

func (cfg BreakerConfig) withDefaults() BreakerConfig {
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = time.Second
	}
	return cfg
}

// Breaker states. Open means the upstream is presumed down and picks
// fast-fail; half-open admits exactly one probe whose outcome decides
// between closing (recovered) and re-opening (still down).
const (
	BreakerClosed int32 = iota
	BreakerOpen
	BreakerHalfOpen
)

// breaker is one upstream's circuit: consecutive failures open it, a
// timer half-opens it, a successful probe closes it. All transitions
// take the injected clock, so tests drive it with the virtual clock and
// the whole state machine is deterministic.
type breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     int32
	fails     int
	openUntil time.Time
	probing   bool // a half-open probe is in flight

	opens   atomic.Uint64 // closed/half-open → open transitions
	rejects atomic.Uint64 // admissions refused while open
	probes  atomic.Uint64 // half-open probes launched
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{cfg: cfg.withDefaults()}
}

// admit decides whether an exchange may be sent now, consuming the
// half-open probe slot when it grants one.
func (b *breaker) admit(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Before(b.openUntil) {
			b.rejects.Add(1)
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		b.probes.Add(1)
		return true
	default: // half-open
		if b.probing {
			b.rejects.Add(1)
			return false
		}
		b.probing = true
		b.probes.Add(1)
		return true
	}
}

// admissible is the non-consuming preview of admit — used by the serve
// path to decide between blocking on a fill and serving stale.
func (b *breaker) admissible(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		return !now.Before(b.openUntil)
	default:
		return !b.probing
	}
}

// onSuccess records a completed exchange: a successful half-open probe
// closes the breaker; in closed state the failure streak resets.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// onFailure records a failed exchange: a failed probe re-opens the
// breaker immediately; in closed state the streak grows and opens the
// breaker at the threshold.
func (b *breaker) onFailure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.open(now)
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.Failures {
			b.open(now)
		}
	}
}

// onCancel releases the probe slot of an exchange that was torn down
// before completing (a hedge loser): its outcome says nothing about the
// upstream, so the breaker reverts to open with the original deadline —
// the next admit re-probes immediately if the window already passed.
func (b *breaker) onCancel() {
	b.mu.Lock()
	if b.state == BreakerHalfOpen && b.probing {
		b.state = BreakerOpen
		b.probing = false
	}
	b.mu.Unlock()
}

// open transitions to the open state (caller holds the lock).
func (b *breaker) open(now time.Time) {
	b.state = BreakerOpen
	b.openUntil = now.Add(b.cfg.OpenFor)
	b.fails = 0
	b.probing = false
	b.opens.Add(1)
}

// State returns the current breaker state constant.
func (b *breaker) State() int32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
