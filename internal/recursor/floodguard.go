package recursor

import (
	"sync"
	"time"
)

// FloodConfig tunes the random-subdomain (water-torture) detector.
// The attack pattern: many queries for never-before-seen labels under
// one victim zone, every one a cache miss and an upstream NXDOMAIN.
// Per-IP rate limiting alone cannot stop it when sources are spread,
// but the per-zone NXDOMAIN-miss rate gives it away.
type FloodConfig struct {
	// NXPerSec is the NXDOMAIN-per-second rate per zone above which the
	// zone is suppressed (0 disables the guard).
	NXPerSec int
	// Hold is how long a tripped zone stays suppressed after the rate
	// subsides (default 5s).
	Hold time.Duration
	// ProbeRate is the misses-per-second trickle still forwarded for a
	// suppressed zone, so a zone that comes back (or a legitimate burst
	// that tripped the guard) is noticed without re-opening the flood
	// (default 1).
	ProbeRate int
	// MaxZones bounds the per-zone table (default 1024).
	MaxZones int
}

func (cfg FloodConfig) withDefaults() FloodConfig {
	if cfg.Hold <= 0 {
		cfg.Hold = 5 * time.Second
	}
	if cfg.ProbeRate <= 0 {
		cfg.ProbeRate = 1
	}
	if cfg.MaxZones <= 0 {
		cfg.MaxZones = 1024
	}
	return cfg
}

// zoneState tracks one zone's NXDOMAIN rate window and suppression.
type zoneState struct {
	winStart  time.Time // start of the current 1s counting window
	nx        int       // NXDOMAINs seen in the window
	suppUntil time.Time // zone suppressed until this instant
	probeWin  time.Time // start of the current probe-budget window
	probes    int       // probes granted in the probe window
}

// floodGuard is the water-torture detector: admitMiss gates cache
// misses before they reach upstream, noteNXDomain feeds the per-zone
// rate that trips suppression.
type floodGuard struct {
	cfg FloodConfig
	now func() time.Time

	mu    sync.Mutex
	zones map[string]*zoneState
}

func newFloodGuard(cfg FloodConfig, now func() time.Time) *floodGuard {
	if cfg.NXPerSec <= 0 {
		return nil
	}
	return &floodGuard{
		cfg:   cfg.withDefaults(),
		now:   now,
		zones: make(map[string]*zoneState),
	}
}

// admitMiss reports whether a cache miss for zone may proceed to the
// upstream path. Suppressed zones still pass ProbeRate misses per
// second so recovery is observable.
func (g *floodGuard) admitMiss(zone string) bool {
	now := g.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	z := g.zones[zone]
	if z == nil || now.After(z.suppUntil) {
		return true
	}
	if now.Sub(z.probeWin) >= time.Second {
		z.probeWin, z.probes = now, 0
	}
	if z.probes < g.cfg.ProbeRate {
		z.probes++
		return true
	}
	return false
}

// noteNXDomain records an upstream NXDOMAIN for zone, rotating the 1s
// rate window and tripping suppression when the rate crosses NXPerSec.
// While suppressed, further NXDOMAINs (the probe trickle failing)
// extend the hold.
func (g *floodGuard) noteNXDomain(zone string) {
	now := g.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	z := g.zones[zone]
	if z == nil {
		if len(g.zones) >= g.cfg.MaxZones {
			g.sweep(now)
		}
		z = &zoneState{winStart: now}
		g.zones[zone] = z
	}
	if now.Sub(z.winStart) >= time.Second {
		z.winStart, z.nx = now, 0
	}
	z.nx++
	if z.nx >= g.cfg.NXPerSec {
		z.suppUntil = now.Add(g.cfg.Hold)
	}
}

// sweep bounds the zone table: quiet, unsuppressed zones go first; if
// every tracked zone is hot the table is recycled (suppression restarts
// from a clean rate window, which the flood immediately re-trips).
func (g *floodGuard) sweep(now time.Time) {
	for name, z := range g.zones {
		if now.After(z.suppUntil) && now.Sub(z.winStart) >= time.Second {
			delete(g.zones, name)
		}
	}
	if len(g.zones) >= g.cfg.MaxZones {
		g.zones = make(map[string]*zoneState)
	}
}

// Suppressed reports whether zone is currently suppressed (test and
// metrics hook).
func (g *floodGuard) Suppressed(zone string) bool {
	now := g.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	z := g.zones[zone]
	return z != nil && !now.After(z.suppUntil)
}
