package recursor

import (
	"net/netip"
	"sync"
	"time"
)

// RRLVerdict is the front-line rate-limit decision for one datagram.
type RRLVerdict int

// Verdicts. Slip answers with a minimal TC=1 reply so a legitimate
// stub behind a spoofed-source flood can still reach us over TCP;
// Drop stays silent so the flood earns zero amplification.
const (
	RRLPass RRLVerdict = iota
	RRLSlip
	RRLDrop
)

// RRLConfig tunes the stub-facing per-client-IP token-bucket rate
// limiter — the same shape the authserver's response rate limiting
// uses, applied on the recursor's query side where the flood arrives.
type RRLConfig struct {
	// RatePerSec is the sustained per-client budget (0 disables RRL).
	RatePerSec float64
	// Burst is the bucket depth (defaults to 2×RatePerSec).
	Burst float64
	// SlipEvery makes every n-th over-limit query a TC=1 slip instead
	// of a silent drop (default 2, the BIND default).
	SlipEvery int
	// MaxClients bounds the bucket table under spoofed-source floods
	// (default 4096).
	MaxClients int
}

func (cfg RRLConfig) withDefaults() RRLConfig {
	if cfg.Burst <= 0 {
		cfg.Burst = 2 * cfg.RatePerSec
	}
	if cfg.SlipEvery <= 0 {
		cfg.SlipEvery = 2
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = 4096
	}
	return cfg
}

// rrlBucket is one client's token bucket.
type rrlBucket struct {
	tokens float64
	last   time.Time
	slips  int
}

// rateLimiter applies RRLConfig per client address. One mutex guards
// the table: the limiter sits in front of the parse path, so the
// critical section is a map lookup and a few float ops.
type rateLimiter struct {
	cfg RRLConfig
	now func() time.Time

	mu      sync.Mutex
	buckets map[netip.Addr]*rrlBucket
}

func newRateLimiter(cfg RRLConfig, now func() time.Time) *rateLimiter {
	if cfg.RatePerSec <= 0 {
		return nil
	}
	return &rateLimiter{
		cfg:     cfg.withDefaults(),
		now:     now,
		buckets: make(map[netip.Addr]*rrlBucket),
	}
}

// admit updates client's bucket and decides pass/slip/drop.
func (l *rateLimiter) admit(client netip.Addr) RRLVerdict {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[client]
	if !ok {
		if len(l.buckets) >= l.cfg.MaxClients {
			l.sweep(now)
		}
		b = &rrlBucket{tokens: l.cfg.Burst, last: now}
		l.buckets[client] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * l.cfg.RatePerSec
		if b.tokens > l.cfg.Burst {
			b.tokens = l.cfg.Burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return RRLPass
	}
	b.slips++
	if b.slips%l.cfg.SlipEvery == 0 {
		return RRLSlip
	}
	return RRLDrop
}

// sweep bounds the bucket table: fully-recovered buckets (idle long
// enough to refill to Burst) are dropped; if a spoofed-source flood
// keeps every bucket warm, the whole table is recycled — each source
// then gets one fresh burst, which the per-burst budget still bounds.
func (l *rateLimiter) sweep(now time.Time) {
	horizon := time.Duration(float64(time.Second) * l.cfg.Burst / l.cfg.RatePerSec)
	for a, b := range l.buckets {
		if now.Sub(b.last) > horizon {
			delete(l.buckets, a)
		}
	}
	if len(l.buckets) >= l.cfg.MaxClients {
		l.buckets = make(map[netip.Addr]*rrlBucket)
	}
}
