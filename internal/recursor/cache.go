// Package recursor is the caching recursive-resolver tier: a front-line
// server that answers stub queries from a sharded TTL cache and fills
// misses from a pool of authoritative upstreams picked by EWMA-RTT
// power-of-two-choices, with hedged racing for tail-latency control.
//
// The paper measures DNS centralization *at authoritative servers*; every
// real query first crosses a recursive caching tier exactly like this
// one, and caching plus resolver choice are the levers that amplify or
// dampen the provider concentration the paper quantifies. The recursor
// makes that directly measurable: it reports provider shares of the
// upstream traffic it emits next to provider shares of the stub traffic
// it absorbs, quantifying how much the cache tier masks — or
// concentrates — what the authoritative vantage sees.
package recursor

import (
	"sync"
	"sync/atomic"
	"time"

	"dnscentral/internal/dnswire"
)

// Entry is one cached answer. All fields are immutable after insertion,
// so a pointer handed out under the shard lock stays safe to read after
// the lock is released — even if the entry is concurrently evicted.
type Entry struct {
	// Wire is the response as the upstream answered it (OPT included
	// when the upstream sent one), with the ID bytes zeroed; the serve
	// path patches the stub's ID over them.
	Wire []byte
	// Plain is the OPT-stripped variant served to stubs that sent no
	// EDNS themselves (echoing an OPT to a non-EDNS client violates
	// RFC 6891). Aliases Wire when the upstream answered without OPT.
	Plain []byte
	// QEnd is the offset just past the question section — the clip
	// point when a response must be truncated to a stub's UDP budget.
	QEnd int
	// RCode is the full (extended) response code.
	RCode dnswire.RCode
	// Upstream is the pool index of the server that filled the entry,
	// attributing later cache hits to the provider that answered once.
	Upstream int
	// TTLOffs/PlainTTLOffs are the wire offsets of every RR TTL field
	// in Wire and Plain (OPT pseudo-RRs excluded — their TTL carries
	// EDNS flags). The serve-stale path clamps TTLs in place through
	// them without re-parsing the message.
	TTLOffs, PlainTTLOffs []uint16

	expires time.Time
	key     string
	hash    uint32 // read-index home slot seed, set before publication
	// Intrusive LRU links; most-recently-used entries sit at the head.
	prev, next *Entry
	// slot is the entry's position in the shard's lock-free read index
	// (-1 = unindexed). Only touched under the shard lock.
	slot int32
	// hot is the CLOCK second-chance bit: the lock-free hit path sets
	// it instead of relinking the LRU (which would need the lock), and
	// eviction gives hot tail entries one more lap before removal.
	hot atomic.Bool
}

// Cacheable reports whether the entry carries a future expiry; fills
// that must not be cached (SERVFAIL answers) leave expires zero.
func (e *Entry) Cacheable() bool { return !e.expires.IsZero() }

// flight is one in-progress fill that concurrent misses for the same
// key park on instead of issuing duplicate upstream queries.
type flight struct {
	done chan struct{}
	e    *Entry
	err  error
}

// shard is one lock domain of the cache: a key→entry map, an intrusive
// LRU list bounding it, the in-flight fill registry, the negative
// failure-cache marks, and — the hit path's whole reason to be fast — a
// lock-free read index over the live entries.
//
// The read index is a fixed open-addressing table of atomic entry
// pointers guarded by a seqlock: readers load seq (even = stable),
// probe the table with atomic loads, and re-check seq; writers hold mu
// for every mutation, flip seq odd only around multi-slot rewrites
// (tombstone compaction), and otherwise publish single-slot changes
// with one atomic store. A cache hit therefore never takes mu — the
// per-shard mutex is reserved for fills, evictions, expiry accounting,
// and the seqlock's (rare) retry fallback.
type shard struct {
	mu       sync.Mutex
	entries  map[string]*Entry
	inflight map[string]*flight
	failed   map[string]time.Time // key → fail mark expiry
	head     *Entry               // most recently used
	tail     *Entry               // eviction candidate

	// seq is the shard seqlock: even = stable, odd = a multi-slot index
	// rewrite is in progress. Single-slot publications do not bump it —
	// one atomic pointer store is already untearable.
	seq atomic.Uint64
	// idx is the lock-free read index: open addressing, linear probing
	// from hash&idxMask, nil = never used (probe terminator), tombstone
	// = deleted (probe continues). Sized ≥ 2× the per-shard entry bound
	// so a free slot always exists.
	idx     []atomic.Pointer[Entry]
	idxMask uint32
	tombs   int // tombstoned slots; compaction runs past idx/4
}

// tombstone marks a deleted read-index slot: probes skip it but keep
// walking, preserving chains that were built through the slot.
var tombstone = new(Entry)

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits, Misses, Stale, Evictions uint64
	// SingleflightShared counts misses answered by somebody else's
	// in-flight fill instead of their own upstream query.
	SingleflightShared uint64
	// FailMarks counts fills recorded in the negative failure cache;
	// FailHits counts misses absorbed by an active mark without any
	// upstream attempt.
	FailMarks, FailHits uint64
	// LockedGets counts Get calls that fell back to the shard mutex —
	// seqlock retries exhausted under writer pressure, or an expired
	// entry needing stale accounting. Steady-state hits and misses keep
	// this at zero; the hit-path benchmarks pin that.
	LockedGets uint64
	Entries    int
}

// CacheConfig shapes the answer cache.
type CacheConfig struct {
	// MaxEntries bounds the cache (default 65536).
	MaxEntries int
	// Shards is the lock-sharding factor, rounded up to a power of two
	// (default 16).
	Shards int
	// MaxStale is the RFC 8767 retention window: expired entries stay
	// resident (and retrievable via GetStale) up to MaxStale past their
	// expiry instead of being discarded. 0 restores discard-on-expiry.
	MaxStale time.Duration
	// FailTTL is the negative failure-cache window (RFC 2308 §7 style):
	// after a fill fails, repeat misses for the key inside the window
	// are absorbed without touching the upstream path. 0 disables it.
	FailTTL time.Duration
	// TTLFloor/TTLCap clamp the lifetime of every inserted entry, so a
	// 0-TTL answer is still briefly cacheable and a week-long TTL
	// cannot pin an LRU slot past TTLCap (defaults 1s and 1h).
	TTLFloor, TTLCap time.Duration
	// Now is the cache clock (default time.Now).
	Now func() time.Time
}

func (cfg CacheConfig) withDefaults() CacheConfig {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 1 << 16
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.TTLFloor <= 0 {
		cfg.TTLFloor = time.Second
	}
	if cfg.TTLCap <= 0 {
		cfg.TTLCap = time.Hour
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return cfg
}

// Cache is the sharded TTL answer cache: power-of-two shards selected by
// an FNV-1a hash of the (qname, qtype, DO) key, per-shard locks, lazy
// expiry on lookup, and a per-shard LRU bound so total memory stays
// capped under adversarial (random-subdomain) workloads.
type Cache struct {
	shards      []shard
	mask        uint32
	maxPerShard int
	maxStale    time.Duration
	failTTL     time.Duration
	ttlFloor    time.Duration
	ttlCap      time.Duration
	now         func() time.Time

	hits, misses, stale, evictions, sfShared atomic.Uint64
	failMarks, failHits, lockedGets          atomic.Uint64
}

// NewCache builds a cache from cfg.
func NewCache(cfg CacheConfig) *Cache {
	cfg = cfg.withDefaults()
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	c := &Cache{
		shards:      make([]shard, n),
		mask:        uint32(n - 1),
		maxPerShard: (cfg.MaxEntries + n - 1) / n,
		maxStale:    cfg.MaxStale,
		failTTL:     cfg.FailTTL,
		ttlFloor:    cfg.TTLFloor,
		ttlCap:      cfg.TTLCap,
		now:         cfg.Now,
	}
	// The read index stays under 50% occupied (entries are bounded by
	// maxPerShard, +1 transient during insert-then-evict), so probes
	// terminate fast and a free slot always exists.
	idxSize := 8
	for idxSize < 2*(c.maxPerShard+2) {
		idxSize <<= 1
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*Entry)
		c.shards[i].inflight = make(map[string]*flight)
		c.shards[i].failed = make(map[string]time.Time)
		c.shards[i].idx = make([]atomic.Pointer[Entry], idxSize)
		c.shards[i].idxMask = uint32(idxSize - 1)
	}
	return c
}

// AppendKey builds the cache key for (qname, qtype, do) into dst: the
// canonical qname bytes followed by the type and the DO bit. Reusing a
// scratch buffer keeps the serve path allocation-free.
func AppendKey(dst []byte, qname []byte, qtype dnswire.Type, do bool) []byte {
	dst = append(dst, qname...)
	d := byte(0)
	if do {
		d = 1
	}
	return append(dst, byte(qtype>>8), byte(qtype), d)
}

// hashKey is FNV-1a over the key bytes. The low word seeds the read
// index's home slot, the folded word selects the shard — distinct
// projections, so keys sharing a shard do not cluster onto every
// (numShards)-th index slot.
func hashKey[T string | []byte](key T) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// shardFor hashes the key bytes to a shard plus the read-index home
// slot seed.
func (c *Cache) shardFor(key []byte) (*shard, uint32) {
	h := hashKey(key)
	return &c.shards[uint32(h>>32^h)&c.mask], uint32(h)
}

// seqRetries bounds the lock-free read attempts before Get falls back
// to the mutex: a reader only loses a round when a writer flips the
// seqlock mid-probe (tombstone compaction), so consecutive losses are
// vanishingly rare and a small bound keeps the worst case tight.
const seqRetries = 8

// Get returns the live entry for key, nil on miss. The fast path is
// lock-free: load the shard seqlock, probe the atomic read index, and
// re-check the seqlock — a torn observation (compaction moved slots
// mid-probe) retries, everything else returns without touching the
// shard mutex. Hits mark the entry's CLOCK bit instead of relinking the
// LRU; expired entries fall back to the locked path, which does the
// stale accounting and lazy removal exactly as before.
func (c *Cache) Get(key []byte) *Entry {
	now := c.now()
	s, h := c.shardFor(key)
	for attempt := 0; attempt < seqRetries; attempt++ {
		seq := s.seq.Load()
		if seq&1 != 0 {
			// A compaction is mid-flight; writers finish in microseconds.
			continue
		}
		e, ok := s.probe(h, key)
		if s.seq.Load() != seq {
			continue // index rewritten under us: the probe may have torn
		}
		if !ok {
			break // probe wrapped without a terminator — needs the lock
		}
		if e == nil {
			c.misses.Add(1)
			return nil
		}
		if now.After(e.expires) {
			break // stale: locked path counts it and retires the entry
		}
		if !e.hot.Load() {
			// Load-then-store keeps steady-state hits on a hot entry from
			// bouncing the cache line between cores.
			e.hot.Store(true)
		}
		c.hits.Add(1)
		return e
	}
	return c.getLocked(s, key, now)
}

// getLocked is Get's mutex fallback — seqlock contention or an expired
// entry that needs its removal and stale accounting done under the lock.
func (c *Cache) getLocked(s *shard, key []byte, now time.Time) *Entry {
	c.lockedGets.Add(1)
	s.mu.Lock()
	e := s.lookup(c, key, now)
	s.mu.Unlock()
	if e == nil {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return e
}

// probe walks the read index from key's home slot. Returns (entry,
// true) on a hit, (nil, true) on a definitive miss (nil terminator
// reached), (nil, false) when the probe wrapped the whole table without
// terminating — only possible mid-compaction or under pathological
// tombstone load, both of which the locked fallback resolves.
func (s *shard) probe(h uint32, key []byte) (*Entry, bool) {
	mask := s.idxMask
	for i, n := h&mask, uint32(0); n <= mask; i, n = (i+1)&mask, n+1 {
		e := s.idx[i].Load()
		if e == nil {
			return nil, true
		}
		if e == tombstone {
			continue
		}
		// string(key) here compiles to an allocation-free comparison;
		// e.key is immutable after publication, so this read is safe
		// under the atomic load's acquire ordering.
		if e.key == string(key) {
			return e, true
		}
	}
	return nil, false
}

// lookup is the locked lookup + lazy-expiry + LRU-touch step. Expired
// entries are misses, but within the MaxStale window they stay resident
// (GetStale can retrieve them); past it they are removed.
func (s *shard) lookup(c *Cache, key []byte, now time.Time) *Entry {
	e := s.entries[string(key)]
	if e == nil {
		return nil
	}
	if now.After(e.expires) {
		c.stale.Add(1)
		if c.maxStale <= 0 || now.After(e.expires.Add(c.maxStale)) {
			s.remove(e)
		} else {
			s.touch(e) // popular stale entries keep their LRU slot
		}
		return nil
	}
	s.touch(e)
	return e
}

// GetStale returns the retained entry for key even when expired, as
// long as it is still inside the MaxStale window — the RFC 8767 path
// the recursor serves when the upstream is unreachable. Returns nil
// when serve-stale is off or nothing usable is resident.
func (c *Cache) GetStale(key []byte) *Entry {
	if c.maxStale <= 0 {
		return nil
	}
	now := c.now()
	s, _ := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[string(key)]
	if e == nil || now.After(e.expires.Add(c.maxStale)) {
		return nil
	}
	return e
}

// FailedRecently reports whether a fill for key failed inside the
// FailTTL window, lazily dropping expired marks.
func (c *Cache) FailedRecently(key []byte) bool {
	if c.failTTL <= 0 {
		return false
	}
	now := c.now()
	s, _ := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	until, ok := s.failed[string(key)]
	if !ok {
		return false
	}
	if now.After(until) {
		delete(s.failed, string(key))
		return false
	}
	c.failHits.Add(1)
	return true
}

// markFailed records a failed fill under the shard lock. The map is
// bounded like the entry map: past the per-shard cap expired marks are
// swept, and if a storm of distinct keys keeps it full the whole map is
// recycled — the marks only buy 2s of silence, losing them is safe.
func (s *shard) markFailed(c *Cache, key string, now time.Time) {
	if c.failTTL <= 0 {
		return
	}
	if len(s.failed) >= c.maxPerShard {
		for k, until := range s.failed {
			if now.After(until) {
				delete(s.failed, k)
			}
		}
		if len(s.failed) >= c.maxPerShard {
			s.failed = make(map[string]time.Time)
		}
	}
	s.failed[key] = now.Add(c.failTTL)
	c.failMarks.Add(1)
}

// Do returns the entry for key, filling it at most once no matter how
// many callers miss concurrently: the first runs fill, the rest park on
// its flight and share the result. shared reports whether this caller
// piggybacked. Entries whose Cacheable() is false are returned to every
// parked caller but not inserted.
func (c *Cache) Do(key []byte, fill func() (*Entry, error)) (e *Entry, shared bool, err error) {
	s, _ := c.shardFor(key)
	s.mu.Lock()
	// Re-check under the lock: a racing fill may have landed since the
	// caller's Get missed. (Not a counted hit — the caller's miss is
	// already on the books; hits + misses stays equal to lookups.)
	if e := s.lookup(c, key, c.now()); e != nil {
		s.mu.Unlock()
		return e, true, nil
	}
	if f, ok := s.inflight[string(key)]; ok {
		s.mu.Unlock()
		<-f.done
		c.sfShared.Add(1)
		return f.e, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	ks := string(key)
	s.inflight[ks] = f
	s.mu.Unlock()

	e, err = fill()
	f.e, f.err = e, err

	s.mu.Lock()
	s.finish(c, ks, e, err)
	s.mu.Unlock()
	close(f.done)
	return e, false, err
}

// finish completes a fill under the shard lock: successful cacheable
// entries are clamped to [TTLFloor, TTLCap] and inserted (clearing any
// fail mark); failures and non-cacheable answers (SERVFAIL) land in the
// negative failure cache so repeat misses stop hammering the upstream.
func (s *shard) finish(c *Cache, ks string, e *Entry, err error) {
	delete(s.inflight, ks)
	if err != nil || e == nil || !e.Cacheable() {
		s.markFailed(c, ks, c.now())
		return
	}
	now := c.now()
	if floor := now.Add(c.ttlFloor); e.expires.Before(floor) {
		e.expires = floor
	}
	if ceil := now.Add(c.ttlCap); e.expires.After(ceil) {
		e.expires = ceil
	}
	e.key = ks
	delete(s.failed, ks)
	s.insert(c, e)
}

// Inflight reports whether a fill for key is currently running — a
// cheap pre-check before spawning an asynchronous refresh goroutine.
func (c *Cache) Inflight(key []byte) bool {
	s, _ := c.shardFor(key)
	s.mu.Lock()
	_, ok := s.inflight[string(key)]
	s.mu.Unlock()
	return ok
}

// Refresh runs fill under the key's singleflight slot unless a fill is
// already in flight or a fresh entry landed meanwhile (then it is a
// no-op returning false). Unlike Do it never blocks on someone else's
// fill — it is the background half of serve-stale: the stub already got
// its stale answer, this call just tries to repopulate the entry.
func (c *Cache) Refresh(key []byte, fill func() (*Entry, error)) bool {
	s, _ := c.shardFor(key)
	s.mu.Lock()
	// Fresh-entry check without lookup(): a refresh is not a stub
	// lookup, so it must not skew the hit/miss/stale counters.
	if e := s.entries[string(key)]; e != nil && !c.now().After(e.expires) {
		s.mu.Unlock()
		return false
	}
	if _, ok := s.inflight[string(key)]; ok {
		s.mu.Unlock()
		return false
	}
	f := &flight{done: make(chan struct{})}
	ks := string(key)
	s.inflight[ks] = f
	s.mu.Unlock()

	e, err := fill()
	f.e, f.err = e, err

	s.mu.Lock()
	s.finish(c, ks, e, err)
	s.mu.Unlock()
	close(f.done)
	return true
}

// insert links a new entry at the LRU front, evicting past the
// per-shard bound. An existing entry under the same key (possible when a
// fill races an eviction-refill cycle) is replaced.
//
// Eviction is CLOCK second-chance over the LRU list: the lock-free hit
// path cannot relink the list (that needs the lock), so it sets the
// entry's hot bit instead, and eviction walks from the tail clearing
// hot bits — a hot tail entry is re-headed for one more lap, the first
// cold one is the victim. With no intervening hits every bit is cold
// and this degenerates to exact tail (LRU) eviction.
func (s *shard) insert(c *Cache, e *Entry) {
	if old := s.entries[e.key]; old != nil {
		s.remove(old)
	}
	e.hash = uint32(hashKey(e.key))
	s.entries[e.key] = e
	s.idxInsert(e)
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
	if len(s.entries) > c.maxPerShard {
		victim := s.tail
		for scanned := 0; victim != nil && scanned < len(s.entries); scanned++ {
			if victim != e && !victim.hot.Load() {
				break
			}
			// Hot (or the entry being inserted): clear the bit and give
			// it another lap at the head.
			victim.hot.Store(false)
			s.touch(victim)
			victim = s.tail
		}
		if victim != nil {
			s.remove(victim)
			c.evictions.Add(1)
		}
	}
}

// idxInsert publishes e into the read index under the shard lock. One
// atomic store is the whole publication: every Entry field is written
// before the Store, and Go atomics give release/acquire pairing with
// probe's Load, so lock-free readers that see the pointer see the
// fields. Tombstoned slots are reused.
func (s *shard) idxInsert(e *Entry) {
	for i := e.hash & s.idxMask; ; i = (i + 1) & s.idxMask {
		cur := s.idx[i].Load()
		if cur == nil || cur == tombstone {
			if cur == tombstone {
				s.tombs--
			}
			e.slot = int32(i)
			s.idx[i].Store(e)
			return
		}
	}
}

// idxRemove tombstones e's slot — probes walk through tombstones, so
// chains built past the slot stay reachable — and compacts the index
// once tombstones would slow every miss probe.
func (s *shard) idxRemove(e *Entry) {
	if e.slot < 0 {
		return
	}
	s.idx[e.slot].Store(tombstone)
	e.slot = -1
	s.tombs++
	if s.tombs > len(s.idx)/4 {
		s.rebuildIdx()
	}
}

// rebuildIdx rewrites the index without tombstones. This is the one
// multi-slot rewrite in the scheme, so it runs inside an odd seqlock
// window: a reader that loads an odd seq, or whose seq re-check after
// probing sees a different value, discards what it probed and retries
// (clearing slots mid-probe could otherwise fake a nil terminator and
// turn a resident entry into a spurious miss).
func (s *shard) rebuildIdx() {
	s.seq.Add(1) // odd: readers back off
	for i := range s.idx {
		s.idx[i].Store(nil)
	}
	for _, e := range s.entries {
		for i := e.hash & s.idxMask; ; i = (i + 1) & s.idxMask {
			if s.idx[i].Load() == nil {
				e.slot = int32(i)
				s.idx[i].Store(e)
				break
			}
		}
	}
	s.tombs = 0
	s.seq.Add(1) // even: stable again
}

// touch moves an entry to the LRU front.
func (s *shard) touch(e *Entry) {
	if s.head == e {
		return
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if s.tail == e {
		s.tail = e.prev
	}
	// Relink at head.
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
}

// remove unlinks an entry from the map, the read index, and the LRU
// list.
func (s *shard) remove(e *Entry) {
	delete(s.entries, e.key)
	s.idxRemove(e)
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// Len returns the live entry count across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:               c.hits.Load(),
		Misses:             c.misses.Load(),
		Stale:              c.stale.Load(),
		Evictions:          c.evictions.Load(),
		SingleflightShared: c.sfShared.Load(),
		FailMarks:          c.failMarks.Load(),
		FailHits:           c.failHits.Load(),
		LockedGets:         c.lockedGets.Load(),
		Entries:            c.Len(),
	}
}
