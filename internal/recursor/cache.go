// Package recursor is the caching recursive-resolver tier: a front-line
// server that answers stub queries from a sharded TTL cache and fills
// misses from a pool of authoritative upstreams picked by EWMA-RTT
// power-of-two-choices, with hedged racing for tail-latency control.
//
// The paper measures DNS centralization *at authoritative servers*; every
// real query first crosses a recursive caching tier exactly like this
// one, and caching plus resolver choice are the levers that amplify or
// dampen the provider concentration the paper quantifies. The recursor
// makes that directly measurable: it reports provider shares of the
// upstream traffic it emits next to provider shares of the stub traffic
// it absorbs, quantifying how much the cache tier masks — or
// concentrates — what the authoritative vantage sees.
package recursor

import (
	"sync"
	"sync/atomic"
	"time"

	"dnscentral/internal/dnswire"
)

// Entry is one cached answer. All fields are immutable after insertion,
// so a pointer handed out under the shard lock stays safe to read after
// the lock is released — even if the entry is concurrently evicted.
type Entry struct {
	// Wire is the response as the upstream answered it (OPT included
	// when the upstream sent one), with the ID bytes zeroed; the serve
	// path patches the stub's ID over them.
	Wire []byte
	// Plain is the OPT-stripped variant served to stubs that sent no
	// EDNS themselves (echoing an OPT to a non-EDNS client violates
	// RFC 6891). Aliases Wire when the upstream answered without OPT.
	Plain []byte
	// QEnd is the offset just past the question section — the clip
	// point when a response must be truncated to a stub's UDP budget.
	QEnd int
	// RCode is the full (extended) response code.
	RCode dnswire.RCode
	// Upstream is the pool index of the server that filled the entry,
	// attributing later cache hits to the provider that answered once.
	Upstream int

	expires time.Time
	key     string
	// Intrusive LRU links; most-recently-used entries sit at the head.
	prev, next *Entry
}

// Cacheable reports whether the entry carries a future expiry; fills
// that must not be cached (SERVFAIL answers) leave expires zero.
func (e *Entry) Cacheable() bool { return !e.expires.IsZero() }

// flight is one in-progress fill that concurrent misses for the same
// key park on instead of issuing duplicate upstream queries.
type flight struct {
	done chan struct{}
	e    *Entry
	err  error
}

// shard is one lock domain of the cache: a key→entry map, an intrusive
// LRU list bounding it, and the in-flight fill registry.
type shard struct {
	mu       sync.Mutex
	entries  map[string]*Entry
	inflight map[string]*flight
	head     *Entry // most recently used
	tail     *Entry // eviction candidate
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits, Misses, Stale, Evictions uint64
	// SingleflightShared counts misses answered by somebody else's
	// in-flight fill instead of their own upstream query.
	SingleflightShared uint64
	Entries            int
}

// Cache is the sharded TTL answer cache: power-of-two shards selected by
// an FNV-1a hash of the (qname, qtype, DO) key, per-shard locks, lazy
// expiry on lookup, and a per-shard LRU bound so total memory stays
// capped under adversarial (random-subdomain) workloads.
type Cache struct {
	shards      []shard
	mask        uint32
	maxPerShard int
	now         func() time.Time

	hits, misses, stale, evictions, sfShared atomic.Uint64
}

// NewCache builds a cache bounded at maxEntries spread over shards
// (rounded up to a power of two; default 16 shards, 65536 entries).
func NewCache(maxEntries, shards int, now func() time.Time) *Cache {
	if maxEntries <= 0 {
		maxEntries = 1 << 16
	}
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if now == nil {
		now = time.Now
	}
	c := &Cache{
		shards:      make([]shard, n),
		mask:        uint32(n - 1),
		maxPerShard: (maxEntries + n - 1) / n,
		now:         now,
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*Entry)
		c.shards[i].inflight = make(map[string]*flight)
	}
	return c
}

// AppendKey builds the cache key for (qname, qtype, do) into dst: the
// canonical qname bytes followed by the type and the DO bit. Reusing a
// scratch buffer keeps the serve path allocation-free.
func AppendKey(dst []byte, qname []byte, qtype dnswire.Type, do bool) []byte {
	dst = append(dst, qname...)
	d := byte(0)
	if do {
		d = 1
	}
	return append(dst, byte(qtype>>8), byte(qtype), d)
}

// shardFor hashes the key bytes (FNV-1a, folded) to a shard.
func (c *Cache) shardFor(key []byte) *shard {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return &c.shards[uint32(h>>32^h)&c.mask]
}

// Get returns the live entry for key, nil on miss. Expired entries are
// removed lazily and counted as stale; hits move to the LRU front. The
// key is looked up without copying (map access through string(key)
// compiles to a no-allocation lookup).
func (c *Cache) Get(key []byte) *Entry {
	now := c.now()
	s := c.shardFor(key)
	s.mu.Lock()
	e := s.lookup(c, key, now)
	s.mu.Unlock()
	if e == nil {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return e
}

// lookup is the locked lookup + lazy-expiry + LRU-touch step.
func (s *shard) lookup(c *Cache, key []byte, now time.Time) *Entry {
	e := s.entries[string(key)]
	if e == nil {
		return nil
	}
	if now.After(e.expires) {
		s.remove(e)
		c.stale.Add(1)
		return nil
	}
	s.touch(e)
	return e
}

// Do returns the entry for key, filling it at most once no matter how
// many callers miss concurrently: the first runs fill, the rest park on
// its flight and share the result. shared reports whether this caller
// piggybacked. Entries whose Cacheable() is false are returned to every
// parked caller but not inserted.
func (c *Cache) Do(key []byte, fill func() (*Entry, error)) (e *Entry, shared bool, err error) {
	s := c.shardFor(key)
	s.mu.Lock()
	// Re-check under the lock: a racing fill may have landed since the
	// caller's Get missed. (Not a counted hit — the caller's miss is
	// already on the books; hits + misses stays equal to lookups.)
	if e := s.lookup(c, key, c.now()); e != nil {
		s.mu.Unlock()
		return e, true, nil
	}
	if f, ok := s.inflight[string(key)]; ok {
		s.mu.Unlock()
		<-f.done
		c.sfShared.Add(1)
		return f.e, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	ks := string(key)
	s.inflight[ks] = f
	s.mu.Unlock()

	e, err = fill()
	f.e, f.err = e, err

	s.mu.Lock()
	delete(s.inflight, ks)
	if err == nil && e != nil && e.Cacheable() {
		e.key = ks
		s.insert(c, e)
	}
	s.mu.Unlock()
	close(f.done)
	return e, false, err
}

// insert links a new entry at the LRU front, evicting the tail past the
// per-shard bound. An existing entry under the same key (possible when a
// fill races an eviction-refill cycle) is replaced.
func (s *shard) insert(c *Cache, e *Entry) {
	if old := s.entries[e.key]; old != nil {
		s.remove(old)
	}
	s.entries[e.key] = e
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
	if len(s.entries) > c.maxPerShard && s.tail != nil {
		s.remove(s.tail)
		c.evictions.Add(1)
	}
}

// touch moves an entry to the LRU front.
func (s *shard) touch(e *Entry) {
	if s.head == e {
		return
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if s.tail == e {
		s.tail = e.prev
	}
	// Relink at head.
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
}

// remove unlinks an entry from the map and the LRU list.
func (s *shard) remove(e *Entry) {
	delete(s.entries, e.key)
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// Len returns the live entry count across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:               c.hits.Load(),
		Misses:             c.misses.Load(),
		Stale:              c.stale.Load(),
		Evictions:          c.evictions.Load(),
		SingleflightShared: c.sfShared.Load(),
		Entries:            c.Len(),
	}
}
