package recursor

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dnscentral/internal/authserver"
	"dnscentral/internal/telemetry"
	"dnscentral/internal/udpengine"
)

// ServerConfig tunes the stub-facing transport.
type ServerConfig struct {
	// UDPWorkers is the UDP receive parallelism: SO_REUSEPORT sockets on
	// the Linux batched engine, reader goroutines sharing one socket on
	// the portable fallback. Each worker owns its own Scratch and arena
	// slots (default GOMAXPROCS, capped at 8). A cold miss blocks only
	// its own worker; cache hits on the other workers keep flowing.
	UDPWorkers int
	// UDPBatch is the datagrams-per-syscall budget of the batched UDP
	// engine (default 32; see internal/udpengine).
	UDPBatch int
	// UDPPortable forces the one-datagram-per-syscall portable engine.
	UDPPortable bool
	// UDPGSO enables segmentation offload on the batched engine:
	// equal-destination response runs coalesce into UDP_SEGMENT
	// super-datagrams and GRO-coalesced receives are split back into
	// per-query packets. Probed at bind with automatic fallback.
	UDPGSO bool
	// UDPPin pins each socket loop to a CPU core and steers reuseport
	// delivery to the receiving core's socket (Linux batched engine).
	UDPPin bool
	// TCPIdleTimeout is how long an idle stub TCP connection may sit
	// between messages (default 10s).
	TCPIdleTimeout time.Duration
	// MaxTCPConns caps concurrent stub TCP connections (default 128,
	// negative = unlimited).
	MaxTCPConns int
	// Telemetry, when set, publishes the udpengine_* socket-plane
	// metrics (per-socket datagram counters, batch-size histogram,
	// syscalls saved). Typically the same registry the Recursor itself
	// publishes on.
	Telemetry *telemetry.Registry
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.UDPWorkers <= 0 {
		c.UDPWorkers = runtime.GOMAXPROCS(0)
		if c.UDPWorkers > 8 {
			c.UDPWorkers = 8
		}
	}
	if c.TCPIdleTimeout <= 0 {
		c.TCPIdleTimeout = 10 * time.Second
	}
	if c.MaxTCPConns == 0 {
		c.MaxTCPConns = 128
	}
	return c
}

// Server binds a Recursor to real UDP and TCP sockets. The UDP side
// rides the batched socket engine (internal/udpengine): per-socket
// loops each own a Scratch, and both query and response bytes live in
// the engine's pooled batch arenas — the response buffer the old read
// loop kept per worker is now an arena slot, so the hit path stays
// allocation-free from recvmmsg to sendmmsg.
type Server struct {
	rec *Recursor
	cfg ServerConfig

	udp     udpengine.Engine
	scratch []*Scratch
	tcp     *net.TCPListener

	wg     sync.WaitGroup
	closed chan struct{}

	mu    sync.Mutex
	conns map[*net.TCPConn]struct{}

	tcpRejected atomic.Uint64
	panics      atomic.Uint64

	// Logf, when non-nil, receives per-error diagnostics.
	Logf func(format string, args ...any)
}

// Serve starts a server on addr ("127.0.0.1:0" — UDP and TCP bind the
// same port). The returned server is already serving.
func Serve(addr string, rec *Recursor, cfg ServerConfig) (*Server, error) {
	tcpLn, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("recursor: tcp listen: %w", err)
	}
	s := &Server{
		rec:    rec,
		cfg:    cfg.withDefaults(),
		tcp:    tcpLn.(*net.TCPListener),
		closed: make(chan struct{}),
		conns:  make(map[*net.TCPConn]struct{}),
	}
	s.scratch = make([]*Scratch, s.cfg.UDPWorkers)
	for i := range s.scratch {
		s.scratch[i] = NewScratch()
	}
	tcpAddr := tcpLn.Addr().(*net.TCPAddr)
	udpAddr := net.JoinHostPort(tcpAddr.IP.String(), fmt.Sprint(tcpAddr.Port))
	s.udp, err = udpengine.Listen(udpAddr, s.handleUDPPacket, udpengine.Config{
		Batch:     s.cfg.UDPBatch,
		Sockets:   s.cfg.UDPWorkers,
		Portable:  s.cfg.UDPPortable,
		GSO:       s.cfg.UDPGSO,
		PinCPUs:   s.cfg.UDPPin,
		Telemetry: s.cfg.Telemetry,
		Logf:      s.logf,
	})
	if err != nil {
		tcpLn.Close()
		return nil, fmt.Errorf("recursor: udp listen: %w", err)
	}
	s.wg.Add(1)
	go s.serveTCP()
	return s, nil
}

// Addr returns the bound address (same port for UDP and TCP).
func (s *Server) Addr() netip.AddrPort {
	return s.udp.Addr()
}

// Recursor returns the underlying recursor.
func (s *Server) Recursor() *Recursor { return s.rec }

// Close stops serving: listeners closed, in-flight TCP connections
// severed, every worker drained.
func (s *Server) Close() error {
	close(s.closed)
	s.udp.Close()
	s.tcp.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// handleUDPPacket serves one datagram on its socket loop: pkt lives in
// the engine's receive arena, out is the response slot from the write
// arena (replacing the per-worker response buffer the old read loop
// allocated), and the Scratch is the shard's own. A panic poisons only
// that datagram, not the socket loop.
func (s *Server) handleUDPPacket(shard int, pkt []byte, raddr netip.AddrPort, out []byte) (resp []byte) {
	defer func() {
		if p := recover(); p != nil {
			resp = nil
			s.panics.Add(1)
			s.logf("udp handler panic from %s: %v", raddr, p)
		}
	}()
	// Front-line rate limit, before any parsing: drops stay silent,
	// slips answer TC=1 so a real stub retries over TCP (which is
	// exempt — the handshake proves the source address).
	switch s.rec.AdmitStub(raddr.Addr()) {
	case RRLDrop:
		return nil
	case RRLSlip:
		return s.rec.SlipResponse(pkt, out)
	}
	return s.rec.HandleWire(pkt, out, false, s.scratch[shard])
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.AcceptTCP()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logf("tcp accept: %v", err)
				continue
			}
		}
		if !s.trackConn(conn) {
			s.tcpRejected.Add(1)
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go s.serveTCPConn(conn)
	}
}

func (s *Server) trackConn(conn *net.TCPConn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.closed:
		return false
	default:
	}
	if s.cfg.MaxTCPConns > 0 && len(s.conns) >= s.cfg.MaxTCPConns {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrackConn(conn *net.TCPConn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) serveTCPConn(conn *net.TCPConn) {
	defer s.wg.Done()
	defer s.untrackConn(conn)
	defer conn.Close()
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			s.logf("tcp handler panic from %s: %v", conn.RemoteAddr(), p)
		}
	}()
	raddr := conn.RemoteAddr().(*net.TCPAddr).AddrPort()
	out := make([]byte, 0, 1<<16)
	sc := NewScratch()
	for {
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.TCPIdleTimeout))
		msg, err := authserver.ReadTCPMessage(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.logf("tcp read from %s: %v", raddr, err)
			}
			return
		}
		resp := s.rec.HandleWire(msg, out[:0], true, sc)
		if resp == nil {
			return
		}
		if err := authserver.WriteTCPMessage(conn, resp); err != nil {
			s.logf("tcp write to %s: %v", raddr, err)
			return
		}
	}
}
