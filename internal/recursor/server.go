package recursor

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dnscentral/internal/authserver"
)

// ServerConfig tunes the stub-facing transport.
type ServerConfig struct {
	// UDPWorkers is how many goroutines share the UDP socket, each with
	// its own Scratch and buffers (default GOMAXPROCS, capped at 8).
	UDPWorkers int
	// TCPIdleTimeout is how long an idle stub TCP connection may sit
	// between messages (default 10s).
	TCPIdleTimeout time.Duration
	// MaxTCPConns caps concurrent stub TCP connections (default 128,
	// negative = unlimited).
	MaxTCPConns int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.UDPWorkers <= 0 {
		c.UDPWorkers = runtime.GOMAXPROCS(0)
		if c.UDPWorkers > 8 {
			c.UDPWorkers = 8
		}
	}
	if c.TCPIdleTimeout <= 0 {
		c.TCPIdleTimeout = 10 * time.Second
	}
	if c.MaxTCPConns == 0 {
		c.MaxTCPConns = 128
	}
	return c
}

// Server binds a Recursor to real UDP and TCP sockets. Multiple UDP
// reader goroutines share the socket (the kernel serializes reads), each
// owning a Scratch and reusable I/O buffers so the hit path stays
// allocation-free end to end.
type Server struct {
	rec *Recursor
	cfg ServerConfig

	udp *net.UDPConn
	tcp *net.TCPListener

	wg     sync.WaitGroup
	closed chan struct{}

	mu    sync.Mutex
	conns map[*net.TCPConn]struct{}

	tcpRejected atomic.Uint64
	panics      atomic.Uint64

	// Logf, when non-nil, receives per-error diagnostics.
	Logf func(format string, args ...any)
}

// Serve starts a server on addr ("127.0.0.1:0" — UDP and TCP bind the
// same port). The returned server is already serving.
func Serve(addr string, rec *Recursor, cfg ServerConfig) (*Server, error) {
	tcpLn, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("recursor: tcp listen: %w", err)
	}
	udpConn, err := net.ListenUDP("udp", &net.UDPAddr{
		IP:   tcpLn.Addr().(*net.TCPAddr).IP,
		Port: tcpLn.Addr().(*net.TCPAddr).Port,
	})
	if err != nil {
		tcpLn.Close()
		return nil, fmt.Errorf("recursor: udp listen: %w", err)
	}
	s := &Server{
		rec:    rec,
		cfg:    cfg.withDefaults(),
		udp:    udpConn,
		tcp:    tcpLn.(*net.TCPListener),
		closed: make(chan struct{}),
		conns:  make(map[*net.TCPConn]struct{}),
	}
	s.wg.Add(s.cfg.UDPWorkers + 1)
	for i := 0; i < s.cfg.UDPWorkers; i++ {
		go s.serveUDP()
	}
	go s.serveTCP()
	return s, nil
}

// Addr returns the bound address (same port for UDP and TCP).
func (s *Server) Addr() netip.AddrPort {
	return s.udp.LocalAddr().(*net.UDPAddr).AddrPort()
}

// Recursor returns the underlying recursor.
func (s *Server) Recursor() *Recursor { return s.rec }

// Close stops serving: listeners closed, in-flight TCP connections
// severed, every worker drained.
func (s *Server) Close() error {
	close(s.closed)
	s.udp.Close()
	s.tcp.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// serveUDP is one reader worker: it owns its receive buffer, response
// buffer, and Scratch for the whole loop, so a cache hit costs zero
// allocations from socket to socket.
func (s *Server) serveUDP() {
	defer s.wg.Done()
	in := make([]byte, 1<<16)
	out := make([]byte, 0, 1<<16)
	sc := NewScratch()
	for {
		n, raddr, err := s.udp.ReadFromUDPAddrPort(in)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logf("udp read: %v", err)
				continue
			}
		}
		s.handleUDPPacket(in[:n], out[:0], raddr, sc)
	}
}

// handleUDPPacket serves one datagram; a panic poisons only that
// datagram, not the worker.
func (s *Server) handleUDPPacket(pkt, out []byte, raddr netip.AddrPort, sc *Scratch) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			s.logf("udp handler panic from %s: %v", raddr, p)
		}
	}()
	// Front-line rate limit, before any parsing: drops stay silent,
	// slips answer TC=1 so a real stub retries over TCP (which is
	// exempt — the handshake proves the source address).
	switch s.rec.AdmitStub(raddr.Addr()) {
	case RRLDrop:
		return
	case RRLSlip:
		if resp := s.rec.SlipResponse(pkt, out); resp != nil {
			if _, err := s.udp.WriteToUDPAddrPort(resp, raddr); err != nil {
				s.logf("udp write to %s: %v", raddr, err)
			}
		}
		return
	}
	resp := s.rec.HandleWire(pkt, out, false, sc)
	if resp == nil {
		return
	}
	if _, err := s.udp.WriteToUDPAddrPort(resp, raddr); err != nil {
		s.logf("udp write to %s: %v", raddr, err)
	}
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.AcceptTCP()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logf("tcp accept: %v", err)
				continue
			}
		}
		if !s.trackConn(conn) {
			s.tcpRejected.Add(1)
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go s.serveTCPConn(conn)
	}
}

func (s *Server) trackConn(conn *net.TCPConn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.closed:
		return false
	default:
	}
	if s.cfg.MaxTCPConns > 0 && len(s.conns) >= s.cfg.MaxTCPConns {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrackConn(conn *net.TCPConn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) serveTCPConn(conn *net.TCPConn) {
	defer s.wg.Done()
	defer s.untrackConn(conn)
	defer conn.Close()
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			s.logf("tcp handler panic from %s: %v", conn.RemoteAddr(), p)
		}
	}()
	raddr := conn.RemoteAddr().(*net.TCPAddr).AddrPort()
	out := make([]byte, 0, 1<<16)
	sc := NewScratch()
	for {
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.TCPIdleTimeout))
		msg, err := authserver.ReadTCPMessage(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.logf("tcp read from %s: %v", raddr, err)
			}
			return
		}
		resp := s.rec.HandleWire(msg, out[:0], true, sc)
		if resp == nil {
			return
		}
		if err := authserver.WriteTCPMessage(conn, resp); err != nil {
			s.logf("tcp write to %s: %v", raddr, err)
			return
		}
	}
}
