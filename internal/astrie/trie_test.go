package astrie

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestTrieBasicLPM(t *testing.T) {
	var tr Trie
	ins := []struct {
		pfx string
		asn uint32
	}{
		{"10.0.0.0/8", 100},
		{"10.1.0.0/16", 200},
		{"10.1.2.0/24", 300},
		{"2001:db8::/32", 600},
		{"2001:db8:1::/48", 700},
	}
	for _, c := range ins {
		if err := tr.Insert(netip.MustParsePrefix(c.pfx), c.asn); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != len(ins) {
		t.Errorf("Len = %d", tr.Len())
	}
	cases := []struct {
		addr string
		asn  uint32
		ok   bool
	}{
		{"10.9.9.9", 100, true},
		{"10.1.9.9", 200, true},
		{"10.1.2.9", 300, true},
		{"11.0.0.1", 0, false},
		{"2001:db8::1", 600, true},
		{"2001:db8:1::1", 700, true},
		{"2001:db9::1", 0, false},
	}
	for _, c := range cases {
		asn, ok := tr.Lookup(netip.MustParseAddr(c.addr))
		if ok != c.ok || (ok && asn != c.asn) {
			t.Errorf("Lookup(%s) = %d,%v; want %d,%v", c.addr, asn, ok, c.asn, c.ok)
		}
	}
}

func TestTrieExactOverwrite(t *testing.T) {
	var tr Trie
	p := netip.MustParsePrefix("192.0.2.0/24")
	_ = tr.Insert(p, 1)
	_ = tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	if asn, _ := tr.Lookup(netip.MustParseAddr("192.0.2.1")); asn != 2 {
		t.Errorf("asn = %d", asn)
	}
}

func TestTrieZeroBitsPrefix(t *testing.T) {
	var tr Trie
	_ = tr.Insert(netip.MustParsePrefix("0.0.0.0/0"), 42)
	if asn, ok := tr.Lookup(netip.MustParseAddr("203.0.113.7")); !ok || asn != 42 {
		t.Errorf("default route lookup = %d,%v", asn, ok)
	}
	// v6 default must not be affected by v4 default.
	if _, ok := tr.Lookup(netip.MustParseAddr("2001:db8::1")); ok {
		t.Error("v6 matched v4 default route")
	}
}

func TestTrieV4MappedV6Normalized(t *testing.T) {
	var tr Trie
	_ = tr.Insert(netip.MustParsePrefix("198.51.100.0/24"), 7)
	mapped := netip.AddrFrom16(netip.MustParseAddr("198.51.100.5").As16())
	if asn, ok := tr.Lookup(mapped); !ok || asn != 7 {
		t.Errorf("v4-mapped lookup = %d,%v", asn, ok)
	}
}

func TestTrieHostRoutes(t *testing.T) {
	var tr Trie
	_ = tr.Insert(netip.MustParsePrefix("192.0.2.1/32"), 9)
	if asn, ok := tr.Lookup(netip.MustParseAddr("192.0.2.1")); !ok || asn != 9 {
		t.Errorf("host route = %d,%v", asn, ok)
	}
	if _, ok := tr.Lookup(netip.MustParseAddr("192.0.2.2")); ok {
		t.Error("host route matched neighbor")
	}
}

func TestTrieInvalidPrefix(t *testing.T) {
	var tr Trie
	if err := tr.Insert(netip.Prefix{}, 1); err == nil {
		t.Error("invalid prefix accepted")
	}
}

// TestPropertyTrieMatchesLinearScan cross-checks the trie against a naive
// linear longest-prefix scan oracle on random prefix sets and probes.
func TestPropertyTrieMatchesLinearScan(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tr Trie
		type entry struct {
			pfx netip.Prefix
			asn uint32
		}
		// Random prefixes; later duplicates overwrite earlier ones both in
		// the trie and (by map) in the oracle.
		oracle := make(map[netip.Prefix]uint32)
		n := 1 + r.Intn(60)
		for i := 0; i < n; i++ {
			var p netip.Prefix
			if r.Intn(2) == 0 {
				a := netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
				p = netip.PrefixFrom(a, r.Intn(33)).Masked()
			} else {
				var b [16]byte
				r.Read(b[:])
				p = netip.PrefixFrom(netip.AddrFrom16(b), r.Intn(129)).Masked()
			}
			asn := uint32(1 + r.Intn(1000))
			oracle[p] = asn
			if err := tr.Insert(p, asn); err != nil {
				return false
			}
		}
		entries := make([]entry, 0, len(oracle))
		for p, a := range oracle {
			entries = append(entries, entry{p, a})
		}
		// Probe with random addresses plus addresses inside known prefixes.
		for probe := 0; probe < 50; probe++ {
			var addr netip.Addr
			if probe%2 == 0 && len(entries) > 0 {
				base := entries[r.Intn(len(entries))].pfx.Addr()
				if base.Is4() {
					b := base.As4()
					b[3] ^= byte(r.Intn(4))
					addr = netip.AddrFrom4(b)
				} else {
					b := base.As16()
					b[15] ^= byte(r.Intn(4))
					addr = netip.AddrFrom16(b)
				}
			} else if r.Intn(2) == 0 {
				addr = netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
			} else {
				var b [16]byte
				r.Read(b[:])
				addr = netip.AddrFrom16(b)
			}
			// Oracle: longest containing prefix wins.
			bestBits := -1
			var bestASN uint32
			for _, e := range entries {
				if e.pfx.Contains(addr) && e.pfx.Bits() > bestBits {
					bestBits, bestASN = e.pfx.Bits(), e.asn
				}
			}
			asn, ok := tr.Lookup(addr)
			if ok != (bestBits >= 0) {
				return false
			}
			if ok && asn != bestASN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	reg := NewRegistry(40000)
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		asn := reg.ASNs()[i%reg.NumASes()]
		a, err := reg.ResolverAddr(asn, i%2 == 0, false, uint32(i))
		if err != nil {
			b.Fatal(err)
		}
		addrs[i] = a
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := reg.LookupAddr(addrs[i%len(addrs)]); !ok {
			b.Fatal("miss")
		}
	}
}
