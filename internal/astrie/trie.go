// Package astrie maps IP addresses to autonomous systems via a binary
// longest-prefix-match trie, and carries the paper's Table-1 registry of
// cloud-provider ASes (Google, Amazon, Microsoft, Facebook, Cloudflare —
// 20 ASes) plus a synthetic allocation of prefixes for those ASes and a
// long tail of "rest of the Internet" ASes.
//
// The original study classified resolver addresses with Routeviews-derived
// prefix tables; those tables are replaced here by a deterministic
// synthetic allocation (one IPv4 /16 and one IPv6 /32 per AS), which keeps
// the classification code path — address → longest matching prefix → AS →
// provider — identical.
package astrie

import (
	"fmt"
	"net/netip"
)

// Trie is a binary LPM trie from IP prefixes to AS numbers. The zero value
// is ready to use. It supports both families in one structure (separate
// roots). Not safe for concurrent mutation; safe for concurrent lookups
// after all inserts complete.
type Trie struct {
	root4, root6 *trieNode
	size         int
}

type trieNode struct {
	child [2]*trieNode
	asn   uint32
	set   bool
}

// Insert associates prefix with asn, replacing any previous association of
// the exact prefix.
func (t *Trie) Insert(prefix netip.Prefix, asn uint32) error {
	if !prefix.IsValid() {
		return fmt.Errorf("astrie: invalid prefix %v", prefix)
	}
	prefix = prefix.Masked()
	rootp := &t.root4
	if prefix.Addr().Is6() && !prefix.Addr().Is4In6() {
		rootp = &t.root6
	}
	if *rootp == nil {
		*rootp = &trieNode{}
	}
	n := *rootp
	addr := prefix.Addr().Unmap()
	bits := addr.AsSlice()
	for i := 0; i < prefix.Bits(); i++ {
		b := bits[i/8] >> (7 - i%8) & 1
		if n.child[b] == nil {
			n.child[b] = &trieNode{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.asn, n.set = asn, true
	return nil
}

// Lookup returns the ASN of the longest prefix covering addr.
func (t *Trie) Lookup(addr netip.Addr) (asn uint32, ok bool) {
	addr = addr.Unmap()
	n := t.root4
	if addr.Is6() {
		n = t.root6
	}
	bits := addr.AsSlice()
	for i := 0; n != nil; i++ {
		if n.set {
			asn, ok = n.asn, true
		}
		if i >= len(bits)*8 {
			break
		}
		b := bits[i/8] >> (7 - i%8) & 1
		n = n.child[b]
	}
	return asn, ok
}

// Len returns the number of inserted prefixes.
func (t *Trie) Len() int { return t.size }
